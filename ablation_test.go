package pmove

import (
	"fmt"
	"testing"

	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/pmu"
	"pmove/internal/spmv"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// Ablation benchmarks isolate the design choices DESIGN.md calls out:
// the unbuffered shipment pipeline (the Table III loss mechanism), PMU
// counter multiplexing, thread-pinning strategies, and the matrix
// reorderings. Run with `go test -bench=Ablation`.

// runPipeline samples never-zero events at 32 Hz for 10 s and returns the
// session statistics under the given pipeline configuration.
func runPipeline(b *testing.B, cfg telemetry.PipelineConfig) telemetry.SessionStats {
	b.Helper()
	m, err := machine.New(topo.MustPreset(topo.PresetSKX), machine.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	events := m.Catalog().NeverZeroEvents()
	if err := m.ProgramAll(events); err != nil {
		b.Fatal(err)
	}
	metrics := make([]string, len(events))
	for i, ev := range events {
		metrics[i] = telemetry.MetricForEvent(ev)
	}
	col := telemetry.NewCollector(tsdb.New(), cfg)
	sess, err := telemetry.NewSession(telemetry.NewPMCD(m), col, telemetry.SessionConfig{
		Metrics: metrics, FreqHz: 32, DurationSeconds: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := sess.Run()
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkAblation_UnbufferedVsBuffered contrasts PCP's no-buffer design
// (losses under pressure) with a hypothetical queued pipeline (no losses,
// growing staleness). The paper's §V-A attributes Table III's losses to
// exactly this choice.
func BenchmarkAblation_UnbufferedVsBuffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unbuf := runPipeline(b, telemetry.DefaultPipeline())
		cfg := telemetry.DefaultPipeline()
		cfg.Buffered = true
		buf := runPipeline(b, cfg)
		if buf.Lost != 0 {
			b.Fatalf("buffered pipeline lost %d points", buf.Lost)
		}
		if unbuf.Lost == 0 {
			b.Fatal("unbuffered pipeline should lose points at 32 Hz on skx")
		}
		b.ReportMetric(unbuf.LossPct, "unbuffered-loss-%")
		b.ReportMetric(buf.LossPct, "buffered-loss-%")
	}
}

// BenchmarkAblation_Multiplexing compares read accuracy with the event
// set inside vs beyond the programmable-counter budget (Intel: 4).
func BenchmarkAblation_Multiplexing(b *testing.B) {
	read := func(nEvents int) float64 {
		m, err := machine.New(topo.MustPreset(topo.PresetICL), machine.Config{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		cat := m.Catalog()
		// Start with events the stream kernel actually exercises so every
		// compared event has nonzero truth, then pad with the rest of the
		// core events to engage multiplexing.
		events := []string{
			pmu.IntelCycles, pmu.IntelInstructions,
			pmu.IntelLoads, pmu.IntelStores,
		}
		for _, ev := range cat.Names() {
			if len(events) >= nEvents {
				break
			}
			def, _ := cat.Lookup(ev)
			dup := false
			for _, e := range events {
				dup = dup || e == ev
			}
			if def.PMU == "core" && !dup {
				events = append(events, ev)
			}
		}
		events = events[:nEvents]
		if err := m.ProgramAll(events); err != nil {
			b.Fatal(err)
		}
		spec, err := kernels.Likwid("stream", topo.ISAScalar, 8<<20, 200)
		if err != nil {
			b.Fatal(err)
		}
		exec, err := m.Run(spec, []int{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		// Mean |relative error| over the programmed events with nonzero
		// truth.
		tp, _ := m.ThreadPMU(0)
		var sum float64
		var n int
		for _, ev := range events {
			truth := tp.Truth(ev)
			if truth == 0 {
				continue
			}
			v, err := tp.Read(ev)
			if err != nil {
				b.Fatal(err)
			}
			e := pmu.RelativeError(v, truth)
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
		_ = exec
		return sum / float64(n)
	}
	for i := 0; i < b.N; i++ {
		plain := read(4)  // fits the counters
		muxed := read(10) // multiplexed
		if muxed <= plain {
			b.Logf("warning: multiplexed error %.5f not above plain %.5f this round", muxed, plain)
		}
		b.ReportMetric(plain*100, "4ev-err-%")
		b.ReportMetric(muxed*100, "10ev-err-%")
	}
}

// BenchmarkAblation_PinningStrategies runs the same memory-bound kernel
// under all four affinity strategies of Scenario B.
func BenchmarkAblation_PinningStrategies(b *testing.B) {
	spec, err := kernels.Likwid("triad", topo.ISAAVX512, 256<<20, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, strat := range topo.PinStrategies() {
			m, err := machine.New(topo.MustPreset(topo.PresetSKX), machine.Config{Seed: 3, Noiseless: true})
			if err != nil {
				b.Fatal(err)
			}
			pin, err := topo.Pin(m.System(), strat, 8)
			if err != nil {
				b.Fatal(err)
			}
			exec, err := m.Run(spec, pin)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(exec.GBps, string(strat)+"-GB/s")
		}
	}
}

// BenchmarkAblation_Orderings extends Fig 7 to all four reorderings of
// §III-B's level-view example (none, rcm, degree, random) on the
// scattered mesh, reporting the modelled SpMV GFLOPS of each.
func BenchmarkAblation_Orderings(b *testing.B) {
	base, err := spmv.Generate("adaptive", 250000, 5)
	if err != nil {
		b.Fatal(err)
	}
	sys := topo.MustPreset(topo.PresetCSL)
	for i := 0; i < b.N; i++ {
		for _, ord := range spmv.Orderings() {
			mat, _, err := spmv.Reorder(base, ord, 11)
			if err != nil {
				b.Fatal(err)
			}
			spec, err := spmv.DeriveWorkload(sys, mat, spmv.AlgoMKL, 8)
			if err != nil {
				b.Fatal(err)
			}
			m, err := machine.New(sys, machine.Config{Seed: 2, Noiseless: true})
			if err != nil {
				b.Fatal(err)
			}
			pin, err := topo.Pin(sys, topo.PinBalanced, 8)
			if err != nil {
				b.Fatal(err)
			}
			exec, err := m.Run(spec, pin)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(exec.GFLOPS, string(ord)+"-GFLOPS")
		}
	}
}

// BenchmarkAblation_CounterRefresh sweeps the PMU readout refresh period,
// the knob behind Table III's batched zeros.
func BenchmarkAblation_CounterRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, refresh := range []float64{0, 0.024, 0.048, 0.096} {
			cfg := telemetry.DefaultPipeline()
			cfg.CounterRefreshSeconds = refresh
			st := runPipeline(b, cfg)
			b.ReportMetric(st.LossPlusZPct, fmt.Sprintf("refresh%.0fms-L+Z-%%", refresh*1000))
		}
	}
}

// BenchmarkAblation_LoadBalance contrasts the row-split and merge-path
// partitions on an arrowhead matrix: the per-thread work spread (max-min
// of the normalised factors) is the quantity the merge-path algorithm
// exists to eliminate.
func BenchmarkAblation_LoadBalance(b *testing.B) {
	n := 4000
	var ri, ci []int
	var vs []float64
	for i := 0; i < n; i++ {
		deg := 4
		if i < n/8 {
			deg = n / 4
		}
		for d := 0; d < deg; d++ {
			ri = append(ri, i)
			ci = append(ci, (i+d+1)%n)
			vs = append(vs, 1)
		}
	}
	m, err := spmv.FromTriplets("arrow", n, n, ri, ci, vs)
	if err != nil {
		b.Fatal(err)
	}
	spread := func(fs []float64) float64 {
		min, max := fs[0], fs[0]
		for _, f := range fs {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		return max - min
	}
	for i := 0; i < b.N; i++ {
		mkl, err := spmv.ThreadWorkFactors(m, spmv.AlgoMKL, 8)
		if err != nil {
			b.Fatal(err)
		}
		merge, err := spmv.ThreadWorkFactors(m, spmv.AlgoMerge, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(spread(mkl), "rowsplit-spread")
		b.ReportMetric(spread(merge), "mergepath-spread")
	}
}
