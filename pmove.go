// Package pmove is the public facade of the P-MoVE reproduction: a
// performance monitoring and visualization framework with encoded
// knowledge (Taşyaran et al., SC 2024). It re-exports the user-facing
// surface of the internal packages so applications can drive the full
// pipeline — probe a (simulated) system, generate its Knowledge Base,
// monitor software telemetry, observe kernel executions with PMU
// sampling, construct cache-aware roofline models, and generate
// dashboards — from a single import.
//
//	d, _ := pmove.NewDaemon(pmove.EnvFromOS())
//	sys := pmove.MustPreset(pmove.PresetSKX)
//	d.AttachTarget(sys, pmove.MachineConfig{Seed: 1}, pmove.DefaultPipeline())
//	kb, _ := d.Probe(sys.Hostname)
package pmove

import (
	"context"

	"pmove/internal/abst"
	"pmove/internal/anomaly"
	"pmove/internal/carm"
	"pmove/internal/cluster"
	"pmove/internal/core"
	"pmove/internal/dashboard"
	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/introspect/expose"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/introspect/traceexport"
	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/ontology"
	"pmove/internal/resilience"
	"pmove/internal/spmv"
	"pmove/internal/storage"
	"pmove/internal/superdb"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
	"pmove/internal/whatif"
)

// Daemon orchestration (internal/core).
//
// Public daemon operations are context-first: every op has a
// <Name>Context(ctx, ...) form whose cancellation is honored through
// sampling loops, retry backoffs and in-flight DB requests. The
// context-free legacy names remain as thin wrappers over
// context.Background().
type (
	// Daemon is the P-MoVE host process.
	Daemon = core.Daemon
	// Env is the daemon's environment configuration.
	Env = core.Env
	// DaemonOption is a functional construction option for NewDaemonWith.
	DaemonOption = core.Option
	// Target is one attached system.
	Target = core.Target
	// MonitorRequest configures a Scenario A monitoring run.
	MonitorRequest = core.MonitorRequest
	// ObserveRequest configures a Scenario B observation.
	ObserveRequest = core.ObserveRequest
	// ObserveResult is a completed observation.
	ObserveResult = core.ObserveResult
	// MonitorResult is a completed Scenario A run.
	MonitorResult = core.MonitorResult
	// LiveCARMRequest configures a live-CARM run.
	LiveCARMRequest = core.LiveCARMRequest
	// LiveCARMPhase labels one kernel for live-CARM profiling.
	LiveCARMPhase = core.LiveCARMPhase
	// LiveCARMResult carries the live panel and phase summaries.
	LiveCARMResult = core.LiveCARMResult
)

// NewDaemon creates a daemon with embedded databases.
//
// Deprecated: use NewDaemonWith(WithEnv(env)) — the options form admits
// telemetry sinks and introspection without further signature changes.
func NewDaemon(env Env) (*Daemon, error) { return core.New(env) }

// NewDaemonWith creates a daemon from functional options (WithEnv,
// WithInflux, WithMongo, WithTelemetrySink, WithIntrospection, ...).
func NewDaemonWith(opts ...DaemonOption) (*Daemon, error) { return core.NewWith(opts...) }

// Daemon construction options.
var (
	// WithEnv replaces the whole environment configuration.
	WithEnv = core.WithEnv
	// WithInflux points the daemon at an InfluxDB address.
	WithInflux = core.WithInflux
	// WithMongo points the daemon at a MongoDB address.
	WithMongo = core.WithMongo
	// WithGrafanaToken sets the visualization-layer token.
	WithGrafanaToken = core.WithGrafanaToken
	// WithTelemetrySink redirects telemetry to a remote sink.
	WithTelemetrySink = core.WithTelemetrySink
	// WithDataDir backs the embedded databases with WAL+snapshot data
	// directories ("always"|"interval"|"never" fsync policy) so daemon
	// state survives a crash; pair with Daemon.Close on shutdown.
	WithDataDir = core.WithDataDir
	// WithExpose serves the live observability plane on an address:
	// /metrics (OpenMetrics), /healthz, /readyz, /debug/vars and /logs.
	// Implies introspection and a structured log ring; the bound address
	// is Daemon.ExposeAddr.
	WithExpose = core.WithExpose
	// WithLogBuffer enables the daemon's bounded structured log ring
	// (Daemon.Logs) without the HTTP plane.
	WithLogBuffer = core.WithLogBuffer
)

// WithIntrospection enables the self-observability layer (metrics,
// spans, pmove.self.* export and the meta dashboard).
func WithIntrospection(opts ...IntrospectOption) DaemonOption {
	return core.WithIntrospection(opts...)
}

// Self-observability (internal/introspect).
type (
	// Introspector is the self-observability layer: a metrics registry
	// plus a span tracer.
	Introspector = introspect.Introspector
	// IntrospectOption configures an Introspector.
	IntrospectOption = introspect.Option
	// SelfSnapshot is a frozen view of the self-metrics registry.
	SelfSnapshot = introspect.Snapshot
	// SelfMetric is one metric in a snapshot.
	SelfMetric = introspect.Metric
	// SelfKind labels a self metric (counter, gauge, histogram).
	SelfKind = introspect.Kind
	// SelfSpan is one finished trace span.
	SelfSpan = introspect.Span
)

// Self-metric kinds.
const (
	SelfKindCounter   = introspect.KindCounter
	SelfKindGauge     = introspect.KindGauge
	SelfKindHistogram = introspect.KindHistogram
)

// Introspector construction options.
var (
	// WithSpanCapacity bounds the finished-span ring.
	WithSpanCapacity = introspect.WithSpanCapacity
	// WithSelfPrefix overrides the pmove.self export namespace.
	WithSelfPrefix = introspect.WithPrefix
	// WithProcess labels this process's spans for multi-process assembly.
	WithProcess = introspect.WithProcess
	// WithTraceSampling sets the head-based trace sampling rate (errored
	// spans are always kept); seed 0 derives one from the clock.
	WithTraceSampling = introspect.WithSampling
)

// Live observability plane (internal/introspect/expose + logbuf): the
// OpenMetrics/health/vars/logs HTTP surface WithExpose serves, and the
// trace-correlated structured log ring behind Daemon.Logs.
type (
	// ExposeServer is the observability-plane HTTP server (standalone
	// form of what WithExpose wires into a daemon).
	ExposeServer = expose.Server
	// ExposeSource is one metrics registry an ExposeServer scrapes.
	ExposeSource = expose.Source
	// LogBuffer is a bounded, concurrency-safe structured log ring.
	LogBuffer = logbuf.Logger
	// LogRecord is one structured record in a LogBuffer.
	LogRecord = logbuf.Record
	// LogField is one key/value pair on a LogRecord.
	LogField = logbuf.Field
	// LogLevel is a LogBuffer severity.
	LogLevel = logbuf.Level
	// LogQuery filters LogBuffer.Filter by level, trace and component.
	LogQuery = logbuf.Query
)

// Log levels.
const (
	LogDebug = logbuf.Debug
	LogInfo  = logbuf.Info
	LogWarn  = logbuf.Warn
	LogError = logbuf.Error
)

// Observability-plane functions.
var (
	// NewExposeServer creates an empty observability-plane server; add
	// sources/checks then Listen.
	NewExposeServer = expose.NewServer
	// ExposeSourceFor adapts an Introspector into an ExposeSource.
	ExposeSourceFor = expose.SourceFor
	// NewLogBuffer creates a structured log ring (capacity <= 0 selects
	// the default).
	NewLogBuffer = logbuf.New
	// ParseLogLevel parses "debug"|"info"|"warn"|"error".
	ParseLogLevel = logbuf.ParseLevel
	// EncodeSelfVars writes registries as the /debug/vars JSON document
	// (`pmove introspect -json` shares this encoder).
	EncodeSelfVars = expose.EncodeVars
)

// Distributed tracing (internal/introspect + traceexport): 128-bit trace
// IDs propagated over the wire as a traceparent field on the tsdb line
// protocol and docdb request frames, assembled across processes into
// trace trees with per-hop latency attribution and Chrome-trace export.
type (
	// TraceID is a 128-bit distributed trace identifier.
	TraceID = introspect.TraceID
	// SpanContext is the wire-propagated (trace, span, sampled) triple.
	SpanContext = introspect.SpanContext
	// Trace is one assembled multi-process trace tree.
	Trace = traceexport.Trace
	// TraceNode is one span plus its children inside a Trace.
	TraceNode = traceexport.Node
	// TraceCollector gathers span rings from several processes.
	TraceCollector = traceexport.Collector
	// TraceAttribution partitions a trace's wire time into per-hop
	// components (client queue, network, retry, server phases).
	TraceAttribution = traceexport.Attribution
)

// Distributed-tracing functions.
var (
	// ParseTraceparent parses a W3C-style traceparent header field.
	ParseTraceparent = introspect.ParseTraceparent
	// FormatTraceparent renders a SpanContext as a traceparent field.
	FormatTraceparent = introspect.FormatTraceparent
	// NewTraceCollector creates an empty multi-process trace collector.
	NewTraceCollector = traceexport.NewCollector
	// AssembleTraces stitches finished spans into trace trees.
	AssembleTraces = traceexport.Assemble
	// AttributeTrace computes per-hop latency attribution for a trace.
	AttributeTrace = traceexport.Attribute
	// TraceWaterfall renders a trace as an indented text timeline.
	TraceWaterfall = traceexport.Waterfall
	// ChromeTrace exports a trace as Chrome trace-event JSON
	// (chrome://tracing / Perfetto loadable).
	ChromeTrace = traceexport.ChromeTrace
)

// EnvFromOS reads the daemon configuration from the environment.
func EnvFromOS() Env { return core.EnvFromOS() }

// Topology and machine simulation.
type (
	// System describes one target machine.
	System = topo.System
	// MachineConfig tunes the execution engine.
	MachineConfig = machine.Config
	// Machine is the analytic execution engine.
	Machine = machine.Machine
	// WorkloadSpec describes a kernel for the engine.
	WorkloadSpec = machine.WorkloadSpec
	// Execution is a (completed) kernel run.
	Execution = machine.Execution
	// ISA is a vector instruction-set extension.
	ISA = topo.ISA
	// PinStrategy selects thread-to-core binding.
	PinStrategy = topo.PinStrategy
	// CacheLevel identifies a memory-hierarchy level.
	CacheLevel = topo.CacheLevel
)

// Preset hosts of Table II.
const (
	PresetSKX  = topo.PresetSKX
	PresetICL  = topo.PresetICL
	PresetCSL  = topo.PresetCSL
	PresetZEN3 = topo.PresetZEN3
)

// ISA extensions.
const (
	ISAScalar = topo.ISAScalar
	ISASSE    = topo.ISASSE
	ISAAVX2   = topo.ISAAVX2
	ISAAVX512 = topo.ISAAVX512
)

// Pinning strategies (Figure 3, Scenario B).
const (
	PinBalanced     = topo.PinBalanced
	PinCompact      = topo.PinCompact
	PinNUMABalanced = topo.PinNUMABalanced
	PinNUMACompact  = topo.PinNUMACompact
)

// Memory levels.
const (
	L1   = topo.L1
	L2   = topo.L2
	L3   = topo.L3
	DRAM = topo.DRAM
)

// NewPreset builds one of the Table II systems.
func NewPreset(name string) (*System, error) { return topo.NewPreset(name) }

// MustPreset is NewPreset panicking on unknown names.
func MustPreset(name string) *System { return topo.MustPreset(name) }

// WithGPU attaches a Listing-4-style GPU to a system.
func WithGPU(s *System) *System { return topo.WithGPU(s) }

// NewMachine builds an execution engine for a system.
func NewMachine(sys *System, cfg MachineConfig) (*Machine, error) { return machine.New(sys, cfg) }

// Pin computes a thread affinity for a strategy.
func Pin(sys *System, strategy PinStrategy, n int) ([]int, error) {
	return topo.Pin(sys, strategy, n)
}

// Knowledge base.
type (
	// KB is the knowledge base of one system.
	KB = kb.KB
	// KBNode is one component twin.
	KBNode = kb.Node
	// Observation is an ObservationInterface entry.
	Observation = kb.Observation
	// Benchmark is a BenchmarkInterface entry.
	Benchmark = kb.Benchmark
	// View is a focus/subtree/level selection of the KB.
	View = kb.View
	// ComponentKind is an HPC-ontology component class.
	ComponentKind = ontology.ComponentKind
	// Interface is a DTDL interface (one (sub)twin).
	Interface = ontology.Interface
)

// Component kinds of the HPC ontology.
const (
	KindSystem  = ontology.KindSystem
	KindSocket  = ontology.KindSocket
	KindNUMA    = ontology.KindNUMA
	KindCore    = ontology.KindCore
	KindThread  = ontology.KindThread
	KindCache   = ontology.KindCache
	KindMemory  = ontology.KindMemory
	KindDisk    = ontology.KindDisk
	KindNIC     = ontology.KindNIC
	KindGPU     = ontology.KindGPU
	KindProcess = ontology.KindProcess
)

// CrossLevelView merges level views across systems (Fig 2d).
func CrossLevelView(kind ComponentKind, kbs ...*KB) (*View, error) {
	return kb.CrossLevelView(kind, kbs...)
}

// Telemetry pipeline.
type (
	// PipelineConfig models the host-target shipment path.
	PipelineConfig = telemetry.PipelineConfig
	// SessionStats summarises a sampling session (one Table III row).
	SessionStats = telemetry.SessionStats
)

// DefaultPipeline is the paper-calibrated shipment configuration.
func DefaultPipeline() PipelineConfig { return telemetry.DefaultPipeline() }

// Resilience: fault injection and fault-tolerant networking.
type (
	// ResiliencePolicy bundles the dial/retry/deadline/breaker knobs
	// shared by every TCP client.
	ResiliencePolicy = resilience.Policy
	// Faults describes the impairments a FaultProxy injects.
	Faults = resilience.Faults
	// FaultProxy interposes a fault-injecting TCP proxy in front of a
	// tsdb/docdb/superdb server.
	FaultProxy = resilience.Proxy
	// PointSink is where a telemetry collector lands points — the
	// embedded TSDB or a resilient remote client.
	PointSink = telemetry.PointSink
)

// DefaultResiliencePolicy is the production-shaped client policy.
func DefaultResiliencePolicy() ResiliencePolicy { return resilience.DefaultPolicy() }

// NewFaultProxy builds a fault-injecting proxy for the given backend.
func NewFaultProxy(backend string, f Faults, seed uint64) *FaultProxy {
	return resilience.NewProxy(backend, f, seed)
}

// DialTSDB connects a resilient time-series client (usable as a
// Daemon telemetry sink via SetTelemetrySink).
func DialTSDB(addr string, pol ResiliencePolicy) (*tsdb.Client, error) {
	return tsdb.DialPolicy(addr, pol)
}

// Databases.
type (
	// TSDB is the embedded time-series database (InfluxDB substitute).
	TSDB = tsdb.DB
	// DocDB is the embedded document database (MongoDB substitute).
	DocDB = docdb.DB
	// SuperDB is the global performance database (§III-E).
	SuperDB = superdb.SuperDB
	// BatchWriter is the unified batched write surface (embedded TSDB,
	// wire client, and superdb remote all satisfy it).
	BatchWriter = tsdb.BatchWriter
	// BatchError reports a rejected batch write: offending index and
	// how many points applied (0 — batches are atomic).
	BatchError = tsdb.BatchError
	// Batcher coalesces single-point writes into batched frames with
	// size/interval flush.
	Batcher = tsdb.Batcher
	// BatcherConfig tunes a Batcher.
	BatcherConfig = tsdb.BatcherConfig
	// QueryRequest is the request-struct form of a TSDB query.
	QueryRequest = tsdb.QueryRequest
	// Query is the parsed SELECT subset (raw fields or aggregates,
	// equality tag filters, time bounds, GROUP BY time windowing).
	Query = tsdb.Query
	// Aggregate is one aggregation column of a Query
	// (mean/min/max/sum/count/pNN of a field).
	Aggregate = tsdb.Aggregate
	// QueryResult is a query result: columns plus rows.
	QueryResult = tsdb.Result
)

// ParseQuery parses a SELECT statement into its Query form; the
// rendering Query.String is canonical (ParseQuery(q.String()) == q).
func ParseQuery(stmt string) (*Query, error) { return tsdb.ParseQuery(stmt) }

// NewBatcher starts an auto-batcher over any BatchWriter; cancelling
// ctx stops its timer and aborts in-flight flush retries.
func NewBatcher(ctx context.Context, w BatchWriter, cfg BatcherConfig) *Batcher {
	return tsdb.NewBatcher(ctx, w, cfg)
}

// NewTSDB constructs an in-memory embedded time-series store.
func NewTSDB() *TSDB { return tsdb.New() }

// OpenTSDB opens (or creates) a WAL-backed embedded time-series store
// under dir. fsync is "always", "interval" or "never" — the same
// policy names WithDataDir and the -fsync flag accept.
func OpenTSDB(dir, fsync string) (*TSDB, error) {
	pol, err := storage.ParseFsyncPolicy(fsync)
	if err != nil {
		return nil, err
	}
	return tsdb.Open(dir, pol)
}

// NewSuperDB creates an empty global performance database.
func NewSuperDB() *SuperDB { return superdb.New() }

// CARM.
type (
	// CARMModel is a constructed cache-aware roofline model.
	CARMModel = carm.Model
	// CARMPoint is a live application point.
	CARMPoint = carm.Point
	// CARMSummary aggregates live points per phase.
	CARMSummary = carm.Summary
)

// RenderCARM draws a CARM plot with points as terminal text.
func RenderCARM(m *CARMModel, points []CARMPoint, width, height int) string {
	return carm.RenderASCII(m, points, width, height)
}

// Dashboards.
type (
	// Dashboard is the Grafana-style JSON document (Listing 1).
	Dashboard = dashboard.Dashboard
	// DashboardGenerator builds dashboards from KB views.
	DashboardGenerator = dashboard.Generator
)

// RenderDashboard draws every panel of a dashboard as terminal text.
func RenderDashboard(db *TSDB, d *Dashboard, width int) (string, error) {
	return dashboard.RenderDashboardASCII(db, d, width)
}

// Abstraction layer.
type (
	// AbstRegistry answers pmu_utils.get-style lookups.
	AbstRegistry = abst.Registry
)

// DefaultAbstRegistry returns the built-in Table I mappings.
func DefaultAbstRegistry() (*AbstRegistry, error) { return abst.DefaultRegistry() }

// Workloads.
type (
	// CSR is a sparse matrix in compressed sparse row format.
	CSR = spmv.CSR
	// SpMVAlgorithm selects the SpMV kernel.
	SpMVAlgorithm = spmv.Algorithm
	// Ordering selects a matrix reordering.
	Ordering = spmv.Ordering
)

// SpMV algorithms and orderings.
const (
	AlgoMKL     = spmv.AlgoMKL
	AlgoMerge   = spmv.AlgoMerge
	OrderNone   = spmv.OrderNone
	OrderRCM    = spmv.OrderRCM
	OrderDegree = spmv.OrderDegree
	OrderRandom = spmv.OrderRandom
)

// GenerateMatrix builds a synthetic Table IV matrix.
func GenerateMatrix(name string, targetRows int, seed uint64) (*CSR, error) {
	return spmv.Generate(name, targetRows, seed)
}

// Reorder applies a reordering to a matrix.
func Reorder(m *CSR, ord Ordering, seed uint64) (*CSR, []int, error) {
	return spmv.Reorder(m, ord, seed)
}

// SpMV computes y = A*x with the selected algorithm.
func SpMV(m *CSR, algo SpMVAlgorithm, x, y []float64, threads int) error {
	return spmv.MultiplyParallel(m, algo, x, y, threads)
}

// DeriveSpMVWorkload converts a matrix+algorithm into an engine workload.
func DeriveSpMVWorkload(sys *System, m *CSR, algo SpMVAlgorithm, threads int) (WorkloadSpec, error) {
	return spmv.DeriveWorkload(sys, m, algo, threads)
}

// LikwidKernel builds one of the likwid-bench kernels (sum, stream,
// triad, peakflops, ddot, daxpy).
func LikwidKernel(name string, isa ISA, wssBytes int64, sweeps int) (WorkloadSpec, error) {
	return kernels.Likwid(name, isa, wssBytes, sweeps)
}

// Extensions: anomaly detection, what-if prediction, cluster scheduling.
type (
	// AnomalyScanner runs detectors over an observation's telemetry.
	AnomalyScanner = anomaly.Scanner
	// AnomalyFinding is one detected anomaly.
	AnomalyFinding = anomaly.Finding
	// WhatIfOutcome is a predicted execution on a candidate system.
	WhatIfOutcome = whatif.Outcome
	// Cluster is a multi-node simulated system with a batch scheduler.
	Cluster = cluster.Cluster
	// ClusterJob is one batch submission.
	ClusterJob = cluster.Job
	// JobRecord is the job metadata a completed job leaves in the
	// cluster KB.
	JobRecord = cluster.JobRecord
)

// DefaultAnomalyScanner returns the standard detector set (z-score,
// stalled counters, sibling imbalance).
func DefaultAnomalyScanner() *AnomalyScanner { return anomaly.DefaultScanner() }

// PredictOn replays a workload on a candidate system — the digital twin's
// "predictive performance modelling on a candidate architecture".
func PredictOn(sys *System, spec WorkloadSpec, threads int, pin PinStrategy) (WhatIfOutcome, error) {
	return whatif.Predict(sys, spec, threads, pin)
}

// RecommendUpgrade ranks all built-in presets against a baseline for a
// workload and phrases a hardware suggestion.
func RecommendUpgrade(baseline string, spec WorkloadSpec, threads int) (*whatif.Recommendation, error) {
	return whatif.Recommend(baseline, spec, threads)
}

// NewCluster builds an n-node cluster of a preset with the given fabric.
func NewCluster(preset string, n int, fabric cluster.Interconnect, seed uint64) (*Cluster, error) {
	return cluster.New(preset, n, fabric, seed)
}
