// Command likwidbench mirrors the role likwid-bench plays in the paper's
// §V-A accuracy experiments: it executes a pre-determined, fixed number of
// instruction streams on the analytic engine and reports the exact
// ground-truth event counts afterwards — the reference the sampled
// telemetry is compared against in Fig 4.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"pmove"
	"pmove/internal/kernels"
)

func main() {
	host := flag.String("host", "csl", "target preset (skx|icl|csl|zen3)")
	kernel := flag.String("kernel", "triad", "kernel: "+strings.Join(kernels.LikwidKernels(), "|"))
	isaFlag := flag.String("isa", "", "isa: scalar|sse|avx2|avx512 (default: widest)")
	threads := flag.Int("threads", 4, "threads")
	wss := flag.Int64("wss", 8<<20, "working set bytes per thread")
	sweeps := flag.Int("sweeps", 100, "working-set sweeps")
	flag.Parse()

	sys, err := pmove.NewPreset(*host)
	if err != nil {
		log.Fatal(err)
	}
	isa := sys.CPU.WidestISA()
	if *isaFlag != "" {
		isa = pmove.ISA(*isaFlag)
		if !sys.CPU.HasISA(isa) {
			log.Fatalf("%s does not support %s", *host, isa)
		}
	}
	m, err := pmove.NewMachine(sys, pmove.MachineConfig{Seed: 1, Noiseless: true})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := pmove.LikwidKernel(*kernel, isa, *wss, *sweeps)
	if err != nil {
		log.Fatal(err)
	}
	pin, err := pmove.Pin(sys, pmove.PinBalanced, *threads)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := m.Run(spec, pin)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("likwid-bench (simulated) -t %s on %s, %s, %d threads\n", *kernel, *host, isa, *threads)
	fmt.Printf("working set %d bytes/thread, %d sweeps, %d iterations/thread\n", *wss, *sweeps, spec.Iters)
	fmt.Printf("time: %.6f s at %.2f GHz\n", exec.Duration, exec.FreqGHz)
	fmt.Printf("performance: %.2f GFLOP/s, %.2f GB/s, AI %.4f\n\n", exec.GFLOPS, exec.GBps, exec.AI)

	// Ground-truth event counts, summed across threads (what pmdaperfevent
	// samples are verified against).
	totals := map[string]uint64{}
	for _, tc := range exec.TruthCounts() {
		for ev, v := range tc.Events {
			totals[ev] += v
		}
	}
	var names []string
	for ev := range totals {
		names = append(names, ev)
	}
	sort.Strings(names)
	fmt.Println("ground-truth event counts (all threads):")
	for _, ev := range names {
		if totals[ev] == 0 {
			continue
		}
		fmt.Printf("  %-36s %16d\n", ev, totals[ev])
	}
}
