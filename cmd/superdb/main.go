// Command superdb runs the global performance database as network
// services: the document store (MongoDB stand-in) and the time-series
// store (InfluxDB stand-in), each on its own TCP port. Local P-MoVE
// instances ship KBs and observations here for long-term, cross-system
// analysis (§III-E).
//
// With -expose the process also serves the live observability plane:
// /metrics exposes both servers' registries (distinguished by a process
// label), /logs the shared structured log ring, and ops slower than
// -slow leave trace-correlated slow-op records in it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/introspect/expose"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/tsdb"
)

func main() {
	docAddr := flag.String("docs", "127.0.0.1:27017", "document store listen address")
	tsAddr := flag.String("ts", "127.0.0.1:8086", "time-series store listen address")
	retention := flag.Duration("retention", 0, "time-series retention (0 = keep forever)")
	exposeAddr := flag.String("expose", "", "serve the observability plane on this address: /metrics, /healthz, /readyz, /debug/vars, /logs")
	slow := flag.Duration("slow", 250*time.Millisecond, "with -expose, log ops slower than this with their wire traceparent (0 logs every op)")
	flag.Parse()

	docs := docdb.New()
	ts := tsdb.New()
	if *retention > 0 {
		ts.SetRetention(tsdb.RetentionPolicy{Name: "superdb", Duration: retention.Nanoseconds()})
	}

	docSrv := docdb.NewServer(docs)
	tsSrv := tsdb.NewServer(ts)

	var exposeSrv *expose.Server
	var stopSampler func()
	if *exposeAddr != "" {
		// One introspector per server keeps their op metrics separate;
		// the process label tells the merged /metrics families apart.
		tsIn := introspect.New(introspect.WithProcess("superdb_ts"))
		docIn := introspect.New(introspect.WithProcess("superdb_docs"))
		logs := logbuf.New(0)
		tsSrv.SetTracing(tsIn)
		docSrv.SetTracing(docIn)
		tsSrv.SetLogger(logs.With("tsdb.server"), *slow)
		docSrv.SetLogger(logs.With("docdb.server"), *slow)

		exposeSrv = expose.NewServer()
		exposeSrv.AddSource(expose.SourceFor(tsIn, map[string]string{"process": "superdb_ts"}))
		exposeSrv.AddSource(expose.SourceFor(docIn, map[string]string{"process": "superdb_docs"}))
		exposeSrv.SetLogs(logs)
		exposeSrv.OnScrape(func() { expose.CollectRuntime(tsIn) })
		exposeSrv.TrackConns(tsIn.Metrics().Gauge(expose.GaugeConns))
		if err := exposeSrv.Listen(*exposeAddr); err != nil {
			log.Fatal(err)
		}
		stopSampler = expose.StartRuntimeSampler(tsIn, 10*time.Second)
		fmt.Printf("superdb: observability plane on %s\n", exposeSrv.Addr())
	}

	gotDoc, err := docSrv.Listen(*docAddr)
	if err != nil {
		log.Fatal(err)
	}
	gotTS, err := tsSrv.Listen(*tsAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("superdb: documents on %s, time series on %s\n", gotDoc, gotTS)
	if *retention > 0 {
		fmt.Printf("retention: %s\n", *retention)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("superdb: shutting down")
	docSrv.Close()
	tsSrv.Close()
	if stopSampler != nil {
		stopSampler()
	}
	if exposeSrv != nil {
		exposeSrv.Close()
	}
}
