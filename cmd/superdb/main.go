// Command superdb runs the global performance database as network
// services: the document store (MongoDB stand-in) and the time-series
// store (InfluxDB stand-in), each on its own TCP port. Local P-MoVE
// instances ship KBs and observations here for long-term, cross-system
// analysis (§III-E).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"pmove/internal/docdb"
	"pmove/internal/tsdb"
)

func main() {
	docAddr := flag.String("docs", "127.0.0.1:27017", "document store listen address")
	tsAddr := flag.String("ts", "127.0.0.1:8086", "time-series store listen address")
	retention := flag.Duration("retention", 0, "time-series retention (0 = keep forever)")
	flag.Parse()

	docs := docdb.New()
	ts := tsdb.New()
	if *retention > 0 {
		ts.SetRetention(tsdb.RetentionPolicy{Name: "superdb", Duration: retention.Nanoseconds()})
	}

	docSrv := docdb.NewServer(docs)
	gotDoc, err := docSrv.Listen(*docAddr)
	if err != nil {
		log.Fatal(err)
	}
	tsSrv := tsdb.NewServer(ts)
	gotTS, err := tsSrv.Listen(*tsAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("superdb: documents on %s, time series on %s\n", gotDoc, gotTS)
	if *retention > 0 {
		fmt.Printf("retention: %s\n", *retention)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("superdb: shutting down")
	docSrv.Close()
	tsSrv.Close()
}
