package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"pmove"
	"pmove/internal/abst"
	"pmove/internal/topo"
)

// cmdQuery runs aggregate SELECTs against the embedded time-series
// store: it samples one observation (Scenario B, so the store holds
// real telemetry), then either executes -stmt verbatim or generates
// one aggregate summary query per observed measurement (-agg over
// every field, optionally windowed with -window). The run prints each
// canonical statement, its rows, and the query-cache counters the
// engine recorded (pmove.self.query.cache.*).
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	host := fs.String("host", "csl", "target preset (skx|icl|csl|zen3)")
	kernel := fs.String("kernel", "triad", "likwid kernel sampled to populate the store")
	threads := fs.Int("threads", 8, "software threads")
	freq := fs.Float64("freq", 32, "sampling frequency in Hz")
	stmt := fs.String("stmt", "", "SELECT statement to run verbatim (default: generated aggregate summaries)")
	agg := fs.String("agg", "mean", "aggregate for generated queries: mean|min|max|sum|count|pNN")
	window := fs.String("window", "", "GROUP BY time window for generated queries, e.g. 250ms")
	workers := fs.Int("workers", 0, "parallel scan workers (0 = auto)")
	nocache := fs.Bool("nocache", false, "bypass the query-result cache")
	repeat := fs.Int("repeat", 2, "times to run each statement (shows cache hits)")
	fs.Parse(args)

	d, sys, err := daemonWith(*host, 1, pmove.DefaultPipeline(), pmove.WithIntrospection())
	if err != nil {
		return err
	}
	spec, err := pmove.LikwidKernel(*kernel, sys.CPU.WidestISA(), 8<<20, 500)
	if err != nil {
		return err
	}
	res, err := d.Observe(pmove.ObserveRequest{
		Host: *host, Workload: spec,
		Command: "likwid-bench -t " + *kernel,
		Threads: *threads, Pin: topo.PinStrategy("balanced"),
		GenericEvents: []string{abst.GenericTotalMemOps, abst.GenericInstructions, abst.GenericCycles},
		FreqHz:        *freq,
	})
	if err != nil {
		return err
	}

	var stmts []string
	if *stmt != "" {
		stmts = []string{*stmt}
	} else {
		for _, m := range res.Observation.Metrics {
			cols := make([]string, 0, len(m.Fields))
			for _, f := range m.Fields {
				cols = append(cols, fmt.Sprintf("%s(%q)", *agg, f))
			}
			s := fmt.Sprintf("SELECT %s FROM %q WHERE tag=%q",
				strings.Join(cols, ", "), m.Measurement, res.Observation.Tag)
			if *window != "" {
				s += fmt.Sprintf(" GROUP BY time(%s)", *window)
			}
			stmts = append(stmts, s)
		}
	}

	ctx := context.Background()
	for _, s := range stmts {
		q, err := pmove.ParseQuery(s)
		if err != nil {
			return err
		}
		fmt.Println(q.String())
		var r *pmove.QueryResult
		for i := 0; i < *repeat || i == 0; i++ {
			r, err = d.TS.ExecuteContext(ctx, pmove.QueryRequest{
				Query: q, Workers: *workers, SkipCache: *nocache,
			})
			if err != nil {
				return err
			}
		}
		for _, row := range r.Rows {
			fmt.Printf("  t=%-16d", row.Time)
			for _, c := range r.Columns {
				if v, ok := row.Values[c]; ok {
					fmt.Printf(" %s=%.6g", c, v)
				}
			}
			fmt.Println()
		}
		if len(r.Rows) == 0 {
			fmt.Println("  (no rows)")
		}
	}

	fmt.Println("\nquery engine self-metrics (exported as pmove.self.*):")
	snap := d.SelfSnapshot()
	for _, m := range snap.Metrics {
		if strings.HasPrefix(m.Name, "query.cache.") {
			fmt.Printf("  %-28s %.0f\n", m.Name, m.Value)
		}
	}
	return nil
}
