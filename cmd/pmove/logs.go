package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"

	"pmove/internal/introspect/expose"
)

// cmdLogs dumps a running daemon's structured log ring through its
// observability plane (`pmove monitor -expose :9100`, or any process
// serving an expose.Server). Filters mirror the /logs endpoint exactly —
// both sides share expose.ParseLogQuery.
func cmdLogs(args []string) error {
	fs := flag.NewFlagSet("logs", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9100", "observability-plane address of the target process")
	level := fs.String("level", "", "minimum level: debug|info|warn|error")
	trace := fs.String("trace", "", "only records of this 128-bit trace id (32 hex digits)")
	component := fs.String("component", "", "only records from this component (e.g. telemetry, transport.tsdb, tsdb.server)")
	limit := fs.Int("limit", 0, "keep only the newest N matching records (0 = all)")
	asJSON := fs.Bool("json", false, "print raw JSON records instead of formatted lines")
	fs.Parse(args)

	// Validate locally before the round trip so flag typos fail fast with
	// the same message the server would produce.
	limitStr := ""
	if *limit > 0 {
		limitStr = fmt.Sprint(*limit)
	}
	if _, err := expose.ParseLogQuery(*level, *trace, *component, limitStr); err != nil {
		return err
	}

	q := url.Values{}
	for k, v := range map[string]string{
		"level": *level, "trace": *trace, "component": *component, "limit": limitStr,
	} {
		if v != "" {
			q.Set(k, v)
		}
	}
	u := "http://" + *addr + "/logs"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := http.Get(u)
	if err != nil {
		return fmt.Errorf("is the target running with -expose? %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	var recs []expose.LogRecordJSON
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(recs)
	}
	for _, r := range recs {
		fmt.Println(formatLogRecord(r))
	}
	fmt.Printf("%d records\n", len(recs))
	return nil
}

// formatLogRecord renders one record as a single grep-friendly line.
func formatLogRecord(r expose.LogRecordJSON) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-5s %-20s %s", r.Time, strings.ToUpper(r.Level), r.Component, r.Msg)
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, r.Fields[k])
	}
	if r.Trace != "" {
		fmt.Fprintf(&b, " trace=%s span=%s", r.Trace, r.Span)
	}
	return b.String()
}
