// Command pmove is the P-MoVE daemon CLI. It drives the framework against
// a simulated target system:
//
//	pmove probe   -host skx                          probe and print the KB summary
//	pmove views   -host skx -kind thread             print a KB view
//	pmove monitor -host icl -freq 4 -duration 30     Scenario A monitoring
//	pmove observe -host csl -kernel triad -threads 8 Scenario B observation
//	pmove carm    -host csl -threads 8               construct and print the CARM
//	pmove bench   -host csl -name stream -threads 8  run a BenchmarkInterface
//	pmove abst    -arch zen3 -event TOTAL_MEMORY_OPERATIONS
//	pmove introspect -host icl -duration 5           run a monitored op and dump P-MoVE's own telemetry
//	pmove trace -host icl -chrome trace.json         distributed-trace a monitored op across daemon + tsdb server
//	pmove monitor -host icl -expose :9100 -hold 30s  monitor with the live observability plane up for scrapers
//	pmove logs -addr 127.0.0.1:9100 -level warn      dump/filter a running daemon's structured log ring
//
// All state is embedded; -influx/-mongo accept external tsdb/docdb server
// addresses started with cmd/superdb. `monitor -self-monitor` enables the
// self-observability layer for a regular run: the daemon's own counters
// land in the pmove.self.* series next to the target's telemetry.
// `monitor -expose` additionally serves /metrics (OpenMetrics), /healthz,
// /readyz, /debug/vars and /logs over HTTP for the run's duration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pmove"
	"pmove/internal/abst"
	"pmove/internal/kernels"
	"pmove/internal/ontology"
	"pmove/internal/resilience"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmove <probe|views|monitor|observe|carm|bench|abst|whatif|scan|cluster|introspect|trace|logs|query> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "probe":
		err = cmdProbe(args)
	case "views":
		err = cmdViews(args)
	case "monitor":
		err = cmdMonitor(args)
	case "observe":
		err = cmdObserve(args)
	case "carm":
		err = cmdCARM(args)
	case "bench":
		err = cmdBench(args)
	case "abst":
		err = cmdAbst(args)
	case "whatif":
		err = cmdWhatIf(args)
	case "scan":
		err = cmdScan(args)
	case "cluster":
		err = cmdCluster(args)
	case "introspect":
		err = cmdIntrospect(args)
	case "trace":
		err = cmdTrace(args)
	case "logs":
		err = cmdLogs(args)
	case "query":
		err = cmdQuery(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmove %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// daemonFor builds a daemon with one attached, probed target.
func daemonFor(host string, seed uint64) (*pmove.Daemon, *pmove.System, error) {
	return daemonWith(host, seed, pmove.DefaultPipeline())
}

// daemonWith is daemonFor with an explicit pipeline configuration plus any
// construction options (e.g. pmove.WithIntrospection()).
func daemonWith(host string, seed uint64, pipe pmove.PipelineConfig, opts ...pmove.DaemonOption) (*pmove.Daemon, *pmove.System, error) {
	d, err := pmove.NewDaemonWith(append([]pmove.DaemonOption{pmove.WithEnv(pmove.EnvFromOS())}, opts...)...)
	if err != nil {
		return nil, nil, err
	}
	sys, err := pmove.NewPreset(host)
	if err != nil {
		return nil, nil, err
	}
	if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: seed}, pipe); err != nil {
		return nil, nil, err
	}
	if _, err := d.Probe(host); err != nil {
		return nil, nil, err
	}
	return d, sys, nil
}

func cmdProbe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	host := fs.String("host", "skx", "target preset (skx|icl|csl|zen3)")
	gpu := fs.Bool("gpu", false, "attach a GPU to the target")
	fs.Parse(args)
	d, err := pmove.NewDaemon(pmove.EnvFromOS())
	if err != nil {
		return err
	}
	sys, err := pmove.NewPreset(*host)
	if err != nil {
		return err
	}
	if *gpu {
		sys = pmove.WithGPU(sys)
	}
	if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: 1}, pmove.DefaultPipeline()); err != nil {
		return err
	}
	kb, err := d.Probe(*host)
	if err != nil {
		return err
	}
	fmt.Printf("host %s: %d component twins, root %s\n", kb.Host, kb.Len(), kb.Root().ID)
	for _, kind := range ontology.Kinds() {
		nodes := kb.NodesOfKind(kind)
		if len(nodes) > 0 {
			fmt.Printf("  %-8s %4d\n", kind, len(nodes))
		}
	}
	st, err := kb.TripleStore()
	if err != nil {
		return err
	}
	fmt.Printf("linked data: %d RDF triples\n", st.Len())
	return nil
}

func cmdViews(args []string) error {
	fs := flag.NewFlagSet("views", flag.ExitOnError)
	host := fs.String("host", "skx", "target preset")
	kind := fs.String("kind", "socket", "component kind for the level view")
	fs.Parse(args)
	d, _, err := daemonFor(*host, 1)
	if err != nil {
		return err
	}
	kb, err := d.KB(*host)
	if err != nil {
		return err
	}
	v, err := kb.LevelView(pmove.ComponentKind(*kind))
	if err != nil {
		return err
	}
	fmt.Println(v.Title)
	for _, n := range v.Nodes {
		fmt.Printf("  %-40s %s\n", n.ID, n.Interface.DisplayName)
	}
	dash, err := d.Gen.FromView(v)
	if err != nil {
		return err
	}
	b, err := dash.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("\ndashboard JSON (%d panels, %d bytes)\n", len(dash.Panels), len(b))
	return nil
}

func cmdMonitor(args []string) error {
	def := resilience.DefaultPolicy()
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	host := fs.String("host", "icl", "target preset")
	freq := fs.Float64("freq", 2, "sampling frequency in Hz")
	duration := fs.Float64("duration", 10, "virtual seconds to monitor")
	influx := fs.String("influx", "", "remote tsdb address (host:port, see cmd/superdb); ships telemetry over the resilient client instead of the embedded store")
	degraded := fs.Bool("degraded", false, "journal telemetry locally across sink outages and replay on reconnect")
	journalCap := fs.Int("journal-cap", 0, "degraded-mode spill journal bound in points (0 = default)")
	dataDir := fs.String("data-dir", "", "back the embedded databases (and, with -degraded, the spill journal) with WAL+snapshot directories under this path; state survives a crash and is recovered on the next run")
	fsync := fs.String("fsync", "always", "WAL fsync policy for -data-dir: always|interval|never")
	dialTimeout := fs.Duration("dial-timeout", def.DialTimeout, "remote sink connect timeout")
	opTimeout := fs.Duration("op-timeout", def.ReadTimeout, "remote sink per-operation read/write deadline")
	retries := fs.Int("retries", def.MaxRetries, "remote sink retry attempts per operation")
	selfMon := fs.Bool("self-monitor", false, "enable the self-observability layer: export P-MoVE's own counters as pmove.self.* and print them after the run")
	exposeAddr := fs.String("expose", "", "serve the live observability plane on this address (e.g. :9100): /metrics, /healthz, /readyz, /debug/vars, /logs; implies introspection")
	hold := fs.Duration("hold", 0, "keep the daemon (and its -expose plane) up this long after the run, for scrapers")
	fs.Parse(args)

	pipe := pmove.DefaultPipeline()
	pipe.Degraded = *degraded
	pipe.JournalCap = *journalCap
	var opts []pmove.DaemonOption
	if *selfMon {
		opts = append(opts, pmove.WithIntrospection())
	}
	if *exposeAddr != "" {
		opts = append(opts, pmove.WithExpose(*exposeAddr))
	}
	if *dataDir != "" {
		opts = append(opts, pmove.WithDataDir(*dataDir, *fsync))
		if *degraded {
			pipe.JournalDir = filepath.Join(*dataDir, "telemetry")
		}
	}
	d, _, err := daemonWith(*host, 1, pipe, opts...)
	if err != nil {
		return err
	}
	defer d.Close()
	// holdOpen runs after the session: with -expose it announces the
	// plane's bound address, and -hold keeps the process (and so the
	// plane) up for external scrapers before the deferred Close.
	holdOpen := func() {
		if addr := d.ExposeAddr(); addr != "" {
			fmt.Printf("observability plane: http://%s/metrics\n", addr)
		}
		if *hold > 0 {
			time.Sleep(*hold)
		}
	}
	var sink *tsdb.Client
	if *influx != "" {
		pol := def
		pol.DialTimeout = *dialTimeout
		pol.ReadTimeout, pol.WriteTimeout = *opTimeout, *opTimeout
		pol.MaxRetries = *retries
		sink, err = tsdb.DialPolicy(*influx, pol)
		if err != nil {
			return err
		}
		defer sink.Close()
		d.SetTelemetrySink(sink)
	}
	res, err := d.Monitor(*host, nil, *freq, *duration)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("%s\n", res.Observation.Report)
	fmt.Printf("expected %d, inserted %d, zeros %d, lost %d (%.1f%% L, %.1f%% L+Z)\n",
		st.Expected, st.Inserted, st.Zeros, st.Lost, st.LossPct, st.LossPlusZPct)
	if st.Spilled > 0 || st.Pending > 0 {
		fmt.Printf("degraded: spilled %d, replayed %d, evicted %d, pending %d\n",
			st.Spilled, st.Replayed, st.SpillDropped, st.Pending)
	}
	if sink != nil {
		// The points live on the remote store; report the transport's view
		// instead of rendering the (empty) embedded dashboard.
		ts := sink.Stats()
		fmt.Printf("transport: %d dials, %d retries, %d failures, %d breaker opens, %d fast-fails\n",
			ts.Dials, ts.Retries, ts.Failures, ts.BreakerOpens, ts.FastFails)
		if *selfMon {
			printSelfMetrics(d)
		}
		holdOpen()
		return nil
	}
	out, err := pmove.RenderDashboard(d.TS, res.Dashboard, 60)
	if err != nil {
		return err
	}
	fmt.Println(out)
	if *selfMon {
		printSelfMetrics(d)
	}
	holdOpen()
	return nil
}

func cmdObserve(args []string) error {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	host := fs.String("host", "csl", "target preset")
	kernel := fs.String("kernel", "triad", "likwid kernel: "+strings.Join(kernels.LikwidKernels(), "|"))
	threads := fs.Int("threads", 8, "software threads")
	pin := fs.String("pin", "balanced", "pinning strategy")
	freq := fs.Float64("freq", 32, "sampling frequency in Hz")
	wss := fs.Int64("wss", 8<<20, "working set bytes per thread")
	sweeps := fs.Int("sweeps", 2000, "working-set sweeps")
	fs.Parse(args)
	d, sys, err := daemonFor(*host, 1)
	if err != nil {
		return err
	}
	spec, err := pmove.LikwidKernel(*kernel, sys.CPU.WidestISA(), *wss, *sweeps)
	if err != nil {
		return err
	}
	generics := []string{abst.GenericTotalMemOps, abst.GenericEnergy, abst.GenericInstructions, abst.GenericCycles}
	res, err := d.Observe(pmove.ObserveRequest{
		Host: *host, Workload: spec,
		Command: "likwid-bench -t " + *kernel,
		Threads: *threads, Pin: topo.PinStrategy(*pin),
		GenericEvents: generics,
		FreqHz:        *freq,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Observation.Report)
	fmt.Printf("tag %s, affinity %v\n", res.Observation.Tag, res.Observation.Affinity)
	fmt.Println("recall queries:")
	for _, q := range res.Queries {
		if len(q) > 120 {
			q = q[:117] + "..."
		}
		fmt.Printf("  %s\n", q)
	}
	return nil
}

func cmdCARM(args []string) error {
	fs := flag.NewFlagSet("carm", flag.ExitOnError)
	host := fs.String("host", "csl", "target preset")
	threads := fs.Int("threads", 8, "threads")
	fs.Parse(args)
	d, sys, err := daemonFor(*host, 1)
	if err != nil {
		return err
	}
	model, err := d.ConstructCARM(*host, sys.CPU.WidestISA(), *threads)
	if err != nil {
		return err
	}
	fmt.Printf("CARM %s %s %d threads: peak %.1f GFLOP/s\n", model.Host, model.ISA, model.Threads, model.PeakGFLOPS)
	for _, lvl := range []pmove.CacheLevel{pmove.L1, pmove.L2, pmove.L3, pmove.DRAM} {
		ridge, err := model.RidgeAI(lvl)
		if err != nil {
			continue
		}
		fmt.Printf("  %-4s %9.1f GB/s (ridge at AI %.3f)\n", lvl, model.MemGBps[lvl], ridge)
	}
	fmt.Print(pmove.RenderCARM(model, nil, 72, 18))
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	host := fs.String("host", "csl", "target preset")
	name := fs.String("name", "stream", "benchmark: stream|hpcg")
	threads := fs.Int("threads", 8, "threads")
	fs.Parse(args)
	d, _, err := daemonFor(*host, 1)
	if err != nil {
		return err
	}
	var b *pmove.Benchmark
	switch *name {
	case "stream":
		b, err = d.RunSTREAM(*host, *threads)
	case "hpcg":
		b, err = d.RunHPCG(*host, *threads, 1<<18)
	default:
		return fmt.Errorf("unknown benchmark %q", *name)
	}
	if err != nil {
		return err
	}
	fmt.Printf("BenchmarkInterface %s (%s, compiler %s):\n", b.ID, b.Name, b.Compiler)
	for _, r := range b.Results {
		fmt.Printf("  %-12s %10.2f %-8s %v\n", r.Metric, r.Value, r.Unit, r.Params)
	}
	return nil
}

func cmdAbst(args []string) error {
	fs := flag.NewFlagSet("abst", flag.ExitOnError)
	arch := fs.String("arch", "skl", "pmu name or alias")
	event := fs.String("event", abst.GenericTotalMemOps, "generic event name")
	fs.Parse(args)
	reg, err := pmove.DefaultAbstRegistry()
	if err != nil {
		return err
	}
	toks, err := reg.Get(*arch, *event)
	if err != nil {
		return err
	}
	fmt.Printf("> pmu_utils.get(%q, %q)\n> %q\n", *arch, *event, toks)
	return nil
}
