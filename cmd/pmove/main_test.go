package main

import (
	"context"
	"testing"

	"pmove/internal/introspect"
	"pmove/internal/introspect/expose"
	"pmove/internal/introspect/logbuf"
)

// The CLI subcommands run end-to-end against embedded state; these tests
// pin their exit behaviour (each cmdX returns nil on a healthy run and an
// error on bad flags).

func TestCmdProbe(t *testing.T) {
	if err := cmdProbe([]string{"-host", "icl", "-gpu"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProbe([]string{"-host", "pdp11"}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestCmdViews(t *testing.T) {
	if err := cmdViews([]string{"-host", "icl", "-kind", "socket"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdViews([]string{"-host", "icl", "-kind", "flux_capacitor"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCmdMonitor(t *testing.T) {
	if err := cmdMonitor([]string{"-host", "icl", "-freq", "2", "-duration", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdMonitorExpose(t *testing.T) {
	if err := cmdMonitor([]string{"-host", "icl", "-freq", "2", "-duration", "3",
		"-expose", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMonitor([]string{"-host", "icl", "-freq", "2", "-duration", "3",
		"-expose", "256.0.0.1:bogus"}); err == nil {
		t.Fatal("bogus expose address accepted")
	}
}

func TestCmdIntrospectJSON(t *testing.T) {
	if err := cmdIntrospect([]string{"-host", "icl", "-duration", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdLogs(t *testing.T) {
	// Stand a plane up with a few ring records and read it back through
	// the subcommand, exactly as against `pmove monitor -expose`.
	logs := logbuf.New(16)
	logs.With("telemetry").Warn(context.Background(), "sink unreachable", "journal_cap", "256")
	logs.With("daemon").Info(context.Background(), "op complete", "op", "monitor")
	srv := expose.NewServer()
	srv.AddSource(expose.SourceFor(introspect.New(), nil))
	srv.SetLogs(logs)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := cmdLogs([]string{"-addr", srv.Addr(), "-level", "warn", "-component", "telemetry"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLogs([]string{"-addr", srv.Addr(), "-json", "-limit", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLogs([]string{"-addr", srv.Addr(), "-level", "loud"}); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := cmdLogs([]string{"-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable plane accepted")
	}
}

func TestCmdObserve(t *testing.T) {
	if err := cmdObserve([]string{"-host", "csl", "-kernel", "ddot", "-threads", "4", "-sweeps", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdObserve([]string{"-host", "csl", "-kernel", "fft"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestCmdCARM(t *testing.T) {
	if err := cmdCARM([]string{"-host", "zen3", "-threads", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdBench(t *testing.T) {
	if err := cmdBench([]string{"-host", "icl", "-name", "stream", "-threads", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBench([]string{"-host", "icl", "-name", "hpcg", "-threads", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBench([]string{"-name", "linpack"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCmdAbst(t *testing.T) {
	if err := cmdAbst([]string{"-arch", "zen3", "-event", "L3_HIT"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAbst([]string{"-arch", "cascade", "-event", "L3_HIT"}); err == nil {
		t.Fatal("Table I says Not Supported — the CLI should error")
	}
}

func TestCmdWhatIf(t *testing.T) {
	if err := cmdWhatIf([]string{"-baseline", "icl", "-kernel", "triad", "-threads", "8", "-wss", "1048576"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatIf([]string{"-baseline", "cray1"}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestCmdScan(t *testing.T) {
	if err := cmdScan([]string{"-host", "csl", "-threads", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCluster(t *testing.T) {
	if err := cmdCluster([]string{"-preset", "icl", "-nodes", "2", "-jobs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdQuery(t *testing.T) {
	// Generated aggregate summaries, windowed, repeated so the second
	// pass exercises the result cache.
	if err := cmdQuery([]string{"-host", "csl", "-kernel", "ddot", "-threads", "4",
		"-freq", "8", "-agg", "mean", "-window", "250ms"}); err != nil {
		t.Fatal(err)
	}
	// A verbatim statement runs as-is (cache bypassed, fixed workers).
	if err := cmdQuery([]string{"-host", "csl", "-kernel", "ddot", "-threads", "4",
		"-freq", "8", "-stmt", `SELECT p99("_cpu0"), count("_cpu0") FROM "kernel_percpu_cpu_idle" GROUP BY time(250ms)`,
		"-workers", "4", "-nocache"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-host", "csl", "-stmt", `SELECT FROM`}); err == nil {
		t.Fatal("unparseable statement accepted")
	}
	if err := cmdQuery([]string{"-host", "csl", "-kernel", "ddot", "-threads", "4",
		"-freq", "8", "-agg", "p200"}); err == nil {
		t.Fatal("out-of-range percentile accepted")
	}
	if err := cmdQuery([]string{"-host", "pdp11"}); err == nil {
		t.Fatal("unknown host accepted")
	}
}
