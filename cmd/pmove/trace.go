package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"pmove"
	"pmove/internal/introspect"
	"pmove/internal/resilience"
	"pmove/internal/tsdb"
)

// cmdTrace runs one monitored session against an in-process tsdb server
// with distributed tracing on in both processes, assembles the resulting
// multi-process trace, and prints the waterfall plus per-hop latency
// attribution. With -chrome the trace is also written as Chrome
// trace-event JSON loadable in chrome://tracing or Perfetto.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	host := fs.String("host", "icl", "target preset")
	freq := fs.Float64("freq", 4, "sampling frequency in Hz")
	duration := fs.Float64("duration", 3, "virtual seconds to monitor")
	sample := fs.Float64("sample", 1, "head-based sampling rate in [0,1] (errors always kept)")
	chrome := fs.String("chrome", "", "write Chrome trace-event JSON to this file")
	fs.Parse(args)

	// Server side: an embedded tsdb server with its own span ring, so the
	// assembled trace crosses a real wire between two processes' rings.
	srv := tsdb.NewServer(tsdb.New())
	serverIn := introspect.New(
		introspect.WithProcess("tsdb-server"),
		introspect.WithSampling(*sample, 0),
		introspect.WithSpanCapacity(1<<14),
	)
	srv.SetTracing(serverIn)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	d, _, err := daemonWith(*host, 1, pmove.DefaultPipeline(),
		pmove.WithIntrospection(
			pmove.WithTraceSampling(*sample, 0),
			pmove.WithSpanCapacity(1<<14),
		))
	if err != nil {
		return err
	}
	sink, err := tsdb.DialPolicy(addr, resilience.DefaultPolicy())
	if err != nil {
		return err
	}
	defer sink.Close()
	d.SetTelemetrySink(sink)

	res, err := d.MonitorContext(context.Background(), pmove.MonitorRequest{
		Host: *host, FreqHz: *freq, DurationSeconds: *duration,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", res.Observation.Report)

	col := pmove.NewTraceCollector()
	col.Add("daemon", d.Introspection.Tracer())
	col.Add("tsdb-server", serverIn.Tracer())
	traces := col.Traces()
	var tr *pmove.Trace
	for i := len(traces) - 1; i >= 0; i-- {
		if _, ok := traces[i].Find("daemon.monitor"); ok {
			tr = traces[i]
			break
		}
	}
	if tr == nil {
		return fmt.Errorf("no assembled trace contains a daemon.monitor span (sampled out? raise -sample)")
	}

	fmt.Println()
	fmt.Print(pmove.TraceWaterfall(tr))
	a := pmove.AttributeTrace(tr)
	fmt.Println()
	fmt.Print(a.String())
	if dropped := d.Introspection.Tracer().Dropped() + serverIn.Tracer().Dropped(); dropped > 0 {
		fmt.Printf("ring evictions: %d spans dropped (pmove.self.trace.dropped)\n", dropped)
	}

	if *chrome != "" {
		b, err := pmove.ChromeTrace(tr)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*chrome, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("chrome trace-event JSON written to %s (%d bytes); load in chrome://tracing or ui.perfetto.dev\n",
			*chrome, len(b))
	}
	return nil
}
