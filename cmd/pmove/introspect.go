package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"pmove"
)

// cmdIntrospect runs a short monitored session with the self-observability
// layer enabled, then dumps everything the layer captured: the metrics
// registry, the span tree, and the auto-generated meta dashboard over the
// daemon's own pmove.self.* series.
func cmdIntrospect(args []string) error {
	fs := flag.NewFlagSet("introspect", flag.ExitOnError)
	host := fs.String("host", "icl", "target preset")
	freq := fs.Float64("freq", 4, "sampling frequency in Hz")
	duration := fs.Float64("duration", 5, "virtual seconds to monitor")
	spans := fs.Bool("spans", true, "print the recorded span tree")
	dashJSON := fs.Bool("dashboard-json", false, "print the meta dashboard JSON instead of a summary")
	jsonOut := fs.Bool("json", false, "dump the registry snapshot as the /debug/vars JSON document instead of the human-readable report")
	fs.Parse(args)

	d, _, err := daemonWith(*host, 1, pmove.DefaultPipeline(), pmove.WithIntrospection())
	if err != nil {
		return err
	}
	res, err := d.MonitorContext(context.Background(), pmove.MonitorRequest{
		Host: *host, FreqHz: *freq, DurationSeconds: *duration,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		// Same encoder the /debug/vars endpoint serves, so tooling can
		// consume either interchangeably.
		return pmove.EncodeSelfVars(os.Stdout, pmove.ExposeSourceFor(d.Introspection, nil))
	}
	fmt.Printf("%s\n", res.Observation.Report)

	printSelfMetrics(d)

	if *spans {
		fmt.Println("\nspan tree:")
		printSpanTree(d.SelfSpans())
		if dropped := d.Introspection.Tracer().Dropped(); dropped > 0 {
			fmt.Printf("  (%d older spans evicted from the ring — pmove.self.trace.dropped)\n", dropped)
		}
	}

	dash, err := d.MetaDashboard()
	if err != nil {
		return err
	}
	if *dashJSON {
		b, err := dash.Encode()
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", b)
		return nil
	}
	b, err := dash.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("\nmeta dashboard %q: %d panels, %d bytes (re-run with -dashboard-json to print)\n",
		dash.Title, len(dash.Panels), len(b))
	return nil
}

// printSelfMetrics renders the daemon's self-metrics snapshot as a table.
func printSelfMetrics(d *pmove.Daemon) {
	snap := d.SelfSnapshot()
	if len(snap.Metrics) == 0 {
		fmt.Println("self-observability: no metrics recorded")
		return
	}
	fmt.Println("\nself metrics (exported as pmove.self.*):")
	for _, m := range snap.Metrics {
		switch m.Kind {
		case pmove.SelfKindHistogram:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Sum / float64(m.Count)
			}
			fmt.Printf("  %-36s histogram  count %-6d mean %.6fs\n", m.Name, m.Count, mean)
		case pmove.SelfKindGauge:
			fmt.Printf("  %-36s gauge      %g\n", m.Name, m.Value)
		default:
			fmt.Printf("  %-36s counter    %.0f\n", m.Name, m.Value)
		}
	}
}

// printSpanTree renders finished spans as an indented tree, children under
// parents, siblings in start order.
func printSpanTree(spans []pmove.SelfSpan) {
	children := map[uint64][]pmove.SelfSpan{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	}
	var walk func(id uint64, depth int)
	walk = func(id uint64, depth int) {
		for _, s := range children[id] {
			status := "ok"
			if s.Err != "" {
				status = "err: " + s.Err
			}
			dur := s.DurationSeconds()
			if math.IsNaN(dur) || dur < 0 {
				dur = 0
			}
			fmt.Printf("  %s%-28s %.6fs  %s\n", strings.Repeat("  ", depth), s.Name, dur, status)
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
}
