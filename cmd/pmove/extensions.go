package main

import (
	"flag"
	"fmt"
	"strings"

	"pmove"
	"pmove/internal/anomaly"
	"pmove/internal/cluster"
	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/spmv"
	"pmove/internal/whatif"
)

// cmdWhatIf predicts a kernel on every preset and prints the upgrade
// recommendation.
func cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	baseline := fs.String("baseline", "icl", "baseline preset")
	kernel := fs.String("kernel", "triad", "likwid kernel")
	threads := fs.Int("threads", 8, "threads")
	wss := fs.Int64("wss", 64<<20, "working set bytes")
	fs.Parse(args)
	base, err := pmove.NewPreset(*baseline)
	if err != nil {
		return err
	}
	spec, err := pmove.LikwidKernel(*kernel, base.CPU.WidestISA(), *wss, 50)
	if err != nil {
		return err
	}
	rec, err := whatif.Recommend(*baseline, spec, *threads)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s: %.4fs, %.1f GFLOP/s, %s-bound\n",
		rec.Baseline.Host, rec.Baseline.Seconds, rec.Baseline.GFLOPS, rec.Baseline.Bottleneck)
	fmt.Printf("%-6s %9s %9s %10s %12s\n", "host", "time (s)", "speedup", "GFLOP/s", "bottleneck")
	for _, c := range rec.Ranked {
		fmt.Printf("%-6s %9.4f %8.2fx %10.1f %12s\n", c.Host, c.Seconds, c.Speedup, c.GFLOPS, c.Bottleneck)
	}
	fmt.Printf("\n%s\n", rec.Suggestion)
	return nil
}

// cmdScan observes an intentionally imbalanced SpMV and reports what the
// anomaly scanner finds, with root-cause paths from the KB.
func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	host := fs.String("host", "csl", "target preset")
	threads := fs.Int("threads", 8, "threads")
	fs.Parse(args)
	d, sys, err := daemonFor(*host, 1)
	if err != nil {
		return err
	}
	// Arrowhead matrix: genuine row-split imbalance.
	n := 1600
	var ri, ci []int
	var vs []float64
	for i := 0; i < n; i++ {
		deg := 4
		if i < n/8 {
			deg = n / 3
		}
		for dd := 0; dd < deg; dd++ {
			ri = append(ri, i)
			ci = append(ci, (i+dd*5+1)%n)
			vs = append(vs, 1)
		}
	}
	mat, err := spmv.FromTriplets("arrow", n, n, ri, ci, vs)
	if err != nil {
		return err
	}
	factors, err := spmv.ThreadWorkFactors(mat, spmv.AlgoMKL, *threads)
	if err != nil {
		return err
	}
	spec, err := spmv.DeriveWorkloadRepeated(sys, mat, spmv.AlgoMKL, *threads, 8000)
	if err != nil {
		return err
	}
	res, err := d.Observe(pmove.ObserveRequest{
		Host: *host, Workload: spec, Command: "spmv --algo mkl --matrix arrow",
		Threads: *threads, Pin: pmove.PinBalanced,
		HWEvents: []string{"INSTRUCTION_RETIRED"}, FreqHz: 50,
		WorkFactors: factors,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s\n\n", res.Observation.Report)
	// Scope the scan to the pinned CPUs.
	var fields []string
	for _, hw := range res.Observation.Affinity {
		fields = append(fields, fmt.Sprintf("_cpu%d", hw))
	}
	scoped := *res.Observation
	scoped.Metrics = nil
	for _, m := range res.Observation.Metrics {
		if strings.HasPrefix(m.Measurement, "perfevent_hwcounters_") {
			scoped.Metrics = append(scoped.Metrics, kb.MetricRef{Measurement: m.Measurement, Fields: fields})
		}
	}
	findings, err := anomaly.DefaultScanner().ScanObservation(d.TS, &scoped)
	if err != nil {
		return err
	}
	k, err := d.KB(*host)
	if err != nil {
		return err
	}
	fmt.Print(anomaly.Report(k, findings))
	return nil
}

// cmdCluster runs a small batch on a simulated cluster and prints the job
// records.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	preset := fs.String("preset", "icl", "node preset")
	nodes := fs.Int("nodes", 4, "node count")
	jobs := fs.Int("jobs", 4, "jobs to submit")
	fs.Parse(args)
	c, err := cluster.New(*preset, *nodes, cluster.Interconnect{LinkGBs: 12.5, LatencyMicros: 2}, 1)
	if err != nil {
		return err
	}
	s := c.Scheduler()
	patterns := []cluster.CommPattern{cluster.CommHalo, cluster.CommAllReduce, cluster.CommAllToAll, cluster.CommNone}
	for i := 0; i < *jobs; i++ {
		sys := c.Nodes()[0].System
		spec, err := kernels.Likwid("triad", sys.CPU.WidestISA(), 4<<20, 300)
		if err != nil {
			return err
		}
		nreq := 1 + i%*nodes
		if _, err := s.Submit(cluster.Job{
			Name: fmt.Sprintf("job%d-%s", i, patterns[i%len(patterns)]), User: "cli",
			Nodes: nreq, ThreadsPerNode: 4, Workload: spec,
			Comm: cluster.CommSpec{Pattern: patterns[i%len(patterns)], BytesPerStep: 4 << 20, Steps: 100},
		}); err != nil {
			return err
		}
	}
	if err := s.Drain(3600); err != nil {
		return err
	}
	fmt.Printf("%-22s %5s %9s %9s %10s %10s\n", "job", "nodes", "wait (s)", "run (s)", "comm (s)", "GFLOP/s")
	for _, r := range s.Records() {
		fmt.Printf("%-22s %5d %9.4f %9.4f %10.4f %10.2f\n",
			r.Name, len(r.NodeNames), r.WaitSeconds(), r.ElapsedSeconds(), r.CommSecs, r.GFLOPSPerNode)
	}
	return nil
}
