// Command experiments regenerates the paper's evaluation tables and
// figures (§V) on the simulated substrates and prints them as text.
//
// Usage:
//
//	experiments [-only table1,table3,fig2,fig4,fig5,fig6,fig7,fig8,fig9,retention,chaos,trace] [-scale small|full]
//
// With no -only flag every experiment runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmove/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	scaleFlag := flag.String("scale", "small", "problem scale: small or full")
	flag.Parse()

	scale := experiments.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(s)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	duration := 10.0
	fig6Dur := 60.0
	threads := 8
	reps := 5
	if scale == experiments.Full {
		duration = 60
		fig6Dur = 600
		threads = 0 // all cores
	}

	type step struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	render := func(f func() (interface{ Render() string }, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f()
			if err != nil {
				return nil, err
			}
			return stringer{r.Render()}, nil
		}
	}
	steps := []step{
		{"table1", render(func() (interface{ Render() string }, error) { return experiments.TableI() })},
		{"table3", render(func() (interface{ Render() string }, error) { return experiments.TableIII(duration) })},
		{"fig2", render(func() (interface{ Render() string }, error) { return experiments.Fig2() })},
		{"fig4", render(func() (interface{ Render() string }, error) { return experiments.Fig4(nil, nil) })},
		{"fig5", render(func() (interface{ Render() string }, error) { return experiments.Fig5("skx", nil, reps) })},
		{"fig6", render(func() (interface{ Render() string }, error) { return experiments.Fig6(nil, fig6Dur) })},
		{"fig7", render(func() (interface{ Render() string }, error) { return experiments.Fig7(scale, threads) })},
		{"fig8", render(func() (interface{ Render() string }, error) { return experiments.Fig8(scale, threads) })},
		{"fig9", render(func() (interface{ Render() string }, error) { return experiments.Fig9(threads) })},
		{"retention", render(func() (interface{ Render() string }, error) {
			return experiments.RetentionStudy(8, 60, []float64{0, 30, 5})
		})},
		{"chaos", render(func() (interface{ Render() string }, error) {
			return experiments.ChaosStudy(60, 10)
		})},
		{"trace", render(func() (interface{ Render() string }, error) {
			return experiments.TraceStudy(60, 10)
		})},
	}

	failed := false
	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		start := time.Now()
		out, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			failed = true
			continue
		}
		fmt.Printf("──── %s (%.2fs wall) ────\n%s\n", s.name, time.Since(start).Seconds(), out)
	}
	if failed {
		os.Exit(1)
	}
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }
