package pmove

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"pmove/internal/experiments"
	"pmove/internal/spmv"
	"pmove/internal/storage"
	"pmove/internal/tsdb"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§V). Each runs the corresponding experiment end-to-end and
// reports the headline quantities as benchmark metrics; `go test -bench=.`
// therefore reprints the whole evaluation. Absolute values come from the
// analytic substrate — the shapes are what reproduce (see EXPERIMENTS.md).

// BenchmarkTableI_AbstractionLayer resolves the Table I generic events on
// Intel Cascade and AMD Zen3 through the Abstraction Layer.
func BenchmarkTableI_AbstractionLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIII_Throughput reruns the throughput/loss sweep: sampling
// frequency {2,8,32} Hz x metric count {4,5,6} on skx and icl.
func BenchmarkTableIII_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(10)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Host == "skx" && r.FreqHz == 32 && r.NMetrics == 5 {
				b.ReportMetric(r.LossPct, "skx32hz-loss-%")
				b.ReportMetric(r.Tput, "skx32hz-pts/s")
			}
			if r.Host == "icl" && r.FreqHz == 32 && r.NMetrics == 5 {
				b.ReportMetric(r.LZPct, "icl32hz-L+Z-%")
			}
		}
	}
}

// BenchmarkFig2_Dashboards generates the four auto-dashboard classes of
// Fig 2 from freshly probed skx and icl knowledge bases.
func BenchmarkFig2_Dashboards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		panels := 0
		for _, n := range res.PanelCounts {
			panels += n
		}
		b.ReportMetric(float64(panels), "panels")
	}
}

// BenchmarkFig4_Accuracy measures the relative error between sampled and
// ground-truth counts for the likwid kernels across frequencies.
func BenchmarkFig4_Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4([]string{"skx", "icl", "zen3"}, []float64{2, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range res.Averaged() {
			if e := abs(r.FlopsErr); e > worst {
				worst = e
			}
			if e := abs(r.BytesErr); e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst*100, "worst-err-%")
	}
}

// BenchmarkFig5_Overhead measures kernel run-time overhead with and
// without PMU sampling (5 repetitions averaged, as in the paper).
func BenchmarkFig5_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5("skx", []float64{2, 8, 32}, 5)
		if err != nil {
			b.Fatal(err)
		}
		var at32, n32 float64
		for _, r := range res.Rows {
			if r.FreqHz == 32 {
				at32 += r.OverheadPct
				n32++
			}
		}
		b.ReportMetric(at32/n32, "overhead32hz-%")
	}
}

// BenchmarkFig6_ResourceUsage measures per-agent CPU/memory and pipeline
// network/disk rates across sampling intervals on an idle skx.
func BenchmarkFig6_ResourceUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6([]float64{0.25, 0.5, 1, 2, 4, 8}, 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Agent == "pmcd" && r.IntervalSec == 1 {
				b.ReportMetric(r.NetKBps, "net-KB/s@1Hz")
			}
		}
	}
}

// BenchmarkFig7_SpMVMonitoring runs the full Fig 7 experiment: MKL and
// merge SpMV over the five (synthetic) Table IV matrices, original vs
// RCM-reordered, observed through Scenario B on CSL.
func BenchmarkFig7_SpMVMonitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Small, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupPct(), "rcm-speedup-%")
	}
}

// BenchmarkFig8_LiveCARMSpMV feeds the four SpMV phases through the
// live-CARM panel over a freshly constructed CSL roofline model.
func BenchmarkFig8_LiveCARMSpMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Small, 8)
		if err != nil {
			b.Fatal(err)
		}
		if s, ok := res.Summary("mkl/rcm"); ok {
			b.ReportMetric(s.MedianGF, "mkl-rcm-GFLOPS")
		}
		if s, ok := res.Summary("merge/rcm"); ok {
			b.ReportMetric(s.MedianGF, "merge-rcm-GFLOPS")
		}
	}
}

// BenchmarkFig9_LiveCARMBenchmarks profiles Triad, PeakFlops and DDOT
// against the live-CARM roofs.
func BenchmarkFig9_LiveCARMBenchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			b.ReportMetric(r.MedianAI, r.Kernel+"-AI")
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// --- Component micro-benchmarks -----------------------------------------

// BenchmarkTSDBWrite measures raw point-insert throughput of the
// time-series substrate.
func BenchmarkTSDBWrite(b *testing.B) {
	db := tsdb.New()
	fields := map[string]float64{}
	for c := 0; c < 88; c++ {
		fields[fmt.Sprintf("_cpu%d", c)] = float64(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tsdb.Point{Measurement: "m", Fields: fields, Time: int64(i)}
		if err := db.WritePoint(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(fields)), "values/point")
}

// BenchmarkTSDBWriteParallel sweeps the durable sharded ingest path:
// writer goroutines (1/4/16) x batch size (1/16/256), each writer
// appending in time order to its own measurement — the telemetry
// shape, one shipper per target — against a WAL-backed store with
// fsync=always. Batch size 1 is the seed ingest discipline (one WAL
// append + fsync per point); larger batches ride the group commit
// (one CRC-framed record, one fsync per batch). The points/s metric
// is the perf trajectory BENCH_7.json records; the acceptance ratio
// compares g16/b256 against the g1/b1 single-point baseline.
func BenchmarkTSDBWriteParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		for _, batch := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("g%d/b%d", g, batch), func(b *testing.B) {
				db, err := tsdb.Open(b.TempDir(), storage.FsyncAlways)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				fields := map[string]float64{}
				for c := 0; c < 8; c++ {
					fields[fmt.Sprintf("_cpu%d", c)] = float64(c)
				}
				ctx := context.Background()
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					n := b.N / g
					if w < b.N%g {
						n++
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						m := fmt.Sprintf("m%d", w)
						buf := make([]tsdb.Point, 0, batch)
						for i := 0; i < n; i++ {
							p := tsdb.Point{Measurement: m, Fields: fields, Time: int64(i)}
							if batch == 1 {
								if err := db.WritePoint(p); err != nil {
									b.Error(err)
									return
								}
								continue
							}
							buf = append(buf, p)
							if len(buf) == batch {
								if err := db.WriteBatchContext(ctx, buf); err != nil {
									b.Error(err)
									return
								}
								buf = buf[:0]
							}
						}
						if len(buf) > 0 {
							if err := db.WriteBatchContext(ctx, buf); err != nil {
								b.Error(err)
							}
						}
					}(w, n)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/s")
				if points, _ := db.Stats(); points != uint64(b.N) {
					b.Fatalf("conservation: %d points stored, want %d", points, b.N)
				}
			})
		}
	}
}

// BenchmarkTSDBQuery measures SELECT latency over 10k rows.
func BenchmarkTSDBQuery(b *testing.B) {
	db := tsdb.New()
	for i := 0; i < 10000; i++ {
		db.WritePoint(tsdb.Point{
			Measurement: "m", Tags: map[string]string{"tag": "t"},
			Fields: map[string]float64{"_cpu0": 1}, Time: int64(i),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.QueryString(`SELECT "_cpu0" FROM "m" WHERE tag="t"`)
		if err != nil || len(res.Rows) != 10000 {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAggregate sweeps the aggregation engine: worker count
// (1/4/16) x dataset size (1e4/1e6 points), each iteration running the
// same windowed mean+p99 scan with the result cache bypassed so the
// stripe fan-out is what's measured. The raw/* rows are the baseline
// the engine replaces: materialize every matching row (one map
// allocation per point) and fold the mean client-side — the only way
// to aggregate before the engine existed. ci.sh records the points/s
// trajectory in BENCH_9.json and gates w16 at n=1e6 against raw
// (>=2x, any machine) and against w1 (>=2x, only with >=4 CPUs —
// stripe parallelism cannot speed up a single core).
func BenchmarkQueryAggregate(b *testing.B) {
	sizes := []int{10000, 1000000}
	dbs := map[int]*tsdb.DB{}
	for _, n := range sizes {
		db := tsdb.New()
		batch := make([]tsdb.Point, 0, 4096)
		ctx := context.Background()
		for i := 0; i < n; i++ {
			batch = append(batch, tsdb.Point{
				Measurement: "m", Tags: map[string]string{"tag": "t"},
				Fields: map[string]float64{"f": float64(i%997) / 4},
				Time:   int64(i),
			})
			if len(batch) == cap(batch) {
				if err := db.WriteBatchContext(ctx, batch); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := db.WriteBatchContext(ctx, batch); err != nil {
				b.Fatal(err)
			}
		}
		dbs[n] = db
	}
	aggQ, err := tsdb.ParseQuery(`SELECT mean("f"), p99("f") FROM "m" WHERE tag="t" GROUP BY time(65536)`)
	if err != nil {
		b.Fatal(err)
	}
	rawQ, err := tsdb.ParseQuery(`SELECT "f" FROM "m" WHERE tag="t"`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range sizes {
		db := dbs[n]
		b.Run(fmt.Sprintf("raw/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := db.ExecuteContext(ctx, tsdb.QueryRequest{Query: rawQ})
				if err != nil || len(res.Rows) != n {
					b.Fatalf("rows=%d err=%v", len(res.Rows), err)
				}
				sum := 0.0
				for _, r := range res.Rows {
					sum += r.Values["f"]
				}
				if sum == 0 {
					b.Fatal("empty fold")
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
		for _, w := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("w%d/n%d", w, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := db.ExecuteContext(ctx, tsdb.QueryRequest{
						Query: aggQ, Workers: w, SkipCache: true,
					})
					if err != nil || len(res.Rows) == 0 {
						b.Fatalf("rows=%d err=%v", len(res.Rows), err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
			})
		}
	}
}

// BenchmarkStorageFootprint pins the columnar engine's headline claim:
// resident bytes/point of the sealed-block store vs the row
// representation it replaced (one Point struct + a Tags map + a Fields
// map per sample — what the pre-columnar engine kept resident). Both
// figures are live-heap deltas after a forced GC, so only retained
// memory counts. ci.sh records both in BENCH_10.json and gates the
// ratio at >= 4x.
func BenchmarkStorageFootprint(b *testing.B) {
	const n = 1_000_000
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	b.Run(fmt.Sprintf("rowstore/n%d", n), func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			base := heap()
			pts := make([]tsdb.Point, 0, n)
			for i := 0; i < n; i++ {
				pts = append(pts, tsdb.Point{
					Measurement: "m", Tags: map[string]string{"tag": "t"},
					Fields: map[string]float64{"f": float64(i%997) / 4},
					Time:   int64(i),
				})
			}
			perPoint := float64(heap()-base) / n
			runtime.KeepAlive(pts)
			b.ReportMetric(perPoint, "bytes/point")
		}
	})
	b.Run(fmt.Sprintf("columnar/n%d", n), func(b *testing.B) {
		ctx := context.Background()
		for it := 0; it < b.N; it++ {
			base := heap()
			db := tsdb.New()
			batch := make([]tsdb.Point, 0, 4096)
			for i := 0; i < n; i++ {
				batch = append(batch, tsdb.Point{
					Measurement: "m", Tags: map[string]string{"tag": "t"},
					Fields: map[string]float64{"f": float64(i%997) / 4},
					Time:   int64(i),
				})
				if len(batch) == cap(batch) {
					if err := db.WriteBatchContext(ctx, batch); err != nil {
						b.Fatal(err)
					}
					batch = batch[:0]
				}
			}
			perPoint := float64(heap()-base) / n
			runtime.KeepAlive(db)
			b.ReportMetric(perPoint, "bytes/point")
		}
	})
}

// BenchmarkBlockScan measures aggregate scan throughput over the
// sealed-block store against the row-scan it replaced. The rowscan mode
// is an honest replica of the pre-columnar per-point fold (tag-filter
// map probe, Fields map lookup, window map upsert, percentile sample
// retention per matching point); the engine mode runs the same windowed
// mean+p99 statement through ExecuteContext with one worker and the
// cache bypassed, so the data layout is the only variable. ci.sh
// records both at 1e4/1e6 in BENCH_10.json and gates engine/rowscan at
// n=1e6 >= 2x.
func BenchmarkBlockScan(b *testing.B) {
	sizes := []int{10000, 1000000}
	mkPoints := func(n int) []tsdb.Point {
		pts := make([]tsdb.Point, 0, n)
		for i := 0; i < n; i++ {
			pts = append(pts, tsdb.Point{
				Measurement: "m", Tags: map[string]string{"tag": "t"},
				Fields: map[string]float64{"f": float64(i%997) / 4},
				Time:   int64(i),
			})
		}
		return pts
	}
	aggQ, err := tsdb.ParseQuery(`SELECT mean("f"), p99("f") FROM "m" WHERE tag="t" GROUP BY time(65536)`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range sizes {
		pts := mkPoints(n)
		b.Run(fmt.Sprintf("rowscan/n%d", n), func(b *testing.B) {
			type winAgg struct {
				count   int
				sum     float64
				samples []float64
			}
			for it := 0; it < b.N; it++ {
				wins := map[int64]*winAgg{}
				for i := range pts {
					p := &pts[i]
					if p.Tags["tag"] != "t" {
						continue
					}
					v, ok := p.Fields["f"]
					if !ok {
						continue
					}
					w := (p.Time / 65536) * 65536
					st := wins[w]
					if st == nil {
						st = &winAgg{}
						wins[w] = st
					}
					st.count++
					st.sum += v
					st.samples = append(st.samples, v)
				}
				rows := 0
				for _, st := range wins {
					sort.Float64s(st.samples)
					mean := st.sum / float64(st.count)
					p99 := st.samples[(len(st.samples)-1)*99/100]
					if mean == 0 && p99 == 0 {
						b.Fatal("empty fold")
					}
					rows++
				}
				if rows == 0 {
					b.Fatal("no windows")
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
		db := tsdb.New()
		for i := 0; i < len(pts); i += 4096 {
			end := i + 4096
			if end > len(pts) {
				end = len(pts)
			}
			if err := db.WriteBatchContext(ctx, pts[i:end]); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("engine/n%d", n), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				res, err := db.ExecuteContext(ctx, tsdb.QueryRequest{Query: aggQ, Workers: 1, SkipCache: true})
				if err != nil || len(res.Rows) == 0 {
					b.Fatalf("rows=%d err=%v", len(res.Rows), err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
		// Footer-only aggregates skip decompression entirely: the same
		// windows answered from block footers (no percentile).
		sumQ, err := tsdb.ParseQuery(`SELECT sum("f"), count("f") FROM "m" WHERE tag="t" GROUP BY time(65536)`)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("footer/n%d", n), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				res, err := db.ExecuteContext(ctx, tsdb.QueryRequest{Query: sumQ, Workers: 1, SkipCache: true})
				if err != nil || len(res.Rows) == 0 {
					b.Fatalf("rows=%d err=%v", len(res.Rows), err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkKBGenerate measures full knowledge-base generation for the
// 88-thread skx (the probe -> KB path of Figure 3).
func BenchmarkKBGenerate(b *testing.B) {
	d, err := NewDaemon(EnvFromOS())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.AttachTarget(MustPreset(PresetSKX), MachineConfig{Seed: 1}, DefaultPipeline()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb, err := d.Probe(PresetSKX)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(kb.Len()), "twins")
		}
	}
}

// BenchmarkSpMVMerge measures the real merge-path SpMV kernel on a
// synthetic mesh.
func BenchmarkSpMVMerge(b *testing.B) {
	benchSpMV(b, AlgoMerge)
}

// BenchmarkSpMVRowSplit measures the MKL-style row-partitioned kernel.
func BenchmarkSpMVRowSplit(b *testing.B) {
	benchSpMV(b, AlgoMKL)
}

func benchSpMV(b *testing.B, algo SpMVAlgorithm) {
	m, err := GenerateMatrix("adaptive", 250000, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpMV(m, algo, x, y, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*m.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "real-GFLOP/s")
}

// BenchmarkRCM measures the Reverse Cuthill-McKee reordering.
func BenchmarkRCM(b *testing.B) {
	m, err := GenerateMatrix("adaptive", 100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Reorder(m, OrderRCM, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCARMConstruction measures full roofline construction (all
// levels and the FP probe) on the analytic engine.
func BenchmarkCARMConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := NewDaemon(EnvFromOS())
		if err != nil {
			b.Fatal(err)
		}
		sys := MustPreset(PresetCSL)
		if _, err := d.AttachTarget(sys, MachineConfig{Seed: uint64(i)}, DefaultPipeline()); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Probe(PresetCSL); err != nil {
			b.Fatal(err)
		}
		model, err := d.ConstructCARM(PresetCSL, ISAAVX512, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(model.PeakGFLOPS, "peak-GFLOPS")
		}
	}
}

// BenchmarkMergePathSearch measures the merge-path binary search that
// load-balances the merge SpMV.
func BenchmarkMergePathSearch(b *testing.B) {
	m, err := GenerateMatrix("human_gene1", 1500, 1)
	if err != nil {
		b.Fatal(err)
	}
	nnz := m.NNZ()
	total := m.Rows + nnz
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := (i * 7919) % total
		c := spmv.MergePathSearch(d, m.RowPtr, m.Rows, nnz)
		if c.Row+c.NNZ != d {
			b.Fatal("broken search")
		}
	}
}
