package dashboard

import (
	"context"
	"strings"
	"testing"

	"pmove/internal/tsdb"
)

func seedAggDB(t *testing.T) *tsdb.DB {
	t.Helper()
	db := tsdb.New()
	for i := int64(0); i < 40; i++ {
		if err := db.WritePoint(tsdb.Point{
			Measurement: "m1",
			Tags:        map[string]string{"tag": "t"},
			Fields:      map[string]float64{"_cpu0": float64(i % 8)},
			Time:        i * 1000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestTargetQueryShapes pins Target.Query across the raw and
// aggregated renderings, including the errors the canonical grammar
// surfaces at build time rather than downstream.
func TestTargetQueryShapes(t *testing.T) {
	raw, err := Target{Measurement: "m1", Params: "_cpu0", Tag: "t"}.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Fields) != 1 || raw.Fields[0] != "_cpu0" || len(raw.Aggregates) != 0 {
		t.Fatalf("raw query: %+v", raw)
	}
	star, err := Target{Measurement: "m1"}.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(star.Fields) != 1 || star.Fields[0] != "*" {
		t.Fatalf("star query: %+v", star)
	}
	agg, err := Target{Measurement: "m1", Params: "_cpu0", Tag: "t", Agg: "p99", Window: "5s"}.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Aggregates) != 1 || agg.Aggregates[0].Fn != "p" || agg.Aggregates[0].Pct != 99 {
		t.Fatalf("agg query: %+v", agg)
	}
	if agg.GroupBy != int64(5e9) {
		t.Fatalf("window: %d", agg.GroupBy)
	}
	if _, err := (Target{Measurement: "m1", Params: "f", Window: "5s"}).Query(); err == nil {
		t.Fatal("window without aggregate accepted")
	}
	if _, err := (Target{Measurement: "m1", Params: "f", Agg: "median"}).Query(); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	if _, err := (Target{Measurement: "m1", Params: "f", Agg: "mean", Window: "fast"}).Query(); err == nil {
		t.Fatal("unparseable window accepted")
	}
}

// TestFetchSeriesAggregated runs an aggregated target end to end: one
// (time, value) pair per GROUP BY window read from the aggregate
// column, and a single whole-range pair when unwindowed.
func TestFetchSeriesAggregated(t *testing.T) {
	db := seedAggDB(t)
	ctx := context.Background()

	tgt := Target{Measurement: "m1", Params: "_cpu0", Tag: "t", Agg: "mean", Window: "10us"}
	ts, vs, err := FetchSeriesContext(ctx, db, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 { // 40 points x 1us spacing / 10us windows
		t.Fatalf("windows: %d (%v)", len(ts), ts)
	}
	for i, v := range vs {
		// Each 10-point window holds a full residue cycle of i%8 plus two
		// repeats; all windows stay within the residue range.
		if v < 0 || v > 7 {
			t.Fatalf("window %d mean %v out of range", i, v)
		}
	}

	whole, wv, err := FetchSeriesContext(ctx, db, Target{Measurement: "m1", Params: "_cpu0", Tag: "t", Agg: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != 1 || wv[0] != 40 {
		t.Fatalf("whole-range count: %v %v", whole, wv)
	}

	if _, _, err := FetchSeriesContext(ctx, db, Target{Measurement: "m1", Params: "f", Window: "1s"}); err == nil {
		t.Fatal("bad target fetched")
	}
}

// TestRenderAggregatedLabel pins the chart label for aggregated
// targets: measurement, aggregate(field) and the window.
func TestRenderAggregatedLabel(t *testing.T) {
	db := seedAggDB(t)
	d := &Dashboard{ID: 1, Title: "agg", Panels: []Panel{{ID: 1, Title: "p", Targets: []Target{
		{Measurement: "m1", Params: "_cpu0", Tag: "t", Agg: "mean", Window: "10us"},
	}}}, Time: TimeRange{From: "now-5m", To: "now"}}
	out, err := RenderDashboardASCII(db, d, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m1 mean(_cpu0) by 10us") {
		t.Errorf("aggregated label missing:\n%s", out)
	}
}
