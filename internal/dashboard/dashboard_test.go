package dashboard

import (
	"strings"
	"testing"

	"pmove/internal/kb"
	"pmove/internal/ontology"
	"pmove/internal/pmu"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

func testKB(t *testing.T, preset string) *kb.KB {
	t.Helper()
	p := topo.NewProber()
	p.EventLister = func(arch string) []string {
		cat, err := pmu.CatalogFor(arch)
		if err != nil {
			return nil
		}
		return cat.Names()
	}
	doc, err := p.Probe(topo.MustPreset(preset))
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.Generate(doc, kb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestListing1RoundTrip(t *testing.T) {
	// The paper's Listing 1, structurally.
	src := `{
		"id": 1,
		"panels": [
			{"id": 1,
			 "targets": [{
				"datasource": {"type": "influxdb", "uid": "UUkm1881"},
				"measurement": "perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE_value",
				"params": "_cpu0"}]}
		],
		"time": {"from": "now-5m", "to": "now"}
	}`
	d, err := Decode([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Time.From != "now-5m" || d.Time.To != "now" {
		t.Errorf("time range: %+v", d.Time)
	}
	tg := d.Panels[0].Targets[0]
	if tg.Datasource.UID != "UUkm1881" || tg.Params != "_cpu0" {
		t.Errorf("target: %+v", tg)
	}
	// Round trip through Encode.
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Panels[0].Targets[0].Measurement != tg.Measurement {
		t.Error("round trip lost measurement")
	}
}

func TestValidateRejectsBadDashboards(t *testing.T) {
	ds := Datasource{Type: "influxdb", UID: "u"}
	bad := []*Dashboard{
		{Panels: []Panel{{ID: 1, Targets: []Target{{Datasource: ds, Measurement: "m"}}}, {ID: 1, Targets: []Target{{Datasource: ds, Measurement: "m"}}}}},
		{Panels: []Panel{{ID: 1}}},
		{Panels: []Panel{{ID: 1, Targets: []Target{{Datasource: ds}}}}},
		{Panels: []Panel{{ID: 1, Targets: []Target{{Measurement: "m"}}}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad dashboard %d accepted", i)
		}
	}
}

func TestFromViewGeneratesPanels(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	g := NewGenerator("UUkm1881")
	lv, err := k.LevelView(ontology.KindThread)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.FromView(lv)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Panels) != 16 {
		t.Errorf("panels = %d, want one per thread", len(d.Panels))
	}
	// Targets carry the KB's DBName/FieldName wiring.
	found := false
	for _, tgt := range d.Panels[0].Targets {
		if tgt.Measurement == "kernel_percpu_cpu_idle" && tgt.Params == "_cpu0" {
			found = true
		}
		if tgt.Datasource.UID != "UUkm1881" || tgt.Datasource.Type != "influxdb" {
			t.Errorf("datasource: %+v", tgt.Datasource)
		}
	}
	if !found {
		t.Error("cpu0 idle target missing from the first thread panel")
	}
	// Panel ids are unique across the dashboard.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromViewSkipsTelemetrylessNodes(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	g := NewGenerator("u")
	// Caches carry only properties, so a cache-level view has no panels.
	lv, err := k.LevelView(ontology.KindCache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.FromView(lv); err == nil {
		t.Error("view without telemetry should be rejected, not rendered empty")
	}
}

func TestFromViewEmpty(t *testing.T) {
	g := NewGenerator("u")
	if _, err := g.FromView(nil); err == nil {
		t.Error("nil view accepted")
	}
	if _, err := g.FromView(&kb.View{}); err == nil {
		t.Error("empty view accepted")
	}
}

func TestForObservation(t *testing.T) {
	g := NewGenerator("u")
	o := &kb.Observation{
		Tag: "abc", Command: "spmv",
		Metrics: []kb.MetricRef{
			{Measurement: "perfevent_hwcounters_X", Fields: []string{"_cpu0", "_cpu1"}},
		},
	}
	d, err := g.ForObservation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Panels) != 1 || len(d.Panels[0].Targets) != 2 {
		t.Fatalf("dashboard: %+v", d)
	}
	if d.Panels[0].Targets[0].Tag != "abc" {
		t.Error("observation tag not propagated to targets")
	}
	if _, err := g.ForObservation(&kb.Observation{Tag: "x"}); err == nil {
		t.Error("metricless observation accepted")
	}
}

func TestGeneratorUniqueDashboardIDs(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	g := NewGenerator("u")
	v, _ := k.LevelView(ontology.KindThread)
	d1, err := g.FromView(v)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g.FromView(v)
	if err != nil {
		t.Fatal(err)
	}
	if d1.ID == d2.ID {
		t.Error("dashboard ids should be unique per generation")
	}
}

func TestFetchSeriesAndRender(t *testing.T) {
	db := tsdb.New()
	for i := int64(0); i < 20; i++ {
		db.WritePoint(tsdb.Point{
			Measurement: "m1",
			Tags:        map[string]string{"tag": "t"},
			Fields:      map[string]float64{"_cpu0": float64(i % 7)},
			Time:        i * 1000,
		})
	}
	tgt := Target{Datasource: Datasource{Type: "influxdb", UID: "u"}, Measurement: "m1", Params: "_cpu0", Tag: "t"}
	ts, vs, err := FetchSeries(db, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 20 || len(vs) != 20 {
		t.Fatalf("series: %d/%d", len(ts), len(vs))
	}
	d := &Dashboard{ID: 1, Title: "test", Panels: []Panel{{ID: 1, Title: "p", Targets: []Target{tgt}}},
		Time: TimeRange{From: "now-5m", To: "now"}}
	out, err := RenderDashboardASCII(db, d, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m1 _cpu0") || !strings.Contains(out, "last=") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestKindDashboards(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	g := NewGenerator("u")
	ds, err := g.KindDashboards(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds["subtree:icl"]; !ok {
		t.Error("subtree dashboard missing")
	}
	if _, ok := ds["level:icl:thread"]; !ok {
		t.Errorf("thread level dashboard missing; have %d dashboards", len(ds))
	}
	for name, d := range ds {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLibrarySaveLoadList(t *testing.T) {
	dir := t.TempDir()
	lib := Library{Dir: dir}
	d := &Dashboard{
		ID: 1, Title: "shared",
		Panels: []Panel{{ID: 1, Targets: []Target{{
			Datasource: Datasource{Type: "influxdb", UID: "u"}, Measurement: "m", Params: "_cpu0",
		}}}},
		Time: TimeRange{From: "now-5m", To: "now"},
	}
	if err := lib.Save("spmv-study", d); err != nil {
		t.Fatal(err)
	}
	// A second user loads the shared file.
	got, err := lib.Load("spmv-study")
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "shared" || len(got.Panels) != 1 {
		t.Errorf("loaded: %+v", got)
	}
	names, err := lib.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "spmv-study" {
		t.Errorf("names: %v", names)
	}
	// Path traversal rejected; invalid dashboards not saved.
	if err := lib.Save("../evil", d); err == nil {
		t.Error("path separator accepted")
	}
	bad := &Dashboard{Panels: []Panel{{ID: 1}}}
	if err := lib.Save("bad", bad); err == nil {
		t.Error("invalid dashboard saved")
	}
	if _, err := lib.Load("missing"); err == nil {
		t.Error("missing dashboard loaded")
	}
	// Empty library directory lists nothing.
	empty := Library{Dir: dir + "/nothere"}
	if names, err := empty.List(); err != nil || len(names) != 0 {
		t.Errorf("empty list: %v %v", names, err)
	}
}
