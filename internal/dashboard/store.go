package dashboard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Save writes the dashboard JSON to a file — "a dashboard ... can be
// modified by the users and saved for the next sessions. The
// corresponding JSON file can be shared by multiple users."
func Save(d *Dashboard, path string) error {
	if err := d.Validate(); err != nil {
		return err
	}
	b, err := d.Encode()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("dashboard: save: %w", err)
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadFile reads and validates a dashboard JSON file.
func LoadFile(path string) (*Dashboard, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dashboard: load: %w", err)
	}
	return Decode(b)
}

// Library is a directory of saved dashboards, addressed by name
// (<name>.json).
type Library struct {
	Dir string
}

// Save stores a dashboard under a name.
func (l Library) Save(name string, d *Dashboard) error {
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("dashboard: library name %q must not contain path separators", name)
	}
	return Save(d, filepath.Join(l.Dir, name+".json"))
}

// Load fetches a dashboard by name.
func (l Library) Load(name string) (*Dashboard, error) {
	return LoadFile(filepath.Join(l.Dir, name+".json"))
}

// List returns the saved dashboard names, sorted.
func (l Library) List() ([]string, error) {
	entries, err := os.ReadDir(l.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	sort.Strings(out)
	return out, nil
}
