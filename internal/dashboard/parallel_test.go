package dashboard

import (
	"fmt"
	"sync"
	"testing"

	"pmove/internal/kb"
)

// TestParallelMonitorDashboardIDsUnique pins the generator's concurrency
// contract: concurrent Monitor calls (one dashboard per observation)
// must never hand out the same dashboard id twice, and every generated
// dashboard must be internally valid.
func TestParallelMonitorDashboardIDsUnique(t *testing.T) {
	g := NewGenerator("ds-uid")
	const n = 64
	var wg sync.WaitGroup
	dashes := make([]*Dashboard, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obs := &kb.Observation{
				ID:      fmt.Sprintf("obs:par-%d", i),
				Tag:     fmt.Sprintf("tag-%d", i),
				Command: "stress",
				Metrics: []kb.MetricRef{
					{Measurement: "kernel_percpu_cpu_idle", Fields: []string{"_cpu0", "_cpu1"}},
					{Measurement: "kernel_percpu_cpu_user", Fields: []string{"_cpu0"}},
				},
			}
			dashes[i], errs[i] = g.ForObservation(obs)
		}(i)
	}
	wg.Wait()

	ids := make(map[int]int, n)
	for i, d := range dashes {
		if errs[i] != nil {
			t.Fatalf("observation %d: %v", i, errs[i])
		}
		if prev, dup := ids[d.ID]; dup {
			t.Fatalf("dashboard id %d handed to observations %d and %d", d.ID, prev, i)
		}
		ids[d.ID] = i
		if err := d.Validate(); err != nil {
			t.Errorf("observation %d: invalid dashboard: %v", i, err)
		}
	}
	if len(ids) != n {
		t.Fatalf("expected %d distinct dashboard ids, got %d", n, len(ids))
	}
}
