package dashboard

import (
	"fmt"
	"math"
	"strings"

	"pmove/internal/tsdb"
)

// RenderPanelASCII draws a panel's series as a terminal sparkline chart —
// the stand-in for Grafana's graph panel. Each target becomes one row of
// block characters scaled to the panel's global maximum.
func RenderPanelASCII(db *tsdb.DB, p Panel, width int) (string, error) {
	if width < 16 {
		width = 16
	}
	type seriesData struct {
		label string
		ts    []int64
		vs    []float64
	}
	var all []seriesData
	globalMax := 0.0
	for _, t := range p.Targets {
		ts, vs, err := FetchSeries(db, t)
		if err != nil {
			return "", err
		}
		for _, v := range vs {
			if v > globalMax {
				globalMax = v
			}
		}
		label := t.Measurement + " " + t.Params
		if t.Agg != "" {
			label = fmt.Sprintf("%s %s(%s)", t.Measurement, t.Agg, t.Params)
			if t.Window != "" {
				label += " by " + t.Window
			}
		}
		all = append(all, seriesData{label: label, ts: ts, vs: vs})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", p.Title)
	levels := []rune(" ▁▂▃▄▅▆▇█")
	for _, s := range all {
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		if len(s.vs) > 0 && globalMax > 0 {
			// Resample the series to the panel width.
			for x := 0; x < width; x++ {
				idx := x * len(s.vs) / width
				frac := s.vs[idx] / globalMax
				li := int(math.Round(frac * float64(len(levels)-1)))
				if li < 0 {
					li = 0
				}
				if li >= len(levels) {
					li = len(levels) - 1
				}
				line[x] = levels[li]
			}
		}
		last := 0.0
		if len(s.vs) > 0 {
			last = s.vs[len(s.vs)-1]
		}
		fmt.Fprintf(&b, "%-52s |%s| last=%.4g\n", truncate(s.label, 52), string(line), last)
	}
	return b.String(), nil
}

// RenderDashboardASCII renders every panel of a dashboard.
func RenderDashboardASCII(db *tsdb.DB, d *Dashboard, width int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "### dashboard %d: %s (window %s..%s)\n", d.ID, d.Title, d.Time.From, d.Time.To)
	for _, p := range d.Panels {
		s, err := RenderPanelASCII(db, p, width)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
