// Package dashboard is the visualization substrate standing in for
// Grafana: dashboards are "only a simple JSON file" (paper Listing 1)
// holding panels whose targets name a datasource, a measurement and an
// instance-field parameter. P-MoVE auto-generates these files from the KB
// views (focus, subtree, level) and a renderer turns panel data from the
// tsdb into terminal plots.
package dashboard

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pmove/internal/kb"
	"pmove/internal/ontology"
	"pmove/internal/tsdb"
)

// Datasource identifies where a target's data lives (Listing 1: type
// "influxdb" and a uid).
type Datasource struct {
	Type string `json:"type"`
	UID  string `json:"uid"`
}

// Target is one query of a panel: the measurement and the instance-field
// parameter ("params": "_cpu0" in Listing 1). Agg, when set, turns the
// target into an aggregated query (mean/min/max/sum/count/pNN of the
// field) and Window adds GROUP BY time(Window) downsampling — how the
// generator encodes the averages the paper's figures imply instead of
// shipping raw rows to the renderer.
type Target struct {
	Datasource  Datasource `json:"datasource"`
	Measurement string     `json:"measurement"`
	Params      string     `json:"params"`
	Tag         string     `json:"tag,omitempty"`    // observation tag filter
	Agg         string     `json:"agg,omitempty"`    // aggregate fn ("mean", "p99", …)
	Window      string     `json:"window,omitempty"` // GROUP BY time interval ("5s")
}

// Query renders the target as the tsdb query it issues. Aggregated
// targets are built through the canonical SELECT grammar, so an
// invalid Agg/Window surfaces as a parse error here, not downstream.
func (t Target) Query() (*tsdb.Query, error) {
	if t.Agg == "" {
		if t.Window != "" {
			return nil, fmt.Errorf("dashboard: target window %q requires an aggregate", t.Window)
		}
		q := &tsdb.Query{
			Fields:      []string{t.Params},
			Measurement: t.Measurement,
			TagFilter:   map[string]string{},
		}
		if t.Params == "" {
			q.Fields = []string{"*"}
		}
		if t.Tag != "" {
			q.TagFilter["tag"] = t.Tag
		}
		return q, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s(%q) FROM %q", t.Agg, t.Params, t.Measurement)
	if t.Tag != "" {
		fmt.Fprintf(&b, " WHERE tag=%q", t.Tag)
	}
	if t.Window != "" {
		fmt.Fprintf(&b, " GROUP BY time(%s)", t.Window)
	}
	return tsdb.ParseQuery(b.String())
}

// Panel is one chart.
type Panel struct {
	ID      int      `json:"id"`
	Title   string   `json:"title,omitempty"`
	Targets []Target `json:"targets"`
}

// TimeRange is the dashboard's display window (Listing 1: "from": "now-5m").
type TimeRange struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Dashboard is the JSON document Grafana processes. "A dashboard can be
// modified by the users and saved for the next sessions. The corresponding
// JSON file can be shared by multiple users."
type Dashboard struct {
	ID     int       `json:"id"`
	Title  string    `json:"title,omitempty"`
	Panels []Panel   `json:"panels"`
	Time   TimeRange `json:"time"`
}

// Encode renders the dashboard JSON.
func (d *Dashboard) Encode() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Decode parses a dashboard JSON file.
func Decode(b []byte) (*Dashboard, error) {
	var d Dashboard
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("dashboard: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks structural soundness: unique panel ids, non-empty
// targets.
func (d *Dashboard) Validate() error {
	ids := map[int]bool{}
	for _, p := range d.Panels {
		if ids[p.ID] {
			return fmt.Errorf("dashboard: duplicate panel id %d", p.ID)
		}
		ids[p.ID] = true
		if len(p.Targets) == 0 {
			return fmt.Errorf("dashboard: panel %d has no targets", p.ID)
		}
		for _, t := range p.Targets {
			if t.Measurement == "" {
				return fmt.Errorf("dashboard: panel %d has a target without a measurement", p.ID)
			}
			if t.Datasource.Type == "" {
				return fmt.Errorf("dashboard: panel %d has a target without a datasource type", p.ID)
			}
		}
	}
	return nil
}

// Generator builds dashboards from KB views. DatasourceUID names the
// tsdb connection registered in the visualization layer. A Generator is
// safe for concurrent use: parallel Monitor sessions on different
// targets generate their dashboards through the daemon's one shared
// instance.
type Generator struct {
	DatasourceUID string

	// Agg, when set, makes every generated target an aggregated query
	// (e.g. "mean" — the shape the paper's Table/figure averages imply)
	// and Window adds GROUP BY time(Window) downsampling. Set them
	// before generating; empty keeps the raw-series targets.
	Agg    string
	Window string

	mu     sync.Mutex
	nextID int
}

// NewGenerator creates a generator.
func NewGenerator(datasourceUID string) *Generator {
	return &Generator{DatasourceUID: datasourceUID, nextID: 1}
}

// allocID hands out the next dashboard ID.
func (g *Generator) allocID() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextID++
	return g.nextID
}

func (g *Generator) ds() Datasource {
	return Datasource{Type: "influxdb", UID: g.DatasourceUID}
}

// FromView generates one dashboard for a KB view: one panel per component
// carrying the component's telemetry definitions as targets. This is the
// fully automated path of §III-B ("Employing a tree-structured KB enables
// fully automated performance monitoring … and dashboards").
func (g *Generator) FromView(v *kb.View) (*Dashboard, error) {
	if v == nil || len(v.Nodes) == 0 {
		return nil, fmt.Errorf("dashboard: empty view")
	}
	d := &Dashboard{
		ID:    g.allocID(),
		Title: v.Title,
		Time:  TimeRange{From: "now-5m", To: "now"},
	}
	pid := 0
	for _, n := range v.Nodes {
		tels := n.Interface.Telemetries("")
		if len(tels) == 0 {
			continue
		}
		pid++
		p := Panel{ID: pid, Title: n.Interface.DisplayName}
		for _, t := range tels {
			p.Targets = append(p.Targets, Target{
				Datasource:  g.ds(),
				Measurement: t.DBName,
				Params:      t.FieldName,
				Agg:         g.Agg,
				Window:      g.Window,
			})
		}
		sort.Slice(p.Targets, func(i, j int) bool {
			a, b := p.Targets[i], p.Targets[j]
			if a.Measurement != b.Measurement {
				return a.Measurement < b.Measurement
			}
			return a.Params < b.Params
		})
		d.Panels = append(d.Panels, p)
	}
	if len(d.Panels) == 0 {
		return nil, fmt.Errorf("dashboard: view %q has no telemetry to display", v.Title)
	}
	return d, d.Validate()
}

// ForObservation generates the dashboard recalling one observation's
// sampled metrics (the Scenario B visualisation path).
func (g *Generator) ForObservation(o *kb.Observation) (*Dashboard, error) {
	if len(o.Metrics) == 0 {
		return nil, fmt.Errorf("dashboard: observation %s sampled no metrics", o.Tag)
	}
	d := &Dashboard{
		ID:    g.allocID(),
		Title: fmt.Sprintf("observation %s (%s)", o.Tag, o.Command),
		Time:  TimeRange{From: "now-5m", To: "now"},
	}
	for i, m := range o.Metrics {
		p := Panel{ID: i + 1, Title: m.Measurement}
		fields := append([]string(nil), m.Fields...)
		sort.Strings(fields)
		for _, f := range fields {
			p.Targets = append(p.Targets, Target{
				Datasource:  g.ds(),
				Measurement: m.Measurement,
				Params:      f,
				Tag:         o.Tag,
				Agg:         g.Agg,
				Window:      g.Window,
			})
		}
		d.Panels = append(d.Panels, p)
	}
	return d, d.Validate()
}

// FetchSeries runs a panel target against the tsdb with a background
// context, returning time-ordered (ns, value) pairs.
func FetchSeries(db *tsdb.DB, t Target) ([]int64, []float64, error) {
	return FetchSeriesContext(context.Background(), db, t)
}

// FetchSeriesContext runs a panel target against the tsdb, returning
// time-ordered (ns, value) pairs. Aggregated targets (Agg set) read
// their value from the aggregate column — one pair per GROUP BY
// window, or a single pair for the whole range.
func FetchSeriesContext(ctx context.Context, db *tsdb.DB, t Target) ([]int64, []float64, error) {
	q, err := t.Query()
	if err != nil {
		return nil, nil, err
	}
	res, err := db.ExecuteContext(ctx, tsdb.QueryRequest{Query: q})
	if err != nil {
		return nil, nil, err
	}
	col := t.Params
	if len(q.Aggregates) > 0 {
		col = q.Aggregates[0].Column()
	}
	var ts []int64
	var vs []float64
	for _, row := range res.Rows {
		if v, ok := row.Values[col]; ok {
			ts = append(ts, row.Time)
			vs = append(vs, v)
		} else if col == "" {
			for _, v := range row.Values {
				ts = append(ts, row.Time)
				vs = append(vs, v)
				break
			}
		}
	}
	return ts, vs, nil
}

// KindDashboards generates the standard dashboard set for a KB: a subtree
// view of the whole system plus a level view per populated component kind
// — the automation behind Fig 2.
func (g *Generator) KindDashboards(k *kb.KB) (map[string]*Dashboard, error) {
	out := map[string]*Dashboard{}
	sub, err := k.SubtreeView(k.Root().ID)
	if err != nil {
		return nil, err
	}
	d, err := g.FromView(sub)
	if err != nil {
		return nil, err
	}
	out["subtree:"+k.Host] = d
	for _, kind := range ontology.Kinds() {
		lv, err := k.LevelView(kind)
		if err != nil {
			continue // kind not populated
		}
		d, err := g.FromView(lv)
		if err != nil {
			continue // no telemetry at this level
		}
		out[fmt.Sprintf("level:%s:%s", k.Host, kind)] = d
	}
	return out, nil
}
