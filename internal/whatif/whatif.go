// Package whatif implements the replay/prediction capability the paper
// motivates for its digital twin (§I: the KB "can be leveraged to replay
// or simulate various configurations to identify bottlenecks and propose
// potential hardware or software configurations", including "predictive
// performance modelling on a candidate architecture, suggesting hardware
// upgrades"). A recorded workload replays on any candidate system through
// the analytic engine; the comparison report names the bottleneck that
// moves.
package whatif

import (
	"fmt"
	"sort"

	"pmove/internal/machine"
	"pmove/internal/topo"
)

// Outcome is the predicted behaviour of a workload on one system.
type Outcome struct {
	Host    string
	Threads int
	Seconds float64
	GFLOPS  float64
	GBps    float64
	FreqGHz float64
	// Bottleneck is "compute" or "memory:<level>" — which term of the
	// roofline model bound the execution.
	Bottleneck string
}

// Predict replays a workload specification on a candidate system with the
// given thread count and pinning, returning the predicted outcome. The
// candidate machine is fresh (noiseless, empty), so predictions are
// deterministic up to the engine's run-to-run model.
func Predict(sys *topo.System, spec machine.WorkloadSpec, threads int, pin topo.PinStrategy) (Outcome, error) {
	m, err := machine.New(sys, machine.Config{Seed: 1, Noiseless: true})
	if err != nil {
		return Outcome{}, err
	}
	if threads > sys.NumThreads() {
		threads = sys.NumThreads()
	}
	pinning, err := topo.Pin(sys, pin, threads)
	if err != nil {
		return Outcome{}, err
	}
	exec, err := m.Run(spec, pinning)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Host: sys.Hostname, Threads: threads,
		Seconds: exec.Duration, GFLOPS: exec.GFLOPS, GBps: exec.GBps,
		FreqGHz:    exec.FreqGHz,
		Bottleneck: bottleneck(sys, spec),
	}, nil
}

// bottleneck classifies which roofline term dominates the workload on a
// system, mirroring the engine's timing model.
func bottleneck(sys *topo.System, spec machine.WorkloadSpec) string {
	computeCyc := 0.0
	fp := 0.0
	for _, c := range spec.FPInstr {
		fp += c
	}
	if sys.CPU.FMAUnits > 0 {
		computeCyc = fp / float64(sys.CPU.FMAUnits)
	}
	computeCyc += spec.OtherInstr/4 + spec.DivOps*4

	bytes := spec.BytesPerIter()
	lvl := sys.CacheLevelFor(spec.WorkingSetBytes)
	var bw float64
	if lvl == topo.DRAM {
		bw = sys.Memory.BWBytesPerCycPerCore
	} else if c, ok := sys.Cache(lvl); ok {
		bw = c.BWBytesPerCycPerCore
	}
	if bw <= 0 {
		return "compute"
	}
	memCyc := bytes / bw
	if memCyc > computeCyc {
		return fmt.Sprintf("memory:%s", lvl)
	}
	return "compute"
}

// Comparison relates a candidate to the baseline.
type Comparison struct {
	Outcome
	// Speedup is baseline time / candidate time (>1 means faster).
	Speedup float64
}

// Compare predicts the workload on a baseline and a list of candidates,
// returning the candidates ranked fastest first.
func Compare(baseline *topo.System, candidates []*topo.System, spec machine.WorkloadSpec, threads int, pin topo.PinStrategy) (Outcome, []Comparison, error) {
	base, err := Predict(baseline, spec, threads, pin)
	if err != nil {
		return Outcome{}, nil, fmt.Errorf("whatif: baseline %s: %w", baseline.Hostname, err)
	}
	var out []Comparison
	for _, c := range candidates {
		o, err := Predict(c, spec, threads, pin)
		if err != nil {
			return Outcome{}, nil, fmt.Errorf("whatif: candidate %s: %w", c.Hostname, err)
		}
		out = append(out, Comparison{Outcome: o, Speedup: base.Seconds / o.Seconds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Speedup > out[j].Speedup })
	return base, out, nil
}

// SweepThreads predicts the workload at each thread count, exposing the
// scaling curve (and its saturation point) on one system.
func SweepThreads(sys *topo.System, spec machine.WorkloadSpec, counts []int, pin topo.PinStrategy) ([]Outcome, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("whatif: no thread counts")
	}
	var out []Outcome
	for _, n := range counts {
		if n <= 0 || n > sys.NumThreads() {
			continue
		}
		o, err := Predict(sys, spec, n, pin)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("whatif: no feasible thread counts for %s", sys.Hostname)
	}
	return out, nil
}

// Recommendation is the outcome of an upgrade analysis.
type Recommendation struct {
	Baseline Outcome
	Ranked   []Comparison
	// Suggestion is a human-readable summary of the best candidate.
	Suggestion string
}

// Recommend runs Compare over all built-in presets (except the baseline)
// and phrases a suggestion — the "suggesting hardware upgrades" use case.
func Recommend(baselineName string, spec machine.WorkloadSpec, threads int) (*Recommendation, error) {
	baseline, err := topo.NewPreset(baselineName)
	if err != nil {
		return nil, err
	}
	var candidates []*topo.System
	for _, name := range topo.Presets() {
		if name == baselineName {
			continue
		}
		candidates = append(candidates, topo.MustPreset(name))
	}
	base, ranked, err := Compare(baseline, candidates, spec, threads, topo.PinBalanced)
	if err != nil {
		return nil, err
	}
	r := &Recommendation{Baseline: base, Ranked: ranked}
	best := ranked[0]
	if best.Speedup <= 1.02 {
		r.Suggestion = fmt.Sprintf(
			"keep %s: no candidate improves on %.4fs (best alternative %s at %.2fx)",
			baselineName, base.Seconds, best.Host, best.Speedup)
	} else {
		r.Suggestion = fmt.Sprintf(
			"move to %s: predicted %.2fx faster (%.4fs -> %.4fs); workload is %s-bound there",
			best.Host, best.Speedup, base.Seconds, best.Seconds, best.Bottleneck)
	}
	return r, nil
}
