package whatif

import (
	"strings"
	"testing"

	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/topo"
)

func computeBound(t *testing.T) machine.WorkloadSpec {
	t.Helper()
	spec, err := kernels.Likwid("peakflops", topo.ISAAVX2, 4<<10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func memoryBound(t *testing.T) machine.WorkloadSpec {
	t.Helper()
	spec, err := kernels.Likwid("triad", topo.ISAAVX2, 256<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPredictDeterministic(t *testing.T) {
	sys := topo.MustPreset(topo.PresetICL)
	a, err := Predict(sys, computeBound(t), 4, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(sys, computeBound(t), 4, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("prediction not deterministic: %f vs %f", a.Seconds, b.Seconds)
	}
	if a.Bottleneck != "compute" {
		t.Errorf("peakflops bottleneck = %s", a.Bottleneck)
	}
}

func TestPredictClampsThreads(t *testing.T) {
	sys := topo.MustPreset(topo.PresetICL) // 16 threads
	o, err := Predict(sys, computeBound(t), 999, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if o.Threads != 16 {
		t.Errorf("threads = %d, want clamp to 16", o.Threads)
	}
}

func TestBottleneckClassification(t *testing.T) {
	sys := topo.MustPreset(topo.PresetCSL)
	mem, err := Predict(sys, memoryBound(t), 8, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(mem.Bottleneck, "memory:") {
		t.Errorf("DRAM triad bottleneck = %s", mem.Bottleneck)
	}
}

func TestCompareRanks(t *testing.T) {
	base := topo.MustPreset(topo.PresetICL)
	cands := []*topo.System{topo.MustPreset(topo.PresetCSL), topo.MustPreset(topo.PresetZEN3)}
	baseOut, ranked, err := Compare(base, cands, computeBound(t), 8, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if baseOut.Seconds <= 0 {
		t.Fatal("empty baseline")
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked: %d", len(ranked))
	}
	if ranked[0].Speedup < ranked[1].Speedup {
		t.Error("candidates not ranked by speedup")
	}
}

func TestSweepThreadsScaling(t *testing.T) {
	sys := topo.MustPreset(topo.PresetCSL)
	outs, err := SweepThreads(sys, computeBound(t), []int{1, 2, 4, 8, 16, 9999}, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 5 { // 9999 skipped
		t.Fatalf("outcomes: %d", len(outs))
	}
	// Compute-bound work scales with threads.
	if outs[4].GFLOPS <= outs[0].GFLOPS*8 {
		t.Errorf("scaling curve too flat: 1t %.1f vs 16t %.1f GFLOPS", outs[0].GFLOPS, outs[4].GFLOPS)
	}
	if _, err := SweepThreads(sys, computeBound(t), nil, topo.PinBalanced); err == nil {
		t.Error("empty count list accepted")
	}
}

func TestRecommendUpgradeForComputeBound(t *testing.T) {
	// A wide-vector FP workload on the AVX2-only Zen3 should recommend an
	// AVX-512 Intel part... but the spec pins the ISA. Use a scalar-heavy
	// FP workload: the dual-socket skx (more cores) should win at high
	// thread counts.
	spec, err := kernels.Likwid("peakflops", topo.ISAScalar, 4<<10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Recommend(topo.PresetICL, spec, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ranked) != 3 {
		t.Fatalf("ranked: %d", len(r.Ranked))
	}
	if r.Suggestion == "" {
		t.Fatal("no suggestion")
	}
	// icl has 16 threads; with 32 requested, the many-core systems must
	// beat it.
	if r.Ranked[0].Speedup <= 1 {
		t.Errorf("expected an upgrade recommendation, got %q", r.Suggestion)
	}
	if !strings.Contains(r.Suggestion, "move to") {
		t.Errorf("suggestion: %q", r.Suggestion)
	}
}

func TestRecommendKeepWhenBaselineBest(t *testing.T) {
	// A single-thread memory-bound kernel: zen3 has the best per-core DRAM
	// bandwidth, so from zen3 nothing should be a clear upgrade.
	spec := memoryBound(t)
	r, err := Recommend(topo.PresetZEN3, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Suggestion, "move to") && r.Ranked[0].Speedup < 1.1 {
		t.Errorf("marginal speedup should not trigger an upgrade: %q", r.Suggestion)
	}
}

func TestRecommendUnknownBaseline(t *testing.T) {
	if _, err := Recommend("cray1", computeBound(t), 4); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}
