package pmu

import (
	"fmt"
	"sort"
	"sync"
)

// ThreadPMU is the counter file of one hardware thread. A fixed number of
// programmable counters can each be bound to one event; programming more
// events than counters engages round-robin multiplexing: each event is only
// counted for a fraction of the time and the read value is scaled up, which
// is one source of measurement error on real hardware.
type ThreadPMU struct {
	mu         sync.Mutex
	catalog    *Catalog
	slots      int
	programmed []string
	// truth holds exact event counts accumulated by the execution engine.
	truth map[string]uint64
	noise *NoiseModel
}

// NewThreadPMU creates a counter file with the catalog's programmable
// counter budget. smtActive selects the shared-counter geometry (Intel
// halves the budget when the sibling thread also counts).
func NewThreadPMU(c *Catalog, smtActive bool, noise *NoiseModel) *ThreadPMU {
	slots := c.ProgCountersNoSMT
	if smtActive {
		slots = c.ProgCounters
	}
	return &ThreadPMU{
		catalog: c,
		slots:   slots,
		truth:   make(map[string]uint64),
		noise:   noise,
	}
}

// Program binds the listed events to the counter file, replacing any prior
// programming. Unknown events are rejected. RAPL events are package-scoped
// and cannot be programmed on a thread.
func (t *ThreadPMU) Program(events []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]bool{}
	for _, e := range events {
		def, ok := t.catalog.Lookup(e)
		if !ok {
			return fmt.Errorf("pmu: event %q not in %s catalog", e, t.catalog.Microarch)
		}
		if def.PMU != "core" {
			return fmt.Errorf("pmu: event %q is %s-scoped, not programmable on a thread", e, def.PMU)
		}
		if seen[e] {
			return fmt.Errorf("pmu: event %q programmed twice", e)
		}
		seen[e] = true
	}
	t.programmed = append([]string(nil), events...)
	return nil
}

// Programmed returns the currently programmed events.
func (t *ThreadPMU) Programmed() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.programmed...)
}

// Slots returns the number of programmable counters.
func (t *ThreadPMU) Slots() int { return t.slots }

// Multiplexed reports whether more events are programmed than counters
// exist, so reads are scaled estimates rather than exact counts.
func (t *ThreadPMU) Multiplexed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.programmed) > t.slots
}

// Add accumulates ground-truth occurrences of an event. The execution
// engine calls this; events need not be programmed to accumulate (the
// silicon counts regardless; programming only selects what is readable).
func (t *ThreadPMU) Add(event string, delta uint64) {
	t.mu.Lock()
	t.truth[event] += delta
	t.mu.Unlock()
}

// Truth returns the exact accumulated count for an event (the
// likwid-bench-style ground truth used by the Fig 4 accuracy experiment).
func (t *ThreadPMU) Truth(event string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.truth[event]
}

// Read samples a programmed event. The value is the exact count distorted
// by the noise model and, when multiplexing is engaged, by an additional
// scaling estimate error. Reading an unprogrammed event errors, mirroring
// perf's behaviour.
func (t *ThreadPMU) Read(event string) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := -1
	for i, e := range t.programmed {
		if e == event {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("pmu: event %q not programmed", event)
	}
	v := t.truth[event]
	if t.noise != nil {
		mux := len(t.programmed) > t.slots
		v = t.noise.Distort(event, v, mux)
	}
	return v, nil
}

// ReadAll samples every programmed event.
func (t *ThreadPMU) ReadAll() (map[string]uint64, error) {
	out := make(map[string]uint64, len(t.Programmed()))
	for _, e := range t.Programmed() {
		v, err := t.Read(e)
		if err != nil {
			return nil, err
		}
		out[e] = v
	}
	return out, nil
}

// Reset zeroes all accumulated counts (a new observation window).
func (t *ThreadPMU) Reset() {
	t.mu.Lock()
	t.truth = make(map[string]uint64)
	t.mu.Unlock()
}

// RAPL models the package-scope energy MSRs. Energy is accumulated in
// microjoules; domains are "pkg" and, on AMD, "dram".
type RAPL struct {
	mu     sync.Mutex
	energy map[string]uint64 // domain -> microjoules
	noise  *NoiseModel
}

// NewRAPL returns an empty energy counter bank.
func NewRAPL(noise *NoiseModel) *RAPL {
	return &RAPL{energy: make(map[string]uint64), noise: noise}
}

// AddMicrojoules accumulates energy into a domain ("pkg" or "dram").
func (r *RAPL) AddMicrojoules(domain string, uj uint64) {
	r.mu.Lock()
	r.energy[domain] += uj
	r.mu.Unlock()
}

// Read samples a domain's accumulated microjoules.
func (r *RAPL) Read(domain string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.energy[domain]
	if !ok {
		return 0, fmt.Errorf("pmu: rapl domain %q not present", domain)
	}
	if r.noise != nil {
		v = r.noise.Distort("RAPL_"+domain, v, false)
	}
	return v, nil
}

// Truth returns the exact accumulated microjoules.
func (r *RAPL) Truth(domain string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.energy[domain]
}

// Domains lists the domains with accumulated energy, sorted.
func (r *RAPL) Domains() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for d := range r.energy {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Reset zeroes all domains.
func (r *RAPL) Reset() {
	r.mu.Lock()
	r.energy = make(map[string]uint64)
	r.mu.Unlock()
}
