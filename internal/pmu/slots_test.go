package pmu

import (
	"errors"
	"testing"
)

// coreEvents returns the catalog's thread-programmable events.
func coreEvents(t *testing.T, c *Catalog) []string {
	t.Helper()
	var out []string
	for _, name := range c.Names() {
		if def, ok := c.Lookup(name); ok && def.PMU == "core" {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		t.Fatalf("catalog %s has no core events", c.Microarch)
	}
	return out
}

// TestCounterSlotExhaustionPerVendor pins the counter-file geometry of
// every built-in catalog: programming exactly Slots events stays exact,
// one more engages multiplexing (scaled estimates), and the budget
// follows the vendor's SMT rules — Intel halves it when the sibling
// thread counts, AMD's stays fixed.
func TestCounterSlotExhaustionPerVendor(t *testing.T) {
	for _, arch := range Microarchs() {
		cat, err := CatalogFor(arch)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		events := coreEvents(t, cat)

		for _, smt := range []bool{false, true} {
			pmu := NewThreadPMU(cat, smt, nil)
			want := cat.ProgCountersNoSMT
			if smt {
				want = cat.ProgCounters
			}
			if pmu.Slots() != want {
				t.Errorf("%s smt=%v: slots = %d, want %d", arch, smt, pmu.Slots(), want)
			}
			if len(events) <= pmu.Slots() {
				t.Fatalf("%s: catalog has %d core events, cannot exhaust %d slots", arch, len(events), pmu.Slots())
			}

			// Exactly full: exact counts, no multiplexing.
			if err := pmu.Program(events[:pmu.Slots()]); err != nil {
				t.Fatalf("%s smt=%v: programming %d events into %d slots: %v", arch, smt, pmu.Slots(), pmu.Slots(), err)
			}
			if pmu.Multiplexed() {
				t.Errorf("%s smt=%v: multiplexed with exactly %d events", arch, smt, pmu.Slots())
			}

			// One past the budget: still programmable, but estimates.
			if err := pmu.Program(events[:pmu.Slots()+1]); err != nil {
				t.Fatalf("%s smt=%v: over-programming must multiplex, not fail: %v", arch, smt, err)
			}
			if !pmu.Multiplexed() {
				t.Errorf("%s smt=%v: %d events in %d slots not multiplexed", arch, smt, pmu.Slots()+1, pmu.Slots())
			}
		}

		// Intel halves the budget under SMT; AMD does not.
		smtOff, smtOn := NewThreadPMU(cat, false, nil), NewThreadPMU(cat, true, nil)
		switch cat.Vendor {
		case "intel":
			if smtOn.Slots() >= smtOff.Slots() {
				t.Errorf("%s: intel SMT budget %d not below non-SMT %d", arch, smtOn.Slots(), smtOff.Slots())
			}
		case "amd":
			if smtOn.Slots() != smtOff.Slots() {
				t.Errorf("%s: amd budget changed with SMT: %d vs %d", arch, smtOn.Slots(), smtOff.Slots())
			}
		default:
			t.Errorf("%s: unknown vendor %q", arch, cat.Vendor)
		}
	}
}

// TestProgramRejections pins the programming error paths: unknown
// events, package-scoped RAPL events, and duplicates all reject with the
// prior programming intact, and reading an unprogrammed event errors
// like perf does.
func TestProgramRejections(t *testing.T) {
	for _, arch := range Microarchs() {
		cat, err := CatalogFor(arch)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		events := coreEvents(t, cat)
		pmu := NewThreadPMU(cat, false, nil)
		if err := pmu.Program(events[:1]); err != nil {
			t.Fatalf("%s: baseline program: %v", arch, err)
		}

		if err := pmu.Program([]string{"NO_SUCH_EVENT"}); err == nil {
			t.Errorf("%s: unknown event accepted", arch)
		}
		if err := pmu.Program([]string{RAPLEnergyPkg}); err == nil {
			t.Errorf("%s: package-scoped RAPL event programmed on a thread", arch)
		}
		if err := pmu.Program([]string{events[0], events[0]}); err == nil {
			t.Errorf("%s: duplicate event accepted", arch)
		}

		// Failed programming attempts must not clobber the live set.
		if got := pmu.Programmed(); len(got) != 1 || got[0] != events[0] {
			t.Errorf("%s: failed Program clobbered state: %v", arch, got)
		}
		pmu.Add(events[1], 100)
		if _, err := pmu.Read(events[1]); err == nil {
			t.Errorf("%s: read of unprogrammed event succeeded", arch)
		}
		if v, err := pmu.Read(events[0]); err != nil || v != 0 {
			t.Errorf("%s: read of programmed idle event = %d, %v", arch, v, err)
		}
	}
	if _, err := CatalogFor("not-an-arch"); err == nil {
		t.Error("unknown microarchitecture got a catalog")
	}
	_ = errors.Is // keep errors import if assertions above change shape
}
