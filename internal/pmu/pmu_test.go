package pmu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogsExist(t *testing.T) {
	for _, arch := range []string{"skx", "icl", "cascade", "zen3"} {
		c, err := CatalogFor(arch)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if len(c.Events) == 0 {
			t.Errorf("%s: empty catalog", arch)
		}
	}
	if _, err := CatalogFor("m68k"); err == nil {
		t.Error("expected error for unknown microarchitecture")
	}
}

func TestCatalogCaseInsensitive(t *testing.T) {
	if _, err := CatalogFor("ZEN3"); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGeometry(t *testing.T) {
	intel, _ := CatalogFor("skx")
	if intel.ProgCounters != 4 || intel.ProgCountersNoSMT != 8 {
		t.Errorf("Intel counters: got %d/%d, want 4/8 (paper §IV-A)", intel.ProgCounters, intel.ProgCountersNoSMT)
	}
	amd, _ := CatalogFor("zen3")
	if amd.ProgCounters != 6 {
		t.Errorf("Zen3 counters: got %d, want 6", amd.ProgCounters)
	}
}

func TestNeverZeroEvents(t *testing.T) {
	c, _ := CatalogFor("skx")
	nz := c.NeverZeroEvents()
	want := map[string]bool{IntelCycles: true, IntelInstructions: true, IntelUops: true}
	if len(nz) != len(want) {
		t.Fatalf("never-zero events: %v", nz)
	}
	for _, ev := range nz {
		if !want[ev] {
			t.Errorf("unexpected never-zero event %s", ev)
		}
	}
}

func TestTableIVendorSpecificNames(t *testing.T) {
	intel, _ := CatalogFor("cascade")
	amd, _ := CatalogFor("zen3")
	// Same name across vendors: RAPL_ENERGY_PKG.
	if _, ok := intel.Lookup(RAPLEnergyPkg); !ok {
		t.Error("Intel missing RAPL_ENERGY_PKG")
	}
	if _, ok := amd.Lookup(RAPLEnergyPkg); !ok {
		t.Error("AMD missing RAPL_ENERGY_PKG")
	}
	// Exclusive: DRAM energy only on AMD; LLC hit composition only on AMD.
	if _, ok := intel.Lookup(RAPLEnergyDRAM); ok {
		t.Error("Intel should not expose RAPL_ENERGY_DRAM (Table I)")
	}
	if _, ok := amd.Lookup(AMDLLCRetired); !ok {
		t.Error("AMD missing LONGEST_LAT_CACHE:RETIRED")
	}
	// Different names for the same generic event.
	if _, ok := intel.Lookup(IntelLoads); !ok {
		t.Error("Intel missing MEM_INST_RETIRED:ALL_LOADS")
	}
	if _, ok := amd.Lookup(AMDLoads); !ok {
		t.Error("AMD missing LS_DISPATCH:LD_DISPATCH")
	}
}

func TestProgramRejectsBadEvents(t *testing.T) {
	c, _ := CatalogFor("skx")
	tp := NewThreadPMU(c, true, Noiseless())
	if err := tp.Program([]string{"NO_SUCH_EVENT"}); err == nil {
		t.Error("expected error for unknown event")
	}
	if err := tp.Program([]string{RAPLEnergyPkg}); err == nil {
		t.Error("expected error for package-scoped event on a thread")
	}
	if err := tp.Program([]string{IntelCycles, IntelCycles}); err == nil {
		t.Error("expected error for duplicate programming")
	}
}

func TestReadRequiresProgramming(t *testing.T) {
	c, _ := CatalogFor("skx")
	tp := NewThreadPMU(c, true, Noiseless())
	tp.Add(IntelCycles, 100)
	if _, err := tp.Read(IntelCycles); err == nil {
		t.Error("reading an unprogrammed event should error (perf semantics)")
	}
	if err := tp.Program([]string{IntelCycles}); err != nil {
		t.Fatal(err)
	}
	v, err := tp.Read(IntelCycles)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Errorf("noiseless read = %d, want 100", v)
	}
}

func TestMultiplexingDetection(t *testing.T) {
	c, _ := CatalogFor("skx")
	tp := NewThreadPMU(c, true, Noiseless()) // 4 slots
	events := []string{IntelCycles, IntelInstructions, IntelUops, IntelLoads}
	if err := tp.Program(events); err != nil {
		t.Fatal(err)
	}
	if tp.Multiplexed() {
		t.Error("4 events on 4 counters should not multiplex")
	}
	events = append(events, IntelStores)
	if err := tp.Program(events); err != nil {
		t.Fatal(err)
	}
	if !tp.Multiplexed() {
		t.Error("5 events on 4 counters should multiplex")
	}
}

func TestResetClearsCounts(t *testing.T) {
	c, _ := CatalogFor("zen3")
	tp := NewThreadPMU(c, true, Noiseless())
	tp.Add(AMDCycles, 42)
	tp.Reset()
	if tp.Truth(AMDCycles) != 0 {
		t.Error("reset did not clear counts")
	}
}

func TestNoiseWithinBounds(t *testing.T) {
	nm := NewNoiseModel(7)
	truth := uint64(1_000_000_000)
	for i := 0; i < 200; i++ {
		read := nm.Distort(IntelCycles, truth, false)
		relErr := math.Abs(RelativeError(read, truth))
		// bias 0.2% + jitter 0.5% => within 0.7%.
		if relErr > 0.008 {
			t.Fatalf("read %d: relative error %.4f exceeds bound", i, relErr)
		}
	}
}

func TestNoiseMultiplexedLarger(t *testing.T) {
	nm := NewNoiseModel(9)
	truth := uint64(1_000_000_000)
	var sumPlain, sumMux float64
	for i := 0; i < 500; i++ {
		sumPlain += math.Abs(RelativeError(nm.Distort("EV_PLAIN", truth, false), truth))
		sumMux += math.Abs(RelativeError(nm.Distort("EV_MUX", truth, true), truth))
	}
	if sumMux <= sumPlain {
		t.Errorf("multiplexed noise (%.4f) should exceed plain noise (%.4f)", sumMux, sumPlain)
	}
}

func TestNoiseDeterministic(t *testing.T) {
	a := NewNoiseModel(3)
	b := NewNoiseModel(3)
	for i := 0; i < 50; i++ {
		if a.Distort(IntelLoads, 12345678, false) != b.Distort(IntelLoads, 12345678, false) {
			t.Fatal("same seed should reproduce identical noise sequences")
		}
	}
}

func TestNoiseBiasStablePerEvent(t *testing.T) {
	nm := NewNoiseModel(5)
	nm.JitterPPM = 0
	nm.MuxExtraPPM = 0
	r1 := nm.Distort("SOME_EVENT", 1e9, false)
	r2 := nm.Distort("SOME_EVENT", 1e9, false)
	if r1 != r2 {
		t.Error("with jitter disabled the bias must be stable per event")
	}
}

func TestNoiselessPassthroughProperty(t *testing.T) {
	nm := Noiseless()
	f := func(v uint64) bool {
		return nm.Distort("X", v, false) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroStaysZero(t *testing.T) {
	nm := NewNoiseModel(1)
	if nm.Distort("X", 0, false) != 0 {
		t.Fatal("a zero count must read as zero")
	}
}

func TestRAPLDomains(t *testing.T) {
	r := NewRAPL(Noiseless())
	r.AddMicrojoules("pkg", 1000)
	r.AddMicrojoules("pkg", 500)
	r.AddMicrojoules("dram", 10)
	v, err := r.Read("pkg")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1500 {
		t.Errorf("pkg energy = %d, want 1500", v)
	}
	if _, err := r.Read("psys"); err == nil {
		t.Error("expected error for unknown domain")
	}
	if d := r.Domains(); len(d) != 2 || d[0] != "dram" || d[1] != "pkg" {
		t.Errorf("domains = %v", d)
	}
	r.Reset()
	if r.Truth("pkg") != 0 {
		t.Error("reset did not clear energy")
	}
}

func TestReadAllMatchesIndividualReads(t *testing.T) {
	c, _ := CatalogFor("icl")
	tp := NewThreadPMU(c, true, Noiseless())
	events := []string{IntelCycles, IntelLoads}
	if err := tp.Program(events); err != nil {
		t.Fatal(err)
	}
	tp.Add(IntelCycles, 7)
	tp.Add(IntelLoads, 9)
	all, err := tp.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if all[IntelCycles] != 7 || all[IntelLoads] != 9 {
		t.Errorf("ReadAll = %v", all)
	}
}
