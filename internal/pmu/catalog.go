// Package pmu models hardware performance-monitoring units: per-vendor
// event catalogs (the libpfm4 substitute), per-thread programmable counter
// files with multiplexing, package-level RAPL energy counters, and the
// non-determinism/overcount noise of real PMUs (paper §V-A, [28]).
package pmu

import (
	"fmt"
	"sort"
	"strings"
)

// Canonical hardware event names used across the framework. Intel and AMD
// expose different names for the same generic events (Table I); the
// abstraction layer maps between them. The machine execution engine always
// accounts events under the *architectural* names of the system it models.
const (
	// Intel-style events.
	IntelCycles       = "UNHALTED_CORE_CYCLES"
	IntelInstructions = "INSTRUCTION_RETIRED"
	IntelUops         = "UOPS_DISPATCHED"
	IntelLoads        = "MEM_INST_RETIRED:ALL_LOADS"
	IntelStores       = "MEM_INST_RETIRED:ALL_STORES"
	IntelScalarDouble = "FP_ARITH:SCALAR_DOUBLE"
	IntelScalarSingle = "FP_ARITH:SCALAR_SINGLE"
	Intel128PackedDbl = "FP_ARITH:128B_PACKED_DOUBLE"
	Intel256PackedDbl = "FP_ARITH:256B_PACKED_DOUBLE"
	Intel512PackedDbl = "FP_ARITH:512B_PACKED_DOUBLE"
	IntelL1DMiss      = "L1D:REPLACEMENT"
	IntelL2Miss       = "L2_RQSTS:MISS"
	IntelLLCMiss      = "LONGEST_LAT_CACHE:MISS"
	IntelLLCRef       = "LONGEST_LAT_CACHE:REFERENCE"
	IntelFPDiv        = "ARITH:DIVIDER_ACTIVE"

	// AMD-style events.
	AMDCycles       = "CYCLES_NOT_IN_HALT"
	AMDInstructions = "RETIRED_INSTRUCTIONS"
	AMDUops         = "RETIRED_UOPS"
	AMDLoads        = "LS_DISPATCH:LD_DISPATCH"
	AMDStores       = "LS_DISPATCH:STORE_DISPATCH"
	AMDFlopsAny     = "RETIRED_SSE_AVX_FLOPS:ANY"
	AMDL1DMiss      = "L1_DC_MISSES"
	AMDL2Miss       = "L2_CACHE_MISS"
	AMDLLCMiss      = "LONGEST_LAT_CACHE:MISS"
	AMDLLCRetired   = "LONGEST_LAT_CACHE:RETIRED"
	AMDFPDiv        = "DIV_OP_COUNT"

	// RAPL energy events (package scope, not per-thread).
	RAPLEnergyPkg  = "RAPL_ENERGY_PKG"
	RAPLEnergyDRAM = "RAPL_ENERGY_DRAM"
)

// EventDef describes one hardware event in a microarchitecture's catalog.
type EventDef struct {
	Name string
	Desc string
	// PMU is the unit exposing the event: "core" for per-thread counters,
	// "rapl" for the package energy MSRs.
	PMU string
	// NeverZero marks events that are virtually never zero while the CPU is
	// executing (cycles, instructions); Table III samples these so that
	// inserted zeros can be attributed to transmission artefacts.
	NeverZero bool
}

// Catalog is the set of events recognised for one microarchitecture,
// together with its counter-file geometry.
type Catalog struct {
	Microarch string
	Vendor    string
	Events    []EventDef
	// ProgCounters is the number of programmable per-thread counters
	// (Intel: 4, or 8 with SMT off; AMD Zen3: 6). Programming more events
	// than counters engages time multiplexing, which scales counts and
	// adds error.
	ProgCounters int
	// ProgCountersNoSMT applies when the sibling thread is idle.
	ProgCountersNoSMT int

	byName map[string]EventDef
}

// Lookup returns the event definition, or false.
func (c *Catalog) Lookup(name string) (EventDef, bool) {
	d, ok := c.byName[name]
	return d, ok
}

// Names returns all event names, sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.Events))
	for _, e := range c.Events {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// NeverZeroEvents returns the names of events marked NeverZero.
func (c *Catalog) NeverZeroEvents() []string {
	var names []string
	for _, e := range c.Events {
		if e.NeverZero {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	return names
}

func buildCatalog(microarch, vendor string, prog, progNoSMT int, events []EventDef) *Catalog {
	c := &Catalog{
		Microarch: microarch, Vendor: vendor, Events: events,
		ProgCounters: prog, ProgCountersNoSMT: progNoSMT,
		byName: make(map[string]EventDef, len(events)),
	}
	for _, e := range events {
		c.byName[e.Name] = e
	}
	return c
}

var intelEvents = []EventDef{
	{Name: IntelCycles, Desc: "Core cycles when the thread is not halted", PMU: "core", NeverZero: true},
	{Name: IntelInstructions, Desc: "Instructions retired", PMU: "core", NeverZero: true},
	{Name: IntelUops, Desc: "Micro-ops dispatched", PMU: "core", NeverZero: true},
	{Name: IntelLoads, Desc: "Retired load instructions", PMU: "core"},
	{Name: IntelStores, Desc: "Retired store instructions", PMU: "core"},
	{Name: IntelScalarDouble, Desc: "Scalar double-precision FP instructions retired", PMU: "core"},
	{Name: IntelScalarSingle, Desc: "Scalar single-precision FP instructions retired", PMU: "core"},
	{Name: Intel128PackedDbl, Desc: "128-bit packed double FP instructions retired", PMU: "core"},
	{Name: Intel256PackedDbl, Desc: "256-bit packed double FP instructions retired", PMU: "core"},
	{Name: Intel512PackedDbl, Desc: "512-bit packed double FP instructions retired", PMU: "core"},
	{Name: IntelL1DMiss, Desc: "L1 data cache line replacements", PMU: "core"},
	{Name: IntelL2Miss, Desc: "L2 cache requests that missed", PMU: "core"},
	{Name: IntelLLCMiss, Desc: "Last-level cache misses", PMU: "core"},
	{Name: IntelLLCRef, Desc: "Last-level cache references", PMU: "core"},
	{Name: IntelFPDiv, Desc: "Cycles the FP divider is active", PMU: "core"},
	{Name: RAPLEnergyPkg, Desc: "Package energy in microjoules", PMU: "rapl"},
}

var amdEvents = []EventDef{
	{Name: AMDCycles, Desc: "Cycles not in halt", PMU: "core", NeverZero: true},
	{Name: AMDInstructions, Desc: "Retired instructions", PMU: "core", NeverZero: true},
	{Name: AMDUops, Desc: "Retired micro-ops", PMU: "core", NeverZero: true},
	{Name: AMDLoads, Desc: "Dispatched load operations", PMU: "core"},
	{Name: AMDStores, Desc: "Dispatched store operations", PMU: "core"},
	{Name: AMDFlopsAny, Desc: "All retired SSE/AVX FLOPs", PMU: "core"},
	{Name: AMDL1DMiss, Desc: "L1 data cache misses", PMU: "core"},
	{Name: AMDL2Miss, Desc: "L2 cache misses", PMU: "core"},
	{Name: AMDLLCMiss, Desc: "L3 (longest latency cache) misses", PMU: "core"},
	{Name: AMDLLCRetired, Desc: "L3 accesses retired", PMU: "core"},
	{Name: AMDFPDiv, Desc: "Divide ops", PMU: "core"},
	{Name: RAPLEnergyPkg, Desc: "Package energy in microjoules", PMU: "rapl"},
	{Name: RAPLEnergyDRAM, Desc: "DRAM energy in microjoules", PMU: "rapl"},
}

var catalogs = map[string]*Catalog{
	"skx":     buildCatalog("skx", "intel", 4, 8, intelEvents),
	"icl":     buildCatalog("icl", "intel", 4, 8, intelEvents),
	"cascade": buildCatalog("cascade", "intel", 4, 8, intelEvents),
	"zen3":    buildCatalog("zen3", "amd", 6, 6, amdEvents),
}

// CatalogFor returns the event catalog for a microarchitecture. It is the
// stand-in for libpfm4, "which can recognize model-specific registers (and
// events) of virtually every x86 and ARM processor on the market".
func CatalogFor(microarch string) (*Catalog, error) {
	c, ok := catalogs[strings.ToLower(microarch)]
	if !ok {
		return nil, fmt.Errorf("pmu: no event catalog for microarchitecture %q", microarch)
	}
	return c, nil
}

// Microarchs returns the microarchitectures with built-in catalogs.
func Microarchs() []string {
	var out []string
	for k := range catalogs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
