package pmu

import (
	"hash/fnv"
	"math"
	"sync"
)

// NoiseModel reproduces the non-determinism and overcount of hardware
// performance counters (Weaver et al. [28]; paper Fig 4). Real PMUs show a
// small event-dependent bias (some events systematically overcount, some
// undercount) plus run-to-run jitter; multiplexed reads add scaling error.
//
// The model is deterministic for a given seed: each (event, read index)
// pair produces a stable distortion, so experiments are reproducible while
// consecutive reads of the same event still jitter realistically.
type NoiseModel struct {
	mu sync.Mutex
	// BiasPPM is the systematic per-event bias in parts-per-million; if an
	// event is absent a bias is derived from the event name hash in
	// [-DefaultBiasPPM, +DefaultBiasPPM].
	BiasPPM map[string]int64
	// DefaultBiasPPM bounds hash-derived biases. Real counters are within a
	// few thousand ppm for retired-instruction-class events.
	DefaultBiasPPM int64
	// JitterPPM is the half-width of the uniform per-read jitter.
	JitterPPM int64
	// MuxExtraPPM is additional jitter applied when multiplexing scales the
	// count (more events than counters).
	MuxExtraPPM int64

	seed  uint64
	reads map[string]uint64 // per-event read counter, for jitter evolution
}

// NewNoiseModel returns a model with realistic defaults: ±0.2 % systematic
// bias bound, ±0.5 % read jitter, ±2 % extra when multiplexed.
func NewNoiseModel(seed uint64) *NoiseModel {
	return &NoiseModel{
		BiasPPM:        map[string]int64{},
		DefaultBiasPPM: 2000,
		JitterPPM:      5000,
		MuxExtraPPM:    20000,
		seed:           seed,
		reads:          map[string]uint64{},
	}
}

// Noiseless returns a model that passes counts through exactly; useful as
// the ground-truth configuration in accuracy experiments.
func Noiseless() *NoiseModel {
	return &NoiseModel{BiasPPM: map[string]int64{}, reads: map[string]uint64{}}
}

// splitmix64 advances a seed; a tiny deterministic PRNG adequate for noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// unitFloat maps a uint64 to [0,1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}

// bias returns the systematic bias for an event in ppm.
func (n *NoiseModel) bias(event string) int64 {
	if b, ok := n.BiasPPM[event]; ok {
		return b
	}
	if n.DefaultBiasPPM == 0 {
		return 0
	}
	u := unitFloat(splitmix64(hash64(event) ^ n.seed))
	return int64((u*2 - 1) * float64(n.DefaultBiasPPM))
}

// Distort applies the model to a true count and returns the read value.
func (n *NoiseModel) Distort(event string, truth uint64, multiplexed bool) uint64 {
	if truth == 0 {
		return 0
	}
	if n.DefaultBiasPPM == 0 && n.JitterPPM == 0 && (!multiplexed || n.MuxExtraPPM == 0) && len(n.BiasPPM) == 0 {
		return truth // noiseless passthrough, exact for any magnitude
	}
	n.mu.Lock()
	n.reads[event]++
	idx := n.reads[event]
	n.mu.Unlock()

	ppm := float64(n.bias(event))
	if n.JitterPPM > 0 {
		u := unitFloat(splitmix64(n.seed ^ hash64(event) ^ idx*0x9e3779b97f4a7c15))
		ppm += (u*2 - 1) * float64(n.JitterPPM)
	}
	if multiplexed && n.MuxExtraPPM > 0 {
		u := unitFloat(splitmix64(n.seed ^ hash64("mux/"+event) ^ idx))
		ppm += (u*2 - 1) * float64(n.MuxExtraPPM)
	}
	scaled := float64(truth) * (1 + ppm/1e6)
	if scaled < 0 {
		return 0
	}
	return uint64(math.Round(scaled))
}

// RelativeError returns (read-truth)/truth; a convenience for the Fig 4
// accuracy analysis. Returns 0 when truth is 0.
func RelativeError(read, truth uint64) float64 {
	if truth == 0 {
		return 0
	}
	return (float64(read) - float64(truth)) / float64(truth)
}
