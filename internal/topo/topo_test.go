package topo

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		sys, err := NewPreset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := NewPreset("vax780"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestTableIIGeometry(t *testing.T) {
	cases := []struct {
		name                    string
		sockets, cores, threads int
		vendor                  Vendor
	}{
		{PresetSKX, 2, 44, 88, VendorIntel},
		{PresetICL, 1, 8, 16, VendorIntel},
		{PresetCSL, 1, 28, 56, VendorIntel},
		{PresetZEN3, 1, 16, 32, VendorAMD},
	}
	for _, c := range cases {
		sys := MustPreset(c.name)
		if got := sys.NumSockets(); got != c.sockets {
			t.Errorf("%s: %d sockets, want %d", c.name, got, c.sockets)
		}
		if got := sys.NumCores(); got != c.cores {
			t.Errorf("%s: %d cores, want %d", c.name, got, c.cores)
		}
		if got := sys.NumThreads(); got != c.threads {
			t.Errorf("%s: %d threads, want %d", c.name, got, c.threads)
		}
		if sys.CPU.Vendor != c.vendor {
			t.Errorf("%s: vendor %s, want %s", c.name, sys.CPU.Vendor, c.vendor)
		}
	}
}

func TestThreadIDsUniqueAndDense(t *testing.T) {
	for _, name := range Presets() {
		sys := MustPreset(name)
		ts := sys.AllThreads()
		seen := map[int]bool{}
		for _, th := range ts {
			if seen[th.ID] {
				t.Fatalf("%s: duplicate thread id %d", name, th.ID)
			}
			seen[th.ID] = true
		}
		// Linux-style numbering: ids are 0..N-1.
		for i := 0; i < len(ts); i++ {
			if !seen[i] {
				t.Fatalf("%s: thread id %d missing (non-dense numbering)", name, i)
			}
		}
	}
}

func TestSMTSiblingNumbering(t *testing.T) {
	// cpu0 and cpu<numCores> must share core 0 (the Linux convention the
	// probe output follows).
	sys := MustPreset(PresetSKX)
	cores := sys.NumCores()
	var c0, c44 int = -1, -1
	for _, th := range sys.AllThreads() {
		if th.ID == 0 {
			c0 = th.CoreID
		}
		if th.ID == cores {
			c44 = th.CoreID
		}
	}
	if c0 != c44 {
		t.Fatalf("cpu0 on core %d but cpu%d on core %d; should be SMT siblings", c0, cores, c44)
	}
}

func TestCacheLevelFor(t *testing.T) {
	sys := MustPreset(PresetCSL) // L1 32K, L2 1M, L3 38.5M
	cases := []struct {
		wss  int64
		want CacheLevel
	}{
		{16 << 10, L1},
		{32 << 10, L1},
		{33 << 10, L2},
		{1 << 20, L2},
		{2 << 20, L3},
		{64 << 20, DRAM},
	}
	for _, c := range cases {
		if got := sys.CacheLevelFor(c.wss); got != c.want {
			t.Errorf("wss %d: got %s want %s", c.wss, got, c.want)
		}
	}
}

func TestPeakGFLOPSMonotonicInISA(t *testing.T) {
	sys := MustPreset(PresetSKX)
	prev := 0.0
	for _, isa := range []ISA{ISAScalar, ISASSE, ISAAVX2, ISAAVX512} {
		g := sys.PeakGFLOPS(isa, sys.NumCores())
		if g <= prev {
			t.Errorf("peak GFLOPS not increasing at %s: %f <= %f", isa, g, prev)
		}
		prev = g
	}
	// SMT threads beyond core count add no FLOPs.
	if sys.PeakGFLOPS(ISAAVX512, sys.NumThreads()) != sys.PeakGFLOPS(ISAAVX512, sys.NumCores()) {
		t.Error("SMT threads should not increase peak FLOPs")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mutations := []func(*System){
		func(s *System) { s.Hostname = "" },
		func(s *System) { s.Sockets = nil },
		func(s *System) { s.Sockets[0].Cores[0].SocketID = 99 },
		func(s *System) { s.Sockets[0].Cores[0].Threads[0].CoreID = 77 },
		func(s *System) { s.Sockets[0].Cores[1].ID = s.Sockets[0].Cores[0].ID },
		func(s *System) { s.NUMA[0].CoreIDs = append(s.NUMA[0].CoreIDs, 4242) },
		func(s *System) { s.Caches[0].SizeBytes = 0 },
		func(s *System) { s.Caches[0].LineBytes = -1 },
	}
	for i, mutate := range mutations {
		sys := MustPreset(PresetICL)
		mutate(sys)
		if err := sys.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestProbeRoundTrip(t *testing.T) {
	sys := WithGPU(MustPreset(PresetSKX))
	p := NewProber()
	p.EventLister = func(string) []string { return []string{"EV_A", "EV_B"} }
	p.MetricLister = func(*System) []string { return []string{"kernel.all.load"} }
	doc, err := p.Probe(sys)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Sources["gpus"] != SourceNVSMI {
		t.Error("GPU section should be attributed to nvidia-smi")
	}
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProbeDoc(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hostname != sys.Hostname {
		t.Errorf("hostname %q, want %q", got.Hostname, sys.Hostname)
	}
	if len(got.PMUEvents) != 2 || got.PMUEvents[0] != "EV_A" {
		t.Errorf("PMU events lost in round trip: %v", got.PMUEvents)
	}
	if got.System.NumThreads() != sys.NumThreads() {
		t.Error("system lost in round trip")
	}
}

func TestDecodeProbeDocRejectsBadInput(t *testing.T) {
	if _, err := DecodeProbeDoc(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("expected error for truncated JSON")
	}
	if _, err := DecodeProbeDoc(bytes.NewReader([]byte(`{"version":1}`))); err == nil {
		t.Fatal("expected error for missing system")
	}
}

func TestPinStrategiesProduceValidAffinity(t *testing.T) {
	for _, name := range Presets() {
		sys := MustPreset(name)
		for _, strat := range PinStrategies() {
			for _, n := range []int{1, 2, sys.NumCores(), sys.NumThreads()} {
				pin, err := Pin(sys, strat, n)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", name, strat, n, err)
				}
				if len(pin) != n {
					t.Fatalf("%s/%s: got %d ids, want %d", name, strat, len(pin), n)
				}
				seen := map[int]bool{}
				valid := map[int]bool{}
				for _, th := range sys.AllThreads() {
					valid[th.ID] = true
				}
				for _, id := range pin {
					if seen[id] {
						t.Fatalf("%s/%s: thread %d pinned twice", name, strat, id)
					}
					if !valid[id] {
						t.Fatalf("%s/%s: invalid thread id %d", name, strat, id)
					}
					seen[id] = true
				}
			}
		}
	}
}

func TestPinBalancedUsesDistinctCores(t *testing.T) {
	sys := MustPreset(PresetSKX) // 44 cores
	pin, err := Pin(sys, PinBalanced, 44)
	if err != nil {
		t.Fatal(err)
	}
	coreOf := map[int]int{}
	for _, th := range sys.AllThreads() {
		coreOf[th.ID] = th.CoreID
	}
	cores := map[int]bool{}
	for _, id := range pin {
		if cores[coreOf[id]] {
			t.Fatalf("balanced pinning reused core %d before exhausting cores", coreOf[id])
		}
		cores[coreOf[id]] = true
	}
}

func TestPinCompactFillsSMTFirst(t *testing.T) {
	sys := MustPreset(PresetICL) // 8c/16t
	pin, err := Pin(sys, PinCompact, 2)
	if err != nil {
		t.Fatal(err)
	}
	coreOf := map[int]int{}
	for _, th := range sys.AllThreads() {
		coreOf[th.ID] = th.CoreID
	}
	if coreOf[pin[0]] != coreOf[pin[1]] {
		t.Fatalf("compact pinning should fill SMT siblings first: %v on cores %d,%d",
			pin, coreOf[pin[0]], coreOf[pin[1]])
	}
}

func TestPinNUMABalancedAlternatesNodes(t *testing.T) {
	sys := MustPreset(PresetSKX) // 2 NUMA nodes
	pin, err := Pin(sys, PinNUMABalanced, 4)
	if err != nil {
		t.Fatal(err)
	}
	numaOf := func(threadID int) int {
		for _, c := range sys.AllCores() {
			for _, th := range c.Threads {
				if th.ID == threadID {
					return c.NUMAID
				}
			}
		}
		return -1
	}
	if numaOf(pin[0]) == numaOf(pin[1]) {
		t.Fatalf("numa_balanced should alternate nodes: %v", pin)
	}
}

func TestPinErrors(t *testing.T) {
	sys := MustPreset(PresetICL)
	if _, err := Pin(sys, PinBalanced, 0); err == nil {
		t.Error("expected error for zero threads")
	}
	if _, err := Pin(sys, PinBalanced, sys.NumThreads()+1); err == nil {
		t.Error("expected error for oversubscription")
	}
	if _, err := Pin(sys, PinStrategy("bogus"), 1); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestPinPropertyNoDuplicates(t *testing.T) {
	sys := MustPreset(PresetZEN3)
	f := func(nRaw uint8, sIdx uint8) bool {
		n := int(nRaw)%sys.NumThreads() + 1
		strat := PinStrategies()[int(sIdx)%len(PinStrategies())]
		pin, err := Pin(sys, strat, n)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, id := range pin {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(pin) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestISAVectorWidth(t *testing.T) {
	if ISAScalar.VectorWidth() != 1 || ISASSE.VectorWidth() != 2 ||
		ISAAVX2.VectorWidth() != 4 || ISAAVX512.VectorWidth() != 8 {
		t.Fatal("vector widths wrong")
	}
}

func TestWidestISA(t *testing.T) {
	if MustPreset(PresetCSL).CPU.WidestISA() != ISAAVX512 {
		t.Error("CSL should report AVX-512")
	}
	if MustPreset(PresetZEN3).CPU.WidestISA() != ISAAVX2 {
		t.Error("Zen3 should report AVX2")
	}
}

func TestWithGPUDoesNotMutateOriginal(t *testing.T) {
	sys := MustPreset(PresetICL)
	g := WithGPU(sys)
	if len(sys.GPUs) != 0 {
		t.Fatal("WithGPU mutated the original system")
	}
	if len(g.GPUs) != 1 || g.GPUs[0].Model != "NVIDIA Quadro GV100" {
		t.Fatalf("unexpected GPU: %+v", g.GPUs)
	}
}

func TestNUMAOf(t *testing.T) {
	sys := MustPreset(PresetSKX)
	if sys.NUMAOf(0) != 0 {
		t.Errorf("core 0 should be NUMA 0")
	}
	if sys.NUMAOf(22) != 1 {
		t.Errorf("core 22 should be NUMA 1 (socket 1), got %d", sys.NUMAOf(22))
	}
	if sys.NUMAOf(9999) != -1 {
		t.Error("unknown core should return -1")
	}
}
