package topo

import "testing"

// TestPresetTopologyInvariants pins the structural laws every built-in
// Table II system must satisfy: self-validation, socket/core/thread
// count consistency with the CPU spec, globally unique thread ids
// forming the dense Linux range [0, NumThreads), and every core mapped
// to a real NUMA node.
func TestPresetTopologyInvariants(t *testing.T) {
	for _, name := range Presets() {
		sys, err := NewPreset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}

		// Counts must agree with the spec'd geometry.
		wantCores := sys.CPU.CoresPerSocket * sys.NumSockets()
		if got := sys.NumCores(); got != wantCores {
			t.Errorf("%s: NumCores = %d, want %d sockets x %d cores = %d",
				name, got, sys.NumSockets(), sys.CPU.CoresPerSocket, wantCores)
		}
		wantThreads := wantCores * sys.CPU.ThreadsPerCore
		if got := sys.NumThreads(); got != wantThreads {
			t.Errorf("%s: NumThreads = %d, want %d cores x %d threads = %d",
				name, got, wantCores, sys.CPU.ThreadsPerCore, wantThreads)
		}
		if got := len(sys.AllCores()); got != wantCores {
			t.Errorf("%s: AllCores lists %d cores, want %d", name, got, wantCores)
		}

		// Thread ids: unique and dense over [0, NumThreads) — the Linux
		// numbering per-CPU metric instance domains rely on.
		threads := sys.AllThreads()
		if len(threads) != wantThreads {
			t.Fatalf("%s: AllThreads lists %d threads, want %d", name, len(threads), wantThreads)
		}
		seen := make(map[int]bool, len(threads))
		for _, th := range threads {
			if th.ID < 0 || th.ID >= wantThreads {
				t.Errorf("%s: thread id %d outside [0, %d)", name, th.ID, wantThreads)
			}
			if seen[th.ID] {
				t.Errorf("%s: duplicate thread id %d", name, th.ID)
			}
			seen[th.ID] = true
		}

		// Every core resolves to a real NUMA node.
		for _, c := range sys.AllCores() {
			n := sys.NUMAOf(c.ID)
			if n < 0 || n >= len(sys.NUMA) {
				t.Errorf("%s: core %d maps to NUMA node %d of %d", name, c.ID, n, len(sys.NUMA))
			}
		}
		if len(sys.NUMA) == 0 {
			t.Errorf("%s: no NUMA nodes", name)
		}

		// The roofline anchor must be positive for the widest ISA.
		if g := sys.PeakGFLOPS(sys.CPU.WidestISA(), sys.NumThreads()); g <= 0 {
			t.Errorf("%s: PeakGFLOPS = %v", name, g)
		}
	}
}

// TestPresetProbeDeterministic pins that probing a preset twice yields
// identical documents when the clock is pinned — the property the
// simulation harness's replay guarantee builds on.
func TestPresetProbeDeterministic(t *testing.T) {
	for _, name := range Presets() {
		sys := MustPreset(name)
		p := NewProber()
		probe1, err := p.Probe(sys)
		if err != nil {
			t.Fatalf("%s: probe: %v", name, err)
		}
		probe2, err := p.Probe(sys)
		if err != nil {
			t.Fatalf("%s: reprobe: %v", name, err)
		}
		if probe1.System.Hostname != probe2.System.Hostname ||
			probe1.System.NumThreads() != probe2.System.NumThreads() {
			t.Errorf("%s: probe not stable across runs", name)
		}
	}
}
