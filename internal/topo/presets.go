package topo

import "fmt"

// Preset names for the evaluation platforms of Table II.
const (
	PresetSKX  = "skx"  // 2x Intel Xeon Gold 6152, Skylake-X, 44c/88t, 1 TB
	PresetICL  = "icl"  // Intel i9-11900K, Ice Lake (Rocket Lake-class), 8c/16t
	PresetCSL  = "csl"  // Intel Xeon Gold 6258R, Cascade Lake, 28c/56t
	PresetZEN3 = "zen3" // AMD EPYC 7313, Zen3, 16c/32t
)

// Presets returns the names of all built-in systems.
func Presets() []string { return []string{PresetSKX, PresetICL, PresetCSL, PresetZEN3} }

// NewPreset builds one of the Table II systems. Unknown names error.
func NewPreset(name string) (*System, error) {
	switch name {
	case PresetSKX:
		return newSKX(), nil
	case PresetICL:
		return newICL(), nil
	case PresetCSL:
		return newCSL(), nil
	case PresetZEN3:
		return newZEN3(), nil
	}
	return nil, fmt.Errorf("topo: unknown preset %q (have %v)", name, Presets())
}

// MustPreset is NewPreset that panics on unknown names; for tests and
// examples where the name is a compile-time constant.
func MustPreset(name string) *System {
	s, err := NewPreset(name)
	if err != nil {
		panic(err)
	}
	return s
}

// buildLayout populates sockets/NUMA with a regular layout: threadsPerCore
// SMT siblings per core, coresPerSocket cores per socket, one NUMA node per
// socket. Thread ids follow the Linux convention where sibling threads are
// offset by the total core count (cpu0 and cpu<N> share core 0).
func buildLayout(sockets, coresPerSocket, threadsPerCore int, memPerNUMA int64) ([]Socket, []NUMANode) {
	totalCores := sockets * coresPerSocket
	var sks []Socket
	var numa []NUMANode
	for s := 0; s < sockets; s++ {
		sk := Socket{ID: s}
		nn := NUMANode{ID: s, MemoryBytes: memPerNUMA}
		for c := 0; c < coresPerSocket; c++ {
			coreID := s*coresPerSocket + c
			core := Core{ID: coreID, SocketID: s, NUMAID: s}
			for t := 0; t < threadsPerCore; t++ {
				core.Threads = append(core.Threads, Thread{ID: coreID + t*totalCores, CoreID: coreID})
			}
			sk.Cores = append(sk.Cores, core)
			nn.CoreIDs = append(nn.CoreIDs, coreID)
		}
		sks = append(sks, sk)
		numa = append(numa, nn)
	}
	return sks, numa
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
)

func newSKX() *System {
	sks, numa := buildLayout(2, 22, 2, 512*gib)
	return &System{
		Hostname: "skx",
		OS:       OSInfo{Name: "Ubuntu 20.04.3 LTS", Kernel: "5.15.0-73-generic", Arch: "x86_64"},
		CPU: CPUSpec{
			Model: "Intel Xeon Gold 6152", Vendor: VendorIntel, Microarch: "skx",
			BaseGHz: 2.1, TurboGHz: 3.7, CoresPerSocket: 22, ThreadsPerCore: 2,
			ISAs:     []ISA{ISAScalar, ISASSE, ISAAVX2, ISAAVX512},
			FMAUnits: 2, TDPWatts: 140, IdleWatts: 38,
		},
		Memory: MemSpec{
			TotalBytes: 1024 * gib, Type: "DDR4", MHz: 2666, Channels: 6,
			BWBytesPerCycPerCore: 4.0, SocketBWGBs: 110,
		},
		Sockets: sks,
		NUMA:    numa,
		Caches: []Cache{
			{Level: L1, SizeBytes: 32 * kib, LineBytes: 64, Assoc: 8, LatencyCyc: 4, BWBytesPerCycPerCore: 128},
			{Level: L2, SizeBytes: 1024 * kib, LineBytes: 64, Assoc: 16, LatencyCyc: 14, BWBytesPerCycPerCore: 48},
			{Level: L3, SizeBytes: 30976 * kib, LineBytes: 64, Shared: true, Assoc: 11, LatencyCyc: 50, BWBytesPerCycPerCore: 16},
		},
		Disks: []Disk{
			{Name: "sda", Model: "INTEL SSDSC2KB96", SizeBytes: 960 * gib, SMARTOK: true},
			{Name: "sdb", Model: "ST4000NM0035", SizeBytes: 4000 * gib, Rotational: true, SMARTOK: true},
			{Name: "sdc", Model: "ST4000NM0035", SizeBytes: 4000 * gib, Rotational: true, SMARTOK: true},
			{Name: "sdd", Model: "ST4000NM0035", SizeBytes: 4000 * gib, Rotational: true, SMARTOK: true},
		},
		NICs: []NIC{{Name: "eno1", SpeedMbps: 100, Address: "10.0.0.11"}},
		Env:  map[string]string{"pcp": "5.3.6-1"},
	}
}

func newICL() *System {
	sks, numa := buildLayout(1, 8, 2, 64*gib)
	return &System{
		Hostname: "icl",
		OS:       OSInfo{Name: "Linux Mint 21.1", Kernel: "5.15.0-56-generic", Arch: "x86_64"},
		CPU: CPUSpec{
			Model: "Intel i9-11900K", Vendor: VendorIntel, Microarch: "icl",
			BaseGHz: 3.5, TurboGHz: 5.1, CoresPerSocket: 8, ThreadsPerCore: 2,
			ISAs:     []ISA{ISAScalar, ISASSE, ISAAVX2, ISAAVX512},
			FMAUnits: 2, TDPWatts: 125, IdleWatts: 18,
		},
		Memory: MemSpec{
			TotalBytes: 64 * gib, Type: "DDR4", MHz: 2133, Channels: 2,
			BWBytesPerCycPerCore: 3.0, SocketBWGBs: 34,
		},
		Sockets: sks,
		NUMA:    numa,
		Caches: []Cache{
			{Level: L1, SizeBytes: 48 * kib, LineBytes: 64, Assoc: 12, LatencyCyc: 5, BWBytesPerCycPerCore: 128},
			{Level: L2, SizeBytes: 512 * kib, LineBytes: 64, Assoc: 8, LatencyCyc: 13, BWBytesPerCycPerCore: 48},
			{Level: L3, SizeBytes: 16384 * kib, LineBytes: 64, Shared: true, Assoc: 16, LatencyCyc: 42, BWBytesPerCycPerCore: 18},
		},
		Disks: []Disk{{Name: "nvme0n1", Model: "Samsung SSD 980", SizeBytes: 1000 * gib, SMARTOK: true}},
		NICs:  []NIC{{Name: "enp3s0", SpeedMbps: 1000, Address: "10.0.0.12"}},
		Env:   map[string]string{"pcp": "5.3.6-1"},
	}
}

func newCSL() *System {
	sks, numa := buildLayout(1, 28, 2, 64*gib)
	return &System{
		Hostname: "csl",
		OS:       OSInfo{Name: "CentOS Linux release 7.9.2009", Kernel: "3.10.0-1160.90.1.el7.x86_64", Arch: "x86_64"},
		CPU: CPUSpec{
			Model: "Intel Xeon Gold 6258R", Vendor: VendorIntel, Microarch: "cascade",
			BaseGHz: 2.7, TurboGHz: 4.0, CoresPerSocket: 28, ThreadsPerCore: 2,
			ISAs:     []ISA{ISAScalar, ISASSE, ISAAVX2, ISAAVX512},
			FMAUnits: 2, TDPWatts: 205, IdleWatts: 42,
		},
		Memory: MemSpec{
			TotalBytes: 64 * gib, Type: "DDR4", MHz: 3200, Channels: 6,
			BWBytesPerCycPerCore: 3.6, SocketBWGBs: 131,
		},
		Sockets: sks,
		NUMA:    numa,
		Caches: []Cache{
			{Level: L1, SizeBytes: 32 * kib, LineBytes: 64, Assoc: 8, LatencyCyc: 4, BWBytesPerCycPerCore: 128},
			{Level: L2, SizeBytes: 1024 * kib, LineBytes: 64, Assoc: 16, LatencyCyc: 14, BWBytesPerCycPerCore: 48},
			{Level: L3, SizeBytes: 39424 * kib, LineBytes: 64, Shared: true, Assoc: 11, LatencyCyc: 50, BWBytesPerCycPerCore: 16},
		},
		Disks: []Disk{{Name: "sda", Model: "MZ7LH960HAJR", SizeBytes: 960 * gib, SMARTOK: true}},
		NICs:  []NIC{{Name: "em1", SpeedMbps: 10000, Address: "10.0.0.13"}},
		Env:   map[string]string{"pcp": "5.3.6-1", "mkl": "2021.4", "icc": "2021.4"},
	}
}

func newZEN3() *System {
	sks, numa := buildLayout(1, 16, 2, 128*gib)
	return &System{
		Hostname: "zen3",
		OS:       OSInfo{Name: "Ubuntu 22.04.3 LTS", Kernel: "6.2.0-33-generic", Arch: "x86_64"},
		CPU: CPUSpec{
			Model: "AMD EPYC 7313", Vendor: VendorAMD, Microarch: "zen3",
			BaseGHz: 3.0, TurboGHz: 3.7, CoresPerSocket: 16, ThreadsPerCore: 2,
			ISAs:     []ISA{ISAScalar, ISASSE, ISAAVX2},
			FMAUnits: 2, TDPWatts: 155, IdleWatts: 30,
		},
		Memory: MemSpec{
			TotalBytes: 128 * gib, Type: "DDR4", MHz: 2933, Channels: 8,
			BWBytesPerCycPerCore: 4.2, SocketBWGBs: 150,
		},
		Sockets: sks,
		NUMA:    numa,
		Caches: []Cache{
			{Level: L1, SizeBytes: 32 * kib, LineBytes: 64, Assoc: 8, LatencyCyc: 4, BWBytesPerCycPerCore: 96},
			{Level: L2, SizeBytes: 512 * kib, LineBytes: 64, Assoc: 8, LatencyCyc: 12, BWBytesPerCycPerCore: 40},
			{Level: L3, SizeBytes: 128 * 1024 * kib, LineBytes: 64, Shared: true, Assoc: 16, LatencyCyc: 46, BWBytesPerCycPerCore: 20},
		},
		Disks: []Disk{{Name: "nvme0n1", Model: "SAMSUNG MZQL2960", SizeBytes: 960 * gib, SMARTOK: true}},
		NICs:  []NIC{{Name: "enp65s0", SpeedMbps: 25000, Address: "10.0.0.14"}},
		Env:   map[string]string{"pcp": "5.3.6-1"},
	}
}

// WithGPU returns a copy of the system with an attached NVIDIA-class GPU,
// mirroring the Listing 4 device (Quadro GV100). Used to exercise the
// compute-device integration path of §III-D.
func WithGPU(s *System) *System {
	cp := *s
	cp.GPUs = append(append([]GPU{}, s.GPUs...), GPU{
		ID: 0, Model: "NVIDIA Quadro GV100", MemoryMB: 34359, SMs: 80,
		SharedKBPerSM: 96, L2KB: 6144, NUMANode: 0, BusID: "0000:3b:00.0",
	})
	return &cp
}
