// Package topo models the hardware topology of an HPC system and provides
// the probing machinery that P-MoVE runs on a target to discover it.
//
// On a real deployment P-MoVE shells out to lshw, likwid-topology, the cpuid
// instruction, /sys/block and smartctl (paper §III-C). This reproduction is
// self-contained: the same information is synthesised from a System value,
// and Probe serialises it into the probe JSON document that is copied back
// to the host (Figure 3, steps ①-②). Presets for the four evaluation
// platforms of Table II (skx, icl, csl, zen3) are provided by presets.go.
package topo

import (
	"fmt"
	"sort"
)

// Vendor identifies a CPU vendor. The abstraction layer keys its event
// mappings on (vendor, microarchitecture).
type Vendor string

// Supported vendors.
const (
	VendorIntel Vendor = "intel"
	VendorAMD   Vendor = "amd"
)

// ISA is an instruction-set extension relevant for FLOP accounting.
type ISA string

// ISA extensions recognised by the CARM microbenchmarks and the machine
// execution engine. Wider vectors do more FLOPs (and move more bytes) per
// instruction.
const (
	ISAScalar ISA = "scalar"
	ISASSE    ISA = "sse"
	ISAAVX2   ISA = "avx2"
	ISAAVX512 ISA = "avx512"
)

// VectorWidth returns the number of float64 lanes of the extension.
func (i ISA) VectorWidth() int {
	switch i {
	case ISASSE:
		return 2
	case ISAAVX2:
		return 4
	case ISAAVX512:
		return 8
	default:
		return 1
	}
}

// CacheLevel identifies a level of the memory hierarchy, with DRAM as the
// terminal "level" used by the roofline machinery.
type CacheLevel int

// Memory hierarchy levels.
const (
	L1 CacheLevel = iota + 1
	L2
	L3
	DRAM
)

func (c CacheLevel) String() string {
	switch c {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case DRAM:
		return "DRAM"
	}
	return fmt.Sprintf("CacheLevel(%d)", int(c))
}

// Cache describes one cache in the hierarchy.
type Cache struct {
	Level      CacheLevel `json:"level"`
	SizeBytes  int64      `json:"size_bytes"`
	LineBytes  int        `json:"line_bytes"`
	Shared     bool       `json:"shared"`     // shared across the socket (e.g. L3)
	Inclusive  bool       `json:"inclusive"`  // inclusive of lower levels
	Assoc      int        `json:"assoc"`      // set associativity
	LatencyCyc int        `json:"latency_cy"` // load-to-use latency in cycles
	// BWBytesPerCycPerCore is the sustainable per-core bandwidth used by
	// the analytic execution model, in bytes per cycle.
	BWBytesPerCycPerCore float64 `json:"bw_bytes_per_cycle_per_core"`
}

// Thread is a hardware thread (SMT context).
type Thread struct {
	ID     int `json:"id"`      // global hardware thread id (OS CPU number)
	CoreID int `json:"core_id"` // global core id
}

// Core is a physical core holding one or more hardware threads.
type Core struct {
	ID       int      `json:"id"`
	SocketID int      `json:"socket_id"`
	NUMAID   int      `json:"numa_id"`
	Threads  []Thread `json:"threads"`
}

// Socket is a CPU package.
type Socket struct {
	ID    int    `json:"id"`
	Cores []Core `json:"cores"`
}

// NUMANode groups cores with a local memory region.
type NUMANode struct {
	ID          int   `json:"id"`
	MemoryBytes int64 `json:"memory_bytes"`
	CoreIDs     []int `json:"core_ids"`
}

// Disk is a block device discovered from /sys/block and SMART.
type Disk struct {
	Name       string `json:"name"`
	Model      string `json:"model"`
	SizeBytes  int64  `json:"size_bytes"`
	Rotational bool   `json:"rotational"`
	SMARTOK    bool   `json:"smart_ok"`
}

// NIC is a network interface.
type NIC struct {
	Name      string `json:"name"`
	SpeedMbps int    `json:"speed_mbps"`
	Address   string `json:"address"`
}

// GPU describes an accelerator device, probed in the real system via
// nvidia-smi, /sys/class/drm and DeviceQuery (paper §III-D).
type GPU struct {
	ID            int    `json:"id"`
	Model         string `json:"model"`
	MemoryMB      int64  `json:"memory_mb"`
	SMs           int    `json:"sms"`
	SharedKBPerSM int    `json:"shared_kb_per_sm"`
	L2KB          int64  `json:"l2_kb"`
	NUMANode      int    `json:"numa_node"`
	BusID         string `json:"bus_id"`
}

// CPUSpec captures the per-socket CPU silicon parameters used both for the
// KB (machine specification) and the analytic execution model.
type CPUSpec struct {
	Model          string  `json:"model"`
	Vendor         Vendor  `json:"vendor"`
	Microarch      string  `json:"microarch"` // abstraction-layer key, e.g. "skx", "zen3"
	BaseGHz        float64 `json:"base_ghz"`
	TurboGHz       float64 `json:"turbo_ghz"`
	CoresPerSocket int     `json:"cores_per_socket"`
	ThreadsPerCore int     `json:"threads_per_core"`
	ISAs           []ISA   `json:"isas"`
	// FMA units per core; peak FLOPs/cycle = 2 (FMA) * width * FMAUnits.
	FMAUnits int `json:"fma_units"`
	// TDPWatts is the package thermal design power, anchoring the RAPL model.
	TDPWatts float64 `json:"tdp_watts"`
	// IdleWatts is package power with no activity.
	IdleWatts float64 `json:"idle_watts"`
}

// HasISA reports whether the CPU supports the extension.
func (c *CPUSpec) HasISA(isa ISA) bool {
	for _, i := range c.ISAs {
		if i == isa {
			return true
		}
	}
	return false
}

// WidestISA returns the widest supported vector extension.
func (c *CPUSpec) WidestISA() ISA {
	best := ISAScalar
	for _, i := range c.ISAs {
		if i.VectorWidth() > best.VectorWidth() {
			best = i
		}
	}
	return best
}

// MemSpec describes the DRAM configuration.
type MemSpec struct {
	TotalBytes int64  `json:"total_bytes"`
	Type       string `json:"type"` // e.g. "DDR4"
	MHz        int    `json:"mhz"`
	Channels   int    `json:"channels"`
	// BWBytesPerCycPerCore is sustainable DRAM bandwidth per core in
	// bytes/cycle; the socket aggregate saturates at SocketBWGBs.
	BWBytesPerCycPerCore float64 `json:"bw_bytes_per_cycle_per_core"`
	SocketBWGBs          float64 `json:"socket_bw_gbs"`
}

// OSInfo mirrors what lshw/uname report.
type OSInfo struct {
	Name   string `json:"name"`
	Kernel string `json:"kernel"`
	Arch   string `json:"arch"`
}

// System is the complete description of one target machine. It is the root
// of the probe document and, on the host, the root of the Knowledge Base.
type System struct {
	Hostname string     `json:"hostname"`
	OS       OSInfo     `json:"os"`
	CPU      CPUSpec    `json:"cpu"`
	Memory   MemSpec    `json:"memory"`
	Sockets  []Socket   `json:"sockets"`
	NUMA     []NUMANode `json:"numa"`
	Caches   []Cache    `json:"caches"` // per-core L1/L2 and per-socket L3
	Disks    []Disk     `json:"disks"`
	NICs     []NIC      `json:"nics"`
	GPUs     []GPU      `json:"gpus"`
	// Env captures tool/framework configuration on the target (paper: KB
	// stores configuration parameters of tools/frameworks).
	Env map[string]string `json:"env,omitempty"`
}

// NumSockets returns the socket count.
func (s *System) NumSockets() int { return len(s.Sockets) }

// NumCores returns the total physical core count.
func (s *System) NumCores() int {
	n := 0
	for _, sk := range s.Sockets {
		n += len(sk.Cores)
	}
	return n
}

// NumThreads returns the total hardware thread count (the instance-domain
// size of per-CPU metrics; this drives the Table III loss behaviour).
func (s *System) NumThreads() int {
	n := 0
	for _, sk := range s.Sockets {
		for _, c := range sk.Cores {
			n += len(c.Threads)
		}
	}
	return n
}

// AllThreads returns every hardware thread ordered by global thread id.
func (s *System) AllThreads() []Thread {
	var ts []Thread
	for _, sk := range s.Sockets {
		for _, c := range sk.Cores {
			ts = append(ts, c.Threads...)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	return ts
}

// AllCores returns every core ordered by global core id.
func (s *System) AllCores() []Core {
	var cs []Core
	for _, sk := range s.Sockets {
		cs = append(cs, sk.Cores...)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	return cs
}

// Cache returns the cache descriptor for a level, or false if the level is
// not present (DRAM is never in Caches; it is described by Memory).
func (s *System) Cache(level CacheLevel) (Cache, bool) {
	for _, c := range s.Caches {
		if c.Level == level {
			return c, true
		}
	}
	return Cache{}, false
}

// CacheLevelFor returns the innermost memory level whose capacity holds a
// working set of wssBytes for a single thread, following the containment
// rule the CARM microbenchmarks use (paper §IV-B1).
func (s *System) CacheLevelFor(wssBytes int64) CacheLevel {
	for _, lvl := range []CacheLevel{L1, L2, L3} {
		c, ok := s.Cache(lvl)
		if !ok {
			continue
		}
		size := c.SizeBytes
		if c.Shared {
			// A shared cache is probed per-socket.
			size = c.SizeBytes
		}
		if wssBytes <= size {
			return lvl
		}
	}
	return DRAM
}

// NUMAOf returns the NUMA node id owning the core, or -1.
func (s *System) NUMAOf(coreID int) int {
	for _, n := range s.NUMA {
		for _, id := range n.CoreIDs {
			if id == coreID {
				return n.ID
			}
		}
	}
	return -1
}

// Validate checks structural invariants of the topology: unique ids,
// consistent core/thread cross-references and NUMA coverage.
func (s *System) Validate() error {
	if s.Hostname == "" {
		return fmt.Errorf("topo: system has no hostname")
	}
	if len(s.Sockets) == 0 {
		return fmt.Errorf("topo: system %s has no sockets", s.Hostname)
	}
	coreIDs := map[int]bool{}
	threadIDs := map[int]bool{}
	for _, sk := range s.Sockets {
		if len(sk.Cores) == 0 {
			return fmt.Errorf("topo: socket %d has no cores", sk.ID)
		}
		for _, c := range sk.Cores {
			if c.SocketID != sk.ID {
				return fmt.Errorf("topo: core %d claims socket %d but lives in socket %d", c.ID, c.SocketID, sk.ID)
			}
			if coreIDs[c.ID] {
				return fmt.Errorf("topo: duplicate core id %d", c.ID)
			}
			coreIDs[c.ID] = true
			if len(c.Threads) == 0 {
				return fmt.Errorf("topo: core %d has no threads", c.ID)
			}
			for _, t := range c.Threads {
				if t.CoreID != c.ID {
					return fmt.Errorf("topo: thread %d claims core %d but lives in core %d", t.ID, t.CoreID, c.ID)
				}
				if threadIDs[t.ID] {
					return fmt.Errorf("topo: duplicate thread id %d", t.ID)
				}
				threadIDs[t.ID] = true
			}
		}
	}
	for _, n := range s.NUMA {
		for _, id := range n.CoreIDs {
			if !coreIDs[id] {
				return fmt.Errorf("topo: NUMA node %d references unknown core %d", n.ID, id)
			}
		}
	}
	for _, c := range s.Caches {
		if c.SizeBytes <= 0 {
			return fmt.Errorf("topo: cache %s has non-positive size", c.Level)
		}
		if c.LineBytes <= 0 {
			return fmt.Errorf("topo: cache %s has non-positive line size", c.Level)
		}
	}
	return nil
}

// PeakGFLOPS returns the theoretical peak double-precision GFLOP/s of the
// whole system for the given ISA and thread count (threads beyond the
// physical core count contribute no extra FLOPs: SMT shares FMA units).
func (s *System) PeakGFLOPS(isa ISA, threads int) float64 {
	cores := threads
	if cores > s.NumCores() {
		cores = s.NumCores()
	}
	flopsPerCyc := 2.0 * float64(isa.VectorWidth()) * float64(s.CPU.FMAUnits)
	return flopsPerCyc * s.CPU.BaseGHz * float64(cores)
}
