package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProbeSource names the (simulated) tool a section of the probe document
// was collected from, mirroring §III-C of the paper.
type ProbeSource string

// Probe sources used in the real system.
const (
	SourceLSHW   ProbeSource = "lshw"
	SourceLikwid ProbeSource = "likwid-topology"
	SourceCPUID  ProbeSource = "cpuid"
	SourceSysfs  ProbeSource = "/sys/block"
	SourceSMART  ProbeSource = "smartctl"
	SourceLibpfm ProbeSource = "libpfm4"
	SourceNVSMI  ProbeSource = "nvidia-smi"
)

// ProbeDoc is the JSON document the probing module produces on the target
// and copies back to the host (Figure 3 step ②). Besides the raw topology
// it records the provenance of each section and the PMU/software metric
// inventories discovered on the target.
type ProbeDoc struct {
	Version   int                    `json:"version"`
	Hostname  string                 `json:"hostname"`
	Timestamp time.Time              `json:"timestamp"`
	Sources   map[string]ProbeSource `json:"sources"`
	System    *System                `json:"system"`
	// PMUEvents lists hardware events recognised for the target's
	// microarchitecture (libpfm4 equivalent); filled in by the prober from
	// the pmu package's catalog.
	PMUEvents []string `json:"pmu_events"`
	// SWMetrics lists software metric names exported by the telemetry
	// agents (PCP equivalent).
	SWMetrics []string `json:"sw_metrics"`
}

// Prober gathers the probe document for a system. In this reproduction it
// reads from the in-memory System; the EventLister/MetricLister hooks stand
// in for libpfm4 and the PCP namespace walk.
type Prober struct {
	// EventLister returns the PMU event names for a microarchitecture.
	EventLister func(microarch string) []string
	// MetricLister returns the software telemetry metric names available
	// on the system.
	MetricLister func(s *System) []string
	// Now supplies timestamps (injectable for determinism).
	Now func() time.Time
}

// NewProber returns a Prober with default hooks (empty inventories, wall
// clock). Callers wire the pmu and telemetry packages in.
func NewProber() *Prober {
	return &Prober{
		EventLister:  func(string) []string { return nil },
		MetricLister: func(*System) []string { return nil },
		Now:          time.Now,
	}
}

// Probe runs the in-depth probing of the target system and returns the
// probe document.
func (p *Prober) Probe(s *System) (*ProbeDoc, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("topo: probe: %w", err)
	}
	doc := &ProbeDoc{
		Version:   1,
		Hostname:  s.Hostname,
		Timestamp: p.Now(),
		Sources: map[string]ProbeSource{
			"system": SourceLSHW,
			"cpu":    SourceCPUID,
			"caches": SourceLikwid,
			"numa":   SourceLikwid,
			"disks":  SourceSysfs,
			"smart":  SourceSMART,
			"pmu":    SourceLibpfm,
		},
		System:    s,
		PMUEvents: p.EventLister(s.CPU.Microarch),
		SWMetrics: p.MetricLister(s),
	}
	if len(s.GPUs) > 0 {
		doc.Sources["gpus"] = SourceNVSMI
	}
	return doc, nil
}

// Encode writes the probe document as JSON.
func (d *ProbeDoc) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeProbeDoc parses a probe document produced by Encode.
func DecodeProbeDoc(r io.Reader) (*ProbeDoc, error) {
	var d ProbeDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("topo: decode probe doc: %w", err)
	}
	if d.System == nil {
		return nil, fmt.Errorf("topo: probe doc has no system section")
	}
	if err := d.System.Validate(); err != nil {
		return nil, fmt.Errorf("topo: probe doc: %w", err)
	}
	return &d, nil
}

// PinStrategy selects how threads are bound to cores for an observed
// execution (Figure 3, Scenario B: "balanced, compact, numa balanced,
// numa compact").
type PinStrategy string

// Pinning strategies.
const (
	PinBalanced     PinStrategy = "balanced"
	PinCompact      PinStrategy = "compact"
	PinNUMABalanced PinStrategy = "numa_balanced"
	PinNUMACompact  PinStrategy = "numa_compact"
)

// PinStrategies lists all supported strategies.
func PinStrategies() []PinStrategy {
	return []PinStrategy{PinBalanced, PinCompact, PinNUMABalanced, PinNUMACompact}
}

// Pin computes the hardware-thread affinity for n software threads using
// the strategy and the probed topology. It returns one hardware thread id
// per software thread.
//
//   - compact: fill SMT siblings core by core, socket by socket.
//   - balanced: round-robin across cores first (one thread per core before
//     using SMT siblings).
//   - numa_compact: like compact but alternating NUMA nodes are exhausted
//     one at a time (identical to compact for per-socket NUMA, but kept
//     distinct for sub-NUMA systems).
//   - numa_balanced: round-robin across NUMA nodes, then across the cores
//     inside each node.
func Pin(s *System, strategy PinStrategy, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: pin: thread count %d must be positive", n)
	}
	total := s.NumThreads()
	if n > total {
		return nil, fmt.Errorf("topo: pin: %d threads requested but system has %d hardware threads", n, total)
	}
	cores := s.AllCores()
	var order []int
	switch strategy {
	case PinCompact, PinNUMACompact:
		for _, c := range cores {
			for _, t := range c.Threads {
				order = append(order, t.ID)
			}
		}
	case PinBalanced:
		maxSMT := 0
		for _, c := range cores {
			if len(c.Threads) > maxSMT {
				maxSMT = len(c.Threads)
			}
		}
		for smt := 0; smt < maxSMT; smt++ {
			for _, c := range cores {
				if smt < len(c.Threads) {
					order = append(order, c.Threads[smt].ID)
				}
			}
		}
	case PinNUMABalanced:
		byNUMA := map[int][]Core{}
		var nodes []int
		for _, c := range cores {
			if _, seen := byNUMA[c.NUMAID]; !seen {
				nodes = append(nodes, c.NUMAID)
			}
			byNUMA[c.NUMAID] = append(byNUMA[c.NUMAID], c)
		}
		// Interleave: node0.core0, node1.core0, node0.core1, ... then SMT.
		maxSMT := 0
		for _, c := range cores {
			if len(c.Threads) > maxSMT {
				maxSMT = len(c.Threads)
			}
		}
		for smt := 0; smt < maxSMT; smt++ {
			maxCores := 0
			for _, n := range nodes {
				if len(byNUMA[n]) > maxCores {
					maxCores = len(byNUMA[n])
				}
			}
			for ci := 0; ci < maxCores; ci++ {
				for _, nd := range nodes {
					cs := byNUMA[nd]
					if ci < len(cs) && smt < len(cs[ci].Threads) {
						order = append(order, cs[ci].Threads[smt].ID)
					}
				}
			}
		}
	default:
		return nil, fmt.Errorf("topo: pin: unknown strategy %q", strategy)
	}
	return order[:n], nil
}
