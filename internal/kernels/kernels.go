// Package kernels provides the benchmark workloads the paper exercises:
// the likwid-bench kernels (sum, stream, triad, peakflops, ddot, daxpy)
// used for the accuracy and overhead experiments (Figs 4, 5, 9), the
// STREAM and HPCG-proxy benchmarks the BenchmarkInterface runs (§III-C),
// and the CARM microbenchmarks (§IV-B1) that probe per-level bandwidth and
// peak FLOPs.
//
// Each kernel is expressed as a machine.WorkloadSpec, so executing one on
// the analytic engine yields both timing and exact ground-truth event
// counts — the role likwid-bench's fixed instruction streams play in the
// paper ("executes a pre-determined, fixed number of instruction streams
// and can report ground truth").
package kernels

import (
	"fmt"
	"sort"

	"pmove/internal/machine"
	"pmove/internal/topo"
)

// LikwidKernels lists the likwid-bench kernels of §V-A in the paper's
// order.
func LikwidKernels() []string {
	return []string{"sum", "stream", "triad", "peakflops", "ddot", "daxpy"}
}

// Likwid builds the named likwid-bench kernel with a per-thread working
// set of wssBytes and enough iterations to stream it `sweeps` times.
// The instruction mixes mirror the real kernels:
//
//	sum:       s += a[i]                 1 load,  0 store, 1 add
//	stream:    c[i] = a[i] + s*b[i]      2 loads, 1 store, 1 fma
//	triad:     a[i] = b[i] + c[i]*d[i]   3 loads, 1 store, 1 fma (AI 1/16)
//	peakflops: register-resident fma chain, AI 2
//	ddot:      s += a[i]*b[i]            2 loads, 0 store, 1 fma (AI 0.125)
//	daxpy:     y[i] = a*x[i] + y[i]      2 loads, 1 store, 1 fma
func Likwid(name string, isa topo.ISA, wssBytes int64, sweeps int) (machine.WorkloadSpec, error) {
	if wssBytes <= 0 {
		return machine.WorkloadSpec{}, fmt.Errorf("kernels: working set must be positive, got %d", wssBytes)
	}
	if sweeps <= 0 {
		return machine.WorkloadSpec{}, fmt.Errorf("kernels: sweeps must be positive, got %d", sweeps)
	}
	elems := wssBytes / 8
	w := float64(isa.VectorWidth())
	itersPerSweep := uint64(float64(elems)/w + 0.5)
	if itersPerSweep == 0 {
		itersPerSweep = 1
	}
	spec := machine.WorkloadSpec{
		Name:            name,
		Iters:           itersPerSweep * uint64(sweeps),
		MemISA:          isa,
		WorkingSetBytes: wssBytes,
		OtherInstr:      2, // loop index + branch
	}
	switch name {
	case "sum":
		spec.Loads, spec.Stores = 1, 0
		spec.FPInstr = map[topo.ISA]float64{isa: 1}
		spec.FMA = false
	case "stream":
		spec.Loads, spec.Stores = 2, 1
		spec.FPInstr = map[topo.ISA]float64{isa: 1}
		spec.FMA = true
	case "triad":
		spec.Loads, spec.Stores = 3, 1
		spec.FPInstr = map[topo.ISA]float64{isa: 1}
		spec.FMA = true
	case "peakflops":
		// Register-resident FMA chain: 8 FMA instructions per load.
		spec.Loads, spec.Stores = 1, 0
		spec.FPInstr = map[topo.ISA]float64{isa: 8}
		spec.FMA = true
	case "ddot":
		spec.Loads, spec.Stores = 2, 0
		spec.FPInstr = map[topo.ISA]float64{isa: 1}
		spec.FMA = true
	case "daxpy":
		spec.Loads, spec.Stores = 2, 1
		spec.FPInstr = map[topo.ISA]float64{isa: 1}
		spec.FMA = true
	default:
		return machine.WorkloadSpec{}, fmt.Errorf("kernels: unknown likwid kernel %q (have %v)", name, LikwidKernels())
	}
	return spec, nil
}

// TheoreticalAI returns the paper's stated arithmetic intensities for the
// Fig 9 kernels (triad 0.625, peakflops 2, ddot 0.125); other kernels
// compute from the spec.
func TheoreticalAI(name string, isa topo.ISA) (float64, error) {
	spec, err := Likwid(name, isa, 1<<20, 1)
	if err != nil {
		return 0, err
	}
	return spec.ArithmeticIntensity(), nil
}

// STREAM builds the four classic STREAM kernels (McCalpin) sized so each
// array is arrayBytes.
func STREAM(isa topo.ISA, arrayBytes int64, sweeps int) ([]machine.WorkloadSpec, error) {
	if arrayBytes <= 0 {
		return nil, fmt.Errorf("kernels: STREAM array size must be positive")
	}
	elems := arrayBytes / 8
	w := float64(isa.VectorWidth())
	iters := uint64(float64(elems)/w+0.5) * uint64(sweeps)
	mk := func(name string, loads, stores, fp float64, fma bool, arrays int64) machine.WorkloadSpec {
		return machine.WorkloadSpec{
			Name: "stream_" + name, Iters: iters,
			Loads: loads, Stores: stores,
			FPInstr:         map[topo.ISA]float64{isa: fp},
			FMA:             fma,
			MemISA:          isa,
			OtherInstr:      2,
			WorkingSetBytes: arrays * arrayBytes,
		}
	}
	return []machine.WorkloadSpec{
		mk("copy", 1, 1, 0, false, 2),
		mk("scale", 1, 1, 1, false, 2),
		mk("add", 2, 1, 1, false, 3),
		mk("triad", 2, 1, 1, true, 3),
	}, nil
}

// HPCGProxy approximates the HPCG benchmark's dominant phase (sparse
// matrix-vector products with multigrid smoothing): low arithmetic
// intensity, DRAM-resident, scalar-dominated with irregular access.
func HPCGProxy(n int) machine.WorkloadSpec {
	rows := uint64(n)
	return machine.WorkloadSpec{
		Name:  "hpcg_proxy",
		Iters: rows * 27, // 27-point stencil rows
		Loads: 2.2, Stores: 0.1,
		FPInstr:         map[topo.ISA]float64{topo.ISAScalar: 1},
		FMA:             true,
		MemISA:          topo.ISAScalar,
		OtherInstr:      3,
		WorkingSetBytes: int64(n) * 27 * 12,
		HitOverride: map[topo.CacheLevel]float64{
			topo.L1: 0.30, topo.L2: 0.15, topo.L3: 0.15, topo.DRAM: 0.40,
		},
	}
}

// CARMBench is one CARM microbenchmark point: a load/store mix targeted at
// one memory level, or a pure-FLOP throughput probe.
type CARMBench struct {
	Name  string
	Level topo.CacheLevel // DRAM for the memory roof; ignored for flops
	ISA   topo.ISA
	Flops bool // true: peak-FLOP probe; false: bandwidth probe
	Spec  machine.WorkloadSpec
}

// CARMSuite generates the microbenchmark suite for a system: one bandwidth
// probe per memory level and one FLOP probe, per requested ISA. Working
// sets are auto-sized from the probed cache sizes (the KB supplies these in
// the real framework: "CARM microbenchmarks are automatically configured
// for a target system, taking into account cache sizes and available
// ISAs").
func CARMSuite(sys *topo.System, isas []topo.ISA) ([]CARMBench, error) {
	if len(isas) == 0 {
		isas = sys.CPU.ISAs
	}
	var out []CARMBench
	for _, isa := range isas {
		if !sys.CPU.HasISA(isa) {
			continue
		}
		for _, lvl := range []topo.CacheLevel{topo.L1, topo.L2, topo.L3, topo.DRAM} {
			wss, err := workingSetFor(sys, lvl)
			if err != nil {
				continue
			}
			elems := wss / 8
			iters := uint64(float64(elems)/float64(isa.VectorWidth())+0.5) * 64
			spec := machine.WorkloadSpec{
				Name:  fmt.Sprintf("carm_bw_%s_%s", lvl, isa),
				Iters: iters,
				Loads: 2, Stores: 1,
				FPInstr:         map[topo.ISA]float64{isa: 0.01}, // negligible compute
				MemISA:          isa,
				OtherInstr:      1,
				WorkingSetBytes: wss,
			}
			out = append(out, CARMBench{
				Name: spec.Name, Level: lvl, ISA: isa, Spec: spec,
			})
		}
		// Peak FLOPs probe: FMA chain from registers/L1.
		spec := machine.WorkloadSpec{
			Name:  fmt.Sprintf("carm_flops_%s", isa),
			Iters: 1 << 22,
			Loads: 0.05, Stores: 0,
			FPInstr:         map[topo.ISA]float64{isa: 2},
			FMA:             true,
			MemISA:          isa,
			OtherInstr:      0.5,
			WorkingSetBytes: 4 << 10,
		}
		out = append(out, CARMBench{Name: spec.Name, ISA: isa, Flops: true, Spec: spec})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("kernels: no CARM benchmarks generated (no supported ISA)")
	}
	return out, nil
}

// workingSetFor sizes a working set to sit firmly inside the target level
// (half its capacity) but beyond the next-inner level.
func workingSetFor(sys *topo.System, lvl topo.CacheLevel) (int64, error) {
	if lvl == topo.DRAM {
		l3, ok := sys.Cache(topo.L3)
		if !ok {
			return 256 << 20, nil
		}
		return 4 * l3.SizeBytes, nil
	}
	c, ok := sys.Cache(lvl)
	if !ok {
		return 0, fmt.Errorf("kernels: system has no %s cache", lvl)
	}
	return c.SizeBytes / 2, nil
}

// RepresentativeThreadCounts returns the subset of thread counts the CARM
// construction benchmarks, "to reduce the extensive benchmarking overhead
// of all possible thread count combinations": 1, 2, then powers of two up
// to the core count, the core count itself, and the full SMT thread count.
func RepresentativeThreadCounts(sys *topo.System) []int {
	cores := sys.NumCores()
	threads := sys.NumThreads()
	set := map[int]bool{1: true}
	for n := 2; n < cores; n *= 2 {
		set[n] = true
	}
	set[cores] = true
	set[threads] = true
	var out []int
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
