package kernels

import (
	"math"
	"testing"

	"pmove/internal/machine"
	"pmove/internal/topo"
)

func TestLikwidKernelMixes(t *testing.T) {
	cases := []struct {
		name          string
		loads, stores float64
		wantAI        float64
	}{
		{"sum", 1, 0, 0.125}, // 1 add / 8 bytes
		{"stream", 2, 1, 2.0 / 24},
		{"triad", 3, 1, 2.0 / 32}, // 0.0625
		{"peakflops", 1, 0, 2.0},
		{"ddot", 2, 0, 0.125},
		{"daxpy", 2, 1, 2.0 / 24},
	}
	for _, c := range cases {
		spec, err := Likwid(c.name, topo.ISAAVX512, 1<<20, 2)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if spec.Loads != c.loads || spec.Stores != c.stores {
			t.Errorf("%s: loads/stores %v/%v, want %v/%v", c.name, spec.Loads, spec.Stores, c.loads, c.stores)
		}
		if ai := spec.ArithmeticIntensity(); math.Abs(ai-c.wantAI) > 1e-9 {
			t.Errorf("%s: AI = %f, want %f", c.name, ai, c.wantAI)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestLikwidErrors(t *testing.T) {
	if _, err := Likwid("fft", topo.ISAScalar, 1<<20, 1); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := Likwid("sum", topo.ISAScalar, 0, 1); err == nil {
		t.Error("zero working set accepted")
	}
	if _, err := Likwid("sum", topo.ISAScalar, 1<<20, 0); err == nil {
		t.Error("zero sweeps accepted")
	}
}

func TestLikwidIterationScaling(t *testing.T) {
	// Wider ISA processes more elements per iteration.
	scalar, _ := Likwid("sum", topo.ISAScalar, 1<<20, 1)
	avx, _ := Likwid("sum", topo.ISAAVX512, 1<<20, 1)
	if scalar.Iters != 8*avx.Iters {
		t.Errorf("iters: scalar %d vs avx512 %d, want 8x", scalar.Iters, avx.Iters)
	}
	one, _ := Likwid("sum", topo.ISAScalar, 1<<20, 1)
	four, _ := Likwid("sum", topo.ISAScalar, 1<<20, 4)
	if four.Iters != 4*one.Iters {
		t.Error("sweeps should scale iterations")
	}
}

func TestTheoreticalAIMatchesPaperKernels(t *testing.T) {
	// Fig 9's stated intensities: ddot 0.125, peakflops 2.
	if ai, _ := TheoreticalAI("ddot", topo.ISAAVX512); math.Abs(ai-0.125) > 1e-9 {
		t.Errorf("ddot AI = %f", ai)
	}
	if ai, _ := TheoreticalAI("peakflops", topo.ISAAVX512); math.Abs(ai-2) > 1e-9 {
		t.Errorf("peakflops AI = %f", ai)
	}
	if _, err := TheoreticalAI("nope", topo.ISAScalar); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestSTREAMKernels(t *testing.T) {
	specs, err := STREAM(topo.ISAAVX2, 32<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("STREAM kernels: %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, want := range []string{"stream_copy", "stream_scale", "stream_add", "stream_triad"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	if _, err := STREAM(topo.ISAScalar, -1, 1); err == nil {
		t.Error("negative array accepted")
	}
}

func TestHPCGProxyShape(t *testing.T) {
	spec := HPCGProxy(1 << 16)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// HPCG is memory-bound: AI well under 0.25.
	if ai := spec.ArithmeticIntensity(); ai > 0.25 {
		t.Errorf("HPCG proxy AI = %f, should be low", ai)
	}
}

func TestCARMSuiteAutoConfigures(t *testing.T) {
	sys := topo.MustPreset(topo.PresetCSL)
	suite, err := CARMSuite(sys, []topo.ISA{topo.ISAAVX512})
	if err != nil {
		t.Fatal(err)
	}
	// 4 bandwidth probes + 1 FLOP probe.
	if len(suite) != 5 {
		t.Fatalf("suite size %d", len(suite))
	}
	l1, _ := sys.Cache(topo.L1)
	l2, _ := sys.Cache(topo.L2)
	for _, b := range suite {
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		switch {
		case b.Flops:
			if b.Spec.FlopsPerIter() <= 0 {
				t.Errorf("%s: FLOP probe without FLOPs", b.Name)
			}
		case b.Level == topo.L1:
			if b.Spec.WorkingSetBytes > l1.SizeBytes {
				t.Errorf("L1 probe working set %d exceeds L1", b.Spec.WorkingSetBytes)
			}
		case b.Level == topo.L2:
			if b.Spec.WorkingSetBytes <= l1.SizeBytes || b.Spec.WorkingSetBytes > l2.SizeBytes {
				t.Errorf("L2 probe working set %d not inside L2", b.Spec.WorkingSetBytes)
			}
		}
	}
}

func TestCARMSuiteSkipsUnsupportedISAs(t *testing.T) {
	sys := topo.MustPreset(topo.PresetZEN3)
	suite, err := CARMSuite(sys, []topo.ISA{topo.ISAAVX512})
	if err == nil {
		t.Fatalf("Zen3 AVX-512 suite should be empty, got %d benches", len(suite))
	}
	// Default: all supported ISAs.
	suite, err = CARMSuite(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 3*5 { // scalar, sse, avx2
		t.Errorf("suite size %d, want 15", len(suite))
	}
}

func TestRepresentativeThreadCounts(t *testing.T) {
	sys := topo.MustPreset(topo.PresetSKX) // 44c/88t
	counts := RepresentativeThreadCounts(sys)
	if counts[0] != 1 {
		t.Error("must include 1 thread")
	}
	hasCores, hasThreads := false, false
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Error("counts not strictly increasing")
		}
		if counts[i] == sys.NumCores() {
			hasCores = true
		}
		if counts[i] == sys.NumThreads() {
			hasThreads = true
		}
	}
	if !hasCores || !hasThreads {
		t.Errorf("counts %v must include the core and thread totals", counts)
	}
	// "a subset of the most representative thread counts", far fewer than
	// every possible count.
	if len(counts) >= sys.NumThreads()/2 {
		t.Errorf("%d counts is not a reduced subset", len(counts))
	}
}

func TestKernelsRunOnEngine(t *testing.T) {
	m, err := machine.New(topo.MustPreset(topo.PresetICL), machine.Config{Seed: 3, Noiseless: true})
	if err != nil {
		t.Fatal(err)
	}
	pin, err := topo.Pin(m.System(), topo.PinBalanced, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range LikwidKernels() {
		spec, err := Likwid(name, topo.ISAAVX2, 1<<20, 8)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := m.Run(spec, pin)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if exec.Duration <= 0 || exec.GFLOPS <= 0 {
			t.Errorf("%s: empty execution", name)
		}
	}
	// peakflops must be the fastest FLOP producer.
	var peak, rest float64
	for _, e := range m.CompletedExecutions() {
		if e.Spec.Name == "peakflops" {
			peak = e.GFLOPS
		} else if e.GFLOPS > rest {
			rest = e.GFLOPS
		}
	}
	if peak <= rest {
		t.Errorf("peakflops %.1f GFLOPS should dominate (best other %.1f)", peak, rest)
	}
}
