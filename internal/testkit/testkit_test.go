package testkit

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"pmove/internal/resilience"
)

// TestScenarioDeterministicReplay is the harness's load-bearing claim:
// the same seeded chaos scenario, run twice as two complete stacks with
// real sockets and real faults, produces byte-identical event logs. A
// divergence here means some nondeterminism (wall time, map order,
// goroutine interleaving) leaked into the semantic outcome.
func TestScenarioDeterministicReplay(t *testing.T) {
	for _, seed := range []uint64{1, 0xdecaf, 0x5eed5eed} {
		a, err := Replay(seed)
		if err != nil {
			t.Fatalf("seed %#x: run A: %v", seed, err)
		}
		b, err := Replay(seed)
		if err != nil {
			t.Fatalf("seed %#x: run B: %v", seed, err)
		}
		if !a.Log.Equal(b.Log) {
			t.Fatalf("seed %#x: replay diverged (%s):\n%s", seed, ReproLine(seed), a.Log.Diff(b.Log))
		}
		if a.Log.Digest() != b.Log.Digest() {
			t.Fatalf("seed %#x: digests differ for equal logs", seed)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("seed %#x: oracle violated (%s): %v", seed, ReproLine(seed), err)
		}
		if len(a.Log.Events) == 0 {
			t.Fatalf("seed %#x: empty event log", seed)
		}
	}
}

// TestScenarioKillRestartSpillsAndReplays pins the graceful-degradation
// arc under a deterministic outage: points spill while the tsdb is dead,
// replay after it returns, and the conservation law holds throughout.
func TestScenarioKillRestartSpillsAndReplays(t *testing.T) {
	sc := Scenario{
		Seed:     7,
		Load:     Load{FreqHz: 25, Ticks: 12, CheckpointEvery: 4},
		Degraded: true,
		Faults: []FaultEvent{
			{AtTick: 4, Kind: FaultKillTSDB},
			{AtTick: 8, Kind: FaultRestartTSDB},
		},
		Tracing: true,
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.SessionErr != nil {
		t.Fatalf("degraded session must survive the outage, got %v", r.SessionErr)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	c := r.Collector
	if c.Spilled == 0 {
		t.Error("outage produced no spilled points")
	}
	if c.Replayed == 0 {
		t.Error("recovery produced no replayed points")
	}
	if c.PendingSpillFields() != 0 {
		t.Errorf("journal still holds %d points after recovery", c.PendingSpillFields())
	}
	if c.Inserted != c.Expected-c.Lost {
		t.Errorf("after full replay want inserted %d (expected-lost), got %d", c.Expected-c.Lost, c.Inserted)
	}
	if r.CheckpointsOK == 0 {
		t.Error("no checkpoint reached the docdb")
	}
	if len(r.Traces) == 0 {
		t.Error("tracing scenario assembled no traces")
	}
}

// TestScenarioJournalCapEvicts pins bounded-journal accounting: a long
// outage against a tiny journal must evict (SpillDropped) rather than
// grow without bound, and the evicted points stay accounted for.
func TestScenarioJournalCapEvicts(t *testing.T) {
	sc := Scenario{
		Seed:       11,
		Load:       Load{FreqHz: 25, Ticks: 10},
		Degraded:   true,
		JournalCap: 2,
		Faults:     []FaultEvent{{AtTick: 2, Kind: FaultKillTSDB}},
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if r.Collector.SpillDropped == 0 {
		t.Error("tiny journal under a long outage evicted nothing")
	}
	if got := r.Collector.PendingSpill(); got > 2 {
		t.Errorf("journal holds %d entries, cap is 2", got)
	}
}

// TestScenarioNonDegradedAborts pins the fail-stop contract: without
// graceful degradation a sink outage aborts the session, and the event
// log records the abort instead of fabricating ticks.
func TestScenarioNonDegradedAborts(t *testing.T) {
	sc := Scenario{
		Seed:   3,
		Load:   Load{FreqHz: 25, Ticks: 10},
		Faults: []FaultEvent{{AtTick: 3, Kind: FaultKillTSDB}},
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.SessionErr == nil {
		t.Fatal("non-degraded session survived a dead sink")
	}
	last := r.Log.Events[len(r.Log.Events)-1]
	if last.Kind != "note" || last.Detail != "session-error" {
		t.Errorf("log does not end with the abort, got %q", last.String())
	}
	// The abort exempts conservation; the other oracles still hold.
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioBreakerLegalObservations runs a breaker-enabled chaos
// scenario (semantic outcomes may shift with wall-clock cooldowns, so no
// log comparison) and asserts every per-tick breaker observation is a
// legal state and the conservation law still holds.
func TestScenarioBreakerLegalObservations(t *testing.T) {
	sc := Scenario{
		Seed:     19,
		Load:     Load{FreqHz: 25, Ticks: 14},
		Degraded: true,
		Breaker:  true,
		Faults: []FaultEvent{
			{AtTick: 3, Kind: FaultKillTSDB},
			{AtTick: 9, Kind: FaultRestartTSDB},
		},
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBreakerStates(r); err != nil {
		t.Fatal(err)
	}
	if err := CheckConservation(r); err != nil {
		t.Fatal(err)
	}
	if len(r.BreakerStates) == 0 {
		t.Fatal("no breaker observations recorded")
	}
}

// TestBreakerMachineLegality drives the breaker itself through thousands
// of seeded protocol-respecting steps (Allow → attempt outcome) and
// validates every single-step transition against the legality oracle.
func TestBreakerMachineLegality(t *testing.T) {
	rng := resilience.NewRNG(42)
	b := resilience.NewBreaker(resilience.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond})
	now := time.Unix(0, 0)
	prev := b.State()
	step := func(what string) {
		cur := b.State()
		if cur != prev && !LegalBreakerTransition(prev, cur) {
			t.Fatalf("illegal transition %s -> %s after %s", prev, cur, what)
		}
		prev = cur
	}
	for i := 0; i < 5000; i++ {
		now = now.Add(time.Duration(rng.Uint64()%15) * time.Millisecond)
		if !b.Allow(now) {
			step("allow=false")
			continue
		}
		step("allow=true")
		if rng.Float64() < 0.4 {
			b.Failure(now)
			step("failure")
		} else {
			b.Success()
			step("success")
		}
	}
	if b.Opens() == 0 {
		t.Error("seeded walk never opened the circuit — oracle untested")
	}
}

// TestLegalBreakerTransitionTable pins the oracle itself.
func TestLegalBreakerTransitionTable(t *testing.T) {
	legal := map[[2]resilience.BreakerState]bool{
		{resilience.BreakerClosed, resilience.BreakerClosed}:     true,
		{resilience.BreakerClosed, resilience.BreakerOpen}:       true,
		{resilience.BreakerClosed, resilience.BreakerHalfOpen}:   false,
		{resilience.BreakerOpen, resilience.BreakerOpen}:         true,
		{resilience.BreakerOpen, resilience.BreakerHalfOpen}:     true,
		{resilience.BreakerOpen, resilience.BreakerClosed}:       false,
		{resilience.BreakerHalfOpen, resilience.BreakerClosed}:   true,
		{resilience.BreakerHalfOpen, resilience.BreakerOpen}:     true,
		{resilience.BreakerHalfOpen, resilience.BreakerHalfOpen}: true,
	}
	for pair, want := range legal {
		if got := LegalBreakerTransition(pair[0], pair[1]); got != want {
			t.Errorf("LegalBreakerTransition(%s, %s) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

// TestFromSeedStable pins that a seed fully determines its scenario —
// the repro line depends on it.
func TestFromSeedStable(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xffffffffffffffff} {
		a, b := FromSeed(seed), FromSeed(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %#x: FromSeed not stable", seed)
		}
		if a.Load.Ticks < 18 || a.Load.Ticks > 29 {
			t.Errorf("seed %#x: ticks %d out of documented range", seed, a.Load.Ticks)
		}
		var kill, restart uint64
		for _, f := range a.Faults {
			switch f.Kind {
			case FaultKillTSDB:
				kill = f.AtTick
			case FaultRestartTSDB:
				restart = f.AtTick
			}
		}
		if restart <= kill {
			t.Errorf("seed %#x: restart tick %d not after kill tick %d", seed, restart, kill)
		}
	}
}

// TestRunRejectsBadScenarios pins setup validation.
func TestRunRejectsBadScenarios(t *testing.T) {
	if _, err := Run(Scenario{Seed: 1, Load: Load{FreqHz: 25}}); err == nil {
		t.Error("zero-tick scenario accepted")
	}
	if _, err := Run(Scenario{Seed: 1, Load: Load{Ticks: 3}}); err == nil {
		t.Error("zero-frequency scenario accepted")
	}
	if _, err := Run(Scenario{Seed: 1, Preset: "not-a-preset", Load: Load{FreqHz: 25, Ticks: 3}}); err == nil {
		t.Error("unknown preset accepted")
	}
	sc := Scenario{Seed: 1, Load: Load{FreqHz: 25, Ticks: 3}, Faults: []FaultEvent{{AtTick: 1, Kind: "no-such-fault"}}}
	if _, err := Run(sc); err == nil {
		t.Error("unknown fault kind accepted")
	}
}

// TestReproLine pins the repro format failing tests print.
func TestReproLine(t *testing.T) {
	if got, want := ReproLine(0xdecaf), "testkit.Replay(0xdecaf)"; got != want {
		t.Errorf("ReproLine = %q, want %q", got, want)
	}
}

// TestEventLogDiff pins the divergence report used in replay failures.
func TestEventLogDiff(t *testing.T) {
	a := &EventLog{}
	a.Append(Event{Tick: 1, Kind: "tick", Expected: 10})
	b := &EventLog{}
	b.Append(Event{Tick: 1, Kind: "tick", Expected: 11})
	if a.Equal(b) {
		t.Fatal("distinct logs reported equal")
	}
	if d := a.Diff(b); d == "" {
		t.Fatal("no diff for distinct logs")
	}
	if d := a.Diff(a); d != "" {
		t.Fatalf("self-diff non-empty: %s", d)
	}
	var errJoin error = errors.Join(nil, nil)
	if errJoin != nil {
		t.Fatal("sanity: errors.Join(nil, nil) != nil")
	}
}
