package testkit

import (
	"testing"
)

// TestQueryEveryTickPartitionChaos drives the aggregate query engine
// through a partition/heal window over the wire: one windowed
// count+mean query per tick through the resilient client. Queries must
// succeed (with data) on every tick before the partition and on every
// tick after the heal; the partitioned window is allowed — expected —
// to fail. Outcomes are read from Result.QueryOutcomes, never the
// event log, which must replay byte-identically with queries enabled.
func TestQueryEveryTickPartitionChaos(t *testing.T) {
	sc := Scenario{
		Seed: 0x5eed9,
		Load: Load{FreqHz: 25, Ticks: 10, CheckpointEvery: 0},
		Faults: []FaultEvent{
			{AtTick: 4, Kind: FaultPartitionTSDB},
			{AtTick: 7, Kind: FaultHealTSDB},
		},
		Degraded:       true,
		JournalCap:     1024,
		QueryEveryTick: true,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionErr != nil {
		t.Fatalf("degraded session aborted: %v", res.SessionErr)
	}
	if got, want := len(res.QueryOutcomes), int(sc.Load.Ticks); got != want {
		t.Fatalf("%d query outcomes, want %d", got, want)
	}
	for _, qo := range res.QueryOutcomes {
		switch {
		case qo.Tick < 4: // healthy prefix: fresh writes every tick
			if !qo.OK {
				t.Fatalf("tick %d: query failed before any fault", qo.Tick)
			}
			if qo.Rows == 0 {
				t.Fatalf("tick %d: query returned no windows despite %d ticks of writes", qo.Tick, qo.Tick)
			}
		case qo.Tick >= 7: // healed suffix: the wire works again
			if !qo.OK {
				t.Fatalf("tick %d: query failed after heal", qo.Tick)
			}
			if qo.Rows == 0 {
				t.Fatalf("tick %d: query returned no windows after heal", qo.Tick)
			}
		default:
			// Partitioned window (ticks 4..6): the black hole eats the
			// request; OK here would mean the partition never bit, but
			// retry timing is wall-clock so we don't assert failure.
		}
	}

	// The event log is still byte-identical on replay — per-tick queries
	// must not leak wall-clock-dependent entries into it.
	res2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := res.Log.Digest(), res2.Log.Digest(); d1 != d2 {
		t.Fatalf("event log not deterministic with QueryEveryTick: %#x vs %#x", d1, d2)
	}
}
