// Package testkit is the deterministic simulation harness for the whole
// P-MoVE wire stack: a single Scenario descriptor stands up an in-process
// daemon (probe → KB → dashboards), a telemetry session, resilient
// tsdb/docdb clients, a fault proxy and real tsdb/docdb servers, then
// drives the session tick by tick while injecting a seeded fault
// schedule. Every semantic outcome (inserted/lost/spilled/replayed
// counts, checkpoint results, fault applications) lands in an EventLog
// that replays byte-identically from the same seed — a failing chaos run
// reduces to the one-line repro testkit.Replay(seed) instead of a flake.
//
// Invariant oracles (oracles.go) assert the conservation laws the paper's
// quantitative claims rest on: session point conservation, no duplicate
// inserts after reconnect-with-resync, breaker state machine legality,
// and trace attribution summing to end-to-end.
package testkit

import (
	"fmt"

	"pmove/internal/machine"
	"pmove/internal/resilience"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

// FaultKind names one injectable fault. Kill/Restart act on the backend
// servers (connection refused — instantaneous, fully deterministic);
// Partition/Heal act on the fault proxy (black hole — deterministic
// outcome, real-time cost of one read timeout per attempt); DropConns
// resets every live proxied connection once.
type FaultKind string

// Injectable faults. All are applied at tick boundaries, never mid-op,
// so an acknowledged write is never in flight when the fault lands —
// the precondition for the no-duplicate-insert oracle.
const (
	FaultKillTSDB       FaultKind = "kill-tsdb"
	FaultRestartTSDB    FaultKind = "restart-tsdb"
	FaultPartitionTSDB  FaultKind = "partition-tsdb"
	FaultHealTSDB       FaultKind = "heal-tsdb"
	FaultDropTSDBConns  FaultKind = "drop-tsdb-conns"
	FaultKillDocdb      FaultKind = "kill-docdb"
	FaultRestartDocdb   FaultKind = "restart-docdb"
	FaultDropDocdbConns FaultKind = "drop-docdb-conns"

	// WAL faults (Durable scenarios only, and only while the target
	// server is down — between its kill and restart): they append the
	// residue a crash mid-append leaves on disk, which the subsequent
	// restart must truncate away. Torn writes a frame header promising
	// more bytes than follow; corrupt-tail writes a complete final frame
	// whose checksum does not match (indistinguishable from a partially
	// flushed sector, so recovery treats it as torn).
	FaultTornTSDBWAL        FaultKind = "torn-tsdb-wal"
	FaultTornDocdbWAL       FaultKind = "torn-docdb-wal"
	FaultCorruptTailTSDBWAL FaultKind = "corrupt-tail-tsdb-wal"
)

// FaultEvent schedules one fault before the given 1-based tick runs.
type FaultEvent struct {
	AtTick uint64
	Kind   FaultKind
}

// Load describes the telemetry pressure a scenario applies.
type Load struct {
	// Metrics are the software metrics sampled each tick; empty selects
	// the harness default (cpu idle + user).
	Metrics []string
	// FreqHz is the sampling frequency driving the virtual clock.
	FreqHz float64
	// Ticks is the total number of sampling ticks.
	Ticks uint64
	// CheckpointEvery inserts a session checkpoint document through the
	// docdb wire every that many ticks; 0 disables the docdb leg.
	CheckpointEvery uint64
}

// Scenario is the single descriptor a simulation runs from. Two runs of
// the same Scenario produce identical event logs: the machine, the
// pipeline jitter, the fault schedule and the proxy all draw from RNG
// streams derived from Seed, and wall-clock time never enters the log.
type Scenario struct {
	// Seed derives every RNG stream in the stack.
	Seed uint64
	// Preset is the topo preset of the simulated target ("" = icl).
	Preset string
	// Load is the telemetry pressure.
	Load Load
	// Pipeline overrides the host-side pipeline model when non-nil;
	// the default keeps the paper-calibrated Table III costs (virtual
	// time, so free to simulate) with Degraded spill/replay enabled.
	Pipeline *telemetry.PipelineConfig
	// Degraded toggles graceful degradation (spill journal + replay).
	// Without it a sink outage aborts the session, which is itself a
	// scenario worth asserting.
	Degraded bool
	// JournalCap bounds the spill journal (0 = telemetry default).
	JournalCap int
	// Faults is the seeded fault schedule.
	Faults []FaultEvent
	// Tracing attaches introspectors end to end so the attribution
	// oracle can check per-hop latency conservation. Spans carry wall
	// time and stay out of the event log.
	Tracing bool
	// Expose stands the live observability plane up next to the harness:
	// an expose.Server over the daemon-side registry with breaker- and
	// backlog-aware readiness, polled after every tick into
	// Result.ReadyStates. The poll is an HTTP GET over a real socket —
	// wall-clock, so expose scenarios assert state transitions (ready →
	// not-ready → ready), never tick-exact timing.
	Expose bool
	// Breaker enables the client circuit breakers. Breaker cooldowns are
	// wall-clock, so recovery timing can shift semantic outcomes near
	// fault boundaries; the deterministic-replay scenarios keep it off
	// and the breaker machine is verified by its own oracle instead.
	Breaker bool
	// Durable backs the tsdb/docdb servers with WAL+snapshot data
	// directories so kill/restart faults exercise crash recovery: a kill
	// crashes the database (discarding whatever the fsync policy had not
	// yet made stable) and a restart reopens it from the same directory.
	// Filesystem paths never enter the event log, so determinism holds.
	Durable bool
	// Fsync is the durability policy for Durable scenarios: "always",
	// "interval" or "never" ("" = always). With "always" the durable
	// recovery oracle asserts zero acknowledged loss across kills.
	Fsync string
	// DataDir roots the server data directories; "" uses a fresh temp
	// directory removed when the run ends. Set it to inspect the files a
	// scenario leaves behind or to chain runs over one directory.
	DataDir string
	// Unbatched forces the pre-batching shipment path (one WritePoint
	// per sample instead of one WRITEB batch per tick). Both paths must
	// uphold the same conservation laws — equivalence scenarios run the
	// same seed with and without it.
	Unbatched bool
	// QueryEveryTick issues one wire-level aggregate query per completed
	// tick through the resilient tsdb client (count+mean over the first
	// session measurement), exercising the query engine under the same
	// fault schedule the writes face. Outcomes land in
	// Result.QueryOutcomes ONLY, never the event log: whether a query
	// succeeds during a partition window depends on wall-clock read
	// timeouts, and the log must replay byte-identically.
	QueryEveryTick bool
}

// defaultMetrics is the harness load when Scenario.Load.Metrics is empty.
func defaultMetrics() []string {
	return []string{machine.MetricCPUIdle, machine.MetricCPUUser}
}

// preset resolves the scenario's topology preset.
func (sc Scenario) preset() string {
	if sc.Preset == "" {
		return topo.PresetICL
	}
	return sc.Preset
}

// pipeline resolves the pipeline model: explicit override, else the
// paper-calibrated defaults reseeded from the scenario.
func (sc Scenario) pipeline() telemetry.PipelineConfig {
	if sc.Pipeline != nil {
		return *sc.Pipeline
	}
	cfg := telemetry.DefaultPipeline()
	cfg.Seed = sc.Seed
	cfg.Degraded = sc.Degraded
	cfg.JournalCap = sc.JournalCap
	cfg.Unbatched = sc.Unbatched
	return cfg
}

// FromSeed derives a complete chaos scenario from one seed: load,
// sampling frequency, a kill/restart outage window on each wire and a
// connection drop, all drawn from the seeded RNG. The same seed always
// yields the same scenario — the printed repro is the whole bug report.
func FromSeed(seed uint64) Scenario {
	rng := resilience.NewRNG(seed)
	ticks := 18 + rng.Uint64()%12 // 18..29
	freqs := []float64{10, 25, 50}
	killAt := 3 + rng.Uint64()%4               // 3..6
	restartAt := killAt + 3 + rng.Uint64()%4   // kill+3..kill+6
	dKillAt := 2 + rng.Uint64()%5              // 2..6
	dRestartAt := dKillAt + 2 + rng.Uint64()%4 // dkill+2..dkill+5
	dropAt := restartAt + 2 + rng.Uint64()%3
	sc := Scenario{
		Seed: seed,
		Load: Load{
			FreqHz:          freqs[rng.Uint64()%uint64(len(freqs))],
			Ticks:           ticks,
			CheckpointEvery: 3,
		},
		Degraded:   true,
		JournalCap: 256,
		Faults: []FaultEvent{
			{AtTick: killAt, Kind: FaultKillTSDB},
			{AtTick: restartAt, Kind: FaultRestartTSDB},
			{AtTick: dKillAt, Kind: FaultKillDocdb},
			{AtTick: dRestartAt, Kind: FaultRestartDocdb},
			{AtTick: dropAt, Kind: FaultDropTSDBConns},
		},
		Tracing: true,
	}
	return sc
}

// DurableFromSeed derives the crash-recovery chaos scenario from one
// seed: the FromSeed schedule re-rooted onto WAL-backed servers with
// fsync=always, plus torn-WAL injections while each server is down —
// the residue of dying mid-append — which the restarts must truncate
// away. Under fsync=always the durable recovery oracle then demands
// zero acknowledged loss and zero duplication across the kills.
func DurableFromSeed(seed uint64) Scenario {
	sc := FromSeed(seed)
	sc.Durable = true
	sc.Fsync = "always"
	var kill, dKill uint64
	for _, f := range sc.Faults {
		switch f.Kind {
		case FaultKillTSDB:
			kill = f.AtTick
		case FaultKillDocdb:
			dKill = f.AtTick
		}
	}
	// FromSeed guarantees restart >= kill+3 and docdb restart >= dKill+2,
	// so kill+1 / dKill+1 always land inside the down windows. One bad
	// tail per window: recovery truncates exactly one torn/corrupt tail;
	// stacking two would bury the first mid-file, which is (correctly) a
	// hard corruption error, not a recoverable crash residue. The seed
	// picks which tail flavour the tsdb gets.
	tsdbFault := FaultTornTSDBWAL
	if seed%2 == 1 {
		tsdbFault = FaultCorruptTailTSDBWAL
	}
	sc.Faults = append(sc.Faults,
		FaultEvent{AtTick: kill + 1, Kind: tsdbFault},
		FaultEvent{AtTick: dKill + 1, Kind: FaultTornDocdbWAL},
	)
	return sc
}

// Replay re-runs the scenario derived from seed — the one-line repro a
// failing chaos test prints. The returned result carries the event log
// and every oracle input.
func Replay(seed uint64) (*Result, error) {
	return Run(FromSeed(seed))
}

// ReplayDurable is Replay over the durable scenario derivation.
func ReplayDurable(seed uint64) (*Result, error) {
	return Run(DurableFromSeed(seed))
}

// ReproLine renders the repro invocation a failure report should carry.
func ReproLine(seed uint64) string {
	return fmt.Sprintf("testkit.Replay(0x%x)", seed)
}
