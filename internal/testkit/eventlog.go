package testkit

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Event is one semantic observation of a simulation: a completed tick
// with the session's cumulative accounting, a fault application, or a
// checkpoint write outcome. Events carry only schedule-derived state —
// never wall-clock time, span durations or retry counts — so two runs of
// the same scenario produce identical logs.
type Event struct {
	Tick   uint64
	Kind   string // "tick" | "fault" | "checkpoint" | "note"
	Detail string // fault kind, checkpoint outcome, free text

	// Cumulative collector accounting at the end of the event's tick
	// (data points / fields).
	Expected     uint64
	Inserted     uint64
	Zeros        uint64
	Lost         uint64
	Spilled      uint64
	Replayed     uint64
	SpillDropped uint64
	Pending      uint64
	Degraded     bool
}

// String renders the event as one stable log line.
func (e Event) String() string {
	switch e.Kind {
	case "tick":
		return fmt.Sprintf("tick %03d exp=%d ins=%d zero=%d lost=%d spill=%d replay=%d evict=%d pend=%d degraded=%t",
			e.Tick, e.Expected, e.Inserted, e.Zeros, e.Lost, e.Spilled, e.Replayed, e.SpillDropped, e.Pending, e.Degraded)
	default:
		return fmt.Sprintf("tick %03d %s %s", e.Tick, e.Kind, e.Detail)
	}
}

// EventLog is the ordered record of a simulation.
type EventLog struct {
	Events []Event
}

// Append records one event.
func (l *EventLog) Append(e Event) { l.Events = append(l.Events, e) }

// Lines renders every event.
func (l *EventLog) Lines() []string {
	out := make([]string, len(l.Events))
	for i, e := range l.Events {
		out[i] = e.String()
	}
	return out
}

// String renders the whole log, one event per line.
func (l *EventLog) String() string { return strings.Join(l.Lines(), "\n") }

// Digest hashes the rendered log (FNV-1a): two runs of the same scenario
// must produce equal digests, and a digest mismatch pinpoints a
// nondeterminism bug in the stack itself.
func (l *EventLog) Digest() uint64 {
	h := fnv.New64a()
	for _, line := range l.Lines() {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Equal reports whether two logs are identical.
func (l *EventLog) Equal(other *EventLog) bool {
	if len(l.Events) != len(other.Events) {
		return false
	}
	for i := range l.Events {
		if l.Events[i] != other.Events[i] {
			return false
		}
	}
	return true
}

// Diff returns a description of the first divergence between two logs,
// or "" when they are identical — the debugging handle for replay
// mismatches.
func (l *EventLog) Diff(other *EventLog) string {
	a, b := l.Lines(), other.Lines()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d differs:\n  run A: %s\n  run B: %s", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("log lengths differ: %d vs %d events", len(a), len(b))
	}
	return ""
}
