package testkit

import (
	"testing"
)

// TestDurableKillRestartRecovery is the acceptance scenario: WAL-backed
// servers with fsync=always, the tsdb killed mid-load (crashing the
// database, not just the listener) and restarted from its data
// directory. The session spills through the outage, resyncs after the
// restart, and the durable recovery oracle holds: every acknowledged
// point is present server-side exactly once.
func TestDurableKillRestartRecovery(t *testing.T) {
	sc := Scenario{
		Seed:     0xD0,
		Load:     Load{FreqHz: 25, Ticks: 16, CheckpointEvery: 4},
		Degraded: true,
		Durable:  true,
		Fsync:    "always",
		Faults: []FaultEvent{
			{AtTick: 5, Kind: FaultKillTSDB},
			{AtTick: 9, Kind: FaultRestartTSDB},
		},
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.SessionErr != nil {
		t.Fatalf("degraded session must survive the crash, got %v", r.SessionErr)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	c := r.Collector
	if c.Spilled == 0 {
		t.Error("crash window produced no spilled points")
	}
	if c.Replayed == 0 {
		t.Error("recovered server absorbed no replayed points")
	}
}

// TestDurableScenarioDeterministic: durability must not leak paths,
// file-system timing or recovery artifacts into the event log — two
// complete durable runs (separate temp dirs, real crashes and
// recoveries) replay byte-identically, and the oracles hold.
func TestDurableScenarioDeterministic(t *testing.T) {
	for _, seed := range []uint64{2, 0xBEEF} { // one torn, one corrupt-tail flavour
		a, err := ReplayDurable(seed)
		if err != nil {
			t.Fatalf("seed %#x: run A: %v", seed, err)
		}
		b, err := ReplayDurable(seed)
		if err != nil {
			t.Fatalf("seed %#x: run B: %v", seed, err)
		}
		if !a.Log.Equal(b.Log) {
			t.Fatalf("seed %#x: durable replay diverged:\n%s", seed, a.Log.Diff(b.Log))
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("seed %#x: oracle violated: %v", seed, err)
		}
	}
}

// TestDurableTornWALFault pins the torn-write injection path in
// isolation: a torn frame is appended to the dead tsdb's WAL, and the
// restart recovers the clean prefix — the run completes and the
// fsync=always oracle still balances.
func TestDurableTornWALFault(t *testing.T) {
	sc := Scenario{
		Seed:     21,
		Load:     Load{FreqHz: 25, Ticks: 14},
		Degraded: true,
		Durable:  true,
		Faults: []FaultEvent{
			{AtTick: 4, Kind: FaultKillTSDB},
			{AtTick: 5, Kind: FaultTornTSDBWAL},
			{AtTick: 8, Kind: FaultRestartTSDB},
		},
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCorruptTailWALFault: same arc with a complete final frame
// whose checksum is wrong — indistinguishable from a partially flushed
// sector, so recovery must also truncate it rather than error.
func TestDurableCorruptTailWALFault(t *testing.T) {
	sc := Scenario{
		Seed:     22,
		Load:     Load{FreqHz: 25, Ticks: 14, CheckpointEvery: 3},
		Degraded: true,
		Durable:  true,
		Faults: []FaultEvent{
			{AtTick: 4, Kind: FaultKillTSDB},
			{AtTick: 6, Kind: FaultCorruptTailTSDBWAL},
			{AtTick: 8, Kind: FaultRestartTSDB},
			{AtTick: 5, Kind: FaultKillDocdb},
			{AtTick: 6, Kind: FaultTornDocdbWAL},
			{AtTick: 9, Kind: FaultRestartDocdb},
		},
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if r.CheckpointsOK == 0 {
		t.Error("no checkpoint survived to the recovered docdb")
	}
}

// TestWALFaultRequiresDeadServer pins the injection contract: WAL faults
// against a live server (or a non-durable scenario) are scenario bugs,
// reported as setup errors rather than silently corrupting a live log.
func TestWALFaultRequiresDeadServer(t *testing.T) {
	live := Scenario{
		Seed:    1,
		Load:    Load{FreqHz: 25, Ticks: 4},
		Durable: true,
		Faults:  []FaultEvent{{AtTick: 2, Kind: FaultTornTSDBWAL}},
	}
	if _, err := Run(live); err == nil {
		t.Error("torn-wal against a live server accepted")
	}
	volatile := Scenario{
		Seed: 1,
		Load: Load{FreqHz: 25, Ticks: 4},
		Faults: []FaultEvent{
			{AtTick: 1, Kind: FaultKillTSDB},
			{AtTick: 2, Kind: FaultTornTSDBWAL},
		},
		Degraded: true,
	}
	if _, err := Run(volatile); err == nil {
		t.Error("torn-wal in a non-durable scenario accepted")
	}
}

// TestDurableBadFsyncRejected pins policy validation at setup.
func TestDurableBadFsyncRejected(t *testing.T) {
	sc := Scenario{Seed: 1, Load: Load{FreqHz: 25, Ticks: 4}, Durable: true, Fsync: "sometimes"}
	if _, err := Run(sc); err == nil {
		t.Error("unknown fsync policy accepted")
	}
}
