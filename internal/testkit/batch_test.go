package testkit

import "testing"

// TestScenarioBatchedUnbatchedOracles runs the same seeded chaos
// scenario through the batched (default) and forced-unbatched shipment
// paths: both must uphold every oracle — conservation, no duplicate
// inserts after retry, shard-stats accounting — and both must replay
// deterministically. The batched path additionally exercises the
// WRITEB frame + idempotency-token dedup under kill/restart faults.
func TestScenarioBatchedUnbatchedOracles(t *testing.T) {
	for _, seed := range []uint64{3, 0xbeef} {
		for _, unbatched := range []bool{false, true} {
			sc := FromSeed(seed)
			sc.Unbatched = unbatched
			r, err := Run(sc)
			if err != nil {
				t.Fatalf("seed %#x unbatched=%v: %v", seed, unbatched, err)
			}
			if err := r.Verify(); err != nil {
				t.Fatalf("seed %#x unbatched=%v: oracle violated (%s): %v",
					seed, unbatched, ReproLine(seed), err)
			}
			// Determinism within each mode.
			again, err := Run(sc)
			if err != nil {
				t.Fatalf("seed %#x unbatched=%v rerun: %v", seed, unbatched, err)
			}
			if !r.Log.Equal(again.Log) {
				t.Fatalf("seed %#x unbatched=%v: replay diverged:\n%s",
					seed, unbatched, r.Log.Diff(again.Log))
			}
		}
	}
}

// TestDurableScenarioBatchedRecovery runs the crash-recovery chaos
// scenario with batched shipment: group-committed batches must recover
// whole-or-none across kills, so with fsync=always the durable
// recovery oracle (server holds exactly the acknowledged points) and
// the dedup oracle both hold.
func TestDurableScenarioBatchedRecovery(t *testing.T) {
	for _, seed := range []uint64{11, 0xfee1} {
		sc := DurableFromSeed(seed)
		sc.Fsync = "always"
		r, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("seed %#x: oracle violated (%s): %v", seed, ReproLine(seed), err)
		}
	}
}
