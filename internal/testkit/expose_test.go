package testkit

import (
	"testing"

	"pmove/internal/introspect/logbuf"
)

// TestReadyzFlipsUnderPartition drives the observability plane through
// an injected partition: /readyz is ready before the fault, flips to
// not-ready while writes spill behind the black hole, and recovers
// after heal once the backlog replays and the breaker closes.
func TestReadyzFlipsUnderPartition(t *testing.T) {
	sc := Scenario{
		Seed: 0xc0ffee,
		Load: Load{FreqHz: 25, Ticks: 8, CheckpointEvery: 0},
		Faults: []FaultEvent{
			{AtTick: 3, Kind: FaultPartitionTSDB},
			{AtTick: 6, Kind: FaultHealTSDB},
		},
		Degraded:   true,
		JournalCap: 1024,
		Breaker:    true,
		Expose:     true,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionErr != nil {
		t.Fatalf("degraded session aborted: %v", res.SessionErr)
	}
	if res.ExposeAddr == "" {
		t.Fatal("expose plane did not bind")
	}
	if got, want := len(res.ReadyStates), int(sc.Load.Ticks); got != want {
		t.Fatalf("%d ready polls, want %d", got, want)
	}
	// Before the partition the stack is healthy end to end.
	for tick := 0; tick < 2; tick++ {
		if !res.ReadyStates[tick] {
			t.Fatalf("tick %d: not ready before any fault", tick+1)
		}
	}
	// The first partitioned tick spills its batch, so the backlog check
	// flips readiness deterministically even before the breaker opens.
	for tick := 2; tick < 5; tick++ {
		if res.ReadyStates[tick] {
			t.Fatalf("tick %d: ready while partitioned with spilled backlog", tick+1)
		}
	}
	if !res.RecoveredReady {
		t.Fatalf("plane never recovered readiness after heal; states=%v pending=%d breaker=%v",
			res.ReadyStates, res.Collector.PendingSpill(), res.BreakerStates)
	}
	// The degradation narrative landed in the structured log ring: the
	// pipeline announced entering degraded mode and the transport logged
	// its failures, each tagged with its component.
	if res.Logs == nil {
		t.Fatal("expose scenario returned no log ring")
	}
	if n := len(res.Logs.Filter(logbuf.Query{Component: "telemetry", MinLevel: logbuf.Warn})); n == 0 {
		t.Fatal("no telemetry degradation records in the ring")
	}
	if n := len(res.Logs.Filter(logbuf.Query{Component: "transport.tsdb"})); n == 0 {
		t.Fatal("no tsdb transport records in the ring")
	}
}
