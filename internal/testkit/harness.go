package testkit

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"pmove/internal/core"
	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/introspect/expose"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/introspect/traceexport"
	"pmove/internal/kb"
	"pmove/internal/machine"
	"pmove/internal/resilience"
	"pmove/internal/storage"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// CheckpointCollection is the docdb collection the harness writes its
// per-tick session checkpoints into.
const CheckpointCollection = "testkit_checkpoints"

// Result is everything a simulation produced: the deterministic event
// log, the live collector with its cumulative accounting, both
// server-side databases, the per-tick breaker observations and (when
// tracing) the assembled distributed traces. Verify runs every
// applicable invariant oracle over it.
type Result struct {
	Scenario Scenario
	Log      *EventLog

	Collector    *telemetry.Collector
	ServerDB     *tsdb.DB  // the tsdb behind the fault proxy
	DocdbDB      *docdb.DB // the docdb behind the fault proxy
	Measurements []string  // measurements the session wrote
	KB           *kb.KB

	// BreakerStates holds one tsdb-transport breaker snapshot per tick.
	// Wall-clock cooldowns make the timing of transitions nondeterministic,
	// so these stay out of the event log and are only checked for machine
	// legality.
	BreakerStates []resilience.BreakerState

	CheckpointsOK     int
	CheckpointsFailed int

	// Traces are the assembled end-to-end traces (Tracing scenarios).
	Traces []*traceexport.Trace

	// Expose-scenario outputs: the plane's bound address (the server is
	// torn down when the run ends — the address documents, it does not
	// serve), one /readyz verdict per completed tick, whether a bounded
	// post-run replay loop brought readiness back, and the structured log
	// ring the stack wrote into.
	ExposeAddr     string
	ReadyStates    []bool
	RecoveredReady bool
	Logs           *logbuf.Logger

	// QueryOutcomes holds one entry per completed tick for
	// QueryEveryTick scenarios. Whether a query succeeds near a
	// partition boundary depends on wall-clock read timeouts, so
	// outcomes live here and never in the event log — replay stays
	// byte-identical with queries on or off.
	QueryOutcomes []QueryOutcome

	// SessionErr records a session abort (expected for non-degraded
	// scenarios whose sink dies); the log keeps the events up to it.
	SessionErr error
}

// QueryOutcome records one per-tick aggregate query through the
// resilient client: whether the wire round trip succeeded and how many
// windows the result carried.
type QueryOutcome struct {
	Tick uint64
	OK   bool
	Rows int
}

// harness is the live stack of one simulation run.
type harness struct {
	sc  Scenario
	res *Result

	daemon  *core.Daemon
	target  *core.Target
	session *telemetry.Session
	col     *telemetry.Collector

	tsdbDB      *tsdb.DB
	tsdbSrv     *tsdb.Server
	tsdbAddr    string // backend address, stable across restarts
	tsdbProxy   *resilience.Proxy
	tsdbClient  *tsdb.Client
	docdbDB     *docdb.DB
	docdbSrv    *docdb.Server
	docdbAddr   string
	docdbProxy  *resilience.Proxy
	docdbClient *docdb.Client

	// Durable-scenario state: the per-server data directories, their WAL
	// paths (captured at open — a crashed DB no longer knows its path),
	// the parsed fsync policy, and whether the harness owns (and so
	// removes) the root directory.
	fsync        storage.FsyncPolicy
	dataDir      string
	ownDataDir   bool
	tsdbWALPath  string
	docdbWALPath string
	// tsdbDown/docdbDown track the kill/restart windows so WAL faults
	// can insist the target is actually down.
	tsdbDown  bool
	docdbDown bool

	// introspectors per process (Tracing scenarios; nil otherwise — every
	// instrumented path is nil-safe).
	daemonIn   *introspect.Introspector
	tsdbSrvIn  *introspect.Introspector
	docdbSrvIn *introspect.Introspector

	// Expose-scenario state: the structured log ring shared by the whole
	// stack and the observability-plane HTTP server over the daemon-side
	// registry.
	logs      *logbuf.Logger
	exposeSrv *expose.Server
}

// policy is the fail-fast resilience policy the harness clients use:
// refused connections and dead wires resolve in microseconds, a
// black-holed read resolves at the read deadline, and the op outcome for
// a given stack state is the same on every run.
func (sc Scenario) policy() resilience.Policy {
	pol := resilience.Policy{
		DialTimeout:  2 * time.Second,
		ReadTimeout:  150 * time.Millisecond,
		WriteTimeout: 150 * time.Millisecond,
		MaxRetries:   2,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Seed:         sc.Seed,
	}
	if sc.Breaker {
		pol.Breaker = resilience.BreakerConfig{Threshold: 4, Cooldown: 50 * time.Millisecond}
	}
	return pol
}

// Run executes one simulation from its descriptor. Setup failures (ports,
// bad presets) return an error; in-scenario failures (outages, aborted
// sessions) are part of the result.
func Run(sc Scenario) (*Result, error) {
	h := &harness{sc: sc, res: &Result{Scenario: sc, Log: &EventLog{}}}
	defer h.close()
	if err := h.setup(); err != nil {
		return nil, err
	}
	if err := h.drive(); err != nil {
		return nil, err
	}
	h.finish()
	return h.res, nil
}

// setup stands the stack up: servers, fault proxies, resilient clients,
// daemon with a probed target, and the telemetry session.
func (h *harness) setup() error {
	sc := h.sc
	if sc.Load.Ticks == 0 {
		return fmt.Errorf("testkit: scenario has no ticks")
	}
	if sc.Load.FreqHz <= 0 {
		return fmt.Errorf("testkit: scenario needs a positive FreqHz")
	}
	if sc.Tracing {
		h.daemonIn = introspect.New(introspect.WithProcess("daemon"), introspect.WithSpanCapacity(1<<15))
		h.tsdbSrvIn = introspect.New(introspect.WithProcess("tsdb"), introspect.WithSpanCapacity(1<<15))
		h.docdbSrvIn = introspect.New(introspect.WithProcess("docdb"), introspect.WithSpanCapacity(1<<15))
	}
	if sc.Expose {
		// The plane exposes the daemon-side registry; bring it up even when
		// the scenario does not trace, so readiness probes have gauges.
		if h.daemonIn == nil {
			h.daemonIn = introspect.New(introspect.WithProcess("daemon"))
		}
		h.logs = logbuf.New(0)
		h.res.Logs = h.logs
	}

	// Backends and their fault proxies. Clients dial the proxies, so every
	// byte of both wire protocols crosses the fault-injection layer.
	if sc.Durable {
		pol, err := storage.ParseFsyncPolicy(sc.Fsync)
		if err != nil {
			return fmt.Errorf("testkit: %w", err)
		}
		h.fsync = pol
		h.dataDir = sc.DataDir
		if h.dataDir == "" {
			dir, err := os.MkdirTemp("", "testkit-durable-*")
			if err != nil {
				return err
			}
			h.dataDir = dir
			h.ownDataDir = true
		}
		db, err := tsdb.Open(filepath.Join(h.dataDir, "tsdb"), pol)
		if err != nil {
			return err
		}
		h.tsdbDB = db
		h.tsdbWALPath = db.WALPath()
		ddb, err := docdb.Open(filepath.Join(h.dataDir, "docdb"), pol)
		if err != nil {
			return err
		}
		h.docdbDB = ddb
		h.docdbWALPath = ddb.WALPath()
	} else {
		h.tsdbDB = tsdb.New()
		h.docdbDB = docdb.New()
	}
	h.tsdbSrv = tsdb.NewServer(h.tsdbDB)
	h.tsdbSrv.SetTracing(h.tsdbSrvIn)
	addr, err := h.tsdbSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	h.tsdbAddr = addr
	h.tsdbProxy = resilience.NewProxy(addr, resilience.Faults{}, sc.Seed)
	tsdbProxyAddr, err := h.tsdbProxy.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}

	h.docdbSrv = docdb.NewServer(h.docdbDB)
	h.docdbSrv.SetTracing(h.docdbSrvIn)
	addr, err = h.docdbSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	h.docdbAddr = addr
	h.docdbProxy = resilience.NewProxy(addr, resilience.Faults{}, sc.Seed+1)
	docdbProxyAddr, err := h.docdbProxy.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}

	h.tsdbClient, err = tsdb.DialPolicy(tsdbProxyAddr, sc.policy())
	if err != nil {
		return err
	}
	h.tsdbClient.Transport().SetIntrospection(h.daemonIn, "tsdb")
	h.tsdbClient.Transport().SetLogger(h.logs.With("transport.tsdb"))
	h.docdbClient, err = docdb.DialPolicy(docdbProxyAddr, sc.policy())
	if err != nil {
		return err
	}
	h.docdbClient.Transport().SetIntrospection(h.daemonIn, "docdb")
	h.docdbClient.Transport().SetLogger(h.logs.With("transport.docdb"))
	h.tsdbSrv.SetLogger(h.logs.With("tsdb.server"), 100*time.Millisecond)
	h.docdbSrv.SetLogger(h.logs.With("docdb.server"), 100*time.Millisecond)

	// Daemon with one attached, probed target. The KB, dashboards and
	// observation entries flow through the same code paths production
	// uses; only the session loop is driven tick by tick from here.
	h.daemon, err = core.NewWith(core.WithInflux(tsdbProxyAddr), core.WithMongo(docdbProxyAddr))
	if err != nil {
		return err
	}
	sys, err := topo.NewPreset(sc.preset())
	if err != nil {
		return err
	}
	h.target, err = h.daemon.AttachTarget(sys, machine.Config{Seed: sc.Seed}, sc.pipeline())
	if err != nil {
		return err
	}
	k, err := h.daemon.ProbeContext(context.Background(), sys.Hostname)
	if err != nil {
		return err
	}
	h.res.KB = k
	dashes, err := h.daemon.Gen.KindDashboards(k)
	if err != nil {
		return err
	}
	h.note(0, fmt.Sprintf("setup preset=%s dashboards=%d kb-nodes=%d", sc.preset(), len(dashes), k.Len()))

	metrics := sc.Load.Metrics
	if len(metrics) == 0 {
		metrics = defaultMetrics()
	}
	for _, m := range metrics {
		h.res.Measurements = append(h.res.Measurements, tsdb.MeasurementName(m))
	}
	h.col = telemetry.NewCollector(nil, sc.pipeline())
	h.col.Sink = h.tsdbClient
	h.col.Self = h.daemonIn
	h.col.Log = h.logs.With("telemetry")
	h.res.Collector = h.col
	h.session, err = telemetry.NewSession(h.target.PMCD, h.col, telemetry.SessionConfig{
		Metrics: metrics, FreqHz: sc.Load.FreqHz, Tag: "testkit",
	})
	if err != nil {
		return err
	}
	if sc.Expose {
		if err := h.startExpose(); err != nil {
			return err
		}
	}
	return nil
}

// startExpose stands the observability plane up over the harness's
// daemon-side registry, with the same breaker- and backlog-aware
// readiness probes the production daemon wires (core.WithExpose).
func (h *harness) startExpose() error {
	srv := expose.NewServer()
	srv.AddSource(expose.SourceFor(h.daemonIn, map[string]string{"process": "harness"}))
	srv.SetLogs(h.logs)
	srv.OnScrape(func() { expose.CollectRuntime(h.daemonIn) })
	srv.AddCheck("telemetry-sink", func() error {
		if st := h.tsdbClient.Transport().BreakerState(); st == resilience.BreakerOpen {
			return fmt.Errorf("sink breaker %s", st)
		}
		return nil
	})
	srv.AddCheck("telemetry-backlog", func() error {
		if n := h.daemonIn.Metrics().Gauge("telemetry.journal.pending").Load(); n > 0 {
			return fmt.Errorf("%d spilled points awaiting replay", int(n))
		}
		return nil
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	h.exposeSrv = srv
	h.res.ExposeAddr = srv.Addr()
	return nil
}

// ready polls the plane's /readyz over the real socket.
func (h *harness) ready() bool {
	resp, err := http.Get("http://" + h.exposeSrv.Addr() + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// drive runs the seeded schedule: faults at tick boundaries, one sampling
// tick at a time, checkpoint writes over the docdb wire, and one event
// log entry per observable step.
func (h *harness) drive() error {
	ctx := context.Background()
	for tick := uint64(1); tick <= h.sc.Load.Ticks; tick++ {
		for _, f := range h.sc.Faults {
			if f.AtTick == tick {
				if err := h.applyFault(f); err != nil {
					return err
				}
				h.res.Log.Append(Event{Tick: tick, Kind: "fault", Detail: string(f.Kind)})
			}
		}
		if _, err := h.session.RunTicksContext(ctx, 1); err != nil {
			// Expected for non-degraded scenarios whose sink died. The
			// detail stays free of addresses/timing so the log replays.
			h.res.SessionErr = err
			h.res.Log.Append(Event{Tick: tick, Kind: "note", Detail: "session-error"})
			break
		}
		h.res.BreakerStates = append(h.res.BreakerStates, h.tsdbClient.Transport().BreakerState())
		if ce := h.sc.Load.CheckpointEvery; ce > 0 && tick%ce == 0 {
			h.checkpoint(ctx, tick)
		}
		if h.sc.Expose {
			h.res.ReadyStates = append(h.res.ReadyStates, h.ready())
		}
		if h.sc.QueryEveryTick {
			h.res.QueryOutcomes = append(h.res.QueryOutcomes, h.queryTick(ctx, tick))
		}
		h.res.Log.Append(h.tickEvent(tick))
	}
	if h.sc.Expose && h.res.SessionErr == nil {
		h.recoverReady()
	}
	return nil
}

// recoverReady drives the post-run recovery an operator would: replay
// the spill journal against the (presumably healed) sink until /readyz
// reports ready again. Bounded — an unhealed sink leaves
// RecoveredReady false rather than hanging the run. Wall-clock paced
// around the breaker cooldown, so nothing here enters the event log.
func (h *harness) recoverReady() {
	for i := 0; i < 100; i++ {
		if h.ready() {
			h.res.RecoveredReady = true
			return
		}
		// Replay both drains the backlog check and, by writing through
		// the transport, walks an open breaker through half-open → closed.
		h.col.Replay()
		time.Sleep(10 * time.Millisecond)
	}
}

// queryTick runs the per-tick aggregate probe through the resilient
// client. An error is an outcome, not a harness failure: during a
// partition window the query SHOULD fail, and the chaos scenarios
// assert exactly that shape around the fault boundaries.
func (h *harness) queryTick(ctx context.Context, tick uint64) QueryOutcome {
	stmt := fmt.Sprintf(`SELECT count(%q), mean(%q) FROM %q WHERE tag=%q GROUP BY time(1s)`,
		"_cpu0", "_cpu0", h.res.Measurements[0], "testkit")
	out := QueryOutcome{Tick: tick}
	res, err := h.tsdbClient.QueryContext(ctx, stmt)
	if err != nil {
		return out
	}
	out.OK = true
	out.Rows = len(res.Rows)
	return out
}

// tickEvent snapshots the collector's cumulative accounting.
func (h *harness) tickEvent(tick uint64) Event {
	return Event{
		Tick: tick, Kind: "tick",
		Expected:     h.col.Expected,
		Inserted:     h.col.Inserted,
		Zeros:        h.col.Zeros,
		Lost:         h.col.Lost,
		Spilled:      h.col.Spilled,
		Replayed:     h.col.Replayed,
		SpillDropped: h.col.SpillDropped,
		Pending:      h.col.PendingSpillFields(),
		Degraded:     h.col.Degraded(),
	}
}

// checkpoint writes one session-progress document through the docdb wire
// and records the semantic outcome (never the error text, which carries
// run-specific addresses).
func (h *harness) checkpoint(ctx context.Context, tick uint64) {
	doc := docdb.Doc{
		"_id":      fmt.Sprintf("ck-%03d", tick),
		"tick":     int(tick),
		"inserted": int(h.col.Inserted),
		"lost":     int(h.col.Lost),
		"pending":  int(h.col.PendingSpillFields()),
	}
	if _, err := h.docdbClient.InsertContext(ctx, CheckpointCollection, doc); err != nil {
		h.res.CheckpointsFailed++
		h.res.Log.Append(Event{Tick: tick, Kind: "checkpoint", Detail: "failed"})
		return
	}
	h.res.CheckpointsOK++
	h.res.Log.Append(Event{Tick: tick, Kind: "checkpoint", Detail: "ok"})
}

// applyFault mutates the stack at a tick boundary.
func (h *harness) applyFault(f FaultEvent) error {
	switch f.Kind {
	case FaultKillTSDB:
		// Durable kill = process death: crash the database first
		// (discarding whatever the fsync policy had not made stable —
		// the server's flush-on-close must not rescue it), then tear the
		// listener down. Faults land at tick boundaries, so no write is
		// in flight when the store detaches.
		h.tsdbDown = true
		if h.sc.Durable {
			if err := h.tsdbDB.Crash(); err != nil {
				return err
			}
		}
		return h.tsdbSrv.Close()
	case FaultRestartTSDB:
		if h.sc.Durable {
			db, err := tsdb.Open(filepath.Join(h.dataDir, "tsdb"), h.fsync)
			if err != nil {
				return fmt.Errorf("testkit: tsdb recovery: %w", err)
			}
			h.tsdbDB = db
		}
		h.tsdbDown = false
		h.tsdbSrv = tsdb.NewServer(h.tsdbDB)
		h.tsdbSrv.SetTracing(h.tsdbSrvIn)
		h.tsdbSrv.SetLogger(h.logs.With("tsdb.server"), 100*time.Millisecond)
		_, err := h.tsdbSrv.Listen(h.tsdbAddr)
		return err
	case FaultPartitionTSDB:
		h.tsdbProxy.Partition()
	case FaultHealTSDB:
		h.tsdbProxy.Heal()
	case FaultDropTSDBConns:
		h.tsdbProxy.DropConns()
	case FaultKillDocdb:
		h.docdbDown = true
		if h.sc.Durable {
			if err := h.docdbDB.Crash(); err != nil {
				return err
			}
		}
		return h.docdbSrv.Close()
	case FaultRestartDocdb:
		if h.sc.Durable {
			db, err := docdb.Open(filepath.Join(h.dataDir, "docdb"), h.fsync)
			if err != nil {
				return fmt.Errorf("testkit: docdb recovery: %w", err)
			}
			h.docdbDB = db
		}
		h.docdbDown = false
		h.docdbSrv = docdb.NewServer(h.docdbDB)
		h.docdbSrv.SetTracing(h.docdbSrvIn)
		h.docdbSrv.SetLogger(h.logs.With("docdb.server"), 100*time.Millisecond)
		_, err := h.docdbSrv.Listen(h.docdbAddr)
		return err
	case FaultDropDocdbConns:
		h.docdbProxy.DropConns()
	case FaultTornTSDBWAL:
		return h.injectWALTail(h.tsdbWALPath, h.tsdbDown, false, f.Kind)
	case FaultCorruptTailTSDBWAL:
		return h.injectWALTail(h.tsdbWALPath, h.tsdbDown, true, f.Kind)
	case FaultTornDocdbWAL:
		return h.injectWALTail(h.docdbWALPath, h.docdbDown, false, f.Kind)
	default:
		return fmt.Errorf("testkit: unknown fault kind %q", f.Kind)
	}
	return nil
}

// injectWALTail appends crash residue to a WAL: a torn frame (header
// promising more bytes than follow) or a complete final frame with a
// mismatched checksum. Recovery must truncate either. Only legal in
// Durable scenarios while the owning server is down — a live WAL appends
// past the residue, which would bury it mid-file and (correctly) turn
// restart into a hard corruption error.
func (h *harness) injectWALTail(path string, down, corrupt bool, kind FaultKind) error {
	if !h.sc.Durable {
		return fmt.Errorf("testkit: %s requires a Durable scenario", kind)
	}
	if !down {
		return fmt.Errorf("testkit: %s requires the server to be killed first", kind)
	}
	frame, err := storage.AppendRecord(nil, ^uint64(0), []byte("crash residue: this frame must not survive recovery"))
	if err != nil {
		return err
	}
	if corrupt {
		frame[len(frame)-1] ^= 0xff // full frame, bad checksum
	} else {
		frame = frame[:len(frame)-9] // header promises 9 missing bytes
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("testkit: %s: %w", kind, err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// finish attaches the session observation to the KB (the production
// Monitor epilogue) and assembles traces.
func (h *harness) finish() {
	obs := &kb.Observation{
		ID:      "obs:testkit",
		Type:    "ObservationInterface",
		Tag:     "testkit",
		Host:    h.target.System.Hostname,
		Command: "testkit",
		FreqHz:  h.sc.Load.FreqHz,
		Report: fmt.Sprintf("testkit: %d expected, %d inserted, %d lost, %d evicted",
			h.col.Expected, h.col.Inserted, h.col.Lost, h.col.SpillDropped),
	}
	if h.res.KB != nil {
		if err := h.res.KB.Attach(obs); err == nil {
			// Best-effort embedded persist; wire-level docdb traffic is the
			// checkpoints' job.
			_ = h.res.KB.Persist(h.daemon.Docs)
		}
	}
	if h.sc.Tracing {
		c := traceexport.NewCollector()
		c.Add("daemon", h.daemonIn.Tracer())
		c.Add("tsdb", h.tsdbSrvIn.Tracer())
		c.Add("docdb", h.docdbSrvIn.Tracer())
		h.res.Traces = c.Traces()
	}
	h.res.DocdbDB = h.docdbDB
	h.res.ServerDB = h.tsdbDB
}

// note appends a free-text event (setup summaries).
func (h *harness) note(tick uint64, detail string) {
	h.res.Log.Append(Event{Tick: tick, Kind: "note", Detail: detail})
}

// close tears the stack down in dependency order. Durable databases are
// closed (flushing their WALs) and a harness-owned data directory is
// removed; the recovered in-memory images stay readable for the oracles,
// which run against the Result after close.
func (h *harness) close() {
	if h.exposeSrv != nil {
		h.exposeSrv.Close()
	}
	if h.tsdbClient != nil {
		h.tsdbClient.Close()
	}
	if h.docdbClient != nil {
		h.docdbClient.Close()
	}
	if h.tsdbProxy != nil {
		h.tsdbProxy.Close()
	}
	if h.docdbProxy != nil {
		h.docdbProxy.Close()
	}
	if h.tsdbSrv != nil {
		h.tsdbSrv.Close()
	}
	if h.docdbSrv != nil {
		h.docdbSrv.Close()
	}
	if h.sc.Durable {
		if h.tsdbDB != nil {
			h.tsdbDB.Close()
		}
		if h.docdbDB != nil {
			h.docdbDB.Close()
		}
		if h.ownDataDir {
			os.RemoveAll(h.dataDir)
		}
	}
}
