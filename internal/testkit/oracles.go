package testkit

import (
	"errors"
	"fmt"
	"math"

	"pmove/internal/introspect/traceexport"
	"pmove/internal/resilience"
	"pmove/internal/storage"
	"pmove/internal/tsdb"
)

// Oracles are invariants over a completed simulation — conservation laws
// that must hold for every scenario, not expectations about one schedule.
// A violated oracle plus the scenario seed is a complete bug report.

// CheckConservation asserts the session's point conservation law: every
// expected data point — plus any backlog recovered from a predecessor's
// on-disk spill journal — is accounted for exactly once as inserted
// (which includes zero-filled and replayed points), lost to
// backpressure, evicted from a full journal, or still pending in the
// journal.
//
//	Expected + RecoveredSpill == Inserted + Lost + SpillDropped + Pending
//
// An aborted session (non-degraded scenario whose sink died) is exempt:
// the aborting report's points are the documented leak.
func CheckConservation(r *Result) error {
	if r.SessionErr != nil {
		return nil
	}
	c := r.Collector
	got := c.Inserted + c.Lost + c.SpillDropped + c.PendingSpillFields()
	if c.Expected+c.RecoveredSpill != got {
		return fmt.Errorf("conservation violated: expected %d + recovered %d != inserted %d + lost %d + evicted %d + pending %d = %d",
			c.Expected, c.RecoveredSpill, c.Inserted, c.Lost, c.SpillDropped, c.PendingSpillFields(), got)
	}
	if c.Zeros > c.Expected {
		// Zero-batched points follow the same insert/spill/evict paths as
		// real ones, so Zeros bounds against Expected, not Inserted.
		return fmt.Errorf("conservation violated: zeros %d > expected %d", c.Zeros, c.Expected)
	}
	if c.Replayed > c.Inserted {
		return fmt.Errorf("conservation violated: replayed %d > inserted %d (replays are a subset of inserted)", c.Replayed, c.Inserted)
	}
	return nil
}

// LegalBreakerTransition reports whether a circuit breaker may move from
// one observed state to another in a single step. half-open may remain
// half-open across observations (one probe in flight), closed never jumps
// straight to half-open, and open never jumps straight to closed.
func LegalBreakerTransition(from, to resilience.BreakerState) bool {
	switch from {
	case resilience.BreakerClosed:
		return to == resilience.BreakerClosed || to == resilience.BreakerOpen
	case resilience.BreakerOpen:
		return to == resilience.BreakerOpen || to == resilience.BreakerHalfOpen
	case resilience.BreakerHalfOpen:
		return true // probe outcome: closed (success), open (failure), or still probing
	default:
		return false
	}
}

// CheckBreakerStates asserts every per-tick breaker observation is a
// known state. Consecutive snapshots are NOT checked pairwise: a tick can
// span several transitions (open → half-open → closed), so snapshots only
// bound, never enumerate, the walk. Single-step legality is the
// transition-level oracle (LegalBreakerTransition) driven directly in
// tests against the breaker itself.
func CheckBreakerStates(r *Result) error {
	for i, s := range r.BreakerStates {
		switch s {
		case resilience.BreakerClosed, resilience.BreakerOpen, resilience.BreakerHalfOpen:
		default:
			return fmt.Errorf("tick %d: unknown breaker state %q", i+1, s)
		}
	}
	return nil
}

// CheckNoDuplicateInserts asserts the reconnect-with-resync guarantee
// held: no measurement holds two points with the same timestamp. The
// session writes one point per measurement per virtual tick, so a
// duplicate timestamp means a retried write was applied twice — exactly
// the desync bug the PING resync exists to prevent. Valid because the
// harness applies faults only at tick boundaries: an acknowledged write
// is never severed mid-flight.
func CheckNoDuplicateInserts(r *Result) error {
	for _, m := range r.Measurements {
		res, err := r.ServerDB.Execute(&tsdb.Query{Fields: []string{"*"}, Measurement: m})
		if err != nil {
			return fmt.Errorf("duplicate oracle: query %s: %w", m, err)
		}
		seen := make(map[int64]int, len(res.Rows))
		for _, row := range res.Rows {
			seen[row.Time]++
			if seen[row.Time] > 1 {
				return fmt.Errorf("duplicate insert: measurement %s holds %d points at t=%d",
					m, seen[row.Time], row.Time)
			}
		}
	}
	return nil
}

// CheckAttribution asserts latency conservation for every assembled
// trace: the per-hop attribution components must sum to the end-to-end
// wire time (they partition it; Sum differs only when clock anomalies
// forced clamping, bounded here at 5%).
func CheckAttribution(r *Result) error {
	for _, tr := range r.Traces {
		a := traceexport.Attribute(tr)
		if a.EndToEndSeconds <= 0 {
			continue // no wire hops in this trace
		}
		if diff := math.Abs(a.Sum() - a.EndToEndSeconds); diff > 0.05*a.EndToEndSeconds {
			return fmt.Errorf("attribution violated: trace %x sums hops to %.9fs but spans %.9fs end-to-end",
				tr.ID, a.Sum(), a.EndToEndSeconds)
		}
	}
	return nil
}

// CheckDurableRecovery asserts the durability contract on Durable
// scenarios running fsync=always: after any number of kill/restart
// cycles (crash + WAL/snapshot recovery), the server-side tsdb holds
// exactly as many data points as the collector had acknowledged —
// fewer means a crash lost an acknowledged write, more means recovery
// replayed one twice. Policies other than always are allowed to lose
// their unsynced tail, so only the clean-prefix property (restart
// succeeding at all) applies to them and the count is not checked.
func CheckDurableRecovery(r *Result) error {
	if !r.Scenario.Durable || r.SessionErr != nil {
		return nil
	}
	pol, err := storage.ParseFsyncPolicy(r.Scenario.Fsync)
	if err != nil || pol != storage.FsyncAlways {
		return nil
	}
	var got uint64
	for _, m := range r.Measurements {
		n, _ := r.ServerDB.CountValues(m)
		got += n
	}
	if got != r.Collector.Inserted {
		return fmt.Errorf("durable recovery violated: server holds %d data points, collector acknowledged %d (fsync=always: no loss, no duplicates)",
			got, r.Collector.Inserted)
	}
	return nil
}

// CheckShardStats asserts the sharded engine's merged accounting: the
// cumulative Stats() counters (per-shard, merged on read) must equal
// the sum of per-measurement CountValues over everything the server
// stores. A mismatch means a shard lost or double-counted a write —
// the cross-stripe conservation law of the lock-striped measurement
// map. Valid whenever no retention enforcement ran (the harness never
// does): cumulative write counters and resident data then coincide.
func CheckShardStats(r *Result) error {
	_, values := r.ServerDB.Stats()
	var stored uint64
	for _, m := range r.ServerDB.Measurements() {
		n, _ := r.ServerDB.CountValues(m)
		stored += n
	}
	if stored != values {
		return fmt.Errorf("shard stats violated: merged Stats() reports %d values but measurements hold %d",
			values, stored)
	}
	return nil
}

// CheckCheckpoints asserts the docdb leg's at-least-once accounting:
// every acknowledged checkpoint is present server-side, and no more
// documents exist than acknowledged plus failed attempts (a failed
// attempt may still have landed — at-least-once, not exactly-once).
func CheckCheckpoints(r *Result) error {
	if r.Scenario.Load.CheckpointEvery == 0 {
		return nil
	}
	n := r.DocdbDB.Collection(CheckpointCollection).Count(nil)
	if n < r.CheckpointsOK {
		return fmt.Errorf("checkpoint lost: %d acknowledged but only %d stored", r.CheckpointsOK, n)
	}
	if max := r.CheckpointsOK + r.CheckpointsFailed; n > max {
		return fmt.Errorf("checkpoint surplus: %d stored but only %d attempted", n, max)
	}
	return nil
}

// Verify runs every applicable oracle and joins the violations. A nil
// return means the run upheld all conservation laws; a non-nil return
// plus ReproLine(seed) is the full bug report.
func (r *Result) Verify() error {
	return errors.Join(
		CheckConservation(r),
		CheckBreakerStates(r),
		CheckNoDuplicateInserts(r),
		CheckShardStats(r),
		CheckAttribution(r),
		CheckCheckpoints(r),
		CheckDurableRecovery(r),
	)
}
