package experiments

import (
	"strings"
	"testing"
)

func TestChaosStudyShapes(t *testing.T) {
	res, err := ChaosStudy(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	byMode := map[string]ChaosRow{}
	for _, r := range res.Rows {
		byMode[r.Mode] = r
	}
	base := byMode["baseline"]
	if base.Outcome != "completed" || base.EndLossPct != 0 || base.Spilled != 0 {
		t.Fatalf("baseline: %+v", base)
	}
	def := byMode["default"]
	if !strings.HasPrefix(def.Outcome, "aborted") {
		t.Fatalf("default mode survived the partition: %+v", def)
	}
	deg := byMode["degraded"]
	if deg.Outcome != "completed" {
		t.Fatalf("degraded mode aborted: %+v", deg)
	}
	if deg.Spilled == 0 || deg.Replayed != deg.Spilled {
		t.Fatalf("degraded spill/replay: %+v", deg)
	}
	if deg.EndLossPct != 0 || deg.Pending != 0 {
		t.Fatalf("degraded run left loss: %+v", deg)
	}
	// The degraded row must have sampled every tick the baseline did.
	if deg.Expected != base.Expected {
		t.Fatalf("degraded expected %d, baseline %d", deg.Expected, base.Expected)
	}
	out := res.Render()
	for _, want := range []string{"Chaos study", "baseline", "default", "degraded", "Replayed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
