package experiments

import (
	"fmt"
	"strings"

	"pmove/internal/abst"
)

// TableIRow is one generic event's mapping on two microarchitectures.
type TableIRow struct {
	Generic string
	Intel   string // formula on Intel Cascade, or "Not Supported"
	AMD     string // formula on AMD Zen3
}

// TableIResult reproduces Table I: "Intel vs. AMD PMU events: the same,
// similar, different, and exclusive event names for the same generic
// event."
type TableIResult struct {
	Rows []TableIRow
}

// TableI resolves the paper's generic events through the Abstraction
// Layer for Intel Cascade Lake and AMD Zen3.
func TableI() (*TableIResult, error) {
	reg, err := abst.DefaultRegistry()
	if err != nil {
		return nil, err
	}
	generics := []string{
		abst.GenericEnergy,
		abst.GenericTotalMemOps,
		abst.GenericL3Hit,
		abst.GenericL1DataMiss,
		abst.GenericFPDivRetired,
		abst.GenericInstructions,
	}
	res := &TableIResult{}
	for _, g := range generics {
		row := TableIRow{Generic: g}
		if toks, err := reg.Get("cascade", g); err == nil {
			row.Intel = strings.Join(toks, " ")
		} else {
			row.Intel = "Not Supported"
		}
		if toks, err := reg.Get("zen3", g); err == nil {
			row.AMD = strings.Join(toks, " ")
		} else {
			row.AMD = "Not Supported"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the table.
func (r *TableIResult) Render() string {
	tw := newTableWriter(
		"Table I: Intel vs. AMD PMU events for the same generic event",
		"%-26s | %-62s | %-52s\n", "Generic event", "Intel Cascade", "AMD Zen3")
	for _, row := range r.Rows {
		tw.row(row.Generic, row.Intel, row.AMD)
	}
	// The paper's example API call.
	reg, err := abst.DefaultRegistry()
	if err == nil {
		toks, gerr := reg.Get("skl", abst.GenericTotalMemOps)
		if gerr == nil {
			return tw.String() + fmt.Sprintf("\n> pmu_utils.get(%q, %q)\n> %q\n", "skl", "TOTAL_MEMORY_OPERATIONS", toks)
		}
	}
	return tw.String()
}
