package experiments

import (
	"math"
	"strings"
	"testing"

	"pmove/internal/spmv"
	"pmove/internal/topo"
)

func TestTableIShapes(t *testing.T) {
	res, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	byGeneric := map[string]TableIRow{}
	for _, r := range res.Rows {
		byGeneric[r.Generic] = r
	}
	// Same event name on both vendors.
	if r := byGeneric["RAPL_ENERGY_PKG"]; r.Intel != "RAPL_ENERGY_PKG" || r.AMD != "RAPL_ENERGY_PKG" {
		t.Errorf("energy row: %+v", r)
	}
	// Different names, composed formulas.
	r := byGeneric["TOTAL_MEMORY_OPERATIONS"]
	if !strings.Contains(r.Intel, "MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES") {
		t.Errorf("intel mem ops: %s", r.Intel)
	}
	if !strings.Contains(r.AMD, "LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH") {
		t.Errorf("amd mem ops: %s", r.AMD)
	}
	// Vendor-exclusive event.
	if byGeneric["L3_HIT"].Intel != "Not Supported" {
		t.Error("L3_HIT should be unsupported on Intel Cascade")
	}
	if byGeneric["L3_HIT"].AMD == "Not Supported" {
		t.Error("L3_HIT should be supported on Zen3")
	}
	if !strings.Contains(res.Render(), "pmu_utils.get") {
		t.Error("render should include the paper's API example")
	}
}

func TestTableIIIShapes(t *testing.T) {
	res, err := TableIII(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 { // 2 hosts x 3 freqs x 3 metric counts
		t.Fatalf("rows: %d", len(res.Rows))
	}
	get := func(host string, freq float64, nmt int) TableIIIRow {
		for _, r := range res.Rows {
			if r.Host == host && r.FreqHz == freq && r.NMetrics == nmt {
				return r
			}
		}
		t.Fatalf("row %s/%g/%d missing", host, freq, nmt)
		return TableIIIRow{}
	}
	// Expected counts follow duration * freq * nmt * domain.
	r := get("skx", 2, 4)
	if r.Expected != uint64(10*2*4*88) {
		t.Errorf("skx expected = %d, want 7040", r.Expected)
	}
	if get("icl", 2, 4).Expected != uint64(10*2*4*16) {
		t.Error("icl expected count wrong")
	}
	// Low frequency: clean; no zeros.
	for _, host := range []string{"skx", "icl"} {
		for _, nmt := range []int{4, 5, 6} {
			row := get(host, 2, nmt)
			if row.LossPct > 2 || row.Zeros != 0 {
				t.Errorf("%s @2Hz/%dmt: loss %.1f zeros %d", host, nmt, row.LossPct, row.Zeros)
			}
		}
	}
	// 32 Hz: skx loses much more than icl; both batch zeros.
	skx32, icl32 := get("skx", 32, 5), get("icl", 32, 5)
	if skx32.LossPct < 15 {
		t.Errorf("skx @32Hz loss %.1f%%, want heavy losses (paper: 19-38%%)", skx32.LossPct)
	}
	if icl32.LossPct > 10 {
		t.Errorf("icl @32Hz loss %.1f%%, want small (paper: ~2.4%%)", icl32.LossPct)
	}
	if icl32.Zeros == 0 || skx32.Zeros == 0 {
		t.Error("32 Hz should batch zeros")
	}
	if icl32.LZPct < 25 || icl32.LZPct > 55 {
		t.Errorf("icl @32Hz L+Z %.1f%%, paper band ~36%%", icl32.LZPct)
	}
	// Throughput grows with frequency.
	if get("skx", 32, 6).Tput <= get("skx", 2, 6).Tput {
		t.Error("throughput should grow with frequency")
	}
	// A.Tput excludes zeros.
	if skx32.ATput > skx32.Tput {
		t.Error("actual throughput exceeds raw throughput")
	}
	if !strings.Contains(res.Render(), "Tput") {
		t.Error("render broken")
	}
}

func TestFig4Shapes(t *testing.T) {
	res, err := Fig4([]string{"icl", "zen3"}, []float64{2, 32})
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Averaged()
	if len(avg) != 4 {
		t.Fatalf("averaged rows: %d", len(avg))
	}
	for _, r := range avg {
		// Fig 4: errors stay within a few percent.
		if math.Abs(r.FlopsErr) > 0.05 || math.Abs(r.BytesErr) > 0.05 {
			t.Errorf("%s @%g: errors %.4f/%.4f exceed the Fig 4 band", r.Host, r.FreqHz, r.FlopsErr, r.BytesErr)
		}
	}
	// Low-frequency errors are sub-percent.
	for _, r := range avg {
		if r.FreqHz == 2 && (math.Abs(r.FlopsErr) > 0.01 || math.Abs(r.BytesErr) > 0.01) {
			t.Errorf("%s @2Hz: errors %.4f/%.4f should be sub-percent", r.Host, r.FlopsErr, r.BytesErr)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	res, err := Fig5("icl", []float64{2, 32}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 6 kernels x 2 freqs
		t.Fatalf("rows: %d", len(res.Rows))
	}
	var sum2, sum32 float64
	anyNegative := false
	for _, r := range res.Rows {
		if math.Abs(r.OverheadPct) > 1 {
			t.Errorf("%s @%g: overhead %.3f%% out of the Fig 5 band", r.Kernel, r.FreqHz, r.OverheadPct)
		}
		if r.OverheadPct < 0 {
			anyNegative = true
		}
		if r.FreqHz == 2 {
			sum2 += r.OverheadPct
		} else {
			sum32 += r.OverheadPct
		}
	}
	// "a meaningful skew towards positive overhead is observed with
	// increasing frequency".
	if sum32 <= sum2 {
		t.Errorf("overhead should skew positive with frequency: 2Hz sum %.4f vs 32Hz sum %.4f", sum2, sum32)
	}
	if !anyNegative {
		t.Log("note: no negative overheads in this run (paper observed some)")
	}
}

func TestFig6Shapes(t *testing.T) {
	res, err := Fig6([]float64{1, 4}, 30)
	if err != nil {
		t.Fatal(err)
	}
	byAgent := map[string][]Fig6Row{}
	for _, r := range res.Rows {
		byAgent[r.Agent] = append(byAgent[r.Agent], r)
	}
	for agent, rows := range byAgent {
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", agent, len(rows))
		}
		slow, fast := rows[0], rows[1]
		if slow.IntervalSec < fast.IntervalSec {
			slow, fast = fast, slow
		}
		// Memory constant regardless of frequency.
		if slow.MemoryMB != fast.MemoryMB {
			t.Errorf("%s: memory varies with frequency (%f vs %f)", agent, slow.MemoryMB, fast.MemoryMB)
		}
		// CPU scales with frequency (~4x here, allow 2x..6x).
		if fast.CPUPct < slow.CPUPct*2 {
			t.Errorf("%s: CPU did not scale with frequency: %f -> %f", agent, slow.CPUPct, fast.CPUPct)
		}
	}
	// pmdaproc uses the most memory.
	if byAgent["pmdaproc"][0].MemoryMB <= byAgent["pmdalinux"][0].MemoryMB {
		t.Error("pmdaproc should have the largest memory footprint")
	}
	// Network and disk scale with frequency (tracked on pmcd).
	pm := byAgent["pmcd"]
	slow, fast := pm[0], pm[1]
	if slow.IntervalSec < fast.IntervalSec {
		slow, fast = fast, slow
	}
	if fast.NetKBps < slow.NetKBps*2 || fast.DiskKBps < slow.DiskKBps*2 {
		t.Errorf("net/disk should scale: %f/%f -> %f/%f", slow.NetKBps, slow.DiskKBps, fast.NetKBps, fast.DiskKBps)
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 runs full matrix workloads")
	}
	res, err := Fig7(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 20 { // 2 orderings x 5 matrices x 2 algorithms
		t.Fatalf("phases: %d", len(res.Phases))
	}
	for _, p := range res.Phases {
		switch p.Algorithm {
		case spmv.AlgoMKL:
			// "AVX512_DP_FP events are only manifested for Intel MKL."
			if p.AVX512DP == 0 {
				t.Errorf("%s/%s: MKL phase has no AVX-512 events", p.Ordering, p.Matrix)
			}
			if p.ScalarDP != 0 {
				t.Errorf("%s/%s: MKL phase has scalar FP events", p.Ordering, p.Matrix)
			}
		case spmv.AlgoMerge:
			// "SCALAR_DP_FP appear during the Merge algorithm."
			if p.ScalarDP == 0 || p.AVX512DP != 0 {
				t.Errorf("%s/%s: merge events wrong: scalar=%d avx512=%d", p.Ordering, p.Matrix, p.ScalarDP, p.AVX512DP)
			}
		}
	}
	// Per-matrix: SIMD reduces memory instruction counts.
	byKey := map[string]Fig7Phase{}
	for _, p := range res.Phases {
		byKey[string(p.Ordering)+"/"+p.Matrix+"/"+string(p.Algorithm)] = p
	}
	for _, mi := range spmv.PaperMatrices() {
		mkl := byKey["none/"+mi.Name+"/mkl"]
		merge := byKey["none/"+mi.Name+"/merge"]
		if mkl.MemInstr >= merge.MemInstr {
			t.Errorf("%s: MKL mem instr %d should be below merge %d (SIMD)", mi.Name, mkl.MemInstr, merge.MemInstr)
		}
		// "the measures for RAPL_POWER_PACKAGE ... are lower than for
		// Merge" — scalar code draws more package power here.
		if mkl.MeanWatts >= merge.MeanWatts {
			t.Errorf("%s: MKL watts %.1f should be below merge %.1f", mi.Name, mkl.MeanWatts, merge.MeanWatts)
		}
		// Both algorithms computed identical results.
		if math.Abs(mkl.Checksum-merge.Checksum) > 1e-6*math.Abs(mkl.Checksum) {
			t.Errorf("%s: checksums diverge", mi.Name)
		}
	}
	// The headline: "the reordered ones took about 22% less time".
	sp := res.SpeedupPct()
	if sp < 10 || sp > 50 {
		t.Errorf("RCM speedup %.1f%%, want the paper's ~22%% band (10-50)", sp)
	}
	if !strings.Contains(res.Render(), "rcm speedup") {
		t.Error("render broken")
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 constructs a CARM and runs SpMV phases")
	}
	res, err := Fig8(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	need := []string{"mkl/none", "merge/none", "mkl/rcm", "merge/rcm"}
	got := map[string]float64{}
	for _, label := range need {
		s, ok := res.Summary(label)
		if !ok || s.N == 0 {
			t.Fatalf("phase %s missing from the live panel", label)
		}
		got[label] = s.MedianGF
	}
	// "for each algorithm, the RCM reordering yielded higher performance".
	if got["mkl/rcm"] <= got["mkl/none"] {
		t.Errorf("MKL: rcm %.1f should beat none %.1f", got["mkl/rcm"], got["mkl/none"])
	}
	if got["merge/rcm"] <= got["merge/none"] {
		t.Errorf("merge: rcm %.1f should beat none %.1f", got["merge/rcm"], got["merge/none"])
	}
	// "Intel MKL SpMV provides higher performance than the Merge SpMV"
	// (clearest under RCM, where AVX-512 pays off).
	if got["mkl/rcm"] <= got["merge/rcm"] {
		t.Errorf("MKL/rcm %.1f should beat merge/rcm %.1f", got["mkl/rcm"], got["merge/rcm"])
	}
	// Every point sits under the model's L1 envelope.
	for _, p := range res.Panel.Points() {
		roof, err := res.Model.RoofAt(topo.L1, p.AI)
		if err != nil {
			t.Fatal(err)
		}
		if p.GFLOPS > roof*1.15 {
			t.Errorf("point (%f, %f) above the envelope %f", p.AI, p.GFLOPS, roof)
		}
	}
	if !strings.Contains(res.Render(), "live-CARM") {
		t.Error("render broken")
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 constructs a CARM and runs benchmark phases")
	}
	res, err := Fig9(8)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig9Row{}
	for _, r := range res.Rows {
		rows[r.Kernel] = r
	}
	for _, k := range []string{"triad", "peakflops", "ddot"} {
		if _, ok := rows[k]; !ok {
			t.Fatalf("kernel %s missing", k)
		}
	}
	// Live AI matches the theoretical AI within 30%.
	for k, r := range rows {
		if r.TheoreticalAI == 0 {
			t.Fatalf("%s: zero theoretical AI", k)
		}
		ratio := r.MedianAI / r.TheoreticalAI
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: live AI %.4f vs theoretical %.4f (ratio %.2f)", k, r.MedianAI, r.TheoreticalAI, ratio)
		}
	}
	// Triad is bounded by the L2 roof (does not fit in L1).
	if rows["triad"].Bounding != topo.L2 {
		t.Errorf("triad bound by %s, want L2", rows["triad"].Bounding)
	}
	// PeakFlops reaches near the FP ceiling.
	if rows["peakflops"].MedianGF < res.Model.PeakGFLOPS*0.85 {
		t.Errorf("peakflops %.1f GFLOPS, peak %.1f — should approach the roof",
			rows["peakflops"].MedianGF, res.Model.PeakGFLOPS)
	}
	// DDOT surpasses the L2 roof (L1-resident).
	l2roof, err := res.Model.RoofAt(topo.L2, rows["ddot"].MedianAI)
	if err != nil {
		t.Fatal(err)
	}
	if rows["ddot"].MedianGF <= l2roof {
		t.Errorf("ddot %.1f GFLOPS should surpass the L2 roof %.1f", rows["ddot"].MedianGF, l2roof)
	}
}

func TestFig2Shapes(t *testing.T) {
	res, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a_focus_cache", "b_subtree_icl", "c_level_threads", "d_cross_machine"} {
		d, ok := res.Dashboards[name]
		if !ok {
			t.Fatalf("dashboard %s missing", name)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// The thread level view of skx has 88 panels (one per thread).
	if res.PanelCounts["c_level_threads"] != 88 {
		t.Errorf("thread level panels: %d", res.PanelCounts["c_level_threads"])
	}
	// The cross-machine view spans 3 sockets.
	if res.PanelCounts["d_cross_machine"] != 3 {
		t.Errorf("cross-machine panels: %d", res.PanelCounts["d_cross_machine"])
	}
}

func TestRetentionStudyShapes(t *testing.T) {
	res, err := RetentionStudy(8, 30, []float64{0, 10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	forever, mid, short := res.Rows[0], res.Rows[1], res.Rows[2]
	if forever.PointsDropped != 0 {
		t.Error("infinite retention dropped rows")
	}
	if mid.PointsDropped == 0 || short.PointsDropped == 0 {
		t.Error("finite retention should drop rows")
	}
	// Tighter retention keeps less data.
	if !(short.PointsStored < mid.PointsStored && mid.PointsStored < forever.PointsStored) {
		t.Errorf("storage not ordered by retention: %d / %d / %d",
			short.PointsStored, mid.PointsStored, forever.PointsStored)
	}
	if !strings.Contains(res.Render(), "forever") {
		t.Error("render broken")
	}
}
