package experiments

import (
	"fmt"

	"pmove/internal/abst"
	"pmove/internal/core"
	"pmove/internal/machine"
	"pmove/internal/spmv"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

// Fig7Phase is one monitored execution phase: one (matrix, algorithm,
// ordering) combination.
type Fig7Phase struct {
	Matrix    string
	Algorithm spmv.Algorithm
	Ordering  spmv.Ordering
	Seconds   float64
	// Event totals over the phase.
	ScalarDP  uint64
	AVX512DP  uint64
	MemInstr  uint64
	MeanWatts float64
	GFLOPS    float64
	Checksum  float64
}

// Fig7Result reproduces Fig 7: "Monitoring live performance events during
// SpMV execution on Intel CSL system" — MKL then Merge over five matrices,
// original (top) vs RCM-reordered (bottom).
type Fig7Result struct {
	Phases []Fig7Phase
	// TotalSeconds[ordering] sums the ten phases of each half of the
	// figure; the paper observes the reordered half takes ≈22% less time.
	TotalSeconds map[spmv.Ordering]float64
	Threads      int
}

// Fig7 runs the experiment on a CSL target through the full Scenario B
// path: every phase is a daemon observation with the paper's PMU events
// (SCALAR_DOUBLE_INSTRUCTIONS, AVX512_DOUBLE_INSTR., TOTAL_MEMORY_INSTR.,
// RAPL_POWER_PACKAGE). The SpMV results themselves are computed (both
// kernels really multiply) and cross-checked.
func Fig7(scale Scale, threads int) (*Fig7Result, error) {
	sys := topo.MustPreset(topo.PresetCSL)
	if threads <= 0 {
		threads = sys.NumCores()
	}
	d, err := core.New(core.EnvFromOS())
	if err != nil {
		return nil, err
	}
	if _, err := d.AttachTarget(sys, machine.Config{Seed: 11}, telemetry.DefaultPipeline()); err != nil {
		return nil, err
	}
	if _, err := d.Probe(sys.Hostname); err != nil {
		return nil, err
	}
	t, err := d.Target(sys.Hostname)
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{TotalSeconds: map[spmv.Ordering]float64{}, Threads: threads}
	generics := []string{
		abst.GenericScalarDouble, abst.GenericAVX512Double,
		abst.GenericTotalMemOps, abst.GenericEnergy,
	}
	for _, ord := range []spmv.Ordering{spmv.OrderNone, spmv.OrderRCM} {
		for _, mi := range spmv.PaperMatrices() {
			base, err := spmv.Generate(mi.Name, matrixRows(mi.Name, scale), 5)
			if err != nil {
				return nil, err
			}
			mat, _, err := spmv.Reorder(base, ord, 3)
			if err != nil {
				return nil, err
			}
			for _, algo := range spmv.Algorithms() {
				// Real numeric run (the "requested executable").
				info, _, err := spmv.Execute(mat, algo, ord, threads)
				if err != nil {
					return nil, err
				}
				spec, err := spmv.DeriveWorkloadRepeated(sys, mat, algo, threads, spmvRepeats(mat.NNZ()))
				if err != nil {
					return nil, err
				}
				raplBefore := raplTruth(t)
				tBefore := t.Machine.Now()
				obsRes, err := d.Observe(core.ObserveRequest{
					Host:          sys.Hostname,
					Workload:      spec,
					Command:       fmt.Sprintf("spmv --algo %s --matrix %s --order %s", algo, mi.Name, ord),
					Threads:       threads,
					Pin:           topo.PinBalanced,
					GenericEvents: generics,
					SWMetrics:     []string{machine.MetricNUMAAllocHit},
					FreqHz:        10,
				})
				if err != nil {
					return nil, err
				}
				exec := obsRes.Execution
				dt := t.Machine.Now() - tBefore
				watts := 0.0
				if dt > 0 {
					watts = (raplTruth(t) - raplBefore) / 1e6 / dt
				}
				ph := Fig7Phase{
					Matrix: mi.Name, Algorithm: algo, Ordering: ord,
					Seconds:   exec.Duration,
					ScalarDP:  exec.TotalTruth("FP_ARITH:SCALAR_DOUBLE"),
					AVX512DP:  exec.TotalTruth("FP_ARITH:512B_PACKED_DOUBLE"),
					MemInstr:  exec.TotalTruth("MEM_INST_RETIRED:ALL_LOADS") + exec.TotalTruth("MEM_INST_RETIRED:ALL_STORES"),
					MeanWatts: watts,
					GFLOPS:    exec.GFLOPS,
					Checksum:  info.Checksum,
				}
				res.Phases = append(res.Phases, ph)
				res.TotalSeconds[ord] += ph.Seconds
			}
		}
	}
	return res, nil
}

// raplTruth sums exact package microjoules across sockets.
func raplTruth(t *core.Target) float64 {
	total := 0.0
	for _, sk := range t.System.Sockets {
		r, err := t.Machine.RAPL(sk.ID)
		if err == nil {
			total += float64(r.Truth("pkg"))
		}
	}
	return total
}

// SpeedupPct returns how much faster the RCM half completed, in percent
// (the paper reports ≈22%).
func (r *Fig7Result) SpeedupPct() float64 {
	orig := r.TotalSeconds[spmv.OrderNone]
	rcm := r.TotalSeconds[spmv.OrderRCM]
	if orig == 0 {
		return 0
	}
	return (orig - rcm) / orig * 100
}

// Render formats the phase table.
func (r *Fig7Result) Render() string {
	tw := newTableWriter(
		fmt.Sprintf("Fig 7: live PMU events during SpMV on CSL (%d threads)", r.Threads),
		"%-9s %-18s %-6s %10s %12s %12s %12s %8s %9s\n",
		"Ordering", "Matrix", "Algo", "time (s)", "scalar DP", "AVX512 DP", "mem instr", "watts", "GFLOP/s")
	for _, p := range r.Phases {
		tw.row(string(p.Ordering), p.Matrix, string(p.Algorithm),
			fmt.Sprintf("%.4f", p.Seconds),
			sciNotation(float64(p.ScalarDP)), sciNotation(float64(p.AVX512DP)),
			sciNotation(float64(p.MemInstr)),
			fmt.Sprintf("%.1f", p.MeanWatts), fmt.Sprintf("%.2f", p.GFLOPS))
	}
	return tw.String() + fmt.Sprintf(
		"\ntotal original: %.4fs   total rcm: %.4fs   rcm speedup: %.1f%% (paper: ~22%%)\n",
		r.TotalSeconds[spmv.OrderNone], r.TotalSeconds[spmv.OrderRCM], r.SpeedupPct())
}
