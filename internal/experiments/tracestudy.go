package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"

	"pmove/internal/introspect"
	"pmove/internal/introspect/traceexport"
	"pmove/internal/machine"
	"pmove/internal/resilience"
	"pmove/internal/telemetry"
	"pmove/internal/tsdb"
)

// TraceStudyResult is the distributed-tracing chaos study: one degraded
// monitoring session shipped through a partitioned-then-healed proxy,
// with every wire frame traceparent-tagged, assembled into a single
// multi-process trace and attributed hop by hop.
type TraceStudyResult struct {
	TraceID     string
	Spans       int
	Processes   []string
	Orphans     int
	Dropped     uint64 // spans evicted from either ring during the run
	Attribution traceexport.Attribution
	SumDeltaPct float64 // |attribution sum - end-to-end| as % of end-to-end
	ChromeJSON  []byte
	ChromeValid bool
	UntaggedOK  bool // legacy untagged WRITE still accepted mid-run
	Waterfall   string
}

// TraceStudy reruns the chaos scenario with distributed tracing on: the
// client process ("daemon" ring) and the tsdb server process
// ("tsdb-server" ring) each keep their own spans, linked over the wire
// by the traceparent field on every WRITE. The middle third of the run
// is partitioned, so the assembled trace contains healthy round trips,
// failed attempts, backoff waits and post-heal replays — exactly the
// mix per-hop attribution must explain. The study then checks the
// acceptance criteria mechanically: the attribution components sum to
// the measured end-to-end wire time (≤5%), the Chrome trace-event JSON
// is valid, and an untagged legacy frame is still accepted.
func TraceStudy(ticks uint64, freqHz float64) (*TraceStudyResult, error) {
	if ticks < 3 {
		return nil, fmt.Errorf("experiments: trace study needs at least 3 ticks, got %d", ticks)
	}
	srv := tsdb.NewServer(tsdb.New())
	serverIn := introspect.New(
		introspect.WithProcess("tsdb-server"),
		introspect.WithSampling(1, 23),
		introspect.WithSpanCapacity(1<<14),
	)
	srv.SetTracing(serverIn)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	proxy := resilience.NewProxy(addr, resilience.Faults{}, 17)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	client, err := tsdb.DialPolicy(paddr, chaosPolicy())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	clientIn := introspect.New(
		introspect.WithProcess("daemon"),
		introspect.WithSampling(1, 29),
		introspect.WithSpanCapacity(1<<14),
	)
	client.Transport().SetIntrospection(clientIn, "tsdb")

	_, pm, err := newTarget("icl", 7)
	if err != nil {
		return nil, err
	}
	cfg := telemetry.PipelineConfig{Seed: 1, Degraded: true} // zero simulated costs, survive the outage
	col := telemetry.NewCollector(nil, cfg)
	col.Sink = client
	col.Self = clientIn
	sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
		Metrics: []string{machine.MetricCPUIdle}, FreqHz: freqHz, Tag: "chaos-trace",
	})
	if err != nil {
		return nil, err
	}

	// One root span over the whole three-phase run: everything beneath —
	// session ticks, offers, transport attempts, server inserts — joins
	// one distributed trace.
	ctx, root := clientIn.StartSpan(context.Background(), "chaos.trace")
	sc := root.Context()
	third := ticks / 3
	phases := []struct {
		ticks uint64
		fault func()
	}{
		{third, nil},
		{third, func() { proxy.Partition(); proxy.DropConns() }},
		{ticks - 2*third, func() { proxy.Heal() }},
	}
	var runErr error
	for _, ph := range phases {
		if ph.fault != nil {
			ph.fault()
		}
		if _, err := sess.RunTicksContext(ctx, ph.ticks); err != nil {
			runErr = err
			break
		}
	}
	root.End(runErr)
	if runErr != nil {
		return nil, fmt.Errorf("experiments: trace study session: %w", runErr)
	}

	// Mid-run backward-compatibility probe: a legacy client that knows
	// nothing of traceparent writes straight to the server.
	untagged := probeUntagged(addr)

	colr := traceexport.NewCollector()
	colr.Add("daemon", clientIn.Tracer())
	colr.Add("tsdb-server", serverIn.Tracer())
	tr, ok := colr.Trace(sc.Trace)
	if !ok {
		return nil, fmt.Errorf("experiments: trace %s not assembled", sc.Trace)
	}
	a := traceexport.Attribute(tr)
	traceexport.RecordAttribution(clientIn.Metrics(), a)
	res := &TraceStudyResult{
		TraceID:     sc.Trace.String(),
		Spans:       tr.Spans,
		Processes:   tr.Processes(),
		Orphans:     len(tr.Orphans),
		Dropped:     clientIn.Tracer().Dropped() + serverIn.Tracer().Dropped(),
		Attribution: a,
		UntaggedOK:  untagged,
		Waterfall:   traceexport.Waterfall(tr),
	}
	if a.EndToEndSeconds > 0 {
		res.SumDeltaPct = 100 * abs(a.Sum()-a.EndToEndSeconds) / a.EndToEndSeconds
	}
	if res.ChromeJSON, err = traceexport.ChromeTrace(tr); err != nil {
		return nil, err
	}
	res.ChromeValid = json.Valid(res.ChromeJSON)
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// probeUntagged speaks the pre-tracing protocol directly to the server.
func probeUntagged(addr string) bool {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return false
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "WRITE legacy,host=old v=1 123\n"); err != nil {
		return false
	}
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	return err == nil && strings.TrimSpace(string(buf[:n])) == "OK"
}

// Render formats the study: a summary block, the per-hop attribution,
// and a truncated waterfall of the assembled trace.
func (r *TraceStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace study: distributed trace %s\n", r.TraceID)
	fmt.Fprintf(&b, "  spans %d across %s · orphans %d · ring drops %d\n",
		r.Spans, strings.Join(r.Processes, "+"), r.Orphans, r.Dropped)
	fmt.Fprintf(&b, "  attribution sum within %.2f%% of end-to-end (criterion ≤5%%)\n", r.SumDeltaPct)
	fmt.Fprintf(&b, "  chrome trace-event JSON: %d bytes, valid=%v\n", len(r.ChromeJSON), r.ChromeValid)
	fmt.Fprintf(&b, "  untagged legacy frame accepted: %v\n", r.UntaggedOK)
	b.WriteString(r.Attribution.String())
	lines := strings.SplitN(r.Waterfall, "\n", 26)
	if len(lines) == 26 {
		lines[25] = "  ... (waterfall truncated)"
	}
	b.WriteString(strings.Join(lines, "\n"))
	if !strings.HasSuffix(b.String(), "\n") {
		b.WriteString("\n")
	}
	return b.String()
}
