package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceStudy runs the tracing chaos scenario end to end and pins the
// PR's acceptance criteria: a multi-process trace assembles, per-hop
// attribution sums to within 5% of the measured end-to-end time, the
// Chrome export is valid JSON, and untagged frames are still accepted.
func TestTraceStudy(t *testing.T) {
	res, err := TraceStudy(30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Processes) != 2 {
		t.Fatalf("processes = %v, want daemon + tsdb-server", res.Processes)
	}
	if res.Spans < 10 {
		t.Fatalf("only %d spans assembled", res.Spans)
	}
	a := res.Attribution
	if a.Hops == 0 || a.EndToEndSeconds <= 0 {
		t.Fatalf("no wire hops attributed: %+v", a)
	}
	if res.SumDeltaPct > 5 {
		t.Fatalf("attribution sum off by %.2f%% (> 5%%): %+v", res.SumDeltaPct, a)
	}
	// The partitioned middle third must show up as retry/backoff time.
	if a.RetrySeconds <= 0 {
		t.Errorf("partition left no retry time: %+v", a)
	}
	if a.ServerInsertSecs <= 0 {
		t.Errorf("no server insert time attributed: %+v", a)
	}
	if !res.ChromeValid {
		t.Error("chrome trace JSON invalid")
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.ChromeJSON, &decoded); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	if len(decoded.TraceEvents) < res.Spans {
		t.Errorf("chrome events %d < spans %d", len(decoded.TraceEvents), res.Spans)
	}
	if !res.UntaggedOK {
		t.Error("untagged legacy frame rejected")
	}
	out := res.Render()
	for _, want := range []string{"Trace study", "chaos.trace", "retry/backoff", "server insert"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
