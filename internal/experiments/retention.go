package experiments

import (
	"fmt"

	"pmove/internal/telemetry"
	"pmove/internal/tsdb"
)

// RetentionRow is one retention configuration's storage outcome.
type RetentionRow struct {
	RetentionSeconds float64 // 0 = keep forever
	FreqHz           float64
	DurationSeconds  float64
	PointsStored     uint64
	PointsDropped    int
	StoredFraction   float64
}

// RetentionResult reproduces the §V-B storage discussion: "On a large
// cluster sampling with a high frequency can easily overwhelm the KB …
// For these cases, we rely on the retention policy of InfluxDB which
// describes for how long the DB keeps data."
type RetentionResult struct {
	Rows []RetentionRow
}

// RetentionStudy samples an skx target at freqHz for durationSeconds
// under several retention policies, enforcing the policy once per virtual
// second (the real DB's enforcement interval), and reports how much data
// survives.
func RetentionStudy(freqHz, durationSeconds float64, retentions []float64) (*RetentionResult, error) {
	if len(retentions) == 0 {
		retentions = []float64{0, 60, 10}
	}
	res := &RetentionResult{}
	for _, ret := range retentions {
		m, pm, err := newTarget("skx", 3)
		if err != nil {
			return nil, err
		}
		events := selectEvents(m, 2)
		if err := m.ProgramAll(events); err != nil {
			return nil, err
		}
		metrics := make([]string, len(events))
		for i, ev := range events {
			metrics[i] = telemetry.MetricForEvent(ev)
		}
		db := tsdb.New()
		if ret > 0 {
			db.SetRetention(tsdb.RetentionPolicy{Name: "study", Duration: int64(ret * 1e9)})
		}
		col := telemetry.NewCollector(db, telemetry.DefaultPipeline())
		sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
			Metrics: metrics, FreqHz: freqHz,
		})
		if err != nil {
			return nil, err
		}
		// Drive second by second so enforcement interleaves with writes.
		dropped := 0
		ticksPerSec := uint64(freqHz)
		for s := 0.0; s < durationSeconds; s++ {
			if _, err := sess.RunTicks(ticksPerSec); err != nil {
				return nil, err
			}
			dropped += db.EnforceRetention(int64(m.Now() * 1e9))
		}
		points, _ := db.Stats()
		stored := uint64(0)
		for _, meas := range db.Measurements() {
			n, _ := db.CountValues(meas)
			stored += n
		}
		row := RetentionRow{
			RetentionSeconds: ret, FreqHz: freqHz, DurationSeconds: durationSeconds,
			PointsStored: stored, PointsDropped: dropped,
		}
		if points > 0 {
			row.StoredFraction = float64(stored) / float64(points*uint64(len(averageDomain(m, metrics))))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// averageDomain returns a representative field list (for the fraction
// denominator); per-CPU metrics dominate so the thread list is used.
func averageDomain(m interface{ InstanceDomainSize(string) int }, metrics []string) []struct{} {
	if len(metrics) == 0 {
		return nil
	}
	return make([]struct{}, m.InstanceDomainSize(metrics[0]))
}

// Render formats the study.
func (r *RetentionResult) Render() string {
	tw := newTableWriter(
		"Retention study (§V-B): stored values under different retention policies",
		"%-14s %6s %10s %14s %14s\n",
		"retention", "freq", "duration", "values stored", "rows dropped")
	for _, row := range r.Rows {
		ret := "forever"
		if row.RetentionSeconds > 0 {
			ret = fmt.Sprintf("%.0fs", row.RetentionSeconds)
		}
		tw.row(ret, fmtF(row.FreqHz), fmt.Sprintf("%.0fs", row.DurationSeconds),
			fmt.Sprintf("%d", row.PointsStored), fmt.Sprintf("%d", row.PointsDropped))
	}
	return tw.String()
}
