package experiments

import (
	"fmt"

	"pmove/internal/kernels"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// Fig5Row is the sampling overhead of one kernel at one frequency.
type Fig5Row struct {
	Host        string
	Kernel      string
	FreqHz      float64
	BaseSeconds float64 // mean unsampled duration
	SampSeconds float64 // mean sampled duration
	OverheadPct float64
}

// Fig5Result reproduces Fig 5: "Overhead caused by profiling six
// likwid-bench kernels (executions repeated 5 times, the run-times
// averaged)". Negative overheads occur when the sampling cost is below
// the run-to-run variance, exactly as in the paper.
type Fig5Result struct {
	Rows []Fig5Row
	Reps int
}

// Fig5 measures kernel completion times with and without PMU sampling.
func Fig5(host string, freqs []float64, reps int) (*Fig5Result, error) {
	if len(freqs) == 0 {
		freqs = []float64{2, 8, 32}
	}
	if reps <= 0 {
		reps = 5
	}
	res := &Fig5Result{Reps: reps}
	for _, kname := range kernels.LikwidKernels() {
		// Baseline: no sampling. A fresh machine per arm keeps the PMU
		// and clock state identical; distinct seeds give the run-to-run
		// variance the paper observes between repetitions.
		base, err := fig5Arm(host, kname, 0, reps, 101)
		if err != nil {
			return nil, err
		}
		for _, freq := range freqs {
			samp, err := fig5Arm(host, kname, freq, reps, 202+uint64(freq))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig5Row{
				Host: host, Kernel: kname, FreqHz: freq,
				BaseSeconds: base, SampSeconds: samp,
				OverheadPct: (samp - base) / base * 100,
			})
		}
	}
	return res, nil
}

// fig5Arm runs one kernel reps times, with sampling at freq (0 = off),
// and returns the mean duration.
func fig5Arm(host, kname string, freq float64, reps int, seed uint64) (float64, error) {
	total := 0.0
	for rep := 0; rep < reps; rep++ {
		m, pm, err := newTarget(host, seed+uint64(rep)*13)
		if err != nil {
			return 0, err
		}
		sys := m.System()
		events := selectEvents(m, 4)
		if err := m.ProgramAll(events); err != nil {
			return 0, err
		}
		spec, err := kernels.Likwid(kname, topo.ISAScalar, 8<<20, 1200)
		if err != nil {
			return 0, err
		}
		pinning, err := topo.Pin(sys, topo.PinBalanced, 4)
		if err != nil {
			return 0, err
		}
		exec, err := m.Launch(spec, pinning)
		if err != nil {
			return 0, err
		}
		if freq > 0 {
			metrics := make([]string, len(events))
			for i, ev := range events {
				metrics[i] = telemetry.MetricForEvent(ev)
			}
			col := telemetry.NewCollector(tsdb.New(), telemetry.DefaultPipeline())
			sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
				Metrics: metrics, FreqHz: freq, Tag: "fig5",
			})
			if err != nil {
				return 0, err
			}
			ticks := uint64(exec.Duration*freq) + 1
			if _, err := sess.RunTicks(ticks); err != nil {
				return 0, err
			}
		}
		if err := m.Wait(exec); err != nil {
			return 0, err
		}
		total += exec.Duration
	}
	return total / float64(reps), nil
}

// Render formats the overhead table.
func (r *Fig5Result) Render() string {
	tw := newTableWriter(
		fmt.Sprintf("Fig 5: sampling overhead (%d reps averaged; negative = below run variance)", r.Reps),
		"%-5s %-10s %5s %14s %14s %10s\n",
		"Host", "Kernel", "Freq", "base (s)", "sampled (s)", "overhead")
	for _, row := range r.Rows {
		tw.row(row.Host, row.Kernel, fmtF(row.FreqHz),
			fmt.Sprintf("%.6f", row.BaseSeconds), fmt.Sprintf("%.6f", row.SampSeconds),
			fmt.Sprintf("%+.4f%%", row.OverheadPct))
	}
	return tw.String()
}
