package experiments

import (
	"fmt"
	"sort"

	"pmove/internal/telemetry"
	"pmove/internal/tsdb"
)

// Fig6Row is one agent's resource usage at one sampling interval.
type Fig6Row struct {
	Agent       string
	IntervalSec float64 // 1/k means k samples per second
	CPUPct      float64 // share of one core
	MemoryMB    float64
	NetKBps     float64
	DiskKBps    float64
}

// Fig6Result reproduces Fig 6: "System resource usage of metric shipment
// with kernel and PMU metrics on skx" — per-agent CPU and memory, plus
// pipeline network and disk rates, across sampling intervals.
type Fig6Result struct {
	Rows     []Fig6Row
	NMetrics int
	// PointsPerReport is the data points in one full report (the paper's
	// 50-metric configuration comprised 15,937 points on skx).
	PointsPerReport int
}

// Fig6 samples a broad metric set on an empty skx target over a duration
// at each frequency, reading the agents' resource accounting afterwards.
func Fig6(freqs []float64, durationSeconds float64) (*Fig6Result, error) {
	if len(freqs) == 0 {
		freqs = []float64{0.25, 0.5, 1, 2, 4, 8}
	}
	res := &Fig6Result{}
	for _, freq := range freqs {
		m, pm, err := newTarget("skx", 99)
		if err != nil {
			return nil, err
		}
		// The metric set: all software metrics + proc metrics + 2 PMU
		// metrics, approximating the paper's 50-metric configuration
		// ("P-MoVE employs … approximately 20 pmdalinux metrics, and 2
		// pmdaperfevent metrics at 1-second intervals").
		events := selectEvents(m, 2)
		if err := m.ProgramAll(events); err != nil {
			return nil, err
		}
		var metrics []string
		for _, ev := range events {
			metrics = append(metrics, telemetry.MetricForEvent(ev))
		}
		for _, a := range pm.Agents() {
			if a.Name() == telemetry.AgentPerfevent {
				continue
			}
			metrics = append(metrics, a.Metrics()...)
		}
		sort.Strings(metrics)
		res.NMetrics = len(metrics)

		col := telemetry.NewCollector(tsdb.New(), telemetry.DefaultPipeline())
		sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
			Metrics: metrics, FreqHz: freq, DurationSeconds: durationSeconds,
		})
		if err != nil {
			return nil, err
		}
		st, err := sess.Run()
		if err != nil {
			return nil, err
		}
		if res.PointsPerReport == 0 && st.Ticks > 0 {
			res.PointsPerReport = int(st.Expected / st.Ticks)
		}

		netKBps := float64(col.NetBytes) / durationSeconds / 1024
		diskKBps := float64(col.DiskBytes) / durationSeconds / 1024
		type usageAgent interface {
			Usage() *telemetry.ResourceUsage
		}
		agents := append([]telemetry.Agent{}, pm.Agents()...)
		for _, a := range agents {
			ua, ok := a.(usageAgent)
			if !ok {
				continue
			}
			cpu, mem, _, _, _ := ua.Usage().Snapshot()
			res.Rows = append(res.Rows, Fig6Row{
				Agent: a.Name(), IntervalSec: 1 / freq,
				CPUPct:   cpu / durationSeconds * 100,
				MemoryMB: float64(mem) / (1 << 20),
				NetKBps:  0, DiskKBps: 0,
			})
		}
		// pmcd carries the shipment totals.
		cpu, mem, _, _, _ := pm.Usage().Snapshot()
		res.Rows = append(res.Rows, Fig6Row{
			Agent: telemetry.AgentPMCD, IntervalSec: 1 / freq,
			CPUPct:   cpu / durationSeconds * 100,
			MemoryMB: float64(mem) / (1 << 20),
			NetKBps:  netKBps,
			DiskKBps: diskKBps,
		})
	}
	return res, nil
}

// Render formats the usage table.
func (r *Fig6Result) Render() string {
	tw := newTableWriter(
		fmt.Sprintf("Fig 6: resource usage of metric shipment on skx (%d metrics, %d points/report)", r.NMetrics, r.PointsPerReport),
		"%-14s %10s %9s %10s %10s %10s\n",
		"Agent", "interval", "CPU %", "mem MB", "net KB/s", "disk KB/s")
	for _, row := range r.Rows {
		tw.row(row.Agent, fmt.Sprintf("1/%s", fmtF(1/row.IntervalSec)),
			fmt.Sprintf("%.3f", row.CPUPct), fmt.Sprintf("%.1f", row.MemoryMB),
			fmt.Sprintf("%.1f", row.NetKBps), fmt.Sprintf("%.1f", row.DiskKBps))
	}
	return tw.String()
}
