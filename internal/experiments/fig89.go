package experiments

import (
	"fmt"

	"pmove/internal/carm"
	"pmove/internal/core"
	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/spmv"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

// Fig8Result reproduces Fig 8: the live-CARM panel during Intel MKL and
// Merge SpMV on hugetrace-00020, original vs RCM-reordered, on CSL.
type Fig8Result struct {
	Model     *carm.Model
	Summaries []carm.Summary
	Panel     *carm.LivePanel
}

// fig8Daemon builds a probed CSL daemon.
func fig8Daemon() (*core.Daemon, *topo.System, error) {
	sys := topo.MustPreset(topo.PresetCSL)
	d, err := core.New(core.EnvFromOS())
	if err != nil {
		return nil, nil, err
	}
	if _, err := d.AttachTarget(sys, machine.Config{Seed: 21}, telemetry.DefaultPipeline()); err != nil {
		return nil, nil, err
	}
	if _, err := d.Probe(sys.Hostname); err != nil {
		return nil, nil, err
	}
	return d, sys, nil
}

// Fig8 constructs the CARM for CSL, then feeds the four SpMV phases
// through the live panel.
func Fig8(scale Scale, threads int) (*Fig8Result, error) {
	d, sys, err := fig8Daemon()
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = sys.NumCores()
	}
	model, err := d.ConstructCARM(sys.Hostname, sys.CPU.WidestISA(), threads)
	if err != nil {
		return nil, err
	}
	base, err := spmv.Generate("hugetrace-00020", matrixRows("hugetrace-00020", scale), 5)
	if err != nil {
		return nil, err
	}
	var phases []core.LiveCARMPhase
	for _, ord := range []spmv.Ordering{spmv.OrderNone, spmv.OrderRCM} {
		mat, _, err := spmv.Reorder(base, ord, 3)
		if err != nil {
			return nil, err
		}
		for _, algo := range spmv.Algorithms() {
			spec, err := spmv.DeriveWorkloadRepeated(sys, mat, algo, threads, 30*spmvRepeats(mat.NNZ()))
			if err != nil {
				return nil, err
			}
			phases = append(phases, core.LiveCARMPhase{
				Label:    fmt.Sprintf("%s/%s", algo, ord),
				Workload: spec,
			})
		}
	}
	lc, err := d.LiveCARM(sys.Hostname, model, phases, threads, 50)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Model: model, Summaries: lc.Summaries, Panel: lc.Panel}, nil
}

// Summary returns the phase summary with the given label.
func (r *Fig8Result) Summary(label string) (carm.Summary, bool) {
	for _, s := range r.Summaries {
		if s.Label == label {
			return s, true
		}
	}
	return carm.Summary{}, false
}

// Render formats the panel and phase summaries.
func (r *Fig8Result) Render() string {
	out := "Fig 8: live-CARM during SpMV execution (hugetrace-00020, CSL)\n"
	out += carm.RenderASCII(r.Model, r.Panel.Points(), 72, 18)
	out += fmt.Sprintf("%-14s %6s %12s %14s\n", "phase", "points", "median AI", "median GFLOP/s")
	for _, s := range r.Summaries {
		out += fmt.Sprintf("%-14s %6d %12.4f %14.2f\n", s.Label, s.N, s.MedianAI, s.MedianGF)
	}
	return out
}

// Fig9Row is one benchmark's live-CARM placement.
type Fig9Row struct {
	Kernel        string
	TheoreticalAI float64
	MedianAI      float64
	MedianGF      float64
	// Bounding is the memory level whose roof bounds the observed points.
	Bounding topo.CacheLevel
}

// Fig9Result reproduces Fig 9: live-CARM during likwid benchmark
// execution — Triad (AI 0.625) below the L2 roof, PeakFlops (AI 2) at the
// FP roof, DDOT (AI 0.125, L1-resident) above the L2 roof.
type Fig9Result struct {
	Model *carm.Model
	Rows  []Fig9Row
	Panel *carm.LivePanel
}

// Fig9 profiles Triad, PeakFlops and DDOT against the live-CARM roofs.
func Fig9(threads int) (*Fig9Result, error) {
	d, sys, err := fig8Daemon()
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = sys.NumCores()
	}
	isa := sys.CPU.WidestISA()
	model, err := d.ConstructCARM(sys.Hostname, isa, threads)
	if err != nil {
		return nil, err
	}
	l1, _ := sys.Cache(topo.L1)
	l2, _ := sys.Cache(topo.L2)
	cases := []struct {
		name string
		wss  int64
	}{
		// Triad: "unable to surpass [the L2 roof] since the workload size
		// does not fit in the 32Kb L1 cache".
		{"triad", l2.SizeBytes / 2},
		// PeakFlops: register/L1-resident FMA chain.
		{"peakflops", 4 << 10},
		// DDOT: "utilizes smaller problem sizes, thus able to fit in the
		// L1 cache".
		{"ddot", l1.SizeBytes / 2},
	}
	var phases []core.LiveCARMPhase
	for _, c := range cases {
		// Size each phase to ~10^8 wide iterations so it spans many
		// sampling intervals and per-tick deltas dwarf counter noise.
		itersPerSweep := c.wss / 8 / int64(isa.VectorWidth())
		if itersPerSweep < 1 {
			itersPerSweep = 1
		}
		sweeps := int(1e8/float64(itersPerSweep)) + 1
		spec, err := kernels.Likwid(c.name, isa, c.wss, sweeps)
		if err != nil {
			return nil, err
		}
		phases = append(phases, core.LiveCARMPhase{Label: c.name, Workload: spec})
	}
	lc, err := d.LiveCARM(sys.Hostname, model, phases, threads, 50)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Model: model, Panel: lc.Panel}
	for _, c := range cases {
		ai, err := kernels.TheoreticalAI(c.name, isa)
		if err != nil {
			return nil, err
		}
		for _, s := range lc.Summaries {
			if s.Label == c.name {
				res.Rows = append(res.Rows, Fig9Row{
					Kernel: c.name, TheoreticalAI: ai,
					MedianAI: s.MedianAI, MedianGF: s.MedianGF,
					Bounding: model.BoundingLevel(s.MedianAI, s.MedianGF),
				})
			}
		}
	}
	return res, nil
}

// Render formats the benchmark placement table and the panel.
func (r *Fig9Result) Render() string {
	out := "Fig 9: live-CARM during likwid benchmark execution (CSL)\n"
	out += carm.RenderASCII(r.Model, r.Panel.Points(), 72, 18)
	out += fmt.Sprintf("%-11s %14s %11s %14s %10s\n", "kernel", "theoretical AI", "median AI", "median GFLOP/s", "bound by")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-11s %14.4f %11.4f %14.2f %10s\n",
			row.Kernel, row.TheoreticalAI, row.MedianAI, row.MedianGF, row.Bounding)
	}
	return out
}
