package experiments

import (
	"fmt"
	"sort"

	"pmove/internal/kernels"
	"pmove/internal/pmu"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// Fig4Row is the relative error between sampled and ground-truth counts
// for one host/kernel/frequency configuration.
type Fig4Row struct {
	Host   string
	Kernel string
	FreqHz float64
	// FlopsErr and BytesErr are relative errors ((sampled-truth)/truth) of
	// the FLOP count and the data volume, the Fig 4 quantities.
	FlopsErr float64
	BytesErr float64
}

// Fig4Result reproduces Fig 4: "Errors btw. sampled metrics and
// likwid-bench values", averaged over the six likwid kernels per
// frequency.
type Fig4Result struct {
	Rows []Fig4Row
}

// fig4Events returns the FLOP and memory events of a vendor, as described
// in §V-A: data volume from loads+stores (×8 bytes on zen3), FLOPs from
// RETIRED_SSE_AVX_FLOPS:ANY on zen3 and FP_ARITH:SCALAR_DOUBLE on
// skx/icl.
func fig4Events(vendor topo.Vendor) (flopsEv string, loadEv, storeEv string) {
	if vendor == topo.VendorAMD {
		return pmu.AMDFlopsAny, pmu.AMDLoads, pmu.AMDStores
	}
	return pmu.IntelScalarDouble, pmu.IntelLoads, pmu.IntelStores
}

// Fig4 runs the six likwid-bench kernels on each host while sampling at
// each frequency, then compares the final sampled cumulative counts with
// the engine's exact ground truth (likwid-bench's role).
func Fig4(hosts []string, freqs []float64) (*Fig4Result, error) {
	if len(hosts) == 0 {
		hosts = []string{"skx", "icl", "zen3"}
	}
	if len(freqs) == 0 {
		freqs = []float64{2, 8, 32}
	}
	res := &Fig4Result{}
	for _, host := range hosts {
		for _, freq := range freqs {
			for _, kname := range kernels.LikwidKernels() {
				row, err := fig4One(host, kname, freq)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

func fig4One(host, kname string, freq float64) (Fig4Row, error) {
	m, pm, err := newTarget(host, 41+uint64(freq))
	if err != nil {
		return Fig4Row{}, err
	}
	sys := m.System()
	flopsEv, loadEv, storeEv := fig4Events(sys.CPU.Vendor)
	events := []string{flopsEv, loadEv, storeEv}
	if err := m.ProgramAll(events); err != nil {
		return Fig4Row{}, err
	}
	// Scalar kernels so FP_ARITH:SCALAR_DOUBLE carries the FLOPs on Intel.
	// Sized to run for a few seconds so several sampling intervals elapse.
	spec, err := kernels.Likwid(kname, topo.ISAScalar, 8<<20, 2500)
	if err != nil {
		return Fig4Row{}, err
	}
	pinning, err := topo.Pin(sys, topo.PinBalanced, 4)
	if err != nil {
		return Fig4Row{}, err
	}
	metrics := make([]string, len(events))
	for i, ev := range events {
		metrics[i] = telemetry.MetricForEvent(ev)
	}
	db := tsdb.New()
	col := telemetry.NewCollector(db, telemetry.DefaultPipeline())
	sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
		Metrics: metrics, FreqHz: freq, Tag: "fig4",
	})
	if err != nil {
		return Fig4Row{}, err
	}
	exec, err := m.Launch(spec, pinning)
	if err != nil {
		return Fig4Row{}, err
	}
	ticks := uint64(exec.Duration*freq) + 1
	if _, err := sess.RunTicks(ticks); err != nil {
		return Fig4Row{}, err
	}
	if err := m.Wait(exec); err != nil {
		return Fig4Row{}, err
	}

	sampled := func(ev string) float64 {
		meas := tsdb.MeasurementName(telemetry.MetricForEvent(ev))
		q := &tsdb.Query{Fields: []string{"*"}, Measurement: meas, TagFilter: map[string]string{"tag": "fig4"}}
		r, err := db.Execute(q)
		if err != nil || len(r.Rows) == 0 {
			return 0
		}
		// Cumulative counters are monotonic, so the largest value per field
		// is the final reading; batched zeros and lost ticks only remove
		// information.
		best := map[string]float64{}
		for _, row := range r.Rows {
			for f, v := range row.Values {
				if v > best[f] {
					best[f] = v
				}
			}
		}
		sum := 0.0
		for _, v := range best {
			sum += v
		}
		return sum
	}

	truth := func(ev string) float64 { return float64(exec.TotalTruth(ev)) }

	sf, tf := sampled(flopsEv), truth(flopsEv)
	sb := sampled(loadEv) + sampled(storeEv)
	tb := truth(loadEv) + truth(storeEv)
	row := Fig4Row{Host: host, Kernel: kname, FreqHz: freq}
	if tf > 0 {
		row.FlopsErr = (sf - tf) / tf
	}
	if tb > 0 {
		row.BytesErr = (sb - tb) / tb
	}
	return row, nil
}

// Averaged collapses rows to per-host-per-frequency means over kernels,
// matching the figure's "averaged kernel errors".
func (r *Fig4Result) Averaged() []Fig4Row {
	type key struct {
		host string
		freq float64
	}
	agg := map[key][]Fig4Row{}
	var order []key
	for _, row := range r.Rows {
		k := key{row.Host, row.FreqHz}
		if _, ok := agg[k]; !ok {
			order = append(order, k)
		}
		agg[k] = append(agg[k], row)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].host != order[j].host {
			return order[i].host < order[j].host
		}
		return order[i].freq < order[j].freq
	})
	var out []Fig4Row
	for _, k := range order {
		rows := agg[k]
		var fe, be float64
		for _, row := range rows {
			fe += row.FlopsErr
			be += row.BytesErr
		}
		out = append(out, Fig4Row{
			Host: k.host, Kernel: "avg", FreqHz: k.freq,
			FlopsErr: fe / float64(len(rows)), BytesErr: be / float64(len(rows)),
		})
	}
	return out
}

// Render formats the per-kernel and averaged errors.
func (r *Fig4Result) Render() string {
	tw := newTableWriter(
		"Fig 4: relative errors between sampled metrics and ground truth (positive=overcount)",
		"%-5s %-10s %5s %12s %12s\n", "Host", "Kernel", "Freq", "FLOPs err", "bytes err")
	for _, row := range r.Rows {
		tw.row(row.Host, row.Kernel, fmtF(row.FreqHz),
			fmt.Sprintf("%+.4f%%", row.FlopsErr*100), fmt.Sprintf("%+.4f%%", row.BytesErr*100))
	}
	out := tw.String() + "\naveraged over kernels:\n"
	for _, row := range r.Averaged() {
		out += fmt.Sprintf("  %-5s f=%-4s flops %+.4f%%  bytes %+.4f%%\n",
			row.Host, fmtF(row.FreqHz), row.FlopsErr*100, row.BytesErr*100)
	}
	return out
}
