package experiments

import (
	"pmove/internal/telemetry"
	"pmove/internal/tsdb"
)

// TableIIIRow is one configuration's throughput measurement.
type TableIIIRow struct {
	Host     string
	FreqHz   float64
	NMetrics int
	Expected uint64
	Inserted uint64
	Zeros    uint64
	LossPct  float64
	LZPct    float64
	Tput     float64
	ATput    float64
}

// TableIIIResult reproduces Table III: data points expected and observed
// at the host DB w.r.t. sampling frequency and metric count, on skx (88
// threads) and icl (16 threads).
type TableIIIResult struct {
	Rows            []TableIIIRow
	DurationSeconds float64
}

// TableIII runs the throughput/loss experiment: perfevent sampling of
// never-zero events across frequencies {2, 8, 32} Hz and metric counts
// {4, 5, 6}, shipped through the unbuffered pipeline.
func TableIII(durationSeconds float64) (*TableIIIResult, error) {
	res := &TableIIIResult{DurationSeconds: durationSeconds}
	for _, host := range []string{"skx", "icl"} {
		for _, freq := range []float64{2, 8, 32} {
			for _, nmt := range []int{4, 5, 6} {
				m, pm, err := newTarget(host, 7)
				if err != nil {
					return nil, err
				}
				events := selectEvents(m, nmt)
				if err := m.ProgramAll(events); err != nil {
					return nil, err
				}
				metrics := make([]string, len(events))
				for i, ev := range events {
					metrics[i] = telemetry.MetricForEvent(ev)
				}
				col := telemetry.NewCollector(tsdb.New(), telemetry.DefaultPipeline())
				sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
					Metrics: metrics, FreqHz: freq, DurationSeconds: durationSeconds,
				})
				if err != nil {
					return nil, err
				}
				st, err := sess.Run()
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, TableIIIRow{
					Host: host, FreqHz: freq, NMetrics: nmt,
					Expected: st.Expected, Inserted: st.Inserted, Zeros: st.Zeros,
					LossPct: st.LossPct, LZPct: st.LossPlusZPct,
					Tput: st.Tput, ATput: st.ATput,
				})
			}
		}
	}
	return res, nil
}

// Render formats the table in the paper's layout.
func (r *TableIIIResult) Render() string {
	tw := newTableWriter(
		"Table III: data points expected/observed at the host DB vs sampling freq and #metrics",
		"%-5s %5s %4v %10s %10s %10s %6s %6s %9s %9s\n",
		"Host", "Freq", "#mt", "Expected", "Inserted", "Zeros", "%L", "L+Z%", "Tput", "A.Tput")
	for _, row := range r.Rows {
		tw.row(row.Host, fmtF(row.FreqHz), row.NMetrics,
			sciNotation(float64(row.Expected)), sciNotation(float64(row.Inserted)),
			sciNotation(float64(row.Zeros)),
			fmt1(row.LossPct), fmt1(row.LZPct), fmt1(row.Tput), fmt1(row.ATput))
	}
	return tw.String()
}

func fmtF(f float64) string { return trimZeros(f) }

func fmt1(f float64) string {
	return trimTo1(f)
}
