// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated substrates. Each experiment returns a
// structured result with a text renderer, consumed by cmd/experiments and
// by the benchmark harness in the repository root.
//
// Absolute numbers differ from the paper's testbed (the substrate is an
// analytic simulator); the *shapes* — who wins, by what rough factor,
// where crossovers fall — are asserted by the test suite and recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"pmove/internal/machine"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

// Scale selects the problem sizes: tests run Small for speed, the CLI
// defaults to Full for closer-to-paper workloads.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)

// matrixRows returns the synthetic matrix size for a paper matrix at a
// scale. Small keeps test runtimes low while still exceeding the L2
// locality window; Full pushes the large matrices past the CSL L3 so the
// matrix stream comes from DRAM as on the real testbed.
func matrixRows(name string, s Scale) int {
	small := map[string]int{
		"adaptive": 250000, "audikw_1": 20000, "dielFilterV3real": 20000,
		"hugetrace-00020": 360000, "human_gene1": 1500,
	}
	full := map[string]int{
		"adaptive": 722500, "audikw_1": 50000, "dielFilterV3real": 50000,
		"hugetrace-00020": 1000000, "human_gene1": 3300,
	}
	if s == Full {
		return full[name]
	}
	return small[name]
}

// spmvRepeats sizes a Fig 7/8 phase: enough back-to-back SpMV invocations
// that each phase spans many sampling intervals.
func spmvRepeats(nnz int) int {
	r := 1 + int(4e8/float64(nnz))
	return r
}

// newTarget builds a machine and sampler stack for a preset host.
func newTarget(host string, seed uint64) (*machine.Machine, *telemetry.PMCD, error) {
	sys, err := topo.NewPreset(host)
	if err != nil {
		return nil, nil, err
	}
	m, err := machine.New(sys, machine.Config{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return m, telemetry.NewPMCD(m), nil
}

// selectEvents picks n core-scope events for a machine, starting with the
// never-zero events Table III samples ("metrics that are highly unlikely
// to report zero, e.g., UNHALTED_CORE_CYCLES, INSTRUCTION_RETIRED,
// UOPS_DISPATCHED").
func selectEvents(m *machine.Machine, n int) []string {
	cat := m.Catalog()
	events := cat.NeverZeroEvents()
	for _, ev := range cat.Names() {
		if len(events) >= n {
			break
		}
		def, _ := cat.Lookup(ev)
		if def.PMU != "core" {
			continue
		}
		dup := false
		for _, e := range events {
			if e == ev {
				dup = true
				break
			}
		}
		if !dup {
			events = append(events, ev)
		}
	}
	if len(events) > n {
		events = events[:n]
	}
	return events
}

// sciNotation renders a count the way Table III does (e.g. "7.04E+03").
func sciNotation(v float64) string {
	return strings.ToUpper(strings.Replace(fmt.Sprintf("%.2e", v), "e+0", "E+0", 1))
}

// trimZeros renders a float without trailing zeros ("2", "0.5").
func trimZeros(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}

// trimTo1 renders a float with one decimal place.
func trimTo1(f float64) string { return fmt.Sprintf("%.1f", f) }

// tableWriter accumulates aligned text rows.
type tableWriter struct {
	b      strings.Builder
	format string
}

func newTableWriter(title, format string, headers ...any) *tableWriter {
	tw := &tableWriter{format: format}
	tw.b.WriteString(title + "\n")
	fmt.Fprintf(&tw.b, format, headers...)
	return tw
}

func (tw *tableWriter) row(args ...any) { fmt.Fprintf(&tw.b, tw.format, args...) }

func (tw *tableWriter) String() string { return tw.b.String() }
