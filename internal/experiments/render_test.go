package experiments

import (
	"strings"
	"testing"
)

// The Render methods feed cmd/experiments; these tests pin their shape so
// the CLI output stays parseable.

func TestTableIIIRender(t *testing.T) {
	res, err := TableIII(5)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Host", "Freq", "#mt", "Expected", "Inserted", "Zeros", "%L", "L+Z%", "Tput", "A.Tput", "skx", "icl"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Scientific notation in the paper's style.
	if !strings.Contains(out, "E+0") {
		t.Error("counts not in scientific notation")
	}
}

func TestFig4Render(t *testing.T) {
	res, err := Fig4([]string{"zen3"}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "averaged over kernels") {
		t.Error("averaged section missing")
	}
	for _, k := range []string{"sum", "stream", "triad", "peakflops", "ddot", "daxpy"} {
		if !strings.Contains(out, k) {
			t.Errorf("kernel %s missing", k)
		}
	}
	if !strings.Contains(out, "%") {
		t.Error("errors should render as percentages")
	}
}

func TestFig5Render(t *testing.T) {
	res, err := Fig5("icl", []float64{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "overhead") || !strings.Contains(out, "2 reps") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig6Render(t *testing.T) {
	res, err := Fig6([]float64{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, agent := range []string{"pmcd", "pmdaperfevent", "pmdalinux", "pmdaproc"} {
		if !strings.Contains(out, agent) {
			t.Errorf("agent %s missing", agent)
		}
	}
	if !strings.Contains(out, "1/1") {
		t.Error("interval notation missing")
	}
}

func TestFig2Render(t *testing.T) {
	res, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, name := range []string{"a_focus_cache", "b_subtree_icl", "c_level_threads", "d_cross_machine"} {
		if !strings.Contains(out, name) {
			t.Errorf("dashboard %s missing from render", name)
		}
	}
}

func TestScaleSelection(t *testing.T) {
	if matrixRows("adaptive", Small) >= matrixRows("adaptive", Full) {
		t.Error("full scale should be larger")
	}
	if matrixRows("human_gene1", Small) <= 0 {
		t.Error("unknown size")
	}
	if spmvRepeats(1000) <= spmvRepeats(100000000) {
		t.Error("repeats should shrink with matrix size")
	}
}

func TestSciNotation(t *testing.T) {
	if got := sciNotation(7040); got != "7.04E+03" {
		t.Errorf("sciNotation(7040) = %q", got)
	}
	if got := sciNotation(0); got != "0.00E+00" {
		t.Errorf("sciNotation(0) = %q", got)
	}
}
