package experiments

import (
	"fmt"
	"time"

	"pmove/internal/machine"
	"pmove/internal/resilience"
	"pmove/internal/telemetry"
	"pmove/internal/tsdb"
)

// ChaosRow is one configuration of the fault-injection study.
type ChaosRow struct {
	Mode     string // pipeline configuration under test
	Outcome  string // "completed" or the abort error
	Expected uint64
	Inserted uint64
	Spilled  uint64
	Replayed uint64
	Dropped  uint64 // journal evictions (bounded loss)
	Pending  uint64
	Retries  uint64
	Dials    uint64
	// EndLossPct is end-to-end loss: expected points that never reached
	// the host DB, whatever the mechanism (abort, eviction, backlog).
	EndLossPct float64
}

// ChaosResult is the graceful-degradation study: the same monitoring
// session shipped through a real TCP tsdb server that is partitioned for
// the middle third of the run.
type ChaosResult struct {
	Rows  []ChaosRow
	Ticks uint64
}

// ChaosStudy runs one monitoring session per pipeline mode against a
// live tsdb server behind a fault-injection proxy. The link is healthy
// for the first third of the ticks, partitioned for the second, healed
// for the last. Pipeline simulation costs are zeroed so every lost point
// is attributable to the injected outage:
//
//   - "baseline" never sees a fault — the control row.
//   - "default" hits the outage with the paper-faithful unbuffered
//     pipeline: the session aborts at the partition.
//   - "degraded" hits the same outage with graceful degradation on: the
//     session completes, the journal replays after the heal, and loss is
//     bounded by the journal cap.
func ChaosStudy(ticks uint64, freqHz float64) (*ChaosResult, error) {
	if ticks < 3 {
		return nil, fmt.Errorf("experiments: chaos needs at least 3 ticks, got %d", ticks)
	}
	res := &ChaosResult{Ticks: ticks}
	for _, mode := range []string{"baseline", "default", "degraded"} {
		row, err := chaosRun(mode, ticks, freqHz)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// chaosPolicy fails fast so the partitioned phase costs milliseconds per
// tick, not the default multi-second deadlines.
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		DialTimeout:  time.Second,
		ReadTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		MaxRetries:   1,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Seed:         11,
	}
}

func chaosRun(mode string, ticks uint64, freqHz float64) (*ChaosRow, error) {
	db := tsdb.New()
	srv := tsdb.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	proxy := resilience.NewProxy(addr, resilience.Faults{}, 17)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	client, err := tsdb.DialPolicy(paddr, chaosPolicy())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	_, pm, err := newTarget("icl", 7)
	if err != nil {
		return nil, err
	}
	cfg := telemetry.PipelineConfig{Seed: 1} // zero simulated costs
	cfg.Degraded = mode == "degraded"
	col := telemetry.NewCollector(nil, cfg)
	col.Sink = client
	sess, err := telemetry.NewSession(pm, col, telemetry.SessionConfig{
		Metrics: []string{machine.MetricCPUIdle}, FreqHz: freqHz, Tag: "chaos-" + mode,
	})
	if err != nil {
		return nil, err
	}

	third := ticks / 3
	row := &ChaosRow{Mode: mode, Outcome: "completed"}
	phases := []struct {
		ticks uint64
		fault func()
	}{
		{third, nil},
		{third, func() { proxy.Partition(); proxy.DropConns() }},
		{ticks - 2*third, func() { proxy.Heal() }},
	}
	for _, ph := range phases {
		if ph.fault != nil && mode != "baseline" {
			ph.fault()
		}
		if _, err := sess.RunTicks(ph.ticks); err != nil {
			row.Outcome = fmt.Sprintf("aborted: %.24s...", err)
			break
		}
	}
	row.Expected = col.Expected
	row.Inserted = col.Inserted
	row.Spilled = col.Spilled
	row.Replayed = col.Replayed
	row.Dropped = col.SpillDropped
	row.Pending = uint64(col.PendingSpill())
	ts := client.Stats()
	row.Retries, row.Dials = ts.Retries, ts.Dials
	if row.Expected > 0 {
		row.EndLossPct = 100 * float64(row.Expected-row.Inserted) / float64(row.Expected)
	}
	return row, nil
}

// Render formats the study as a table.
func (r *ChaosResult) Render() string {
	tw := newTableWriter(
		fmt.Sprintf("Chaos study: tsdb partitioned for the middle third of %d ticks", r.Ticks),
		"%-9s %-34s %9v %9v %8v %8v %7v %7v %7v %6v %7s\n",
		"Mode", "Outcome", "Expected", "Inserted", "Spilled", "Replayed", "Evicted", "Pending", "Retries", "Dials", "EndL%")
	for _, row := range r.Rows {
		tw.row(row.Mode, row.Outcome, row.Expected, row.Inserted,
			row.Spilled, row.Replayed, row.Dropped, row.Pending,
			row.Retries, row.Dials, fmt1(row.EndLossPct))
	}
	return tw.String()
}
