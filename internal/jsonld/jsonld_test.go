package jsonld

import (
	"testing"
	"testing/quick"
)

func gpuDoc() Document {
	// Trimmed Listing 4.
	d, err := Parse([]byte(`{
		"@type": "Interface",
		"@id": "dtmi:dt:cn1:gpu0;1",
		"@context": "dtmi:dtdl:context;2",
		"contents": [
			{"@id": "dtmi:dt:cn1:gpu0:property0;1", "@type": "Property",
			 "name": "model", "description": "NVIDIA Quadro GV100"},
			{"@id": "dtmi:dt:cn1:gpu0:telemetry1337;1", "@type": "SWTelemetry",
			 "name": "metric4", "SamplerName": "nvidia.memused", "DBName": "nvidia_memused"}
		]
	}`))
	if err != nil {
		panic(err)
	}
	return d
}

func TestDocumentAccessors(t *testing.T) {
	d := gpuDoc()
	if d.ID() != "dtmi:dt:cn1:gpu0;1" {
		t.Errorf("id = %q", d.ID())
	}
	if !d.HasType("Interface") || d.HasType("Telemetry") {
		t.Errorf("types = %v", d.Types())
	}
	if d.Context() != "dtmi:dtdl:context;2" {
		t.Errorf("context = %q", d.Context())
	}
}

func TestTypesList(t *testing.T) {
	d := Document{KeyType: []any{"A", "B"}}
	ts := d.Types()
	if len(ts) != 2 || ts[0] != "A" || ts[1] != "B" {
		t.Errorf("types = %v", ts)
	}
}

func TestExpandTriples(t *testing.T) {
	ts, err := ExpandTriples(gpuDoc())
	if err != nil {
		t.Fatal(err)
	}
	find := func(s, p string) []Triple {
		var out []Triple
		for _, tr := range ts {
			if tr.Subject == s && tr.Predicate == p {
				out = append(out, tr)
			}
		}
		return out
	}
	// Root type triple.
	if got := find("dtmi:dt:cn1:gpu0;1", "rdf:type"); len(got) != 1 || got[0].Object.IRI != "Interface" {
		t.Errorf("type triple: %v", got)
	}
	// Nested nodes are linked by @id.
	if got := find("dtmi:dt:cn1:gpu0;1", "contents"); len(got) != 2 {
		t.Errorf("contents links: %v", got)
	}
	// Nested property literal.
	if got := find("dtmi:dt:cn1:gpu0:property0;1", "description"); len(got) != 1 ||
		got[0].Object.Literal != "NVIDIA Quadro GV100" {
		t.Errorf("description literal: %v", got)
	}
}

func TestExpandNeedsID(t *testing.T) {
	if _, err := ExpandTriples(Document{"x": 1}); err == nil {
		t.Fatal("expected error for document without @id")
	}
}

func TestExpandBlankNodes(t *testing.T) {
	d := Document{
		KeyID:  "root",
		"meta": map[string]any{"k": "v"}, // no @id -> blank node
	}
	ts, err := ExpandTriples(d)
	if err != nil {
		t.Fatal(err)
	}
	var blank string
	for _, tr := range ts {
		if tr.Subject == "root" && tr.Predicate == "meta" {
			blank = tr.Object.IRI
		}
	}
	if blank == "" {
		t.Fatal("no blank node link generated")
	}
	found := false
	for _, tr := range ts {
		if tr.Subject == blank && tr.Predicate == "k" && tr.Object.Literal == "v" {
			found = true
		}
	}
	if !found {
		t.Error("blank node content missing")
	}
}

func TestExpandCycleSafe(t *testing.T) {
	// Two nodes referencing each other must not loop forever.
	inner := map[string]any{KeyID: "b"}
	outer := map[string]any{KeyID: "a", "link": inner}
	inner["back"] = outer
	if _, err := ExpandTriples(Document(outer)); err != nil {
		t.Fatal(err)
	}
}

func TestTermString(t *testing.T) {
	if (Term{IRI: "x"}).String() != "<x>" {
		t.Error("IRI rendering")
	}
	if (Term{Literal: "v", Datatype: "xsd:string"}).String() != `"v"^^xsd:string` {
		t.Error("typed literal rendering")
	}
}

func TestStoreAddAndDedup(t *testing.T) {
	s := NewStore()
	tr := Triple{Subject: "a", Predicate: "p", Object: Term{IRI: "b"}}
	if !s.Add(tr) {
		t.Fatal("first add should insert")
	}
	if s.Add(tr) {
		t.Fatal("duplicate add should be ignored")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStorePatternQueries(t *testing.T) {
	s := NewStore()
	s.Add(Triple{Subject: "a", Predicate: "contains", Object: Term{IRI: "b"}})
	s.Add(Triple{Subject: "a", Predicate: "contains", Object: Term{IRI: "c"}})
	s.Add(Triple{Subject: "b", Predicate: "name", Object: Term{Literal: "core0", Datatype: "xsd:string"}})
	if got := s.Query(Pattern{Subject: "a"}); len(got) != 2 {
		t.Errorf("subject query: %v", got)
	}
	if got := s.Query(Pattern{Predicate: "name"}); len(got) != 1 {
		t.Errorf("predicate query: %v", got)
	}
	if got := s.Query(Pattern{Object: "core0"}); len(got) != 1 {
		t.Errorf("literal object query: %v", got)
	}
	if got := s.Query(Pattern{Object: "b"}); len(got) != 1 {
		t.Errorf("IRI object query: %v", got)
	}
	if got := s.Query(Pattern{Subject: "a", Object: "c"}); len(got) != 1 {
		t.Errorf("combined query: %v", got)
	}
	if got := s.Query(Pattern{}); len(got) != 3 {
		t.Errorf("wildcard query: %v", got)
	}
}

func TestStoreNeighborsAndPath(t *testing.T) {
	s := NewStore()
	s.Add(Triple{Subject: "sys", Predicate: "contains", Object: Term{IRI: "sock"}})
	s.Add(Triple{Subject: "sock", Predicate: "contains", Object: Term{IRI: "core"}})
	s.Add(Triple{Subject: "core", Predicate: "contains", Object: Term{IRI: "thread"}})
	s.Add(Triple{Subject: "sys", Predicate: "name", Object: Term{Literal: "skx"}})
	if n := s.Neighbors("sys"); len(n) != 1 || n[0] != "sock" {
		t.Errorf("neighbors = %v", n)
	}
	if !s.PathExists("sys", "thread") {
		t.Error("path sys->thread should exist")
	}
	if s.PathExists("thread", "sys") {
		t.Error("reverse path should not exist in a tree")
	}
	if !s.PathExists("sys", "sys") {
		t.Error("trivial path should exist")
	}
}

func TestStoreDocumentIngest(t *testing.T) {
	s := NewStore()
	n, err := s.AddDocument(gpuDoc())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != s.Len() {
		t.Fatalf("inserted %d, stored %d", n, s.Len())
	}
	// Re-adding the same document inserts nothing.
	n2, err := s.AddDocument(gpuDoc())
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("duplicate ingest added %d triples", n2)
	}
}

func TestExpandDeterministicProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		d := Document{
			KeyID:   "doc",
			"alpha": int(a),
			"beta":  []any{float64(b), "s"},
		}
		t1, err1 := ExpandTriples(d)
		t2, err2 := ExpandTriples(d)
		if err1 != nil || err2 != nil || len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i].String() != t2[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	d := gpuDoc()
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != d.ID() {
		t.Errorf("round trip lost id: %q", got.ID())
	}
	ts1, _ := ExpandTriples(d)
	ts2, _ := ExpandTriples(got)
	if len(ts1) != len(ts2) {
		t.Errorf("round trip changed triple count: %d vs %d", len(ts1), len(ts2))
	}
}
