// Package jsonld implements the linked-data substrate of P-MoVE: JSON-LD
// documents (@context/@id/@type keywords), expansion of documents into RDF
// triples (subject, predicate, object), and an indexed triple store with
// pattern queries. The Knowledge Base serialises to JSON-LD (paper §II:
// "RDF is a standardized approach for organizing data as triples … JSON-LD,
// an RDF serialization, has unique attributes").
package jsonld

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Reserved JSON-LD keywords.
const (
	KeyContext = "@context"
	KeyID      = "@id"
	KeyType    = "@type"
	KeyValue   = "@value"
)

// Document is a JSON-LD node object.
type Document map[string]any

// ID returns the node's @id, or "".
func (d Document) ID() string {
	s, _ := d[KeyID].(string)
	return s
}

// Types returns the node's @type values (a string or list in JSON-LD).
func (d Document) Types() []string {
	switch t := d[KeyType].(type) {
	case string:
		return []string{t}
	case []any:
		var out []string
		for _, v := range t {
			if s, ok := v.(string); ok {
				out = append(out, s)
			}
		}
		return out
	case []string:
		return append([]string(nil), t...)
	}
	return nil
}

// HasType reports whether the node carries the type.
func (d Document) HasType(t string) bool {
	for _, x := range d.Types() {
		if x == t {
			return true
		}
	}
	return false
}

// Context returns the node's @context as a string (the DTDL usage), or "".
func (d Document) Context() string {
	s, _ := d[KeyContext].(string)
	return s
}

// Parse decodes a JSON-LD document.
func Parse(b []byte) (Document, error) {
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("jsonld: %w", err)
	}
	return d, nil
}

// Encode renders the document as canonical indented JSON.
func (d Document) Encode() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Term is an RDF term: an IRI or a literal.
type Term struct {
	// IRI is set for resource terms.
	IRI string
	// Literal is set (with IRI empty) for literal terms; Datatype tags the
	// literal's type when known.
	Literal  string
	Datatype string
}

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.IRI == "" }

// String renders the term in a Turtle-like syntax.
func (t Term) String() string {
	if t.IsLiteral() {
		if t.Datatype != "" {
			return fmt.Sprintf("%q^^%s", t.Literal, t.Datatype)
		}
		return fmt.Sprintf("%q", t.Literal)
	}
	return "<" + t.IRI + ">"
}

// Triple is one RDF statement.
type Triple struct {
	Subject   string // IRI
	Predicate string // IRI
	Object    Term
}

// String renders the triple Turtle-style.
func (t Triple) String() string {
	return fmt.Sprintf("<%s> <%s> %s .", t.Subject, t.Predicate, t.Object)
}

// rdfType is the predicate used for @type statements.
const rdfType = "rdf:type"

// ExpandTriples flattens a JSON-LD document into RDF triples. Nested node
// objects (maps with an @id) become linked subjects; nested objects
// without an @id get blank-node ids derived from the parent. Arrays expand
// element-wise. Keywords other than @id/@type do not generate triples.
func ExpandTriples(d Document) ([]Triple, error) {
	id := d.ID()
	if id == "" {
		return nil, fmt.Errorf("jsonld: document has no @id, cannot expand")
	}
	var out []Triple
	if err := expandNode(id, d, &out, map[string]bool{}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object.String() < b.Object.String()
	})
	return out, nil
}

func expandNode(subject string, node map[string]any, out *[]Triple, seen map[string]bool) error {
	if seen[subject] {
		return nil
	}
	seen[subject] = true
	keys := make([]string, 0, len(node))
	for k := range node {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	blank := 0
	for _, k := range keys {
		v := node[k]
		switch k {
		case KeyID, KeyContext:
			continue
		case KeyType:
			for _, t := range (Document(node)).Types() {
				*out = append(*out, Triple{Subject: subject, Predicate: rdfType, Object: Term{IRI: t}})
			}
			continue
		}
		if err := expandValue(subject, k, v, out, seen, &blank); err != nil {
			return err
		}
	}
	return nil
}

func expandValue(subject, pred string, v any, out *[]Triple, seen map[string]bool, blank *int) error {
	switch val := v.(type) {
	case nil:
		return nil
	case string:
		// DTMI-shaped strings are resource references (e.g. a
		// Relationship's "target"), so they expand as IRIs and keep the
		// graph navigable.
		if strings.HasPrefix(val, "dtmi:") {
			*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{IRI: val}})
			return nil
		}
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{Literal: val, Datatype: "xsd:string"}})
	case bool:
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{Literal: fmt.Sprintf("%t", val), Datatype: "xsd:boolean"}})
	case float64:
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{Literal: trimFloat(val), Datatype: "xsd:double"}})
	case int:
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{Literal: fmt.Sprintf("%d", val), Datatype: "xsd:integer"}})
	case int64:
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{Literal: fmt.Sprintf("%d", val), Datatype: "xsd:integer"}})
	case []any:
		for _, item := range val {
			if err := expandValue(subject, pred, item, out, seen, blank); err != nil {
				return err
			}
		}
	case map[string]any:
		child := Document(val)
		cid := child.ID()
		if cid == "" {
			*blank++
			cid = fmt.Sprintf("_:b-%s-%s-%d", subject, pred, *blank)
		}
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{IRI: cid}})
		return expandNode(cid, val, out, seen)
	case Document:
		return expandValue(subject, pred, map[string]any(val), out, seen, blank)
	default:
		// Fall back to the JSON rendering as an untyped literal.
		b, err := json.Marshal(val)
		if err != nil {
			return fmt.Errorf("jsonld: cannot expand value under %q: %w", pred, err)
		}
		*out = append(*out, Triple{Subject: subject, Predicate: pred, Object: Term{Literal: string(b)}})
	}
	return nil
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return strings.TrimSuffix(s, ".0")
}
