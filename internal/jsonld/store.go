package jsonld

import (
	"sort"
	"sync"
)

// Store is an indexed RDF triple store supporting pattern queries with
// wildcards. It provides the linked-data connections the KB exposes
// ("the establishment of linked-data connections, and the generation of
// queries for advanced analysis").
type Store struct {
	mu      sync.RWMutex
	triples []Triple
	// Indexes from subject / predicate / object key to triple positions.
	bySubject   map[string][]int
	byPredicate map[string][]int
	byObject    map[string][]int
	dedup       map[string]bool
}

// NewStore creates an empty triple store.
func NewStore() *Store {
	return &Store{
		bySubject:   map[string][]int{},
		byPredicate: map[string][]int{},
		byObject:    map[string][]int{},
		dedup:       map[string]bool{},
	}
}

// Add inserts a triple; duplicates are ignored. Returns true if inserted.
func (s *Store) Add(t Triple) bool {
	key := t.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dedup[key] {
		return false
	}
	s.dedup[key] = true
	i := len(s.triples)
	s.triples = append(s.triples, t)
	s.bySubject[t.Subject] = append(s.bySubject[t.Subject], i)
	s.byPredicate[t.Predicate] = append(s.byPredicate[t.Predicate], i)
	s.byObject[t.Object.String()] = append(s.byObject[t.Object.String()], i)
	return true
}

// AddDocument expands a JSON-LD document and inserts its triples,
// returning how many were new.
func (s *Store) AddDocument(d Document) (int, error) {
	ts, err := ExpandTriples(d)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range ts {
		if s.Add(t) {
			n++
		}
	}
	return n, nil
}

// Len returns the number of stored triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.triples)
}

// Pattern is a triple query; empty strings are wildcards. Object matches
// against either the IRI or the literal text.
type Pattern struct {
	Subject   string
	Predicate string
	Object    string
}

// Query returns all triples matching the pattern, in insertion order.
func (s *Store) Query(p Pattern) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Choose the most selective index available.
	var candidates []int
	switch {
	case p.Subject != "":
		candidates = s.bySubject[p.Subject]
	case p.Predicate != "":
		candidates = s.byPredicate[p.Predicate]
	case p.Object != "":
		// The object index is keyed by rendered term; IRIs hit the index,
		// literal matches fall back to a scan below.
		candidates = append(candidates, s.byObject["<"+p.Object+">"]...)
		litKey := Term{Literal: p.Object, Datatype: "xsd:string"}.String()
		candidates = append(candidates, s.byObject[litKey]...)
		for key, idxs := range s.byObject {
			if key != litKey && len(key) > 0 && key[0] == '"' {
				candidates = append(candidates, idxs...)
			}
		}
		sort.Ints(candidates)
	default:
		candidates = make([]int, len(s.triples))
		for i := range candidates {
			candidates[i] = i
		}
	}
	var out []Triple
	for _, i := range candidates {
		t := s.triples[i]
		if p.Subject != "" && t.Subject != p.Subject {
			continue
		}
		if p.Predicate != "" && t.Predicate != p.Predicate {
			continue
		}
		if p.Object != "" && t.Object.IRI != p.Object && t.Object.Literal != p.Object {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Subjects returns all distinct subjects, sorted.
func (s *Store) Subjects() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.bySubject))
	for k := range s.bySubject {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns the object IRIs reachable from a subject via any
// predicate — the link-following primitive for KB navigation.
func (s *Store) Neighbors(subject string) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range s.Query(Pattern{Subject: subject}) {
		if !t.Object.IsLiteral() && !seen[t.Object.IRI] {
			seen[t.Object.IRI] = true
			out = append(out, t.Object.IRI)
		}
	}
	sort.Strings(out)
	return out
}

// PathExists reports whether object `to` is reachable from subject `from`
// by following IRI links (BFS).
func (s *Store) PathExists(from, to string) bool {
	if from == to {
		return true
	}
	visited := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range s.Neighbors(cur) {
			if n == to {
				return true
			}
			if !visited[n] {
				visited[n] = true
				queue = append(queue, n)
			}
		}
	}
	return false
}
