package machine

import (
	"fmt"
	"sort"
)

// SWTelemetry names, following PCP's metric namespace (paper Listing 3
// queries kernel.percpu.cpu.idle and mem.numa.alloc_hit).
const (
	MetricCPUIdle      = "kernel.percpu.cpu.idle" // per hardware thread, fraction [0,1]
	MetricCPUUser      = "kernel.percpu.cpu.user"
	MetricMemUsed      = "mem.util.used" // bytes
	MetricMemFree      = "mem.util.free"
	MetricNUMAAllocHit = "mem.numa.alloc_hit" // per NUMA node, pages/sec
	MetricLoadAvg      = "kernel.all.load"
	MetricNProcs       = "kernel.all.nprocs"
	MetricDiskWrites   = "disk.all.write_bytes" // bytes/sec
	MetricNetOut       = "network.interface.out.bytes"
)

// InstanceValue is one (instance, value) pair of an instance-domain metric,
// e.g. ("_cpu0", 0.97) for kernel.percpu.cpu.idle.
type InstanceValue struct {
	Instance string
	Value    float64
}

// SWSample is a snapshot of one software metric across its instance domain.
type SWSample struct {
	Metric string
	Values []InstanceValue
}

// SWMetricNames returns all software metrics the machine exports, sorted.
func SWMetricNames() []string {
	names := []string{
		MetricCPUIdle, MetricCPUUser, MetricMemUsed, MetricMemFree,
		MetricNUMAAllocHit, MetricLoadAvg, MetricNProcs, MetricDiskWrites,
		MetricNetOut,
	}
	sort.Strings(names)
	return names
}

// SampleSW reads the current value of a software metric across its
// instance domain. Values are derived from the machine's activity: busy
// hardware threads report low idle fractions, memory usage follows the
// working sets of active executions, NUMA hit rates follow their pinning.
func (m *Machine) SampleSW(metric string) (SWSample, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	busy := map[int]float64{} // hw thread -> utilisation
	var wssTotal int64
	numaTraffic := map[int]float64{}
	for _, e := range m.active {
		for _, hw := range e.Pinning {
			busy[hw] = 1.0
		}
		wssTotal += e.Spec.WorkingSetBytes * int64(len(e.Pinning))
		bytesPerSec := e.GBps * 1e9
		for _, hw := range e.Pinning {
			nd := m.sys.NUMAOf(m.coreOf(hw))
			if nd >= 0 {
				numaTraffic[nd] += bytesPerSec / float64(len(e.Pinning))
			}
		}
	}

	switch metric {
	case MetricCPUIdle, MetricCPUUser:
		s := SWSample{Metric: metric}
		for _, t := range m.sys.AllThreads() {
			util := busy[t.ID]
			// Baseline OS noise keeps idle just under 1.
			util += 0.01
			if util > 1 {
				util = 1
			}
			v := util
			if metric == MetricCPUIdle {
				v = 1 - util
			}
			s.Values = append(s.Values, InstanceValue{Instance: fmt.Sprintf("_cpu%d", t.ID), Value: v})
		}
		return s, nil
	case MetricMemUsed, MetricMemFree:
		base := float64(m.sys.Memory.TotalBytes) * 0.03 // OS footprint
		used := base + float64(wssTotal)
		if used > float64(m.sys.Memory.TotalBytes) {
			used = float64(m.sys.Memory.TotalBytes)
		}
		v := used
		if metric == MetricMemFree {
			v = float64(m.sys.Memory.TotalBytes) - used
		}
		return SWSample{Metric: metric, Values: []InstanceValue{{Instance: "", Value: v}}}, nil
	case MetricNUMAAllocHit:
		s := SWSample{Metric: metric}
		for _, n := range m.sys.NUMA {
			pages := numaTraffic[n.ID] / 4096
			s.Values = append(s.Values, InstanceValue{Instance: fmt.Sprintf("_node%d", n.ID), Value: pages})
		}
		return s, nil
	case MetricLoadAvg:
		load := 0.0
		for _, u := range busy {
			load += u
		}
		return SWSample{Metric: metric, Values: []InstanceValue{{Instance: "1 minute", Value: load}}}, nil
	case MetricNProcs:
		n := 140 + len(m.active) // OS daemons + observed kernels
		return SWSample{Metric: metric, Values: []InstanceValue{{Instance: "", Value: float64(n)}}}, nil
	case MetricDiskWrites:
		v := 0.0
		for _, tr := range numaTraffic {
			v += tr * 0.001 // page-cache writeback trickle
		}
		return SWSample{Metric: metric, Values: []InstanceValue{{Instance: "", Value: v}}}, nil
	case MetricNetOut:
		s := SWSample{Metric: metric}
		for _, nic := range m.sys.NICs {
			s.Values = append(s.Values, InstanceValue{Instance: nic.Name, Value: 1200}) // keepalive chatter
		}
		return s, nil
	}
	return SWSample{}, fmt.Errorf("machine: unknown software metric %q", metric)
}

// InstanceDomainSize returns the number of instances a metric reports,
// which determines data points per report (Table III's #mt × domain).
func (m *Machine) InstanceDomainSize(metric string) int {
	s, err := m.SampleSW(metric)
	if err != nil {
		// Hardware counter metrics report one value per hardware thread.
		return m.sys.NumThreads()
	}
	return len(s.Values)
}
