package machine

import (
	"testing"
	"testing/quick"

	"pmove/internal/topo"
)

// Property tests on the execution engine's timing model.

func TestDurationLinearInIterationsProperty(t *testing.T) {
	// Doubling the iteration count doubles the duration (up to the ±0.3%
	// run-to-run noise), for any reasonable kernel shape.
	sys := topo.MustPreset(topo.PresetICL)
	f := func(loads, fp uint8, wssExp uint8) bool {
		spec := WorkloadSpec{
			Name:  "prop",
			Iters: 1_000_000,
			FPInstr: map[topo.ISA]float64{
				topo.ISAScalar: float64(fp%8) + 1,
			},
			Loads:           float64(loads%4) + 1,
			MemISA:          topo.ISAScalar,
			OtherInstr:      1,
			WorkingSetBytes: 1 << (10 + wssExp%16), // 1KB .. 32MB
		}
		m1, err := New(sys, Config{Seed: 1, Noiseless: true})
		if err != nil {
			return false
		}
		e1, err := m1.Run(spec, []int{0})
		if err != nil {
			return false
		}
		spec2 := spec
		spec2.Iters *= 2
		m2, err := New(sys, Config{Seed: 1, Noiseless: true})
		if err != nil {
			return false
		}
		e2, err := m2.Run(spec2, []int{0})
		if err != nil {
			return false
		}
		ratio := e2.Duration / e1.Duration
		return ratio > 1.98 && ratio < 2.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTruthNonNegativeAndFiniteProperty(t *testing.T) {
	sys := topo.MustPreset(topo.PresetZEN3)
	f := func(loads, stores, fp uint8) bool {
		spec := WorkloadSpec{
			Name:  "prop",
			Iters: 100_000,
			FPInstr: map[topo.ISA]float64{
				topo.ISAAVX2: float64(fp % 4),
			},
			Loads:           float64(loads % 4),
			Stores:          float64(stores % 3),
			MemISA:          topo.ISAAVX2,
			OtherInstr:      1,
			WorkingSetBytes: 64 << 10,
		}
		m, err := New(sys, Config{Seed: 9, Noiseless: true})
		if err != nil {
			return false
		}
		exec, err := m.Run(spec, []int{0, 1})
		if err != nil {
			return false
		}
		for _, tc := range exec.TruthCounts() {
			for _, v := range tc.Events {
				// uint64: non-negative by construction; bound sanity.
				if v > 1<<60 {
					return false
				}
			}
		}
		return exec.Duration > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClockSegmentationProperty(t *testing.T) {
	// Advancing in arbitrary small steps deposits the same totals as one
	// big jump (the fractional-remainder accounting must not drift).
	sys := topo.MustPreset(topo.PresetICL)
	mkExec := func(m *Machine) *Execution {
		spec := WorkloadSpec{
			Name: "seg", Iters: 10_000_000,
			FPInstr: map[topo.ISA]float64{topo.ISAScalar: 1},
			Loads:   1, MemISA: topo.ISAScalar, WorkingSetBytes: 16 << 10,
		}
		e, err := m.Launch(spec, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	mA, _ := New(sys, Config{Seed: 4, Noiseless: true})
	eA := mkExec(mA)
	if err := mA.AdvanceTo(eA.End() + 0.01); err != nil {
		t.Fatal(err)
	}
	mB, _ := New(sys, Config{Seed: 4, Noiseless: true})
	eB := mkExec(mB)
	steps := 137
	for i := 1; i <= steps; i++ {
		target := (eB.End() + 0.01) * float64(i) / float64(steps)
		if err := mB.AdvanceTo(target); err != nil {
			t.Fatal(err)
		}
	}
	tpA, _ := mA.ThreadPMU(0)
	tpB, _ := mB.ThreadPMU(0)
	for _, ev := range []string{"MEM_INST_RETIRED:ALL_LOADS", "FP_ARITH:SCALAR_DOUBLE"} {
		a, b := tpA.Truth(ev), tpB.Truth(ev)
		diff := int64(a) - int64(b)
		if diff < 0 {
			diff = -diff
		}
		// Within the integer rounding of the segment count.
		if diff > int64(steps) {
			t.Errorf("%s: one-jump %d vs segmented %d (diff %d)", ev, a, b, diff)
		}
	}
}
