package machine

import (
	"math"
	"testing"

	"pmove/internal/pmu"
	"pmove/internal/topo"
)

func newTestMachine(t *testing.T, preset string) *Machine {
	t.Helper()
	m, err := New(topo.MustPreset(preset), Config{Seed: 1, Noiseless: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func simpleSpec(iters uint64) WorkloadSpec {
	return WorkloadSpec{
		Name:    "test",
		Iters:   iters,
		FPInstr: map[topo.ISA]float64{topo.ISAScalar: 1},
		Loads:   1, Stores: 0,
		MemISA:          topo.ISAScalar,
		OtherInstr:      1,
		WorkingSetBytes: 16 << 10,
	}
}

func TestWorkloadValidate(t *testing.T) {
	bad := []WorkloadSpec{
		{},
		{Name: "x"},
		{Name: "x", Iters: 1, Loads: -1, MemISA: topo.ISAScalar},
		{Name: "x", Iters: 1, MemISA: topo.ISAScalar, HitOverride: map[topo.CacheLevel]float64{topo.L1: 0.3}},
		{Name: "x", Iters: 1},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d not rejected", i)
		}
	}
	good := simpleSpec(10)
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	// ddot-like: 2 loads, 1 FMA -> 2w flops / 16w bytes = 0.125.
	spec := WorkloadSpec{
		Name: "ddot", Iters: 1,
		FPInstr: map[topo.ISA]float64{topo.ISAAVX512: 1}, FMA: true,
		Loads: 2, MemISA: topo.ISAAVX512,
	}
	if ai := spec.ArithmeticIntensity(); math.Abs(ai-0.125) > 1e-12 {
		t.Errorf("AI = %f, want 0.125", ai)
	}
}

func TestRunProducesTimeAndEvents(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	if err := m.ProgramAll([]string{pmu.IntelCycles, pmu.IntelLoads, pmu.IntelScalarDouble}); err != nil {
		t.Fatal(err)
	}
	exec, err := m.Run(simpleSpec(1_000_000), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Duration <= 0 {
		t.Fatal("execution has no duration")
	}
	if m.Now() < exec.End()-1e-9 {
		t.Fatal("clock did not advance to execution end")
	}
	tp, _ := m.ThreadPMU(0)
	loads, err := tp.Read(pmu.IntelLoads)
	if err != nil {
		t.Fatal(err)
	}
	// 1 load per iteration, 1M iterations per thread.
	if loads < 990_000 || loads > 1_010_000 {
		t.Errorf("loads = %d, want ~1e6", loads)
	}
	fp, _ := tp.Read(pmu.IntelScalarDouble)
	if fp < 990_000 || fp > 1_010_000 {
		t.Errorf("scalar FP = %d, want ~1e6", fp)
	}
}

func TestEventTruthMatchesRates(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	exec, err := m.Run(simpleSpec(500_000), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	truth := exec.TruthCounts()
	if len(truth) != 1 {
		t.Fatalf("want 1 thread, got %d", len(truth))
	}
	if v := truth[0].Events[pmu.IntelLoads]; v < 495_000 || v > 505_000 {
		t.Errorf("truth loads = %d", v)
	}
	if exec.TotalTruth(pmu.IntelLoads) != truth[0].Events[pmu.IntelLoads] {
		t.Error("TotalTruth disagrees with per-thread truth")
	}
}

func TestLaunchRejectsBadPinning(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	if _, err := m.Launch(simpleSpec(10), nil); err == nil {
		t.Error("empty pinning accepted")
	}
	if _, err := m.Launch(simpleSpec(10), []int{999}); err == nil {
		t.Error("invalid thread id accepted")
	}
	if _, err := m.Launch(simpleSpec(10), []int{0, 0}); err == nil {
		t.Error("duplicate pinning accepted")
	}
}

func TestClockMonotonic(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	if err := m.Advance(1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.AdvanceTo(0.5); err == nil {
		t.Fatal("advancing backwards should error")
	}
	if err := m.AdvanceTo(1.0); err != nil {
		t.Fatalf("advancing to the current time should be a no-op: %v", err)
	}
}

func TestWaitIsNoOpWhenPast(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	exec, err := m.Launch(simpleSpec(1000), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(exec.Duration * 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(exec); err != nil {
		t.Fatalf("wait after completion should succeed: %v", err)
	}
}

func TestBaselineActivityOnIdleSystem(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	if err := m.ProgramAll([]string{pmu.IntelCycles, pmu.IntelInstructions}); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(2.0); err != nil {
		t.Fatal(err)
	}
	tp, _ := m.ThreadPMU(3)
	cyc, _ := tp.Read(pmu.IntelCycles)
	if cyc == 0 {
		t.Error("an idle system should still retire cycles (never-zero events)")
	}
}

func TestRAPLAccumulatesIdlePower(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	if err := m.Advance(1.0); err != nil {
		t.Fatal(err)
	}
	r, _ := m.RAPL(0)
	uj := r.Truth("pkg")
	idleW := float64(uj) / 1e6
	want := m.System().CPU.IdleWatts
	if math.Abs(idleW-want) > want*0.05 {
		t.Errorf("idle power %.1f W, want ~%.1f W", idleW, want)
	}
}

func TestActivePowerExceedsIdle(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	spec := simpleSpec(50_000_000)
	exec, err := m.Run(spec, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := m.RAPL(0)
	watts := float64(r.Truth("pkg")) / 1e6 / exec.Duration
	if watts <= m.System().CPU.IdleWatts*1.1 {
		t.Errorf("active power %.1f W should clearly exceed idle %.1f W", watts, m.System().CPU.IdleWatts)
	}
	if watts > m.System().CPU.TDPWatts*1.05 {
		t.Errorf("power %.1f W exceeds TDP %.1f W", watts, m.System().CPU.TDPWatts)
	}
}

func TestMoreThreadsFasterWallClock(t *testing.T) {
	spec := WorkloadSpec{
		Name: "scale", Iters: 10_000_000,
		FPInstr: map[topo.ISA]float64{topo.ISAAVX2: 2}, FMA: true,
		Loads: 1, MemISA: topo.ISAAVX2, WorkingSetBytes: 16 << 10,
	}
	m1 := newTestMachine(t, topo.PresetCSL)
	e1, err := m1.Run(spec, mustPin(t, m1.System(), 1))
	if err != nil {
		t.Fatal(err)
	}
	m8 := newTestMachine(t, topo.PresetCSL)
	e8, err := m8.Run(spec, mustPin(t, m8.System(), 8))
	if err != nil {
		t.Fatal(err)
	}
	// Same per-thread iteration count => same duration, 8x aggregate GFLOPS.
	if e8.GFLOPS < e1.GFLOPS*5 {
		t.Errorf("8 threads: %.1f GFLOPS vs 1 thread %.1f — poor scaling", e8.GFLOPS, e1.GFLOPS)
	}
}

func mustPin(t *testing.T, sys *topo.System, n int) []int {
	t.Helper()
	pin, err := topo.Pin(sys, topo.PinBalanced, n)
	if err != nil {
		t.Fatal(err)
	}
	return pin
}

func TestDVFSFrequencyDropsUnderLoad(t *testing.T) {
	m := newTestMachine(t, topo.PresetCSL)
	sys := m.System()
	e1, err := m.Launch(simpleSpec(1000), mustPin(t, sys, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(e1); err != nil {
		t.Fatal(err)
	}
	eAll, err := m.Launch(simpleSpec(1000), mustPin(t, sys, sys.NumCores()))
	if err != nil {
		t.Fatal(err)
	}
	if eAll.FreqGHz >= e1.FreqGHz {
		t.Errorf("full-machine frequency %.2f should be below single-core turbo %.2f", eAll.FreqGHz, e1.FreqGHz)
	}
	if e1.FreqGHz > sys.CPU.TurboGHz || eAll.FreqGHz < sys.CPU.BaseGHz*0.99 {
		t.Errorf("frequencies out of DVFS range: %f %f", e1.FreqGHz, eAll.FreqGHz)
	}
}

func TestCacheLevelAffectsPerformance(t *testing.T) {
	mkSpec := func(wss int64) WorkloadSpec {
		return WorkloadSpec{
			Name: "bw", Iters: 10_000_000,
			FPInstr: map[topo.ISA]float64{topo.ISAAVX512: 0.01},
			Loads:   2, Stores: 1, MemISA: topo.ISAAVX512,
			WorkingSetBytes: wss,
		}
	}
	sys := topo.MustPreset(topo.PresetCSL)
	var prev float64 = math.Inf(1)
	l1, _ := sys.Cache(topo.L1)
	l2, _ := sys.Cache(topo.L2)
	l3, _ := sys.Cache(topo.L3)
	for _, wss := range []int64{l1.SizeBytes / 2, l2.SizeBytes / 2, l3.SizeBytes / 2, l3.SizeBytes * 4} {
		m := newTestMachine(t, topo.PresetCSL)
		e, err := m.Run(mkSpec(wss), mustPin(t, sys, 4))
		if err != nil {
			t.Fatal(err)
		}
		if e.GBps >= prev {
			t.Errorf("bandwidth should drop as working set grows: wss=%d got %.1f GB/s prev %.1f", wss, e.GBps, prev)
		}
		prev = e.GBps
	}
}

func TestChargeSamplingCostExtendsExecution(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	exec, err := m.Launch(simpleSpec(100_000_000), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	before := exec.Duration
	for i := 0; i < 10; i++ {
		m.ChargeSamplingCost(64)
	}
	if exec.Duration <= before {
		t.Error("sampling cost should extend the execution")
	}
	// 640 reads at ~2µs each, shared across 16 hardware threads, against a
	// ~10ms kernel: the overhead must stay small.
	if (exec.Duration-before)/before > 0.03 {
		t.Errorf("sampling overhead %.4f%% implausibly large", (exec.Duration-before)/before*100)
	}
}

func TestFMADoubleCountingOnIntel(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	spec := WorkloadSpec{
		Name: "fma", Iters: 1_000_000,
		FPInstr: map[topo.ISA]float64{topo.ISAAVX512: 1}, FMA: true,
		Loads: 1, MemISA: topo.ISAAVX512, WorkingSetBytes: 8 << 10,
	}
	exec, err := m.Run(spec, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Intel FP_ARITH counters increment twice per FMA instruction.
	got := exec.TotalTruth(pmu.Intel512PackedDbl)
	if got < 1_990_000 || got > 2_010_000 {
		t.Errorf("FP_ARITH 512B count = %d, want ~2e6 (FMA double counting)", got)
	}
}

func TestAMDFlopsCountFlops(t *testing.T) {
	m := newTestMachine(t, topo.PresetZEN3)
	spec := WorkloadSpec{
		Name: "fma", Iters: 1_000_000,
		FPInstr: map[topo.ISA]float64{topo.ISAAVX2: 1}, FMA: true,
		Loads: 1, MemISA: topo.ISAAVX2, WorkingSetBytes: 8 << 10,
	}
	exec, err := m.Run(spec, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Zen3 reports FLOPs directly: 4 lanes x 2 (FMA) = 8 per instruction.
	got := exec.TotalTruth(pmu.AMDFlopsAny)
	if got < 7_990_000 || got > 8_010_000 {
		t.Errorf("RETIRED_SSE_AVX_FLOPS = %d, want ~8e6", got)
	}
}

func TestSWSampleCPUIdleReflectsLoad(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	s, err := m.SampleSW(MetricCPUIdle)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 16 {
		t.Fatalf("idle domain size %d, want 16", len(s.Values))
	}
	for _, iv := range s.Values {
		if iv.Value < 0.9 {
			t.Errorf("idle system should be ~idle, %s = %f", iv.Instance, iv.Value)
		}
	}
	if _, err := m.Launch(simpleSpec(100_000_000), []int{0}); err != nil {
		t.Fatal(err)
	}
	s2, _ := m.SampleSW(MetricCPUIdle)
	for _, iv := range s2.Values {
		if iv.Instance == "_cpu0" && iv.Value > 0.1 {
			t.Errorf("busy cpu0 should report low idle, got %f", iv.Value)
		}
	}
}

func TestSWSampleNUMAFollowsPinning(t *testing.T) {
	m := newTestMachine(t, topo.PresetSKX)
	// Pin to socket 1 cores only (core 22 => thread 22).
	spec := simpleSpec(1_000_000_000)
	spec.WorkingSetBytes = 1 << 30
	if _, err := m.Launch(spec, []int{22, 23}); err != nil {
		t.Fatal(err)
	}
	s, err := m.SampleSW(MetricNUMAAllocHit)
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[string]float64{}
	for _, iv := range s.Values {
		byNode[iv.Instance] = iv.Value
	}
	if byNode["_node1"] <= byNode["_node0"] {
		t.Errorf("traffic should land on node1: %v", byNode)
	}
}

func TestSWSampleUnknownMetric(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	if _, err := m.SampleSW("no.such.metric"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMemUsedGrowsWithWorkingSet(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	s0, _ := m.SampleSW(MetricMemUsed)
	base := s0.Values[0].Value
	spec := simpleSpec(1_000_000_000)
	spec.WorkingSetBytes = 4 << 30
	if _, err := m.Launch(spec, []int{0}); err != nil {
		t.Fatal(err)
	}
	s1, _ := m.SampleSW(MetricMemUsed)
	if s1.Values[0].Value <= base {
		t.Error("memory usage should grow with an active working set")
	}
}

func TestCompletedExecutionsOrdered(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	a, err := m.Launch(simpleSpec(1000), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Launch(simpleSpec(2_000_000), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AdvanceTo(math.Max(a.End(), b.End()) + 0.001); err != nil {
		t.Fatal(err)
	}
	done := m.CompletedExecutions()
	if len(done) != 2 {
		t.Fatalf("want 2 completed, got %d", len(done))
	}
	if done[0].End() > done[1].End() {
		t.Error("completed executions not in completion order")
	}
	if len(m.ActiveExecutions()) != 0 {
		t.Error("no executions should remain active")
	}
}

func TestRunToRunVariance(t *testing.T) {
	// Two runs of the same spec on the same machine differ slightly (the
	// Fig 5 negative-overhead mechanism) but by less than 1%.
	m := newTestMachine(t, topo.PresetICL)
	e1, err := m.Run(simpleSpec(10_000_000), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.Run(simpleSpec(10_000_000), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(e1.Duration-e2.Duration) / e1.Duration
	if rel == 0 {
		t.Error("expected run-to-run variance")
	}
	if rel > 0.01 {
		t.Errorf("variance %.4f too large", rel)
	}
}

func TestLaunchSkewedImbalance(t *testing.T) {
	m := newTestMachine(t, topo.PresetICL)
	spec := simpleSpec(1_000_000)
	factors := []float64{4, 1, 1, 1}
	exec, err := m.LaunchSkewed(spec, []int{0, 1, 2, 3}, factors)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(exec); err != nil {
		t.Fatal(err)
	}
	// The slowest thread sets the wall time: ~4x the uniform duration.
	m2 := newTestMachine(t, topo.PresetICL)
	uniform, err := m2.Run(spec, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := exec.Duration / uniform.Duration
	if ratio < 3.8 || ratio > 4.2 {
		t.Errorf("skewed duration ratio %.2f, want ~4", ratio)
	}
	// Per-thread event totals follow the factors.
	truth := exec.TruthCounts()
	heavy := truth[0].Events[pmu.IntelLoads]
	light := truth[1].Events[pmu.IntelLoads]
	if heavy < 3*light {
		t.Errorf("heavy thread %d loads vs light %d — skew lost", heavy, light)
	}
	// Validation.
	if _, err := m.LaunchSkewed(spec, []int{4, 5}, []float64{1}); err == nil {
		t.Error("mismatched factor count accepted")
	}
	if _, err := m.LaunchSkewed(spec, []int{6}, []float64{-1}); err == nil {
		t.Error("negative factor accepted")
	}
}
