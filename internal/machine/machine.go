// Package machine is the analytic execution engine standing in for the
// physical servers of Table II. It advances a virtual clock, runs workload
// specifications under a roofline-style timing model, deposits ground-truth
// PMU events on per-thread counter files, accumulates RAPL energy, and
// exposes software telemetry (CPU utilisation, memory, NUMA statistics)
// for the PCP-like agents to sample.
//
// Time is virtual: experiments that take minutes of wall time in the paper
// replay in milliseconds, while sampling, losses and overhead retain the
// same relationships to frequency and instance-domain size.
package machine

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pmove/internal/pmu"
	"pmove/internal/topo"
)

// Machine binds a topology to PMU state and a virtual clock.
type Machine struct {
	mu  sync.Mutex
	sys *topo.System
	cat *pmu.Catalog

	now     float64 // virtual seconds since machine start
	threads map[int]*pmu.ThreadPMU
	rapl    map[int]*pmu.RAPL // per socket

	active []*Execution
	done   []*Execution

	noise *pmu.NoiseModel

	// Baseline activity (an "empty" system still retires instructions).
	baselineCyclesPerSec float64
	baselineInstrPerSec  float64

	// Sampling overhead: each counter read steals a few microseconds of
	// target CPU (paper §V-C measures ~0.01% overhead). Interference is
	// modelled by extending active executions' durations.
	readCostSec float64
	// interference jitter source
	seq uint64
}

// Config tunes the machine model.
type Config struct {
	// Seed drives the PMU noise model and run-to-run variance. Machines
	// with the same seed replay identically.
	Seed uint64
	// Noiseless disables PMU read noise (ground-truth configuration).
	Noiseless bool
	// ReadCostMicros is the per-counter-read CPU cost in microseconds.
	// Zero selects the default (2µs).
	ReadCostMicros float64
}

// New builds a machine for a system.
func New(sys *topo.System, cfg Config) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	cat, err := pmu.CatalogFor(sys.CPU.Microarch)
	if err != nil {
		return nil, err
	}
	var noise *pmu.NoiseModel
	if cfg.Noiseless {
		noise = pmu.Noiseless()
	} else {
		noise = pmu.NewNoiseModel(cfg.Seed)
	}
	readCost := cfg.ReadCostMicros
	if readCost == 0 {
		readCost = 2.0
	}
	m := &Machine{
		sys:     sys,
		cat:     cat,
		threads: make(map[int]*pmu.ThreadPMU),
		rapl:    make(map[int]*pmu.RAPL),
		noise:   noise,

		baselineCyclesPerSec: sys.CPU.BaseGHz * 1e9 * 0.01, // ~1% residency when idle
		baselineInstrPerSec:  sys.CPU.BaseGHz * 1e9 * 0.004,
		readCostSec:          readCost * 1e-6,
		seq:                  cfg.Seed,
	}
	smt := sys.CPU.ThreadsPerCore > 1
	for _, t := range sys.AllThreads() {
		m.threads[t.ID] = pmu.NewThreadPMU(cat, smt, noise)
	}
	for _, sk := range sys.Sockets {
		r := pmu.NewRAPL(noise)
		// Domains exist from power-on; they accumulate from zero.
		r.AddMicrojoules("pkg", 0)
		if sys.CPU.Vendor == topo.VendorAMD {
			r.AddMicrojoules("dram", 0)
		}
		m.rapl[sk.ID] = r
	}
	return m, nil
}

// System returns the underlying topology.
func (m *Machine) System() *topo.System { return m.sys }

// Catalog returns the PMU event catalog of the machine's CPU.
func (m *Machine) Catalog() *pmu.Catalog { return m.cat }

// Now returns the current virtual time in seconds.
func (m *Machine) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// ThreadPMU returns the counter file of a hardware thread.
func (m *Machine) ThreadPMU(hwThread int) (*pmu.ThreadPMU, error) {
	t, ok := m.threads[hwThread]
	if !ok {
		return nil, fmt.Errorf("machine: no hardware thread %d", hwThread)
	}
	return t, nil
}

// RAPL returns the energy counters of a socket.
func (m *Machine) RAPL(socket int) (*pmu.RAPL, error) {
	r, ok := m.rapl[socket]
	if !ok {
		return nil, fmt.Errorf("machine: no socket %d", socket)
	}
	return r, nil
}

// ProgramAll programs the same event list on every hardware thread.
func (m *Machine) ProgramAll(events []string) error {
	for id, t := range m.threads {
		if err := t.Program(events); err != nil {
			return fmt.Errorf("machine: thread %d: %w", id, err)
		}
	}
	return nil
}

// frequency models DVFS: few active cores run at turbo, a fully loaded
// machine at base clock.
func (m *Machine) frequency(activeCores int) float64 {
	c := m.sys.CPU
	if activeCores <= 0 {
		return c.BaseGHz
	}
	frac := float64(activeCores) / float64(m.sys.NumCores())
	if frac > 1 {
		frac = 1
	}
	return c.TurboGHz - (c.TurboGHz-c.BaseGHz)*frac
}

// socketOf maps a hardware thread to its socket.
func (m *Machine) socketOf(hwThread int) int {
	for _, sk := range m.sys.Sockets {
		for _, c := range sk.Cores {
			for _, t := range c.Threads {
				if t.ID == hwThread {
					return sk.ID
				}
			}
		}
	}
	return -1
}

func (m *Machine) coreOf(hwThread int) int {
	for _, sk := range m.sys.Sockets {
		for _, c := range sk.Cores {
			for _, t := range c.Threads {
				if t.ID == hwThread {
					return c.ID
				}
			}
		}
	}
	return -1
}

// Launch starts a workload pinned to the given hardware threads and
// returns its execution handle. Time does not advance; use AdvanceTo/Wait.
func (m *Machine) Launch(spec WorkloadSpec, pinning []int) (*Execution, error) {
	return m.LaunchSkewed(spec, pinning, nil)
}

// LaunchSkewed starts a workload whose per-thread work is scaled by
// factors (one per pinned thread; nil means uniform). A barrier at the
// end makes the slowest thread set the wall time while light threads
// produce proportionally fewer events — the load-imbalance signature the
// paper's introduction cites as a dominant variability source and that
// the anomaly package's Imbalance detector recognises.
func (m *Machine) LaunchSkewed(spec WorkloadSpec, pinning []int, factors []float64) (*Execution, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(pinning) == 0 {
		return nil, fmt.Errorf("machine: launch %s: empty pinning", spec.Name)
	}
	seen := map[int]bool{}
	for _, hw := range pinning {
		if _, ok := m.threads[hw]; !ok {
			return nil, fmt.Errorf("machine: launch %s: no hardware thread %d", spec.Name, hw)
		}
		if seen[hw] {
			return nil, fmt.Errorf("machine: launch %s: hardware thread %d pinned twice", spec.Name, hw)
		}
		seen[hw] = true
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	// Distinct cores in use (SMT siblings share execution resources).
	coreSet := map[int]bool{}
	sockCores := map[int]map[int]bool{}
	for _, hw := range pinning {
		c := m.coreOf(hw)
		coreSet[c] = true
		s := m.socketOf(hw)
		if sockCores[s] == nil {
			sockCores[s] = map[int]bool{}
		}
		sockCores[s][c] = true
	}
	activeCores := len(coreSet)
	freq := m.frequency(activeCores)

	hits := spec.hitFractions(m.sys)

	// Per-core effective time per iteration, in cycles.
	computeCyc := 0.0
	fpTotal := 0.0
	for _, instr := range spec.FPInstr {
		fpTotal += instr
	}
	// FP issue throughput: FMAUnits vector pipes per core.
	if m.sys.CPU.FMAUnits > 0 {
		computeCyc = fpTotal / float64(m.sys.CPU.FMAUnits)
	}
	// Non-FP instructions issue 4-wide.
	computeCyc += spec.OtherInstr / 4.0
	// Divides are long-latency and unpipelined.
	computeCyc += spec.DivOps * 4.0

	bytesPerIter := spec.BytesPerIter()
	memCyc := 0.0
	smtPerCore := float64(len(pinning)) / float64(activeCores)
	for lvl, frac := range hits {
		if frac == 0 {
			continue
		}
		var bw float64
		if lvl == topo.DRAM {
			bw = m.sys.Memory.BWBytesPerCycPerCore
			// Socket-level saturation: aggregate DRAM bandwidth is capped.
			for s, cores := range sockCores {
				_ = s
				agg := m.sys.Memory.SocketBWGBs * 1e9 / (freq * 1e9) // bytes/cycle aggregate
				per := agg / float64(len(cores))
				if per < bw {
					bw = per
				}
			}
		} else if c, ok := m.sys.Cache(lvl); ok {
			bw = c.BWBytesPerCycPerCore
		} else {
			bw = m.sys.Memory.BWBytesPerCycPerCore
		}
		if bw <= 0 {
			return nil, fmt.Errorf("machine: launch %s: level %s has no bandwidth", spec.Name, lvl)
		}
		memCyc += bytesPerIter * frac / bw
	}
	// Memory instructions are also bounded by the core's load/store issue
	// width (~2 loads + 1 store per cycle), which is what starves scalar
	// codes even when cache bandwidth is ample.
	memIssueCyc := (spec.Loads + spec.Stores) / 3.0
	// SMT siblings share core bandwidth and pipes.
	cyclesPerIter := math.Max(math.Max(computeCyc, memCyc), memIssueCyc) * smtPerCore
	if cyclesPerIter <= 0 {
		cyclesPerIter = spec.InstrPerIter() / 4.0 * smtPerCore
		if cyclesPerIter <= 0 {
			return nil, fmt.Errorf("machine: launch %s: zero work per iteration", spec.Name)
		}
	}
	// Per-thread work skew: the slowest thread sets the wall time.
	if factors != nil && len(factors) != len(pinning) {
		return nil, fmt.Errorf("machine: launch %s: %d work factors for %d threads", spec.Name, len(factors), len(pinning))
	}
	maxFactor := 1.0
	for _, f := range factors {
		if f <= 0 {
			return nil, fmt.Errorf("machine: launch %s: non-positive work factor %g", spec.Name, f)
		}
		if f > maxFactor {
			maxFactor = f
		}
	}
	totalCycles := cyclesPerIter * float64(spec.Iters) * maxFactor
	duration := totalCycles / (freq * 1e9)

	// Run-to-run variance: real kernels vary between repetitions (this is
	// what makes some Fig 5 overheads negative). ±0.3% deterministic noise.
	m.seq++
	u := float64((splitmix(m.seq)>>11))/float64(1<<53)*2 - 1
	duration *= 1 + u*0.003

	exec := &Execution{
		Spec:            spec,
		Pinning:         append([]int(nil), pinning...),
		Start:           m.now,
		Duration:        duration,
		rates:           make([]map[string]float64, len(pinning)),
		deposited:       make([]map[string]float64, len(pinning)),
		socketPower:     map[int]float64{},
		FreqGHz:         freq,
		CyclesPerThread: totalCycles,
	}

	// Event rates per thread (events/second). A skewed thread performs
	// factor_i x the base iterations, smeared over the shared (barrier)
	// duration.
	perSec := 1 / duration
	for i := range pinning {
		f := 1.0
		if factors != nil {
			f = factors[i]
		}
		r := map[string]float64{}
		it := float64(spec.Iters) * f * perSec // iterations per second
		m.depositRates(r, spec, it, totalCycles*perSec*f/maxFactor, hits)
		exec.rates[i] = r
		exec.deposited[i] = map[string]float64{}
	}

	// Power: idle is accounted separately by socket baseline; an execution
	// adds dynamic power proportional to issue intensity and DRAM traffic.
	ipc := spec.InstrPerIter() / cyclesPerIter
	for s, cores := range sockCores {
		frac := float64(len(cores)) / float64(m.sys.CPU.CoresPerSocket)
		dyn := (m.sys.CPU.TDPWatts - m.sys.CPU.IdleWatts) * frac * math.Min(1, 0.35+0.22*ipc)
		exec.socketPower[s] = dyn
	}

	workUnits := float64(len(pinning))
	if factors != nil {
		workUnits = 0
		for _, f := range factors {
			workUnits += f
		}
	}
	exec.AI = spec.ArithmeticIntensity()
	exec.GFLOPS = spec.FlopsPerIter() * float64(spec.Iters) * workUnits / duration / 1e9
	exec.GBps = bytesPerIter * float64(spec.Iters) * workUnits / duration / 1e9

	m.active = append(m.active, exec)
	return exec, nil
}

// depositRates fills r with events/second given iterations/second.
func (m *Machine) depositRates(r map[string]float64, spec WorkloadSpec, itersPerSec, cyclesPerSec float64, hits map[topo.CacheLevel]float64) {
	isIntel := m.sys.CPU.Vendor == topo.VendorIntel
	lineBytes := 64.0
	if c, ok := m.sys.Cache(topo.L1); ok {
		lineBytes = float64(c.LineBytes)
	}
	bytesPerIter := spec.BytesPerIter()

	if isIntel {
		// Intel FP_ARITH counters increment twice for FMA instructions, so
		// FLOPs = Σ count × vector width holds exactly (the convention the
		// live-CARM GFLOPS formula of §IV-B2 relies on).
		fpMult := 1.0
		if spec.FMA {
			fpMult = 2.0
		}
		r[pmu.IntelCycles] = cyclesPerSec
		r[pmu.IntelInstructions] = spec.InstrPerIter() * itersPerSec
		r[pmu.IntelUops] = spec.InstrPerIter() * 1.12 * itersPerSec
		r[pmu.IntelLoads] = spec.Loads * itersPerSec
		r[pmu.IntelStores] = spec.Stores * itersPerSec
		for isa, instr := range spec.FPInstr {
			var ev string
			switch isa {
			case topo.ISAScalar:
				ev = pmu.IntelScalarDouble
			case topo.ISASSE:
				ev = pmu.Intel128PackedDbl
			case topo.ISAAVX2:
				ev = pmu.Intel256PackedDbl
			case topo.ISAAVX512:
				ev = pmu.Intel512PackedDbl
			}
			if ev != "" && instr > 0 {
				r[ev] += instr * fpMult * itersPerSec
			}
		}
		r[pmu.IntelFPDiv] = spec.DivOps * 4.0 * itersPerSec
		// Miss events: traffic that is *not* served by a level misses it.
		missL1 := hits[topo.L2] + hits[topo.L3] + hits[topo.DRAM]
		missL2 := hits[topo.L3] + hits[topo.DRAM]
		missL3 := hits[topo.DRAM]
		linesPerIter := bytesPerIter / lineBytes
		r[pmu.IntelL1DMiss] = linesPerIter * missL1 * itersPerSec
		r[pmu.IntelL2Miss] = linesPerIter * missL2 * itersPerSec
		r[pmu.IntelLLCMiss] = linesPerIter * missL3 * itersPerSec
		r[pmu.IntelLLCRef] = linesPerIter * (missL2 + 0.01) * itersPerSec
	} else {
		mult := 1.0
		if spec.FMA {
			mult = 2.0
		}
		r[pmu.AMDCycles] = cyclesPerSec
		r[pmu.AMDInstructions] = spec.InstrPerIter() * itersPerSec
		r[pmu.AMDUops] = spec.InstrPerIter() * 1.2 * itersPerSec
		r[pmu.AMDLoads] = spec.Loads * itersPerSec
		r[pmu.AMDStores] = spec.Stores * itersPerSec
		flops := 0.0
		for isa, instr := range spec.FPInstr {
			flops += instr * float64(isa.VectorWidth()) * mult
		}
		r[pmu.AMDFlopsAny] = flops * itersPerSec
		r[pmu.AMDFPDiv] = spec.DivOps * itersPerSec
		missL1 := hits[topo.L2] + hits[topo.L3] + hits[topo.DRAM]
		missL2 := hits[topo.L3] + hits[topo.DRAM]
		missL3 := hits[topo.DRAM]
		linesPerIter := bytesPerIter / lineBytes
		r[pmu.AMDL1DMiss] = linesPerIter * missL1 * itersPerSec
		r[pmu.AMDL2Miss] = linesPerIter * missL2 * itersPerSec
		r[pmu.AMDLLCMiss] = linesPerIter * missL3 * itersPerSec
		r[pmu.AMDLLCRetired] = linesPerIter * (missL2 + 0.01) * itersPerSec
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AdvanceTo moves the virtual clock forward to time t (seconds), accruing
// events on PMU counter files and energy on RAPL domains. Advancing
// backwards is an error.
func (m *Machine) AdvanceTo(t float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.advanceToLocked(t)
}

func (m *Machine) advanceToLocked(t float64) error {
	if t < m.now {
		return fmt.Errorf("machine: cannot advance clock backwards (%.9f < %.9f)", t, m.now)
	}
	if t == m.now {
		return nil
	}
	// Accrue in segments delimited by execution end times so rates switch
	// off exactly at completion boundaries.
	for m.now < t {
		segEnd := t
		for _, e := range m.active {
			if end := e.End(); end > m.now && end < segEnd {
				segEnd = end
			}
		}
		dt := segEnd - m.now
		m.accrue(dt)
		m.now = segEnd
		// Retire finished executions.
		var still []*Execution
		for _, e := range m.active {
			if e.End() <= m.now+1e-12 {
				m.done = append(m.done, e)
			} else {
				still = append(still, e)
			}
		}
		m.active = still
	}
	return nil
}

// accrue deposits dt seconds of activity. Caller holds the lock.
func (m *Machine) accrue(dt float64) {
	isIntel := m.sys.CPU.Vendor == topo.VendorIntel
	cycEv, insEv := pmu.IntelCycles, pmu.IntelInstructions
	if !isIntel {
		cycEv, insEv = pmu.AMDCycles, pmu.AMDInstructions
	}
	// Baseline activity on every thread.
	for _, tp := range m.threads {
		tp.Add(cycEv, uint64(m.baselineCyclesPerSec*dt))
		tp.Add(insEv, uint64(m.baselineInstrPerSec*dt))
	}
	// Idle package power on every socket.
	for _, r := range m.rapl {
		r.AddMicrojoules("pkg", uint64(m.sys.CPU.IdleWatts*dt*1e6))
		if m.sys.CPU.Vendor == topo.VendorAMD {
			r.AddMicrojoules("dram", uint64(m.sys.CPU.IdleWatts*0.25*dt*1e6))
		}
	}
	// Active executions.
	for _, e := range m.active {
		for i, hw := range e.Pinning {
			tp := m.threads[hw]
			for ev, rate := range e.rates[i] {
				// Carry fractional remainders so totals stay exact.
				acc := e.deposited[i][ev] + rate*dt
				whole := math.Floor(acc)
				e.deposited[i][ev] = acc - whole
				if whole > 0 {
					tp.Add(ev, uint64(whole))
				}
			}
		}
		for s, w := range e.socketPower {
			if r, ok := m.rapl[s]; ok {
				r.AddMicrojoules("pkg", uint64(w*dt*1e6))
				if m.sys.CPU.Vendor == topo.VendorAMD {
					r.AddMicrojoules("dram", uint64(w*0.3*dt*1e6))
				}
			}
		}
	}
}

// Advance moves the clock forward by dt seconds.
func (m *Machine) Advance(dt float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.advanceToLocked(m.now + dt)
}

// Wait advances the clock to the end of the execution; if sampling or
// other activity already moved the clock past it, Wait is a no-op.
func (m *Machine) Wait(e *Execution) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.End() <= m.now {
		return nil
	}
	return m.advanceToLocked(e.End())
}

// Run is Launch followed by Wait: the whole kernel executes and the clock
// lands at its completion.
func (m *Machine) Run(spec WorkloadSpec, pinning []int) (*Execution, error) {
	e, err := m.Launch(spec, pinning)
	if err != nil {
		return nil, err
	}
	if err := m.Wait(e); err != nil {
		return nil, err
	}
	return e, nil
}

// ChargeSamplingCost models the interference of n counter reads occurring
// now: every active execution is stretched by the stolen CPU time. This is
// the mechanism behind the Fig 5 overhead experiment.
func (m *Machine) ChargeSamplingCost(reads int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	steal := float64(reads) * m.readCostSec
	for _, e := range m.active {
		// The stolen time is shared across the machine; per-execution
		// impact scales with the fraction of threads it occupies.
		frac := float64(len(e.Pinning)) / float64(m.sys.NumThreads())
		e.Duration += steal * frac
	}
}

// ActiveExecutions returns currently running executions.
func (m *Machine) ActiveExecutions() []*Execution {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Execution(nil), m.active...)
}

// CompletedExecutions returns finished executions in completion order.
func (m *Machine) CompletedExecutions() []*Execution {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]*Execution(nil), m.done...)
	sort.Slice(out, func(i, j int) bool { return out[i].End() < out[j].End() })
	return out
}
