package machine

import (
	"fmt"

	"pmove/internal/topo"
)

// WorkloadSpec describes the per-thread inner loop of a kernel in terms the
// analytic execution model understands: instruction mix, memory traffic and
// locality. The kernels and spmv packages construct these; the machine
// turns them into time, PMU events and energy.
type WorkloadSpec struct {
	Name string
	// Iters is the number of inner-loop iterations each thread executes.
	Iters uint64
	// FPInstr counts floating-point instructions per iteration per ISA
	// class. An AVX-512 instruction performs 8 double-precision FLOPs
	// (16 with FMA).
	FPInstr map[topo.ISA]float64
	// FMA marks the FP instructions as fused multiply-adds (2 FLOPs/lane).
	FMA bool
	// Loads and Stores are memory instructions per iteration.
	Loads, Stores float64
	// MemISA is the ISA class of the memory instructions; it determines
	// bytes per memory instruction (scalar=8B, sse=16B, avx2=32B,
	// avx512=64B).
	MemISA topo.ISA
	// OtherInstr is non-FP, non-memory instructions per iteration
	// (address arithmetic, branches).
	OtherInstr float64
	// DivOps is FP divide operations per iteration (FP_DIV events).
	DivOps float64
	// ExtraBytesPerIter is memory traffic beyond the instruction-implied
	// bytes: cache lines pulled for scattered (gather-style) accesses that
	// use only part of each line. SpMV's x-vector gathers set this.
	ExtraBytesPerIter float64
	// WorkingSetBytes is the per-thread working set; unless HitOverride is
	// given, cache residency (and therefore effective bandwidth) is derived
	// from it.
	WorkingSetBytes int64
	// HitOverride, when non-nil, gives the fraction of memory traffic
	// served by each level (must sum to ≈1). SpMV uses this to express the
	// locality effect of reorderings.
	HitOverride map[topo.CacheLevel]float64
}

// Validate checks internal consistency.
func (w *WorkloadSpec) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("machine: workload has no name")
	}
	if w.Iters == 0 {
		return fmt.Errorf("machine: workload %s has zero iterations", w.Name)
	}
	if w.Loads < 0 || w.Stores < 0 || w.OtherInstr < 0 || w.DivOps < 0 {
		return fmt.Errorf("machine: workload %s has negative instruction counts", w.Name)
	}
	for isa, c := range w.FPInstr {
		if c < 0 {
			return fmt.Errorf("machine: workload %s has negative FP count for %s", w.Name, isa)
		}
	}
	if w.HitOverride != nil {
		sum := 0.0
		for lvl, f := range w.HitOverride {
			if f < 0 {
				return fmt.Errorf("machine: workload %s hit fraction for %s is negative", w.Name, lvl)
			}
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			return fmt.Errorf("machine: workload %s hit fractions sum to %.3f, want 1", w.Name, sum)
		}
	}
	if w.MemISA == "" {
		return fmt.Errorf("machine: workload %s has no memory ISA", w.Name)
	}
	return nil
}

// memBytesPerInstr returns bytes moved per memory instruction.
func memBytesPerInstr(isa topo.ISA) float64 { return 8 * float64(isa.VectorWidth()) }

// FlopsPerIter returns double-precision FLOPs per iteration.
func (w *WorkloadSpec) FlopsPerIter() float64 {
	mult := 1.0
	if w.FMA {
		mult = 2.0
	}
	total := 0.0
	for isa, instr := range w.FPInstr {
		total += instr * float64(isa.VectorWidth()) * mult
	}
	return total
}

// BytesPerIter returns bytes of memory traffic per iteration, including
// line-granularity gather waste.
func (w *WorkloadSpec) BytesPerIter() float64 {
	return (w.Loads+w.Stores)*memBytesPerInstr(w.MemISA) + w.ExtraBytesPerIter
}

// ArithmeticIntensity returns FLOPs per byte, the x-axis of a CARM plot.
func (w *WorkloadSpec) ArithmeticIntensity() float64 {
	b := w.BytesPerIter()
	if b == 0 {
		return 0
	}
	return w.FlopsPerIter() / b
}

// InstrPerIter returns total instructions per iteration.
func (w *WorkloadSpec) InstrPerIter() float64 {
	fp := 0.0
	for _, c := range w.FPInstr {
		fp += c
	}
	return fp + w.Loads + w.Stores + w.OtherInstr
}

// hitFractions returns the fraction of memory traffic served at each level,
// either from the override or derived from the working set: traffic is
// served by the innermost level that contains the working set, with small
// leak fractions to outer levels modelling cold misses and conflict misses.
func (w *WorkloadSpec) hitFractions(sys *topo.System) map[topo.CacheLevel]float64 {
	if w.HitOverride != nil {
		return w.HitOverride
	}
	lvl := sys.CacheLevelFor(w.WorkingSetBytes)
	h := map[topo.CacheLevel]float64{}
	const leak = 0.02 // cold/conflict leakage to the next level out
	switch lvl {
	case topo.L1:
		h[topo.L1] = 1 - 2*leak
		h[topo.L2] = leak
		h[topo.L3] = leak / 2
		h[topo.DRAM] = leak / 2
	case topo.L2:
		h[topo.L1] = 0 // streaming through L1
		h[topo.L2] = 1 - leak
		h[topo.L3] = leak / 2
		h[topo.DRAM] = leak / 2
	case topo.L3:
		h[topo.L2] = 0
		h[topo.L3] = 1 - leak
		h[topo.DRAM] = leak
	default:
		h[topo.DRAM] = 1
	}
	return h
}

// ThreadCounts is the exact (ground-truth) event production of one thread
// over a full execution, before PMU noise.
type ThreadCounts struct {
	HWThread int
	Events   map[string]uint64
}

// Execution is a completed or in-flight run of a workload on a machine.
type Execution struct {
	Spec     WorkloadSpec
	Pinning  []int   // hardware thread ids, one per software thread
	Start    float64 // virtual seconds
	Duration float64 // virtual seconds
	// rates[i] is events/second produced on Pinning[i].
	rates []map[string]float64
	// socketPower[s] is the extra package power (W) this execution adds on
	// socket s while running.
	socketPower map[int]float64
	// deposited tracks fractional event remainders during lazy accrual.
	deposited []map[string]float64

	// Derived performance summary.
	GFLOPS          float64
	GBps            float64
	AI              float64
	FreqGHz         float64
	CyclesPerThread float64
}

// End returns the virtual end time.
func (e *Execution) End() float64 { return e.Start + e.Duration }

// TruthCounts returns the exact per-thread event totals for the whole
// execution (what likwid-bench would report as ground truth).
func (e *Execution) TruthCounts() []ThreadCounts {
	out := make([]ThreadCounts, len(e.Pinning))
	for i, hw := range e.Pinning {
		ev := make(map[string]uint64, len(e.rates[i]))
		for name, rate := range e.rates[i] {
			ev[name] = uint64(rate*e.Duration + 0.5)
		}
		out[i] = ThreadCounts{HWThread: hw, Events: ev}
	}
	return out
}

// TotalTruth sums an event across all threads of the execution.
func (e *Execution) TotalTruth(event string) uint64 {
	var sum uint64
	for _, tc := range e.TruthCounts() {
		sum += tc.Events[event]
	}
	return sum
}
