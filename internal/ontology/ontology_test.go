package ontology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateDTMI(t *testing.T) {
	good := []string{
		"dtmi:dt:cn1:gpu0;1",
		"dtmi:dtdl:context;2",
		"dtmi:dt:skx:socket0:property0;1",
		"dtmi:_x;10",
	}
	for _, id := range good {
		if err := ValidateDTMI(id); err != nil {
			t.Errorf("%q rejected: %v", id, err)
		}
	}
	bad := []string{
		"",
		"dtmi:;1",
		"dtmi:dt:cn1:gpu0",   // no version
		"dtmi:dt:cn1:gpu0;0", // version must be >= 1
		"dtmi:dt:1gpu;1",     // segment starts with digit
		"dtmi:dt:gpu 0;1",    // whitespace
		"dt:cn1:gpu0;1",      // missing scheme
		"dtmi:dt:gpu-0;1",    // dash not allowed
	}
	for _, id := range bad {
		if err := ValidateDTMI(id); err == nil {
			t.Errorf("%q accepted", id)
		}
	}
}

func TestDTMIBuilder(t *testing.T) {
	id, err := DTMI(1, "cn1", "gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if id != "dtmi:dt:cn1:gpu0;1" {
		t.Errorf("id = %q", id)
	}
	if _, err := DTMI(1); err == nil {
		t.Error("empty segments accepted")
	}
	if _, err := DTMI(1, "bad segment"); err == nil {
		t.Error("invalid segment accepted")
	}
}

func TestInterfaceBuilders(t *testing.T) {
	i, err := NewInterface("dtmi:dt:cn1:gpu0;1", "NVIDIA Quadro GV100")
	if err != nil {
		t.Fatal(err)
	}
	i.AddProperty("model", "NVIDIA Quadro GV100")
	i.AddProperty("memory", "34359 Mb")
	i.AddSWTelemetry("metric4", "nvidia.memused", "nvidia_memused", "_gpu0", "GPU memory in use")
	i.AddHWTelemetry("metric137", "ncu", "gpu__compute_memory_access_throughput",
		"ncu_gpu__compute_memory_access_throughput", "_gpu0", "Compute Memory Pipeline")
	i.AddRelationship("contains", "dtmi:dt:cn1:gpu0:sm0;1")
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := i.Property("model"); got != "NVIDIA Quadro GV100" {
		t.Errorf("property model = %v", got)
	}
	if i.Property("nope") != nil {
		t.Error("missing property should be nil")
	}
	if tels := i.Telemetries(""); len(tels) != 2 {
		t.Errorf("telemetries = %d, want 2", len(tels))
	}
	if tels := i.Telemetries(ClassHWTelemetry); len(tels) != 1 || tels[0].PMUName != "ncu" {
		t.Errorf("hw telemetries = %v", tels)
	}
	if rels := i.Relationships(); len(rels) != 1 || rels[0].Target != "dtmi:dt:cn1:gpu0:sm0;1" {
		t.Errorf("relationships = %v", rels)
	}
	// Auto-derived content ids must be valid DTMIs.
	for _, c := range i.Contents {
		if c.ID != "" {
			if err := ValidateDTMI(c.ID); err != nil {
				t.Errorf("content id %q invalid: %v", c.ID, err)
			}
			if !strings.HasPrefix(c.ID, "dtmi:dt:cn1:gpu0:") {
				t.Errorf("content id %q not under parent", c.ID)
			}
		}
	}
}

func TestInterfaceValidation(t *testing.T) {
	mk := func() *Interface {
		i, _ := NewInterface("dtmi:dt:h:sys0;1", "sys")
		i.AddProperty("p", 1)
		return i
	}
	// Wrong @type.
	i := mk()
	i.Type = "Telemetry"
	if err := i.Validate(); err == nil {
		t.Error("wrong @type accepted")
	}
	// Wrong context.
	i = mk()
	i.Context = "dtmi:other;1"
	if err := i.Validate(); err == nil {
		t.Error("wrong @context accepted")
	}
	// Telemetry without sampler.
	i = mk()
	i.Contents = append(i.Contents, Content{Type: ClassSWTelemetry, Name: "t"})
	if err := i.Validate(); err == nil {
		t.Error("telemetry without SamplerName accepted")
	}
	// Relationship without target.
	i = mk()
	i.Contents = append(i.Contents, Content{Type: ClassRelationship, Name: "contains"})
	if err := i.Validate(); err == nil {
		t.Error("relationship without target accepted")
	}
	// Duplicate property name.
	i = mk()
	i.AddProperty("p", 2)
	if err := i.Validate(); err == nil {
		t.Error("duplicate property name accepted")
	}
	// Duplicate relationships with the same target.
	i = mk()
	i.AddRelationship("contains", "dtmi:dt:h:c0;1")
	i.AddRelationship("contains", "dtmi:dt:h:c0;1")
	if err := i.Validate(); err == nil {
		t.Error("duplicate relationship target accepted")
	}
	// Same-name relationships with distinct targets are fine (the KB's
	// "contains" edges).
	i = mk()
	i.AddRelationship("contains", "dtmi:dt:h:c0;1")
	i.AddRelationship("contains", "dtmi:dt:h:c1;1")
	if err := i.Validate(); err != nil {
		t.Errorf("distinct-target contains rejected: %v", err)
	}
	// Unknown content class.
	i = mk()
	i.Contents = append(i.Contents, Content{Type: "Gadget", Name: "g"})
	if err := i.Validate(); err == nil {
		t.Error("unknown content class accepted")
	}
}

func TestParseInterfaceListing4(t *testing.T) {
	// A faithful subset of the paper's Listing 4.
	src := `{
		"@type": "Interface",
		"@id": "dtmi:dt:cn1:gpu0;1",
		"@context": "dtmi:dtdl:context;2",
		"contents": [
			{"@id": "dtmi:dt:cn1:gpu0:property0;1", "@type": "Property",
			 "name": "model", "description": "NVIDIA Quadro GV100"},
			{"@id": "dtmi:dt:cn1:gpu0:telemetry1404;1", "@type": "HWTelemetry",
			 "name": "metric137", "PMUName": "ncu",
			 "SamplerName": "gpu__compute_memory_access_throughput",
			 "DBName": "ncu_gpu__compute_memory_access_throughput",
			 "FieldName": "_gpu0",
			 "description": "Compute Memory Pipeline: throughput of internal activity within caches and DRAM"}
		]
	}`
	i, err := ParseInterface([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if i.Property("model") != "NVIDIA Quadro GV100" {
		t.Error("model property lost")
	}
	hw := i.Telemetries(ClassHWTelemetry)
	if len(hw) != 1 || hw[0].FieldName != "_gpu0" {
		t.Errorf("hw telemetry = %+v", hw)
	}
	// Round trip through JSON-LD.
	doc, err := i.MarshalJSONLD()
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID() != i.ID {
		t.Error("JSON-LD id mismatch")
	}
}

func TestParseInterfaceRejectsInvalid(t *testing.T) {
	if _, err := ParseInterface([]byte(`{"@type":"Interface"}`)); err == nil {
		t.Error("interface without id/context accepted")
	}
	if _, err := ParseInterface([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestHierarchyRules(t *testing.T) {
	if !CanContain(KindSystem, KindSocket) {
		t.Error("system should contain sockets")
	}
	if !CanContain(KindCore, KindThread) {
		t.Error("core should contain threads")
	}
	if CanContain(KindThread, KindSocket) {
		t.Error("thread must not contain a socket")
	}
	if CanContain(KindGPU, KindGPU) {
		t.Error("gpu must not contain a gpu")
	}
	for _, k := range Kinds() {
		if !ValidKind(k) {
			t.Errorf("kind %s not valid", k)
		}
		for _, c := range ChildKinds(k) {
			if !CanContain(k, c) {
				t.Errorf("ChildKinds(%s) includes non-containable %s", k, c)
			}
		}
	}
	if ValidKind("quantum_widget") {
		t.Error("unknown kind accepted")
	}
}

func TestComponentID(t *testing.T) {
	id, err := ComponentID("cn1", KindGPU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id != "dtmi:dt:cn1:gpu0;1" {
		t.Errorf("id = %q, want the Listing 4 form", id)
	}
	if _, err := ComponentID("cn1", "widget", 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestComponentIDProperty(t *testing.T) {
	f := func(ord uint8, kindIdx uint8) bool {
		kinds := Kinds()
		k := kinds[int(kindIdx)%len(kinds)]
		id, err := ComponentID("host1", k, int(ord))
		if err != nil {
			return false
		}
		return ValidateDTMI(id) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommand(t *testing.T) {
	i, _ := NewInterface("dtmi:dt:h:sys0;1", "sys")
	i.AddCommand("reboot", &CommandPayload{Name: "delay", Schema: "integer"}, nil)
	i.AddCommand("ping", nil, &CommandPayload{Name: "rtt", Schema: "double"})
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
	cmds := i.Commands()
	if len(cmds) != 2 || cmds[0].Name != "reboot" {
		t.Fatalf("commands: %+v", cmds)
	}
	// Round trip through JSON.
	doc, err := i.MarshalJSONLD()
	if err != nil {
		t.Fatal(err)
	}
	b, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseInterface(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Commands()) != 2 {
		t.Error("commands lost in round trip")
	}
	if got.Commands()[0].Request == nil || got.Commands()[0].Request.Schema != "integer" {
		t.Error("request payload lost")
	}
}
