package ontology

import (
	"fmt"
	"sort"
)

// ComponentKind enumerates the HPC-specific ontology's component classes —
// "each hardware component that can be monitored, produce metrics or
// affect the overall system performance" (paper §III-C).
type ComponentKind string

// Component kinds of the HPC ontology, ordered root to leaf.
const (
	KindSystem  ComponentKind = "system"
	KindSocket  ComponentKind = "socket"
	KindNUMA    ComponentKind = "numa"
	KindCore    ComponentKind = "core"
	KindThread  ComponentKind = "thread"
	KindCache   ComponentKind = "cache"
	KindMemory  ComponentKind = "memory"
	KindDisk    ComponentKind = "disk"
	KindNIC     ComponentKind = "nic"
	KindGPU     ComponentKind = "gpu"
	KindProcess ComponentKind = "process"
)

// Kinds returns all component kinds in hierarchy order.
func Kinds() []ComponentKind {
	return []ComponentKind{
		KindSystem, KindSocket, KindNUMA, KindCore, KindThread, KindCache,
		KindMemory, KindDisk, KindNIC, KindGPU, KindProcess,
	}
}

// RelContains is the downward relationship name in the component tree.
const RelContains = "contains"

// RelRuns links a thread/core to a process observed on it.
const RelRuns = "runs"

// hierarchy encodes which kinds may contain which — the schema constraint
// of the HPC ontology.
var hierarchy = map[ComponentKind][]ComponentKind{
	KindSystem:  {KindSocket, KindMemory, KindDisk, KindNIC, KindGPU, KindProcess},
	KindSocket:  {KindNUMA, KindCore, KindCache},
	KindNUMA:    {KindCore, KindMemory},
	KindCore:    {KindThread, KindCache},
	KindThread:  {},
	KindCache:   {},
	KindMemory:  {},
	KindDisk:    {},
	KindNIC:     {},
	KindGPU:     {},
	KindProcess: {},
}

// CanContain reports whether the ontology allows a `contains` edge from
// parent kind to child kind.
func CanContain(parent, child ComponentKind) bool {
	for _, k := range hierarchy[parent] {
		if k == child {
			return true
		}
	}
	return false
}

// ChildKinds lists the kinds a parent may contain, sorted.
func ChildKinds(parent ComponentKind) []ComponentKind {
	out := append([]ComponentKind(nil), hierarchy[parent]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValidKind reports whether k is part of the ontology.
func ValidKind(k ComponentKind) bool {
	_, ok := hierarchy[k]
	return ok
}

// ComponentID builds the DTMI for a component instance:
// dtmi:dt:<host>:<kind><ordinal>;1, matching Listing 4's
// "dtmi:dt:cn1:gpu0;1".
func ComponentID(host string, kind ComponentKind, ordinal int) (string, error) {
	if !ValidKind(kind) {
		return "", fmt.Errorf("ontology: unknown component kind %q", kind)
	}
	return DTMI(1, host, fmt.Sprintf("%s%d", kind, ordinal))
}

// EntryKind enumerates the live entry classes P-MoVE attaches to the KB
// (paper §III-C): benchmark results and observations, plus the re-instantiated
// process interface.
type EntryKind string

// Entry kinds.
const (
	EntryBenchmark   EntryKind = "BenchmarkInterface"
	EntryBenchResult EntryKind = "BenchmarkResult"
	EntryObservation EntryKind = "ObservationInterface"
	EntryProcess     EntryKind = "ProcessInterface"
	// SUPERDB variants (paper §III-E).
	EntryTSObservation  EntryKind = "TSObservationInterface"
	EntryAGGObservation EntryKind = "AGGObservationInterface"
)
