// Package ontology implements the DTDL (Digital Twins Definition
// Language) metamodel P-MoVE builds its HPC ontology on: the six classes
// Interface, Telemetry, Property, Command, Relationship and data schemas
// (paper §II). "Each Interface represents a standalone (sub)twin", and the
// KB models an HPC system as a hierarchy of such twins: node, socket, CPU,
// GPU, memory subsystem and so on, each a distinct digital twin.
//
// Telemetry is split into the paper's two subclasses: SWTelemetry
// (software/system-state metrics, always sampled at low frequency) and
// HWTelemetry (PMU metrics, sampled at high frequency during kernel
// executions).
package ontology

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"pmove/internal/jsonld"
)

// DTDLContext is the @context of every DTDL v2 interface.
const DTDLContext = "dtmi:dtdl:context;2"

// Metamodel class names.
const (
	ClassInterface    = "Interface"
	ClassProperty     = "Property"
	ClassTelemetry    = "Telemetry"
	ClassSWTelemetry  = "SWTelemetry" // P-MoVE extension of Telemetry
	ClassHWTelemetry  = "HWTelemetry" // P-MoVE extension of Telemetry
	ClassCommand      = "Command"
	ClassRelationship = "Relationship"
	ClassComponent    = "Component"
)

// dtmiRe validates Digital Twin Model Identifiers:
// "dtmi:" segment(":" segment)* ";" version, where segments start with a
// letter or underscore. P-MoVE's scheme also allows digits inside segments
// (e.g. dtmi:dt:cn1:gpu0;1 of Listing 4).
var dtmiRe = regexp.MustCompile(`^dtmi:[A-Za-z_][A-Za-z0-9_]*(?::[A-Za-z_][A-Za-z0-9_]*)*;[1-9][0-9]*$`)

// ValidateDTMI checks a digital twin model identifier.
func ValidateDTMI(id string) error {
	if !dtmiRe.MatchString(id) {
		return fmt.Errorf("ontology: invalid DTMI %q", id)
	}
	if len(id) > 2048 {
		return fmt.Errorf("ontology: DTMI longer than 2048 characters")
	}
	return nil
}

// DTMI builds a P-MoVE identifier: dtmi:dt:<segments...>;<version>.
func DTMI(version int, segments ...string) (string, error) {
	if len(segments) == 0 {
		return "", fmt.Errorf("ontology: DTMI needs at least one segment")
	}
	id := "dtmi:dt:" + strings.Join(segments, ":") + fmt.Sprintf(";%d", version)
	if err := ValidateDTMI(id); err != nil {
		return "", err
	}
	return id, nil
}

// MustDTMI is DTMI for compile-time-known segments; panics on error.
func MustDTMI(version int, segments ...string) string {
	id, err := DTMI(version, segments...)
	if err != nil {
		panic(err)
	}
	return id
}

// Content is one entry of an Interface's contents: a Property, Telemetry,
// Command, Relationship or Component, discriminated by Type.
type Content struct {
	ID   string `json:"@id,omitempty"`
	Type string `json:"@type"`
	Name string `json:"name"`

	// Property fields.
	Schema      string `json:"schema,omitempty"`
	Description any    `json:"description,omitempty"`
	Writable    bool   `json:"writable,omitempty"`

	// Telemetry fields (P-MoVE extensions of Listing 4).
	PMUName     string `json:"PMUName,omitempty"`
	SamplerName string `json:"SamplerName,omitempty"`
	DBName      string `json:"DBName,omitempty"`
	FieldName   string `json:"FieldName,omitempty"`
	Unit        string `json:"unit,omitempty"`

	// Relationship fields.
	Target          string `json:"target,omitempty"`
	MinMultiplicity int    `json:"minMultiplicity,omitempty"`
	MaxMultiplicity int    `json:"maxMultiplicity,omitempty"`

	// Command fields.
	Request  *CommandPayload `json:"request,omitempty"`
	Response *CommandPayload `json:"response,omitempty"`
}

// CommandPayload describes a Command's request or response schema.
type CommandPayload struct {
	Name   string `json:"name"`
	Schema string `json:"schema"`
}

// Validate checks the content entry against its class rules.
func (c *Content) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("ontology: content has no name")
	}
	if c.ID != "" {
		if err := ValidateDTMI(c.ID); err != nil {
			return err
		}
	}
	switch c.Type {
	case ClassProperty:
		// Properties carry a value in Description in the P-MoVE encoding;
		// schema optional.
	case ClassTelemetry, ClassSWTelemetry, ClassHWTelemetry:
		if c.SamplerName == "" {
			return fmt.Errorf("ontology: telemetry %q has no SamplerName", c.Name)
		}
		if c.DBName == "" {
			return fmt.Errorf("ontology: telemetry %q has no DBName", c.Name)
		}
	case ClassRelationship:
		if c.Target == "" {
			return fmt.Errorf("ontology: relationship %q has no target", c.Name)
		}
		if err := ValidateDTMI(c.Target); err != nil {
			return fmt.Errorf("ontology: relationship %q: %w", c.Name, err)
		}
	case ClassCommand:
		// Request/response optional.
	case ClassComponent:
		if c.Schema == "" {
			return fmt.Errorf("ontology: component %q has no schema", c.Name)
		}
	default:
		return fmt.Errorf("ontology: unknown content class %q on %q", c.Type, c.Name)
	}
	return nil
}

// Interface is a DTDL interface: one standalone (sub)twin.
type Interface struct {
	Context     string    `json:"@context"`
	ID          string    `json:"@id"`
	Type        string    `json:"@type"`
	DisplayName string    `json:"displayName,omitempty"`
	Comment     string    `json:"comment,omitempty"`
	Extends     []string  `json:"extends,omitempty"`
	Contents    []Content `json:"contents"`
}

// NewInterface creates an empty interface with the standard context.
func NewInterface(id, displayName string) (*Interface, error) {
	if err := ValidateDTMI(id); err != nil {
		return nil, err
	}
	return &Interface{
		Context:     DTDLContext,
		ID:          id,
		Type:        ClassInterface,
		DisplayName: displayName,
	}, nil
}

// Validate checks the interface and all contents.
func (i *Interface) Validate() error {
	if i.Type != ClassInterface {
		return fmt.Errorf("ontology: %q has @type %q, want Interface", i.ID, i.Type)
	}
	if i.Context != DTDLContext {
		return fmt.Errorf("ontology: %q has @context %q, want %s", i.ID, i.Context, DTDLContext)
	}
	if err := ValidateDTMI(i.ID); err != nil {
		return err
	}
	for _, e := range i.Extends {
		if err := ValidateDTMI(e); err != nil {
			return fmt.Errorf("ontology: %q extends invalid id: %w", i.ID, err)
		}
	}
	names := map[string]bool{}
	for k := range i.Contents {
		c := &i.Contents[k]
		if err := c.Validate(); err != nil {
			return fmt.Errorf("ontology: %q: %w", i.ID, err)
		}
		key := c.Type + "/" + c.Name
		if c.Type == ClassRelationship {
			// Relationships of the same name (e.g. "contains") may repeat
			// with distinct targets.
			key += "/" + c.Target
		}
		if names[key] {
			return fmt.Errorf("ontology: %q has duplicate %s %q", i.ID, c.Type, c.Name)
		}
		names[key] = true
	}
	return nil
}

// AddProperty appends a Property content with an auto-derived id.
func (i *Interface) AddProperty(name string, value any) {
	i.Contents = append(i.Contents, Content{
		ID:          childID(i.ID, fmt.Sprintf("property%d", i.countOf(ClassProperty))),
		Type:        ClassProperty,
		Name:        name,
		Description: value,
	})
}

// AddSWTelemetry appends a software telemetry definition.
func (i *Interface) AddSWTelemetry(name, samplerName, dbName, fieldName, desc string) {
	i.Contents = append(i.Contents, Content{
		ID:          childID(i.ID, fmt.Sprintf("telemetry%d", len(i.Contents))),
		Type:        ClassSWTelemetry,
		Name:        name,
		SamplerName: samplerName,
		DBName:      dbName,
		FieldName:   fieldName,
		Description: desc,
	})
}

// AddHWTelemetry appends a hardware telemetry definition.
func (i *Interface) AddHWTelemetry(name, pmuName, samplerName, dbName, fieldName, desc string) {
	i.Contents = append(i.Contents, Content{
		ID:          childID(i.ID, fmt.Sprintf("telemetry%d", len(i.Contents))),
		Type:        ClassHWTelemetry,
		Name:        name,
		PMUName:     pmuName,
		SamplerName: samplerName,
		DBName:      dbName,
		FieldName:   fieldName,
		Description: desc,
	})
}

// AddCommand appends a Command content — the DTDL class P-MoVE uses for
// actions a twin can execute (benchmark runs, observations).
func (i *Interface) AddCommand(name string, request, response *CommandPayload) {
	i.Contents = append(i.Contents, Content{
		ID:       childID(i.ID, fmt.Sprintf("command%d", i.countOf(ClassCommand))),
		Type:     ClassCommand,
		Name:     name,
		Request:  request,
		Response: response,
	})
}

// Commands returns the interface's Command contents.
func (i *Interface) Commands() []Content {
	var out []Content
	for _, c := range i.Contents {
		if c.Type == ClassCommand {
			out = append(out, c)
		}
	}
	return out
}

// AddRelationship appends a Relationship to a target interface.
func (i *Interface) AddRelationship(name, target string) {
	i.Contents = append(i.Contents, Content{
		ID:     childID(i.ID, "rel_"+name+fmt.Sprintf("%d", len(i.Contents))),
		Type:   ClassRelationship,
		Name:   name,
		Target: target,
	})
}

// countOf counts contents of a class.
func (i *Interface) countOf(class string) int {
	n := 0
	for _, c := range i.Contents {
		if c.Type == class {
			n++
		}
	}
	return n
}

// childID derives a child DTMI by appending a segment before the version.
func childID(parent, segment string) string {
	base, ver, ok := strings.Cut(parent, ";")
	if !ok {
		return parent + ":" + segment
	}
	return base + ":" + segment + ";" + ver
}

// Relationships returns the interface's Relationship contents.
func (i *Interface) Relationships() []Content {
	var out []Content
	for _, c := range i.Contents {
		if c.Type == ClassRelationship {
			out = append(out, c)
		}
	}
	return out
}

// Telemetries returns the telemetry contents, optionally filtered by class
// ("" for all telemetry kinds).
func (i *Interface) Telemetries(class string) []Content {
	var out []Content
	for _, c := range i.Contents {
		isTel := c.Type == ClassTelemetry || c.Type == ClassSWTelemetry || c.Type == ClassHWTelemetry
		if !isTel {
			continue
		}
		if class == "" || c.Type == class {
			out = append(out, c)
		}
	}
	return out
}

// Property returns the value of a named property, or nil.
func (i *Interface) Property(name string) any {
	for _, c := range i.Contents {
		if c.Type == ClassProperty && c.Name == name {
			return c.Description
		}
	}
	return nil
}

// MarshalJSONLD renders the interface as a JSON-LD document.
func (i *Interface) MarshalJSONLD() (jsonld.Document, error) {
	b, err := json.Marshal(i)
	if err != nil {
		return nil, fmt.Errorf("ontology: %w", err)
	}
	return jsonld.Parse(b)
}

// ParseInterface decodes an interface from JSON and validates it.
func ParseInterface(b []byte) (*Interface, error) {
	var i Interface
	if err := json.Unmarshal(b, &i); err != nil {
		return nil, fmt.Errorf("ontology: %w", err)
	}
	if err := i.Validate(); err != nil {
		return nil, err
	}
	return &i, nil
}
