package telemetry

import (
	"testing"
	"time"

	"pmove/internal/machine"
	"pmove/internal/resilience"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// chaosPolicy fails fast so the outage window stays cheap; the breaker is
// disabled so recovery is observed on the first post-restart write rather
// than after a real-time cooldown (the virtual clock outruns wall time).
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		DialTimeout:  time.Second,
		ReadTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		MaxRetries:   1,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Seed:         7,
	}
}

// chaosPipeline removes the simulated pipeline costs so every observed
// loss is attributable to the injected outage, not the Table III model.
func chaosPipeline() PipelineConfig {
	return PipelineConfig{Seed: 1}
}

// chaosSession builds a session shipping to the given sink.
func chaosSession(t *testing.T, sink PointSink, cfg PipelineConfig) *Session {
	t.Helper()
	m, err := machine.New(topo.MustPreset(topo.PresetICL), machine.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(nil, cfg)
	col.Sink = sink
	s, err := NewSession(NewPMCD(m), col, SessionConfig{
		Metrics: []string{machine.MetricCPUIdle},
		FreqHz:  10,
		Tag:     "chaos",
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosKillWithoutDegradation is the baseline: the tsdb server dies
// mid-session and, with degradation off (the paper-faithful default), the
// session aborts with an error.
func TestChaosKillWithoutDegradation(t *testing.T) {
	db := tsdb.New()
	srv := tsdb.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := tsdb.DialPolicy(addr, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := chaosSession(t, c, chaosPipeline())
	if _, err := s.RunTicks(5); err != nil {
		t.Fatalf("healthy phase failed: %v", err)
	}
	srv.Close() // kill the host TSDB mid-session
	if _, err := s.RunTicks(5); err == nil {
		t.Fatal("session survived a dead sink with degradation off")
	}
}

// TestChaosKillRestartDegraded is the acceptance scenario: the tsdb
// server is killed and later restarted mid-session. With degraded mode on
// the session completes, the outage backlog spills to the journal and
// replays after the restart, and end-to-end loss is bounded and visible
// in the stats.
func TestChaosKillRestartDegraded(t *testing.T) {
	db := tsdb.New()
	srv := tsdb.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := tsdb.DialPolicy(addr, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := chaosPipeline()
	cfg.Degraded = true
	s := chaosSession(t, c, cfg)
	col := s.Collector

	// Phase 1: healthy.
	st1, err := s.RunTicks(4)
	if err != nil {
		t.Fatalf("healthy phase: %v", err)
	}
	if st1.Inserted == 0 || st1.Spilled != 0 {
		t.Fatalf("healthy phase stats off: %+v", st1)
	}

	// Phase 2: the server dies; every report spills locally.
	srv.Close()
	st2, err := s.RunTicks(4)
	if err != nil {
		t.Fatalf("outage phase aborted despite degraded mode: %v", err)
	}
	if st2.Spilled == 0 {
		t.Fatalf("outage produced no spills: %+v", st2)
	}
	if !col.Degraded() {
		t.Fatal("collector not marked degraded during outage")
	}
	if st2.Pending == 0 {
		t.Fatalf("no journal backlog after outage: %+v", st2)
	}

	// Phase 3: a fresh server on the same address with the same DB — the
	// resilient client reconnects, the journal replays, and new data
	// flows again.
	srv2 := tsdb.NewServer(db)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	st3, err := s.RunTicks(4)
	if err != nil {
		t.Fatalf("recovery phase: %v", err)
	}
	if st3.Replayed == 0 {
		t.Fatalf("journal never replayed after restart: %+v", st3)
	}
	if st3.Pending != 0 {
		t.Fatalf("backlog left after recovery: %+v", st3)
	}
	if col.Degraded() {
		t.Fatal("collector still degraded after recovery")
	}

	// Bounded end-to-end loss: with pipeline costs zeroed and the journal
	// under its cap, every expected point was eventually inserted.
	if col.SpillDropped != 0 {
		t.Fatalf("journal evicted %d points below cap", col.SpillDropped)
	}
	if col.Lost != 0 {
		t.Fatalf("pipeline lost %d points with zero costs", col.Lost)
	}
	if col.Inserted != col.Expected {
		t.Fatalf("inserted %d of %d expected points", col.Inserted, col.Expected)
	}
	// The server-side DB holds at least the acked rows (at-least-once: a
	// retried write whose ack was lost may be duplicated, never fewer).
	// The collector counts fields; each cpu.idle report is one row of 16.
	pts, _ := db.Stats()
	if rows := col.Inserted / 16; pts < rows {
		t.Fatalf("server DB holds %d rows, collector acked %d", pts, rows)
	}
}

// TestChaosJournalCapBoundsLoss keeps the server down past the journal
// cap: the oldest points are evicted and counted, memory stays bounded,
// and the loss is exactly the evicted points.
func TestChaosJournalCapBoundsLoss(t *testing.T) {
	db := tsdb.New()
	srv := tsdb.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := tsdb.DialPolicy(addr, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := chaosPipeline()
	cfg.Degraded = true
	cfg.JournalCap = 3 // reports, far below the outage length
	s := chaosSession(t, c, cfg)
	col := s.Collector

	srv.Close() // down from the first tick
	st, err := s.RunTicks(10)
	if err != nil {
		t.Fatalf("outage run: %v", err)
	}
	if got := col.PendingSpill(); got != cfg.JournalCap {
		t.Fatalf("journal holds %d entries, cap is %d", got, cfg.JournalCap)
	}
	if st.SpillDropped == 0 {
		t.Fatal("cap never evicted despite a long outage")
	}
	// Conservation: every expected point was inserted, still journalled,
	// or evicted — nothing vanished unaccounted.
	var pendingFields uint64
	for _, p := range col.journal {
		pendingFields += uint64(len(p.Fields))
	}
	if col.Expected != col.Inserted+pendingFields+st.SpillDropped {
		t.Fatalf("points unaccounted: expected=%d inserted=%d pending=%d dropped=%d",
			col.Expected, col.Inserted, pendingFields, st.SpillDropped)
	}
}
