package telemetry

import (
	"fmt"
	"math"

	"pmove/internal/tsdb"
)

// PipelineConfig models the host-side shipment path: the network link
// between target and host and the database insertion cost. PCP "performs
// sampling instead of recording performance events over time" with no
// buffering, so a report that arrives while the previous one is still
// being inserted is lost — the Table III mechanism.
type PipelineConfig struct {
	// LinkMbps is the host-target link (the paper's testbed used a 100
	// Mbit cabled connection).
	LinkMbps float64
	// InsertBaseSeconds is the fixed per-report DB insertion cost.
	InsertBaseSeconds float64
	// InsertPerValueSeconds is the marginal insertion cost per data point.
	InsertPerValueSeconds float64
	// StallProb is the probability a report hits a transient stall
	// (writeback, GC) multiplying its cost by StallFactor.
	StallProb   float64
	StallFactor float64
	// CounterRefreshSeconds is the PMU readout refresh period: polling
	// faster than this returns batched zeros ("we observed batched zero
	// values with high frequency").
	CounterRefreshSeconds float64
	// Buffered enables a hypothetical report queue in front of the DB:
	// reports arriving while the previous insert is in flight are queued
	// instead of dropped. PCP has no such buffer — this switch exists for
	// the ablation study isolating that design choice (Table III's losses
	// vanish with it; latency grows instead).
	Buffered bool
	// Seed drives the deterministic jitter.
	Seed uint64
}

// DefaultPipeline returns the configuration calibrated against the
// paper's testbed (100 Mbit link, spinning-disk-backed InfluxDB on the
// host).
func DefaultPipeline() PipelineConfig {
	return PipelineConfig{
		LinkMbps:              100,
		InsertBaseSeconds:     3e-3,
		InsertPerValueSeconds: 75e-6,
		StallProb:             0.04,
		StallFactor:           4,
		CounterRefreshSeconds: 0.048,
		Seed:                  1,
	}
}

// Collector is the host-side sink: it owns the tsdb handle and the
// busy-until state of the unbuffered pipeline.
type Collector struct {
	DB  *tsdb.DB
	Cfg PipelineConfig

	busyUntil float64
	seq       uint64

	// Cumulative statistics.
	Expected  uint64 // data points the sampler should have produced
	Inserted  uint64 // data points actually written
	Zeros     uint64 // inserted points whose value was a batched zero
	Lost      uint64 // data points dropped because the pipeline was busy
	NetBytes  int64
	DiskBytes int64
	// QueuedDelay is the backlog the most recent report waited behind
	// (buffered mode only); MaxLagSeconds the worst insertion lag seen.
	QueuedDelay   float64
	MaxLagSeconds float64
}

// NewCollector builds a collector over a tsdb.
func NewCollector(db *tsdb.DB, cfg PipelineConfig) *Collector {
	return &Collector{DB: db, Cfg: cfg, seq: cfg.Seed}
}

func (c *Collector) jitter() float64 {
	c.seq++
	x := c.seq * 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// reportCost returns the wall time one report of nValues/nBytes occupies
// the pipeline.
func (c *Collector) reportCost(nValues int, nBytes int64) float64 {
	cost := c.Cfg.InsertBaseSeconds + float64(nValues)*c.Cfg.InsertPerValueSeconds
	if c.Cfg.LinkMbps > 0 {
		cost += float64(nBytes) * 8 / (c.Cfg.LinkMbps * 1e6)
	}
	// Deterministic jitter: ±30% plus occasional stalls.
	u := c.jitter()
	cost *= 0.85 + 0.3*u
	if c.Cfg.StallProb > 0 && c.jitter() < c.Cfg.StallProb {
		cost *= c.Cfg.StallFactor
	}
	return cost
}

// Offer presents one report (all samples of one tick) to the pipeline at
// virtual time now. If the pipeline is still busy with the previous
// report, the whole report is dropped (no buffer). Otherwise the samples
// are written with the tick's timestamp and the pipeline is busy for the
// report's cost. zeroBatch marks the PMU-sourced values as a batched-zero
// readout: they are inserted with value 0.
func (c *Collector) Offer(now float64, samples []Sample, tag string, zeroBatch bool) error {
	nValues := 0
	var nBytes int64
	for _, s := range samples {
		nValues += len(s.Values)
		nBytes += wireBytes(s)
	}
	c.Expected += uint64(nValues)
	if now < c.busyUntil {
		if !c.Cfg.Buffered {
			c.Lost += uint64(nValues)
			return nil
		}
		// Buffered ablation: the report queues behind the in-flight one;
		// insertion latency accumulates instead of data being lost.
		c.QueuedDelay = c.busyUntil - now
	} else {
		c.QueuedDelay = 0
	}
	ts := int64(now * 1e9)
	for _, s := range samples {
		if zeroBatch {
			zeroed := Sample{Metric: s.Metric, Values: map[string]float64{}}
			for f := range s.Values {
				zeroed.Values[f] = 0
			}
			s = zeroed
		}
		p := ToPoint(s, tag, ts)
		if err := c.DB.WritePoint(p); err != nil {
			return fmt.Errorf("telemetry: insert %s: %w", s.Metric, err)
		}
		c.Inserted += uint64(len(s.Values))
		if zeroBatch {
			c.Zeros += uint64(len(s.Values))
		}
	}
	c.NetBytes += nBytes
	c.DiskBytes += int64(nValues) * 48 // stored point footprint
	start := now
	if c.Cfg.Buffered && c.busyUntil > now {
		start = c.busyUntil
	}
	c.busyUntil = start + c.reportCost(nValues, nBytes)
	if lag := c.busyUntil - now; lag > c.MaxLagSeconds {
		c.MaxLagSeconds = lag
	}
	return nil
}

// LossRate returns the fraction of expected points lost in transmission.
func (c *Collector) LossRate() float64 {
	if c.Expected == 0 {
		return 0
	}
	return float64(c.Lost) / float64(c.Expected)
}

// LossPlusZeroRate returns the Table III "L+Z%" column: the fraction of
// expected data points that were either lost or inserted as zeros.
func (c *Collector) LossPlusZeroRate() float64 {
	if c.Expected == 0 {
		return 0
	}
	return float64(c.Lost+c.Zeros) / float64(c.Expected)
}

// ZeroBatchProbability returns the probability a readout at the given
// sampling interval returns batched zeros: polling faster than the
// counter refresh leaves a fraction 1-interval/refresh of polls without
// fresh data.
func (cfg *PipelineConfig) ZeroBatchProbability(intervalSeconds float64) float64 {
	if cfg.CounterRefreshSeconds <= 0 || intervalSeconds >= cfg.CounterRefreshSeconds {
		return 0
	}
	return math.Min(0.9, 1-intervalSeconds/cfg.CounterRefreshSeconds)
}
