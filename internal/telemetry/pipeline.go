package telemetry

import (
	"context"
	"fmt"
	"math"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/storage"
	"pmove/internal/tsdb"
)

// PipelineConfig models the host-side shipment path: the network link
// between target and host and the database insertion cost. PCP "performs
// sampling instead of recording performance events over time" with no
// buffering, so a report that arrives while the previous one is still
// being inserted is lost — the Table III mechanism.
type PipelineConfig struct {
	// LinkMbps is the host-target link (the paper's testbed used a 100
	// Mbit cabled connection).
	LinkMbps float64
	// InsertBaseSeconds is the fixed per-report DB insertion cost.
	InsertBaseSeconds float64
	// InsertPerValueSeconds is the marginal insertion cost per data point.
	InsertPerValueSeconds float64
	// StallProb is the probability a report hits a transient stall
	// (writeback, GC) multiplying its cost by StallFactor.
	StallProb   float64
	StallFactor float64
	// CounterRefreshSeconds is the PMU readout refresh period: polling
	// faster than this returns batched zeros ("we observed batched zero
	// values with high frequency").
	CounterRefreshSeconds float64
	// Buffered enables a hypothetical report queue in front of the DB:
	// reports arriving while the previous insert is in flight are queued
	// instead of dropped. PCP has no such buffer — this switch exists for
	// the ablation study isolating that design choice (Table III's losses
	// vanish with it; latency grows instead).
	Buffered bool
	// Degraded enables graceful degradation: a report whose sink write
	// fails (host TSDB unreachable) is spilled to a bounded local journal
	// and replayed once the sink answers again, instead of aborting the
	// session. Like Buffered this is opt-in — the paper-faithful default
	// keeps the unbuffered fail/loss semantics.
	Degraded bool
	// JournalCap bounds the spill journal in points; 0 means
	// DefaultJournalCap. When the journal is full the oldest spilled
	// point is dropped (and counted), keeping memory bounded through an
	// arbitrarily long outage.
	JournalCap int
	// JournalDir, when non-empty, persists the spill journal to a
	// write-ahead log in that directory (same framing as the database
	// WALs) so an outage backlog survives a collector crash. Opened by
	// OpenJournal; recovery is at-least-once up to JournalCap.
	JournalDir string
	// Unbatched disables per-tick batch shipment: every point goes to
	// the sink as its own WritePoint, the pre-batching behaviour. The
	// default ships one tick's report as ONE batch write whenever the
	// sink supports it (BatchPointSink) — one round-trip and one group
	// commit per tick instead of |instance domain|. The accounting is
	// identical either way; only failure granularity differs (a batch
	// fails or spills whole, which is also what a tick loss means).
	Unbatched bool
	// Seed drives the deterministic jitter.
	Seed uint64
}

// DefaultJournalCap is the spill journal bound when JournalCap is unset.
const DefaultJournalCap = 4096

// DefaultPipeline returns the configuration calibrated against the
// paper's testbed (100 Mbit link, spinning-disk-backed InfluxDB on the
// host).
func DefaultPipeline() PipelineConfig {
	return PipelineConfig{
		LinkMbps:              100,
		InsertBaseSeconds:     3e-3,
		InsertPerValueSeconds: 75e-6,
		StallProb:             0.04,
		StallFactor:           4,
		CounterRefreshSeconds: 0.048,
		Seed:                  1,
	}
}

// PointSink is where the collector lands points: the embedded tsdb.DB or
// a (resilient) remote tsdb.Client — both satisfy it.
type PointSink interface {
	WritePoint(p tsdb.Point) error
}

// ContextPointSink is a PointSink that honors cancellation. Sinks that
// implement it (the resilient remote clients) get the session context so
// in-flight retries abort when the caller gives up; plain sinks fall back
// to WritePoint.
type ContextPointSink interface {
	PointSink
	WritePointContext(ctx context.Context, p tsdb.Point) error
}

// BatchPointSink is a PointSink that accepts whole batches — the
// embedded tsdb.DB (group-committed WAL append) and the remote
// tsdb.Client (one WRITEB round-trip) both satisfy it. The collector
// ships each tick's report through this path unless Cfg.Unbatched.
type BatchPointSink interface {
	PointSink
	WriteBatchContext(ctx context.Context, ps []tsdb.Point) error
}

// Collector is the host-side sink: it owns the tsdb handle and the
// busy-until state of the unbuffered pipeline.
type Collector struct {
	DB *tsdb.DB
	// Sink overrides where points are written when non-nil (e.g. a
	// resilient remote client); the embedded DB otherwise.
	Sink PointSink
	Cfg  PipelineConfig
	// Self, when non-nil, mirrors the collector's counters into the
	// daemon's self-observability registry under telemetry.* and opens
	// child spans around report offers and journal replays. Nil costs
	// nothing (all introspect methods are nil-safe).
	Self *introspect.Introspector
	// Log, when non-nil, receives structured records for degradation
	// transitions (sink down → spilling, journal drained, cap
	// evictions), trace-correlated to the offer that observed them.
	Log *logbuf.Logger

	busyUntil float64
	seq       uint64

	// journal holds points spilled while the sink was unreachable
	// (Degraded mode only), bounded by JournalCap. journalWAL mirrors it
	// on disk when Cfg.JournalDir is set (see journal.go).
	journal     []tsdb.Point
	degraded    bool
	journalWAL  *storage.WAL
	journalPath string

	// Cumulative statistics.
	Expected  uint64 // data points the sampler should have produced
	Inserted  uint64 // data points actually written
	Zeros     uint64 // inserted points whose value was a batched zero
	Lost      uint64 // data points dropped because the pipeline was busy
	NetBytes  int64
	DiskBytes int64
	// Degradation statistics (Degraded mode only).
	Spilled      uint64 // points written to the local journal
	Replayed     uint64 // journal points later inserted into the sink
	SpillDropped uint64 // journal points evicted by the cap — lost for good
	Degradations uint64 // times the collector entered degraded mode
	// RecoveredSpill counts data points reloaded from the on-disk
	// journal by OpenJournal. They were Expected by a previous collector
	// incarnation, so they join Expected on the left of the conservation
	// law: Expected + RecoveredSpill == Inserted + Lost + SpillDropped +
	// PendingSpillFields().
	RecoveredSpill uint64
	// QueuedDelay is the backlog the most recent report waited behind
	// (buffered mode only); MaxLagSeconds the worst insertion lag seen.
	QueuedDelay   float64
	MaxLagSeconds float64
}

// NewCollector builds a collector over a tsdb.
func NewCollector(db *tsdb.DB, cfg PipelineConfig) *Collector {
	return &Collector{DB: db, Cfg: cfg, seq: cfg.Seed}
}

// sink returns the active point destination.
func (c *Collector) sink() PointSink {
	if c.Sink != nil {
		return c.Sink
	}
	return c.DB
}

// Degraded reports whether the collector is currently spilling.
func (c *Collector) Degraded() bool { return c.degraded }

// PendingSpill returns how many journalled points await replay.
func (c *Collector) PendingSpill() int { return len(c.journal) }

// PendingSpillFields returns the journal backlog in data points (fields),
// the unit the Expected/Inserted/Lost counters use — the term the
// end-to-end conservation law needs:
//
//	Expected == Inserted + Lost + SpillDropped + PendingSpillFields()
func (c *Collector) PendingSpillFields() uint64 {
	var n uint64
	for _, p := range c.journal {
		n += uint64(len(p.Fields))
	}
	return n
}

// journalCap resolves the configured bound.
func (c *Collector) journalCap() int {
	if c.Cfg.JournalCap > 0 {
		return c.Cfg.JournalCap
	}
	return DefaultJournalCap
}

// spill journals a point the sink refused, evicting the oldest entry if
// the journal is at capacity.
func (c *Collector) spill(ctx context.Context, p tsdb.Point) {
	reg := c.Self.Metrics()
	if !c.degraded {
		c.degraded = true
		c.Degradations++
		reg.Counter("telemetry.degradations").Inc()
		c.Log.Warn(ctx, "sink unreachable: entering degraded mode, spilling to journal",
			"journal_cap", fmt.Sprint(c.journalCap()))
	}
	if len(c.journal) >= c.journalCap() {
		dropped := c.journal[0]
		c.journal = c.journal[1:]
		c.SpillDropped += uint64(len(dropped.Fields))
		reg.Counter("telemetry.journal.dropped").Add(uint64(len(dropped.Fields)))
		c.Log.Warn(ctx, "journal at capacity: oldest spilled point dropped",
			"dropped_fields", fmt.Sprint(len(dropped.Fields)))
	}
	c.journal = append(c.journal, p)
	c.persistSpill(p)
	c.Spilled += uint64(len(p.Fields))
	reg.Counter("telemetry.journal.spilled").Add(uint64(len(p.Fields)))
	reg.Gauge("telemetry.journal.pending").Set(float64(len(c.journal)))
}

// writePoint routes one point to the sink, threading ctx through sinks
// that can use it.
func (c *Collector) writePoint(ctx context.Context, p tsdb.Point) error {
	s := c.sink()
	if cs, ok := s.(ContextPointSink); ok {
		return cs.WritePointContext(ctx, p)
	}
	return s.WritePoint(p)
}

// Replay drains the journal into the sink, oldest first, stopping at the
// first failure (the sink is still down). It returns how many points
// remain. Offer replays opportunistically before each new report, so a
// recovered sink catches up within one tick; call Replay directly to
// flush at session end.
func (c *Collector) Replay() int {
	return c.ReplayContext(context.Background())
}

// ReplayContext is Replay with a caller context for sink writes and the
// replay span.
func (c *Collector) ReplayContext(ctx context.Context) int {
	reg := c.Self.Metrics()
	ctx, span := c.Self.StartSpan(ctx, "telemetry.replay")
	defer span.End(nil)
	wasDegraded := c.degraded
	before := len(c.journal)
	defer func() {
		// Keep the on-disk journal in lock-step with the live backlog:
		// anything replayed this call is compacted away so a restart
		// does not re-deliver it.
		if len(c.journal) != before {
			c.compactJournal()
		}
	}()
	for len(c.journal) > 0 {
		p := c.journal[0]
		if err := c.writePoint(ctx, p); err != nil {
			reg.Gauge("telemetry.journal.pending").Set(float64(len(c.journal)))
			return len(c.journal)
		}
		c.journal = c.journal[1:]
		nv := uint64(len(p.Fields))
		c.Inserted += nv
		c.Replayed += nv
		reg.Counter("telemetry.points.inserted").Add(nv)
		reg.Counter("telemetry.journal.replayed").Add(nv)
	}
	c.journal = nil
	c.degraded = false
	reg.Gauge("telemetry.journal.pending").Set(0)
	if wasDegraded {
		c.Log.Info(ctx, "journal drained: leaving degraded mode",
			"replayed", fmt.Sprint(before))
	}
	return 0
}

func (c *Collector) jitter() float64 {
	c.seq++
	x := c.seq * 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// reportCost returns the wall time one report of nValues/nBytes occupies
// the pipeline.
func (c *Collector) reportCost(nValues int, nBytes int64) float64 {
	cost := c.Cfg.InsertBaseSeconds + float64(nValues)*c.Cfg.InsertPerValueSeconds
	if c.Cfg.LinkMbps > 0 {
		cost += float64(nBytes) * 8 / (c.Cfg.LinkMbps * 1e6)
	}
	// Deterministic jitter: ±30% plus occasional stalls.
	u := c.jitter()
	cost *= 0.85 + 0.3*u
	if c.Cfg.StallProb > 0 && c.jitter() < c.Cfg.StallProb {
		cost *= c.Cfg.StallFactor
	}
	return cost
}

// Offer presents one report (all samples of one tick) to the pipeline at
// virtual time now. If the pipeline is still busy with the previous
// report, the whole report is dropped (no buffer). Otherwise the samples
// are written with the tick's timestamp and the pipeline is busy for the
// report's cost. zeroBatch marks the PMU-sourced values as a batched-zero
// readout: they are inserted with value 0.
func (c *Collector) Offer(now float64, samples []Sample, tag string, zeroBatch bool) error {
	return c.OfferContext(context.Background(), now, samples, tag, zeroBatch)
}

// OfferContext is Offer with a caller context: sink writes that can honor
// cancellation receive ctx, and the report lands as a child span of the
// surrounding daemon operation when self-observability is on.
func (c *Collector) OfferContext(ctx context.Context, now float64, samples []Sample, tag string, zeroBatch bool) (err error) {
	reg := c.Self.Metrics()
	ctx, span := c.Self.StartSpan(ctx, "telemetry.offer")
	offerStart := time.Now()
	defer func() {
		reg.Histogram("telemetry.offer.seconds", introspect.DefaultLatencyBounds...).
			Observe(time.Since(offerStart).Seconds())
		span.End(err)
	}()
	nValues := 0
	var nBytes int64
	for _, s := range samples {
		nValues += len(s.Values)
		nBytes += wireBytes(s)
	}
	c.Expected += uint64(nValues)
	reg.Counter("telemetry.points.expected").Add(uint64(nValues))
	if now < c.busyUntil {
		if !c.Cfg.Buffered {
			c.Lost += uint64(nValues)
			reg.Counter("telemetry.points.lost").Add(uint64(nValues))
			return nil
		}
		// Buffered ablation: the report queues behind the in-flight one;
		// insertion latency accumulates instead of data being lost.
		c.QueuedDelay = c.busyUntil - now
	} else {
		c.QueuedDelay = 0
	}
	// Catch up on any outage backlog before shipping fresh data, so
	// replayed history lands ahead of newer points.
	if c.Cfg.Degraded && len(c.journal) > 0 {
		c.ReplayContext(ctx)
	}
	ts := int64(now * 1e9)
	pts := make([]tsdb.Point, 0, len(samples))
	for _, s := range samples {
		if zeroBatch {
			zeroed := Sample{Metric: s.Metric, Values: map[string]float64{}}
			for f := range s.Values {
				zeroed.Values[f] = 0
			}
			s = zeroed
		}
		pts = append(pts, ToPoint(s, tag, ts))
	}
	switch bs, batchable := c.sink().(BatchPointSink); {
	case c.Cfg.Degraded && c.degraded:
		// Sink known down (the opportunistic Replay above just probed
		// it): journal without burning the client's retry budget on
		// every sample.
		for _, p := range pts {
			c.spill(ctx, p)
		}
	case batchable && !c.Cfg.Unbatched && len(pts) > 1:
		// The whole tick ships as one batch: one round-trip / one group
		// commit, and — because the batch path is atomic and idempotent
		// under retry — it lands whole, spills whole, or fails whole,
		// which is the same granularity a lost tick already has.
		if werr := bs.WriteBatchContext(ctx, pts); werr != nil {
			if !c.Cfg.Degraded {
				err = fmt.Errorf("telemetry: batch insert (%d points): %w", len(pts), werr)
				return err
			}
			for _, p := range pts {
				c.spill(ctx, p)
			}
		} else {
			c.Inserted += uint64(nValues)
			reg.Counter("telemetry.points.inserted").Add(uint64(nValues))
		}
	default:
		for _, p := range pts {
			if werr := c.writePoint(ctx, p); werr != nil {
				if !c.Cfg.Degraded {
					err = fmt.Errorf("telemetry: insert %s: %w", p.Measurement, werr)
					return err
				}
				c.spill(ctx, p)
			} else {
				c.Inserted += uint64(len(p.Fields))
				reg.Counter("telemetry.points.inserted").Add(uint64(len(p.Fields)))
			}
		}
	}
	if zeroBatch {
		c.Zeros += uint64(nValues)
		reg.Counter("telemetry.points.zeros").Add(uint64(nValues))
	}
	c.NetBytes += nBytes
	c.DiskBytes += int64(nValues) * 48 // stored point footprint
	start := now
	if c.Cfg.Buffered && c.busyUntil > now {
		start = c.busyUntil
	}
	c.busyUntil = start + c.reportCost(nValues, nBytes)
	if lag := c.busyUntil - now; lag > c.MaxLagSeconds {
		c.MaxLagSeconds = lag
	}
	return nil
}

// LossRate returns the fraction of expected points lost in transmission.
func (c *Collector) LossRate() float64 {
	if c.Expected == 0 {
		return 0
	}
	return float64(c.Lost) / float64(c.Expected)
}

// LossPlusZeroRate returns the Table III "L+Z%" column: the fraction of
// expected data points that were either lost or inserted as zeros.
func (c *Collector) LossPlusZeroRate() float64 {
	if c.Expected == 0 {
		return 0
	}
	return float64(c.Lost+c.Zeros) / float64(c.Expected)
}

// ZeroBatchProbability returns the probability a readout at the given
// sampling interval returns batched zeros: polling faster than the
// counter refresh leaves a fraction 1-interval/refresh of polls without
// fresh data.
func (cfg *PipelineConfig) ZeroBatchProbability(intervalSeconds float64) float64 {
	if cfg.CounterRefreshSeconds <= 0 || intervalSeconds >= cfg.CounterRefreshSeconds {
		return 0
	}
	return math.Min(0.9, 1-intervalSeconds/cfg.CounterRefreshSeconds)
}
