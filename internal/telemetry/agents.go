// Package telemetry is the metric collection, transport and storage
// framework standing in for Performance Co-Pilot (PCP): a coordinator
// (pmcd) managing specialised agents (pmdaperfevent for PMU counters,
// pmdalinux for kernel metrics, pmdaproc for per-process metrics), a
// sampling loop driven by the machine's virtual clock, and an unbuffered
// host-side pipeline whose insertion latency produces the data-point
// losses and batched zeros of Table III ("There is no buffer or queue
// mechanism to keep data points until their insertion into the DB").
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pmove/internal/machine"
	"pmove/internal/pmu"
	"pmove/internal/tsdb"
)

// Agent names, mirroring the PCP daemons measured in Fig 6.
const (
	AgentPMCD      = "pmcd"
	AgentPerfevent = "pmdaperfevent"
	AgentLinux     = "pmdalinux"
	AgentProc      = "pmdaproc"
)

// Sample is one metric reading across its instance domain at one time.
type Sample struct {
	Metric string
	// Values maps field/instance name (e.g. "_cpu0") to value.
	Values map[string]float64
}

// Agent is a metric source on the target.
type Agent interface {
	// Name identifies the agent (pmcd routing key).
	Name() string
	// Metrics lists the metric names the agent serves.
	Metrics() []string
	// Sample reads one metric now. The agent charges its own CPU cost to
	// its resource accounting.
	Sample(metric string) (Sample, error)
}

// ResourceUsage accumulates an agent's footprint on the target — the Fig 6
// quantities.
type ResourceUsage struct {
	mu          sync.Mutex
	CPUSeconds  float64
	MemoryBytes int64 // constant per agent ("all agents maintain constant memory usage")
	NetBytes    int64
	DiskBytes   int64
	SampleCalls int64
}

// AddCPU accumulates CPU seconds.
func (r *ResourceUsage) AddCPU(s float64) {
	r.mu.Lock()
	r.CPUSeconds += s
	r.SampleCalls++
	r.mu.Unlock()
}

// AddNet accumulates shipped bytes.
func (r *ResourceUsage) AddNet(b int64) {
	r.mu.Lock()
	r.NetBytes += b
	r.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (r *ResourceUsage) Snapshot() (cpu float64, mem, net, disk int64, calls int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.CPUSeconds, r.MemoryBytes, r.NetBytes, r.DiskBytes, r.SampleCalls
}

// cpuCostPerValue is the CPU time one value read/encode costs an agent.
const cpuCostPerValue = 2e-6

// PerfeventAgent samples PMU counters through the machine (the Linux perf
// interface in the real system). Only programmed events can be sampled.
type PerfeventAgent struct {
	m     *machine.Machine
	usage ResourceUsage
	// byMetric resolves metric names back to catalog event names; the
	// metric rendering is lossy (':' becomes '_'), so the inverse comes
	// from the catalog rather than string surgery.
	byMetric map[string]string
}

// NewPerfeventAgent wraps a machine.
func NewPerfeventAgent(m *machine.Machine) *PerfeventAgent {
	a := &PerfeventAgent{m: m, usage: ResourceUsage{MemoryBytes: 6 << 20}, byMetric: map[string]string{}}
	for _, ev := range m.Catalog().Names() {
		a.byMetric[MetricForEvent(ev)] = ev
	}
	return a
}

// Name implements Agent.
func (a *PerfeventAgent) Name() string { return AgentPerfevent }

// Usage exposes the agent's resource accounting.
func (a *PerfeventAgent) Usage() *ResourceUsage { return &a.usage }

// Metrics lists perfevent metric names: "perfevent.hwcounters.<event>" for
// every event in the catalog.
func (a *PerfeventAgent) Metrics() []string {
	var out []string
	for _, ev := range a.m.Catalog().Names() {
		out = append(out, MetricForEvent(ev))
	}
	sort.Strings(out)
	return out
}

// MetricForEvent converts an event name to its PCP metric name, matching
// the paper's Listing 1 measurement style after the tsdb rewrite
// ("perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE"): the Intel mask colon
// becomes a single underscore. The mapping is lossy, so the perfevent
// agent inverts it through its catalog, not by string surgery.
func MetricForEvent(ev string) string {
	return "perfevent.hwcounters." + strings.ReplaceAll(ev, ":", "_")
}

// EventForMetric inverts MetricForEvent using a catalog-derived table.
func (a *PerfeventAgent) EventForMetric(metric string) (string, bool) {
	ev, ok := a.byMetric[metric]
	return ev, ok
}

// Sample reads one hardware event across all hardware threads (or RAPL
// domains for energy events).
func (a *PerfeventAgent) Sample(metric string) (Sample, error) {
	ev, ok := a.EventForMetric(metric)
	if !ok {
		return Sample{}, fmt.Errorf("telemetry: %s does not serve %q", a.Name(), metric)
	}
	def, ok := a.m.Catalog().Lookup(ev)
	if !ok {
		return Sample{}, fmt.Errorf("telemetry: unknown event %q", ev)
	}
	s := Sample{Metric: metric, Values: map[string]float64{}}
	if def.PMU == "rapl" {
		for _, sk := range a.m.System().Sockets {
			r, err := a.m.RAPL(sk.ID)
			if err != nil {
				return Sample{}, err
			}
			domain := "pkg"
			if ev == pmu.RAPLEnergyDRAM {
				domain = "dram"
			}
			v, err := r.Read(domain)
			if err != nil {
				return Sample{}, err
			}
			s.Values[fmt.Sprintf("_socket%d", sk.ID)] = float64(v)
		}
	} else {
		for _, t := range a.m.System().AllThreads() {
			tp, err := a.m.ThreadPMU(t.ID)
			if err != nil {
				return Sample{}, err
			}
			v, err := tp.Read(ev)
			if err != nil {
				return Sample{}, fmt.Errorf("telemetry: cpu%d: %w", t.ID, err)
			}
			s.Values[fmt.Sprintf("_cpu%d", t.ID)] = float64(v)
		}
	}
	a.usage.AddCPU(cpuCostPerValue * float64(len(s.Values)))
	a.m.ChargeSamplingCost(len(s.Values))
	return s, nil
}

// LinuxAgent serves kernel software metrics (pmdalinux).
type LinuxAgent struct {
	m     *machine.Machine
	usage ResourceUsage
}

// NewLinuxAgent wraps a machine.
func NewLinuxAgent(m *machine.Machine) *LinuxAgent {
	return &LinuxAgent{m: m, usage: ResourceUsage{MemoryBytes: 9 << 20}}
}

// Name implements Agent.
func (a *LinuxAgent) Name() string { return AgentLinux }

// Usage exposes resource accounting.
func (a *LinuxAgent) Usage() *ResourceUsage { return &a.usage }

// Metrics implements Agent.
func (a *LinuxAgent) Metrics() []string { return machine.SWMetricNames() }

// Sample implements Agent.
func (a *LinuxAgent) Sample(metric string) (Sample, error) {
	sw, err := a.m.SampleSW(metric)
	if err != nil {
		return Sample{}, err
	}
	s := Sample{Metric: metric, Values: map[string]float64{}}
	for _, iv := range sw.Values {
		key := iv.Instance
		if key == "" {
			key = "value"
		}
		s.Values[key] = iv.Value
	}
	a.usage.AddCPU(cpuCostPerValue * float64(len(s.Values)))
	return s, nil
}

// ProcAgent serves per-process metrics (pmdaproc). Its larger instance
// domain gives it the bigger memory footprint Fig 6 shows ("pmdaproc uses
// more memory due to a larger instance domain").
type ProcAgent struct {
	m     *machine.Machine
	usage ResourceUsage
}

// NewProcAgent wraps a machine.
func NewProcAgent(m *machine.Machine) *ProcAgent {
	return &ProcAgent{m: m, usage: ResourceUsage{MemoryBytes: 54 << 20}}
}

// Name implements Agent.
func (a *ProcAgent) Name() string { return AgentProc }

// Usage exposes resource accounting.
func (a *ProcAgent) Usage() *ResourceUsage { return &a.usage }

// Proc metric names.
const (
	MetricProcRSS   = "proc.psinfo.rss"
	MetricProcUtime = "proc.psinfo.utime"
	MetricProcStime = "proc.psinfo.stime"
)

// Metrics implements Agent.
func (a *ProcAgent) Metrics() []string {
	return []string{MetricProcRSS, MetricProcStime, MetricProcUtime}
}

// Sample implements Agent. The instance domain is the set of observed
// kernel executions plus a synthetic population of OS processes.
func (a *ProcAgent) Sample(metric string) (Sample, error) {
	s := Sample{Metric: metric, Values: map[string]float64{}}
	execs := a.m.ActiveExecutions()
	now := a.m.Now()
	for i, e := range execs {
		inst := fmt.Sprintf("%06d %s", 10000+i, e.Spec.Name)
		switch metric {
		case MetricProcRSS:
			s.Values[inst] = float64(e.Spec.WorkingSetBytes * int64(len(e.Pinning)))
		case MetricProcUtime:
			s.Values[inst] = (now - e.Start) * float64(len(e.Pinning)) * 0.97
		case MetricProcStime:
			s.Values[inst] = (now - e.Start) * float64(len(e.Pinning)) * 0.03
		default:
			return Sample{}, fmt.Errorf("telemetry: %s does not serve %q", a.Name(), metric)
		}
	}
	// Background OS processes: a fixed population.
	for i := 0; i < 140; i++ {
		inst := fmt.Sprintf("%06d daemon%d", 100+i, i)
		switch metric {
		case MetricProcRSS:
			s.Values[inst] = float64((i%17 + 1)) * 1.5e6
		case MetricProcUtime:
			s.Values[inst] = now * 0.001
		case MetricProcStime:
			s.Values[inst] = now * 0.0005
		}
	}
	a.usage.AddCPU(cpuCostPerValue * float64(len(s.Values)))
	return s, nil
}

// PMCD is the coordinator: it owns the agents, routes metric requests and
// accounts the shipping overhead ("pmcd, which manages other agents and
// reports their readings").
type PMCD struct {
	m      *machine.Machine
	agents []Agent
	usage  ResourceUsage
	route  map[string]Agent
}

// NewPMCD builds the standard agent set for a machine.
func NewPMCD(m *machine.Machine) *PMCD {
	p := &PMCD{m: m, usage: ResourceUsage{MemoryBytes: 12 << 20}}
	p.register(NewPerfeventAgent(m))
	p.register(NewLinuxAgent(m))
	p.register(NewProcAgent(m))
	return p
}

func (p *PMCD) register(a Agent) {
	p.agents = append(p.agents, a)
	if p.route == nil {
		p.route = map[string]Agent{}
	}
	for _, mname := range a.Metrics() {
		p.route[mname] = a
	}
}

// Machine returns the underlying machine.
func (p *PMCD) Machine() *machine.Machine { return p.m }

// Agents returns the registered agents.
func (p *PMCD) Agents() []Agent { return p.agents }

// Agent returns the named agent.
func (p *PMCD) Agent(name string) (Agent, bool) {
	for _, a := range p.agents {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Usage returns pmcd's own resource accounting.
func (p *PMCD) Usage() *ResourceUsage { return &p.usage }

// Metrics lists every metric served by any agent, sorted.
func (p *PMCD) Metrics() []string {
	var out []string
	for mname := range p.route {
		out = append(out, mname)
	}
	sort.Strings(out)
	return out
}

// Sample routes a metric request to its agent and accounts the pmcd
// forwarding cost.
func (p *PMCD) Sample(metric string) (Sample, error) {
	a, ok := p.route[metric]
	if !ok {
		return Sample{}, fmt.Errorf("telemetry: no agent serves metric %q", metric)
	}
	s, err := a.Sample(metric)
	if err != nil {
		return Sample{}, err
	}
	p.usage.AddCPU(0.5e-6 * float64(len(s.Values)))
	return s, nil
}

// wireBytes estimates the on-the-wire size of a sample report: each value
// carries its field name, a float64 rendering and framing.
func wireBytes(s Sample) int64 {
	b := int64(len(s.Metric)) + 24
	for f := range s.Values {
		b += int64(len(f)) + 28
	}
	return b
}

// ToPoint converts a sample to a tsdb point.
func ToPoint(s Sample, tag string, timeNanos int64) tsdb.Point {
	p := tsdb.Point{
		Measurement: tsdb.MeasurementName(s.Metric),
		Fields:      map[string]float64{},
		Time:        timeNanos,
	}
	if tag != "" {
		p.Tags = map[string]string{"tag": tag}
	}
	for f, v := range s.Values {
		p.Fields[f] = v
	}
	return p
}
