package telemetry

import (
	"testing"

	"pmove/internal/tsdb"
)

// TestBufferedPipelineNeverDrops covers the ablation switch: the queued
// pipeline trades losses for staleness.
func TestBufferedPipelineNeverDrops(t *testing.T) {
	cfg := DefaultPipeline()
	cfg.Buffered = true
	cfg.InsertBaseSeconds = 0.1 // heavy pressure
	cfg.StallProb = 0
	col := NewCollector(tsdb.New(), cfg)
	s := []Sample{{Metric: "m", Values: map[string]float64{"a": 1}}}
	for i := 0; i < 20; i++ {
		if err := col.Offer(float64(i)*0.01, s, "t", false); err != nil {
			t.Fatal(err)
		}
	}
	if col.Lost != 0 {
		t.Fatalf("buffered pipeline lost %d", col.Lost)
	}
	if col.Inserted != 20 {
		t.Fatalf("inserted %d, want 20", col.Inserted)
	}
	// Backlog must have built up: the queue is absorbing the pressure.
	if col.MaxLagSeconds < 0.5 {
		t.Errorf("max lag %.3fs — queue should have grown under pressure", col.MaxLagSeconds)
	}
	if col.QueuedDelay == 0 {
		t.Error("final report should have waited behind the queue")
	}
}

// TestUnbufferedLagBounded: without buffering, the lag never exceeds one
// report's cost (the defining property of the paper's design).
func TestUnbufferedLagBounded(t *testing.T) {
	cfg := DefaultPipeline()
	cfg.InsertBaseSeconds = 0.1
	cfg.InsertPerValueSeconds = 0
	cfg.StallProb = 0
	col := NewCollector(tsdb.New(), cfg)
	s := []Sample{{Metric: "m", Values: map[string]float64{"a": 1}}}
	for i := 0; i < 20; i++ {
		if err := col.Offer(float64(i)*0.01, s, "t", false); err != nil {
			t.Fatal(err)
		}
	}
	if col.Lost == 0 {
		t.Fatal("pressure should cause drops without a buffer")
	}
	// One report costs at most ~0.13s with jitter; lag stays in that band.
	if col.MaxLagSeconds > 0.2 {
		t.Errorf("unbuffered lag %.3fs exceeds a single report cost", col.MaxLagSeconds)
	}
}
