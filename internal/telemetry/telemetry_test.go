package telemetry

import (
	"strings"
	"testing"

	"pmove/internal/machine"
	"pmove/internal/pmu"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

func newStack(t *testing.T, preset string) (*machine.Machine, *PMCD) {
	t.Helper()
	m, err := machine.New(topo.MustPreset(preset), machine.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m, NewPMCD(m)
}

func TestMetricForEventRoundTrip(t *testing.T) {
	m, _ := newStack(t, topo.PresetICL)
	agent := NewPerfeventAgent(m)
	for _, ev := range []string{"UNHALTED_CORE_CYCLES", "MEM_INST_RETIRED:ALL_LOADS", "FP_ARITH:SCALAR_DOUBLE"} {
		metric := MetricForEvent(ev)
		if !strings.HasPrefix(metric, "perfevent.hwcounters.") {
			t.Errorf("metric %q missing namespace", metric)
		}
		back, ok := agent.EventForMetric(metric)
		if !ok || back != ev {
			t.Errorf("round trip %q -> %q -> %q", ev, metric, back)
		}
	}
	if _, ok := agent.EventForMetric("kernel.all.load"); ok {
		t.Error("non-perfevent metric inverted")
	}
	// The measurement name matches the paper's Listing 1 style: single
	// underscores throughout.
	meas := tsdb.MeasurementName(MetricForEvent("FP_ARITH:SCALAR_SINGLE"))
	if meas != "perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE" {
		t.Errorf("measurement = %q, want the Listing 1 form", meas)
	}
}

func TestPMCDRouting(t *testing.T) {
	m, p := newStack(t, topo.PresetICL)
	if err := m.ProgramAll([]string{pmu.IntelCycles}); err != nil {
		t.Fatal(err)
	}
	// Perfevent metric routes to the PMU agent; per-CPU domain size 16.
	s, err := p.Sample(MetricForEvent(pmu.IntelCycles))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 16 {
		t.Errorf("perfevent domain = %d, want 16", len(s.Values))
	}
	// Linux metric routes to pmdalinux.
	s, err = p.Sample(machine.MetricCPUIdle)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 16 {
		t.Errorf("cpu.idle domain = %d", len(s.Values))
	}
	// Proc metric routes to pmdaproc; big instance domain.
	s, err = p.Sample(MetricProcRSS)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) < 100 {
		t.Errorf("proc domain = %d, want the OS process population", len(s.Values))
	}
	if _, err := p.Sample("no.such.metric"); err == nil {
		t.Error("unknown metric routed")
	}
}

func TestRAPLSampleUsesSocketDomain(t *testing.T) {
	m, p := newStack(t, topo.PresetSKX)
	_ = m
	s, err := p.Sample(MetricForEvent(pmu.RAPLEnergyPkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 2 {
		t.Errorf("RAPL domain = %v, want 2 sockets", s.Values)
	}
	if _, ok := s.Values["_socket0"]; !ok {
		t.Errorf("RAPL fields: %v", s.Values)
	}
}

func TestSampleUnprogrammedEventFails(t *testing.T) {
	_, p := newStack(t, topo.PresetICL)
	if _, err := p.Sample(MetricForEvent(pmu.IntelLoads)); err == nil {
		t.Error("sampling an unprogrammed event should fail")
	}
}

func TestToPoint(t *testing.T) {
	s := Sample{Metric: "kernel.percpu.cpu.idle", Values: map[string]float64{"_cpu0": 0.5}}
	p := ToPoint(s, "tag1", 123)
	if p.Measurement != "kernel_percpu_cpu_idle" || p.Tags["tag"] != "tag1" || p.Time != 123 {
		t.Errorf("point = %+v", p)
	}
	p2 := ToPoint(s, "", 1)
	if len(p2.Tags) != 0 {
		t.Error("empty tag should not be set")
	}
}

func TestCollectorLossWhenBusy(t *testing.T) {
	db := tsdb.New()
	cfg := DefaultPipeline()
	cfg.InsertBaseSeconds = 1.0 // pathological: each report takes 1s
	cfg.StallProb = 0
	col := NewCollector(db, cfg)
	s := []Sample{{Metric: "m", Values: map[string]float64{"a": 1}}}
	if err := col.Offer(0.0, s, "t", false); err != nil {
		t.Fatal(err)
	}
	if err := col.Offer(0.1, s, "t", false); err != nil { // pipeline still busy
		t.Fatal(err)
	}
	if col.Inserted != 1 || col.Lost != 1 || col.Expected != 2 {
		t.Errorf("inserted=%d lost=%d expected=%d", col.Inserted, col.Lost, col.Expected)
	}
	if err := col.Offer(2.0, s, "t", false); err != nil { // pipeline free again
		t.Fatal(err)
	}
	if col.Inserted != 2 {
		t.Error("free pipeline should accept")
	}
	if col.LossRate() <= 0 || col.LossRate() >= 1 {
		t.Errorf("loss rate %f", col.LossRate())
	}
}

func TestCollectorZeroBatch(t *testing.T) {
	db := tsdb.New()
	col := NewCollector(db, DefaultPipeline())
	s := []Sample{{Metric: "m", Values: map[string]float64{"a": 42, "b": 7}}}
	if err := col.Offer(0, s, "t", true); err != nil {
		t.Fatal(err)
	}
	if col.Zeros != 2 {
		t.Errorf("zeros = %d", col.Zeros)
	}
	total, zeros := db.CountValues("m")
	if total != 2 || zeros != 2 {
		t.Errorf("db: total=%d zeros=%d", total, zeros)
	}
	if col.LossPlusZeroRate() != 1 {
		t.Errorf("L+Z = %f", col.LossPlusZeroRate())
	}
}

func TestZeroBatchProbability(t *testing.T) {
	cfg := DefaultPipeline() // refresh 48ms
	if p := cfg.ZeroBatchProbability(0.5); p != 0 {
		t.Errorf("slow sampling should never batch zeros, got %f", p)
	}
	p32 := cfg.ZeroBatchProbability(1.0 / 32)
	if p32 < 0.2 || p32 > 0.6 {
		t.Errorf("32 Hz zero probability %f out of the Table III band", p32)
	}
	if p := cfg.ZeroBatchProbability(1.0 / 64); p <= p32 {
		t.Error("faster sampling should batch more zeros")
	}
}

func TestSessionValidation(t *testing.T) {
	_, p := newStack(t, topo.PresetICL)
	col := NewCollector(tsdb.New(), DefaultPipeline())
	if _, err := NewSession(p, col, SessionConfig{Metrics: []string{machine.MetricCPUIdle}, FreqHz: 0}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := NewSession(p, col, SessionConfig{FreqHz: 1}); err == nil {
		t.Error("empty metric list accepted")
	}
	if _, err := NewSession(p, col, SessionConfig{Metrics: []string{"bogus"}, FreqHz: 1}); err == nil {
		t.Error("unroutable metric accepted")
	}
	s, err := NewSession(p, col, SessionConfig{Metrics: []string{machine.MetricCPUIdle}, FreqHz: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("run without duration accepted")
	}
}

func TestSessionAdvancesVirtualClockAndWrites(t *testing.T) {
	m, p := newStack(t, topo.PresetICL)
	db := tsdb.New()
	col := NewCollector(db, DefaultPipeline())
	sess, err := NewSession(p, col, SessionConfig{
		Metrics: []string{machine.MetricCPUIdle}, FreqHz: 4, Tag: "sesstest", DurationSeconds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Now() < 5.0 {
		t.Errorf("clock at %f, want >= 5", m.Now())
	}
	if st.Ticks != 20 {
		t.Errorf("ticks = %d, want 20", st.Ticks)
	}
	if st.Expected != 20*16 {
		t.Errorf("expected = %d, want 320", st.Expected)
	}
	res, err := db.QueryString(`SELECT "_cpu0" FROM "kernel_percpu_cpu_idle" WHERE tag="sesstest"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows written")
	}
	// Timestamps must be strictly increasing with the tick interval.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Time <= res.Rows[i-1].Time {
			t.Fatal("timestamps not increasing")
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	// The headline Table III behaviour: at 32 Hz the 88-thread skx loses
	// far more data than the 16-thread icl; at 2 Hz neither loses anything
	// and no zeros appear.
	run := func(preset string, freq float64) SessionStats {
		m, p := newStack(t, preset)
		// Five metrics, as in the middle Table III rows: the three
		// never-zero events plus two more core events.
		events := m.Catalog().NeverZeroEvents()
		for _, ev := range m.Catalog().Names() {
			if len(events) >= 5 {
				break
			}
			def, _ := m.Catalog().Lookup(ev)
			dup := false
			for _, e := range events {
				dup = dup || e == ev
			}
			if def.PMU == "core" && !dup {
				events = append(events, ev)
			}
		}
		if err := m.ProgramAll(events); err != nil {
			t.Fatal(err)
		}
		metrics := make([]string, len(events))
		for i, ev := range events {
			metrics[i] = MetricForEvent(ev)
		}
		col := NewCollector(tsdb.New(), DefaultPipeline())
		sess, err := NewSession(p, col, SessionConfig{Metrics: metrics, FreqHz: freq, DurationSeconds: 10})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	skxSlow := run(topo.PresetSKX, 2)
	if skxSlow.LossPct > 1 || skxSlow.Zeros != 0 {
		t.Errorf("skx @2Hz: loss %.1f%%, zeros %d — should be clean", skxSlow.LossPct, skxSlow.Zeros)
	}
	skxFast := run(topo.PresetSKX, 32)
	iclFast := run(topo.PresetICL, 32)
	if skxFast.LossPct < 15 {
		t.Errorf("skx @32Hz: loss %.1f%%, want the heavy losses of Table III", skxFast.LossPct)
	}
	if iclFast.LossPct > 10 {
		t.Errorf("icl @32Hz: loss %.1f%%, should stay small", iclFast.LossPct)
	}
	if skxFast.LossPct < iclFast.LossPct*2 {
		t.Errorf("loss should scale with instance-domain size: skx %.1f%% vs icl %.1f%%",
			skxFast.LossPct, iclFast.LossPct)
	}
	if iclFast.Zeros == 0 {
		t.Error("high-frequency sampling should produce batched zeros")
	}
	if iclFast.ATput >= iclFast.Tput {
		t.Error("actual throughput must exclude zeros")
	}
}

func TestAgentResourceAccounting(t *testing.T) {
	m, p := newStack(t, topo.PresetSKX)
	_ = m
	// Memory is constant; CPU accrues per sample.
	la, _ := p.Agent(AgentLinux)
	lu := la.(*LinuxAgent).Usage()
	cpu0, mem0, _, _, _ := lu.Snapshot()
	for i := 0; i < 100; i++ {
		if _, err := p.Sample(machine.MetricCPUIdle); err != nil {
			t.Fatal(err)
		}
	}
	cpu1, mem1, _, _, calls := lu.Snapshot()
	if cpu1 <= cpu0 {
		t.Error("CPU accounting did not accrue")
	}
	if mem1 != mem0 {
		t.Error("agent memory should stay constant (Fig 6)")
	}
	if calls != 100 {
		t.Errorf("calls = %d", calls)
	}
	// pmdaproc has the largest footprint.
	pa, _ := p.Agent(AgentProc)
	_, memProc, _, _, _ := pa.(*ProcAgent).Usage().Snapshot()
	if memProc <= mem1 {
		t.Error("pmdaproc should have the larger instance-domain memory")
	}
}

func TestSamplingCostChargesMachine(t *testing.T) {
	m, p := newStack(t, topo.PresetICL)
	if err := m.ProgramAll([]string{pmu.IntelCycles}); err != nil {
		t.Fatal(err)
	}
	exec, err := m.Launch(machine.WorkloadSpec{
		Name: "victim", Iters: 100_000_000,
		FPInstr: map[topo.ISA]float64{topo.ISAScalar: 1},
		Loads:   1, MemISA: topo.ISAScalar, WorkingSetBytes: 8 << 10,
	}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	before := exec.Duration
	for i := 0; i < 50; i++ {
		if _, err := p.Sample(MetricForEvent(pmu.IntelCycles)); err != nil {
			t.Fatal(err)
		}
	}
	if exec.Duration <= before {
		t.Error("PMU sampling should interfere with the running kernel (Fig 5)")
	}
}
