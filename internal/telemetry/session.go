package telemetry

import (
	"context"
	"fmt"
	"sort"
)

// SessionConfig describes one sampling session: which metrics to sample at
// what frequency for how long, shipping to which collector.
type SessionConfig struct {
	Metrics []string
	FreqHz  float64
	Tag     string // observation tag written to every point
	// DurationSeconds bounds the session; 0 requires Stop conditions from
	// the caller via RunUntil.
	DurationSeconds float64
}

// SessionStats summarises a finished session — one Table III row.
type SessionStats struct {
	Host     string
	FreqHz   float64
	NMetrics int
	Ticks    uint64
	Expected uint64
	Inserted uint64
	Zeros    uint64
	Lost     uint64
	// Degraded-mode counters (zero unless PipelineConfig.Degraded): points
	// spilled to the outage journal, spilled points replayed into the
	// sink, journal points evicted by the cap, and the backlog still
	// awaiting replay when the session ended. Spilled/Replayed/
	// SpillDropped count data points (fields); Pending counts journal
	// entries (one per sample), matching JournalCap's unit.
	Spilled      uint64
	Replayed     uint64
	SpillDropped uint64
	Pending      uint64
	// Recovered is the collector's cumulative count of data points
	// reloaded from the on-disk spill journal at startup (OpenJournal) —
	// the backlog this collector inherited from a crashed predecessor.
	// Unlike the other counters it is not a per-session delta: recovery
	// happens before the first session, and the inherited debt is
	// relevant to every session that replays it.
	Recovered uint64
	// Tput is inserted data points per second; ATput excludes zeros
	// (Table III's "actual" throughput).
	Tput         float64
	ATput        float64
	LossPct      float64
	LossPlusZPct float64
}

// Session is a sampling run binding a target's PMCD to a host collector.
type Session struct {
	PMCD      *PMCD
	Collector *Collector
	Cfg       SessionConfig
}

// NewSession validates the configuration and builds a session.
func NewSession(p *PMCD, c *Collector, cfg SessionConfig) (*Session, error) {
	if cfg.FreqHz <= 0 {
		return nil, fmt.Errorf("telemetry: sampling frequency must be positive, got %g", cfg.FreqHz)
	}
	if len(cfg.Metrics) == 0 {
		return nil, fmt.Errorf("telemetry: session has no metrics")
	}
	route := map[string]bool{}
	for _, m := range p.Metrics() {
		route[m] = true
	}
	for _, m := range cfg.Metrics {
		if !route[m] {
			return nil, fmt.Errorf("telemetry: no agent serves metric %q", m)
		}
	}
	return &Session{PMCD: p, Collector: c, Cfg: cfg}, nil
}

// Run executes the session for its configured duration with a background
// context.
func (s *Session) Run() (SessionStats, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the session for its configured duration, driving
// the machine's virtual clock tick by tick, and returns the statistics.
// Cancelling ctx stops the loop at the next tick.
func (s *Session) RunContext(ctx context.Context) (SessionStats, error) {
	if s.Cfg.DurationSeconds <= 0 {
		return SessionStats{}, fmt.Errorf("telemetry: session duration must be positive")
	}
	ticks := uint64(s.Cfg.DurationSeconds * s.Cfg.FreqHz)
	return s.RunTicksContext(ctx, ticks)
}

// RunTicks executes exactly n sampling ticks with a background context.
func (s *Session) RunTicks(n uint64) (SessionStats, error) {
	return s.RunTicksContext(context.Background(), n)
}

// RunTicksContext executes exactly n sampling ticks, checking ctx before
// each one so a cancelled caller stops within one tick.
func (s *Session) RunTicksContext(ctx context.Context, n uint64) (stats SessionStats, err error) {
	ctx, span := s.Collector.Self.StartSpan(ctx, "telemetry.session")
	defer func() { span.End(err) }()
	m := s.PMCD.Machine()
	interval := 1 / s.Cfg.FreqHz
	start := m.Now()
	zeroProb := s.Collector.Cfg.ZeroBatchProbability(interval)
	metrics := append([]string(nil), s.Cfg.Metrics...)
	sort.Strings(metrics)

	startExpected, startInserted := s.Collector.Expected, s.Collector.Inserted
	startZeros, startLost := s.Collector.Zeros, s.Collector.Lost
	startSpilled, startReplayed := s.Collector.Spilled, s.Collector.Replayed
	startSpillDropped := s.Collector.SpillDropped

	for tick := uint64(1); tick <= n; tick++ {
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("telemetry: session: %w", cerr)
			return SessionStats{}, err
		}
		t := start + float64(tick)*interval
		if aerr := m.AdvanceTo(t); aerr != nil {
			err = aerr
			return SessionStats{}, err
		}
		samples := make([]Sample, 0, len(metrics))
		for _, metric := range metrics {
			sm, serr := s.PMCD.Sample(metric)
			if serr != nil {
				err = serr
				return SessionStats{}, err
			}
			samples = append(samples, sm)
		}
		zeroBatch := zeroProb > 0 && s.Collector.jitter() < zeroProb
		if oerr := s.Collector.OfferContext(ctx, t, samples, s.Cfg.Tag, zeroBatch); oerr != nil {
			err = oerr
			return SessionStats{}, err
		}
	}

	// Final catch-up: a sink that recovered late gets one more chance to
	// absorb the outage backlog before the session reports.
	if s.Collector.Cfg.Degraded && s.Collector.PendingSpill() > 0 {
		s.Collector.ReplayContext(ctx)
	}

	st := SessionStats{
		Host:         m.System().Hostname,
		FreqHz:       s.Cfg.FreqHz,
		NMetrics:     len(metrics),
		Ticks:        n,
		Expected:     s.Collector.Expected - startExpected,
		Inserted:     s.Collector.Inserted - startInserted,
		Zeros:        s.Collector.Zeros - startZeros,
		Lost:         s.Collector.Lost - startLost,
		Spilled:      s.Collector.Spilled - startSpilled,
		Replayed:     s.Collector.Replayed - startReplayed,
		SpillDropped: s.Collector.SpillDropped - startSpillDropped,
		Pending:      uint64(s.Collector.PendingSpill()),
		Recovered:    s.Collector.RecoveredSpill,
	}
	dur := float64(n) * interval
	if dur > 0 {
		st.Tput = float64(st.Inserted) / dur
		st.ATput = float64(st.Inserted-st.Zeros) / dur
	}
	if st.Expected > 0 {
		st.LossPct = 100 * float64(st.Lost) / float64(st.Expected)
		st.LossPlusZPct = 100 * float64(st.Lost+st.Zeros) / float64(st.Expected)
	}
	return st, nil
}
