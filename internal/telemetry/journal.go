package telemetry

import (
	"fmt"
	"os"
	"path/filepath"

	"pmove/internal/storage"
	"pmove/internal/tsdb"
)

// On-disk spill journal: an opt-in durability layer under the degraded
// mode's in-memory outage journal. When PipelineConfig.JournalDir is
// set, every spilled point is also appended to a write-ahead log (the
// same length-prefixed CRC32C framing internal/storage uses for the
// database WALs, one line-protocol-encoded point per record), so a
// collector that crashes mid-outage resumes the backlog on restart
// instead of silently forgetting acknowledged-as-spilled data. The file
// is compacted back down to the live backlog at every replay boundary,
// making recovery at-least-once: a crash between a sink write and the
// compaction can re-deliver a point, never lose one.

// journalFileName is the spill journal file inside JournalDir.
const journalFileName = "journal.wal"

// OpenJournal binds the collector to the on-disk spill journal in
// Cfg.JournalDir, creating the directory as needed, and reloads any
// backlog a previous incarnation left behind into the in-memory journal
// (oldest first, re-applying the cap). It returns how many journal
// entries were recovered. No-op returning 0 when JournalDir is unset.
// Call once before the first session; points recovered here are counted
// in RecoveredSpill, the term that joins Expected on the left side of
// the conservation law.
func (c *Collector) OpenJournal() (int, error) {
	if c.Cfg.JournalDir == "" {
		return 0, nil
	}
	if err := os.MkdirAll(c.Cfg.JournalDir, 0o755); err != nil {
		return 0, fmt.Errorf("telemetry: journal dir: %w", err)
	}
	path := filepath.Join(c.Cfg.JournalDir, journalFileName)
	w, recs, _, err := storage.OpenWAL(path, storage.FsyncAlways)
	if err != nil {
		return 0, fmt.Errorf("telemetry: open journal: %w", err)
	}
	reg := c.Self.Metrics()
	recovered := 0
	for _, r := range recs {
		p, derr := tsdb.DecodeLine(string(r.Data))
		if derr != nil {
			w.Close()
			return 0, fmt.Errorf("telemetry: journal record %d: %w", r.Seq, derr)
		}
		c.journal = append(c.journal, p)
		c.RecoveredSpill += uint64(len(p.Fields))
		recovered++
	}
	for len(c.journal) > c.journalCap() {
		dropped := c.journal[0]
		c.journal = c.journal[1:]
		c.SpillDropped += uint64(len(dropped.Fields))
		reg.Counter("telemetry.journal.dropped").Add(uint64(len(dropped.Fields)))
	}
	c.journalWAL = w
	c.journalPath = path
	if len(c.journal) > 0 {
		// A recovered backlog means the last incarnation died degraded;
		// resume in that state so Offer replays it ahead of fresh data.
		c.degraded = true
	}
	reg.Counter("telemetry.journal.recovered").Add(uint64(recovered))
	reg.Gauge("telemetry.journal.pending").Set(float64(len(c.journal)))
	return recovered, nil
}

// JournalPath returns the on-disk journal path ("" when not open).
func (c *Collector) JournalPath() string { return c.journalPath }

// persistSpill appends one spilled point to the on-disk journal. Spill
// itself must not fail — a persistence error is counted, not returned,
// and degrades that point to memory-only durability.
func (c *Collector) persistSpill(p tsdb.Point) {
	if c.journalWAL == nil {
		return
	}
	line, err := tsdb.EncodeLine(p)
	if err == nil {
		_, err = c.journalWAL.Append([]byte(line))
	}
	if err != nil {
		c.Self.Metrics().Counter("telemetry.journal.persist_errors").Inc()
	}
}

// compactJournal rewrites the on-disk journal to exactly the current
// in-memory backlog (atomically: temp file + rename), discarding
// replayed and evicted entries. Called at replay boundaries and on
// CloseJournal.
func (c *Collector) compactJournal() {
	if c.journalWAL == nil {
		return
	}
	payloads := make([][]byte, 0, len(c.journal))
	for _, p := range c.journal {
		line, err := tsdb.EncodeLine(p)
		if err != nil {
			continue
		}
		payloads = append(payloads, []byte(line))
	}
	c.journalWAL.Close()
	w, _, err := storage.RewriteWAL(c.journalPath, storage.FsyncAlways, payloads)
	if err != nil {
		c.journalWAL = nil
		c.Self.Metrics().Counter("telemetry.journal.persist_errors").Inc()
		return
	}
	c.journalWAL = w
}

// CloseJournal compacts the on-disk journal down to the live backlog
// and releases it. Safe on collectors without a journal.
func (c *Collector) CloseJournal() error {
	if c.journalWAL == nil {
		return nil
	}
	c.compactJournal()
	if c.journalWAL == nil {
		return nil
	}
	err := c.journalWAL.Close()
	c.journalWAL = nil
	return err
}
