package telemetry

import (
	"errors"
	"os"
	"testing"

	"pmove/internal/tsdb"
)

// switchSink fails every write while down, then lands points in the
// embedded db once up — the minimal outage model for journal tests.
type switchSink struct {
	down bool
	db   *tsdb.DB
}

func (s *switchSink) WritePoint(p tsdb.Point) error {
	if s.down {
		return errors.New("sink down")
	}
	return s.db.WritePoint(p)
}

func journalSamples(v float64) []Sample {
	return []Sample{{Metric: "cpu.idle", Values: map[string]float64{"value": v}}}
}

// TestJournalPersistAndRecover: points spilled during an outage survive
// a collector crash via the on-disk journal, replay exactly once into
// the recovered sink, and the conservation law extended with
// RecoveredSpill holds on the successor.
func TestJournalPersistAndRecover(t *testing.T) {
	dir := t.TempDir()
	sink := &switchSink{down: true, db: tsdb.New()}
	cfg := PipelineConfig{Seed: 1, Degraded: true, JournalDir: dir}

	colA := NewCollector(nil, cfg)
	colA.Sink = sink
	if n, err := colA.OpenJournal(); err != nil || n != 0 {
		t.Fatalf("fresh journal: recovered %d, err %v", n, err)
	}
	const spills = 5
	for i := 0; i < spills; i++ {
		if err := colA.Offer(float64(i+1), journalSamples(float64(i)), "j", false); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
	}
	if colA.Spilled != spills {
		t.Fatalf("spilled %d, want %d", colA.Spilled, spills)
	}
	// Crash: no CloseJournal, the process just dies.

	sink.down = false
	colB := NewCollector(nil, cfg)
	colB.Sink = sink
	n, err := colB.OpenJournal()
	if err != nil {
		t.Fatalf("recover journal: %v", err)
	}
	if n != spills {
		t.Fatalf("recovered %d entries, want %d", n, spills)
	}
	if colB.RecoveredSpill != spills {
		t.Fatalf("RecoveredSpill = %d, want %d", colB.RecoveredSpill, spills)
	}
	if !colB.Degraded() {
		t.Fatal("collector with inherited backlog must resume degraded")
	}
	if left := colB.Replay(); left != 0 {
		t.Fatalf("replay left %d points against a healthy sink", left)
	}
	if total, _ := sink.db.CountValues("cpu_idle"); total != spills {
		t.Fatalf("sink holds %d values, want %d", total, spills)
	}
	// Conservation on the successor: nothing expected, everything
	// recovered and inserted.
	if colB.Expected+colB.RecoveredSpill != colB.Inserted+colB.Lost+colB.SpillDropped+colB.PendingSpillFields() {
		t.Fatalf("conservation violated: %+v", *colB)
	}

	// The replay compacted the on-disk journal: a third incarnation
	// inherits nothing (no double delivery).
	colC := NewCollector(nil, cfg)
	if n, err := colC.OpenJournal(); err != nil || n != 0 {
		t.Fatalf("journal not compacted after replay: recovered %d, err %v", n, err)
	}
	colB.CloseJournal()
	colC.CloseJournal()
}

// TestJournalTornTailRecovers: a crash mid-append leaves a torn final
// record; recovery keeps the clean prefix and carries on.
func TestJournalTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	sink := &switchSink{down: true, db: tsdb.New()}
	cfg := PipelineConfig{Seed: 1, Degraded: true, JournalDir: dir}
	col := NewCollector(nil, cfg)
	col.Sink = sink
	if _, err := col.OpenJournal(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := col.Offer(float64(i+1), journalSamples(1), "j", false); err != nil {
			t.Fatal(err)
		}
	}
	path := col.JournalPath()
	// Crash mid-append: garbage that parses as a frame header promising
	// more bytes than follow.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := NewCollector(nil, cfg)
	n, err := re.OpenJournal()
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if n != 3 {
		t.Fatalf("recovered %d entries, want the 3-entry clean prefix", n)
	}
	re.CloseJournal()
}

// TestJournalCapAppliesOnRecovery: a recovered backlog larger than the
// cap is trimmed oldest-first, counted as SpillDropped.
func TestJournalCapAppliesOnRecovery(t *testing.T) {
	dir := t.TempDir()
	sink := &switchSink{down: true, db: tsdb.New()}
	write := PipelineConfig{Seed: 1, Degraded: true, JournalDir: dir}
	col := NewCollector(nil, write)
	col.Sink = sink
	if _, err := col.OpenJournal(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := col.Offer(float64(i+1), journalSamples(float64(i)), "j", false); err != nil {
			t.Fatal(err)
		}
	}

	read := write
	read.JournalCap = 4
	re := NewCollector(nil, read)
	if _, err := re.OpenJournal(); err != nil {
		t.Fatal(err)
	}
	if re.PendingSpill() != 4 {
		t.Fatalf("pending %d after capped recovery, want 4", re.PendingSpill())
	}
	if re.SpillDropped != 2 {
		t.Fatalf("SpillDropped = %d, want 2", re.SpillDropped)
	}
	if re.Expected+re.RecoveredSpill != re.Inserted+re.Lost+re.SpillDropped+re.PendingSpillFields() {
		t.Fatalf("conservation violated after capped recovery: %+v", *re)
	}
	re.CloseJournal()
}
