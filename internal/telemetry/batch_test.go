package telemetry

import (
	"context"
	"fmt"
	"testing"

	"pmove/internal/tsdb"
)

// tickSamples builds one report of several measurements, the shape one
// monitoring tick produces.
func tickSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			Metric: fmt.Sprintf("kernel.metric%d", i),
			Values: map[string]float64{"_cpu0": float64(i), "_cpu1": float64(i) * 2},
		}
	}
	return out
}

// TestOfferBatchedUnbatchedEquivalence: the batched shipment path must
// be accounting-identical to the per-point path — same Expected /
// Inserted / Zeros / Lost and the same stored data — for the same
// offered load. Only the wire/WAL granularity differs.
func TestOfferBatchedUnbatchedEquivalence(t *testing.T) {
	run := func(unbatched bool) (*Collector, *tsdb.DB) {
		db := tsdb.New()
		cfg := DefaultPipeline()
		cfg.StallProb = 0
		cfg.Unbatched = unbatched
		col := NewCollector(db, cfg)
		for tick := 0; tick < 10; tick++ {
			now := float64(tick) * 0.1
			if err := col.Offer(now, tickSamples(5), "t", tick%3 == 2); err != nil {
				t.Fatal(err)
			}
		}
		return col, db
	}
	b, bdb := run(false)
	u, udb := run(true)
	if b.Expected != u.Expected || b.Inserted != u.Inserted || b.Zeros != u.Zeros || b.Lost != u.Lost {
		t.Fatalf("accounting diverged: batched {E:%d I:%d Z:%d L:%d} vs unbatched {E:%d I:%d Z:%d L:%d}",
			b.Expected, b.Inserted, b.Zeros, b.Lost,
			u.Expected, u.Inserted, u.Zeros, u.Lost)
	}
	bp, bv := bdb.Stats()
	up, uv := udb.Stats()
	if bp != up || bv != uv {
		t.Fatalf("stored data diverged: batched (%d, %d) vs unbatched (%d, %d)", bp, bv, up, uv)
	}
	for _, m := range bdb.Measurements() {
		bt, bz := bdb.CountValues(m)
		ut, uz := udb.CountValues(m)
		if bt != ut || bz != uz {
			t.Fatalf("%s: batched (%d, %d) vs unbatched (%d, %d)", m, bt, bz, ut, uz)
		}
	}
}

// failingBatchSink accepts single points but fails every batch write —
// the asymmetric-failure case the degraded path must spill through.
type failingBatchSink struct{ db *tsdb.DB }

func (s *failingBatchSink) WritePoint(p tsdb.Point) error { return s.db.WritePoint(p) }
func (s *failingBatchSink) WriteBatchContext(ctx context.Context, ps []tsdb.Point) error {
	return fmt.Errorf("batch sink down")
}

// TestOfferBatchFailureSpillsWhole: in Degraded mode a failed batch
// spills every point of the tick (whole-tick granularity), and the
// conservation law still balances.
func TestOfferBatchFailureSpillsWhole(t *testing.T) {
	db := tsdb.New()
	cfg := DefaultPipeline()
	cfg.StallProb = 0
	cfg.Degraded = true
	col := NewCollector(db, cfg)
	col.Sink = &failingBatchSink{db: db}
	if err := col.Offer(0, tickSamples(4), "t", false); err != nil {
		t.Fatal(err)
	}
	if col.Inserted != 0 {
		t.Fatalf("failed batch reported %d inserted", col.Inserted)
	}
	if col.Spilled != col.Expected || col.PendingSpillFields() != col.Expected {
		t.Fatalf("spilled %d / pending %d, want all %d expected points",
			col.Spilled, col.PendingSpillFields(), col.Expected)
	}
	if got := col.Inserted + col.Lost + col.SpillDropped + col.PendingSpillFields(); got != col.Expected {
		t.Fatalf("conservation violated: %d != expected %d", got, col.Expected)
	}
	// Non-degraded: the same failure aborts the offer with an error.
	strict := NewCollector(db, func() PipelineConfig { c := DefaultPipeline(); c.StallProb = 0; return c }())
	strict.Sink = &failingBatchSink{db: db}
	if err := strict.Offer(0, tickSamples(4), "t", false); err == nil {
		t.Fatal("non-degraded batch failure did not abort")
	}
}

// TestOfferUnbatchedConfigForcesPerPoint: with Unbatched set, a sink
// whose batch path always fails is never asked for it — the per-point
// path carries the tick.
func TestOfferUnbatchedConfigForcesPerPoint(t *testing.T) {
	db := tsdb.New()
	cfg := DefaultPipeline()
	cfg.StallProb = 0
	cfg.Unbatched = true
	col := NewCollector(db, cfg)
	col.Sink = &failingBatchSink{db: db}
	if err := col.Offer(0, tickSamples(3), "t", false); err != nil {
		t.Fatalf("unbatched offer used the batch path: %v", err)
	}
	if col.Inserted != col.Expected {
		t.Fatalf("inserted %d of %d", col.Inserted, col.Expected)
	}
}
