package superdb

import (
	"context"
	"math"
	"testing"

	"pmove/internal/docdb"
	"pmove/internal/tsdb"
)

// startServers brings up in-process docdb/tsdb TCP servers (what
// cmd/superdb runs) and returns their addresses.
func startServers(t *testing.T) (docAddr, tsAddr string) {
	t.Helper()
	docs := docdb.New()
	ts := tsdb.New()
	dsrv := docdb.NewServer(docs)
	da, err := dsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dsrv.Close() })
	tsrv := tsdb.NewServer(ts)
	ta, err := tsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tsrv.Close() })
	return da, ta
}

func TestRemoteEndToEnd(t *testing.T) {
	docAddr, tsAddr := startServers(t)
	r, err := DialRemote(docAddr, tsAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	k := testKB(t, "skx")
	if err := r.ReportKB(k); err != nil {
		t.Fatal(err)
	}
	// Re-reporting upserts.
	if err := r.ReportKB(k); err != nil {
		t.Fatal(err)
	}
	hosts, err := r.Hosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 1 || hosts[0] != "skx" {
		t.Fatalf("hosts: %v", hosts)
	}

	// Ship a TS observation over the wire, then recall it remotely.
	local := tsdb.New()
	obs := seedObservation(t, local, "skx", "remote-tag")
	if err := r.ReportObservation(obs, local, ModeTS); err != nil {
		t.Fatal(err)
	}
	res, err := r.QueryObservation("skx", "remote-tag", "perfevent_hwcounters_X", []string{"_cpu0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("recalled rows: %d", len(res.Rows))
	}

	// AGG mode uploads only the summary document.
	obs2 := seedObservation(t, local, "skx", "remote-agg")
	if err := r.ReportObservation(obs2, local, ModeAGG); err != nil {
		t.Fatal(err)
	}
	res, err = r.QueryObservation("skx", "remote-agg", "perfevent_hwcounters_X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Error("AGG upload shipped raw rows")
	}
	docs, err := r.Docs.Find(CollObservations, &docdb.Filter{Eq: map[string]any{"tag": "remote-agg"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("agg docs: %d", len(docs))
	}
	if aggs, ok := docs[0]["aggs"].([]any); !ok || len(aggs) != 2 {
		t.Errorf("agg payload: %v", docs[0]["aggs"])
	}
}

func TestDialRemoteFailures(t *testing.T) {
	if _, err := DialRemote("127.0.0.1:1", "127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	_, tsAddr := startServers(t)
	if _, err := DialRemote("127.0.0.1:1", tsAddr); err == nil {
		t.Fatal("half-open dial succeeded")
	}
}

// TestAggregateObservationRemote summarises an uploaded observation on
// the server: the wire-level aggregate SELECT must reproduce the same
// statistics the local fold computes, and the star/empty field shapes
// are rejected before touching the wire.
func TestAggregateObservationRemote(t *testing.T) {
	docAddr, tsAddr := startServers(t)
	r, err := DialRemote(docAddr, tsAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	local := tsdb.New()
	obs := seedObservation(t, local, "skx", "remote-sum")
	if err := r.ReportObservation(obs, local, ModeTS); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	aggs, err := r.AggregateObservationContext(ctx, "skx", "remote-sum",
		"perfevent_hwcounters_X", []string{"_cpu0", "_cpu1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("aggregate rows: %+v", aggs)
	}
	byField := map[string]Aggregates{}
	for _, a := range aggs {
		byField[a.Field] = a
	}
	// _cpu0 carries 0..9, _cpu1 carries 0,2,..,18 (seedObservation).
	c0 := byField["_cpu0"]
	if c0.Count != 10 || c0.Min != 0 || c0.Max != 9 || math.Abs(c0.Mean-4.5) > 1e-9 {
		t.Errorf("_cpu0 aggregates: %+v", c0)
	}
	c1 := byField["_cpu1"]
	if c1.Count != 10 || c1.Max != 18 || math.Abs(c1.Mean-9) > 1e-9 {
		t.Errorf("_cpu1 aggregates: %+v", c1)
	}

	if _, err := r.AggregateObservationContext(ctx, "skx", "remote-sum", "perfevent_hwcounters_X", nil); err == nil {
		t.Fatal("empty field list accepted")
	}
	if _, err := r.AggregateObservationContext(ctx, "skx", "remote-sum", "perfevent_hwcounters_X", []string{"*"}); err == nil {
		t.Fatal("star field accepted")
	}
}
