package superdb

import (
	"context"
	"fmt"
	"sort"

	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/kb"
	"pmove/internal/ontology"
	"pmove/internal/resilience"
	"pmove/internal/tsdb"
)

// Remote is a SUPERDB client over the network: the paper's deployment has
// "cloud instances of MongoDB and InfluxDB"; here the docdb and tsdb TCP
// servers (see cmd/superdb) play those roles. Local P-MoVE instances use
// a Remote to report their KBs and observations.
type Remote struct {
	Docs *docdb.Client
	TS   *tsdb.Client

	// in records client-side superdb.* spans around the compound report
	// and query ops, so a distributed trace shows the superdb hop above
	// the per-transport attempts. Nil-safe.
	in *introspect.Introspector
}

// DialRemote connects to a running cmd/superdb instance with the default
// resilience policy.
func DialRemote(docAddr, tsAddr string) (*Remote, error) {
	return DialRemoteWith(docAddr, tsAddr, resilience.DefaultPolicy())
}

// DialRemoteWith connects with an explicit resilience policy shared by
// both clients — the knob cmd/pmove exposes for chaos runs.
func DialRemoteWith(docAddr, tsAddr string, pol resilience.Policy) (*Remote, error) {
	dc, err := docdb.DialPolicy(docAddr, pol)
	if err != nil {
		return nil, fmt.Errorf("superdb: documents: %w", err)
	}
	tc, err := tsdb.DialPolicy(tsAddr, pol)
	if err != nil {
		dc.Close()
		return nil, fmt.Errorf("superdb: time series: %w", err)
	}
	return &Remote{Docs: dc, TS: tc}, nil
}

// SetIntrospection mirrors both clients' transport fault handling into
// the self-observability registry, under transport.superdb_docs.* and
// transport.superdb_ts.*.
func (r *Remote) SetIntrospection(in *introspect.Introspector) {
	r.in = in
	r.Docs.Transport().SetIntrospection(in, "superdb_docs")
	r.TS.Transport().SetIntrospection(in, "superdb_ts")
}

// SetLogger routes both transports' degradation events (fast-fails,
// breaker opens, retry exhaustion) into a structured log ring, tagged
// per store so `pmove logs -component transport.superdb_ts` isolates
// one leg. Nil-safe.
func (r *Remote) SetLogger(l *logbuf.Logger) {
	r.Docs.Transport().SetLogger(l.With("transport.superdb_docs"))
	r.TS.Transport().SetLogger(l.With("transport.superdb_ts"))
}

// Ping verifies both stores answer end to end with a background context.
func (r *Remote) Ping() error {
	return r.PingContext(context.Background())
}

// PingContext verifies both stores answer end to end.
func (r *Remote) PingContext(ctx context.Context) error {
	if err := r.Docs.PingContext(ctx); err != nil {
		return fmt.Errorf("superdb: documents: %w", err)
	}
	if err := r.TS.PingContext(ctx); err != nil {
		return fmt.Errorf("superdb: time series: %w", err)
	}
	return nil
}

// ReportJob uploads one completed job's metadata document (built with
// docdb.FromValue; must carry an "_id") into the jobs collection — the
// cluster KB's "historical job metadata" reaching the global store.
func (r *Remote) ReportJob(doc docdb.Doc) error {
	return r.ReportJobContext(context.Background(), doc)
}

// ReportJobContext uploads one job metadata document.
func (r *Remote) ReportJobContext(ctx context.Context, doc docdb.Doc) (err error) {
	ctx, span := r.in.StartSpan(ctx, "superdb.report_job")
	defer func() { span.End(err) }()
	_, err = r.Docs.UpsertContext(ctx, CollJobs, doc)
	return err
}

// Close releases both connections.
func (r *Remote) Close() error {
	err1 := r.Docs.Close()
	err2 := r.TS.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ReportKB uploads a system's KB summary with a background context.
func (r *Remote) ReportKB(k *kb.KB) error {
	return r.ReportKBContext(context.Background(), k)
}

// ReportKBContext uploads a system's KB summary, replacing any prior
// upload for the same host.
func (r *Remote) ReportKBContext(ctx context.Context, k *kb.KB) (err error) {
	ctx, span := r.in.StartSpan(ctx, "superdb.report_kb")
	defer func() { span.End(err) }()
	doc, err := docdb.FromValue(map[string]any{
		"_id":       "kb:" + k.Host,
		"host":      k.Host,
		"nodes":     k.Len(),
		"microarch": k.Probe.System.CPU.Microarch,
		"vendor":    string(k.Probe.System.CPU.Vendor),
		"threads":   k.Probe.System.NumThreads(),
	})
	if err != nil {
		return err
	}
	_, err = r.Docs.UpsertContext(ctx, CollKBs, doc)
	return err
}

// reportBatchSize chunks observation uploads: large observations ship
// as a few full frames instead of |rows| round-trips, while staying
// comfortably under the server's MaxBatchPoints bound.
const reportBatchSize = 256

// WriteBatch ships a batch of points to the global time-series store
// with a background context.
//
// Deprecated: use WriteBatchContext.
func (r *Remote) WriteBatch(ps []tsdb.Point) error {
	return r.WriteBatchContext(context.Background(), ps)
}

// WriteBatchContext ships a batch of points to the global time-series
// store in one round-trip (tsdb WRITEB semantics: validated up front,
// idempotent under retry). Remote thereby satisfies tsdb.BatchWriter,
// the unified batched write surface.
func (r *Remote) WriteBatchContext(ctx context.Context, ps []tsdb.Point) (err error) {
	ctx, span := r.in.StartSpan(ctx, "superdb.write_batch")
	defer func() { span.End(err) }()
	return r.TS.WriteBatchContext(ctx, ps)
}

// ReportObservation uploads one observation with a background context.
func (r *Remote) ReportObservation(o *kb.Observation, local *tsdb.DB, mode ReportMode) error {
	return r.ReportObservationContext(context.Background(), o, local, mode)
}

// ReportObservationContext uploads one observation over the wire, with
// the same TS/AGG split as the embedded SuperDB. Cancelling ctx aborts
// between (and inside) point uploads.
func (r *Remote) ReportObservationContext(ctx context.Context, o *kb.Observation, local *tsdb.DB, mode ReportMode) (err error) {
	ctx, span := r.in.StartSpan(ctx, "superdb.report_observation")
	defer func() { span.End(err) }()
	kind := ontology.EntryTSObservation
	if mode == ModeAGG {
		kind = ontology.EntryAGGObservation
	}
	var aggs []Aggregates
	rawPoints := 0
	// ModeTS rows accumulate here and ship as chunked batch frames (one
	// round-trip per reportBatchSize rows) instead of one WRITE per row.
	var pending []tsdb.Point
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := r.TS.WriteBatchContext(ctx, pending); err != nil {
			return err
		}
		rawPoints += len(pending)
		pending = pending[:0]
		return nil
	}
	for _, m := range o.Metrics {
		if mode == ModeAGG && !hasStar(m.Fields) {
			sq := summaryQuery(m.Measurement, map[string]string{"tag": o.Tag}, m.Fields)
			res, err := local.ExecuteContext(ctx, tsdb.QueryRequest{Query: sq})
			if err != nil {
				return fmt.Errorf("superdb: aggregate %s: %w", m.Measurement, err)
			}
			aggs = append(aggs, summaryFromResult(m.Measurement, m.Fields, res)...)
			continue
		}
		res, err := local.ExecuteContext(ctx, tsdb.QueryRequest{Query: &tsdb.Query{
			Fields:      m.Fields,
			Measurement: m.Measurement,
			TagFilter:   map[string]string{"tag": o.Tag},
		}})
		if err != nil {
			return fmt.Errorf("superdb: fetch %s: %w", m.Measurement, err)
		}
		switch mode {
		case ModeTS:
			for _, row := range res.Rows {
				if len(row.Values) == 0 {
					continue
				}
				pending = append(pending, tsdb.Point{
					Measurement: m.Measurement,
					Tags:        map[string]string{"tag": o.Tag, "host": o.Host},
					Fields:      row.Values,
					Time:        row.Time,
				})
				if len(pending) >= reportBatchSize {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		case ModeAGG:
			byField := map[string][]float64{}
			for _, row := range res.Rows {
				for f, v := range row.Values {
					byField[f] = append(byField[f], v)
				}
			}
			var fields []string
			for f := range byField {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				aggs = append(aggs, aggregate(m.Measurement, f, byField[f]))
			}
		default:
			return fmt.Errorf("superdb: unknown report mode %q", mode)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	doc, err := docdb.FromValue(map[string]any{
		"_id":     fmt.Sprintf("obs:%s:%s", o.Host, o.Tag),
		"kind":    string(kind),
		"host":    o.Host,
		"tag":     o.Tag,
		"command": o.Command,
		"metrics": o.Metrics,
		"aggs":    aggs,
		"points":  rawPoints,
	})
	if err != nil {
		return err
	}
	_, err = r.Docs.UpsertContext(ctx, CollObservations, doc)
	return err
}

// Hosts lists systems with uploaded KBs with a background context.
func (r *Remote) Hosts() ([]string, error) {
	return r.HostsContext(context.Background())
}

// HostsContext lists systems with uploaded KBs on the remote instance.
func (r *Remote) HostsContext(ctx context.Context) ([]string, error) {
	docs, err := r.Docs.FindContext(ctx, CollKBs, nil)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, d := range docs {
		if h, ok := d["host"].(string); ok {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out, nil
}

// QueryObservation recalls one uploaded observation's series with a
// background context.
func (r *Remote) QueryObservation(host, tag, measurement string, fields []string) (*tsdb.Result, error) {
	return r.QueryObservationContext(context.Background(), host, tag, measurement, fields)
}

// QueryObservationContext recalls one uploaded observation's series for a
// measurement, using the same Listing 3 query shape against the global
// time-series store.
func (r *Remote) QueryObservationContext(ctx context.Context, host, tag, measurement string, fields []string) (res *tsdb.Result, err error) {
	ctx, span := r.in.StartSpan(ctx, "superdb.query_observation")
	defer func() { span.End(err) }()
	q := &tsdb.Query{
		Fields:      fields,
		Measurement: measurement,
		TagFilter:   map[string]string{"tag": tag, "host": host},
	}
	if len(fields) == 0 {
		q.Fields = []string{"*"}
	}
	return r.TS.QueryContext(ctx, q.String())
}

// AggregateObservationContext summarises one uploaded observation's
// measurement on the server: one aggregate SELECT over the wire
// (count/min/max/mean/p50/p99 per field), executed by the remote
// store's parallel engine, mapped back into Aggregates rows. The
// fields must be named — the aggregate grammar has no '*'.
func (r *Remote) AggregateObservationContext(ctx context.Context, host, tag, measurement string, fields []string) (aggs []Aggregates, err error) {
	ctx, span := r.in.StartSpan(ctx, "superdb.aggregate_observation")
	defer func() { span.End(err) }()
	if len(fields) == 0 || hasStar(fields) {
		return nil, fmt.Errorf("superdb: aggregate observation needs named fields")
	}
	q := summaryQuery(measurement, map[string]string{"tag": tag, "host": host}, fields)
	res, err := r.TS.QueryContext(ctx, q.String())
	if err != nil {
		return nil, err
	}
	return summaryFromResult(measurement, fields, res), nil
}
