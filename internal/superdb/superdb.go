// Package superdb implements P-MoVE's global performance database
// (§III-E): a long-term store accumulating Knowledge Bases and performance
// telemetry "from a wide array of systems to enhance architectural
// research and train robust machine learning models". Observations evolve
// into two variants here: TSObservationInterface carries the raw
// time-series rows; AGGObservationInterface statistically summarises them
// (min, max, mean, percentiles) to manage high data volumes.
package superdb

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pmove/internal/docdb"
	"pmove/internal/kb"
	"pmove/internal/ontology"
	"pmove/internal/tsdb"
)

// Collection names in the global document store.
const (
	CollKBs          = "super_kbs"
	CollObservations = "super_observations"
	CollJobs         = "super_jobs"
)

// SuperDB is the global instance: in the paper cloud-hosted MongoDB and
// InfluxDB; here embeddable (and servable through the docdb/tsdb TCP
// servers).
type SuperDB struct {
	Docs *docdb.DB
	TS   *tsdb.DB
}

// New creates an empty global database.
func New() *SuperDB {
	return &SuperDB{Docs: docdb.New(), TS: tsdb.New()}
}

// Aggregates summarises one field of one measurement.
type Aggregates struct {
	Measurement string  `json:"measurement"`
	Field       string  `json:"field"`
	Count       int     `json:"count"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	Mean        float64 `json:"mean"`
	P50         float64 `json:"p50"`
	P99         float64 `json:"p99"`
}

// aggregate computes summary statistics of a value series.
func aggregate(measurement, field string, vs []float64) Aggregates {
	a := Aggregates{Measurement: measurement, Field: field, Count: len(vs)}
	if len(vs) == 0 {
		return a
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	a.Min = sorted[0]
	a.Max = sorted[len(sorted)-1]
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	a.Mean = sum / float64(len(sorted))
	a.P50 = quantile(sorted, 0.50)
	a.P99 = quantile(sorted, 0.99)
	return a
}

// hasStar reports whether a field list selects all fields — the one
// shape the aggregate engine cannot plan, since it needs field names.
func hasStar(fields []string) bool {
	for _, f := range fields {
		if f == "*" {
			return true
		}
	}
	return false
}

// dedupeSorted returns the distinct field names, sorted — the order the
// legacy client-side fold reported aggregates in.
func dedupeSorted(fields []string) []string {
	seen := map[string]struct{}{}
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		if _, ok := seen[f]; ok {
			continue
		}
		seen[f] = struct{}{}
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// summaryQuery builds the one-shot aggregate query computing every
// Aggregates column (count/min/max/mean/p50/p99 per field) — what the
// legacy path fetched row by row and folded client-side.
func summaryQuery(measurement string, tags map[string]string, fields []string) *tsdb.Query {
	var aggs []tsdb.Aggregate
	for _, f := range dedupeSorted(fields) {
		aggs = append(aggs,
			tsdb.Aggregate{Fn: "count", Field: f},
			tsdb.Aggregate{Fn: "min", Field: f},
			tsdb.Aggregate{Fn: "max", Field: f},
			tsdb.Aggregate{Fn: "mean", Field: f},
			tsdb.Aggregate{Fn: "p", Field: f, Pct: 50},
			tsdb.Aggregate{Fn: "p", Field: f, Pct: 99},
		)
	}
	return &tsdb.Query{Aggregates: aggs, Measurement: measurement, TagFilter: tags}
}

// summaryFromResult maps the aggregate query's single row back into
// Aggregates values, skipping fields with no samples (the legacy fold
// never emitted a row for an absent field).
func summaryFromResult(measurement string, fields []string, res *tsdb.Result) []Aggregates {
	if res == nil || len(res.Rows) == 0 {
		return nil
	}
	row := res.Rows[0]
	var out []Aggregates
	for _, f := range dedupeSorted(fields) {
		col := func(fn string, pct float64) float64 {
			return row.Values[tsdb.Aggregate{Fn: fn, Field: f, Pct: pct}.Column()]
		}
		cnt := col("count", 0)
		if cnt == 0 {
			continue
		}
		out = append(out, Aggregates{
			Measurement: measurement,
			Field:       f,
			Count:       int(cnt),
			Min:         col("min", 0),
			Max:         col("max", 0),
			Mean:        col("mean", 0),
			P50:         col("p", 50),
			P99:         col("p", 99),
		})
	}
	return out
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ReportKB uploads a system's knowledge base to the global store ("The
// users have the option to report their performance telemetry readings and
// the system's KB to SUPERDB").
func (s *SuperDB) ReportKB(k *kb.KB) error {
	doc, err := docdb.FromValue(map[string]any{
		"_id":       "kb:" + k.Host,
		"host":      k.Host,
		"nodes":     k.Len(),
		"microarch": k.Probe.System.CPU.Microarch,
		"vendor":    string(k.Probe.System.CPU.Vendor),
		"threads":   k.Probe.System.NumThreads(),
	})
	if err != nil {
		return err
	}
	coll := s.Docs.Collection(CollKBs)
	if _, err := coll.Upsert(doc); err != nil {
		return fmt.Errorf("superdb: report KB for %s: %w", k.Host, err)
	}
	return nil
}

// ReportMode selects how an observation's telemetry is uploaded.
type ReportMode string

// Report modes.
const (
	ModeTS  ReportMode = "ts"  // raw time-series rows
	ModeAGG ReportMode = "agg" // statistical summary only
)

// ReportObservation uploads one observation: its metadata document plus
// either the raw series (ModeTS) or aggregates (ModeAGG) pulled from the
// local time-series database.
func (s *SuperDB) ReportObservation(o *kb.Observation, local *tsdb.DB, mode ReportMode) error {
	kind := ontology.EntryTSObservation
	if mode == ModeAGG {
		kind = ontology.EntryAGGObservation
	}
	var aggs []Aggregates
	rawPoints := 0
	for _, m := range o.Metrics {
		if mode == ModeAGG && !hasStar(m.Fields) {
			// One aggregate query computes the whole summary on the
			// engine instead of materializing raw rows to fold here.
			sq := summaryQuery(m.Measurement, map[string]string{"tag": o.Tag}, m.Fields)
			res, err := local.ExecuteContext(context.Background(), tsdb.QueryRequest{Query: sq})
			if err != nil {
				return fmt.Errorf("superdb: aggregate %s: %w", m.Measurement, err)
			}
			aggs = append(aggs, summaryFromResult(m.Measurement, m.Fields, res)...)
			continue
		}
		q := &tsdb.Query{
			Fields:      m.Fields,
			Measurement: m.Measurement,
			TagFilter:   map[string]string{"tag": o.Tag},
		}
		res, err := local.Execute(q)
		if err != nil {
			return fmt.Errorf("superdb: fetch %s: %w", m.Measurement, err)
		}
		switch mode {
		case ModeTS:
			for _, row := range res.Rows {
				p := tsdb.Point{
					Measurement: m.Measurement,
					Tags:        map[string]string{"tag": o.Tag, "host": o.Host},
					Fields:      row.Values,
					Time:        row.Time,
				}
				if len(p.Fields) == 0 {
					continue
				}
				if err := s.TS.WritePoint(p); err != nil {
					return err
				}
				rawPoints++
			}
		case ModeAGG:
			byField := map[string][]float64{}
			for _, row := range res.Rows {
				for f, v := range row.Values {
					byField[f] = append(byField[f], v)
				}
			}
			var fields []string
			for f := range byField {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				aggs = append(aggs, aggregate(m.Measurement, f, byField[f]))
			}
		default:
			return fmt.Errorf("superdb: unknown report mode %q", mode)
		}
	}
	doc, err := docdb.FromValue(map[string]any{
		"_id":     fmt.Sprintf("obs:%s:%s", o.Host, o.Tag),
		"kind":    string(kind),
		"host":    o.Host,
		"tag":     o.Tag,
		"command": o.Command,
		"metrics": o.Metrics,
		"aggs":    aggs,
		"points":  rawPoints,
	})
	if err != nil {
		return err
	}
	if _, err := s.Docs.Collection(CollObservations).Upsert(doc); err != nil {
		return fmt.Errorf("superdb: report observation %s: %w", o.Tag, err)
	}
	return nil
}

// Hosts lists systems with uploaded KBs, sorted.
func (s *SuperDB) Hosts() []string {
	var out []string
	for _, d := range s.Docs.Collection(CollKBs).Find(nil) {
		if h, ok := d["host"].(string); ok {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// Observations returns the uploaded observation documents for a host (""
// for all).
func (s *SuperDB) Observations(host string) []docdb.Doc {
	var f *docdb.Filter
	if host != "" {
		f = &docdb.Filter{Eq: map[string]any{"host": host}}
	}
	return s.Docs.Collection(CollObservations).Find(f)
}

// MLRow is one exported training sample: observation metadata joined with
// its aggregates — the "download selected data for ML training" path.
type MLRow struct {
	Host    string       `json:"host"`
	Tag     string       `json:"tag"`
	Command string       `json:"command"`
	Aggs    []Aggregates `json:"aggs"`
}

// ExportML flattens all aggregated observations into training rows.
func (s *SuperDB) ExportML() ([]MLRow, error) {
	var out []MLRow
	for _, d := range s.Observations("") {
		kind, _ := d["kind"].(string)
		if kind != string(ontology.EntryAGGObservation) {
			continue
		}
		row := MLRow{}
		row.Host, _ = d["host"].(string)
		row.Tag, _ = d["tag"].(string)
		row.Command, _ = d["command"].(string)
		if raw, ok := d["aggs"].([]any); ok {
			for _, ra := range raw {
				m, ok := ra.(map[string]any)
				if !ok {
					continue
				}
				ag := Aggregates{}
				ag.Measurement, _ = m["measurement"].(string)
				ag.Field, _ = m["field"].(string)
				if v, ok := m["count"].(float64); ok {
					ag.Count = int(v)
				}
				ag.Min, _ = m["min"].(float64)
				ag.Max, _ = m["max"].(float64)
				ag.Mean, _ = m["mean"].(float64)
				ag.P50, _ = m["p50"].(float64)
				ag.P99, _ = m["p99"].(float64)
				row.Aggs = append(row.Aggs, ag)
			}
		}
		out = append(out, row)
	}
	return out, nil
}
