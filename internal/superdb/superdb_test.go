package superdb

import (
	"math"
	"testing"

	"pmove/internal/kb"
	"pmove/internal/ontology"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

func testKB(t *testing.T, preset string) *kb.KB {
	t.Helper()
	doc, err := topo.NewProber().Probe(topo.MustPreset(preset))
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.Generate(doc, kb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// seedObservation writes a small series and returns the matching entry.
func seedObservation(t *testing.T, local *tsdb.DB, host, tag string) *kb.Observation {
	t.Helper()
	for i := int64(0); i < 10; i++ {
		if err := local.WritePoint(tsdb.Point{
			Measurement: "perfevent_hwcounters_X",
			Tags:        map[string]string{"tag": tag},
			Fields:      map[string]float64{"_cpu0": float64(i), "_cpu1": float64(i * 2)},
			Time:        i * 1e9,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return &kb.Observation{
		ID: "obs:" + tag, Type: "ObservationInterface", Tag: tag, Host: host,
		Command: "spmv",
		Metrics: []kb.MetricRef{{Measurement: "perfevent_hwcounters_X", Fields: []string{"_cpu0", "_cpu1"}}},
	}
}

func TestReportKBAndHosts(t *testing.T) {
	s := New()
	if err := s.ReportKB(testKB(t, topo.PresetSKX)); err != nil {
		t.Fatal(err)
	}
	if err := s.ReportKB(testKB(t, topo.PresetICL)); err != nil {
		t.Fatal(err)
	}
	// Re-reporting is an upsert, not a duplicate.
	if err := s.ReportKB(testKB(t, topo.PresetSKX)); err != nil {
		t.Fatal(err)
	}
	hosts := s.Hosts()
	if len(hosts) != 2 || hosts[0] != "icl" || hosts[1] != "skx" {
		t.Errorf("hosts = %v", hosts)
	}
}

func TestReportObservationTS(t *testing.T) {
	s := New()
	local := tsdb.New()
	obs := seedObservation(t, local, "skx", "t-ts")
	if err := s.ReportObservation(obs, local, ModeTS); err != nil {
		t.Fatal(err)
	}
	// Raw rows are in the global TSDB, tagged with the host.
	res, err := s.TS.QueryString(`SELECT "_cpu0" FROM "perfevent_hwcounters_X" WHERE tag="t-ts" AND host="skx"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("global rows = %d, want 10", len(res.Rows))
	}
	docs := s.Observations("skx")
	if len(docs) != 1 {
		t.Fatalf("observation docs = %d", len(docs))
	}
	if docs[0]["kind"] != string(ontology.EntryTSObservation) {
		t.Errorf("kind = %v", docs[0]["kind"])
	}
}

func TestReportObservationAGG(t *testing.T) {
	s := New()
	local := tsdb.New()
	obs := seedObservation(t, local, "icl", "t-agg")
	if err := s.ReportObservation(obs, local, ModeAGG); err != nil {
		t.Fatal(err)
	}
	// No raw rows shipped.
	res, _ := s.TS.QueryString(`SELECT "_cpu0" FROM "perfevent_hwcounters_X"`)
	if len(res.Rows) != 0 {
		t.Error("AGG mode should not ship raw rows")
	}
	docs := s.Observations("icl")
	if len(docs) != 1 || docs[0]["kind"] != string(ontology.EntryAGGObservation) {
		t.Fatalf("docs = %+v", docs)
	}
	rows, err := s.ExportML()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Aggs) != 2 {
		t.Fatalf("ML export: %+v", rows)
	}
	// _cpu0 carries 0..9: mean 4.5, min 0, max 9, p50 4.5.
	var cpu0 *Aggregates
	for i := range rows[0].Aggs {
		if rows[0].Aggs[i].Field == "_cpu0" {
			cpu0 = &rows[0].Aggs[i]
		}
	}
	if cpu0 == nil {
		t.Fatal("_cpu0 aggregate missing")
	}
	if cpu0.Count != 10 || cpu0.Min != 0 || cpu0.Max != 9 || math.Abs(cpu0.Mean-4.5) > 1e-9 {
		t.Errorf("aggregates: %+v", cpu0)
	}
}

func TestReportObservationBadMode(t *testing.T) {
	s := New()
	local := tsdb.New()
	obs := seedObservation(t, local, "h", "t")
	if err := s.ReportObservation(obs, local, ReportMode("raw")); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestTSObservationsExcludedFromML(t *testing.T) {
	s := New()
	local := tsdb.New()
	if err := s.ReportObservation(seedObservation(t, local, "h", "t1"), local, ModeTS); err != nil {
		t.Fatal(err)
	}
	rows, err := s.ExportML()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Error("TS observations should not appear in the ML export")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if q := quantile(sorted, 0.5); q != 3 {
		t.Errorf("p50 = %f", q)
	}
	if q := quantile(sorted, 0); q != 1 {
		t.Errorf("p0 = %f", q)
	}
	if q := quantile(sorted, 1); q != 5 {
		t.Errorf("p100 = %f", q)
	}
	if q := quantile([]float64{}, 0.5); q != 0 {
		t.Errorf("empty quantile = %f", q)
	}
	// Interpolation between ranks.
	if q := quantile([]float64{0, 10}, 0.25); math.Abs(q-2.5) > 1e-9 {
		t.Errorf("interpolated quantile = %f", q)
	}
}

func TestAggregateStats(t *testing.T) {
	a := aggregate("m", "f", []float64{5, 1, 3})
	if a.Min != 1 || a.Max != 5 || math.Abs(a.Mean-3) > 1e-9 || a.P50 != 3 || a.Count != 3 {
		t.Errorf("aggregate: %+v", a)
	}
	empty := aggregate("m", "f", nil)
	if empty.Count != 0 {
		t.Error("empty aggregate")
	}
}

func TestMultiInstanceGlobalView(t *testing.T) {
	// Two instances report; the global store can answer cross-machine
	// queries — the SUPERDB promise of §III-E.
	s := New()
	for _, host := range []string{"skx", "icl"} {
		k := testKB(t, host)
		if err := s.ReportKB(k); err != nil {
			t.Fatal(err)
		}
		local := tsdb.New()
		obs := seedObservation(t, local, host, "tag-"+host)
		if err := s.ReportObservation(obs, local, ModeAGG); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.Observations("")); n != 2 {
		t.Errorf("global observations = %d", n)
	}
	rows, _ := s.ExportML()
	if len(rows) != 2 {
		t.Errorf("ML rows = %d", len(rows))
	}
}
