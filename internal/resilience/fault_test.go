package resilience

import (
	"strings"
	"testing"
	"time"
)

// Each fault type from the issue gets its own test: latency, jittered
// slow reads/writes, mid-stream reset, full partition, flappy accept.

func TestFaultLatency(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	proxy := NewProxy(srv.addr(), Faults{Latency: 30 * time.Millisecond}, 1)
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.ReadTimeout = 2 * time.Second
	tr := NewTransport(addr, pol, nil)
	defer tr.Close()
	start := time.Now()
	if resp, err := roundTrip(tr, "slow"); err != nil || resp != "OK slow" {
		t.Fatalf("latency round trip: %q, %v", resp, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("round trip took %v, latency not injected (want >= 2×30ms-ish)", d)
	}
}

func TestFaultSlowChunk(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	proxy := NewProxy(srv.addr(), Faults{SlowChunk: 2, Latency: time.Millisecond}, 1)
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.ReadTimeout = 5 * time.Second
	pol.WriteTimeout = 5 * time.Second
	tr := NewTransport(addr, pol, nil)
	defer tr.Close()
	payload := strings.Repeat("x", 64)
	if resp, err := roundTrip(tr, payload); err != nil || resp != "OK "+payload {
		t.Fatalf("trickled payload corrupted: %q, %v", resp, err)
	}
}

func TestFaultMidStreamReset(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	// Reset every connection after 64 bytes: individual ops succeed but
	// the wire keeps dying; retries must reconnect through it.
	proxy := NewProxy(srv.addr(), Faults{ResetAfterBytes: 64}, 1)
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.MaxRetries = 4
	pol.Breaker.Threshold = 0 // resets are frequent; do not trip the breaker
	tr := NewTransport(addr, pol, nil)
	defer tr.Close()
	ok := 0
	for i := 0; i < 10; i++ {
		if resp, err := roundTrip(tr, "abcdefghij"); err == nil && resp == "OK abcdefghij" {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("only %d/10 ops survived injected resets", ok)
	}
	if tr.Stats().Dials < 3 {
		t.Fatalf("expected repeated reconnects, stats %+v", tr.Stats())
	}
}

func TestFaultFlappyAccept(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	proxy := NewProxy(srv.addr(), Faults{FlapFirst: 3}, 1)
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.MaxRetries = 5
	pol.Breaker.Threshold = 0
	tr := NewTransport(addr, pol, pingProbe)
	defer tr.Close()
	// The first three accepts are closed on the spot; the retry loop must
	// push through to the fourth.
	if resp, err := roundTrip(tr, "through"); err != nil || resp != "OK through" {
		t.Fatalf("flappy accept never converged: %q, %v", resp, err)
	}
}

func TestFaultConnDirect(t *testing.T) {
	// FaultConn in isolation: reset budget fires on a raw pipe-ish pair.
	srv := newEchoServer(t)
	defer srv.close()
	pol := testPolicy()
	trRaw := NewTransport(srv.addr(), pol, nil)
	defer trRaw.Close()
	if err := trRaw.Connect(); err != nil {
		t.Fatal(err)
	}
	// Deterministic RNG: same seed, same stream.
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG streams diverged for equal seeds")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced identical first draws")
	}
}
