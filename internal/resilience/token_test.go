package resilience

import (
	"fmt"
	"sync"
	"testing"
)

// TestNextOpTokenUnique: tokens are unique under concurrency — the
// whole idempotency scheme rests on two logical batches never sharing
// one.
func TestNextOpTokenUnique(t *testing.T) {
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[string]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, NextOpToken())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, tok := range local {
				if seen[tok] {
					t.Errorf("duplicate token %q", tok)
					return
				}
				seen[tok] = true
			}
		}()
	}
	wg.Wait()
}

// TestDedupWindow: record-then-seen semantics and oldest-first eviction
// at capacity.
func TestDedupWindow(t *testing.T) {
	d := NewDedupWindow(3)
	if d.Seen("a") {
		t.Fatal("empty window claims to have seen a token")
	}
	d.Record("a")
	d.Record("a") // double record is harmless
	d.Record("b")
	d.Record("c")
	for _, tok := range []string{"a", "b", "c"} {
		if !d.Seen(tok) {
			t.Fatalf("token %q lost before capacity", tok)
		}
	}
	d.Record("d") // evicts "a", the oldest
	if d.Seen("a") {
		t.Fatal("oldest token survived eviction")
	}
	for _, tok := range []string{"b", "c", "d"} {
		if !d.Seen(tok) {
			t.Fatalf("token %q evicted out of order", tok)
		}
	}
}

// TestDedupWindowConcurrent: Seen/Record race-cleanly from many
// goroutines (run under -race).
func TestDedupWindowConcurrent(t *testing.T) {
	d := NewDedupWindow(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tok := fmt.Sprintf("w%d-%d", w, i)
				d.Record(tok)
				d.Seen(tok)
			}
		}(w)
	}
	wg.Wait()
}
