// Package resilience is the fault substrate shared by every TCP path in
// the repo. The paper's Table III studies what happens when the shipment
// path degrades *by design* (unbuffered drops, batched zeros); this
// package handles the degradations the paper never intends — stalled
// servers, dropped links, flapping listeners — so the monitoring plane
// survives the faults it observes (Ciorba's requirement for HPC
// monitoring). It has three parts:
//
//   - a deterministic, seedable fault injector (Proxy/FaultConn) that
//     interposes latency, slow reads, mid-stream resets, partitions and
//     flappy accepts in front of the tsdb/docdb/superdb servers without
//     touching their logic;
//   - a shared dial/retry kit (Transport): per-op read/write deadlines,
//     exponential backoff with seeded jitter, automatic reconnect with a
//     connection-state resync probe, and a circuit breaker with half-open
//     probing;
//   - the Policy knobs the clients and cmd/pmove expose.
package resilience

import "time"

// Policy bundles the resilience knobs every network client shares.
type Policy struct {
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// ReadTimeout / WriteTimeout are per-operation I/O deadlines applied
	// to every Read/Write on the wire. Zero disables the deadline.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxRetries is how many times an operation is retried after its
	// first attempt fails with an I/O error. Protocol-level rejections
	// (see Permanent) are never retried.
	MaxRetries int
	// Backoff paces the retries.
	Backoff Backoff
	// Breaker configures the circuit breaker; Threshold <= 0 disables it.
	Breaker BreakerConfig
	// Seed drives the deterministic retry jitter.
	Seed uint64
}

// DefaultPolicy returns production-shaped defaults: a few fast retries
// with jittered exponential backoff, multi-second deadlines, and a
// breaker that opens after five consecutive failures.
func DefaultPolicy() Policy {
	return Policy{
		DialTimeout:  2 * time.Second,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
		MaxRetries:   3,
		Backoff:      Backoff{Base: 25 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2},
		Breaker:      BreakerConfig{Threshold: 5, Cooldown: 500 * time.Millisecond},
		Seed:         1,
	}
}

// NoRetry returns the pre-resilience behaviour: one attempt, no
// deadlines, no breaker. Useful as the ablation baseline in chaos
// experiments ("what the seed clients did").
func NoRetry() Policy {
	return Policy{MaxRetries: 0}
}
