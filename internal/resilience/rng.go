package resilience

// RNG is the deterministic splitmix64 generator used for retry jitter
// and fault scheduling. Seeded streams make every chaos run replayable —
// the same property the telemetry pipeline's jitter relies on.
type RNG struct{ s uint64 }

// NewRNG seeds a generator. Seed 0 is mapped to 1 so the stream never
// degenerates.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{s: seed}
}

// Uint64 advances the stream.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
