package resilience

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pmove/internal/introspect"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.2}
	r1, r2 := NewRNG(7), NewRNG(7)
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := b.Delay(attempt, r1)
		d2 := b.Delay(attempt, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, d1, d2)
		}
		if max := time.Duration(float64(b.Max) * 1.2); d1 > max {
			t.Fatalf("attempt %d: delay %v exceeds jittered cap %v", attempt, d1, max)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d1)
		}
	}
	if d := b.Delay(0, r1); d != 0 {
		t.Fatalf("attempt 0 should not back off, got %v", d)
	}
	// Growth before the cap: attempt 2 > attempt 1 on average; compare
	// without jitter.
	nb := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2}
	if nb.Delay(2, nil) != 2*nb.Delay(1, nil) {
		t.Fatalf("exponential growth broken: %v then %v", nb.Delay(1, nil), nb.Delay(2, nil))
	}
}

func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})
	if !b.Allow(now) {
		t.Fatal("fresh breaker should allow")
	}
	b.Failure(now)
	b.Failure(now)
	if b.State() != BreakerClosed {
		t.Fatalf("below threshold should stay closed, got %s", b.State())
	}
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatalf("threshold reached should open, got %s", b.State())
	}
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker within cooldown should fast-fail")
	}
	if !b.Allow(now.Add(time.Second)) {
		t.Fatal("cooldown elapsed should admit a half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("want half-open, got %s", b.State())
	}
	// Failed probe re-opens with a fresh cooldown.
	b.Failure(now.Add(time.Second))
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe should re-open, got %s", b.State())
	}
	if b.Allow(now.Add(1900 * time.Millisecond)) {
		t.Fatal("re-opened breaker should still be cooling down")
	}
	if !b.Allow(now.Add(2 * time.Second)) {
		t.Fatal("second cooldown elapsed should admit a probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe should close, got %s", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("want 2 opens, got %d", b.Opens())
	}
}

// echoServer answers every line with "OK <line>"; "PING" gets "PONG".
type echoServer struct {
	ln    net.Listener
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]bool
	ops   int
}

func newEchoServer(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					s.mu.Lock()
					s.ops++
					s.mu.Unlock()
					line := sc.Text()
					if line == "PING" {
						fmt.Fprintln(c, "PONG")
					} else {
						fmt.Fprintf(c, "OK %s\n", line)
					}
				}
			}(conn)
		}
	}()
	return s
}

func (s *echoServer) addr() string { return s.ln.Addr().String() }

func (s *echoServer) close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]bool{}
	s.mu.Unlock()
}

func testPolicy() Policy {
	return Policy{
		DialTimeout:  500 * time.Millisecond,
		ReadTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		MaxRetries:   3,
		Backoff:      Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Breaker:      BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		Seed:         3,
	}
}

func pingProbe(w *Wire) error {
	if _, err := fmt.Fprintln(w.Conn, "PING"); err != nil {
		return err
	}
	resp, err := w.R.ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimSpace(resp) != "PONG" {
		return fmt.Errorf("unexpected probe response %q", resp)
	}
	return nil
}

func roundTrip(tr *Transport, line string) (string, error) {
	var out string
	err := tr.Do(func(_ context.Context, w *Wire) error {
		if _, err := fmt.Fprintln(w.Conn, line); err != nil {
			return err
		}
		resp, err := w.R.ReadString('\n')
		if err != nil {
			return err
		}
		out = strings.TrimSpace(resp)
		return nil
	})
	return out, err
}

func TestTransportReconnectAndBreaker(t *testing.T) {
	srv := newEchoServer(t)
	tr := NewTransport(srv.addr(), testPolicy(), pingProbe)
	defer tr.Close()
	if err := tr.Connect(); err != nil {
		t.Fatal(err)
	}
	if resp, err := roundTrip(tr, "hello"); err != nil || resp != "OK hello" {
		t.Fatalf("round trip: %q, %v", resp, err)
	}

	// Kill the server: ops must fail after bounded retries, then the
	// breaker must fast-fail without touching the network.
	addr := srv.addr()
	srv.close()
	if _, err := roundTrip(tr, "down"); err == nil {
		t.Fatal("op against dead server should fail")
	}
	for i := 0; i < 3; i++ {
		roundTrip(tr, "still down")
	}
	start := time.Now()
	_, err := roundTrip(tr, "fast fail")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("fast-fail took %v, breaker is not short-circuiting", d)
	}

	// Restart on the same port; after the cooldown the half-open PING
	// probe reconnects and the op succeeds.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	ln.Close()
	srv2 := newEchoServer(t)
	defer srv2.close()
	tr2addr := srv2.addr()
	tr2 := NewTransport(tr2addr, testPolicy(), pingProbe)
	defer tr2.Close()
	if resp, err := roundTrip(tr2, "back"); err != nil || resp != "OK back" {
		t.Fatalf("fresh transport after restart: %q, %v", resp, err)
	}
	st := tr.Stats()
	if st.BreakerOpens == 0 || st.FastFails == 0 || st.Failures == 0 {
		t.Fatalf("stats did not record the outage: %+v", st)
	}
}

func TestTransportHalfOpenRecovery(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	pol := testPolicy()
	tr := NewTransport(srv.addr(), pol, pingProbe)
	defer tr.Close()
	if err := tr.Connect(); err != nil {
		t.Fatal(err)
	}
	// Drop the server conns (not the listener) so the next op hits a dead
	// wire but reconnect succeeds — the resync probe runs transparently.
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	if resp, err := roundTrip(tr, "resync"); err != nil || resp != "OK resync" {
		t.Fatalf("transparent reconnect failed: %q, %v", resp, err)
	}
	if tr.Stats().Dials < 2 {
		t.Fatalf("expected a reconnect, stats %+v", tr.Stats())
	}
}

func TestTransportPermanentNotRetried(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	tr := NewTransport(srv.addr(), testPolicy(), nil)
	defer tr.Close()
	calls := 0
	wantErr := fmt.Errorf("rejected")
	err := tr.Do(func(_ context.Context, w *Wire) error {
		calls++
		// Full round trip keeps the stream in sync, then reject.
		if _, err := fmt.Fprintln(w.Conn, "x"); err != nil {
			return err
		}
		if _, err := w.R.ReadString('\n'); err != nil {
			return err
		}
		return Permanent(wantErr)
	})
	if err != wantErr {
		t.Fatalf("want the unwrapped permanent error, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("permanent errors must not retry, got %d calls", calls)
	}
	// The wire survived: next op reuses it.
	before := tr.Stats().Dials
	if resp, err := roundTrip(tr, "after"); err != nil || resp != "OK after" {
		t.Fatalf("op after permanent error: %q, %v", resp, err)
	}
	if tr.Stats().Dials != before {
		t.Fatal("permanent error should not drop the connection")
	}
}

func TestTransportDeadlineAgainstPartition(t *testing.T) {
	srv := newEchoServer(t)
	defer srv.close()
	proxy := NewProxy(srv.addr(), Faults{}, 1)
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.MaxRetries = 1
	tr := NewTransport(addr, pol, nil)
	defer tr.Close()
	if resp, err := roundTrip(tr, "pre"); err != nil || resp != "OK pre" {
		t.Fatalf("through proxy: %q, %v", resp, err)
	}
	proxy.Partition()
	start := time.Now()
	if _, err := roundTrip(tr, "void"); err == nil {
		t.Fatal("partitioned op should fail")
	}
	elapsed := time.Since(start)
	// 2 attempts × (read deadline) + backoff; generous upper bound proves
	// we did not hang.
	if elapsed > 2*time.Second {
		t.Fatalf("partitioned op took %v — deadlines not applied", elapsed)
	}
	proxy.Heal()
	if resp, err := roundTrip(tr, "healed"); err != nil || resp != "OK healed" {
		t.Fatalf("after heal: %q, %v", resp, err)
	}
}

// TestTransportDurationStats checks the per-attempt and backoff elapsed
// accounting: TransportStats duration fields and the
// transport.<name>.{attempt,backoff}.seconds histograms must agree with
// the retry counters, so trace attribution has a registry cross-check.
func TestTransportDurationStats(t *testing.T) {
	srv := newEchoServer(t)
	tr := NewTransport(srv.addr(), testPolicy(), nil)
	defer tr.Close()
	in := introspect.New(introspect.WithPrefix("rt_test"))
	tr.SetIntrospection(in, "echo")

	if _, err := roundTrip(tr, "hello"); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.AttemptNanos == 0 {
		t.Fatalf("successful op recorded no attempt time: %+v", st)
	}
	if st.BackoffNanos != 0 {
		t.Fatalf("no retries yet but backoff time recorded: %+v", st)
	}

	// Kill the server: the retry loop must accumulate both attempt time
	// (failed dials/exchanges) and backoff waits.
	srv.close()
	if _, err := roundTrip(tr, "down"); err == nil {
		t.Fatal("op against dead server should fail")
	}
	st = tr.Stats()
	if st.Retries == 0 || st.BackoffNanos == 0 {
		t.Fatalf("retry waits not accounted: %+v", st)
	}

	snap := in.Snapshot()
	att, ok := snap.Get("transport.echo.attempt.seconds")
	if !ok || att.Kind != introspect.KindHistogram {
		t.Fatalf("attempt histogram missing: %+v ok=%v", att, ok)
	}
	// One successful attempt plus every attempt of the failed op.
	if want := 1 + st.Retries + 1; att.Count != want {
		t.Errorf("attempt histogram count = %d, want %d", att.Count, want)
	}
	bo, ok := snap.Get("transport.echo.backoff.seconds")
	if !ok || bo.Count != st.Retries {
		t.Errorf("backoff histogram count = %d (ok=%v), want %d", bo.Count, ok, st.Retries)
	}
	if bo.Sum <= 0 {
		t.Errorf("backoff histogram sum = %v, want > 0", bo.Sum)
	}
}
