package resilience

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
)

// ErrCircuitOpen is returned (wrapped) when the breaker fast-fails an
// operation without touching the network.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// permanentError marks a protocol-level failure: the server answered, the
// stream is still in sync, and retrying the same bytes cannot help.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps an error so Transport.Do neither retries it nor drops
// the connection: use it for rejections fully read off the wire ("ERR
// ..." responses). Plain errors are treated as I/O failures — the
// connection state is unknown, so the wire is torn down and the op
// retried on a fresh one (the desync fix: a client that half-read a
// response never parses the next op's reply as this one's).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Wire is one live connection: the deadline-wrapped conn plus a buffered
// reader bound to it. A Wire never outlives an I/O error.
type Wire struct {
	Conn net.Conn
	R    *bufio.Reader
}

// TransportStats counts the transport's fault handling. The duration
// fields let trace attribution and the registry agree on where op time
// went: attempts (dial + exchange) versus backoff waits between them.
type TransportStats struct {
	Dials        uint64 // successful connects (first + reconnects)
	Retries      uint64 // op attempts beyond the first
	Failures     uint64 // I/O failures observed
	BreakerOpens uint64 // times the circuit opened
	FastFails    uint64 // ops rejected by the open circuit
	AttemptNanos uint64 // total time inside attempts (dial + exchange)
	BackoffNanos uint64 // total time sleeping between attempts
}

// Transport maintains one line-oriented TCP connection with deadlines,
// retries, reconnect and a circuit breaker. Protocol packages (tsdb,
// docdb) run their request/response exchanges through Do; the transport
// owns when those exchanges happen and on which connection.
type Transport struct {
	addr  string
	pol   Policy
	probe func(*Wire) error

	mu      sync.Mutex
	wire    *Wire
	breaker *Breaker
	rng     *RNG
	stats   TransportStats
	closed  bool

	// in mirrors the transport's fault handling into the daemon's
	// self-observability registry under transport.<name>.*; nil-safe.
	in   *introspect.Introspector
	name string

	// log receives structured fault records (retries, breaker opens,
	// fast-fails, exhausted budgets) correlated to the op's trace;
	// nil-safe.
	log *logbuf.Logger

	// sleep and now are swappable for tests.
	sleep func(time.Duration)
	now   func() time.Time
}

// NewTransport builds a transport for addr. probe, when non-nil, runs on
// every fresh connection before it is used (the PING-based
// connection-state resync and the breaker's half-open probe); a probe
// failure counts as a connect failure.
func NewTransport(addr string, pol Policy, probe func(*Wire) error) *Transport {
	return &Transport{
		addr:    addr,
		pol:     pol,
		probe:   probe,
		breaker: NewBreaker(pol.Breaker),
		rng:     NewRNG(pol.Seed),
		sleep:   time.Sleep,
		now:     time.Now,
	}
}

// Addr returns the remote address.
func (t *Transport) Addr() string { return t.addr }

// SetIntrospection attaches a self-observability introspector; name
// becomes the transport.<name>.* metric namespace (e.g. "tsdb",
// "docdb"). A nil introspector detaches.
func (t *Transport) SetIntrospection(in *introspect.Introspector, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.in = in
	t.name = name
}

// SetLogger attaches a structured log ring; records land under the
// given component (conventionally "transport.<name>"). Nil detaches.
func (t *Transport) SetLogger(l *logbuf.Logger) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.log = l
}

// count bumps a transport.<name>.<suffix> self counter. Caller holds mu
// (or is in the ctor); nil introspection is a no-op.
func (t *Transport) count(suffix string, n uint64) {
	if t.in == nil {
		return
	}
	t.in.Metrics().Counter("transport." + t.name + "." + suffix).Add(n)
}

// observe records seconds into the transport.<name>.<suffix> latency
// histogram. Caller holds mu; nil introspection is a no-op.
func (t *Transport) observe(suffix string, seconds float64) {
	if t.in == nil {
		return
	}
	t.in.Metrics().Histogram("transport."+t.name+"."+suffix, introspect.DefaultLatencyBounds...).Observe(seconds)
}

// Policy returns the transport's policy.
func (t *Transport) Policy() Policy { return t.pol }

// BreakerState snapshots the circuit breaker's current state — the
// observable the testkit breaker-legality oracle validates transition
// sequences against.
func (t *Transport) BreakerState() BreakerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breaker.State()
}

// Stats snapshots the fault counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.BreakerOpens = t.breaker.Opens()
	return s
}

// Connect eagerly establishes (and probes) the connection. Dial-time
// callers use it so a bad address fails fast instead of on first use.
func (t *Transport) Connect() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureWire()
}

// Close tears the connection down; subsequent ops fail.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.wire != nil {
		err := t.wire.Conn.Close()
		t.wire = nil
		return err
	}
	return nil
}

// Do runs one request/response exchange with a background context.
func (t *Transport) Do(op func(ctx context.Context, w *Wire) error) error {
	return t.DoContext(context.Background(), op)
}

// DoContext runs one request/response exchange with retry, reconnect and
// breaker semantics. op errors wrapped with Permanent are returned as-is
// (unwrapped) without retry; any other error drops the wire, records a
// breaker failure and retries after backoff, up to Policy.MaxRetries
// times. Cancelling ctx aborts the retry loop — including mid-backoff —
// with a wrapped ctx.Err(), so a caller never waits out a retry budget
// it no longer wants.
//
// The ctx handed to op carries the per-attempt trace span (under the
// transport.<name>.do op span), so an op that stamps a traceparent onto
// its wire frame parents the server's spans beneath the exact attempt
// that carried them — a retried exchange yields distinct server
// subtrees, not one merged blur. Each attempt's elapsed time (dial +
// exchange) and each backoff wait are recorded in TransportStats and the
// transport.<name>.{attempt,backoff}.seconds histograms.
func (t *Transport) DoContext(ctx context.Context, op func(ctx context.Context, w *Wire) error) (err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ctx, span := t.in.StartSpan(ctx, "transport."+t.name+".do")
	defer func() { span.End(err) }()
	t.count("ops", 1)
	var lastErr error
	attempts := t.pol.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	opensBefore := t.breaker.Opens()
	defer func() {
		if n := t.breaker.Opens() - opensBefore; n > 0 {
			t.count("breaker.opened", n)
			t.log.Warn(ctx, "circuit opened",
				"addr", t.addr, "cooldown", t.pol.Breaker.Cooldown.String())
		}
	}()
	for attempt := 0; attempt < attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("resilience: %s: %w", t.addr, cerr)
			return err
		}
		if attempt > 0 {
			t.stats.Retries++
			t.count("retries", 1)
			_, bspan := t.in.StartSpan(ctx, "transport."+t.name+".backoff")
			b0 := t.now()
			serr := t.sleepCtx(ctx, t.pol.Backoff.Delay(attempt, t.rng))
			waited := t.now().Sub(b0)
			t.stats.BackoffNanos += uint64(waited.Nanoseconds())
			t.observe("backoff.seconds", waited.Seconds())
			bspan.End(serr)
			if serr != nil {
				err = fmt.Errorf("resilience: %s: %w", t.addr, serr)
				return err
			}
		}
		actx, aspan := t.in.StartSpan(ctx, "transport."+t.name+".attempt")
		a0 := t.now()
		endAttempt := func(aerr error) {
			took := t.now().Sub(a0)
			t.stats.AttemptNanos += uint64(took.Nanoseconds())
			t.observe("attempt.seconds", took.Seconds())
			aspan.End(aerr)
		}
		if werr := t.ensureWire(); werr != nil {
			endAttempt(werr)
			if errors.Is(werr, ErrCircuitOpen) {
				// Retrying cannot help until the cooldown elapses.
				t.count("fastfails", 1)
				t.log.Warn(ctx, "fast-fail: circuit open", "addr", t.addr)
				err = werr
				return err
			}
			t.count("failures", 1)
			t.log.Warn(ctx, "connect failed",
				"addr", t.addr, "attempt", fmt.Sprint(attempt+1), "error", werr.Error())
			lastErr = werr
			continue
		}
		oerr := op(actx, t.wire)
		if oerr == nil {
			endAttempt(nil)
			t.breaker.Success()
			return nil
		}
		var pe *permanentError
		if errors.As(oerr, &pe) {
			// The server answered; the stream is in sync — the attempt
			// itself succeeded at the transport level.
			endAttempt(nil)
			t.breaker.Success()
			err = pe.err
			return err
		}
		endAttempt(oerr)
		t.dropWire()
		t.stats.Failures++
		t.count("failures", 1)
		t.breaker.Failure(t.now())
		t.log.Warn(ctx, "attempt failed, wire dropped",
			"addr", t.addr, "attempt", fmt.Sprint(attempt+1), "error", oerr.Error())
		lastErr = oerr
	}
	err = fmt.Errorf("resilience: %s: giving up after %d attempts: %w", t.addr, attempts, lastErr)
	t.log.Error(ctx, "giving up after retry budget",
		"addr", t.addr, "attempts", fmt.Sprint(attempts), "error", lastErr.Error())
	return err
}

// sleepCtx waits out a backoff delay unless ctx is cancelled first. The
// test-swappable t.sleep path stays synchronous (deterministic clocks);
// the real path selects on a timer against ctx.Done().
func (t *Transport) sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		t.sleep(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// ensureWire returns with t.wire live, dialing if needed. Caller holds mu.
func (t *Transport) ensureWire() error {
	if t.closed {
		return fmt.Errorf("resilience: %s: transport closed", t.addr)
	}
	if t.wire != nil {
		return nil
	}
	if !t.breaker.Allow(t.now()) {
		t.stats.FastFails++
		return fmt.Errorf("resilience: %s: %w", t.addr, ErrCircuitOpen)
	}
	conn, err := net.DialTimeout("tcp", t.addr, t.pol.DialTimeout)
	if err != nil {
		t.stats.Failures++
		t.breaker.Failure(t.now())
		return err
	}
	dc := &deadlineConn{Conn: conn, rt: t.pol.ReadTimeout, wt: t.pol.WriteTimeout}
	w := &Wire{Conn: dc, R: bufio.NewReader(dc)}
	if t.probe != nil {
		if err := t.probe(w); err != nil {
			conn.Close()
			t.stats.Failures++
			t.breaker.Failure(t.now())
			return fmt.Errorf("resilience: %s: resync probe: %w", t.addr, err)
		}
	}
	t.wire = w
	t.stats.Dials++
	t.breaker.Success()
	return nil
}

func (t *Transport) dropWire() {
	if t.wire != nil {
		t.wire.Conn.Close()
		t.wire = nil
	}
}

// deadlineConn applies per-op deadlines around every Read/Write so no
// exchange can hang past the policy's timeouts even when the peer is
// black-holed by a partition.
type deadlineConn struct {
	net.Conn
	rt, wt time.Duration
}

func (d *deadlineConn) Read(p []byte) (int, error) {
	if d.rt > 0 {
		if err := d.Conn.SetReadDeadline(time.Now().Add(d.rt)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Read(p)
}

func (d *deadlineConn) Write(p []byte) (int, error) {
	if d.wt > 0 {
		if err := d.Conn.SetWriteDeadline(time.Now().Add(d.wt)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Write(p)
}
