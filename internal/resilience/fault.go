package resilience

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Faults is the deterministic fault plan a Proxy (or FaultConn) applies.
// Counts are preferred over probabilities where exact repeatability
// matters; the probabilistic knobs draw from the seeded RNG so a given
// seed still replays the same schedule.
type Faults struct {
	// Latency is added before each forwarded chunk; LatencyJitter adds up
	// to that much extra, seeded.
	Latency       time.Duration
	LatencyJitter time.Duration
	// SlowChunk > 0 trickles traffic in chunks of at most this many
	// bytes (a jittered slow read/write).
	SlowChunk int
	// ResetAfterBytes > 0 resets a connection once it has carried that
	// many bytes in either direction — the mid-stream reset.
	ResetAfterBytes int64
	// FlapFirst closes the first N accepted connections immediately
	// (deterministic flappy accept); FlapProb flaps later accepts with
	// this probability.
	FlapFirst int
	FlapProb  float64
}

// Proxy interposes the fault plan between clients and a backend server:
// clients dial the proxy's address, the proxy pipes bytes to the real
// tsdb/docdb listener through FaultConn semantics. The servers' logic is
// untouched — exactly the interposition the chaos suite needs. Partition
// and Heal flip a full network partition at runtime: accepted
// connections black-hole (reads stall until the client's deadline fires)
// and no new backend connections are made.
type Proxy struct {
	backend string
	ln      net.Listener

	mu          sync.Mutex
	faults      Faults
	rng         *RNG
	partitioned bool
	conns       map[net.Conn]bool
	accepted    int
	wg          sync.WaitGroup
	closed      bool
}

// NewProxy builds a proxy in front of backend (host:port) with a seeded
// fault plan.
func NewProxy(backend string, faults Faults, seed uint64) *Proxy {
	return &Proxy{backend: backend, faults: faults, rng: NewRNG(seed), conns: map[net.Conn]bool{}}
}

// Listen starts the proxy on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address clients should dial.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("resilience: proxy listen: %w", err)
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the proxy's bound address.
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// SetFaults swaps the fault plan at runtime.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Partition cuts the network: existing connections stall, new ones are
// accepted but never reach the backend.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
}

// Heal ends the partition for traffic pumped after this call.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// DropConns force-closes every live proxied connection — an on-demand
// mid-stream reset.
func (p *Proxy) DropConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and its connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

func (p *Proxy) isPartitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns[c] = true
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.accepted++
		flap := p.accepted <= p.faults.FlapFirst ||
			(p.faults.FlapProb > 0 && p.rng.Float64() < p.faults.FlapProb)
		partitioned := p.partitioned
		p.mu.Unlock()
		if flap {
			conn.Close()
			continue
		}
		if partitioned {
			// Black hole: keep the conn so client writes land in kernel
			// buffers while reads stall until the client's deadline.
			p.track(conn)
			continue
		}
		up, err := net.DialTimeout("tcp", p.backend, 2*time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		p.track(conn)
		p.track(up)
		var bytes int64 // shared both-direction byte budget for resets
		var once sync.Once
		kill := func() {
			once.Do(func() {
				conn.Close()
				up.Close()
			})
		}
		p.wg.Add(2)
		go p.pump(up, conn, &bytes, kill)
		go p.pump(conn, up, &bytes, kill)
	}
}

// pump forwards src → dst applying the fault plan.
func (p *Proxy) pump(dst, src net.Conn, total *int64, kill func()) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer kill()
	buf := make([]byte, 32<<10)
	for {
		p.mu.Lock()
		f := p.faults
		p.mu.Unlock()
		chunk := len(buf)
		if f.SlowChunk > 0 && f.SlowChunk < chunk {
			chunk = f.SlowChunk
		}
		n, err := src.Read(buf[:chunk])
		if n > 0 {
			if d := p.chunkDelay(f); d > 0 {
				time.Sleep(d)
			}
			if p.isPartitioned() {
				// Black hole: bytes captured by the partition are dropped,
				// never delivered late. A healed link that replayed a
				// request the client already timed out and abandoned would
				// execute it behind the client's back — the nondeterminism
				// the desync tests exist to rule out.
				if err != nil {
					return
				}
				continue
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			if f.ResetAfterBytes > 0 {
				p.mu.Lock()
				*total += int64(n)
				tripped := *total >= f.ResetAfterBytes
				p.mu.Unlock()
				if tripped {
					return // kill() resets both halves mid-stream
				}
			}
		}
		if err != nil {
			return // EOF or reset either way ends the pump
		}
	}
}

func (p *Proxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *Proxy) chunkDelay(f Faults) time.Duration {
	d := f.Latency
	if f.LatencyJitter > 0 {
		p.mu.Lock()
		d += time.Duration(p.rng.Float64() * float64(f.LatencyJitter))
		p.mu.Unlock()
	}
	return d
}

// FaultConn wraps a single net.Conn with the latency/slow-chunk/reset
// portion of a fault plan — for tests that build listeners directly
// instead of interposing a Proxy.
type FaultConn struct {
	net.Conn
	mu     sync.Mutex
	faults Faults
	rng    *RNG
	bytes  int64
}

// NewFaultConn wraps conn with a seeded fault plan.
func NewFaultConn(conn net.Conn, faults Faults, seed uint64) *FaultConn {
	return &FaultConn{Conn: conn, faults: faults, rng: NewRNG(seed)}
}

func (f *FaultConn) delayAndBudget(n int) error {
	f.mu.Lock()
	d := f.faults.Latency
	if f.faults.LatencyJitter > 0 {
		d += time.Duration(f.rng.Float64() * float64(f.faults.LatencyJitter))
	}
	f.bytes += int64(n)
	tripped := f.faults.ResetAfterBytes > 0 && f.bytes >= f.faults.ResetAfterBytes
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if tripped {
		f.Conn.Close()
		return fmt.Errorf("resilience: injected reset after %d bytes", f.bytes)
	}
	return nil
}

// Read applies latency, slow chunks and the reset budget.
func (f *FaultConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	chunk := f.faults.SlowChunk
	f.mu.Unlock()
	if chunk > 0 && chunk < len(p) {
		p = p[:chunk]
	}
	n, err := f.Conn.Read(p)
	if n > 0 {
		if ferr := f.delayAndBudget(n); ferr != nil && err == nil {
			err = ferr
		}
	}
	return n, err
}

// Write applies latency, slow chunks and the reset budget.
func (f *FaultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	chunk := f.faults.SlowChunk
	f.mu.Unlock()
	written := 0
	for written < len(p) {
		end := len(p)
		if chunk > 0 && written+chunk < end {
			end = written + chunk
		}
		n, err := f.Conn.Write(p[written:end])
		written += n
		if n > 0 {
			if ferr := f.delayAndBudget(n); ferr != nil && err == nil {
				return written, ferr
			}
		}
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// FaultListener wraps a listener with flappy-accept semantics and wraps
// accepted connections in FaultConn.
type FaultListener struct {
	net.Listener
	mu       sync.Mutex
	faults   Faults
	rng      *RNG
	accepted int
}

// NewFaultListener wraps ln with a seeded fault plan.
func NewFaultListener(ln net.Listener, faults Faults, seed uint64) *FaultListener {
	return &FaultListener{Listener: ln, faults: faults, rng: NewRNG(seed)}
}

// Accept applies the flap schedule and returns fault-wrapped conns.
func (l *FaultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.accepted++
		flap := l.accepted <= l.faults.FlapFirst ||
			(l.faults.FlapProb > 0 && l.rng.Float64() < l.faults.FlapProb)
		f := l.faults
		seed := l.rng.Uint64()
		l.mu.Unlock()
		if flap {
			conn.Close()
			continue
		}
		return NewFaultConn(conn, f, seed), nil
	}
}
