package resilience

import "time"

// BreakerState is the circuit breaker's tri-state.
type BreakerState string

// Breaker states.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig sizes the circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the circuit;
	// <= 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long the circuit stays open before one half-open
	// probe is allowed through.
	Cooldown time.Duration
}

// Breaker is a consecutive-failure circuit breaker. While open it
// fast-fails callers instead of burning deadlines against a dead server;
// after Cooldown one probe (the client's PING resync) is let through, and
// its outcome closes or re-opens the circuit. Callers must serialise
// access (Transport holds its own mutex).
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	openedAt time.Time
	opens    uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, state: BreakerClosed}
}

// State reports the current state.
func (b *Breaker) State() BreakerState { return b.state }

// Opens counts how many times the circuit has opened.
func (b *Breaker) Opens() uint64 { return b.opens }

// Allow reports whether an attempt may proceed now. An open circuit past
// its cooldown transitions to half-open and admits exactly one probe.
func (b *Breaker) Allow(now time.Time) bool {
	if b.cfg.Threshold <= 0 {
		return true
	}
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a completed operation, closing the circuit.
func (b *Breaker) Success() {
	b.fails = 0
	b.state = BreakerClosed
}

// Failure records a failed operation; it opens the circuit when the
// threshold is reached or a half-open probe fails.
func (b *Breaker) Failure(now time.Time) {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.cfg.Threshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = now
	}
}
