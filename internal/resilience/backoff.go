package resilience

import "time"

// Backoff is exponential backoff with proportional jitter. Delay grows
// Base * Factor^(attempt-1), capped at Max, then jittered by up to
// ±Jitter fraction using the caller's seeded RNG so retry storms from
// many clients decorrelate deterministically.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	// Jitter is the fraction of the delay randomised, in [0, 1].
	Jitter float64
}

// Delay returns the pause before retry `attempt` (1-based). attempt <= 0
// returns 0.
func (b Backoff) Delay(attempt int, rng *RNG) time.Duration {
	if attempt <= 0 || b.Base <= 0 {
		return 0
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= f
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		// Spread over [1-Jitter, 1+Jitter].
		d *= 1 - b.Jitter + 2*b.Jitter*rng.Float64()
	}
	return time.Duration(d)
}
