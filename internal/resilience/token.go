package resilience

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
)

// Batched op retry semantics. Single-point writes are at-least-once
// under this package's retry loop, and the reconnect-with-resync probe
// guarantees a duplicate is at worst a re-applied point the dedup
// oracle can see. A retried BATCH is worse: the whole frame is
// re-applied, multiplying every point in it. The fix is an idempotency
// token minted once per logical batch and carried on every retry of
// it — the server remembers recently applied tokens in a bounded
// window and acknowledges (without re-applying) a token it has already
// committed. The window is bounded because retries are near-in-time by
// construction: a token older than the window's capacity of subsequent
// batches is no longer retryable by any live transport.

// tokenPrefix makes tokens unique across processes (crypto/rand nonce);
// the atomic counter makes them unique within one.
var (
	tokenOnce   sync.Once
	tokenPrefix string
	tokenSeq    atomic.Uint64
)

// NextOpToken mints a process-unique idempotency token for one logical
// op (one batch). Mint it ONCE before entering DoContext and reuse it
// across every retry attempt — minting inside the attempt closure would
// defeat the dedup entirely.
func NextOpToken() string {
	tokenOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing means the platform is broken; tokens
			// degrade to per-process-counter uniqueness only.
			copy(b[:], "pmovetok")
		}
		tokenPrefix = hex.EncodeToString(b[:])
	})
	return fmt.Sprintf("%s-%x", tokenPrefix, tokenSeq.Add(1))
}

// DedupWindow is the server side of the token protocol: a bounded
// set of recently applied op tokens. Seen/Record are split because a
// token must only be recorded AFTER its batch is durably applied — a
// failed apply must stay retryable.
type DedupWindow struct {
	mu   sync.Mutex
	cap  int
	seen map[string]struct{}
	ring []string // insertion order; evicts oldest at capacity
	next int
}

// NewDedupWindow creates a window remembering the last capacity tokens
// (minimum 1; a typical server uses ~1024).
func NewDedupWindow(capacity int) *DedupWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &DedupWindow{
		cap:  capacity,
		seen: make(map[string]struct{}, capacity),
		ring: make([]string, capacity),
	}
}

// Seen reports whether a token was already recorded (and not yet
// evicted): the batch is a retry of an applied op and must be
// acknowledged without re-applying.
func (d *DedupWindow) Seen(token string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.seen[token]
	return ok
}

// Record remembers an applied token, evicting the oldest once the
// window is full. Recording the same token twice is harmless.
func (d *DedupWindow) Record(token string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.seen[token]; ok {
		return
	}
	if old := d.ring[d.next]; old != "" {
		delete(d.seen, old)
	}
	d.ring[d.next] = token
	d.next = (d.next + 1) % d.cap
	d.seen[token] = struct{}{}
}
