package cluster

import (
	"fmt"
	"sort"

	"pmove/internal/machine"
	"pmove/internal/topo"
)

// JobState tracks a job through the scheduler.
type JobState string

// Job states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateFinished JobState = "finished"
)

// Job is one batch submission.
type Job struct {
	ID    string
	Name  string
	User  string
	Nodes int
	// ThreadsPerNode and Pin control per-node placement.
	ThreadsPerNode int
	Pin            topo.PinStrategy
	// Workload is the per-node compute; Comm the inter-node communication.
	Workload machine.WorkloadSpec
	Comm     CommSpec
}

// JobRecord is the job-specific metadata emitted on completion — what the
// cluster KB links to the sampled performance metrics.
type JobRecord struct {
	Job
	State         JobState
	SubmitTime    float64
	StartTime     float64
	EndTime       float64
	NodeNames     []string
	ComputeSecs   float64
	CommSecs      float64
	CommBytes     uint64
	GFLOPSPerNode float64
}

// WaitSeconds returns queue wait time.
func (r *JobRecord) WaitSeconds() float64 { return r.StartTime - r.SubmitTime }

// ElapsedSeconds returns wall time on the nodes.
func (r *JobRecord) ElapsedSeconds() float64 { return r.EndTime - r.StartTime }

// running pairs a record with its node executions.
type running struct {
	rec   *JobRecord
	end   float64
	nodes []*Node
}

// Scheduler is a FIFO batch scheduler over the cluster's nodes.
type Scheduler struct {
	c      *Cluster
	seq    int
	queue  []*JobRecord
	active []*running
	done   []*JobRecord
}

func newScheduler(c *Cluster) *Scheduler { return &Scheduler{c: c} }

// Submit enqueues a job and returns its record. Dispatch happens on the
// next clock advance (or immediately if nodes are free).
func (s *Scheduler) Submit(j Job) (*JobRecord, error) {
	if j.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: job %q requests %d nodes", j.Name, j.Nodes)
	}
	if j.Nodes > len(s.c.nodes) {
		return nil, fmt.Errorf("cluster: job %q requests %d nodes but the cluster has %d", j.Name, j.Nodes, len(s.c.nodes))
	}
	if j.ThreadsPerNode <= 0 {
		return nil, fmt.Errorf("cluster: job %q requests %d threads per node", j.Name, j.ThreadsPerNode)
	}
	if err := j.Workload.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: job %q: %w", j.Name, err)
	}
	if j.Pin == "" {
		j.Pin = topo.PinBalanced
	}
	s.seq++
	if j.ID == "" {
		j.ID = fmt.Sprintf("job-%04d", s.seq)
	}
	rec := &JobRecord{Job: j, State: StateQueued, SubmitTime: s.c.now}
	s.queue = append(s.queue, rec)
	s.dispatch(s.c.now)
	return rec, nil
}

// dispatch places queued jobs on free nodes, FIFO without backfilling.
func (s *Scheduler) dispatch(now float64) {
	for len(s.queue) > 0 {
		rec := s.queue[0]
		free := s.freeNodes()
		if len(free) < rec.Nodes {
			return // strict FIFO: head of queue blocks
		}
		nodes := free[:rec.Nodes]
		if err := s.launch(rec, nodes, now); err != nil {
			// An unlaunchable job is finished with an error marker rather
			// than wedging the queue.
			rec.State = StateFinished
			rec.StartTime = now
			rec.EndTime = now
			s.done = append(s.done, rec)
		}
		s.queue = s.queue[1:]
	}
}

func (s *Scheduler) freeNodes() []*Node {
	var out []*Node
	for _, n := range s.c.nodes {
		if !n.Busy() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// launch starts the job's workload on every allocated node and computes
// its end time including communication.
func (s *Scheduler) launch(rec *JobRecord, nodes []*Node, now float64) error {
	commSecs, commBytes := s.c.Fabric.commSeconds(rec.Comm, len(nodes))
	var end float64
	var gflops float64
	for _, n := range nodes {
		pinning, err := topo.Pin(n.System, rec.Pin, rec.ThreadsPerNode)
		if err != nil {
			return err
		}
		exec, err := n.Machine.Launch(rec.Workload, pinning)
		if err != nil {
			return err
		}
		// Communication overlaps poorly with compute in BSP codes; the
		// job's node occupancy extends by the comm time.
		if e := exec.End() + commSecs; e > end {
			end = e
		}
		gflops += exec.GFLOPS
		rec.ComputeSecs = exec.Duration
		n.busyJob = rec.ID
		n.nicBytes += commBytes
	}
	rec.State = StateRunning
	rec.StartTime = now
	rec.CommSecs = commSecs
	rec.CommBytes = commBytes
	rec.GFLOPSPerNode = gflops / float64(len(nodes))
	for _, n := range nodes {
		rec.NodeNames = append(rec.NodeNames, n.Name)
	}
	sort.Strings(rec.NodeNames)
	s.active = append(s.active, &running{rec: rec, end: end, nodes: nodes})
	return nil
}

// nextCompletion returns the earliest running-job end time.
func (s *Scheduler) nextCompletion() (float64, bool) {
	ok := false
	min := 0.0
	for _, r := range s.active {
		if !ok || r.end < min {
			min = r.end
			ok = true
		}
	}
	return min, ok
}

// reap retires jobs whose end time has passed.
func (s *Scheduler) reap(now float64) {
	var still []*running
	for _, r := range s.active {
		if r.end <= now+1e-12 {
			r.rec.State = StateFinished
			r.rec.EndTime = r.end
			for _, n := range r.nodes {
				n.busyJob = ""
			}
			s.done = append(s.done, r.rec)
		} else {
			still = append(still, r)
		}
	}
	s.active = still
}

// QueueLength returns the number of jobs waiting.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// RunningCount returns the number of jobs executing.
func (s *Scheduler) RunningCount() int { return len(s.active) }

// Records returns completed job records in completion order.
func (s *Scheduler) Records() []*JobRecord {
	out := append([]*JobRecord(nil), s.done...)
	sort.Slice(out, func(i, j int) bool { return out[i].EndTime < out[j].EndTime })
	return out
}

// Drain advances the cluster clock until every submitted job completed,
// bounded by maxSeconds of virtual time.
func (s *Scheduler) Drain(maxSeconds float64) error {
	deadline := s.c.now + maxSeconds
	for len(s.queue) > 0 || len(s.active) > 0 {
		next, ok := s.nextCompletion()
		if !ok {
			return fmt.Errorf("cluster: %d jobs queued but nothing running (deadlock)", len(s.queue))
		}
		if next > deadline {
			return fmt.Errorf("cluster: drain exceeded %.1fs budget", maxSeconds)
		}
		if err := s.c.AdvanceTo(next); err != nil {
			return err
		}
	}
	return nil
}
