// Package cluster extends P-MoVE from single-node servers to clusters —
// the paper's stated next step (§VI: "we are on the verge of developing a
// cluster-level P-MoVE that encapsulates meticulous performance analysis
// and monitoring capabilities, in conjunction with communication
// telemetry and job-specific metadata emitted from HPC clusters"; §I: the
// KB "contains historical job metadata linked to the sampled performance
// metrics").
//
// A Cluster is a set of simulated nodes sharing one virtual clock and an
// interconnect model. A Scheduler places Jobs onto free nodes; running
// jobs execute their per-node workloads on each node's analytic engine
// while the interconnect model charges communication time and NIC
// telemetry. Completed jobs leave JobRecords — the job metadata the
// cluster KB links to sampled performance data.
package cluster

import (
	"fmt"
	"sort"

	"pmove/internal/kb"
	"pmove/internal/machine"
	"pmove/internal/topo"
)

// Node is one cluster machine.
type Node struct {
	Name    string
	System  *topo.System
	Machine *machine.Machine
	// busyJob is the id of the job occupying the node, or "".
	busyJob string
	// nicBytes accumulates communication telemetry.
	nicBytes uint64
}

// Busy reports whether a job occupies the node.
func (n *Node) Busy() bool { return n.busyJob != "" }

// NICBytes returns the accumulated interconnect traffic of the node.
func (n *Node) NICBytes() uint64 { return n.nicBytes }

// Interconnect models the cluster fabric.
type Interconnect struct {
	// LinkGBs is the per-node injection bandwidth in GB/s.
	LinkGBs float64
	// LatencyMicros is the per-message latency in microseconds.
	LatencyMicros float64
}

// CommPattern names a collective pattern; it determines how per-step
// bytes scale with the node count.
type CommPattern string

// Supported communication patterns.
const (
	CommNone      CommPattern = "none"
	CommHalo      CommPattern = "halo"      // nearest-neighbour exchange
	CommAllReduce CommPattern = "allreduce" // tree reduction + broadcast
	CommAllToAll  CommPattern = "alltoall"
)

// CommSpec describes a job's communication per superstep.
type CommSpec struct {
	Pattern CommPattern
	// BytesPerStep is the payload each node contributes per superstep.
	BytesPerStep int64
	// Steps is the number of supersteps over the job's lifetime.
	Steps int
}

// commSeconds returns the communication time one node spends and the
// bytes it injects, for the whole job.
func (ic Interconnect) commSeconds(c CommSpec, nodes int) (seconds float64, bytesPerNode uint64) {
	if c.Pattern == CommNone || c.Pattern == "" || c.Steps == 0 || nodes <= 1 {
		return 0, 0
	}
	var factor float64
	var msgsPerStep float64
	switch c.Pattern {
	case CommHalo:
		factor, msgsPerStep = 2, 2 // two neighbours
	case CommAllReduce:
		// log2(nodes) phases, payload each phase.
		lg := 0
		for n := 1; n < nodes; n *= 2 {
			lg++
		}
		factor, msgsPerStep = float64(lg), float64(lg)
	case CommAllToAll:
		factor, msgsPerStep = float64(nodes-1), float64(nodes-1)
	default:
		return 0, 0
	}
	bytesPerStep := float64(c.BytesPerStep) * factor
	perStep := bytesPerStep/(ic.LinkGBs*1e9) + msgsPerStep*ic.LatencyMicros*1e-6
	return perStep * float64(c.Steps), uint64(bytesPerStep * float64(c.Steps))
}

// Cluster is a set of nodes under one scheduler clock.
type Cluster struct {
	Fabric Interconnect
	nodes  []*Node
	byName map[string]*Node
	now    float64

	sched *Scheduler
}

// New builds a cluster of n identical nodes from a preset, named
// <preset>-00 … <preset>-NN.
func New(preset string, n int, fabric Interconnect, seed uint64) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	c := &Cluster{Fabric: fabric, byName: map[string]*Node{}}
	for i := 0; i < n; i++ {
		sys, err := topo.NewPreset(preset)
		if err != nil {
			return nil, err
		}
		cp := *sys
		cp.Hostname = fmt.Sprintf("%s-%02d", preset, i)
		m, err := machine.New(&cp, machine.Config{Seed: seed + uint64(i)*97})
		if err != nil {
			return nil, err
		}
		node := &Node{Name: cp.Hostname, System: &cp, Machine: m}
		c.nodes = append(c.nodes, node)
		c.byName[node.Name] = node
	}
	c.sched = newScheduler(c)
	return c, nil
}

// Nodes returns the nodes in name order.
func (c *Cluster) Nodes() []*Node {
	out := append([]*Node(nil), c.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Node returns a node by name.
func (c *Cluster) Node(name string) (*Node, bool) {
	n, ok := c.byName[name]
	return n, ok
}

// Now returns the cluster's virtual time in seconds.
func (c *Cluster) Now() float64 { return c.now }

// Scheduler returns the cluster's scheduler.
func (c *Cluster) Scheduler() *Scheduler { return c.sched }

// AdvanceTo moves the cluster clock (and every node's machine clock)
// forward, driving the scheduler at job boundaries.
func (c *Cluster) AdvanceTo(t float64) error {
	if t < c.now {
		return fmt.Errorf("cluster: cannot advance backwards (%.6f < %.6f)", t, c.now)
	}
	for c.now < t {
		// Next interesting instant: the earliest running-job completion.
		segEnd := t
		if next, ok := c.sched.nextCompletion(); ok && next < segEnd {
			segEnd = next
		}
		for _, n := range c.nodes {
			if err := n.Machine.AdvanceTo(segEnd); err != nil {
				return err
			}
		}
		c.now = segEnd
		c.sched.reap(c.now)
		c.sched.dispatch(c.now)
	}
	return nil
}

// FreeNodes returns the names of idle nodes, sorted.
func (c *Cluster) FreeNodes() []string {
	var out []string
	for _, n := range c.nodes {
		if !n.Busy() {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ClusterKB aggregates the per-node knowledge bases plus the job records
// — the cluster-level KB the paper's conclusion sketches.
type ClusterKB struct {
	Nodes map[string]*kb.KB
	Jobs  []*JobRecord
}

// BuildKB probes every node and collects completed job records.
func (c *Cluster) BuildKB() (*ClusterKB, error) {
	out := &ClusterKB{Nodes: map[string]*kb.KB{}}
	for _, n := range c.nodes {
		prober := topo.NewProber()
		doc, err := prober.Probe(n.System)
		if err != nil {
			return nil, fmt.Errorf("cluster: probe %s: %w", n.Name, err)
		}
		k, err := kb.Generate(doc, kb.Config{})
		if err != nil {
			return nil, fmt.Errorf("cluster: kb %s: %w", n.Name, err)
		}
		out.Nodes[n.Name] = k
	}
	out.Jobs = c.sched.Records()
	return out, nil
}
