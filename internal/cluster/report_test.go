package cluster

import (
	"testing"

	"pmove/internal/docdb"
	"pmove/internal/superdb"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// TestReportUploadsKBsAndJobs runs a job to completion and ships the
// cluster KB to a live remote SUPERDB over the resilient clients.
func TestReportUploadsKBsAndJobs(t *testing.T) {
	docs := docdb.New()
	dsrv := docdb.NewServer(docs)
	da, err := dsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dsrv.Close()
	tsrv := tsdb.NewServer(tsdb.New())
	ta, err := tsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tsrv.Close()
	r, err := superdb.DialRemote(da, ta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	if _, err := s.Submit(smallJob(t, 2, CommSpec{})); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(100); err != nil {
		t.Fatal(err)
	}

	nodes, jobs, err := c.Report(r)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 2 || jobs != 1 {
		t.Fatalf("reported %d nodes, %d jobs; want 2, 1", nodes, jobs)
	}
	if n := docs.Collection(superdb.CollKBs).Count(nil); n != 2 {
		t.Fatalf("remote holds %d KB docs", n)
	}
	jd := docs.Collection(superdb.CollJobs).Find(nil)
	if len(jd) != 1 {
		t.Fatalf("remote holds %d job docs", len(jd))
	}
	if jd[0]["name"] != "triad" || jd[0]["user"] != "alice" {
		t.Fatalf("job doc: %v", jd[0])
	}
	if v, ok := jd[0]["gflops_per_node"].(float64); !ok || v <= 0 {
		t.Fatalf("job doc missing performance: %v", jd[0])
	}

	// Re-reporting upserts rather than duplicating.
	if _, _, err := c.Report(r); err != nil {
		t.Fatal(err)
	}
	if n := docs.Collection(superdb.CollJobs).Count(nil); n != 1 {
		t.Fatalf("re-report duplicated job docs: %d", n)
	}
}
