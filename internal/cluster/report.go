package cluster

import (
	"fmt"
	"sort"

	"pmove/internal/docdb"
	"pmove/internal/superdb"
)

// Report uploads the cluster's encoded knowledge to a remote SUPERDB
// instance — the paper's "local instances synchronise their KBs to the
// global store": one KB summary per node plus one metadata document per
// finished job. It returns how many of each were shipped. Uploads ride
// the remote's resilient clients, so transient faults retry and a dead
// store fails with a bounded error instead of hanging.
func (c *Cluster) Report(r *superdb.Remote) (nodes, jobs int, err error) {
	ckb, err := c.BuildKB()
	if err != nil {
		return 0, 0, err
	}
	names := make([]string, 0, len(ckb.Nodes))
	for name := range ckb.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := r.ReportKB(ckb.Nodes[name]); err != nil {
			return nodes, jobs, fmt.Errorf("cluster: report kb %s: %w", name, err)
		}
		nodes++
	}
	for _, rec := range ckb.Jobs {
		if rec.State != StateFinished {
			continue
		}
		doc, err := docdb.FromValue(map[string]any{
			"_id":             "job:" + rec.ID,
			"name":            rec.Name,
			"user":            rec.User,
			"nodes":           rec.NodeNames,
			"submit_s":        rec.SubmitTime,
			"start_s":         rec.StartTime,
			"end_s":           rec.EndTime,
			"wait_s":          rec.WaitSeconds(),
			"compute_s":       rec.ComputeSecs,
			"comm_s":          rec.CommSecs,
			"comm_bytes":      rec.CommBytes,
			"gflops_per_node": rec.GFLOPSPerNode,
		})
		if err != nil {
			return nodes, jobs, fmt.Errorf("cluster: encode job %s: %w", rec.ID, err)
		}
		if err := r.ReportJob(doc); err != nil {
			return nodes, jobs, fmt.Errorf("cluster: report job %s: %w", rec.ID, err)
		}
		jobs++
	}
	return nodes, jobs, nil
}
