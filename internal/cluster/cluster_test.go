package cluster

import (
	"testing"

	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/topo"
)

func fabric() Interconnect {
	return Interconnect{LinkGBs: 12.5, LatencyMicros: 2} // 100 Gbit HDR-ish
}

func smallJob(t *testing.T, nodes int, comm CommSpec) Job {
	t.Helper()
	spec, err := kernels.Likwid("triad", topo.ISAAVX2, 1<<20, 500)
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Name: "triad", User: "alice", Nodes: nodes,
		ThreadsPerNode: 4, Workload: spec, Comm: comm,
	}
}

func TestNewClusterNaming(t *testing.T) {
	c, err := New(topo.PresetICL, 4, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes: %d", len(nodes))
	}
	if nodes[0].Name != "icl-00" || nodes[3].Name != "icl-03" {
		t.Errorf("names: %s .. %s", nodes[0].Name, nodes[3].Name)
	}
	if _, ok := c.Node("icl-02"); !ok {
		t.Error("lookup failed")
	}
	if _, err := New(topo.PresetICL, 0, fabric(), 1); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := New("enigma", 2, fabric(), 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	j := smallJob(t, 0, CommSpec{})
	if _, err := s.Submit(j); err == nil {
		t.Error("zero nodes accepted")
	}
	j = smallJob(t, 3, CommSpec{})
	if _, err := s.Submit(j); err == nil {
		t.Error("oversized job accepted")
	}
	j = smallJob(t, 1, CommSpec{})
	j.ThreadsPerNode = 0
	if _, err := s.Submit(j); err == nil {
		t.Error("zero threads accepted")
	}
	j = smallJob(t, 1, CommSpec{})
	j.Workload = machine.WorkloadSpec{}
	if _, err := s.Submit(j); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestJobLifecycle(t *testing.T) {
	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	rec, err := s.Submit(smallJob(t, 2, CommSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning {
		t.Fatalf("job should dispatch immediately on a free cluster, state=%s", rec.State)
	}
	if len(c.FreeNodes()) != 0 {
		t.Error("all nodes should be busy")
	}
	if err := s.Drain(100); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFinished {
		t.Fatalf("state=%s", rec.State)
	}
	if rec.ElapsedSeconds() <= 0 || rec.GFLOPSPerNode <= 0 {
		t.Errorf("record: %+v", rec)
	}
	if len(rec.NodeNames) != 2 {
		t.Errorf("nodes: %v", rec.NodeNames)
	}
	if len(c.FreeNodes()) != 2 {
		t.Error("nodes not released")
	}
}

func TestFIFOQueueing(t *testing.T) {
	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	// First job takes both nodes; the next two queue.
	a, _ := s.Submit(smallJob(t, 2, CommSpec{}))
	b, _ := s.Submit(smallJob(t, 1, CommSpec{}))
	d, _ := s.Submit(smallJob(t, 1, CommSpec{}))
	if b.State != StateQueued || d.State != StateQueued {
		t.Fatalf("states: %s %s", b.State, d.State)
	}
	if s.QueueLength() != 2 || s.RunningCount() != 1 {
		t.Fatalf("queue=%d running=%d", s.QueueLength(), s.RunningCount())
	}
	if err := s.Drain(1000); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("records: %d", len(recs))
	}
	// FIFO: a starts before b and d; b and d wait for a.
	if b.StartTime < a.EndTime-1e-9 || d.StartTime < a.EndTime-1e-9 {
		t.Errorf("queued jobs started before the blocker finished: a.end=%f b.start=%f d.start=%f",
			a.EndTime, b.StartTime, d.StartTime)
	}
	if b.WaitSeconds() <= 0 {
		t.Error("queued job should record wait time")
	}
}

func TestCommunicationExtendsJobs(t *testing.T) {
	mk := func(comm CommSpec) *JobRecord {
		c, err := New(topo.PresetICL, 4, fabric(), 1)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := c.Scheduler().Submit(smallJob(t, 4, comm))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Scheduler().Drain(1000); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	noComm := mk(CommSpec{})
	halo := mk(CommSpec{Pattern: CommHalo, BytesPerStep: 4 << 20, Steps: 100})
	a2a := mk(CommSpec{Pattern: CommAllToAll, BytesPerStep: 4 << 20, Steps: 100})
	if halo.ElapsedSeconds() <= noComm.ElapsedSeconds() {
		t.Error("communication should extend the job")
	}
	if a2a.CommSecs <= halo.CommSecs {
		t.Errorf("alltoall (%.4fs) should cost more than halo (%.4fs) at 4 nodes", a2a.CommSecs, halo.CommSecs)
	}
	if halo.CommBytes == 0 {
		t.Error("communication telemetry missing")
	}
	if noComm.CommSecs != 0 || noComm.CommBytes != 0 {
		t.Error("no-comm job charged for communication")
	}
}

func TestSingleNodeJobHasNoComm(t *testing.T) {
	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Scheduler().Submit(smallJob(t, 1, CommSpec{Pattern: CommAllReduce, BytesPerStep: 1 << 20, Steps: 50}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Scheduler().Drain(1000); err != nil {
		t.Fatal(err)
	}
	if rec.CommSecs != 0 {
		t.Error("single-node job should not pay for the fabric")
	}
}

func TestNICTelemetryAccumulates(t *testing.T) {
	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scheduler().Submit(smallJob(t, 2, CommSpec{Pattern: CommHalo, BytesPerStep: 1 << 20, Steps: 10})); err != nil {
		t.Fatal(err)
	}
	if err := c.Scheduler().Drain(1000); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.NICBytes() == 0 {
			t.Errorf("node %s has no communication telemetry", n.Name)
		}
	}
}

func TestClockMonotone(t *testing.T) {
	c, err := New(topo.PresetICL, 1, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if err := c.AdvanceTo(1); err == nil {
		t.Error("backwards advance accepted")
	}
	// Node machine clocks follow the cluster clock.
	if got := c.Nodes()[0].Machine.Now(); got != 5 {
		t.Errorf("node clock %f, want 5", got)
	}
}

func TestBuildClusterKB(t *testing.T) {
	c, err := New(topo.PresetICL, 2, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scheduler().Submit(smallJob(t, 2, CommSpec{Pattern: CommAllReduce, BytesPerStep: 1 << 18, Steps: 5})); err != nil {
		t.Fatal(err)
	}
	if err := c.Scheduler().Drain(1000); err != nil {
		t.Fatal(err)
	}
	ckb, err := c.BuildKB()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckb.Nodes) != 2 {
		t.Fatalf("node KBs: %d", len(ckb.Nodes))
	}
	for name, k := range ckb.Nodes {
		if k.Host != name {
			t.Errorf("KB host %q for node %q", k.Host, name)
		}
	}
	if len(ckb.Jobs) != 1 {
		t.Fatalf("job records: %d", len(ckb.Jobs))
	}
	j := ckb.Jobs[0]
	if j.User != "alice" || j.State != StateFinished || len(j.NodeNames) != 2 {
		t.Errorf("job metadata: %+v", j)
	}
}

func TestDrainDetectsDeadlock(t *testing.T) {
	c, err := New(topo.PresetICL, 1, fabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing running, nothing queued: drain is a no-op.
	if err := c.Scheduler().Drain(1); err != nil {
		t.Fatal(err)
	}
}
