package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"pmove/internal/introspect/expose"
	"pmove/internal/machine"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonExposePlane stands up a daemon with WithExpose, runs a real
// monitor session, and scrapes every endpoint of the observability
// plane over the socket.
func TestDaemonExposePlane(t *testing.T) {
	d, err := NewWith(
		WithEnv(Env{InfluxAddr: "embedded", MongoAddr: "embedded"}),
		WithExpose("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Introspection == nil {
		t.Fatal("WithExpose should auto-enable introspection")
	}
	if d.Logs == nil {
		t.Fatal("WithExpose should enable the log ring")
	}
	addr := d.ExposeAddr()
	if addr == "" {
		t.Fatal("ExposeAddr empty")
	}
	base := "http://" + addr

	sys := topo.MustPreset(topo.PresetICL)
	if _, err := d.AttachTarget(sys, machine.Config{Seed: 9}, telemetry.DefaultPipeline()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProbeContext(context.Background(), "icl"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.MonitorContext(context.Background(), MonitorRequest{
		Host: "icl", Metrics: []string{machine.MetricCPUIdle}, FreqHz: 2, DurationSeconds: 3,
	}); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	// Every registry metric family must be present: spot-check one of
	// each origin (op counters, telemetry, runtime gauges) and the
	// histogram sample lines.
	for _, want := range []string{
		"pmove_self_op_monitor_total",
		"pmove_self_telemetry_points_expected_total",
		"pmove_self_runtime_goroutines",
		"pmove_self_op_monitor_seconds_bucket",
		`le="+Inf"`,
		"# EOF",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	// The exposition covers the whole registry: every snapshot metric's
	// sanitized family name appears.
	for _, m := range d.SelfSnapshot().Metrics {
		fam := "pmove_self_" + strings.NewReplacer(".", "_", "-", "_").Replace(m.Name)
		fam = strings.TrimSuffix(fam, "_total")
		if !strings.Contains(body, fam) {
			t.Fatalf("/metrics missing registry metric %s (family %s)", m.Name, fam)
		}
	}

	if code, body := httpGet(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := httpGet(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	code, body = httpGet(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars invalid JSON: %v", err)
	}
	if _, ok := vars["pmove.self.op.monitor.total"]; !ok {
		t.Fatalf("/debug/vars missing op counter; keys=%d", len(vars))
	}

	code, body = httpGet(t, base+"/logs?component=daemon")
	if code != 200 {
		t.Fatalf("/logs status %d", code)
	}
	var recs []expose.LogRecordJSON
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/logs invalid JSON: %v", err)
	}
	found := false
	for _, r := range recs {
		if r.Msg == "op complete" && r.Fields["op"] == "monitor" {
			found = true
			if r.Trace == "" {
				t.Fatal("daemon op record lacks trace id")
			}
		}
	}
	if !found {
		t.Fatalf("no monitor op record in /logs: %+v", recs)
	}
}

// TestExposeAddrLifecycle covers the accessor before/after Close and a
// bind failure surfacing from NewWith.
func TestExposeAddrLifecycle(t *testing.T) {
	d, err := NewWith(WithIntrospection(), WithLogBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	if d.ExposeAddr() != "" {
		t.Fatal("ExposeAddr should be empty without WithExpose")
	}
	if d.Logs == nil {
		t.Fatal("WithLogBuffer alone should enable the ring")
	}
	d.Close()

	d2, err := NewWith(WithExpose("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	addr := d2.ExposeAddr()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("expose server still serving after Close")
	}

	if _, err := NewWith(WithExpose("256.0.0.1:bogus")); err == nil {
		t.Fatal("bogus expose address should fail NewWith")
	}
}
