package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"pmove/internal/kb"
	"pmove/internal/machine"
	"pmove/internal/ontology"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// ontologyEntryProcess aliases the entry kind for readability at the
// instantiation site.
const ontologyEntryProcess = ontology.EntryProcess

// ObserveRequest configures a Scenario B run: "It requests an executable
// and its command-line parameters. Once these are provided, the PMUs are
// configured to report the requested metrics."
type ObserveRequest struct {
	Host string
	// Workload is the kernel to execute (the "script" generated to run the
	// requested kernel, expressed as a workload spec for the engine).
	Workload machine.WorkloadSpec
	// Command/Args are recorded in the observation metadata.
	Command string
	Args    []string
	// Threads and Pin control the generated affinity.
	Threads int
	Pin     topo.PinStrategy
	// GenericEvents are resolved through the Abstraction Layer into
	// hardware events for the target's microarchitecture.
	GenericEvents []string
	// HWEvents are sampled verbatim (in addition to resolved generics).
	HWEvents []string
	// SWMetrics are co-sampled system metrics (e.g. mem.numa.alloc_hit).
	SWMetrics []string
	// FreqHz is the PMU sampling frequency (HWTelemetry is high-frequency).
	FreqHz float64
	// WorkFactors optionally skew the per-thread work (one entry per
	// software thread): load-imbalanced kernels such as row-split SpMV on
	// heavy-tailed matrices supply their real partition shares here
	// (spmv.ThreadWorkFactors).
	WorkFactors []float64
}

// ObserveResult is the outcome of a Scenario B run.
type ObserveResult struct {
	Observation *kb.Observation
	Execution   *machine.Execution
	Stats       telemetry.SessionStats
	// Queries are the auto-generated retrieval statements (Listing 3).
	Queries []string
}

// Observe runs Scenario B with a background context.
//
// Deprecated: use ObserveContext.
func (d *Daemon) Observe(req ObserveRequest) (*ObserveResult, error) {
	return d.ObserveContext(context.Background(), req)
}

// ObserveContext runs Scenario B (Figure 3, B1–B8): configure the PMUs
// from the KB and abstraction layer, generate the pinned run script, start
// sampling, execute the kernel, stop sampling when it halts, and append an
// ObservationInterface linking the metadata to the time-series rows.
// Cancelling ctx stops the sampling loop at the next tick.
func (d *Daemon) ObserveContext(ctx context.Context, req ObserveRequest) (*ObserveResult, error) {
	ctx, done := d.opStart(ctx, "observe")
	res, err := d.observe(ctx, req)
	done(err)
	return res, err
}

func (d *Daemon) observe(ctx context.Context, req ObserveRequest) (*ObserveResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: observe %s: %w", req.Host, err)
	}
	t, err := d.Target(req.Host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(req.Host)
	if err != nil {
		return nil, err
	}
	if req.FreqHz <= 0 {
		return nil, fmt.Errorf("core: observe: sampling frequency must be positive")
	}
	if req.Threads <= 0 {
		return nil, fmt.Errorf("core: observe: thread count must be positive")
	}
	if req.Pin == "" {
		req.Pin = topo.PinBalanced
	}

	// B1: resolve and program the hardware events.
	microarch := t.System.CPU.Microarch
	events := append([]string(nil), req.HWEvents...)
	if len(req.GenericEvents) > 0 {
		resolved, err := d.Registry.HardwareEvents(microarch, req.GenericEvents)
		if err != nil {
			return nil, fmt.Errorf("core: observe: %w", err)
		}
		events = append(events, resolved...)
	}
	events = dedupe(events)
	var coreEvents, raplEvents []string
	for _, ev := range events {
		def, ok := t.Machine.Catalog().Lookup(ev)
		if !ok {
			return nil, fmt.Errorf("core: observe: event %q not in %s catalog", ev, microarch)
		}
		if def.PMU == "rapl" {
			raplEvents = append(raplEvents, ev)
		} else {
			coreEvents = append(coreEvents, ev)
		}
	}
	if err := t.Machine.ProgramAll(coreEvents); err != nil {
		return nil, err
	}

	// Generate the affinity script from the probed topology.
	pinning, err := topo.Pin(t.System, req.Pin, req.Threads)
	if err != nil {
		return nil, err
	}

	// Metrics to sample: HW events + SW metrics.
	var metrics []string
	for _, ev := range append(append([]string(nil), coreEvents...), raplEvents...) {
		metrics = append(metrics, telemetry.MetricForEvent(ev))
	}
	metrics = append(metrics, req.SWMetrics...)
	metrics = dedupe(metrics)

	tag := d.nextTag(req.Host)
	collector := d.newCollector(t)
	sess, err := telemetry.NewSession(t.PMCD, collector, telemetry.SessionConfig{
		Metrics: metrics, FreqHz: req.FreqHz, Tag: tag,
	})
	if err != nil {
		return nil, err
	}

	// Launch the kernel and sample until it halts ("samples performance
	// events, executes the script to run a kernel on a target and stops
	// the sampling as the kernel is halted").
	start := t.Machine.Now()
	exec, err := t.Machine.LaunchSkewed(req.Workload, pinning, req.WorkFactors)
	if err != nil {
		return nil, err
	}
	ticks := uint64(math.Ceil(exec.Duration*req.FreqHz)) + 1
	stats, err := sess.RunTicksContext(ctx, ticks)
	if err != nil {
		return nil, err
	}
	if err := t.Machine.Wait(exec); err != nil {
		return nil, err
	}

	// B8: build and append the ObservationInterface, plus the freshly
	// re-instantiated ProcessInterface ("a ProcessInterface is
	// re-instantiated each time it is invoked, reflecting the processes'
	// dynamic nature").
	cmd := req.Command
	if cmd == "" {
		cmd = req.Workload.Name
	}
	proc := &kb.Process{
		ID:         "proc:" + tag,
		Type:       string(ontologyEntryProcess),
		Host:       req.Host,
		PID:        10000 + int(start*1000)%40000,
		Command:    cmd,
		StartNanos: int64(start * 1e9),
		Threads:    map[string]int{},
	}
	for i, hw := range pinning {
		proc.Threads[fmt.Sprintf("t%d", i)] = hw
	}
	obs := &kb.Observation{
		ID:          "obs:" + tag,
		Type:        "ObservationInterface",
		Tag:         tag,
		Host:        req.Host,
		Command:     cmd,
		Args:        req.Args,
		PinStrategy: string(req.Pin),
		Affinity:    pinning,
		StartNanos:  int64(start * 1e9),
		EndNanos:    int64(t.Machine.Now() * 1e9),
		FreqHz:      req.FreqHz,
	}
	for _, m := range metrics {
		obs.Metrics = append(obs.Metrics, kb.MetricRef{
			Measurement: tsdb.MeasurementName(m),
			Fields:      d.fieldsForMetric(t, m),
		})
	}
	obs.Report = fmt.Sprintf(
		"kernel %s on %d threads (%s): %.3fs at %.2f GHz, %.2f GFLOP/s, AI %.3f; sampled %d metrics at %g Hz (%.1f%% lost)",
		req.Workload.Name, req.Threads, req.Pin, exec.Duration, exec.FreqGHz,
		exec.GFLOPS, exec.AI, len(metrics), req.FreqHz, stats.LossPct)
	if err := d.attachAndPersist(k, proc, obs); err != nil {
		return nil, err
	}
	return &ObserveResult{
		Observation: obs,
		Execution:   exec,
		Stats:       stats,
		Queries:     obs.Queries(),
	}, nil
}

// RunScript renders the wrapper script Scenario B would generate on a real
// target: taskset-pinned execution between PCP sampling control commands.
func RunScript(req ObserveRequest, pinning []int) string {
	var b strings.Builder
	b.WriteString("#!/bin/sh\n# generated by P-MoVE\n")
	fmt.Fprintf(&b, "pmcd_ctl start-sampling --freq %g\n", req.FreqHz)
	cpus := make([]string, len(pinning))
	for i, c := range pinning {
		cpus[i] = fmt.Sprintf("%d", c)
	}
	cmd := req.Command
	if cmd == "" {
		cmd = req.Workload.Name
	}
	fmt.Fprintf(&b, "taskset -c %s %s %s\n", strings.Join(cpus, ","), cmd, strings.Join(req.Args, " "))
	b.WriteString("pmcd_ctl stop-sampling\n")
	return b.String()
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
