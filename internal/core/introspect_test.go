package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// introspectedDaemon builds a daemon with self-observability enabled and
// the given targets attached and probed.
func introspectedDaemon(t *testing.T, presets ...string) *Daemon {
	t.Helper()
	d, err := NewWith(
		WithEnv(Env{InfluxAddr: "embedded", MongoAddr: "embedded"}),
		WithIntrospection(),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets {
		sys := topo.MustPreset(p)
		if _, err := d.AttachTarget(sys, machine.Config{Seed: 9}, telemetry.DefaultPipeline()); err != nil {
			t.Fatal(err)
		}
		if _, err := d.ProbeContext(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestParallelMonitorSelfMetrics runs two targets' Monitor sessions
// concurrently with introspection enabled and checks the aggregated self
// metrics agree exactly with the per-session statistics — the invariant
// that would break under the old unsynchronized sink/generator/KB paths
// (run under -race to prove the locking discipline).
func TestParallelMonitorSelfMetrics(t *testing.T) {
	d := introspectedDaemon(t, topo.PresetSKX, topo.PresetICL)
	hosts := []string{"skx", "icl"}
	results := make([]*MonitorResult, len(hosts))
	errs := make([]error, len(hosts))
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(i int, h string) {
			defer wg.Done()
			results[i], errs[i] = d.MonitorContext(context.Background(), MonitorRequest{
				Host: h, Metrics: []string{machine.MetricCPUIdle}, FreqHz: 2, DurationSeconds: 5,
			})
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("monitor %s: %v", hosts[i], err)
		}
	}

	var expected, inserted, lost uint64
	for _, r := range results {
		expected += r.Stats.Expected
		inserted += r.Stats.Inserted
		lost += r.Stats.Lost
	}
	snap := d.SelfSnapshot()
	if got := snap.CounterValue("telemetry.points.expected"); got != expected {
		t.Errorf("self expected = %d, sessions reported %d", got, expected)
	}
	if got := snap.CounterValue("telemetry.points.inserted"); got != inserted {
		t.Errorf("self inserted = %d, sessions reported %d", got, inserted)
	}
	if got := snap.CounterValue("telemetry.points.lost"); got != lost {
		t.Errorf("self lost = %d, sessions reported %d", got, lost)
	}
	if got := snap.CounterValue("op.monitor.total"); got != 2 {
		t.Errorf("op.monitor.total = %d, want 2", got)
	}
	if got := snap.GaugeValue("ops.inflight"); got != 0 {
		t.Errorf("ops.inflight after completion = %g", got)
	}

	// Dashboard IDs from the shared generator must be distinct.
	if results[0].Dashboard.ID == results[1].Dashboard.ID {
		t.Errorf("both dashboards got ID %d", results[0].Dashboard.ID)
	}

	// Both observations reached each host's KB through the serialized
	// attach path.
	for i, h := range hosts {
		k, err := d.KB(h)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := k.FindObservation(results[i].Observation.Tag); !ok {
			t.Errorf("observation %s missing from %s KB", results[i].Observation.Tag, h)
		}
	}
}

// TestSelfMetricsQueryable checks the pmove.self.* series land in the
// embedded TSDB after any daemon op and that the meta dashboard renders.
func TestSelfMetricsQueryable(t *testing.T) {
	d := introspectedDaemon(t, topo.PresetICL)
	if _, err := d.MonitorContext(context.Background(), MonitorRequest{
		Host: "icl", Metrics: []string{machine.MetricCPUIdle}, FreqHz: 2, DurationSeconds: 1,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := d.TS.QueryString(`SELECT "_value" FROM "pmove_self_op_monitor_total" WHERE "tag" = 'self'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no pmove.self rows after monitor")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Values["_value"] != 1 {
		t.Errorf("op.monitor.total exported %v, want 1", last.Values["_value"])
	}
	// Latency histogram exported with count and buckets.
	res, err = d.TS.QueryString(`SELECT "_count" FROM "pmove_self_op_monitor_seconds" WHERE "tag" = 'self'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Rows[len(res.Rows)-1].Values["_count"] != 1 {
		t.Errorf("histogram export: %+v", res.Rows)
	}

	dash, err := d.MetaDashboard()
	if err != nil {
		t.Fatal(err)
	}
	if err := dash.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(dash.Panels) == 0 {
		t.Error("meta dashboard has no panels")
	}

	// Spans recorded the daemon op with its telemetry children.
	spans := d.SelfSpans()
	var monitorID uint64
	for _, s := range spans {
		if s.Name == "daemon.monitor" {
			monitorID = s.ID
		}
	}
	if monitorID == 0 {
		t.Fatal("no daemon.monitor span recorded")
	}
	childFound := false
	for _, s := range spans {
		if s.Parent == monitorID && s.Name == "telemetry.session" {
			childFound = true
		}
	}
	if !childFound {
		t.Error("telemetry.session span not parented under daemon.monitor")
	}
}

// TestIntrospectionDisabledIsInert checks the legacy constructor leaves
// introspection off: no self series, MetaDashboard refuses.
func TestIntrospectionDisabledIsInert(t *testing.T) {
	d := testDaemon(t, topo.PresetICL)
	if _, err := d.Monitor("icl", []string{machine.MetricCPUIdle}, 2, 1); err != nil {
		t.Fatal(err)
	}
	for _, m := range d.TS.Measurements() {
		if len(m) >= 10 && m[:10] == "pmove_self" {
			t.Errorf("self series %q exported with introspection disabled", m)
		}
	}
	if _, err := d.MetaDashboard(); err == nil {
		t.Error("MetaDashboard succeeded without introspection")
	}
	if snap := d.SelfSnapshot(); len(snap.Metrics) != 0 {
		t.Errorf("snapshot has %d metrics", len(snap.Metrics))
	}
}

// cancelAfterSink cancels a context after n successful writes, then keeps
// writing — a deterministic way to cancel mid-session.
type cancelAfterSink struct {
	db     *tsdb.DB
	cancel context.CancelFunc

	mu   sync.Mutex
	left int
}

func (s *cancelAfterSink) WritePoint(p tsdb.Point) error {
	err := s.db.WritePoint(p)
	s.mu.Lock()
	s.left--
	if s.left == 0 {
		s.cancel()
	}
	s.mu.Unlock()
	return err
}

// TestMonitorCancellation cancels mid-Monitor and checks the op returns
// promptly with a wrapped context.Canceled, and that the cancellation is
// visible in the self metrics.
func TestMonitorCancellation(t *testing.T) {
	d := introspectedDaemon(t, topo.PresetICL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d.SetTelemetrySink(&cancelAfterSink{db: d.TS, cancel: cancel, left: 2})
	_, err := d.MonitorContext(ctx, MonitorRequest{
		Host: "icl", Metrics: []string{machine.MetricCPUIdle}, FreqHz: 2, DurationSeconds: 100,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-monitor cancel returned %v, want wrapped context.Canceled", err)
	}
	snap := d.SelfSnapshot()
	if got := snap.CounterValue("ops.canceled"); got != 1 {
		t.Errorf("ops.canceled = %d, want 1", got)
	}
	if got := snap.CounterValue("op.monitor.errors"); got != 1 {
		t.Errorf("op.monitor.errors = %d, want 1", got)
	}

	// A pre-cancelled context fails every context-first op up front.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	calls := []struct {
		name string
		call func() error
	}{
		{"probe", func() error { _, err := d.ProbeContext(done, "icl"); return err }},
		{"monitor", func() error {
			_, err := d.MonitorContext(done, MonitorRequest{Host: "icl", FreqHz: 2, DurationSeconds: 1})
			return err
		}},
		{"scan", func() error { _, err := d.ScanContext(done, "icl", "t1"); return err }},
		{"stream", func() error { _, err := d.RunSTREAMContext(done, "icl", 2); return err }},
		{"hpcg", func() error { _, err := d.RunHPCGContext(done, "icl", 2, 1<<10); return err }},
		{"carm", func() error { _, err := d.ConstructCARMContext(done, "icl", topo.ISAAVX512, 2); return err }},
	}
	for _, c := range calls {
		if err := c.call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx returned %v", c.name, err)
		}
	}
}

// TestObserveCancellation covers the Scenario B path: the sampling loop
// stops at the next tick after cancellation.
func TestObserveCancellation(t *testing.T) {
	d := introspectedDaemon(t, topo.PresetICL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d.SetTelemetrySink(&cancelAfterSink{db: d.TS, cancel: cancel, left: 2})
	spec, err := kernels.Likwid("triad", topo.ISAAVX512, 1<<20, 200000)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.ObserveContext(ctx, ObserveRequest{
		Host: "icl", Workload: spec, Threads: 2, FreqHz: 32,
		SWMetrics: []string{machine.MetricCPUIdle},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-observe cancel returned %v, want wrapped context.Canceled", err)
	}
}

// TestDeprecatedWrappersStillWork pins the compatibility contract: the
// positional, context-free methods keep their pre-redesign behavior.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	d := introspectedDaemon(t, topo.PresetICL)
	res, err := d.Monitor("icl", []string{machine.MetricCPUIdle}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Ticks != 2 {
		t.Errorf("ticks = %d", res.Stats.Ticks)
	}
	if _, err := d.Scan("icl", res.Observation.Tag); err != nil {
		t.Fatal(err)
	}
	if got := d.SelfSnapshot().CounterValue("op.monitor.total"); got != 1 {
		t.Errorf("wrapper bypassed instrumentation: op.monitor.total = %d", got)
	}
}

// TestGeneratorConcurrentIDs hammers the shared dashboard generator from
// many goroutines; run under -race this pins the allocID fix.
func TestGeneratorConcurrentIDs(t *testing.T) {
	d := introspectedDaemon(t, topo.PresetICL)
	k, err := d.KB("icl")
	if err != nil {
		t.Fatal(err)
	}
	v, err := k.SubtreeView(k.Root().ID)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	ids := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dash, err := d.Gen.FromView(v)
			if err == nil {
				ids[i] = dash.ID
			}
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, id := range ids {
		if id == 0 {
			t.Fatal("generation failed")
		}
		if seen[id] {
			t.Fatalf("duplicate dashboard ID %d", id)
		}
		seen[id] = true
	}
}
