// Package core implements the P-MoVE daemon: the orchestrator that reads
// its environment (Figure 3 step ⓪), probes targets and generates their
// Knowledge Bases (①–③), configures samplers and dashboards from the KB,
// and runs the two operating scenarios — system monitoring (Scenario A)
// and kernel observation with PMU sampling (Scenario B) — plus benchmark
// execution and live-CARM analysis.
//
// The daemon is host-side: "P-MoVE is designed to run on a host that can
// be different than the target system. The host runs the P-MoVE daemon as
// well as the tools with heavy workloads, e.g., InfluxDB, MongoDB, and
// Grafana. The target only runs the PCP samplers."
package core

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"pmove/internal/abst"
	"pmove/internal/dashboard"
	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/introspect/expose"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/kb"
	"pmove/internal/machine"
	"pmove/internal/pmu"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
	"pmove/internal/tsdb"
)

// Env is the daemon's environment configuration (step ⓪ reads "the IP
// addresses of InfluxDB and MongoDB instances and Grafana token").
type Env struct {
	InfluxAddr   string
	MongoAddr    string
	GrafanaToken string
}

// EnvFromOS reads the configuration from the process environment, with
// embedded-instance defaults when unset.
func EnvFromOS() Env {
	get := func(k, def string) string {
		if v := os.Getenv(k); v != "" {
			return v
		}
		return def
	}
	return Env{
		InfluxAddr:   get("PMOVE_INFLUX_ADDR", "embedded"),
		MongoAddr:    get("PMOVE_MONGO_ADDR", "embedded"),
		GrafanaToken: get("PMOVE_GRAFANA_TOKEN", "dev-token"),
	}
}

// Target is one attached system: its execution engine and PCP-like
// sampler stack.
type Target struct {
	System   *topo.System
	Machine  *machine.Machine
	PMCD     *telemetry.PMCD
	Pipeline telemetry.PipelineConfig
}

// Daemon is the P-MoVE host process.
//
// Locking discipline: d.mu guards the daemon's own registries (targets,
// kbs, seq, sink) and is never held across an operation; d.kbMu
// serializes KB entry attachment and persistence, since kb.KB is not
// internally synchronized and concurrent Monitor/Observe sessions all
// mutate their host's KB. Per-target state (Machine, PMCD) is owned by
// whichever session runs on that target — concurrent operations against
// the *same* target share a virtual clock and must be serialized by the
// caller; operations on different targets are safe in parallel.
type Daemon struct {
	Env      Env
	Docs     *docdb.DB
	TS       *tsdb.DB
	Registry *abst.Registry
	Gen      *dashboard.Generator
	// Introspection is the self-observability layer; nil when disabled
	// (every instrumented path is nil-safe and near-free then).
	Introspection *introspect.Introspector
	// Logs is the daemon's bounded structured log ring, non-nil once
	// WithLogBuffer or WithExpose enables it. Components append through
	// component children (Logs.With); every logbuf method is nil-safe,
	// so disabled logging costs nothing.
	Logs *logbuf.Logger

	mu      sync.Mutex
	targets map[string]*Target
	kbs     map[string]*kb.KB
	seq     uint64
	sink    telemetry.PointSink

	// dataDir/fsync back the embedded databases with WAL+snapshot data
	// directories when set (WithDataDir); both stay "" for the default
	// zero-config in-memory mode.
	dataDir string
	fsync   string

	// exposeAddr/logCap hold the WithExpose / WithLogBuffer requests
	// until NewWith materializes them; exposeSrv and stopSampler are the
	// running observability plane, released by Close.
	exposeAddr  string
	logCap      int
	exposeSrv   *expose.Server
	stopSampler func()

	// kbMu serializes Attach+Persist on the per-host KBs.
	kbMu sync.Mutex
}

// SetTelemetrySink redirects all subsequent monitoring/observation
// telemetry to sink instead of the embedded TS store — typically a
// resilient tsdb.Client pointed at a remote host (Figure 3's "the host
// runs ... InfluxDB"). Passing nil restores the embedded store.
func (d *Daemon) SetTelemetrySink(sink telemetry.PointSink) {
	d.mu.Lock()
	d.sink = sink
	d.mu.Unlock()
	d.wireSinkIntrospection(sink)
}

// wireSinkIntrospection attaches the self-observability layer to a
// resilient remote sink's transport, so its retries, failures and
// breaker transitions land in the transport.tsdb.* self metrics and the
// structured log ring.
func (d *Daemon) wireSinkIntrospection(sink telemetry.PointSink) {
	tc, ok := sink.(*tsdb.Client)
	if !ok {
		return
	}
	if d.Introspection != nil {
		tc.Transport().SetIntrospection(d.Introspection, "tsdb")
	}
	tc.Transport().SetLogger(d.Logs.With("transport.tsdb"))
}

// newCollector builds the collector for one session, honoring the
// configured remote sink and the daemon's introspection layer. The sink
// is read under d.mu so a concurrent SetTelemetrySink on a hot attach
// path is always observed whole; the collector keeps its own immutable
// copy afterwards.
func (d *Daemon) newCollector(t *Target) *telemetry.Collector {
	c := telemetry.NewCollector(d.TS, t.Pipeline)
	d.mu.Lock()
	c.Sink = d.sink
	d.mu.Unlock()
	c.Self = d.Introspection
	c.Log = d.Logs.With("telemetry")
	return c
}

// New creates a daemon with embedded databases and the built-in
// abstraction-layer registry.
//
// Deprecated: use NewWith (functional options); New(env) is equivalent to
// NewWith(WithEnv(env)) and kept for compatibility.
func New(env Env) (*Daemon, error) {
	return NewWith(WithEnv(env))
}

// AttachTarget registers a target system with the daemon, building its
// execution engine and sampler stack.
func (d *Daemon) AttachTarget(sys *topo.System, mcfg machine.Config, pipe telemetry.PipelineConfig) (*Target, error) {
	m, err := machine.New(sys, mcfg)
	if err != nil {
		return nil, err
	}
	t := &Target{System: sys, Machine: m, PMCD: telemetry.NewPMCD(m), Pipeline: pipe}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.targets[sys.Hostname]; dup {
		return nil, fmt.Errorf("core: target %q already attached", sys.Hostname)
	}
	d.targets[sys.Hostname] = t
	return t, nil
}

// Target returns an attached target.
func (d *Daemon) Target(host string) (*Target, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.targets[host]
	if !ok {
		return nil, fmt.Errorf("core: no target %q attached", host)
	}
	return t, nil
}

// Hosts lists attached targets, sorted.
func (d *Daemon) Hosts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for h := range d.targets {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Probe runs Figure 3 steps ①–③ with a background context.
//
// Deprecated: use ProbeContext.
func (d *Daemon) Probe(host string) (*kb.KB, error) {
	return d.ProbeContext(context.Background(), host)
}

// ProbeContext runs Figure 3 steps ①–③ for a target: the probing module
// runs on the target, the probe document comes back to the host, the KB
// is generated from it and inserted into the document database.
func (d *Daemon) ProbeContext(ctx context.Context, host string) (*kb.KB, error) {
	ctx, done := d.opStart(ctx, "probe")
	k, err := d.probe(ctx, host)
	done(err)
	return k, err
}

func (d *Daemon) probe(ctx context.Context, host string) (*kb.KB, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: probe %s: %w", host, err)
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	prober := topo.NewProber()
	prober.EventLister = func(microarch string) []string {
		cat, err := pmu.CatalogFor(microarch)
		if err != nil {
			return nil
		}
		return cat.Names()
	}
	prober.MetricLister = func(*topo.System) []string { return t.PMCD.Metrics() }
	doc, err := prober.Probe(t.System)
	if err != nil {
		return nil, err
	}
	k, err := kb.Generate(doc, kb.Config{
		InfluxAddr:   d.Env.InfluxAddr,
		MongoAddr:    d.Env.MongoAddr,
		GrafanaToken: d.Env.GrafanaToken,
	})
	if err != nil {
		return nil, err
	}
	d.kbMu.Lock()
	err = k.Persist(d.Docs)
	d.kbMu.Unlock()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.kbs[host] = k
	d.mu.Unlock()
	return k, nil
}

// KB returns the generated knowledge base for a host.
func (d *Daemon) KB(host string) (*kb.KB, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k, ok := d.kbs[host]
	if !ok {
		return nil, fmt.Errorf("core: host %q not probed yet", host)
	}
	return k, nil
}

// attachAndPersist attaches entries to a host's KB and re-inserts it
// ("Step ③ re-occurs every time KB changes"). Serialized under d.kbMu:
// kb.KB has no internal locking, and concurrent sessions on the same
// host otherwise race on the entry list.
func (d *Daemon) attachAndPersist(k *kb.KB, entries ...kb.Entry) error {
	d.kbMu.Lock()
	defer d.kbMu.Unlock()
	for _, e := range entries {
		if err := k.Attach(e); err != nil {
			return err
		}
	}
	return k.Persist(d.Docs)
}

// nextTag allocates an observation tag.
func (d *Daemon) nextTag(host string) string {
	d.mu.Lock()
	d.seq++
	s := d.seq
	d.mu.Unlock()
	return kb.NewUUID(host, s)
}

// MonitorRequest configures a Scenario A run, mirroring ObserveRequest so
// the public surface evolves by adding fields instead of parameters.
type MonitorRequest struct {
	// Host is the attached target to monitor.
	Host string
	// Metrics are the software metrics to sample; empty selects the KB's
	// default SWTelemetry set.
	Metrics []string
	// FreqHz is the sampling frequency.
	FreqHz float64
	// DurationSeconds bounds the session (virtual seconds).
	DurationSeconds float64
}

// MonitorResult is the outcome of a Scenario A run.
type MonitorResult struct {
	Observation *kb.Observation
	Stats       telemetry.SessionStats
	Dashboard   *dashboard.Dashboard
}

// Monitor runs Scenario A with the legacy positional signature and a
// background context.
//
// Deprecated: use MonitorContext with a MonitorRequest.
func (d *Daemon) Monitor(host string, metrics []string, freqHz, durationSeconds float64) (*MonitorResult, error) {
	return d.MonitorContext(context.Background(), MonitorRequest{
		Host: host, Metrics: metrics, FreqHz: freqHz, DurationSeconds: durationSeconds,
	})
}

// MonitorContext runs Scenario A: sampling software-emitted metrics to
// monitor system state. The KB supplies the sampler configuration;
// dashboards are generated before the target starts reporting ("the
// dashboards are already generated on the host when the target starts
// reporting"). Cancelling ctx stops the session at the next tick and
// returns the context's error wrapped.
func (d *Daemon) MonitorContext(ctx context.Context, req MonitorRequest) (*MonitorResult, error) {
	ctx, done := d.opStart(ctx, "monitor")
	res, err := d.monitor(ctx, req)
	done(err)
	return res, err
}

func (d *Daemon) monitor(ctx context.Context, req MonitorRequest) (*MonitorResult, error) {
	host, metrics := req.Host, req.Metrics
	freqHz, durationSeconds := req.FreqHz, req.DurationSeconds
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: monitor %s: %w", host, err)
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	if len(metrics) == 0 {
		// Default SWTelemetry set from the KB: every software telemetry
		// definition on any component.
		seen := map[string]bool{}
		for _, n := range k.Nodes() {
			for _, tel := range n.Interface.Telemetries("SWTelemetry") {
				if t2, ok := t.PMCD.Agent(telemetry.AgentLinux); ok {
					for _, m := range t2.Metrics() {
						if m == tel.SamplerName && !seen[m] {
							seen[m] = true
							metrics = append(metrics, m)
						}
					}
				}
			}
		}
		sort.Strings(metrics)
	}
	tag := d.nextTag(host)

	// A1/A2: configure the sampler and generate the dashboard in parallel
	// conceptually; here sequentially but before sampling starts.
	obs := &kb.Observation{
		ID:         "obs:" + tag,
		Type:       "ObservationInterface",
		Tag:        tag,
		Host:       host,
		Command:    "monitor",
		FreqHz:     freqHz,
		StartNanos: int64(t.Machine.Now() * 1e9),
	}
	for _, m := range metrics {
		obs.Metrics = append(obs.Metrics, kb.MetricRef{
			Measurement: tsdb.MeasurementName(m),
			Fields:      d.fieldsForMetric(t, m),
		})
	}
	dash, err := d.Gen.ForObservation(obs)
	if err != nil {
		return nil, err
	}

	collector := d.newCollector(t)
	// Opt-in durable spill journal (Pipeline.JournalDir): backlog from a
	// crashed predecessor is reloaded here and replayed ahead of fresh
	// data; the journal is compacted and released when the run ends.
	if _, err := collector.OpenJournal(); err != nil {
		return nil, err
	}
	defer collector.CloseJournal()
	sess, err := telemetry.NewSession(t.PMCD, collector, telemetry.SessionConfig{
		Metrics: metrics, FreqHz: freqHz, Tag: tag, DurationSeconds: durationSeconds,
	})
	if err != nil {
		return nil, err
	}
	stats, err := sess.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	obs.EndNanos = int64(t.Machine.Now() * 1e9)
	obs.Report = fmt.Sprintf("monitored %d metrics at %g Hz for %gs: %d inserted, %.1f%% lost",
		len(metrics), freqHz, durationSeconds, stats.Inserted, stats.LossPct)
	if stats.Spilled > 0 {
		obs.Report += fmt.Sprintf(" (degraded: %d spilled, %d replayed, %d evicted, %d pending)",
			stats.Spilled, stats.Replayed, stats.SpillDropped, stats.Pending)
	}
	if err := d.attachAndPersist(k, obs); err != nil {
		return nil, err
	}
	return &MonitorResult{Observation: obs, Stats: stats, Dashboard: dash}, nil
}

// fieldsForMetric resolves the instance fields a metric reports on a
// target (the query parameters "already encoded in KB").
func (d *Daemon) fieldsForMetric(t *Target, metric string) []string {
	s, err := t.PMCD.Sample(metric)
	if err != nil {
		return nil
	}
	var fields []string
	for f := range s.Values {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}
