package core

import (
	"testing"

	"pmove/internal/kb"
	"pmove/internal/machine"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

// durableDaemon builds a daemon on a data directory and attaches a
// probed ICL target.
func durableDaemon(t *testing.T, dir, fsync string) *Daemon {
	t.Helper()
	d, err := NewWith(
		WithEnv(Env{InfluxAddr: "embedded", MongoAddr: "embedded", GrafanaToken: "tok"}),
		WithDataDir(dir, fsync),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AttachTarget(topo.MustPreset(topo.PresetICL), machine.Config{Seed: 9}, telemetry.DefaultPipeline()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Probe(topo.PresetICL); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDaemonDataDirSurvivesRestart: a monitored run's KB documents and
// telemetry points come back when a second daemon opens the same data
// directory — the end-to-end durability contract at the daemon surface.
func TestDaemonDataDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := durableDaemon(t, dir, "always")
	res, err := d.Monitor("icl", []string{machine.MetricCPUIdle}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Inserted == 0 {
		t.Fatal("monitor run inserted nothing")
	}
	wantPoints, _ := d.TS.CountValues("cpu_idle")
	wantKB, err := d.KB("icl")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewWith(
		WithEnv(Env{InfluxAddr: "embedded", MongoAddr: "embedded", GrafanaToken: "tok"}),
		WithDataDir(dir, "always"),
	)
	if err != nil {
		t.Fatalf("reopen data dir: %v", err)
	}
	defer re.Close()
	if got, _ := re.TS.CountValues("cpu_idle"); got != wantPoints {
		t.Errorf("recovered %d telemetry points, want %d", got, wantPoints)
	}
	loaded, err := kb.Load(re.Docs, "icl")
	if err != nil {
		t.Fatalf("KB not recovered from the data dir: %v", err)
	}
	if loaded.Len() != wantKB.Len() {
		t.Errorf("recovered KB has %d nodes, want %d", loaded.Len(), wantKB.Len())
	}
}

// TestDaemonCloseRefusesFurtherWrites pins the released-daemon contract:
// reads keep working, writes fail loudly instead of going volatile.
func TestDaemonCloseRefusesFurtherWrites(t *testing.T) {
	dir := t.TempDir()
	d := durableDaemon(t, dir, "always")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Monitor("icl", []string{machine.MetricCPUIdle}, 2, 2); err == nil {
		t.Error("closed durable daemon accepted a monitoring run")
	}
	if err := d.Close(); err != nil {
		t.Errorf("double Close not idempotent: %v", err)
	}
}

// TestDaemonBadDataDirConfig pins construction validation.
func TestDaemonBadDataDirConfig(t *testing.T) {
	if _, err := NewWith(WithDataDir(t.TempDir(), "sometimes")); err == nil {
		t.Error("unknown fsync policy accepted")
	}
}
