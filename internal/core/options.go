package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"pmove/internal/abst"
	"pmove/internal/dashboard"
	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/introspect/expose"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/introspect/selfexport"
	"pmove/internal/kb"
	"pmove/internal/resilience"
	"pmove/internal/storage"
	"pmove/internal/telemetry"
	"pmove/internal/tsdb"
)

// Option configures a Daemon at construction — the functional-options
// form of the step-⓪ environment read, so new knobs (telemetry sinks,
// introspection) compose without another positional parameter.
type Option func(*Daemon)

// WithEnv replaces the whole environment configuration.
func WithEnv(env Env) Option {
	return func(d *Daemon) { d.Env = env }
}

// WithInflux points the daemon's environment at an InfluxDB address.
func WithInflux(addr string) Option {
	return func(d *Daemon) { d.Env.InfluxAddr = addr }
}

// WithMongo points the daemon's environment at a MongoDB address.
func WithMongo(addr string) Option {
	return func(d *Daemon) { d.Env.MongoAddr = addr }
}

// WithGrafanaToken sets the visualization-layer token.
func WithGrafanaToken(token string) Option {
	return func(d *Daemon) { d.Env.GrafanaToken = token }
}

// WithTelemetrySink redirects monitoring/observation telemetry to sink
// from the start (equivalent to calling SetTelemetrySink after New).
func WithTelemetrySink(sink telemetry.PointSink) Option {
	return func(d *Daemon) { d.sink = sink }
}

// WithDataDir backs the embedded databases with WAL+snapshot data
// directories under dir (tsdb/ and docdb/ subdirectories), replaying
// them on construction so KB documents and telemetry survive a daemon
// crash. fsync selects the durability policy: "always" (ack = durable),
// "interval" or "never"; "" means always. Open/recovery failures
// surface from NewWith. Without this option the daemon keeps its
// zero-config in-memory databases.
func WithDataDir(dir, fsync string) Option {
	return func(d *Daemon) { d.dataDir, d.fsync = dir, fsync }
}

// WithIntrospection enables the self-observability layer: every daemon
// operation is counted, timed and traced, the telemetry pipeline and
// resilience transport report their internals, and after each operation
// the registry is exported into the embedded TSDB under pmove.self.*.
func WithIntrospection(opts ...introspect.Option) Option {
	return func(d *Daemon) {
		// The default process label makes daemon spans distinguishable
		// from server rings in assembled multi-process traces; explicit
		// WithProcess options override it.
		all := append([]introspect.Option{introspect.WithProcess("daemon")}, opts...)
		d.Introspection = introspect.New(all...)
	}
}

// WithExpose serves the live observability plane on addr (":9100",
// "127.0.0.1:0", ...): /metrics (OpenMetrics text over the self
// registry incl. pmove.self.runtime.* gauges), /healthz, /readyz
// (breaker/backlog-aware), /debug/vars and /logs. Implies a structured
// log ring (WithLogBuffer's default capacity unless set explicitly) and
// auto-enables introspection when WithIntrospection was not given —
// an exposition over an empty registry would be useless. The bound
// address is available from Daemon.ExposeAddr; Close stops the server.
func WithExpose(addr string) Option {
	return func(d *Daemon) { d.exposeAddr = addr }
}

// WithLogBuffer enables the daemon's structured log ring with the given
// capacity in records (<= 0 selects logbuf.DefaultCapacity). The ring
// collects trace-correlated records from the daemon, the telemetry
// pipeline and the resilient transports; read it via Daemon.Logs, the
// /logs endpoint, or `pmove logs`.
func WithLogBuffer(capacity int) Option {
	return func(d *Daemon) {
		if capacity <= 0 {
			capacity = logbuf.DefaultCapacity
		}
		d.logCap = capacity
	}
}

// NewWith creates a daemon from functional options. The environment
// defaults to EnvFromOS(); databases are embedded.
func NewWith(opts ...Option) (*Daemon, error) {
	reg, err := abst.DefaultRegistry()
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		Env:      EnvFromOS(),
		Docs:     docdb.New(),
		TS:       tsdb.New(),
		Registry: reg,
		Gen:      dashboard.NewGenerator("UUkm1881"),
		targets:  map[string]*Target{},
		kbs:      map[string]*kb.KB{},
	}
	for _, o := range opts {
		o(d)
	}
	if d.dataDir != "" {
		pol, err := storage.ParseFsyncPolicy(d.fsync)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ts, err := tsdb.Open(filepath.Join(d.dataDir, "tsdb"), pol)
		if err != nil {
			return nil, fmt.Errorf("core: open tsdb data dir: %w", err)
		}
		docs, err := docdb.Open(filepath.Join(d.dataDir, "docdb"), pol)
		if err != nil {
			ts.Close()
			return nil, fmt.Errorf("core: open docdb data dir: %w", err)
		}
		d.TS, d.Docs = ts, docs
	}
	if d.logCap > 0 || d.exposeAddr != "" {
		d.Logs = logbuf.New(d.logCap)
	}
	if d.exposeAddr != "" && d.Introspection == nil {
		// Exposition without a registry is an empty page; bring up the
		// default self-observability layer before anything wires to it.
		WithIntrospection()(d)
	}
	// WithTelemetrySink and WithIntrospection compose in either order:
	// wire the sink's transport after all options have run.
	d.wireSinkIntrospection(d.sink)
	if d.Introspection != nil {
		// Embedded store self-observability: query-cache hit/miss/evict
		// counters land in the same registry (pmove.self.query.cache.*).
		// After, not before, the durable branch — Open replaces d.TS.
		d.TS.SetIntrospection(d.Introspection)
	}
	if d.exposeAddr != "" {
		if err := d.startExpose(); err != nil {
			d.TS.Close()
			d.Docs.Close()
			return nil, err
		}
	}
	return d, nil
}

// startExpose stands up the observability-plane HTTP server and the
// runtime-stats sampler. Called from NewWith once all options have run.
func (d *Daemon) startExpose() error {
	in := d.Introspection
	srv := expose.NewServer()
	srv.AddSource(expose.SourceFor(in, map[string]string{"process": "daemon"}))
	srv.SetLogs(d.Logs)
	srv.OnScrape(func() { expose.CollectRuntime(in) })
	srv.TrackConns(in.Metrics().Gauge(expose.GaugeConns))
	// Readiness is breaker- and backlog-aware: a daemon whose remote
	// sink circuit is open, or whose spill journal holds unreplayed
	// points, is alive (healthz) but not ready to take on new sessions
	// without degrading them. Both probes read race-safe state: the
	// mutex-guarded sink/breaker and an atomic registry gauge.
	srv.AddCheck("telemetry-sink", func() error {
		d.mu.Lock()
		sink := d.sink
		d.mu.Unlock()
		if tc, ok := sink.(*tsdb.Client); ok {
			if st := tc.Transport().BreakerState(); st == resilience.BreakerOpen {
				return fmt.Errorf("sink breaker %s", st)
			}
		}
		return nil
	})
	srv.AddCheck("telemetry-backlog", func() error {
		if n := in.Metrics().Gauge("telemetry.journal.pending").Load(); n > 0 {
			return fmt.Errorf("%d spilled points awaiting replay", int(n))
		}
		return nil
	})
	if err := srv.Listen(d.exposeAddr); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	d.exposeSrv = srv
	d.stopSampler = expose.StartRuntimeSampler(in, 10*time.Second)
	d.Logs.With("daemon").Info(context.Background(), "observability plane up",
		"addr", srv.Addr())
	return nil
}

// ExposeAddr returns the observability plane's bound listen address
// ("" when WithExpose was not given) — the base for /metrics, /healthz,
// /readyz, /debug/vars and /logs.
func (d *Daemon) ExposeAddr() string {
	if d.exposeSrv == nil {
		return ""
	}
	return d.exposeSrv.Addr()
}

// Close flushes and releases the daemon's durable state: both embedded
// databases sync their WALs and detach from their data directories.
// In-memory state stays readable; further writes are refused on durable
// databases. A no-op for fully in-memory daemons. Not context-bound:
// Close must run unconditionally on shutdown paths where the request
// context is already dead.
func (d *Daemon) Close() error {
	if d.stopSampler != nil {
		d.stopSampler()
		d.stopSampler = nil
	}
	var exposeErr error
	if d.exposeSrv != nil {
		exposeErr = d.exposeSrv.Close()
		d.exposeSrv = nil
	}
	return errors.Join(exposeErr, d.TS.Close(), d.Docs.Close())
}

// opStart instruments one public daemon operation: it bumps the op's
// counters, opens a span (child of whatever ctx carries), and returns the
// span-carrying context plus the completion hook. With introspection
// disabled both are free.
func (d *Daemon) opStart(ctx context.Context, op string) (context.Context, func(error)) {
	in := d.Introspection
	if in == nil {
		return ctx, func(error) {}
	}
	reg := in.Metrics()
	reg.Counter("op." + op + ".total").Inc()
	reg.Gauge("ops.inflight").Add(1)
	ctx, span := in.StartSpan(ctx, "daemon."+op)
	start := time.Now()
	return ctx, func(err error) {
		span.End(err)
		reg.Gauge("ops.inflight").Add(-1)
		took := time.Since(start)
		reg.Histogram("op." + op + ".seconds").Observe(took.Seconds())
		if err != nil {
			reg.Counter("op." + op + ".errors").Inc()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				reg.Counter("ops.canceled").Inc()
			}
			d.Logs.With("daemon").Error(ctx, "op failed",
				"op", op, "duration", took.String(), "error", err.Error())
		} else {
			d.Logs.With("daemon").Debug(ctx, "op complete",
				"op", op, "duration", took.String())
		}
		d.exportSelf()
	}
}

// exportSelf ships the self-metrics registry into the embedded TSDB under
// the pmove.self.* namespace — the monitor writing its own health through
// the same store it monitors targets with. Export failures only count;
// self-telemetry must never wedge the operation that emitted it.
func (d *Daemon) exportSelf() {
	in := d.Introspection
	if in == nil {
		return
	}
	if _, err := selfexport.Export(in, d.TS, time.Now().UnixNano()); err != nil {
		in.Metrics().Counter("export.errors").Inc()
	}
}

// SelfSnapshot freezes the daemon's self-metrics registry (empty when
// introspection is disabled).
func (d *Daemon) SelfSnapshot() introspect.Snapshot {
	return d.Introspection.Snapshot()
}

// SelfSpans returns the finished self-observability spans, oldest first.
func (d *Daemon) SelfSpans() []introspect.Span {
	return d.Introspection.Tracer().Spans()
}

// MetaDashboard generates the dashboard over the daemon's own
// pmove.self.* series — the digital twin monitoring itself.
func (d *Daemon) MetaDashboard() (*dashboard.Dashboard, error) {
	if d.Introspection == nil {
		return nil, fmt.Errorf("core: introspection disabled (construct with WithIntrospection)")
	}
	return selfexport.MetaDashboard(d.Gen.DatasourceUID, d.Introspection.Prefix(), d.SelfSnapshot())
}
