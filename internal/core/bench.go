package core

import (
	"context"
	"fmt"

	"pmove/internal/carm"
	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/topo"
)

// RunSTREAM executes the STREAM benchmark with a background context.
//
// Deprecated: use RunSTREAMContext.
func (d *Daemon) RunSTREAM(host string, threads int) (*kb.Benchmark, error) {
	return d.RunSTREAMContext(context.Background(), host, threads)
}

// RunSTREAMContext executes the STREAM benchmark through the
// BenchmarkInterface path: "P-MoVE first copies the benchmark source
// codes to the target system … After the benchmark, P-MoVE parses the
// results and creates a BenchmarkInterface with the corresponding
// BenchmarkResult." Cancellation is honored between kernels.
func (d *Daemon) RunSTREAMContext(ctx context.Context, host string, threads int) (*kb.Benchmark, error) {
	ctx, done := d.opStart(ctx, "stream")
	b, err := d.runSTREAM(ctx, host, threads)
	done(err)
	return b, err
}

func (d *Daemon) runSTREAM(ctx context.Context, host string, threads int) (*kb.Benchmark, error) {
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	isa := t.System.CPU.WidestISA()
	arrayBytes := int64(64 << 20) // DRAM-resident, STREAM rules
	specs, err := kernels.STREAM(isa, arrayBytes, 4)
	if err != nil {
		return nil, err
	}
	pinning, err := topo.Pin(t.System, topo.PinBalanced, threads)
	if err != nil {
		return nil, err
	}
	start := int64(t.Machine.Now() * 1e9)
	bench := &kb.Benchmark{
		ID: "bench:" + d.nextTag(host), Type: "BenchmarkInterface",
		Host: host, Name: "stream", Compiler: preferredCompiler(t.System),
		StartNanos: start,
	}
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: stream %s: %w", host, err)
		}
		exec, err := t.Machine.Run(spec, pinning)
		if err != nil {
			return nil, fmt.Errorf("core: stream %s: %w", spec.Name, err)
		}
		bench.Results = append(bench.Results, kb.BenchmarkResult{
			Metric: "bandwidth", Value: exec.GBps, Unit: "GB/s",
			Params: map[string]string{"kernel": spec.Name, "threads": fmt.Sprintf("%d", threads)},
		})
	}
	bench.EndNanos = int64(t.Machine.Now() * 1e9)
	if err := d.attachAndPersist(k, bench); err != nil {
		return nil, err
	}
	return bench, nil
}

// RunHPCG executes the HPCG proxy benchmark with a background context.
//
// Deprecated: use RunHPCGContext.
func (d *Daemon) RunHPCG(host string, threads, n int) (*kb.Benchmark, error) {
	return d.RunHPCGContext(context.Background(), host, threads, n)
}

// RunHPCGContext executes the HPCG proxy benchmark.
func (d *Daemon) RunHPCGContext(ctx context.Context, host string, threads, n int) (*kb.Benchmark, error) {
	ctx, done := d.opStart(ctx, "hpcg")
	b, err := d.runHPCG(ctx, host, threads, n)
	done(err)
	return b, err
}

func (d *Daemon) runHPCG(ctx context.Context, host string, threads, n int) (*kb.Benchmark, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: hpcg %s: %w", host, err)
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	pinning, err := topo.Pin(t.System, topo.PinNUMABalanced, threads)
	if err != nil {
		return nil, err
	}
	spec := kernels.HPCGProxy(n)
	start := int64(t.Machine.Now() * 1e9)
	exec, err := t.Machine.Run(spec, pinning)
	if err != nil {
		return nil, err
	}
	bench := &kb.Benchmark{
		ID: "bench:" + d.nextTag(host), Type: "BenchmarkInterface",
		Host: host, Name: "hpcg", Compiler: preferredCompiler(t.System),
		StartNanos: start, EndNanos: int64(t.Machine.Now() * 1e9),
		Results: []kb.BenchmarkResult{{
			Metric: "gflops", Value: exec.GFLOPS, Unit: "GFLOP/s",
			Params: map[string]string{"n": fmt.Sprintf("%d", n), "threads": fmt.Sprintf("%d", threads)},
		}},
	}
	if err := d.attachAndPersist(k, bench); err != nil {
		return nil, err
	}
	return bench, nil
}

// ConstructCARM builds the CARM model with a background context.
//
// Deprecated: use ConstructCARMContext.
func (d *Daemon) ConstructCARM(host string, isa topo.ISA, threads int) (*carm.Model, error) {
	return d.ConstructCARMContext(context.Background(), host, isa, threads)
}

// ConstructCARMContext builds (or recalls) the CARM model for a host at
// the given ISA and thread count. The KB caches microbenchmark results,
// "allowing for a re-construction of the CARM plot without the need to
// re-run all the microbenchmarks".
func (d *Daemon) ConstructCARMContext(ctx context.Context, host string, isa topo.ISA, threads int) (*carm.Model, error) {
	ctx, done := d.opStart(ctx, "carm_construct")
	m, err := d.constructCARM(ctx, host, isa, threads)
	done(err)
	return m, err
}

func (d *Daemon) constructCARM(ctx context.Context, host string, isa topo.ISA, threads int) (*carm.Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: carm %s: %w", host, err)
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	// Cache lookup: the benchmark list is daemon-shared KB state, so read
	// it under the same lock that guards attachments.
	want := map[string]string{"isa": string(isa), "threads": fmt.Sprintf("%d", threads)}
	d.kbMu.Lock()
	cached := k.Benchmarks("carm")
	d.kbMu.Unlock()
	for _, b := range cached {
		if _, ok := b.Result("peak_flops", want); ok {
			return carm.FromBenchmark(b)
		}
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	start := int64(t.Machine.Now() * 1e9)
	model, err := carm.Construct(t.Machine, isa, threads, topo.PinBalanced)
	if err != nil {
		return nil, err
	}
	bench := model.ToBenchmark("bench:"+d.nextTag(host), start, int64(t.Machine.Now()*1e9))
	if err := d.attachAndPersist(k, bench); err != nil {
		return nil, err
	}
	return model, nil
}

// preferredCompiler picks the compiler recorded in the KB environment
// ("it first compiles the benchmarks on the target system using a
// preferred compiler, e.g., icc or gcc").
func preferredCompiler(sys *topo.System) string {
	if _, ok := sys.Env["icc"]; ok {
		return "icc"
	}
	return "gcc"
}
