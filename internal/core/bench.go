package core

import (
	"fmt"

	"pmove/internal/carm"
	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/topo"
)

// RunSTREAM executes the STREAM benchmark through the BenchmarkInterface
// path: "P-MoVE first copies the benchmark source codes to the target
// system … After the benchmark, P-MoVE parses the results and creates a
// BenchmarkInterface with the corresponding BenchmarkResult."
func (d *Daemon) RunSTREAM(host string, threads int) (*kb.Benchmark, error) {
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	isa := t.System.CPU.WidestISA()
	arrayBytes := int64(64 << 20) // DRAM-resident, STREAM rules
	specs, err := kernels.STREAM(isa, arrayBytes, 4)
	if err != nil {
		return nil, err
	}
	pinning, err := topo.Pin(t.System, topo.PinBalanced, threads)
	if err != nil {
		return nil, err
	}
	start := int64(t.Machine.Now() * 1e9)
	bench := &kb.Benchmark{
		ID: "bench:" + d.nextTag(host), Type: "BenchmarkInterface",
		Host: host, Name: "stream", Compiler: preferredCompiler(t.System),
		StartNanos: start,
	}
	for _, spec := range specs {
		exec, err := t.Machine.Run(spec, pinning)
		if err != nil {
			return nil, fmt.Errorf("core: stream %s: %w", spec.Name, err)
		}
		bench.Results = append(bench.Results, kb.BenchmarkResult{
			Metric: "bandwidth", Value: exec.GBps, Unit: "GB/s",
			Params: map[string]string{"kernel": spec.Name, "threads": fmt.Sprintf("%d", threads)},
		})
	}
	bench.EndNanos = int64(t.Machine.Now() * 1e9)
	if err := k.Attach(bench); err != nil {
		return nil, err
	}
	return bench, d.persistKB(host)
}

// RunHPCG executes the HPCG proxy benchmark.
func (d *Daemon) RunHPCG(host string, threads, n int) (*kb.Benchmark, error) {
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	pinning, err := topo.Pin(t.System, topo.PinNUMABalanced, threads)
	if err != nil {
		return nil, err
	}
	spec := kernels.HPCGProxy(n)
	start := int64(t.Machine.Now() * 1e9)
	exec, err := t.Machine.Run(spec, pinning)
	if err != nil {
		return nil, err
	}
	bench := &kb.Benchmark{
		ID: "bench:" + d.nextTag(host), Type: "BenchmarkInterface",
		Host: host, Name: "hpcg", Compiler: preferredCompiler(t.System),
		StartNanos: start, EndNanos: int64(t.Machine.Now() * 1e9),
		Results: []kb.BenchmarkResult{{
			Metric: "gflops", Value: exec.GFLOPS, Unit: "GFLOP/s",
			Params: map[string]string{"n": fmt.Sprintf("%d", n), "threads": fmt.Sprintf("%d", threads)},
		}},
	}
	if err := k.Attach(bench); err != nil {
		return nil, err
	}
	return bench, d.persistKB(host)
}

// ConstructCARM builds (or recalls) the CARM model for a host at the given
// ISA and thread count. The KB caches microbenchmark results, "allowing
// for a re-construction of the CARM plot without the need to re-run all
// the microbenchmarks".
func (d *Daemon) ConstructCARM(host string, isa topo.ISA, threads int) (*carm.Model, error) {
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	// Cache lookup.
	want := map[string]string{"isa": string(isa), "threads": fmt.Sprintf("%d", threads)}
	for _, b := range k.Benchmarks("carm") {
		if _, ok := b.Result("peak_flops", want); ok {
			return carm.FromBenchmark(b)
		}
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	start := int64(t.Machine.Now() * 1e9)
	model, err := carm.Construct(t.Machine, isa, threads, topo.PinBalanced)
	if err != nil {
		return nil, err
	}
	bench := model.ToBenchmark("bench:"+d.nextTag(host), start, int64(t.Machine.Now()*1e9))
	if err := k.Attach(bench); err != nil {
		return nil, err
	}
	if err := d.persistKB(host); err != nil {
		return nil, err
	}
	return model, nil
}

// preferredCompiler picks the compiler recorded in the KB environment
// ("it first compiles the benchmarks on the target system using a
// preferred compiler, e.g., icc or gcc").
func preferredCompiler(sys *topo.System) string {
	if _, ok := sys.Env["icc"]; ok {
		return "icc"
	}
	return "gcc"
}
