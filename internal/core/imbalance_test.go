package core

import (
	"testing"

	"pmove/internal/anomaly"
	"pmove/internal/kb"
	"pmove/internal/pmu"
	"pmove/internal/spmv"
	"pmove/internal/topo"
)

// arrowMatrix builds an arrowhead matrix: the first n/8 rows are dense
// (the classic row-split pathology — constraint rows, hub genes), the
// rest are a light band. Row-split gives the first thread several times
// the mean work; merge-path splits rows+nonzeros exactly evenly.
func arrowMatrix(t *testing.T, n int) *spmv.CSR {
	t.Helper()
	var ri, ci []int
	var vs []float64
	heavy := n / 8
	for i := 0; i < n; i++ {
		deg := 4
		if i < heavy {
			deg = n / 3
		}
		for d := 0; d < deg; d++ {
			ri = append(ri, i)
			ci = append(ci, (i+d*7+1)%n)
			vs = append(vs, 1)
		}
	}
	m, err := spmv.FromTriplets("arrow", n, n, ri, ci, vs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestImbalanceDetectionEndToEnd closes the monitoring loop the paper's
// introduction motivates ("load imbalances … can result in up to a 100%
// difference in performance"): the row-split SpMV kernel on an arrowhead
// matrix has a genuinely skewed per-thread partition; observing it
// through Scenario B and scanning the per-CPU counters must flag the
// imbalance, while the merge-path kernel (whose merge-path partition
// equalises work by construction) must come out clean.
func TestImbalanceDetectionEndToEnd(t *testing.T) {
	d := testDaemon(t, topo.PresetCSL)
	mat := arrowMatrix(t, 1200)
	threads := 8
	sys := topo.MustPreset(topo.PresetCSL)

	scan := func(algo spmv.Algorithm) []anomaly.Finding {
		t.Helper()
		factors, err := spmv.ThreadWorkFactors(mat, algo, threads)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := spmv.DeriveWorkloadRepeated(sys, mat, algo, threads, 8000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Observe(ObserveRequest{
			Host: "csl", Workload: spec,
			Command: "spmv --algo " + string(algo), Threads: threads,
			Pin:         topo.PinBalanced,
			HWEvents:    []string{pmu.IntelInstructions},
			FreqHz:      50,
			WorkFactors: factors,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Restrict the scan to the pinned CPUs' fields: idle CPUs carry
		// only baseline counts and are not the kernel's siblings.
		var fields []string
		for _, hw := range res.Observation.Affinity {
			fields = append(fields, fieldFor(hw))
		}
		scoped := *res.Observation
		scoped.Metrics = nil
		for _, m := range res.Observation.Metrics {
			if m.Measurement == "perfevent_hwcounters_INSTRUCTION_RETIRED" {
				scoped.Metrics = append(scoped.Metrics, kb.MetricRef{
					Measurement: m.Measurement, Fields: fields,
				})
			}
		}
		findings, err := anomaly.DefaultScanner().ScanObservation(d.TS, &scoped)
		if err != nil {
			t.Fatal(err)
		}
		var out []anomaly.Finding
		for _, f := range findings {
			if f.Detector == "imbalance" {
				out = append(out, f)
			}
		}
		return out
	}

	// Row-split on a heavy-tailed matrix: imbalance expected.
	mklFindings := scan(spmv.AlgoMKL)
	// Merge-path: balanced by construction.
	mergeFindings := scan(spmv.AlgoMerge)

	factors, _ := spmv.ThreadWorkFactors(mat, spmv.AlgoMKL, threads)
	spreadMKL := spread(factors)
	factorsMerge, _ := spmv.ThreadWorkFactors(mat, spmv.AlgoMerge, threads)
	spreadMerge := spread(factorsMerge)
	if spreadMKL < 2*spreadMerge {
		t.Fatalf("partition skew: mkl %.3f vs merge %.3f — matrix not heavy-tailed enough", spreadMKL, spreadMerge)
	}
	if len(mergeFindings) > 0 {
		t.Errorf("merge-path flagged as imbalanced: %+v", mergeFindings)
	}
	if len(mklFindings) == 0 {
		t.Errorf("row-split imbalance not detected (partition spread %.3f)", spreadMKL)
	}
}

func fieldFor(hw int) string { return "_cpu" + itoa(hw) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func spread(fs []float64) float64 {
	min, max := fs[0], fs[0]
	for _, f := range fs {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	return max - min
}

// TestDaemonScan exercises the daemon-level scan wrapper on an imbalanced
// observation.
func TestDaemonScan(t *testing.T) {
	d := testDaemon(t, topo.PresetCSL)
	mat := arrowMatrix(t, 1200)
	threads := 8
	sys := topo.MustPreset(topo.PresetCSL)
	factors, err := spmv.ThreadWorkFactors(mat, spmv.AlgoMKL, threads)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := spmv.DeriveWorkloadRepeated(sys, mat, spmv.AlgoMKL, threads, 8000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Observe(ObserveRequest{
		Host: "csl", Workload: spec, Command: "spmv", Threads: threads,
		Pin: topo.PinBalanced, HWEvents: []string{pmu.IntelInstructions},
		FreqHz: 50, WorkFactors: factors,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := d.Scan("csl", res.Observation.Tag)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range scan.Findings {
		if f.Detector == "imbalance" {
			found = true
		}
	}
	if !found {
		t.Errorf("scan missed the imbalance; report:\n%s", scan.Report)
	}
	if scan.Report == "" {
		t.Error("empty report")
	}
	if _, err := d.Scan("csl", "no-such-tag"); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := d.Scan("ghost", "x"); err == nil {
		t.Error("unknown host accepted")
	}
}
