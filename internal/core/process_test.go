package core

import (
	"testing"

	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/ontology"
	"pmove/internal/topo"
)

// TestObserveInstantiatesProcessInterface checks §III-C: "a
// ProcessInterface is re-instantiated each time it is invoked, reflecting
// the processes' dynamic nature" — every Scenario B observation leaves a
// fresh process twin in the KB with its thread binding.
func TestObserveInstantiatesProcessInterface(t *testing.T) {
	d := testDaemon(t, topo.PresetICL)
	spec, err := kernels.Likwid("sum", topo.ISAScalar, 1<<20, 200)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *ObserveResult {
		res, err := d.Observe(ObserveRequest{
			Host: "icl", Workload: spec, Command: "./sum", Threads: 2,
			HWEvents: []string{"UNHALTED_CORE_CYCLES"}, FreqHz: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run()
	r2 := run()
	k, _ := d.KB("icl")
	var procs []*kb.Process
	for _, e := range k.Entries {
		if p, ok := e.(*kb.Process); ok {
			procs = append(procs, p)
		}
	}
	if len(procs) != 2 {
		t.Fatalf("process twins: %d, want one per observation", len(procs))
	}
	for _, p := range procs {
		if p.Kind() != ontology.EntryProcess {
			t.Errorf("kind = %s", p.Kind())
		}
		if p.Command != "./sum" {
			t.Errorf("command = %q", p.Command)
		}
		if len(p.Threads) != 2 {
			t.Errorf("thread binding: %v", p.Threads)
		}
	}
	if procs[0].EntryID() == procs[1].EntryID() {
		t.Error("process twins should be re-instantiated, not reused")
	}
	// The observations and process twins survive persistence.
	loaded, err := kb.Load(d.Docs, "icl")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range loaded.Entries {
		if e.Kind() == ontology.EntryProcess {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("persisted process twins: %d", count)
	}
	_ = r1
	_ = r2
}
