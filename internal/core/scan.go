package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pmove/internal/anomaly"
	"pmove/internal/kb"
)

// ScanResult is the outcome of an anomaly scan over one observation.
type ScanResult struct {
	Observation *kb.Observation
	Findings    []anomaly.Finding
	// Report is the human-readable rendering with root-cause paths.
	Report string
}

// Scan runs the anomaly detectors with a background context.
//
// Deprecated: use ScanContext.
func (d *Daemon) Scan(host, tag string) (*ScanResult, error) {
	return d.ScanContext(context.Background(), host, tag)
}

// ScanContext runs the default anomaly detectors over an observation's
// linked telemetry — the automated-analysis loop of §III-B.
// Hardware-counter measurements are scanned on the CPUs the observation
// was pinned to (idle CPUs carry only baseline counts); software metrics
// are scanned on their full instance domains.
func (d *Daemon) ScanContext(ctx context.Context, host, tag string) (*ScanResult, error) {
	ctx, done := d.opStart(ctx, "scan")
	res, err := d.scan(ctx, host, tag)
	done(err)
	return res, err
}

func (d *Daemon) scan(ctx context.Context, host, tag string) (*ScanResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: scan %s: %w", host, err)
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	d.kbMu.Lock()
	obs, ok := k.FindObservation(tag)
	d.kbMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: host %s has no observation %q", host, tag)
	}
	scoped := *obs
	if len(obs.Affinity) > 0 {
		var pinned []string
		for _, hw := range obs.Affinity {
			pinned = append(pinned, fmt.Sprintf("_cpu%d", hw))
		}
		sort.Strings(pinned)
		scoped.Metrics = nil
		for _, m := range obs.Metrics {
			ref := m
			if strings.HasPrefix(m.Measurement, "perfevent_hwcounters_") && !strings.Contains(m.Measurement, "RAPL") {
				ref = kb.MetricRef{Measurement: m.Measurement, Fields: pinned}
			}
			scoped.Metrics = append(scoped.Metrics, ref)
		}
	}
	findings, err := anomaly.DefaultScanner().ScanObservation(d.TS, &scoped)
	if err != nil {
		return nil, err
	}
	return &ScanResult{
		Observation: obs,
		Findings:    findings,
		Report:      anomaly.Report(k, findings),
	}, nil
}
