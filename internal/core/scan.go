package core

import (
	"fmt"
	"sort"
	"strings"

	"pmove/internal/anomaly"
	"pmove/internal/kb"
)

// ScanResult is the outcome of an anomaly scan over one observation.
type ScanResult struct {
	Observation *kb.Observation
	Findings    []anomaly.Finding
	// Report is the human-readable rendering with root-cause paths.
	Report string
}

// Scan runs the default anomaly detectors over an observation's linked
// telemetry — the automated-analysis loop of §III-B. Hardware-counter
// measurements are scanned on the CPUs the observation was pinned to
// (idle CPUs carry only baseline counts); software metrics are scanned on
// their full instance domains.
func (d *Daemon) Scan(host, tag string) (*ScanResult, error) {
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	obs, ok := k.FindObservation(tag)
	if !ok {
		return nil, fmt.Errorf("core: host %s has no observation %q", host, tag)
	}
	scoped := *obs
	if len(obs.Affinity) > 0 {
		var pinned []string
		for _, hw := range obs.Affinity {
			pinned = append(pinned, fmt.Sprintf("_cpu%d", hw))
		}
		sort.Strings(pinned)
		scoped.Metrics = nil
		for _, m := range obs.Metrics {
			ref := m
			if strings.HasPrefix(m.Measurement, "perfevent_hwcounters_") && !strings.Contains(m.Measurement, "RAPL") {
				ref = kb.MetricRef{Measurement: m.Measurement, Fields: pinned}
			}
			scoped.Metrics = append(scoped.Metrics, ref)
		}
	}
	findings, err := anomaly.DefaultScanner().ScanObservation(d.TS, &scoped)
	if err != nil {
		return nil, err
	}
	return &ScanResult{
		Observation: obs,
		Findings:    findings,
		Report:      anomaly.Report(k, findings),
	}, nil
}
