package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pmove/internal/carm"
	"pmove/internal/kb"
	"pmove/internal/machine"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

// gpuObservation builds the ObservationInterface for an ncu-wrapped GPU
// kernel run.
func gpuObservation(host, tag, kernelName string, gpuID int, measurements []string, ts int64) *kb.Observation {
	sort.Strings(measurements)
	obs := &kb.Observation{
		ID:         "obs:" + tag,
		Type:       "ObservationInterface",
		Tag:        tag,
		Host:       host,
		Command:    "ncu --wrapper " + kernelName,
		StartNanos: ts,
		EndNanos:   ts,
	}
	for _, m := range measurements {
		obs.Metrics = append(obs.Metrics, kb.MetricRef{
			Measurement: m,
			Fields:      []string{fmt.Sprintf("_gpu%d", gpuID)},
		})
	}
	return obs
}

// LiveCARMPhase is one labelled execution phase fed to the live panel
// (e.g. "mkl/original", "merge/rcm" in Fig 8; "triad" in Fig 9).
type LiveCARMPhase struct {
	Label    string
	Workload machine.WorkloadSpec
}

// LiveCARMResult carries the panel and its per-phase summaries.
type LiveCARMResult struct {
	Model     *carm.Model
	Panel     *carm.LivePanel
	Summaries []carm.Summary
}

// LiveCARMRequest configures a live-CARM run, mirroring ObserveRequest
// so new knobs are fields rather than parameters.
type LiveCARMRequest struct {
	// Host is the attached target.
	Host string
	// Model is the constructed CARM to plot against.
	Model *carm.Model
	// Phases are the labelled kernels to execute in sequence.
	Phases []LiveCARMPhase
	// Threads is the software thread count (balanced pinning).
	Threads int
	// FreqHz is the PMU sampling frequency.
	FreqHz float64
}

// LiveCARM runs the live panel with the legacy positional signature and a
// background context.
//
// Deprecated: use LiveCARMContext with a LiveCARMRequest.
func (d *Daemon) LiveCARM(host string, model *carm.Model, phases []LiveCARMPhase, threads int, freqHz float64) (*LiveCARMResult, error) {
	return d.LiveCARMContext(context.Background(), LiveCARMRequest{
		Host: host, Model: model, Phases: phases, Threads: threads, FreqHz: freqHz,
	})
}

// LiveCARMContext runs a sequence of labelled kernels while sampling the
// FP/memory PMU events of the target's vendor at FreqHz, feeding every
// snapshot into a live-CARM panel over the given model. This is the
// §IV-B2 feature: "PMU-based metrics are sampled on a time-stamp basis and
// used to plot the application points in real time on the generated CARM."
// Cancelling ctx stops between ticks and phases.
func (d *Daemon) LiveCARMContext(ctx context.Context, req LiveCARMRequest) (*LiveCARMResult, error) {
	ctx, done := d.opStart(ctx, "livecarm")
	res, err := d.liveCARM(ctx, req)
	done(err)
	return res, err
}

func (d *Daemon) liveCARM(ctx context.Context, req LiveCARMRequest) (*LiveCARMResult, error) {
	host, model := req.Host, req.Model
	phases, threads, freqHz := req.Phases, req.Threads, req.FreqHz
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: live-CARM %s: %w", host, err)
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("core: live-CARM needs at least one phase")
	}
	if freqHz <= 0 {
		return nil, fmt.Errorf("core: live-CARM sampling frequency must be positive")
	}
	vendor := t.System.CPU.Vendor
	events := carm.EventsNeeded(vendor)
	if err := t.Machine.ProgramAll(events); err != nil {
		return nil, err
	}
	pinning, err := topo.Pin(t.System, topo.PinBalanced, threads)
	if err != nil {
		return nil, err
	}
	panel := carm.NewLivePanel(model, vendor)

	read := func() (carm.Reading, error) {
		r := carm.Reading{TimeNanos: int64(t.Machine.Now() * 1e9), Events: map[string]uint64{}}
		for _, hw := range pinning {
			tp, err := t.Machine.ThreadPMU(hw)
			if err != nil {
				return carm.Reading{}, err
			}
			for _, ev := range events {
				v, err := tp.Read(ev)
				if err != nil {
					return carm.Reading{}, err
				}
				r.Events[ev] += v
			}
		}
		t.Machine.ChargeSamplingCost(len(pinning) * len(events))
		return r, nil
	}

	interval := 1 / freqHz
	for _, ph := range phases {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: live-CARM %s: %w", host, err)
		}
		exec, err := t.Machine.Launch(ph.Workload, pinning)
		if err != nil {
			return nil, fmt.Errorf("core: live-CARM phase %s: %w", ph.Label, err)
		}
		// Prime the panel with a reading at phase start so deltas stay
		// inside the phase.
		r0, err := read()
		if err != nil {
			return nil, err
		}
		panel.Feed(r0, ph.Label)
		ticks := int(math.Ceil(exec.Duration/interval)) + 1
		for i := 1; i <= ticks; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: live-CARM %s: %w", host, err)
			}
			target := exec.Start + float64(i)*interval
			if target > exec.End() {
				target = exec.End()
			}
			if err := t.Machine.AdvanceTo(target); err != nil {
				return nil, err
			}
			r, err := read()
			if err != nil {
				return nil, err
			}
			panel.Feed(r, ph.Label)
			if target >= exec.End() {
				break
			}
		}
		if err := t.Machine.Wait(exec); err != nil {
			return nil, err
		}
	}
	return &LiveCARMResult{Model: model, Panel: panel, Summaries: panel.Summarize()}, nil
}

// ObserveGPUKernel integrates an accelerator execution with a background
// context.
//
// Deprecated: use ObserveGPUKernelContext.
func (d *Daemon) ObserveGPUKernel(host string, gpuID int, kernelName string, metrics map[string]float64) (*telemetry.Sample, error) {
	return d.ObserveGPUKernelContext(context.Background(), host, gpuID, kernelName, metrics)
}

// ObserveGPUKernelContext integrates an accelerator execution through the
// §III-D path: lacking live HW telemetry, "P-MoVE is tasked with creating
// a wrapper script for initiating the kernel launch and configuring ncu to
// record runtime HW performance events. Following these executions, it
// analyzes the output from ncu, integrating these comprehensive
// performance metrics into the KB through the ObservationInterface."
func (d *Daemon) ObserveGPUKernelContext(ctx context.Context, host string, gpuID int, kernelName string, metrics map[string]float64) (*telemetry.Sample, error) {
	ctx, done := d.opStart(ctx, "observe_gpu")
	s, err := d.observeGPU(ctx, host, gpuID, kernelName, metrics)
	done(err)
	return s, err
}

func (d *Daemon) observeGPU(ctx context.Context, host string, gpuID int, kernelName string, metrics map[string]float64) (*telemetry.Sample, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: observe-gpu %s: %w", host, err)
	}
	t, err := d.Target(host)
	if err != nil {
		return nil, err
	}
	k, err := d.KB(host)
	if err != nil {
		return nil, err
	}
	var found bool
	for _, g := range t.System.GPUs {
		if g.ID == gpuID {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: host %s has no GPU %d", host, gpuID)
	}
	tag := d.nextTag(host)
	ts := int64(t.Machine.Now() * 1e9)
	sample := telemetry.Sample{Metric: "ncu", Values: map[string]float64{}}
	var refs []string
	for name, v := range metrics {
		meas := "ncu_" + name
		field := fmt.Sprintf("_gpu%d", gpuID)
		sample.Values[field] = v
		if err := d.TS.WritePoint(telemetry.ToPoint(telemetry.Sample{
			Metric: meas, Values: map[string]float64{field: v},
		}, tag, ts)); err != nil {
			return nil, err
		}
		refs = append(refs, meas)
	}
	obs := gpuObservation(host, tag, kernelName, gpuID, refs, ts)
	if err := d.attachAndPersist(k, obs); err != nil {
		return nil, err
	}
	return &sample, nil
}
