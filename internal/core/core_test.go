package core

import (
	"strings"
	"testing"

	"pmove/internal/abst"
	"pmove/internal/dashboard"
	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/ontology"
	"pmove/internal/telemetry"
	"pmove/internal/topo"
)

func testDaemon(t *testing.T, presets ...string) *Daemon {
	t.Helper()
	d, err := New(Env{InfluxAddr: "embedded", MongoAddr: "embedded", GrafanaToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets {
		sys := topo.MustPreset(p)
		if _, err := d.AttachTarget(sys, machine.Config{Seed: 9}, telemetry.DefaultPipeline()); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Probe(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestEnvFromOS(t *testing.T) {
	t.Setenv("PMOVE_INFLUX_ADDR", "10.0.0.1:8086")
	t.Setenv("PMOVE_MONGO_ADDR", "")
	env := EnvFromOS()
	if env.InfluxAddr != "10.0.0.1:8086" {
		t.Errorf("influx = %q", env.InfluxAddr)
	}
	if env.MongoAddr != "embedded" {
		t.Errorf("mongo default = %q", env.MongoAddr)
	}
}

func TestAttachAndProbe(t *testing.T) {
	d := testDaemon(t, topo.PresetICL)
	if got := d.Hosts(); len(got) != 1 || got[0] != "icl" {
		t.Errorf("hosts = %v", got)
	}
	// Duplicate attach rejected.
	if _, err := d.AttachTarget(topo.MustPreset(topo.PresetICL), machine.Config{}, telemetry.DefaultPipeline()); err == nil {
		t.Error("duplicate attach accepted")
	}
	// KB generated and persisted.
	k, err := d.KB("icl")
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() == 0 {
		t.Error("empty KB")
	}
	loaded, err := kb.Load(d.Docs, "icl")
	if err != nil {
		t.Fatalf("KB not persisted to the document DB: %v", err)
	}
	if loaded.Len() != k.Len() {
		t.Error("persisted KB differs")
	}
	// Config propagated into the KB (step 0).
	if k.Config.GrafanaToken != "tok" {
		t.Error("env config not embedded in KB")
	}
	if _, err := d.KB("ghost"); err == nil {
		t.Error("unprobed host returned a KB")
	}
	if _, err := d.Target("ghost"); err == nil {
		t.Error("unknown target returned")
	}
}

func TestMonitorScenarioA(t *testing.T) {
	d := testDaemon(t, topo.PresetICL)
	res, err := d.Monitor("icl", []string{machine.MetricCPUIdle, machine.MetricNUMAAllocHit}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Ticks != 10 {
		t.Errorf("ticks = %d", res.Stats.Ticks)
	}
	if res.Dashboard == nil || len(res.Dashboard.Panels) != 2 {
		t.Errorf("dashboard: %+v", res.Dashboard)
	}
	// The observation is attached to the KB with its metric refs.
	k, _ := d.KB("icl")
	obs, ok := k.FindObservation(res.Observation.Tag)
	if !ok {
		t.Fatal("observation not attached")
	}
	if len(obs.Metrics) != 2 {
		t.Errorf("metric refs: %+v", obs.Metrics)
	}
	// Data landed in the TSDB under the observation tag.
	q := `SELECT "_cpu0" FROM "kernel_percpu_cpu_idle" WHERE tag="` + obs.Tag + `"`
	r, err := d.TS.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Error("no telemetry rows stored")
	}
	// Default metric set derived from the KB when none are given.
	res2, err := d.Monitor("icl", nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.NMetrics == 0 {
		t.Error("default SW metric set empty")
	}
}

func TestObserveScenarioB(t *testing.T) {
	d := testDaemon(t, topo.PresetCSL)
	spec, err := kernels.Likwid("triad", topo.ISAAVX512, 1<<20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Observe(ObserveRequest{
		Host:     "csl",
		Workload: spec,
		Command:  "likwid-bench -t triad",
		Threads:  8,
		Pin:      topo.PinBalanced,
		GenericEvents: []string{
			abst.GenericScalarDouble, abst.GenericAVX512Double,
			abst.GenericTotalMemOps, abst.GenericEnergy,
		},
		SWMetrics: []string{machine.MetricNUMAAllocHit},
		FreqHz:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := res.Observation
	if obs.PinStrategy != string(topo.PinBalanced) || len(obs.Affinity) != 8 {
		t.Errorf("affinity metadata: %+v", obs)
	}
	if obs.EndNanos <= obs.StartNanos {
		t.Error("observation window empty")
	}
	if res.Execution.Duration <= 0 {
		t.Error("no execution")
	}
	// Auto-generated queries follow Listing 3.
	if len(res.Queries) == 0 {
		t.Fatal("no queries generated")
	}
	for _, q := range res.Queries {
		if !strings.Contains(q, `WHERE tag="`+obs.Tag+`"`) {
			t.Errorf("query missing tag filter: %s", q)
		}
		if _, err := d.TS.QueryString(q); err != nil {
			t.Errorf("generated query does not parse: %s: %v", q, err)
		}
	}
	// The RAPL metric was resolved through the abstraction layer and
	// sampled per socket.
	found := false
	for _, m := range obs.Metrics {
		if m.Measurement == "perfevent_hwcounters_RAPL_ENERGY_PKG" {
			found = true
			if len(m.Fields) != 1 || m.Fields[0] != "_socket0" {
				t.Errorf("RAPL fields: %v", m.Fields)
			}
		}
	}
	if !found {
		t.Error("RAPL metric missing from observation")
	}
	// KB entry persisted.
	k, _ := d.KB("csl")
	if _, ok := k.FindObservation(obs.Tag); !ok {
		t.Error("observation not in KB")
	}
}

func TestObserveValidation(t *testing.T) {
	d := testDaemon(t, topo.PresetICL)
	spec, _ := kernels.Likwid("sum", topo.ISAScalar, 1<<20, 1)
	base := ObserveRequest{Host: "icl", Workload: spec, Threads: 2, FreqHz: 8}
	bad := base
	bad.FreqHz = 0
	if _, err := d.Observe(bad); err == nil {
		t.Error("zero frequency accepted")
	}
	bad = base
	bad.Threads = 0
	if _, err := d.Observe(bad); err == nil {
		t.Error("zero threads accepted")
	}
	bad = base
	bad.HWEvents = []string{"NO_SUCH_EVENT"}
	if _, err := d.Observe(bad); err == nil {
		t.Error("unknown hardware event accepted")
	}
	bad = base
	bad.GenericEvents = []string{"NO_SUCH_GENERIC"}
	if _, err := d.Observe(bad); err == nil {
		t.Error("unknown generic event accepted")
	}
	bad = base
	bad.Host = "ghost"
	if _, err := d.Observe(bad); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestRunScript(t *testing.T) {
	spec, _ := kernels.Likwid("sum", topo.ISAScalar, 1<<20, 1)
	req := ObserveRequest{Command: "./spmv", Args: []string{"-m", "x.mtx"}, Workload: spec, FreqHz: 8}
	s := RunScript(req, []int{0, 2, 4})
	if !strings.Contains(s, "taskset -c 0,2,4 ./spmv -m x.mtx") {
		t.Errorf("script:\n%s", s)
	}
	if !strings.Contains(s, "start-sampling") || !strings.Contains(s, "stop-sampling") {
		t.Error("sampling control missing")
	}
}

func TestBenchmarkInterfaces(t *testing.T) {
	d := testDaemon(t, topo.PresetCSL)
	stream, err := d.RunSTREAM("csl", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Results) != 4 {
		t.Errorf("STREAM results: %d", len(stream.Results))
	}
	if stream.Compiler != "icc" {
		t.Errorf("CSL has icc in its environment; compiler = %q", stream.Compiler)
	}
	if r, ok := stream.Result("bandwidth", map[string]string{"kernel": "stream_triad"}); !ok || r.Value <= 0 {
		t.Error("triad bandwidth missing")
	}
	hpcg, err := d.RunHPCG("csl", 8, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(hpcg.Results) != 1 || hpcg.Results[0].Metric != "gflops" {
		t.Errorf("HPCG results: %+v", hpcg.Results)
	}
	// Both are in the KB.
	k, _ := d.KB("csl")
	if len(k.Benchmarks("stream")) != 1 || len(k.Benchmarks("hpcg")) != 1 {
		t.Error("benchmark entries not attached")
	}
}

func TestConstructCARMUsesKBCache(t *testing.T) {
	d := testDaemon(t, topo.PresetCSL)
	m1, err := d.ConstructCARM("csl", topo.ISAAVX512, 8)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := d.KB("csl")
	n1 := len(k.Benchmarks("carm"))
	if n1 != 1 {
		t.Fatalf("carm benchmark entries: %d", n1)
	}
	// Second construction is served from the KB cache: no new entry, and
	// identical roofs.
	m2, err := d.ConstructCARM("csl", topo.ISAAVX512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Benchmarks("carm")) != 1 {
		t.Error("cache miss: a second benchmark entry was attached")
	}
	if m1.PeakGFLOPS != m2.PeakGFLOPS {
		t.Error("cached model differs")
	}
	// A different thread count re-benchmarks.
	if _, err := d.ConstructCARM("csl", topo.ISAAVX512, 4); err != nil {
		t.Fatal(err)
	}
	if len(k.Benchmarks("carm")) != 2 {
		t.Error("distinct config should create a new entry")
	}
}

func TestLiveCARMPhases(t *testing.T) {
	d := testDaemon(t, topo.PresetCSL)
	model, err := d.ConstructCARM("csl", topo.ISAAVX512, 4)
	if err != nil {
		t.Fatal(err)
	}
	ddot, err := kernels.Likwid("ddot", topo.ISAAVX512, 16<<10, 400000)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := kernels.Likwid("peakflops", topo.ISAAVX512, 4<<10, 800000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.LiveCARM("csl", model, []LiveCARMPhase{
		{Label: "ddot", Workload: ddot},
		{Label: "peakflops", Workload: peak},
	}, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 2 {
		t.Fatalf("summaries: %+v", res.Summaries)
	}
	var ddotAI, peakAI float64
	for _, s := range res.Summaries {
		switch s.Label {
		case "ddot":
			ddotAI = s.MedianAI
		case "peakflops":
			peakAI = s.MedianAI
		}
	}
	// Fig 9: ddot AI 0.125, peakflops AI 2 — within a tolerance band.
	if ddotAI < 0.08 || ddotAI > 0.2 {
		t.Errorf("ddot live AI = %f, want ~0.125", ddotAI)
	}
	if peakAI < 1.3 || peakAI > 3 {
		t.Errorf("peakflops live AI = %f, want ~2", peakAI)
	}
	// Validation.
	if _, err := d.LiveCARM("csl", model, nil, 4, 50); err == nil {
		t.Error("empty phase list accepted")
	}
	if _, err := d.LiveCARM("csl", model, []LiveCARMPhase{{Label: "x", Workload: ddot}}, 4, 0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestObserveGPUKernel(t *testing.T) {
	d, err := New(EnvFromOS())
	if err != nil {
		t.Fatal(err)
	}
	sys := topo.WithGPU(topo.MustPreset(topo.PresetICL))
	if _, err := d.AttachTarget(sys, machine.Config{Seed: 1}, telemetry.DefaultPipeline()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Probe("icl"); err != nil {
		t.Fatal(err)
	}
	sample, err := d.ObserveGPUKernel("icl", 0, "vecadd", map[string]float64{
		"gpu__compute_memory_access_throughput": 812.5,
		"sm__throughput":                        61.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sample.Values["_gpu0"] == 0 {
		t.Error("no GPU metrics recorded")
	}
	// The ncu output landed in the TSDB and the KB got an observation.
	res, err := d.TS.QueryString(`SELECT "_gpu0" FROM "ncu_gpu__compute_memory_access_throughput"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values["_gpu0"] != 812.5 {
		t.Errorf("ncu rows: %+v", res.Rows)
	}
	k, _ := d.KB("icl")
	found := false
	for _, o := range k.Observations() {
		if strings.Contains(o.Command, "ncu") && strings.Contains(o.Command, "vecadd") {
			found = true
		}
	}
	if !found {
		t.Error("GPU observation not attached")
	}
	// No such GPU.
	if _, err := d.ObserveGPUKernel("icl", 7, "x", nil); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestMultiTargetDaemon(t *testing.T) {
	d := testDaemon(t, topo.PresetSKX, topo.PresetICL)
	if len(d.Hosts()) != 2 {
		t.Fatalf("hosts: %v", d.Hosts())
	}
	// Cross-machine level view from two probed KBs (Fig 2d).
	a, _ := d.KB("skx")
	b, _ := d.KB("icl")
	v, err := kb.CrossLevelView(ontology.KindSocket, a, b)
	if err != nil {
		t.Fatal(err)
	}
	dash, err := d.Gen.FromView(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(dash.Panels) != 3 {
		t.Errorf("cross-machine panels: %d", len(dash.Panels))
	}
}

// TestDashboardTargetsMatchStoredMeasurements pins the naming contract
// across the stack: the DBNames the KB encodes (and the dashboards
// reference) must be exactly the measurements the telemetry pipeline
// writes. A mismatch here would render every auto-generated dashboard
// empty.
func TestDashboardTargetsMatchStoredMeasurements(t *testing.T) {
	d := testDaemon(t, topo.PresetICL)
	spec, err := kernels.Likwid("ddot", topo.ISAAVX512, 1<<20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Observe(ObserveRequest{
		Host: "icl", Workload: spec, Threads: 2,
		HWEvents: []string{"FP_ARITH:512B_PACKED_DOUBLE", "MEM_INST_RETIRED:ALL_LOADS"},
		FreqHz:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	stored := map[string]bool{}
	for _, m := range d.TS.Measurements() {
		stored[m] = true
	}
	// 1. The observation's metric refs point at stored measurements.
	for _, m := range res.Observation.Metrics {
		if !stored[m.Measurement] {
			t.Errorf("observation references %q but the TSDB stores %v", m.Measurement, d.TS.Measurements())
		}
	}
	// 2. The KB's HWTelemetry DBNames for the sampled events match too.
	k, _ := d.KB("icl")
	th := k.NodesOfKind(ontology.KindThread)[0]
	for _, tel := range th.Interface.Telemetries(ontology.ClassHWTelemetry) {
		if tel.SamplerName == "FP_ARITH:512B_PACKED_DOUBLE" || tel.SamplerName == "MEM_INST_RETIRED:ALL_LOADS" {
			if !stored[tel.DBName] {
				t.Errorf("KB DBName %q does not match any stored measurement", tel.DBName)
			}
		}
	}
	// 3. An auto-generated dashboard's targets fetch real data.
	dash, err := d.Gen.ForObservation(res.Observation)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, p := range dash.Panels {
		for _, tgt := range p.Targets {
			_, vs, err := dashboardFetch(d, tgt)
			if err != nil {
				t.Fatal(err)
			}
			got += len(vs)
		}
	}
	if got == 0 {
		t.Fatal("dashboard targets fetched no data")
	}
}

func dashboardFetch(d *Daemon, tgt dashboard.Target) ([]int64, []float64, error) {
	return dashboard.FetchSeries(d.TS, tgt)
}
