package spmv

import (
	"fmt"
	"math"
	"sort"
)

// MatrixInfo describes one of the Table IV matrices. Generators produce
// scaled-down synthetic matrices with the same structural character
// (relative size, average degree, pattern class), which is what drives the
// locality and vectorisation effects of Figs 7 and 8.
type MatrixInfo struct {
	Name  string
	Group string
	Kind  string // "mesh", "fem", "gene"
	Rows  int    // paper dimensions
	NNZ   int64  // paper nonzeros
}

// PaperMatrices returns the Table IV matrices.
func PaperMatrices() []MatrixInfo {
	return []MatrixInfo{
		{Name: "adaptive", Group: "DIMACS10", Kind: "mesh", Rows: 6815744, NNZ: 27200000},
		{Name: "audikw_1", Group: "GHS_psdef", Kind: "fem", Rows: 943695, NNZ: 77700000},
		{Name: "dielFilterV3real", Group: "Dziekonski", Kind: "fem", Rows: 1102824, NNZ: 89300000},
		{Name: "hugetrace-00020", Group: "DIMACS10", Kind: "mesh", Rows: 16002413, NNZ: 48000000},
		{Name: "human_gene1", Group: "Belcastro", Kind: "gene", Rows: 22283, NNZ: 24700000},
	}
}

// xorshift is a tiny deterministic PRNG for generators.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

func (x *xorshift) float() float64 { return float64(x.next()>>11) / float64(1<<53) }

// Generate builds a synthetic matrix with the structural character of the
// named Table IV matrix, scaled so it has roughly targetRows rows (degree
// is preserved, so nnz scales with rows). Seed fixes the instance.
// Construction is O(nnz log deg): edges are bucketed into rows by a
// counting sort, then each row is sorted and duplicate-summed.
func Generate(name string, targetRows int, seed uint64) (*CSR, error) {
	var info *MatrixInfo
	for _, mi := range PaperMatrices() {
		if mi.Name == name {
			m := mi
			info = &m
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("spmv: unknown paper matrix %q", name)
	}
	if targetRows <= 0 {
		return nil, fmt.Errorf("spmv: target rows must be positive")
	}
	avgDeg := float64(info.NNZ) / float64(info.Rows)
	rng := xorshift(seed | 1)
	switch info.Kind {
	case "mesh":
		return genMesh(info.Name, targetRows, avgDeg, &rng)
	case "fem":
		return genFEM(info.Name, targetRows, avgDeg, &rng)
	case "gene":
		return genGene(info.Name, targetRows, avgDeg, &rng)
	}
	return nil, fmt.Errorf("spmv: unknown matrix kind %q", info.Kind)
}

// edgeBuf accumulates coordinate entries for fast CSR assembly.
type edgeBuf struct {
	ri, ci []int32
	vs     []float64
}

func (e *edgeBuf) add(i, j int, v float64) {
	e.ri = append(e.ri, int32(i))
	e.ci = append(e.ci, int32(j))
	e.vs = append(e.vs, v)
}

func (e *edgeBuf) addSym(i, j int, v float64) {
	e.add(i, j, v)
	e.add(j, i, v)
}

// toCSR assembles the buffer into canonical CSR: counting-sort by row,
// in-row sort, duplicate coalescing.
func (e *edgeBuf) toCSR(name string, n int) (*CSR, error) {
	counts := make([]int, n+1)
	for _, r := range e.ri {
		if int(r) < 0 || int(r) >= n {
			return nil, fmt.Errorf("spmv: generator produced row %d out of %d", r, n)
		}
		counts[r+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(e.ci))
	vals := make([]float64, len(e.vs))
	pos := make([]int, n)
	copy(pos, counts[:n])
	for k, r := range e.ri {
		p := pos[r]
		colIdx[p] = int(e.ci[k])
		vals[p] = e.vs[k]
		pos[r]++
	}
	// Sort each row and coalesce duplicates in place.
	outPtr := make([]int, n+1)
	w := 0
	type pair struct {
		c int
		v float64
	}
	var scratch []pair
	for i := 0; i < n; i++ {
		lo, hi := counts[i], counts[i+1]
		scratch = scratch[:0]
		for k := lo; k < hi; k++ {
			scratch = append(scratch, pair{colIdx[k], vals[k]})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].c < scratch[b].c })
		for k := 0; k < len(scratch); k++ {
			if w > outPtr[i] && colIdx[w-1] == scratch[k].c {
				vals[w-1] += scratch[k].v
				continue
			}
			colIdx[w] = scratch[k].c
			vals[w] = scratch[k].v
			w++
		}
		outPtr[i+1] = w
	}
	m := &CSR{Name: name, Rows: n, Cols: n, RowPtr: outPtr, ColIdx: colIdx[:w], Vals: vals[:w]}
	return m, m.Validate()
}

// genMesh builds a 2-D grid graph (DIMACS10 meshes are near-planar with
// degree ≈4-7) whose rows are scattered by a pseudo-random relabeling so
// the natural ordering has poor locality — RCM then recovers it, as in the
// paper.
func genMesh(name string, targetRows int, avgDeg float64, rng *xorshift) (*CSR, error) {
	side := int(math.Sqrt(float64(targetRows)))
	if side < 2 {
		side = 2
	}
	n := side * side
	perm := scatterPerm(n, rng)
	var e edgeBuf
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := y*side + x
			if x+1 < side {
				e.addSym(perm[v], perm[v+1], 1)
			}
			if y+1 < side {
				e.addSym(perm[v], perm[v+side], 1)
			}
			if avgDeg > 4 && x+1 < side && y+1 < side && rng.float() < (avgDeg-4)/2 {
				e.addSym(perm[v], perm[v+side+1], 1)
			}
		}
	}
	for v := 0; v < n; v++ {
		e.add(perm[v], perm[v], 4)
	}
	return e.toCSR(name, n)
}

// genFEM builds a block-banded matrix (finite-element matrices like
// audikw_1 have dense node blocks along a band) with moderate natural
// bandwidth and high average degree.
func genFEM(name string, targetRows int, avgDeg float64, rng *xorshift) (*CSR, error) {
	n := targetRows
	block := 3 // 3 dof per node
	half := int(avgDeg / 2)
	if half < 2 {
		half = 2
	}
	perm := scatterPermPartial(n, rng, 0.15) // FEM inputs are mostly banded already
	var e edgeBuf
	for i := 0; i < n; i++ {
		base := (i / block) * block
		for d := 0; d < half; d++ {
			j := base + d*block/2 + rng.intn(block)
			if j >= n {
				j = n - 1
			}
			e.addSym(perm[i], perm[j], rng.float())
		}
		e.add(perm[i], perm[i], float64(half)*2)
	}
	return e.toCSR(name, n)
}

// genGene builds a small, very dense matrix (human_gene1: 22k rows, ~1100
// nnz/row) with heavy-tailed row degrees, as in gene co-expression
// networks.
func genGene(name string, targetRows int, avgDeg float64, rng *xorshift) (*CSR, error) {
	n := targetRows
	if avgDeg > float64(n)/2 {
		avgDeg = float64(n) / 2
	}
	var e edgeBuf
	for i := 0; i < n; i++ {
		deg := int(avgDeg * (0.3 + 1.4*rng.float()))
		if rng.float() < 0.02 {
			deg *= 4
		}
		if deg >= n {
			deg = n - 1
		}
		for d := 0; d < deg; d++ {
			e.add(i, rng.intn(n), rng.float()*2-1)
		}
		e.add(i, i, 1)
	}
	return e.toCSR(name, n)
}

// scatterPerm returns a pseudo-random bijection on [0,n) that destroys
// locality.
func scatterPerm(n int, rng *xorshift) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// scatterPermPartial shuffles only a fraction of positions, modelling a
// mostly-ordered input.
func scatterPermPartial(n int, rng *xorshift, frac float64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	swaps := int(float64(n) * frac)
	for s := 0; s < swaps; s++ {
		i, j := rng.intn(n), rng.intn(n)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// DegreeStats summarises a matrix's row-degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	P50, P99 int
}

// Degrees computes the degree statistics of a matrix.
func Degrees(m *CSR) DegreeStats {
	if m.Rows == 0 {
		return DegreeStats{}
	}
	ds := make([]int, m.Rows)
	sum := 0
	for i := 0; i < m.Rows; i++ {
		ds[i] = m.RowNNZ(i)
		sum += ds[i]
	}
	sort.Ints(ds)
	return DegreeStats{
		Min: ds[0], Max: ds[len(ds)-1],
		Mean: float64(sum) / float64(m.Rows),
		P50:  ds[len(ds)/2],
		P99:  ds[len(ds)*99/100],
	}
}
