package spmv

import (
	"math"
	"testing"
	"testing/quick"

	"pmove/internal/topo"
)

// randomCSR builds a random square matrix for property tests.
func randomCSR(n int, density float64, seed uint64) *CSR {
	rng := xorshift(seed | 1)
	var ri, ci []int
	var vs []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.float() < density {
				ri = append(ri, i)
				ci = append(ci, j)
				vs = append(vs, rng.float()*4-2)
			}
		}
	}
	// Guarantee at least the diagonal so no row is empty... rows may still
	// be empty; that is a case the kernels must handle, so only add some.
	for i := 0; i < n; i += 3 {
		ri = append(ri, i)
		ci = append(ci, i)
		vs = append(vs, 1)
	}
	m, err := FromTriplets("rand", n, n, ri, ci, vs)
	if err != nil {
		panic(err)
	}
	return m
}

func vecsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestFromTripletsValidate(t *testing.T) {
	m, err := FromTriplets("t", 3, 3, []int{0, 1, 2, 0}, []int{0, 1, 2, 0}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("duplicates not coalesced: nnz=%d want 3", m.NNZ())
	}
	if m.Vals[0] != 5 { // 1+4 summed
		t.Fatalf("duplicate sum: got %v want 5", m.Vals[0])
	}
}

func TestFromTripletsRejectsOutOfRange(t *testing.T) {
	if _, err := FromTriplets("t", 2, 2, []int{5}, []int{0}, []float64{1}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
}

func TestMultiplyRefDimensions(t *testing.T) {
	m := randomCSR(8, 0.3, 7)
	if err := m.MultiplyRef(make([]float64, 3), make([]float64, 8)); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := m.MultiplyRef(make([]float64, 8), make([]float64, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestParallelKernelsMatchReference(t *testing.T) {
	for _, n := range []int{1, 2, 17, 64, 301} {
		for _, density := range []float64{0.02, 0.2, 0.7} {
			m := randomCSR(n, density, uint64(n)*31+uint64(density*100))
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(i%11) - 5
			}
			want := make([]float64, n)
			if err := m.MultiplyRef(x, want); err != nil {
				t.Fatal(err)
			}
			for _, algo := range Algorithms() {
				for _, threads := range []int{1, 2, 3, 8, 33} {
					got := make([]float64, n)
					if err := MultiplyParallel(m, algo, x, got, threads); err != nil {
						t.Fatalf("%s/%d: %v", algo, threads, err)
					}
					if !vecsClose(got, want, 1e-9) {
						t.Fatalf("%s with %d threads on n=%d density=%.2f: mismatch", algo, threads, n, density)
					}
				}
			}
		}
	}
}

func TestMergeHandlesEmptyRows(t *testing.T) {
	// Matrix with long empty stretches stresses the merge-path row
	// consumption.
	ri := []int{0, 0, 99}
	ci := []int{0, 50, 99}
	vs := []float64{1, 2, 3}
	m, err := FromTriplets("sparse", 100, 100, ri, ci, vs)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 100)
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, 100)
	if err := m.MultiplyRef(x, want); err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4, 16} {
		got := make([]float64, 100)
		if err := MultiplyParallel(m, AlgoMerge, x, got, threads); err != nil {
			t.Fatal(err)
		}
		if !vecsClose(got, want, 1e-12) {
			t.Fatalf("merge/%d threads: mismatch", threads)
		}
	}
}

func TestMergePathSearchInvariants(t *testing.T) {
	m := randomCSR(50, 0.1, 123)
	nnz := m.NNZ()
	prev := MergeCoordinate{}
	for d := 0; d <= m.Rows+nnz; d++ {
		c := MergePathSearch(d, m.RowPtr, m.Rows, nnz)
		if c.Row+c.NNZ != d {
			t.Fatalf("diagonal %d: %d+%d != d", d, c.Row, c.NNZ)
		}
		if c.Row < prev.Row || c.NNZ < prev.NNZ {
			t.Fatalf("merge path not monotone at diagonal %d", d)
		}
		if c.Row < 0 || c.Row > m.Rows || c.NNZ < 0 || c.NNZ > nnz {
			t.Fatalf("diagonal %d out of range: %+v", d, c)
		}
		prev = c
	}
	last := MergePathSearch(m.Rows+nnz, m.RowPtr, m.Rows, nnz)
	if last.Row != m.Rows || last.NNZ != nnz {
		t.Fatalf("final diagonal should consume everything, got %+v", last)
	}
}

func TestPermutePreservesSpectrumProxy(t *testing.T) {
	// A symmetric permutation preserves nnz, row-degree multiset and the
	// multiset of values.
	m := randomCSR(40, 0.15, 99)
	perm := RCM(m)
	p, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != m.NNZ() {
		t.Fatalf("permute changed nnz: %d -> %d", m.NNZ(), p.NNZ())
	}
	var sumM, sumP float64
	for _, v := range m.Vals {
		sumM += v
	}
	for _, v := range p.Vals {
		sumP += v
	}
	if math.Abs(sumM-sumP) > 1e-9 {
		t.Fatalf("permute changed value sum: %v -> %v", sumM, sumP)
	}
	// SpMV result must be the permuted SpMV of the permuted input.
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i)*0.5 - 3
	}
	yOrig := make([]float64, m.Rows)
	if err := m.MultiplyRef(x, yOrig); err != nil {
		t.Fatal(err)
	}
	xp := make([]float64, m.Cols)
	for old, nw := range perm {
		xp[nw] = x[old]
	}
	yp := make([]float64, m.Rows)
	if err := p.MultiplyRef(xp, yp); err != nil {
		t.Fatal(err)
	}
	for old, nw := range perm {
		if math.Abs(yOrig[old]-yp[nw]) > 1e-9 {
			t.Fatalf("permuted SpMV differs at row %d", old)
		}
	}
}

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%60)
		m := randomCSR(n, 0.1, seed)
		perm := RCM(m)
		if len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRCMReducesMeshBandwidth(t *testing.T) {
	m, err := Generate("adaptive", 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	before := m.AvgBandwidth()
	r, _, err := Reorder(m, OrderRCM, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := r.AvgBandwidth()
	if after >= before*0.5 {
		t.Fatalf("RCM should at least halve avg bandwidth of a scattered mesh: before=%.1f after=%.1f", before, after)
	}
}

func TestDegreeOrderSortsDegrees(t *testing.T) {
	m := randomCSR(60, 0.2, 5)
	perm := DegreeOrder(m)
	p, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < p.Rows; i++ {
		if p.RowNNZ(i) < p.RowNNZ(i-1) {
			t.Fatalf("degree order violated at row %d: %d < %d", i, p.RowNNZ(i), p.RowNNZ(i-1))
		}
	}
}

func TestReorderRandomIsValidPermutation(t *testing.T) {
	m := randomCSR(30, 0.2, 77)
	r, perm, err := Reorder(m, OrderRandom, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.NNZ() != m.NNZ() {
		t.Fatalf("random reorder changed nnz")
	}
	seen := make([]bool, m.Rows)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("random perm not a bijection")
		}
		seen[p] = true
	}
}

func TestGenerateAllPaperMatrices(t *testing.T) {
	for _, mi := range PaperMatrices() {
		m, err := Generate(mi.Name, 2000, 7)
		if err != nil {
			t.Fatalf("%s: %v", mi.Name, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", mi.Name, err)
		}
		paperDeg := float64(mi.NNZ) / float64(mi.Rows)
		gotDeg := Degrees(m).Mean
		// Degree should be within 3x of the paper matrix's (structure
		// class match, not exact replication).
		if gotDeg < paperDeg/3 || gotDeg > paperDeg*3 {
			t.Errorf("%s: mean degree %.1f too far from paper %.1f", mi.Name, gotDeg, paperDeg)
		}
	}
}

func TestGenerateUnknownMatrix(t *testing.T) {
	if _, err := Generate("nope", 100, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestDeriveWorkloadShapes(t *testing.T) {
	sys := topo.MustPreset(topo.PresetCSL)
	m, err := Generate("hugetrace-00020", 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	mkl, err := DeriveWorkload(sys, m, AlgoMKL, 8)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := DeriveWorkload(sys, m, AlgoMerge, 8)
	if err != nil {
		t.Fatal(err)
	}
	// MKL uses the widest ISA; merge is scalar.
	if _, ok := mkl.FPInstr[topo.ISAAVX512]; !ok {
		t.Errorf("mkl workload should use AVX-512 on CSL, got %v", mkl.FPInstr)
	}
	if _, ok := merge.FPInstr[topo.ISAScalar]; !ok {
		t.Errorf("merge workload should be scalar, got %v", merge.FPInstr)
	}
	// SIMD reduces instruction count: fewer iterations for same nnz.
	if mkl.Iters >= merge.Iters {
		t.Errorf("mkl should need fewer wide iterations: %d vs %d", mkl.Iters, merge.Iters)
	}
}

func TestXLocalityImprovesWithRCM(t *testing.T) {
	sys := topo.MustPreset(topo.PresetCSL)
	m, err := Generate("adaptive", 20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Reorder(m, OrderRCM, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := xLocality(sys, m)
	after := xLocality(sys, r)
	// After RCM the x-vector traffic should be served closer to the core
	// with less line waste.
	if after.XLevel > before.XLevel {
		t.Errorf("RCM should not push the x window outward: before=%v after=%v", before, after)
	}
	if after.Waste > before.Waste {
		t.Errorf("RCM should not increase gather waste: before=%v after=%v", before, after)
	}
	if before.XLevel == after.XLevel && before.XLevel == topo.L1 {
		t.Skip("matrix too small to exercise the locality window")
	}
}

func TestExecuteChecksumsAgree(t *testing.T) {
	m, err := Generate("human_gene1", 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	infoMKL, _, err := Execute(m, AlgoMKL, OrderNone, 4)
	if err != nil {
		t.Fatal(err)
	}
	infoMerge, _, err := Execute(m, AlgoMerge, OrderNone, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(infoMKL.Checksum-infoMerge.Checksum) > 1e-6*math.Abs(infoMKL.Checksum) {
		t.Fatalf("algorithms disagree: %v vs %v", infoMKL.Checksum, infoMerge.Checksum)
	}
}

func TestBandwidthOfBandedMatrix(t *testing.T) {
	// Tridiagonal matrix has bandwidth 1.
	n := 50
	var ri, ci []int
	var vs []float64
	for i := 0; i < n; i++ {
		ri = append(ri, i)
		ci = append(ci, i)
		vs = append(vs, 2)
		if i+1 < n {
			ri = append(ri, i, i+1)
			ci = append(ci, i+1, i)
			vs = append(vs, -1, -1)
		}
	}
	m, err := FromTriplets("tri", n, n, ri, ci, vs)
	if err != nil {
		t.Fatal(err)
	}
	if bw := m.Bandwidth(); bw != 1 {
		t.Fatalf("tridiagonal bandwidth = %d, want 1", bw)
	}
}

func TestThreadWorkFactors(t *testing.T) {
	// Arrowhead: first eighth of the rows are dense.
	n := 800
	var ri, ci []int
	var vs []float64
	for i := 0; i < n; i++ {
		deg := 4
		if i < n/8 {
			deg = n / 4
		}
		for d := 0; d < deg; d++ {
			ri = append(ri, i)
			ci = append(ci, (i+d+1)%n)
			vs = append(vs, 1)
		}
	}
	m, err := FromTriplets("arrow", n, n, ri, ci, vs)
	if err != nil {
		t.Fatal(err)
	}
	mkl, err := ThreadWorkFactors(m, AlgoMKL, 8)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := ThreadWorkFactors(m, AlgoMerge, 8)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(fs []float64) float64 {
		s := 0.0
		for _, f := range fs {
			s += f
		}
		return s / float64(len(fs))
	}
	// Factors are normalised to mean 1.
	if math.Abs(meanOf(mkl)-1) > 0.01 || math.Abs(meanOf(merge)-1) > 0.01 {
		t.Errorf("means: mkl %.3f merge %.3f, want 1", meanOf(mkl), meanOf(merge))
	}
	spreadOf := func(fs []float64) float64 {
		min, max := fs[0], fs[0]
		for _, f := range fs {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		return max - min
	}
	// Row-split concentrates the dense rows on thread 0; merge splits the
	// nonzeros almost perfectly.
	if mkl[0] < 3 {
		t.Errorf("row-split thread 0 factor %.2f, want the arrow head", mkl[0])
	}
	// Merge-path balances rows+nonzeros, so nnz-only spread is small but
	// not zero (row-consumption counts as work too).
	if spreadOf(merge) > 0.35 {
		t.Errorf("merge-path spread %.3f, should be small", spreadOf(merge))
	}
	if spreadOf(mkl) < 5*spreadOf(merge) {
		t.Errorf("row-split spread %.3f should dwarf merge %.3f", spreadOf(mkl), spreadOf(merge))
	}
	// Validation.
	if _, err := ThreadWorkFactors(m, AlgoMKL, 0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := ThreadWorkFactors(m, Algorithm("gpu"), 4); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
