package spmv

import (
	"fmt"
	"sync"

	"pmove/internal/machine"
	"pmove/internal/topo"
)

// Algorithm names the SpMV implementations of §V-D: a vectorised kernel
// standing in for Intel MKL, and the merge-path kernel of Merrill &
// Garland.
type Algorithm string

// Supported algorithms.
const (
	AlgoMKL   Algorithm = "mkl"
	AlgoMerge Algorithm = "merge"
)

// Algorithms lists the supported algorithms in the paper's order.
func Algorithms() []Algorithm { return []Algorithm{AlgoMKL, AlgoMerge} }

// MultiplyParallel computes y = A*x with the selected algorithm across
// nthreads goroutines. Both algorithms produce exactly the same y (up to
// floating-point association) and are verified against MultiplyRef in
// tests.
func MultiplyParallel(m *CSR, algo Algorithm, x, y []float64, nthreads int) error {
	if len(x) != m.Cols || len(y) != m.Rows {
		return fmt.Errorf("spmv: %s: dimension mismatch (x=%d want %d, y=%d want %d)", m.Name, len(x), m.Cols, len(y), m.Rows)
	}
	if nthreads <= 0 {
		nthreads = 1
	}
	switch algo {
	case AlgoMKL:
		multiplyRowSplit(m, x, y, nthreads)
		return nil
	case AlgoMerge:
		multiplyMerge(m, x, y, nthreads)
		return nil
	}
	return fmt.Errorf("spmv: unknown algorithm %q", algo)
}

// multiplyRowSplit is the row-partitioned kernel: rows are divided evenly
// across threads (the MKL-style strategy; vulnerable to row-length
// imbalance but enjoys wide vectorisation within long rows).
func multiplyRowSplit(m *CSR, x, y []float64, nthreads int) {
	var wg sync.WaitGroup
	chunk := (m.Rows + nthreads - 1) / nthreads
	for t := 0; t < nthreads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var sum float64
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					sum += m.Vals[k] * x[m.ColIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MergeCoordinate is a position on the merge path: a (row, nonzero) pair.
type MergeCoordinate struct {
	Row int
	NNZ int
}

// MergePathSearch finds the merge-path split point for a given diagonal:
// the coordinate (i, j) with i+j = diagonal where the "merge" of the row
// pointer list and the natural numbers balances. This is the core of
// Merrill & Garland's merge-based SpMV.
func MergePathSearch(diagonal int, rowPtr []int, rows, nnz int) MergeCoordinate {
	lo := diagonal - nnz
	if lo < 0 {
		lo = 0
	}
	hi := diagonal
	if hi > rows {
		hi = rows
	}
	// Binary search over row index i; j = diagonal - i.
	for lo < hi {
		mid := (lo + hi) / 2
		if rowPtr[mid+1] <= diagonal-mid-1 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return MergeCoordinate{Row: lo, NNZ: diagonal - lo}
}

// multiplyMerge is the merge-path kernel: the combined work of consuming
// rows and nonzeros is divided exactly evenly across threads, so heavily
// imbalanced matrices (human_gene1) still load-balance. Each thread walks
// its merge-path segment accumulating partial row sums; partial rows that
// span thread boundaries are fixed up after the parallel phase.
func multiplyMerge(m *CSR, x, y []float64, nthreads int) {
	rows, nnz := m.Rows, m.NNZ()
	totalWork := rows + nnz
	if totalWork == 0 {
		return
	}
	if nthreads > totalWork {
		nthreads = totalWork
	}
	carryRow := make([]int, nthreads)
	var wg sync.WaitGroup
	per := (totalWork + nthreads - 1) / nthreads
	for t := 0; t < nthreads; t++ {
		dlo := t * per
		dhi := dlo + per
		if dhi > totalWork {
			dhi = totalWork
		}
		if dlo >= dhi {
			carryRow[t] = -1
			continue
		}
		wg.Add(1)
		go func(t, dlo, dhi int) {
			defer wg.Done()
			start := MergePathSearch(dlo, m.RowPtr, rows, nnz)
			end := MergePathSearch(dhi, m.RowPtr, rows, nnz)
			i, k := start.Row, start.NNZ
			var sum float64
			for i < end.Row {
				for ; k < m.RowPtr[i+1]; k++ {
					sum += m.Vals[k] * x[m.ColIdx[k]]
				}
				y[i] = sum
				sum = 0
				i++
			}
			// The last row of the segment may continue into the next
			// thread's segment; mark it for the sequential fix-up.
			if i < rows && k < end.NNZ {
				carryRow[t] = i
			} else {
				carryRow[t] = -1
			}
		}(t, dlo, dhi)
	}
	wg.Wait()
	// Sequential fix-up: rows that straddle segment boundaries were only
	// partially summed by the threads involved; recompute each such row
	// (at most one per thread) so y is exact.
	for t := 0; t < nthreads; t++ {
		r := carryRow[t]
		if r < 0 {
			continue
		}
		var sum float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[r] = sum
	}
}

// DeriveWorkload translates an SpMV execution into a machine.WorkloadSpec
// so the analytic engine can replay it with live telemetry. The derivation
// captures the effects the paper observes:
//
//   - The MKL-class kernel uses AVX-512 on Intel systems: FP and memory
//     instruction counts shrink by the vector width ("codes using higher
//     SIMD ISA may provoke reduced instruction counts"), and AVX512 FP
//     events appear instead of scalar ones.
//   - The merge kernel "only exercised the scalar units".
//   - Locality: matrix values/indices always stream from DRAM; x-vector
//     accesses hit the level whose size covers the reordered bandwidth
//     window (RCM shrinks it, lifting L1/L2 hit fractions — the mechanism
//     behind its ≈22% speedup).
func DeriveWorkload(sys *topo.System, m *CSR, algo Algorithm, nthreads int) (machine.WorkloadSpec, error) {
	if err := m.Validate(); err != nil {
		return machine.WorkloadSpec{}, err
	}
	nnz := float64(m.NNZ())
	if nnz == 0 {
		return machine.WorkloadSpec{}, fmt.Errorf("spmv: %s is empty", m.Name)
	}
	rowsPerThread := float64(m.Rows) / float64(nthreads)
	nnzPerThread := nnz / float64(nthreads)

	isa := topo.ISAScalar
	if algo == AlgoMKL {
		isa = sys.CPU.WidestISA()
	}
	w := float64(isa.VectorWidth())

	// Per-"iteration" = per vector-width group of nonzeros on one thread.
	itersPerThread := nnzPerThread / w
	if itersPerThread < 1 {
		itersPerThread = 1
	}

	// Memory instructions per group: 1 matrix-value load + 1 x gather
	// (counted as one wide load under SIMD) + amortised index load and y
	// store.
	avgRowNNZ := nnz / float64(m.Rows)
	// One scalar 8-byte y store per row; expressed in units of the
	// kernel's (wide) memory instructions so byte accounting stays exact.
	storesPerIter := 1 / avgRowNNZ
	loadsPerIter := 2.0 + 0.5 // vals + x + packed colidx
	other := 3.0              // pointer chasing, loop control
	if algo == AlgoMerge {
		other += 1.5 // merge-path bookkeeping
	}

	// x-vector locality from the bandwidth window, with cache-line waste
	// for scattered gathers.
	loc := xLocality(sys, m)
	xBaseBytes := 8 * w // one x element per nonzero
	xBytes := xBaseBytes * loc.Waste
	instrBytes := (loadsPerIter + storesPerIter) * 8 * w
	totalBytes := instrBytes + (xBytes - xBaseBytes)
	hits := map[topo.CacheLevel]float64{}
	hits[loc.StreamLevel] += (totalBytes - xBytes) / totalBytes
	hits[loc.XLevel] += xBytes / totalBytes

	spec := machine.WorkloadSpec{
		Name:              fmt.Sprintf("spmv_%s_%s", algo, m.Name),
		Iters:             uint64(itersPerThread + 0.5),
		FPInstr:           map[topo.ISA]float64{isa: 1},
		FMA:               true,
		Loads:             loadsPerIter,
		Stores:            storesPerIter,
		MemISA:            isa,
		OtherInstr:        other,
		DivOps:            0,
		ExtraBytesPerIter: xBytes - xBaseBytes,
		WorkingSetBytes:   int64(12 * nnzPerThread), // vals 8B + idx 4B per nnz
		HitOverride:       hits,
	}
	_ = rowsPerThread
	return spec, nil
}

// ThreadWorkFactors computes each thread's share of the SpMV work under
// an algorithm's partitioning, normalised so the mean is 1. The row-split
// (MKL-style) kernel divides rows evenly, so heavy-tailed matrices like
// human_gene1 skew badly; the merge-path kernel divides rows+nonzeros
// exactly evenly by construction. These factors drive the engine's
// LaunchSkewed so per-thread PMU counters show the real imbalance.
func ThreadWorkFactors(m *CSR, algo Algorithm, nthreads int) ([]float64, error) {
	if nthreads <= 0 {
		return nil, fmt.Errorf("spmv: thread count must be positive")
	}
	nnzOf := make([]float64, nthreads)
	switch algo {
	case AlgoMKL:
		chunk := (m.Rows + nthreads - 1) / nthreads
		for t := 0; t < nthreads; t++ {
			lo := t * chunk
			hi := lo + chunk
			if hi > m.Rows {
				hi = m.Rows
			}
			if lo >= hi {
				continue
			}
			nnzOf[t] = float64(m.RowPtr[hi] - m.RowPtr[lo])
		}
	case AlgoMerge:
		totalWork := m.Rows + m.NNZ()
		per := (totalWork + nthreads - 1) / nthreads
		for t := 0; t < nthreads; t++ {
			dlo := t * per
			dhi := dlo + per
			if dhi > totalWork {
				dhi = totalWork
			}
			if dlo >= dhi {
				continue
			}
			start := MergePathSearch(dlo, m.RowPtr, m.Rows, m.NNZ())
			end := MergePathSearch(dhi, m.RowPtr, m.Rows, m.NNZ())
			nnzOf[t] = float64(end.NNZ - start.NNZ)
		}
	default:
		return nil, fmt.Errorf("spmv: unknown algorithm %q", algo)
	}
	mean := 0.0
	for _, v := range nnzOf {
		mean += v
	}
	mean /= float64(nthreads)
	if mean == 0 {
		return nil, fmt.Errorf("spmv: %s has no work to partition", m.Name)
	}
	out := make([]float64, nthreads)
	for i, v := range nnzOf {
		f := v / mean
		if f < 1e-3 {
			f = 1e-3 // idle threads still spin on the barrier
		}
		out[i] = f
	}
	return out, nil
}

// DeriveWorkloadRepeated derives a workload for `repeats` back-to-back
// SpMV invocations (benchmark loops run the kernel many times; Fig 7's
// phases are such loops). Locality is unchanged: the x window and matrix
// stream repeat identically each iteration.
func DeriveWorkloadRepeated(sys *topo.System, m *CSR, algo Algorithm, nthreads, repeats int) (machine.WorkloadSpec, error) {
	if repeats <= 0 {
		return machine.WorkloadSpec{}, fmt.Errorf("spmv: repeats must be positive, got %d", repeats)
	}
	spec, err := DeriveWorkload(sys, m, algo, nthreads)
	if err != nil {
		return machine.WorkloadSpec{}, err
	}
	spec.Iters *= uint64(repeats)
	return spec, nil
}

// Locality describes where SpMV's two traffic streams are served and how
// wasteful the x-vector gathers are.
type Locality struct {
	// StreamLevel serves the matrix values/indices stream: DRAM unless the
	// whole matrix fits in L3.
	StreamLevel topo.CacheLevel
	// XLevel serves the x-vector gathers: the level whose capacity covers
	// the reordered bandwidth window.
	XLevel topo.CacheLevel
	// Waste is the line-granularity amplification of the gathers: accesses
	// landing beyond L2 pull whole 64-byte lines for 8 useful bytes, with
	// partial neighbour reuse in L3.
	Waste float64
}

// xLocality estimates the memory behaviour of SpMV on a system. The
// matrix data (vals+colidx) streams sequentially; the x accesses jump
// within a window set by the matrix bandwidth, which reordering shrinks —
// the mechanism behind RCM's Fig 7 speedup.
func xLocality(sys *topo.System, m *CSR) Locality {
	matBytes := int64(m.NNZ() * 12)
	streamLvl := topo.DRAM
	if l3, ok := sys.Cache(topo.L3); ok && matBytes <= l3.SizeBytes {
		streamLvl = topo.L3
	}
	window := int64(m.AvgBandwidth()*2*8) + 64
	xLvl := sys.CacheLevelFor(window)
	waste := 1.0
	switch xLvl {
	case topo.L3:
		waste = 4
	case topo.DRAM:
		waste = 8
	}
	return Locality{StreamLevel: streamLvl, XLevel: xLvl, Waste: waste}
}

// RunInfo summarises a real (computed) SpMV run for verification and the
// observation metadata attached to the KB.
type RunInfo struct {
	Matrix    string
	Algorithm Algorithm
	Ordering  Ordering
	Threads   int
	Rows      int
	NNZ       int
	Checksum  float64 // sum of y, to compare algorithms
}

// Execute computes y = A*x with the algorithm, returning a summary. x is
// filled with a deterministic pattern.
func Execute(m *CSR, algo Algorithm, ord Ordering, nthreads int) (RunInfo, []float64, error) {
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1.0 + float64(i%7)*0.25
	}
	y := make([]float64, m.Rows)
	if err := MultiplyParallel(m, algo, x, y, nthreads); err != nil {
		return RunInfo{}, nil, err
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	return RunInfo{
		Matrix: m.Name, Algorithm: algo, Ordering: ord, Threads: nthreads,
		Rows: m.Rows, NNZ: m.NNZ(), Checksum: sum,
	}, y, nil
}
