// Package spmv implements the sparse matrix-vector multiplication
// workloads of the paper's §V-D/E: CSR storage, synthetic generators
// matching the five SuiteSparse matrices of Table IV, reorderings
// (Reverse Cuthill-McKee, degree, random), and two SpMV algorithms — a
// vectorised kernel standing in for Intel MKL and a merge-path kernel
// after Merrill & Garland. The kernels both compute real results and
// derive machine.WorkloadSpec descriptions so the analytic engine can
// replay them with live PMU telemetry.
package spmv

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	Name string
	Rows int
	Cols int
	// RowPtr has Rows+1 entries; row i's nonzeros are
	// [RowPtr[i], RowPtr[i+1]) in ColIdx/Vals.
	RowPtr []int
	ColIdx []int
	Vals   []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Validate checks the structural invariants of the CSR arrays.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("spmv: %s: negative dimensions %dx%d", m.Name, m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("spmv: %s: rowptr has %d entries, want %d", m.Name, len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("spmv: %s: rowptr[0] = %d, want 0", m.Name, m.RowPtr[0])
	}
	if m.RowPtr[m.Rows] != len(m.ColIdx) {
		return fmt.Errorf("spmv: %s: rowptr[last] = %d, want nnz %d", m.Name, m.RowPtr[m.Rows], len(m.ColIdx))
	}
	if len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("spmv: %s: %d column indices but %d values", m.Name, len(m.ColIdx), len(m.Vals))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("spmv: %s: rowptr not monotone at row %d", m.Name, i)
		}
	}
	for k, c := range m.ColIdx {
		if c < 0 || c >= m.Cols {
			return fmt.Errorf("spmv: %s: column index %d out of range at nnz %d", m.Name, c, k)
		}
	}
	return nil
}

// RowNNZ returns the nonzero count of row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Bandwidth returns the matrix bandwidth: max over nonzeros of |i - j|.
// Reorderings aim to minimise this; it drives the x-vector locality model.
func (m *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d := m.ColIdx[k] - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// AvgBandwidth returns the mean |i-j| over nonzeros — a smoother locality
// signal than the worst-case bandwidth.
func (m *CSR) AvgBandwidth() float64 {
	if m.NNZ() == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += math.Abs(float64(m.ColIdx[k] - i))
		}
	}
	return sum / float64(m.NNZ())
}

// MultiplyRef computes y = A*x with the straightforward row loop; the
// reference against which the parallel kernels are verified.
func (m *CSR) MultiplyRef(x, y []float64) error {
	if len(x) != m.Cols {
		return fmt.Errorf("spmv: %s: x has %d entries, want %d", m.Name, len(x), m.Cols)
	}
	if len(y) != m.Rows {
		return fmt.Errorf("spmv: %s: y has %d entries, want %d", m.Name, len(y), m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
	return nil
}

// SortRows orders the column indices inside each row ascending (canonical
// CSR); generators and permutations call this.
func (m *CSR) SortRows() {
	type pair struct {
		c int
		v float64
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		ps := make([]pair, hi-lo)
		for k := lo; k < hi; k++ {
			ps[k-lo] = pair{m.ColIdx[k], m.Vals[k]}
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a].c < ps[b].c })
		for k := lo; k < hi; k++ {
			m.ColIdx[k] = ps[k-lo].c
			m.Vals[k] = ps[k-lo].v
		}
	}
}

// FromTriplets builds a CSR matrix from coordinate triples, summing
// duplicates.
func FromTriplets(name string, rows, cols int, ri, ci []int, v []float64) (*CSR, error) {
	if len(ri) != len(ci) || len(ri) != len(v) {
		return nil, fmt.Errorf("spmv: triplet arrays disagree: %d/%d/%d", len(ri), len(ci), len(v))
	}
	// Coalesce duplicates via a per-row map pass.
	perRow := make([]map[int]float64, rows)
	for k := range ri {
		i, j := ri[k], ci[k]
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("spmv: triplet (%d,%d) out of %dx%d", i, j, rows, cols)
		}
		if perRow[i] == nil {
			perRow[i] = map[int]float64{}
		}
		perRow[i][j] += v[k]
	}
	m := &CSR{Name: name, Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] = m.RowPtr[i] + len(perRow[i])
	}
	m.ColIdx = make([]int, m.RowPtr[rows])
	m.Vals = make([]float64, m.RowPtr[rows])
	for i := 0; i < rows; i++ {
		k := m.RowPtr[i]
		cols := make([]int, 0, len(perRow[i]))
		for c := range perRow[i] {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			m.ColIdx[k] = c
			m.Vals[k] = perRow[i][c]
			k++
		}
	}
	return m, m.Validate()
}

// Permute applies a symmetric permutation: row and column i of the result
// is row/column perm[i] of the input — i.e. new[i][j] = old[perm[i]][perm[j]]
// is NOT the convention here; we use the standard "perm maps old index to
// new index": new[perm[i]][perm[j]] = old[i][j]. perm must be a bijection
// on [0, Rows).
func (m *CSR) Permute(perm []int) (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("spmv: %s: symmetric permutation needs a square matrix", m.Name)
	}
	if len(perm) != m.Rows {
		return nil, fmt.Errorf("spmv: %s: permutation has %d entries, want %d", m.Name, len(perm), m.Rows)
	}
	seen := make([]bool, m.Rows)
	for _, p := range perm {
		if p < 0 || p >= m.Rows || seen[p] {
			return nil, fmt.Errorf("spmv: %s: invalid permutation", m.Name)
		}
		seen[p] = true
	}
	inv := make([]int, m.Rows) // inv[new] = old
	for old, nw := range perm {
		inv[nw] = old
	}
	out := &CSR{Name: m.Name, Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for nw := 0; nw < m.Rows; nw++ {
		out.RowPtr[nw+1] = out.RowPtr[nw] + m.RowNNZ(inv[nw])
	}
	out.ColIdx = make([]int, out.RowPtr[m.Rows])
	out.Vals = make([]float64, out.RowPtr[m.Rows])
	for nw := 0; nw < m.Rows; nw++ {
		old := inv[nw]
		k := out.RowPtr[nw]
		for j := m.RowPtr[old]; j < m.RowPtr[old+1]; j++ {
			out.ColIdx[k] = perm[m.ColIdx[j]]
			out.Vals[k] = m.Vals[j]
			k++
		}
	}
	out.SortRows()
	return out, out.Validate()
}
