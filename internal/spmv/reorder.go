package spmv

import (
	"fmt"
	"sort"
)

// Ordering names the reordering strategies exercised in Fig 2(c)/(d) and
// §V-D: none, rcm, degree, random.
type Ordering string

// Supported orderings.
const (
	OrderNone   Ordering = "none"
	OrderRCM    Ordering = "rcm"
	OrderDegree Ordering = "degree"
	OrderRandom Ordering = "random"
)

// Orderings lists all supported orderings.
func Orderings() []Ordering {
	return []Ordering{OrderNone, OrderRCM, OrderDegree, OrderRandom}
}

// Reorder returns the matrix symmetrically permuted by the named ordering
// together with the permutation used (perm[old] = new). OrderNone returns
// the input unchanged with the identity permutation.
func Reorder(m *CSR, ord Ordering, seed uint64) (*CSR, []int, error) {
	switch ord {
	case OrderNone:
		perm := make([]int, m.Rows)
		for i := range perm {
			perm[i] = i
		}
		return m, perm, nil
	case OrderRCM:
		perm := RCM(m)
		out, err := m.Permute(perm)
		return out, perm, err
	case OrderDegree:
		perm := DegreeOrder(m)
		out, err := m.Permute(perm)
		return out, perm, err
	case OrderRandom:
		rng := xorshift(seed | 1)
		perm := scatterPerm(m.Rows, &rng)
		out, err := m.Permute(perm)
		return out, perm, err
	}
	return nil, nil, fmt.Errorf("spmv: unknown ordering %q", ord)
}

// RCM computes the Reverse Cuthill-McKee permutation of a square matrix,
// treating the sparsity pattern as an undirected graph (the pattern is
// symmetrised implicitly by following both directions). The returned slice
// maps old index -> new index. Disconnected components are each seeded
// from a pseudo-peripheral vertex of minimum degree.
func RCM(m *CSR) []int {
	n := m.Rows
	// Build symmetrised adjacency once (excluding self loops).
	adj := buildAdjacency(m)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}
	visited := make([]bool, n)
	order := make([]int, 0, n) // Cuthill-McKee order (reversed at the end)
	// Process vertices in ascending degree for component seeds.
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.Slice(seeds, func(a, b int) bool { return deg[seeds[a]] < deg[seeds[b]] })
	queue := make([]int, 0, n)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		start := pseudoPeripheral(s, adj)
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			// Enqueue unvisited neighbours by ascending degree.
			var nbrs []int
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool { return deg[nbrs[a]] < deg[nbrs[b]] })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse: perm[old] = new position.
	perm := make([]int, n)
	for pos, v := range order {
		perm[v] = n - 1 - pos
	}
	return perm
}

// pseudoPeripheral finds an approximately peripheral vertex by repeated
// BFS to the farthest minimum-degree vertex (George & Liu's heuristic).
func pseudoPeripheral(start int, adj [][]int) int {
	n := len(adj)
	dist := make([]int, n)
	cur := start
	lastEcc := -1
	for iter := 0; iter < 8; iter++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[cur] = 0
		q := []int{cur}
		far := cur
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					q = append(q, w)
					if dist[w] > dist[far] || (dist[w] == dist[far] && len(adj[w]) < len(adj[far])) {
						far = w
					}
				}
			}
		}
		if dist[far] <= lastEcc {
			break
		}
		lastEcc = dist[far]
		cur = far
	}
	return cur
}

// DegreeOrder sorts vertices by ascending degree (ties by index) and
// returns perm[old] = new.
func DegreeOrder(m *CSR) []int {
	n := m.Rows
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := m.RowNNZ(idx[a]), m.RowNNZ(idx[b])
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	perm := make([]int, n)
	for pos, v := range idx {
		perm[v] = pos
	}
	return perm
}

// buildAdjacency returns the symmetrised adjacency lists of the pattern,
// excluding self loops, each list sorted and deduplicated.
func buildAdjacency(m *CSR) [][]int {
	n := m.Rows
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j == i || j >= n {
				continue
			}
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
		// Deduplicate in place.
		out := adj[i][:0]
		prev := -1
		for _, v := range adj[i] {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[i] = out
	}
	return adj
}
