// Package introspect is P-MoVE's self-observability layer: the monitor
// monitoring itself. A framework whose job is watching other systems is
// blind to its own regressions unless its daemon, telemetry pipeline,
// database servers and resilience transport emit telemetry too — the gap
// HPC operations teams hit first (Ciorba, "The importance and need for
// system monitoring and analysis in HPC operations"), and one the
// unified-ontology line of work treats as a first-class graph entity.
//
// The package is stdlib-only and has three parts:
//
//   - a concurrent metrics registry (atomic counters, float gauges, and
//     fixed-bucket histograms for operation latencies) with snapshot and
//     delta semantics;
//   - a distributed tracer: 128-bit trace ids with head-based sampling,
//     spans with parent links carried through context.Context and across
//     process boundaries via a traceparent wire field, finished spans
//     kept in a bounded ring (evictions counted in trace.dropped);
//   - an exporter that writes the registry into the embedded TSDB under
//     the "pmove.self.*" measurement namespace, plus an auto-generated
//     "meta" dashboard over those series — the digital twin observing
//     itself through its own visualization path.
//
// The traceexport subpackage stitches span rings from several processes
// into whole trace trees, attributes latency per hop, and exports
// waterfall text and Chrome trace-event JSON.
//
// Everything is nil-safe: a nil *Introspector (introspection disabled)
// hands out nil registries, counters and spans whose methods are no-ops,
// so instrumented call sites carry no conditionals and near-zero cost.
package introspect

import "context"

// DefaultPrefix is the metric-name prefix the exporter prepends: every
// self-observability series lives under "pmove.self.*".
const DefaultPrefix = "pmove.self"

// DefaultSpanCapacity bounds the tracer's finished-span ring.
const DefaultSpanCapacity = 4096

// DroppedSpansMetric is the registry counter that tracks spans evicted
// from the tracer ring (exported as pmove.self.trace.dropped).
const DroppedSpansMetric = "trace.dropped"

// Introspector bundles the registry and tracer one daemon (or server)
// instance reports into.
type Introspector struct {
	metrics *Registry
	tracer  *Tracer
	prefix  string
	cfg     TracerConfig
}

// Option configures an Introspector.
type Option func(*Introspector)

// WithSpanCapacity bounds the finished-span ring (default
// DefaultSpanCapacity); older spans are dropped, and counted.
func WithSpanCapacity(n int) Option {
	return func(in *Introspector) { in.cfg.Capacity = n }
}

// WithPrefix overrides the exported metric namespace (default
// DefaultPrefix). Tests use it to isolate namespaces.
func WithPrefix(p string) Option {
	return func(in *Introspector) {
		if p != "" {
			in.prefix = p
		}
	}
}

// WithProcess labels every span with the emitting process's name
// ("daemon", "tsdb-server", ...) so multi-process trace assembly can
// tell the rings apart.
func WithProcess(name string) Option {
	return func(in *Introspector) { in.cfg.Process = name }
}

// WithSampling sets the head-based trace sampling rate in (0,1] and the
// deterministic seed for span-id generation and sampling decisions
// (seed 0 derives from the clock). Spans that end in error are recorded
// regardless of the sampling decision.
func WithSampling(rate float64, seed uint64) Option {
	return func(in *Introspector) {
		in.cfg.SampleRate = rate
		in.cfg.Seed = seed
	}
}

// New builds an enabled Introspector.
func New(opts ...Option) *Introspector {
	in := &Introspector{
		metrics: NewRegistry(),
		prefix:  DefaultPrefix,
	}
	for _, o := range opts {
		o(in)
	}
	in.tracer = NewTracerWith(in.cfg)
	// The counter is materialized on first drop so registries of tracers
	// that never overflow stay free of it.
	metrics := in.metrics
	in.tracer.onDrop = func(n uint64) { metrics.Counter(DroppedSpansMetric).Add(n) }
	return in
}

// Enabled reports whether in is live (non-nil).
func (in *Introspector) Enabled() bool { return in != nil }

// Metrics returns the registry, nil when disabled (the nil registry is
// itself safe to use).
func (in *Introspector) Metrics() *Registry {
	if in == nil {
		return nil
	}
	return in.metrics
}

// Tracer returns the span tracer, nil when disabled.
func (in *Introspector) Tracer() *Tracer {
	if in == nil {
		return nil
	}
	return in.tracer
}

// Prefix returns the exported namespace prefix.
func (in *Introspector) Prefix() string {
	if in == nil || in.prefix == "" {
		return DefaultPrefix
	}
	return in.prefix
}

// StartSpan opens a span named name as a child of the span in ctx (if
// any), returning the child context. Safe on a nil Introspector: the
// context passes through and the returned span's End is a no-op.
func (in *Introspector) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if in == nil {
		return ctx, nil
	}
	return in.tracer.Start(ctx, name)
}

// StartSpanAt is StartSpan with an explicit start time (UnixNano; 0
// means now) — for servers that decode the request, and with it the
// trace context, after the work the span should cover began.
func (in *Introspector) StartSpanAt(ctx context.Context, name string, startNanos int64) (context.Context, *ActiveSpan) {
	if in == nil {
		return ctx, nil
	}
	return in.tracer.StartAt(ctx, name, startNanos)
}

// Snapshot captures the registry's current state.
func (in *Introspector) Snapshot() Snapshot {
	if in == nil {
		return Snapshot{}
	}
	return in.metrics.Snapshot()
}
