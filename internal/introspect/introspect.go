// Package introspect is P-MoVE's self-observability layer: the monitor
// monitoring itself. A framework whose job is watching other systems is
// blind to its own regressions unless its daemon, telemetry pipeline,
// database servers and resilience transport emit telemetry too — the gap
// HPC operations teams hit first (Ciorba, "The importance and need for
// system monitoring and analysis in HPC operations"), and one the
// unified-ontology line of work treats as a first-class graph entity.
//
// The package is stdlib-only and has three parts:
//
//   - a concurrent metrics registry (atomic counters, float gauges, and
//     fixed-bucket histograms for operation latencies) with snapshot and
//     delta semantics;
//   - a lightweight tracer: spans with parent links carried through
//     context.Context, finished spans kept in a bounded ring;
//   - an exporter that writes the registry into the embedded TSDB under
//     the "pmove.self.*" measurement namespace, plus an auto-generated
//     "meta" dashboard over those series — the digital twin observing
//     itself through its own visualization path.
//
// Everything is nil-safe: a nil *Introspector (introspection disabled)
// hands out nil registries, counters and spans whose methods are no-ops,
// so instrumented call sites carry no conditionals and near-zero cost.
package introspect

import "context"

// DefaultPrefix is the metric-name prefix the exporter prepends: every
// self-observability series lives under "pmove.self.*".
const DefaultPrefix = "pmove.self"

// DefaultSpanCapacity bounds the tracer's finished-span ring.
const DefaultSpanCapacity = 4096

// Introspector bundles the registry and tracer one daemon (or server)
// instance reports into.
type Introspector struct {
	metrics *Registry
	tracer  *Tracer
	prefix  string
}

// Option configures an Introspector.
type Option func(*Introspector)

// WithSpanCapacity bounds the finished-span ring (default
// DefaultSpanCapacity); older spans are dropped, and counted.
func WithSpanCapacity(n int) Option {
	return func(in *Introspector) { in.tracer = NewTracer(n) }
}

// WithPrefix overrides the exported metric namespace (default
// DefaultPrefix). Tests use it to isolate namespaces.
func WithPrefix(p string) Option {
	return func(in *Introspector) {
		if p != "" {
			in.prefix = p
		}
	}
}

// New builds an enabled Introspector.
func New(opts ...Option) *Introspector {
	in := &Introspector{
		metrics: NewRegistry(),
		tracer:  NewTracer(DefaultSpanCapacity),
		prefix:  DefaultPrefix,
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Enabled reports whether in is live (non-nil).
func (in *Introspector) Enabled() bool { return in != nil }

// Metrics returns the registry, nil when disabled (the nil registry is
// itself safe to use).
func (in *Introspector) Metrics() *Registry {
	if in == nil {
		return nil
	}
	return in.metrics
}

// Tracer returns the span tracer, nil when disabled.
func (in *Introspector) Tracer() *Tracer {
	if in == nil {
		return nil
	}
	return in.tracer
}

// Prefix returns the exported namespace prefix.
func (in *Introspector) Prefix() string {
	if in == nil || in.prefix == "" {
		return DefaultPrefix
	}
	return in.prefix
}

// StartSpan opens a span named name as a child of the span in ctx (if
// any), returning the child context. Safe on a nil Introspector: the
// context passes through and the returned span's End is a no-op.
func (in *Introspector) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if in == nil {
		return ctx, nil
	}
	return in.tracer.Start(ctx, name)
}

// Snapshot captures the registry's current state.
func (in *Introspector) Snapshot() Snapshot {
	if in == nil {
		return Snapshot{}
	}
	return in.metrics.Snapshot()
}
