package expose

import (
	"encoding/json"
	"io"
	"math"
	"strconv"

	"pmove/internal/introspect"
)

// VarCounter is the /debug/vars JSON shape of a counter.
type VarCounter struct {
	Kind  string `json:"kind"`
	Value uint64 `json:"value"`
}

// VarGauge is the /debug/vars JSON shape of a gauge.
type VarGauge struct {
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
}

// VarHistogram is the /debug/vars JSON shape of a histogram. Buckets
// are cumulative, keyed by upper bound ("+Inf" last).
type VarHistogram struct {
	Kind    string            `json:"kind"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

// Vars flattens the sources into an expvar-style map keyed by the full
// dotted metric name. Shared by the /debug/vars endpoint and the
// `pmove introspect -json` CLI dump; encoding/json sorts the keys, so
// the rendering is deterministic.
func Vars(sources ...Source) map[string]any {
	out := map[string]any{}
	for _, src := range sources {
		if src.Snapshot == nil {
			continue
		}
		for _, m := range src.Snapshot().Metrics {
			name := m.Name
			if src.Prefix != "" {
				name = src.Prefix + "." + m.Name
			}
			switch m.Kind {
			case introspect.KindCounter:
				out[name] = VarCounter{Kind: "counter", Value: uint64(m.Value)}
			case introspect.KindGauge:
				out[name] = VarGauge{Kind: "gauge", Value: m.Value}
			case introspect.KindHistogram:
				buckets := map[string]uint64{}
				for _, b := range m.Cumulative() {
					key := "+Inf"
					if !math.IsInf(b.LE, 1) {
						key = strconv.FormatFloat(b.LE, 'g', -1, 64)
					}
					buckets[key] = b.Count
				}
				out[name] = VarHistogram{Kind: "histogram", Count: m.Count, Sum: m.Sum, Buckets: buckets}
			}
		}
	}
	return out
}

// EncodeVars writes the Vars map as indented JSON.
func EncodeVars(w io.Writer, sources ...Source) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Vars(sources...))
}
