package expose

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
)

func newTestServer(t *testing.T) (*Server, *introspect.Introspector, *logbuf.Logger) {
	t.Helper()
	in := introspect.New(introspect.WithProcess("test"))
	logs := logbuf.New(64)
	s := NewServer()
	s.AddSource(SourceFor(in, map[string]string{"process": "test"}))
	s.SetLogs(logs)
	return s, in, logs
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	s, in, _ := newTestServer(t)
	in.Metrics().Counter("op.probe.total").Add(2)
	s.OnScrape(func() { CollectRuntime(in) })

	code, body := get(t, s.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE pmove_self_op_probe counter",
		`pmove_self_op_probe_total{process="test"} 2`,
		"pmove_self_runtime_goroutines",
		"pmove_self_runtime_heap_alloc_bytes",
		"# EOF",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("/metrics must terminate with # EOF")
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, _, _ := newTestServer(t)
	var failing atomic.Bool
	s.AddCheck("telemetry-sink", func() error {
		if failing.Load() {
			return errors.New("breaker open")
		}
		return nil
	})
	h := s.Handler()

	if code, body := get(t, h, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, h, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	failing.Store(true)
	code, body := get(t, h, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz under failure = %d", code)
	}
	if !strings.Contains(body, "telemetry-sink: breaker open") {
		t.Fatalf("/readyz body %q lacks failing check", body)
	}
	failing.Store(false)
	if code, _ := get(t, h, "/readyz"); code != 200 {
		t.Fatalf("/readyz did not recover: %d", code)
	}
}

func TestVarsEndpoint(t *testing.T) {
	s, in, _ := newTestServer(t)
	in.Metrics().Gauge("ops.inflight").Set(3)
	code, body := get(t, s.Handler(), "/debug/vars")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var m map[string]VarGauge
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if g := m["pmove.self.ops.inflight"]; g.Kind != "gauge" || g.Value != 3 {
		t.Fatalf("vars gauge = %+v", g)
	}
}

func TestLogsEndpoint(t *testing.T) {
	s, _, logs := newTestServer(t)
	tr := introspect.TraceID{Hi: 0xabc, Lo: 0xdef}
	ctx := introspect.ContextWithSpanContext(context.Background(),
		introspect.SpanContext{Trace: tr, Span: 9, Sampled: true})
	logs.With("tsdb.server").Warn(ctx, "slow op", "cmd", "WRITEB")
	logs.With("transport.tsdb").Info(context.Background(), "retry")

	h := s.Handler()
	code, body := get(t, h, "/logs")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var recs []LogRecordJSON
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Trace != tr.String() || recs[0].Fields["cmd"] != "WRITEB" {
		t.Fatalf("record = %+v", recs[0])
	}

	_, body = get(t, h, "/logs?trace="+tr.String())
	_ = json.Unmarshal([]byte(body), &recs)
	if len(recs) != 1 || recs[0].Msg != "slow op" {
		t.Fatalf("trace filter = %+v", recs)
	}
	_, body = get(t, h, "/logs?level=warn&component=tsdb.server&limit=5")
	_ = json.Unmarshal([]byte(body), &recs)
	if len(recs) != 1 {
		t.Fatalf("combined filter = %+v", recs)
	}
	if code, _ := get(t, h, "/logs?level=loud"); code != http.StatusBadRequest {
		t.Fatalf("bad level accepted: %d", code)
	}
	if code, _ := get(t, h, "/logs?trace=xyz"); code != http.StatusBadRequest {
		t.Fatalf("bad trace accepted: %d", code)
	}
	if code, _ := get(t, h, "/logs?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", code)
	}
}

func TestListenServesOverRealSocket(t *testing.T) {
	s, in, _ := newTestServer(t)
	CollectRuntime(in)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	s.TrackConns(in.Metrics().Gauge(GaugeConns))

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "pmove_self_runtime_goroutines") {
		t.Fatal("scrape missing runtime gauges")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRuntimeSampler(t *testing.T) {
	in := introspect.New(introspect.WithProcess("test"))
	var ticks atomic.Int64
	stop := StartRuntimeSampler(in, time.Millisecond, func() { ticks.Add(1) })
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks.Load() < 3 {
		t.Fatal("sampler did not tick")
	}
	snap := in.Snapshot()
	if snap.GaugeValue(GaugeGoroutines) <= 0 {
		t.Fatal("goroutine gauge not set")
	}
	if snap.GaugeValue(GaugeHeapAlloc) <= 0 {
		t.Fatal("heap gauge not set")
	}
	stop()
	stop() // idempotent
	// Nil introspector is a no-op.
	CollectRuntime(nil)
}
