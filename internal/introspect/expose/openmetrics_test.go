package expose

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pmove/internal/introspect"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// fixtureSource builds a registry covering every metric kind, counter
// suffix handling, and histogram geometry.
func fixtureSource() Source {
	reg := introspect.NewRegistry()
	reg.Counter("op.probe.total").Add(5)
	reg.Counter("op.probe.errors").Add(1) // no .total suffix: sample still gets _total
	reg.Gauge("ops.inflight").Set(2)
	reg.Gauge("journal.fill").Set(0.375)
	h := reg.Histogram("op.probe.seconds", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.002)
	h.Observe(5) // lands in +Inf
	return Source{
		Prefix:   "pmove.self",
		Labels:   map[string]string{"process": "daemon"},
		Snapshot: reg.Snapshot,
	}
}

func TestOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, fixtureSource()); err != nil {
		t.Fatal(err)
	}
	golden(t, "openmetrics_basic", buf.Bytes())
}

func TestOpenMetricsEscapingAndOrdering(t *testing.T) {
	reg := introspect.NewRegistry()
	reg.Gauge("weird metric-name").Set(1)
	src := Source{
		Prefix: "pmove.self",
		Labels: map[string]string{
			"zeta":    "last-key-sorts-first-no",
			"alpha":   `quote " backslash \ newline` + "\n" + `end`,
			"bad key": "sanitized",
		},
		Snapshot: reg.Snapshot,
	}
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, src); err != nil {
		t.Fatal(err)
	}
	golden(t, "openmetrics_escaping", buf.Bytes())
}

func TestOpenMetricsMultiSourceMergesFamilies(t *testing.T) {
	regA := introspect.NewRegistry()
	regA.Counter("requests.total").Add(3)
	regB := introspect.NewRegistry()
	regB.Counter("requests.total").Add(7)
	a := Source{Prefix: "srv", Labels: map[string]string{"process": "tsdb"}, Snapshot: regA.Snapshot}
	b := Source{Prefix: "srv", Labels: map[string]string{"process": "docdb"}, Snapshot: regB.Snapshot}
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	golden(t, "openmetrics_multisource", buf.Bytes())
}

func TestVarsEncoder(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeVars(&buf, fixtureSource()); err != nil {
		t.Fatal(err)
	}
	golden(t, "vars_basic", buf.Bytes())

	// The encoding must round-trip as JSON and carry cumulative buckets.
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("vars output is not valid JSON: %v", err)
	}
	var hist VarHistogram
	if err := json.Unmarshal(decoded["pmove.self.op.probe.seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Buckets["+Inf"] != hist.Count {
		t.Fatalf("+Inf bucket %d != count %d", hist.Buckets["+Inf"], hist.Count)
	}
	if hist.Buckets["0.01"] != 3 {
		t.Fatalf("cumulative 0.01 bucket = %d, want 3", hist.Buckets["0.01"])
	}
}

func TestCumulativeAndBounds(t *testing.T) {
	reg := introspect.NewRegistry()
	h := reg.Histogram("h", 1, 2, 3)
	if got := h.Bounds(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Bounds = %v", got)
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	m, _ := reg.Snapshot().Get("h")
	cum := m.Cumulative()
	if len(cum) != 4 {
		t.Fatalf("Cumulative len = %d, want 4 (3 bounds + +Inf)", len(cum))
	}
	wantCounts := []uint64{1, 2, 2, 3}
	for i, w := range wantCounts {
		if cum[i].Count != w {
			t.Fatalf("cum[%d] = %d, want %d", i, cum[i].Count, w)
		}
	}
	var nilH *introspect.Histogram
	if nilH.Bounds() != nil {
		t.Fatal("nil Histogram.Bounds should be nil")
	}
	if (introspect.Metric{Kind: introspect.KindGauge}).Cumulative() != nil {
		t.Fatal("gauge Cumulative should be nil")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"pmove.self.runtime.goroutines": "pmove_self_runtime_goroutines",
		"a b/c-d":                       "a_b_c_d",
		"9leading":                      "_leading",
		"ok_name:x":                     "ok_name:x",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
