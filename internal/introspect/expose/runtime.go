package expose

import (
	"os"
	"runtime"
	"sync"
	"time"

	"pmove/internal/introspect"
)

// Runtime gauge names, relative to the introspector prefix (so with the
// default "pmove.self" prefix the exposition carries
// pmove_self_runtime_goroutines and friends).
const (
	GaugeGoroutines   = "runtime.goroutines"
	GaugeHeapAlloc    = "runtime.heap.alloc.bytes"
	GaugeHeapSys      = "runtime.heap.sys.bytes"
	GaugeHeapObjects  = "runtime.heap.objects"
	GaugeGCCount      = "runtime.gc.count"
	GaugeGCPauseTotal = "runtime.gc.pause.total.seconds"
	GaugeFDs          = "runtime.fds"
	GaugeConns        = "runtime.conns"
)

// CollectRuntime samples the Go runtime once into the introspector's
// registry: goroutine count, heap and GC statistics, and the process's
// open file descriptors (when /proc is available). Nil-safe.
func CollectRuntime(in *introspect.Introspector) {
	if !in.Enabled() {
		return
	}
	reg := in.Metrics()
	reg.Gauge(GaugeGoroutines).Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge(GaugeHeapAlloc).Set(float64(ms.HeapAlloc))
	reg.Gauge(GaugeHeapSys).Set(float64(ms.HeapSys))
	reg.Gauge(GaugeHeapObjects).Set(float64(ms.HeapObjects))
	reg.Gauge(GaugeGCCount).Set(float64(ms.NumGC))
	reg.Gauge(GaugeGCPauseTotal).Set(float64(ms.PauseTotalNs) / 1e9)
	if n := countFDs(); n >= 0 {
		reg.Gauge(GaugeFDs).Set(float64(n))
	}
}

// countFDs counts the process's open file descriptors via /proc;
// -1 when the platform does not expose it.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir handle itself is one of the entries; don't count it.
	return len(ents) - 1
}

// StartRuntimeSampler samples the runtime gauges every interval until
// the returned stop function is called. extra hooks run after each
// sample — the server uses one to refresh its connection gauge.
func StartRuntimeSampler(in *introspect.Introspector, interval time.Duration, extra ...func()) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	sample := func() {
		CollectRuntime(in)
		for _, f := range extra {
			f()
		}
	}
	sample()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
