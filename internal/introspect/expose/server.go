package expose

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
)

// Check is one readiness probe: Probe returns nil when the named
// subsystem can do useful work. A failing probe flips /readyz to 503
// with the failure rendered per check.
type Check struct {
	Name  string
	Probe func() error
}

// Server is the observability-plane HTTP endpoint: /metrics (OpenMetrics
// text), /healthz (liveness), /readyz (readiness via checks),
// /debug/vars (expvar-style JSON) and /logs (the structured log ring).
// Configure with AddSource / AddCheck / SetLogs before Listen; the
// zero value is usable.
type Server struct {
	mu       sync.Mutex
	sources  []Source
	checks   []Check
	logs     *logbuf.Logger
	onScrape []func()

	srv       *http.Server
	ln        net.Listener
	conns     atomic.Int64
	connGauge *introspect.Gauge
}

// NewServer builds an empty server.
func NewServer() *Server { return &Server{} }

// AddSource registers a metrics source for /metrics and /debug/vars.
func (s *Server) AddSource(src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, src)
}

// AddCheck registers a readiness check for /readyz.
func (s *Server) AddCheck(name string, probe func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks = append(s.checks, Check{Name: name, Probe: probe})
}

// SetLogs attaches the structured log ring served at /logs.
func (s *Server) SetLogs(l *logbuf.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logs = l
}

// OnScrape registers a hook run before every /metrics and /debug/vars
// snapshot — the daemon uses it to refresh the runtime gauges so a
// scrape always sees current values, whatever the sampler interval.
func (s *Server) OnScrape(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onScrape = append(s.onScrape, f)
}

// TrackConns mirrors the server's open-connection count into g
// (typically the runtime.conns gauge of the daemon's introspector).
func (s *Server) TrackConns(g *introspect.Gauge) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connGauge = g
	g.Set(float64(s.conns.Load()))
}

// snapshotConfig copies the mutable configuration under the lock.
func (s *Server) snapshotConfig() ([]Source, []Check, *logbuf.Logger, []func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hooks := make([]func(), len(s.onScrape))
	copy(hooks, s.onScrape)
	return append([]Source(nil), s.sources...),
		append([]Check(nil), s.checks...),
		s.logs,
		hooks
}

// Handler returns the route table; useful for tests and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/logs", s.handleLogs)
	return mux
}

// Listen binds addr and serves in the background until Close. The bound
// address (useful with ":0") is available from Addr.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("expose: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ConnState:         s.connState,
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops serving. Safe to call multiple times or before Listen.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// connState keeps the live-connection count and mirrors it into the
// tracked gauge.
func (s *Server) connState(_ net.Conn, state http.ConnState) {
	var n int64
	switch state {
	case http.StateNew:
		n = s.conns.Add(1)
	case http.StateClosed, http.StateHijacked:
		n = s.conns.Add(-1)
	default:
		return
	}
	s.mu.Lock()
	g := s.connGauge
	s.mu.Unlock()
	g.Set(float64(n))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sources, _, _, hooks := s.snapshotConfig()
	for _, f := range hooks {
		f()
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	_ = WriteOpenMetrics(w, sources...)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	_, checks, _, _ := s.snapshotConfig()
	type failure struct{ name, err string }
	var failures []failure
	for _, c := range checks {
		if err := c.Probe(); err != nil {
			failures = append(failures, failure{c.Name, err.Error()})
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(failures) == 0 {
		fmt.Fprintln(w, "ready")
		return
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].name < failures[j].name })
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "not ready")
	for _, f := range failures {
		fmt.Fprintf(w, "%s: %s\n", f.name, f.err)
	}
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	sources, _, _, hooks := s.snapshotConfig()
	for _, f := range hooks {
		f()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = EncodeVars(w, sources...)
}

// LogRecordJSON is the wire shape of one /logs record.
type LogRecordJSON struct {
	Seq       uint64            `json:"seq"`
	Time      string            `json:"time"`
	Level     string            `json:"level"`
	Component string            `json:"component,omitempty"`
	Msg       string            `json:"msg"`
	Trace     string            `json:"trace,omitempty"`
	Span      string            `json:"span,omitempty"`
	Fields    map[string]string `json:"fields,omitempty"`
}

// RecordJSON converts a ring record to its wire shape.
func RecordJSON(rec logbuf.Record) LogRecordJSON {
	out := LogRecordJSON{
		Seq:       rec.Seq,
		Time:      rec.Time.UTC().Format(time.RFC3339Nano),
		Level:     rec.Level.String(),
		Component: rec.Component,
		Msg:       rec.Msg,
	}
	if !rec.Trace.IsZero() {
		out.Trace = rec.Trace.String()
		out.Span = fmt.Sprintf("%016x", rec.Span)
	}
	if len(rec.Fields) > 0 {
		out.Fields = make(map[string]string, len(rec.Fields))
		for _, f := range rec.Fields {
			out.Fields[f.Key] = f.Value
		}
	}
	return out
}

// ParseLogQuery builds a ring query from /logs-style parameters; the
// CLI shares it so `pmove logs` filters exactly like the endpoint.
// Unknown level names and malformed trace ids are reported as errors.
func ParseLogQuery(level, trace, component, limit string) (logbuf.Query, error) {
	var q logbuf.Query
	if level != "" {
		lv, ok := logbuf.ParseLevel(level)
		if !ok {
			return q, fmt.Errorf("unknown level %q", level)
		}
		q.MinLevel = lv
	}
	if trace != "" {
		id, ok := introspect.ParseTraceID(trace)
		if !ok {
			return q, fmt.Errorf("malformed trace id %q (want 32 hex digits)", trace)
		}
		q.Trace = id
	}
	q.Component = component
	if limit != "" {
		n, err := strconv.Atoi(limit)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q", limit)
		}
		q.Limit = n
	}
	return q, nil
}

func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	_, _, logs, _ := s.snapshotConfig()
	params := r.URL.Query()
	q, err := ParseLogQuery(params.Get("level"), params.Get("trace"),
		params.Get("component"), params.Get("limit"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs := logs.Filter(q)
	out := make([]LogRecordJSON, 0, len(recs))
	for _, rec := range recs {
		out = append(out, RecordJSON(rec))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
