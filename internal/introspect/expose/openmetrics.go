// Package expose is the live observability plane: it renders the
// introspect registry as OpenMetrics/Prometheus text and expvar-style
// JSON, samples Go runtime health into pmove.self.runtime.* gauges, and
// serves /metrics, /healthz, /readyz, /debug/vars and /logs over the
// standard library HTTP stack — no dependencies, scrapeable by any
// Prometheus-compatible collector.
package expose

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"pmove/internal/introspect"
)

// Source is one registry feeding the exposition: a snapshot function
// (usually Introspector.Snapshot), the dotted name prefix to prepend
// ("pmove.self"), and constant labels stamped on every sample (e.g.
// process="daemon"). Multiple sources merge into one exposition;
// samples of the same family coexist when their labels differ.
type Source struct {
	Prefix   string
	Labels   map[string]string
	Snapshot func() introspect.Snapshot
}

// SourceFor adapts an introspector into a Source using its own prefix.
func SourceFor(in *introspect.Introspector, labels map[string]string) Source {
	return Source{Prefix: in.Prefix(), Labels: labels, Snapshot: in.Snapshot}
}

// family is one metric family being assembled: all samples sharing a
// sanitized name, across sources.
type family struct {
	name  string // sanitized family name (no _total suffix for counters)
	kind  introspect.Kind
	help  string // the dotted pre-sanitization name
	lines []string
}

// WriteOpenMetrics renders every source's snapshot in OpenMetrics text
// form: `# HELP`/`# TYPE` headers, counters with the `_total` suffix,
// histograms as cumulative `_bucket{le=...}`/`_sum`/`_count` lines, and
// a terminating `# EOF`. Families are sorted by name, labels by key —
// the output is byte-stable for a given set of snapshots.
func WriteOpenMetrics(w io.Writer, sources ...Source) error {
	fams := map[string]*family{}
	var order []string
	for _, src := range sources {
		if src.Snapshot == nil {
			continue
		}
		labels := renderLabels(src.Labels)
		for _, m := range src.Snapshot().Metrics {
			dotted := m.Name
			if src.Prefix != "" {
				dotted = src.Prefix + "." + m.Name
			}
			name := sanitizeName(dotted)
			if m.Kind == introspect.KindCounter {
				// A registry counter already named *.total must not
				// double the suffix: the family is the stem, the
				// sample re-appends _total per the OpenMetrics rule.
				name = strings.TrimSuffix(name, "_total")
			}
			f := fams[name]
			if f == nil {
				f = &family{name: name, kind: m.Kind, help: dotted}
				fams[name] = f
				order = append(order, name)
			}
			f.lines = append(f.lines, sampleLines(name, labels, m)...)
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, omType(f.kind)); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// sampleLines renders one metric's sample lines with pre-rendered
// constant labels.
func sampleLines(name, labels string, m introspect.Metric) []string {
	switch m.Kind {
	case introspect.KindCounter:
		return []string{fmt.Sprintf("%s_total%s %s\n", name, wrapLabels(labels), formatValue(m.Value))}
	case introspect.KindGauge:
		return []string{fmt.Sprintf("%s%s %s\n", name, wrapLabels(labels), formatValue(m.Value))}
	case introspect.KindHistogram:
		lines := make([]string, 0, len(m.Buckets)+2)
		for _, b := range m.Cumulative() {
			le := labels
			if le != "" {
				le += ","
			}
			le += `le="` + formatLE(b.LE) + `"`
			lines = append(lines, fmt.Sprintf("%s_bucket{%s} %d\n", name, le, b.Count))
		}
		lines = append(lines,
			fmt.Sprintf("%s_sum%s %s\n", name, wrapLabels(labels), formatValue(m.Sum)),
			fmt.Sprintf("%s_count%s %d\n", name, wrapLabels(labels), m.Count))
		return lines
	default:
		return nil
	}
}

// omType maps a registry kind to its OpenMetrics type name.
func omType(k introspect.Kind) string {
	switch k {
	case introspect.KindCounter:
		return "counter"
	case introspect.KindGauge:
		return "gauge"
	case introspect.KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// sanitizeName maps a dotted metric name onto the OpenMetrics name
// charset [a-zA-Z0-9_:], collapsing every other rune to '_'.
func sanitizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// renderLabels renders a constant label set sorted by key, without
// braces: `a="1",b="2"`.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, sanitizeName(k)+`="`+escapeLabel(labels[k])+`"`)
	}
	return strings.Join(parts, ",")
}

// wrapLabels braces a rendered label set, or returns "" when empty.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// escapeHelp escapes a HELP docstring: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatValue renders a sample value: integral floats without exponent
// or trailing zeros, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a bucket bound for the le label.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
