package selfexport

import (
	"strings"
	"testing"

	"pmove/internal/introspect"
	"pmove/internal/tsdb"
)

// TestExportRoundTrip writes a registry into the embedded TSDB and reads
// every pmove.self.* series back through the query path.
func TestExportRoundTrip(t *testing.T) {
	in := introspect.New()
	reg := in.Metrics()
	reg.Counter("op.monitor.total").Add(3)
	reg.Gauge("op.inflight").Set(1)
	reg.Histogram("op.monitor.seconds", 0.001, 0.1).Observe(0.05)

	db := tsdb.New()
	n, err := Export(in, db, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("exported %d points, want 3", n)
	}

	for _, meas := range db.Measurements() {
		if !strings.HasPrefix(meas, "pmove_self_") {
			t.Errorf("measurement %q outside the pmove.self namespace", meas)
		}
	}

	res, err := db.QueryString(`SELECT "_value" FROM "pmove_self_op_monitor_total" WHERE "tag" = 'self'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values["_value"] != 3 {
		t.Fatalf("counter round-trip: %+v", res.Rows)
	}

	res, err = db.QueryString(`SELECT "_count" FROM "pmove_self_op_monitor_seconds" WHERE "tag" = 'self'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values["_count"] != 1 {
		t.Fatalf("histogram round-trip: %+v", res.Rows)
	}

	// Bucket fields: 0.05 lands in the 0.1 bucket, not 0.001.
	q := &tsdb.Query{Fields: []string{"_le_0.001", "_le_0.1", "_le_inf"},
		Measurement: "pmove_self_op_monitor_seconds"}
	res, err = db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0].Values
	if row["_le_0.001"] != 0 || row["_le_0.1"] != 1 || row["_le_inf"] != 0 {
		t.Fatalf("bucket fields: %+v", row)
	}
}

// TestExportPrefix checks WithPrefix isolates the namespace.
func TestExportPrefix(t *testing.T) {
	in := introspect.New(introspect.WithPrefix("test.self"))
	in.Metrics().Counter("x").Inc()
	db := tsdb.New()
	if _, err := Export(in, db, 1); err != nil {
		t.Fatal(err)
	}
	if ms := db.Measurements(); len(ms) != 1 || ms[0] != "test_self_x" {
		t.Fatalf("measurements: %v", ms)
	}
}

// TestMetaDashboard validates the generated panel set over a live
// snapshot: every metric gets a panel, histograms expose count and sum.
func TestMetaDashboard(t *testing.T) {
	in := introspect.New()
	reg := in.Metrics()
	reg.Counter("op.probe.total").Inc()
	reg.Histogram("op.probe.seconds").Observe(0.01)
	reg.Gauge("op.inflight").Set(0)

	d, err := MetaDashboard("UUkm1881", in.Prefix(), in.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Panels) != 3 {
		t.Fatalf("panels = %d, want 3", len(d.Panels))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var histTargets int
	for _, p := range d.Panels {
		if p.Title == "pmove.self.op.probe.seconds" {
			histTargets = len(p.Targets)
			for _, tg := range p.Targets {
				if tg.Measurement != "pmove_self_op_probe_seconds" {
					t.Errorf("histogram target measurement %q", tg.Measurement)
				}
			}
		}
	}
	if histTargets != 2 {
		t.Errorf("histogram panel targets = %d, want _count and _sum", histTargets)
	}

	if _, err := MetaDashboard("uid", introspect.DefaultPrefix, introspect.Snapshot{}); err == nil {
		t.Error("empty snapshot produced a dashboard")
	}
}

// TestExportNil checks a disabled (nil) introspector exports nothing.
func TestExportNil(t *testing.T) {
	if n, err := Export(nil, nil, 0); n != 0 || err != nil {
		t.Errorf("nil export wrote %d, err %v", n, err)
	}
}
