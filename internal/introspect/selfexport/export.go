// Package selfexport ships the self-observability registry into the
// TSDB and renders the meta dashboard. It lives below introspect so the
// registry/tracer core stays import-free: packages the exporter depends
// on (tsdb, dashboard, resilience beneath them) can therefore themselves
// be instrumented with introspect without a cycle.
package selfexport

import (
	"fmt"
	"math"
	"sort"

	"pmove/internal/dashboard"
	"pmove/internal/introspect"
	"pmove/internal/tsdb"
)

// Sink is where exported self-metrics land — the embedded tsdb.DB or a
// resilient remote client; both satisfy it. (Declared locally so this
// package stays import-free of the telemetry package.)
type Sink interface {
	WritePoint(p tsdb.Point) error
}

// selfTag marks every exported point so self-telemetry is recallable with
// the same tag-filtered Listing-3 queries as any observation.
const selfTag = "self"

// MeasurementFor returns the TSDB measurement name a metric exports to:
// the prefixed metric name through the same dots-to-underscores mapping
// as every PCP metric, e.g. ("pmove.self", "op.monitor.total") ->
// "pmove_self_op_monitor_total".
func MeasurementFor(prefix, name string) string {
	return tsdb.MeasurementName(prefix + "." + name)
}

// bucketField names the field holding one histogram bucket's count.
func bucketField(le float64) string {
	if math.IsInf(le, 1) {
		return "_le_inf"
	}
	return fmt.Sprintf("_le_%g", le)
}

// Export writes a snapshot of the introspector's registry into sink at
// nowNanos: one point per metric under the introspector's prefix.
// Counters and gauges export a single "_value" field; histograms export
// "_count", "_sum" and one "_le_*" field per bucket. It returns how many
// points were written; the first write error aborts (self-telemetry must
// never wedge the op that emitted it — callers treat the error as
// advisory). A nil introspector exports nothing.
func Export(in *introspect.Introspector, sink Sink, nowNanos int64) (int, error) {
	if !in.Enabled() {
		return 0, nil
	}
	return ExportSnapshot(sink, in.Prefix(), in.Snapshot(), nowNanos)
}

// ExportSnapshot writes an already-taken snapshot (Export's core; split
// out so delta snapshots can be shipped too).
func ExportSnapshot(sink Sink, prefix string, snap introspect.Snapshot, nowNanos int64) (int, error) {
	written := 0
	for _, m := range snap.Metrics {
		p := tsdb.Point{
			Measurement: MeasurementFor(prefix, m.Name),
			Tags:        map[string]string{"tag": selfTag, "kind": string(m.Kind)},
			Fields:      map[string]float64{},
			Time:        nowNanos,
		}
		switch m.Kind {
		case introspect.KindHistogram:
			p.Fields["_count"] = float64(m.Count)
			p.Fields["_sum"] = m.Sum
			for _, b := range m.Buckets {
				p.Fields[bucketField(b.LE)] = float64(b.Count)
			}
		default:
			p.Fields["_value"] = m.Value
		}
		if err := sink.WritePoint(p); err != nil {
			return written, fmt.Errorf("selfexport: export %s: %w", m.Name, err)
		}
		written++
	}
	return written, nil
}

// MetaDashboard generates the self-observability dashboard over a
// snapshot: one panel per metric, targeting the exported pmove.self.*
// measurements — the monitor's own health rendered through the same
// dashboard substrate it generates for its targets. datasourceUID names
// the registered tsdb connection (the daemon passes its generator's UID).
func MetaDashboard(datasourceUID, prefix string, snap introspect.Snapshot) (*dashboard.Dashboard, error) {
	if len(snap.Metrics) == 0 {
		return nil, fmt.Errorf("selfexport: no self-metrics to display")
	}
	d := &dashboard.Dashboard{
		ID:    1,
		Title: fmt.Sprintf("P-MoVE self-observability (%s.*)", prefix),
		Time:  dashboard.TimeRange{From: "now-5m", To: "now"},
	}
	ds := dashboard.Datasource{Type: "influxdb", UID: datasourceUID}
	for i, m := range snap.Metrics {
		p := dashboard.Panel{ID: i + 1, Title: prefix + "." + m.Name}
		meas := MeasurementFor(prefix, m.Name)
		switch m.Kind {
		case introspect.KindHistogram:
			for _, f := range []string{"_count", "_sum"} {
				p.Targets = append(p.Targets, dashboard.Target{
					Datasource: ds, Measurement: meas, Params: f, Tag: selfTag,
				})
			}
		default:
			p.Targets = append(p.Targets, dashboard.Target{
				Datasource: ds, Measurement: meas, Params: "_value", Tag: selfTag,
			})
		}
		sort.Slice(p.Targets, func(a, b int) bool { return p.Targets[a].Params < p.Targets[b].Params })
		d.Panels = append(d.Panels, p)
	}
	return d, d.Validate()
}
