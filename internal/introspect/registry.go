package introspect

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready; all methods are safe on a nil receiver (disabled introspection).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value (set or add). Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (possibly negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBounds are the histogram upper bounds (seconds) used for
// operation latencies when none are given: 1µs to 10s, decades.
var DefaultLatencyBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit +Inf bucket, with total count and sum. Observations are
// lock-free; bucket bounds are fixed at creation. Nil-safe.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the histogram's upper bounds (ascending, excluding the
// implicit +Inf overflow bucket). The returned slice is a copy, so
// exporters can hold it without re-deriving bucket geometry or racing
// the registry.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Kind labels a metric in a snapshot.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// BucketCount is one histogram bucket in a snapshot; LE is math.Inf(1)
// for the overflow bucket.
type BucketCount struct {
	LE    float64
	Count uint64
}

// Metric is one registry entry frozen at snapshot time.
type Metric struct {
	Name  string
	Kind  Kind
	Value float64 // counter (as float) or gauge value
	Count uint64  // histogram observation count
	Sum   float64 // histogram sum
	// Buckets are cumulative-free per-bucket counts, ascending by LE.
	Buckets []BucketCount
}

// Cumulative returns the histogram buckets in cumulative (Prometheus
// "le") form, ending with the +Inf bucket whose count equals Count.
// Nil for non-histograms.
func (m Metric) Cumulative() []BucketCount {
	if m.Kind != KindHistogram {
		return nil
	}
	out := make([]BucketCount, len(m.Buckets))
	var running uint64
	for i, b := range m.Buckets {
		running += b.Count
		out[i] = BucketCount{LE: b.LE, Count: running}
	}
	return out
}

// Snapshot is a consistent-enough view of a registry: each metric is read
// atomically; the set is read under the registry lock.
type Snapshot struct {
	Metrics []Metric // sorted by (Name, Kind)
}

// Get finds a metric by name.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// CounterValue returns a counter's value, 0 when absent.
func (s Snapshot) CounterValue(name string) uint64 {
	if m, ok := s.Get(name); ok && m.Kind == KindCounter {
		return uint64(m.Value)
	}
	return 0
}

// GaugeValue returns a gauge's value, 0 when absent.
func (s Snapshot) GaugeValue(name string) float64 {
	if m, ok := s.Get(name); ok && m.Kind == KindGauge {
		return m.Value
	}
	return 0
}

// Delta returns s minus prev: counters and histogram counts subtract
// (metrics absent from prev pass through); gauges keep their current
// value, deltas being meaningless for level signals.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevBy := map[string]Metric{}
	for _, m := range prev.Metrics {
		prevBy[m.Name+"\x00"+string(m.Kind)] = m
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		p, ok := prevBy[m.Name+"\x00"+string(m.Kind)]
		if ok {
			switch m.Kind {
			case KindCounter:
				m.Value -= p.Value
			case KindHistogram:
				m.Count -= p.Count
				m.Sum -= p.Sum
				for i := range m.Buckets {
					if i < len(p.Buckets) {
						m.Buckets[i].Count -= p.Buckets[i].Count
					}
				}
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// Registry is the concurrent metrics registry. Metric handles are
// get-or-create by name and safe to cache; all mutation paths are atomic.
// A nil *Registry hands out nil handles whose methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bounds on first use (DefaultLatencyBounds when empty). Bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot freezes every metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Metrics: make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))}
	for name, c := range r.counters {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindCounter, Value: float64(c.Load())})
	}
	for name, g := range r.gauges {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindGauge, Value: g.Load()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: KindHistogram, Count: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			m.Buckets = append(m.Buckets, BucketCount{LE: b, Count: h.counts[i].Load()})
		}
		m.Buckets = append(m.Buckets, BucketCount{LE: math.Inf(1), Count: h.counts[len(h.bounds)].Load()})
		s.Metrics = append(s.Metrics, m)
	}
	sort.Slice(s.Metrics, func(i, j int) bool {
		a, b := s.Metrics[i], s.Metrics[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Kind < b.Kind
	})
	return s
}
