package introspect

import (
	"context"
	"sync"
	"time"
)

// Span is one finished operation: identity, trace membership, parentage,
// timing and error. Parent is 0 for root spans; for a span opened from a
// remote traceparent it is the sender's span id, linking processes.
type Span struct {
	Trace   TraceID
	ID      uint64
	Parent  uint64
	Name    string
	Process string // the tracer's process label ("daemon", "tsdb-server")
	Start   int64  // UnixNano
	End     int64  // UnixNano
	Err     string
}

// DurationSeconds returns the span's wall time.
func (s Span) DurationSeconds() float64 {
	return float64(s.End-s.Start) / 1e9
}

type spanCtxKey struct{}

// SpanContextFromContext returns the span context carried by ctx.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

// ContextWithSpanContext returns ctx carrying sc — how a server installs
// a remote parent parsed off the wire before opening its own spans.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanIDFromContext returns the active span id carried by ctx, 0 if none.
func SpanIDFromContext(ctx context.Context) uint64 {
	sc, _ := SpanContextFromContext(ctx)
	return sc.Span
}

// ActiveSpan is an open span; End closes it into the tracer's ring.
// Nil-safe: methods on a nil *ActiveSpan are no-ops.
type ActiveSpan struct {
	t       *Tracer
	span    Span
	sampled bool
	done    bool
}

// ID returns the span id (0 on nil).
func (a *ActiveSpan) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// Context returns the span's propagation context (zero on nil).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID, Sampled: a.sampled}
}

// End closes the span, recording err (if any). Idempotent. A span of an
// unsampled trace is discarded here — unless it errored, in which case it
// is recorded anyway (the always-on-error half of the sampling policy).
func (a *ActiveSpan) End(err error) {
	if a == nil || a.done {
		return
	}
	a.done = true
	a.span.End = a.t.now()
	if err != nil {
		a.span.Err = err.Error()
	}
	if !a.sampled && a.span.Err == "" {
		return
	}
	a.t.record(a.span)
}

// TracerConfig tunes a tracer at construction.
type TracerConfig struct {
	// Capacity bounds the finished-span ring (DefaultSpanCapacity when
	// <= 0); older spans are dropped, and counted.
	Capacity int
	// Process labels every span with the emitting process, so a trace
	// collector can tell which ring a span came from after assembly.
	Process string
	// SampleRate is the head-based probability a new root trace is kept,
	// in [0, 1]; <= 0 means keep everything (the default). The decision
	// is made once at the trace root and propagated; spans that end in
	// error are always recorded regardless.
	SampleRate float64
	// Seed drives span/trace id generation and the sampling decision
	// deterministically; 0 derives a seed from the wall clock so two
	// processes never allocate colliding span ids.
	Seed uint64
}

// Tracer allocates span ids and keeps finished spans in a bounded ring.
// All methods are safe for concurrent use and on a nil receiver. Span
// ids are drawn from a seeded 64-bit permutation, so ids from tracers in
// different processes do not collide when their rings are assembled into
// one trace.
type Tracer struct {
	mu         sync.Mutex
	idBase     uint64
	idSeq      uint64
	cap        int
	process    string
	sampleRate float64
	spans      []Span // ring, oldest first
	dropped    uint64

	// onDrop, when set, observes ring evictions (the Introspector wires
	// it to the trace.dropped self counter).
	onDrop func(n uint64)

	// nowNanos is swappable for deterministic tests.
	nowNanos func() int64
}

// NewTracer builds a tracer keeping at most capacity finished spans
// (DefaultSpanCapacity when <= 0), sampling everything.
func NewTracer(capacity int) *Tracer {
	return NewTracerWith(TracerConfig{Capacity: capacity})
}

// NewTracerWith builds a tracer from an explicit configuration.
func NewTracerWith(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultSpanCapacity
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &Tracer{
		idBase:     splitmix64(seed),
		cap:        cfg.Capacity,
		process:    cfg.Process,
		sampleRate: cfg.SampleRate,
		nowNanos:   func() int64 { return time.Now().UnixNano() },
	}
}

// Process returns the tracer's process label.
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	f := t.nowNanos
	t.mu.Unlock()
	return f()
}

// splitmix64 is the SplitMix64 finalizer: a cheap 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextRand draws the next id-stream value. Caller holds mu.
func (t *Tracer) nextRand() uint64 {
	t.idSeq++
	v := splitmix64(t.idBase + t.idSeq)
	if v == 0 {
		v = 1
	}
	return v
}

// Start opens a span named name, child of the span in ctx if any, and
// returns a context carrying the new span. A span with no parent roots a
// fresh trace and makes the head-based sampling decision for everything
// beneath it, across processes. Nil-safe.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return t.StartAt(ctx, name, 0)
}

// StartAt is Start with an explicit start time (UnixNano; 0 means now) —
// for servers that learn the trace context only after work that should
// be inside the span (e.g. decoding the request that carries it).
func (t *Tracer) StartAt(ctx context.Context, name string, startNanos int64) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	parent, hasParent := SpanContextFromContext(ctx)
	t.mu.Lock()
	id := t.nextRand()
	var sc SpanContext
	if hasParent && !parent.Trace.IsZero() {
		sc = SpanContext{Trace: parent.Trace, Span: id, Sampled: parent.Sampled}
	} else {
		trace := TraceID{Hi: t.nextRand(), Lo: t.nextRand()}
		sampled := true
		if t.sampleRate > 0 && t.sampleRate < 1 {
			sampled = float64(t.nextRand()>>11)/float64(1<<53) < t.sampleRate
		}
		sc = SpanContext{Trace: trace, Span: id, Sampled: sampled}
	}
	start := startNanos
	if start == 0 {
		start = t.nowNanos()
	}
	process := t.process
	t.mu.Unlock()
	a := &ActiveSpan{t: t, sampled: sc.Sampled, span: Span{
		Trace:   sc.Trace,
		ID:      id,
		Parent:  parent.Span,
		Name:    name,
		Process: process,
		Start:   start,
	}}
	return ContextWithSpanContext(ctx, sc), a
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	var hook func(uint64)
	if len(t.spans) >= t.cap {
		t.spans = t.spans[1:]
		t.dropped++
		hook = t.onDrop
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	if hook != nil {
		hook(1)
	}
}

// Spans returns the finished spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many finished spans the ring evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Children returns the finished spans whose parent is id, oldest first.
func (t *Tracer) Children(id uint64) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// Roots returns the finished spans with no parent, oldest first.
func (t *Tracer) Roots() []Span { return t.Children(0) }

// Find returns the newest finished span with the given name.
func (t *Tracer) Find(name string) (Span, bool) {
	spans := t.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Name == name {
			return spans[i], true
		}
	}
	return Span{}, false
}
