package introspect

import (
	"context"
	"sync"
	"time"
)

// Span is one finished operation: identity, parentage, timing and error.
// Parent is 0 for root spans.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  int64 // UnixNano
	End    int64 // UnixNano
	Err    string
}

// DurationSeconds returns the span's wall time.
func (s Span) DurationSeconds() float64 {
	return float64(s.End-s.Start) / 1e9
}

type spanCtxKey struct{}

// SpanIDFromContext returns the active span id carried by ctx, 0 if none.
func SpanIDFromContext(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanCtxKey{}).(uint64)
	return id
}

// ActiveSpan is an open span; End closes it into the tracer's ring.
// Nil-safe: methods on a nil *ActiveSpan are no-ops.
type ActiveSpan struct {
	t    *Tracer
	span Span
	done bool
}

// ID returns the span id (0 on nil).
func (a *ActiveSpan) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// End closes the span, recording err (if any). Idempotent.
func (a *ActiveSpan) End(err error) {
	if a == nil || a.done {
		return
	}
	a.done = true
	a.span.End = a.t.now()
	if err != nil {
		a.span.Err = err.Error()
	}
	a.t.record(a.span)
}

// Tracer allocates span ids and keeps finished spans in a bounded ring.
// All methods are safe for concurrent use and on a nil receiver.
type Tracer struct {
	mu      sync.Mutex
	nextID  uint64
	cap     int
	spans   []Span // ring, oldest first
	dropped uint64

	// nowNanos is swappable for deterministic tests.
	nowNanos func() int64
}

// NewTracer builds a tracer keeping at most capacity finished spans
// (DefaultSpanCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{cap: capacity, nowNanos: func() int64 { return time.Now().UnixNano() }}
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	f := t.nowNanos
	t.mu.Unlock()
	return f()
}

// Start opens a span named name, child of the span in ctx if any, and
// returns a context carrying the new span. Nil-safe.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	start := t.nowNanos()
	t.mu.Unlock()
	a := &ActiveSpan{t: t, span: Span{
		ID:     id,
		Parent: SpanIDFromContext(ctx),
		Name:   name,
		Start:  start,
	}}
	return context.WithValue(ctx, spanCtxKey{}, id), a
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.spans = t.spans[1:]
		t.dropped++
	}
	t.spans = append(t.spans, s)
}

// Spans returns the finished spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many finished spans the ring evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Children returns the finished spans whose parent is id, oldest first.
func (t *Tracer) Children(id uint64) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// Roots returns the finished spans with no parent, oldest first.
func (t *Tracer) Roots() []Span { return t.Children(0) }

// Find returns the newest finished span with the given name.
func (t *Tracer) Find(name string) (Span, bool) {
	spans := t.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Name == name {
			return spans[i], true
		}
	}
	return Span{}, false
}
