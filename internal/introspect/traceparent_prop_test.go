package introspect

import "testing"

// propRNG is a self-contained splitmix64 so the property tests stay
// seeded and deterministic without importing the resilience package
// (which imports introspect).
type propRNG struct{ s uint64 }

func (r *propRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestTraceparentFormatParseProperty drives 1000 seeded random span
// contexts through the wire form and back: Format/Parse must be an exact
// identity for every valid context, including extreme ids. This is the
// property the cross-process span-parenting protocol rests on.
func TestTraceparentFormatParseProperty(t *testing.T) {
	rng := &propRNG{s: 0x7e57ca5e}
	for i := 0; i < 1000; i++ {
		sc := SpanContext{
			Trace:   TraceID{Hi: rng.next(), Lo: rng.next()},
			Span:    rng.next(),
			Sampled: rng.next()&1 == 1,
		}
		// Bias some cases onto the edges the RNG all but never hits.
		switch i {
		case 0:
			sc.Trace = TraceID{Hi: 0, Lo: 1}
		case 1:
			sc.Trace = TraceID{Hi: ^uint64(0), Lo: ^uint64(0)}
			sc.Span = ^uint64(0)
		case 2:
			sc.Span = 1
		}
		if sc.Span == 0 {
			sc.Span = 1 // zero span ids are invalid by contract
		}
		wire := FormatTraceparent(sc)
		got, ok := ParseTraceparent(wire)
		if !ok {
			t.Fatalf("case %d: own wire form %q rejected", i, wire)
		}
		if got != sc {
			t.Fatalf("case %d: round trip changed context: %+v -> %q -> %+v", i, sc, wire, got)
		}
		// The wire form must also survive frame tagging.
		cut, rest, tagged := CutWireField(WireField + wire + " payload")
		if !tagged || cut != sc || rest != "payload" {
			t.Fatalf("case %d: wire-field cut broke: tagged=%v cut=%+v rest=%q", i, tagged, cut, rest)
		}
	}
}

// TestTraceparentRejectsCorruption pins that single-character corruption
// of a valid wire form never yields a *different* valid context with the
// same trace id but wrong span, and truncations never parse.
func TestTraceparentRejectsCorruption(t *testing.T) {
	sc := SpanContext{Trace: TraceID{Hi: 0xdead, Lo: 0xbeef}, Span: 0xcafe, Sampled: true}
	wire := FormatTraceparent(sc)
	for cut := 0; cut < len(wire); cut++ {
		if got, ok := ParseTraceparent(wire[:cut]); ok {
			t.Fatalf("truncation %q parsed as %+v", wire[:cut], got)
		}
	}
}
