package introspect

import (
	"context"
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers every metric kind from many goroutines;
// run under -race this is the registry's safety proof, and the final
// counts are its linearizability check.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops.total").Inc()
				r.Counter("ops.batch").Add(3)
				r.Gauge("inflight").Add(1)
				r.Gauge("inflight").Add(-1)
				r.Histogram("latency").Observe(float64(i%7) * 1e-4)
			}
		}(w)
	}
	wg.Wait()

	const n = workers * perWorker
	if got := r.Counter("ops.total").Load(); got != n {
		t.Errorf("ops.total = %d, want %d", got, n)
	}
	if got := r.Counter("ops.batch").Load(); got != 3*n {
		t.Errorf("ops.batch = %d, want %d", got, 3*n)
	}
	if got := r.Gauge("inflight").Load(); got != 0 {
		t.Errorf("inflight = %g, want 0", got)
	}
	h := r.Histogram("latency")
	if h.Count() != n {
		t.Errorf("histogram count = %d, want %d", h.Count(), n)
	}
	var bucketSum uint64
	snap := r.Snapshot()
	m, ok := snap.Get("latency")
	if !ok || m.Kind != KindHistogram {
		t.Fatalf("latency histogram missing from snapshot: %+v", m)
	}
	for _, b := range m.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != n {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, n)
	}
	if !math.IsInf(m.Buckets[len(m.Buckets)-1].LE, 1) {
		t.Error("last bucket is not +Inf")
	}
}

// TestSnapshotDelta checks counter/histogram subtraction and gauge
// pass-through semantics.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(5)
	r.Histogram("h", 1, 10).Observe(0.5)
	before := r.Snapshot()

	r.Counter("c").Add(7)
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(100)
	r.Counter("fresh").Inc()
	after := r.Snapshot()

	d := after.Delta(before)
	if got := d.CounterValue("c"); got != 7 {
		t.Errorf("delta counter c = %d, want 7", got)
	}
	if got := d.GaugeValue("g"); got != 2 {
		t.Errorf("delta gauge g = %g, want current value 2", got)
	}
	if got := d.CounterValue("fresh"); got != 1 {
		t.Errorf("delta counter fresh = %d, want 1", got)
	}
	h, ok := d.Get("h")
	if !ok || h.Count != 1 || h.Sum != 100 {
		t.Errorf("delta histogram h = %+v, want count 1 sum 100", h)
	}
	// The 100 landed in the +Inf bucket; the 0.5 from before cancels.
	if last := h.Buckets[len(h.Buckets)-1]; last.Count != 1 {
		t.Errorf("delta +Inf bucket = %d, want 1", last.Count)
	}
	if first := h.Buckets[0]; first.Count != 0 {
		t.Errorf("delta first bucket = %d, want 0", first.Count)
	}
}

// TestNilSafety proves disabled introspection costs no conditionals at
// call sites: every method on nil receivers is a no-op.
func TestNilSafety(t *testing.T) {
	var in *Introspector
	if in.Enabled() {
		t.Fatal("nil introspector reports enabled")
	}
	reg := in.Metrics()
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z").Observe(1)
	if got := reg.Counter("x").Load(); got != 0 {
		t.Errorf("nil registry counter = %d", got)
	}
	if snap := in.Snapshot(); len(snap.Metrics) != 0 {
		t.Errorf("nil snapshot has %d metrics", len(snap.Metrics))
	}
	ctx, span := in.StartSpan(context.Background(), "op")
	if ctx == nil {
		t.Fatal("nil StartSpan dropped the context")
	}
	span.End(nil) // must not panic
	var tr *Tracer
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer not empty")
	}
}
