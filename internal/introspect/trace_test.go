package introspect

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fixedClock installs a deterministic nanosecond clock on a tracer.
func fixedClock(t *Tracer) *int64 {
	var now int64
	t.nowNanos = func() int64 { now += 1000; return now }
	return &now
}

// TestSpanTree builds a three-level operation and asserts the recorded
// parent links reconstruct it.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(16)
	fixedClock(tr)
	ctx := context.Background()

	ctx1, op := tr.Start(ctx, "daemon.monitor")
	ctx2, sess := tr.Start(ctx1, "telemetry.session")
	_, write := tr.Start(ctx2, "tsdb.write")
	write.End(nil)
	_, replay := tr.Start(ctx2, "telemetry.replay")
	replay.End(errors.New("sink down"))
	sess.End(nil)
	op.End(nil)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("finished spans = %d, want 4", len(spans))
	}
	root, ok := tr.Find("daemon.monitor")
	if !ok || root.Parent != 0 {
		t.Fatalf("root span: %+v", root)
	}
	kids := tr.Children(root.ID)
	if len(kids) != 1 || kids[0].Name != "telemetry.session" {
		t.Fatalf("root children: %+v", kids)
	}
	grand := tr.Children(kids[0].ID)
	if len(grand) != 2 {
		t.Fatalf("session children: %+v", grand)
	}
	names := map[string]bool{}
	for _, s := range grand {
		names[s.Name] = true
	}
	if !names["tsdb.write"] || !names["telemetry.replay"] {
		t.Errorf("session children names: %v", names)
	}
	rep, _ := tr.Find("telemetry.replay")
	if rep.Err != "sink down" {
		t.Errorf("replay err = %q", rep.Err)
	}
	if root.End <= root.Start {
		t.Error("root span has no duration")
	}
	if root.DurationSeconds() <= 0 {
		t.Error("DurationSeconds not positive")
	}
}

// TestTracerRing checks the bounded ring drops oldest and counts drops.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	fixedClock(tr)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("s%d", i))
		s.End(nil)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d, want 3", len(spans))
	}
	if spans[0].Name != "s2" || spans[2].Name != "s4" {
		t.Errorf("ring contents: %v", spans)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

// TestTracerConcurrent opens and closes spans from many goroutines; with
// -race this is the tracer's safety proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, parent := tr.Start(context.Background(), "parent")
				_, child := tr.Start(ctx, "child")
				child.End(nil)
				parent.End(nil)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 128 {
		t.Errorf("ring holds %d, want cap 128", got)
	}
	if tr.Dropped() != 8*200*2-128 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 8*200*2-128)
	}
	// Every child in the ring must reference a parent id lower than its own.
	for _, s := range tr.Spans() {
		if s.Name == "child" && s.Parent == 0 {
			t.Error("child span lost its parent link")
		}
	}
}

// TestTraceparentRoundTrip formats and reparses a span context through
// the wire form, including the leading frame token.
func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: TraceID{Hi: 0xdeadbeef, Lo: 42}, Span: 7, Sampled: true}
	tp := FormatTraceparent(sc)
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip %q -> %+v ok=%v, want %+v", tp, got, ok, sc)
	}

	// Unsampled contexts propagate with flag 00.
	sc.Sampled = false
	got, ok = ParseTraceparent(FormatTraceparent(sc))
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: %+v ok=%v", got, ok)
	}

	body := WireField + tp + " cpu,host=a usage=1"
	cut, rest, tagged := CutWireField(body)
	if !tagged || rest != "cpu,host=a usage=1" {
		t.Fatalf("CutWireField: tagged=%v rest=%q", tagged, rest)
	}
	if cut.Trace != (TraceID{Hi: 0xdeadbeef, Lo: 42}) || cut.Span != 7 {
		t.Fatalf("CutWireField context: %+v", cut)
	}
}

// TestTraceparentMalformed checks truncated or garbled traceparent values
// (a frame cut by a mid-write partition) parse not-ok instead of yielding
// a bogus parent, and that a malformed wire token is stripped from the
// payload rather than corrupting it.
func TestTraceparentMalformed(t *testing.T) {
	tp := FormatTraceparent(SpanContext{Trace: TraceID{Lo: 1}, Span: 1, Sampled: true})
	bad := []string{
		"", "00", "xx-" + tp[3:], tp[:20], tp + "-extra",
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace
		"00-00000000000000000000000000000001-0000000000000000-01", // zero span
		"00-zz000000000000000000000000000001-0000000000000001-01",
	}
	for _, s := range bad {
		if sc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) = %+v, want not-ok", s, sc)
		}
	}
	sc, rest, tagged := CutWireField(WireField + tp[:20] + " cpu usage=1")
	if tagged || sc.Valid() {
		t.Errorf("malformed token reported tagged: %+v", sc)
	}
	if rest != "cpu usage=1" {
		t.Errorf("malformed token not stripped: rest=%q", rest)
	}
	if _, rest, tagged := CutWireField("cpu usage=1"); tagged || rest != "cpu usage=1" {
		t.Errorf("untagged frame altered: rest=%q tagged=%v", rest, tagged)
	}
}

// TestRemoteParenting simulates the cross-process hop: a client tracer's
// context crosses the wire as a traceparent and a second tracer's server
// span must join the same trace under the client span.
func TestRemoteParenting(t *testing.T) {
	client := NewTracerWith(TracerConfig{Capacity: 16, Process: "client", Seed: 1})
	server := NewTracerWith(TracerConfig{Capacity: 16, Process: "server", Seed: 2})
	fixedClock(client)
	fixedClock(server)

	ctx, op := client.Start(context.Background(), "client.write")
	wire := TraceparentFromContext(ctx)
	if wire == "" {
		t.Fatal("no traceparent from client context")
	}

	remote, ok := ParseTraceparent(wire)
	if !ok {
		t.Fatalf("server failed to parse %q", wire)
	}
	sctx := ContextWithSpanContext(context.Background(), remote)
	_, srv := server.StartAt(sctx, "server.insert", 0)
	srv.End(nil)
	op.End(nil)

	cs, _ := client.Find("client.write")
	ss, _ := server.Find("server.insert")
	if ss.Trace != cs.Trace {
		t.Errorf("trace ids differ: client %v server %v", cs.Trace, ss.Trace)
	}
	if ss.Parent != cs.ID {
		t.Errorf("server span parent = %d, want client span %d", ss.Parent, cs.ID)
	}
	if cs.Process != "client" || ss.Process != "server" {
		t.Errorf("process labels: %q / %q", cs.Process, ss.Process)
	}
	if cs.ID == ss.ID {
		t.Error("span ids collide across processes")
	}
}

// TestSpanIDUniqueness draws ids from two seeded tracers and checks no
// collisions — the property multi-process trace assembly relies on.
func TestSpanIDUniqueness(t *testing.T) {
	a := NewTracerWith(TracerConfig{Capacity: 4096, Seed: 100})
	b := NewTracerWith(TracerConfig{Capacity: 4096, Seed: 200})
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			_, s := tr.Start(context.Background(), "x")
			if seen[s.ID()] {
				t.Fatalf("span id %d repeated at draw %d", s.ID(), i)
			}
			seen[s.ID()] = true
			s.End(nil)
		}
	}
}

// TestSampling checks the head decision: at rate 0.5 roughly half the
// root traces record, children inherit the decision, and errored spans
// are recorded even when unsampled.
func TestSampling(t *testing.T) {
	tr := NewTracerWith(TracerConfig{Capacity: 8192, SampleRate: 0.5, Seed: 7})
	fixedClock(tr)
	const n = 1000
	for i := 0; i < n; i++ {
		ctx, root := tr.Start(context.Background(), "root")
		_, child := tr.Start(ctx, "child")
		child.End(nil)
		root.End(nil)
	}
	roots, children := 0, 0
	for _, s := range tr.Spans() {
		switch s.Name {
		case "root":
			roots++
		case "child":
			children++
		}
	}
	if roots != children {
		t.Errorf("children (%d) did not inherit the root decision (%d roots)", children, roots)
	}
	if roots < n/4 || roots > 3*n/4 {
		t.Errorf("sampled %d/%d roots at rate 0.5", roots, n)
	}

	// Always-on-error: an unsampled trace's failing span still records.
	errTr := NewTracerWith(TracerConfig{Capacity: 64, SampleRate: 1e-9, Seed: 3})
	fixedClock(errTr)
	for i := 0; i < 50; i++ {
		ctx, root := errTr.Start(context.Background(), "root")
		_, child := errTr.Start(ctx, "child")
		child.End(errors.New("boom"))
		root.End(nil)
	}
	got := errTr.Spans()
	if len(got) == 0 {
		t.Fatal("errored spans of unsampled traces were discarded")
	}
	for _, s := range got {
		if s.Err == "" {
			t.Fatalf("non-errored span %q recorded despite unsampled trace", s.Name)
		}
	}
}

// TestDroppedSpanCounter checks ring evictions surface as the
// trace.dropped self metric when the tracer is built via New.
func TestDroppedSpanCounter(t *testing.T) {
	in := New(WithSpanCapacity(2))
	for i := 0; i < 5; i++ {
		_, s := in.StartSpan(context.Background(), fmt.Sprintf("s%d", i))
		s.End(nil)
	}
	if got := in.Tracer().Dropped(); got != 3 {
		t.Fatalf("tracer dropped = %d, want 3", got)
	}
	if got := in.Snapshot().CounterValue(DroppedSpansMetric); got != 3 {
		t.Errorf("%s counter = %d, want 3", DroppedSpansMetric, got)
	}
}

// TestStartAtBackdates checks a server span opened after decode covers
// the pre-decode work via an explicit start time.
func TestStartAtBackdates(t *testing.T) {
	tr := NewTracer(8)
	now := fixedClock(tr)
	*now = 5000
	_, s := tr.StartAt(context.Background(), "server.op", 2000)
	s.End(nil)
	got, _ := tr.Find("server.op")
	if got.Start != 2000 {
		t.Errorf("backdated start = %d, want 2000", got.Start)
	}
	if got.End <= got.Start {
		t.Errorf("span end %d not after start", got.End)
	}
}
