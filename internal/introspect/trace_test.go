package introspect

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fixedClock installs a deterministic nanosecond clock on a tracer.
func fixedClock(t *Tracer) *int64 {
	var now int64
	t.nowNanos = func() int64 { now += 1000; return now }
	return &now
}

// TestSpanTree builds a three-level operation and asserts the recorded
// parent links reconstruct it.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(16)
	fixedClock(tr)
	ctx := context.Background()

	ctx1, op := tr.Start(ctx, "daemon.monitor")
	ctx2, sess := tr.Start(ctx1, "telemetry.session")
	_, write := tr.Start(ctx2, "tsdb.write")
	write.End(nil)
	_, replay := tr.Start(ctx2, "telemetry.replay")
	replay.End(errors.New("sink down"))
	sess.End(nil)
	op.End(nil)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("finished spans = %d, want 4", len(spans))
	}
	root, ok := tr.Find("daemon.monitor")
	if !ok || root.Parent != 0 {
		t.Fatalf("root span: %+v", root)
	}
	kids := tr.Children(root.ID)
	if len(kids) != 1 || kids[0].Name != "telemetry.session" {
		t.Fatalf("root children: %+v", kids)
	}
	grand := tr.Children(kids[0].ID)
	if len(grand) != 2 {
		t.Fatalf("session children: %+v", grand)
	}
	names := map[string]bool{}
	for _, s := range grand {
		names[s.Name] = true
	}
	if !names["tsdb.write"] || !names["telemetry.replay"] {
		t.Errorf("session children names: %v", names)
	}
	rep, _ := tr.Find("telemetry.replay")
	if rep.Err != "sink down" {
		t.Errorf("replay err = %q", rep.Err)
	}
	if root.End <= root.Start {
		t.Error("root span has no duration")
	}
	if root.DurationSeconds() <= 0 {
		t.Error("DurationSeconds not positive")
	}
}

// TestTracerRing checks the bounded ring drops oldest and counts drops.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	fixedClock(tr)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("s%d", i))
		s.End(nil)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d, want 3", len(spans))
	}
	if spans[0].Name != "s2" || spans[2].Name != "s4" {
		t.Errorf("ring contents: %v", spans)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

// TestTracerConcurrent opens and closes spans from many goroutines; with
// -race this is the tracer's safety proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, parent := tr.Start(context.Background(), "parent")
				_, child := tr.Start(ctx, "child")
				child.End(nil)
				parent.End(nil)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 128 {
		t.Errorf("ring holds %d, want cap 128", got)
	}
	if tr.Dropped() != 8*200*2-128 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 8*200*2-128)
	}
	// Every child in the ring must reference a parent id lower than its own.
	for _, s := range tr.Spans() {
		if s.Name == "child" && s.Parent == 0 {
			t.Error("child span lost its parent link")
		}
	}
}
