// Package logbuf is the bounded structured log ring behind the
// observability plane: every component of the daemon (telemetry
// pipeline, resilience transports, wire servers) appends leveled,
// key/value-structured records that carry the ambient trace identity
// pulled from the context, so a log line and the span it happened under
// join on the same 128-bit TraceID.
//
// The ring is lock-free-ish: a single atomic sequence counter allocates
// slots, and each slot has its own mutex, so concurrent writers only
// contend when they land on the same slot (i.e. when the ring has
// wrapped a full capacity between them). Readers snapshot slot by slot
// and order by sequence number; a record overwritten mid-snapshot is
// simply absent, never torn.
package logbuf

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmove/internal/introspect"
)

// Level orders record severities.
type Level int32

// Severities, lowest first.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String renders the conventional lowercase name.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "unknown"
	}
}

// ParseLevel maps a level name (case-insensitive) back to its Level.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(s) {
	case "debug":
		return Debug, true
	case "info":
		return Info, true
	case "warn", "warning":
		return Warn, true
	case "error":
		return Error, true
	}
	return Info, false
}

// Field is one key/value pair attached to a record.
type Field struct {
	Key   string
	Value string
}

// Record is one structured log event. Trace and Span are the ambient
// identity from the context the record was logged under; both are zero
// for untraced events.
type Record struct {
	// Seq is the global, monotonically increasing record number. Gaps in
	// a snapshot mean the ring evicted records between them.
	Seq       uint64
	Time      time.Time
	Level     Level
	Component string
	Msg       string
	Trace     introspect.TraceID
	Span      uint64
	Fields    []Field
}

// slot is one ring cell. The per-slot mutex keeps reads untorn without
// serializing writers that land on different slots.
type slot struct {
	mu  sync.Mutex
	set bool
	rec Record
}

// Logger is the bounded ring. The zero value and nil are both safe:
// every method is a no-op (or returns empty) so call sites never guard.
// Component-scoped children from With share the parent's ring.
type Logger struct {
	ring      []slot
	seq       atomic.Uint64 // next sequence number to allocate
	dropped   atomic.Uint64 // records evicted by wrap-around
	minLevel  atomic.Int32
	component string
	parent    *Logger // nil on root loggers; children share the root's counters
}

// DefaultCapacity bounds the ring when New is given a non-positive
// capacity.
const DefaultCapacity = 4096

// New returns a ring holding up to capacity records; older records are
// evicted as new ones arrive.
func New(capacity int) *Logger {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Logger{ring: make([]slot, capacity)}
}

// With returns a child logger stamping component onto every record. The
// child shares the parent's ring, level, and sequence space.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{ring: l.ring, component: component, parent: l.root()}
}

// root returns the logger owning the shared counters.
func (l *Logger) root() *Logger {
	if l.parent != nil {
		return l.parent
	}
	return l
}

// SetMinLevel drops records below min at append time. Applies ring-wide,
// including records from component children.
func (l *Logger) SetMinLevel(min Level) {
	if l == nil {
		return
	}
	l.root().minLevel.Store(int32(min))
}

// Enabled reports whether records at level survive the ring-wide filter.
func (l *Logger) Enabled(level Level) bool {
	if l == nil || len(l.root().ring) == 0 {
		return false
	}
	return int32(level) >= l.root().minLevel.Load()
}

// Dropped counts records evicted by ring wrap-around since creation.
func (l *Logger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.root().dropped.Load()
}

// Log appends one record, pulling the trace identity from ctx. kv is
// alternating key, value strings; a trailing key without a value gets
// "". Nil loggers and filtered levels are free no-ops.
func (l *Logger) Log(ctx context.Context, level Level, msg string, kv ...string) {
	if !l.Enabled(level) {
		return
	}
	r := l.root()
	rec := Record{
		Time:      time.Now(),
		Level:     level,
		Component: l.component,
		Msg:       msg,
	}
	if sc, ok := introspect.SpanContextFromContext(ctx); ok && sc.Valid() {
		rec.Trace = sc.Trace
		rec.Span = sc.Span
	}
	if len(kv) > 0 {
		rec.Fields = make([]Field, 0, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			f := Field{Key: kv[i]}
			if i+1 < len(kv) {
				f.Value = kv[i+1]
			}
			rec.Fields = append(rec.Fields, f)
		}
	}
	seq := r.seq.Add(1) - 1
	rec.Seq = seq
	s := &r.ring[seq%uint64(len(r.ring))]
	s.mu.Lock()
	if s.set {
		r.dropped.Add(1)
	}
	s.set = true
	s.rec = rec
	s.mu.Unlock()
}

// Debug logs at Debug level.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...string) {
	l.Log(ctx, Debug, msg, kv...)
}

// Info logs at Info level.
func (l *Logger) Info(ctx context.Context, msg string, kv ...string) {
	l.Log(ctx, Info, msg, kv...)
}

// Warn logs at Warn level.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...string) {
	l.Log(ctx, Warn, msg, kv...)
}

// Error logs at Error level.
func (l *Logger) Error(ctx context.Context, msg string, kv ...string) {
	l.Log(ctx, Error, msg, kv...)
}

// Records snapshots the ring in sequence order, oldest first. The
// snapshot is consistent per record (never torn) but not across the
// ring: records appended or evicted while snapshotting may or may not
// appear.
func (l *Logger) Records() []Record {
	return l.Filter(Query{})
}

// Query filters a Records snapshot. Zero values match everything.
type Query struct {
	// MinLevel keeps records at or above this level.
	MinLevel Level
	// Trace, when nonzero, keeps only records of that trace.
	Trace introspect.TraceID
	// Component, when non-empty, keeps only that component's records.
	Component string
	// Limit, when positive, keeps only the newest that many records
	// after the other filters.
	Limit int
}

// Filter snapshots the ring and applies q, returning matching records
// oldest first.
func (l *Logger) Filter(q Query) []Record {
	if l == nil {
		return nil
	}
	r := l.root()
	if len(r.ring) == 0 {
		return nil
	}
	out := make([]Record, 0, len(r.ring))
	for i := range r.ring {
		s := &r.ring[i]
		s.mu.Lock()
		ok := s.set
		rec := s.rec
		s.mu.Unlock()
		if !ok || rec.Level < q.MinLevel {
			continue
		}
		if !q.Trace.IsZero() && rec.Trace != q.Trace {
			continue
		}
		if q.Component != "" && rec.Component != q.Component {
			continue
		}
		out = append(out, rec)
	}
	sortRecords(out)
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// sortRecords orders by sequence number (insertion sort: snapshots come
// out of the ring nearly sorted already — at most one rotation).
func sortRecords(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Seq < recs[j-1].Seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
