package logbuf

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pmove/internal/introspect"
)

func TestNilAndZeroSafe(t *testing.T) {
	var l *Logger
	l.Info(context.Background(), "ignored")
	l.SetMinLevel(Debug)
	if l.With("x") != nil {
		t.Fatal("nil.With should stay nil")
	}
	if got := l.Records(); got != nil {
		t.Fatalf("nil.Records = %v, want nil", got)
	}
	if l.Dropped() != 0 || l.Enabled(Error) {
		t.Fatal("nil logger must report empty state")
	}

	var zero Logger
	zero.Info(context.Background(), "ignored")
	if got := zero.Records(); len(got) != 0 {
		t.Fatalf("zero-value Records = %v, want empty", got)
	}
}

func TestAppendOrderAndFields(t *testing.T) {
	l := New(8)
	ctx := context.Background()
	l.Info(ctx, "first", "k", "v")
	l.Warn(ctx, "second", "a", "1", "b", "2")
	l.Error(ctx, "third", "dangling")

	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, want := range []string{"first", "second", "third"} {
		if recs[i].Msg != want {
			t.Fatalf("recs[%d].Msg = %q, want %q", i, recs[i].Msg, want)
		}
	}
	if recs[0].Seq >= recs[1].Seq || recs[1].Seq >= recs[2].Seq {
		t.Fatalf("sequence numbers not increasing: %d %d %d", recs[0].Seq, recs[1].Seq, recs[2].Seq)
	}
	if len(recs[1].Fields) != 2 || recs[1].Fields[1] != (Field{Key: "b", Value: "2"}) {
		t.Fatalf("fields = %v", recs[1].Fields)
	}
	// A trailing key without a value still lands, with an empty value.
	if len(recs[2].Fields) != 1 || recs[2].Fields[0] != (Field{Key: "dangling"}) {
		t.Fatalf("dangling field = %v", recs[2].Fields)
	}
}

func TestEvictionKeepsNewest(t *testing.T) {
	l := New(4)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		l.Info(ctx, fmt.Sprintf("m%d", i))
	}
	recs := l.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want ring capacity 4", len(recs))
	}
	for i, want := range []string{"m6", "m7", "m8", "m9"} {
		if recs[i].Msg != want {
			t.Fatalf("recs[%d].Msg = %q, want %q", i, recs[i].Msg, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
}

func TestMinLevelFilter(t *testing.T) {
	l := New(8)
	l.SetMinLevel(Warn)
	ctx := context.Background()
	l.Debug(ctx, "d")
	l.Info(ctx, "i")
	l.Warn(ctx, "w")
	l.Error(ctx, "e")
	recs := l.Records()
	if len(recs) != 2 || recs[0].Msg != "w" || recs[1].Msg != "e" {
		t.Fatalf("records = %+v, want only w and e", recs)
	}
	if l.Enabled(Info) || !l.Enabled(Warn) {
		t.Fatal("Enabled disagrees with SetMinLevel")
	}
}

func TestTraceFromContext(t *testing.T) {
	l := New(8)
	sc := introspect.SpanContext{
		Trace:   introspect.TraceID{Hi: 0xdead, Lo: 0xbeef},
		Span:    42,
		Sampled: true,
	}
	ctx := introspect.ContextWithSpanContext(context.Background(), sc)
	l.Info(ctx, "traced")
	l.Info(context.Background(), "untraced")

	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Trace != sc.Trace || recs[0].Span != 42 {
		t.Fatalf("traced record = %+v", recs[0])
	}
	if !recs[1].Trace.IsZero() || recs[1].Span != 0 {
		t.Fatalf("untraced record carries identity: %+v", recs[1])
	}
}

func TestFilterQuery(t *testing.T) {
	l := New(32)
	tr := introspect.TraceID{Hi: 1, Lo: 2}
	ctx := introspect.ContextWithSpanContext(context.Background(),
		introspect.SpanContext{Trace: tr, Span: 7, Sampled: true})
	a := l.With("alpha")
	b := l.With("beta")
	a.Info(ctx, "a1")
	b.Warn(context.Background(), "b1")
	a.Error(ctx, "a2")
	b.Info(ctx, "b2")

	if got := l.Filter(Query{Component: "alpha"}); len(got) != 2 {
		t.Fatalf("component filter: got %d, want 2", len(got))
	}
	if got := l.Filter(Query{Trace: tr}); len(got) != 3 {
		t.Fatalf("trace filter: got %d, want 3", len(got))
	}
	if got := l.Filter(Query{MinLevel: Warn}); len(got) != 2 {
		t.Fatalf("level filter: got %d, want 2", len(got))
	}
	got := l.Filter(Query{Limit: 2})
	if len(got) != 2 || got[0].Msg != "a2" || got[1].Msg != "b2" {
		t.Fatalf("limit filter kept %+v, want newest two", got)
	}
	combined := l.Filter(Query{Trace: tr, Component: "beta"})
	if len(combined) != 1 || combined[0].Msg != "b2" {
		t.Fatalf("combined filter = %+v", combined)
	}
}

// TestConcurrentWritersReaders hammers a tiny ring with parallel writers
// (forcing constant eviction) and parallel readers, under -race. The
// assertions are structural: every snapshotted record is intact (its
// message matches the writer that owns its component) and in sequence
// order.
func TestConcurrentWritersReaders(t *testing.T) {
	l := New(16) // tiny: writers wrap the ring thousands of times
	const writers, perWriter, readers = 8, 2000, 4

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With(fmt.Sprintf("w%d", w))
			ctx := introspect.ContextWithSpanContext(context.Background(),
				introspect.SpanContext{
					Trace:   introspect.TraceID{Hi: uint64(w + 1), Lo: 1},
					Span:    uint64(w + 1),
					Sampled: true,
				})
			for i := 0; i < perWriter; i++ {
				child.Info(ctx, fmt.Sprintf("w%d-%d", w, i), "i", fmt.Sprint(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := l.Records()
				for i, rec := range recs {
					if i > 0 && rec.Seq <= recs[i-1].Seq {
						t.Errorf("snapshot out of order: seq %d after %d", rec.Seq, recs[i-1].Seq)
						return
					}
					// Torn-record check: component and message must agree.
					if rec.Component == "" || rec.Msg[:len(rec.Component)] != rec.Component {
						t.Errorf("torn record: component %q msg %q", rec.Component, rec.Msg)
						return
					}
					if rec.Trace.IsZero() {
						t.Errorf("record lost its trace identity: %+v", rec)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	total := writers * perWriter
	if dropped := l.Dropped(); dropped != uint64(total-16) {
		t.Fatalf("Dropped = %d, want %d", dropped, total-16)
	}
	recs := l.Records()
	if len(recs) != 16 {
		t.Fatalf("final snapshot has %d records, want 16", len(recs))
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": Debug, "INFO": Info, "Warn": Warn, "warning": Warn, "error": Error,
	}
	for in, want := range cases {
		got, ok := ParseLevel(in)
		if !ok || got != want {
			t.Fatalf("ParseLevel(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Fatal("ParseLevel accepted junk")
	}
	if Debug.String() != "debug" || Error.String() != "error" || Level(99).String() != "unknown" {
		t.Fatal("Level.String mismatch")
	}
}
