package traceexport

import (
	"fmt"
	"strings"
)

// waterfallWidth is the bar width of the text waterfall in cells.
const waterfallWidth = 32

// Waterfall renders an assembled trace as an indented text timeline:
// one row per span with its process, offset, duration and a bar showing
// where it sits inside the trace — the terminal-native cousin of the
// Chrome trace view.
func Waterfall(tr *Trace) string {
	if tr == nil || tr.Spans == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s · %d spans · %d process(es) · %.3fms\n",
		tr.ID, tr.Spans, len(tr.Processes()), tr.DurationSeconds()*1e3)
	total := tr.End - tr.Start
	if total <= 0 {
		total = 1
	}
	row := func(n *Node, depth int) {
		s := n.Span
		startCell := int(int64(waterfallWidth) * (s.Start - tr.Start) / total)
		endCell := int(int64(waterfallWidth) * (s.End - tr.Start) / total)
		if endCell <= startCell {
			endCell = startCell + 1
		}
		if endCell > waterfallWidth {
			endCell = waterfallWidth
		}
		bar := strings.Repeat(" ", startCell) +
			strings.Repeat("█", endCell-startCell) +
			strings.Repeat(" ", waterfallWidth-endCell)
		mark := ""
		if s.Err != "" {
			mark = "  ✗ " + s.Err
		}
		fmt.Fprintf(&b, "%-12s |%s| %8.3fms %s%s%s\n",
			truncate(s.Process, 12), bar, spanSeconds(s)*1e3,
			strings.Repeat("  ", depth), s.Name, mark)
	}
	for _, r := range tr.Roots {
		r.Walk(row)
	}
	if len(tr.Orphans) > 0 {
		fmt.Fprintf(&b, "orphaned subtrees (parent span not collected):\n")
		for _, o := range tr.Orphans {
			o.Walk(row)
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
