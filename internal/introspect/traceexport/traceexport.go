// Package traceexport assembles distributed traces from per-process
// span rings and exports them for humans and tools: a text waterfall, a
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing), and
// per-hop latency attribution fed back into the self-observability
// registry. It sits beside selfexport, below introspect's core, so the
// tracer itself stays import-free.
package traceexport

import (
	"sort"
	"sync"

	"pmove/internal/introspect"
)

// ProcessSpans is one process's contribution to trace assembly: a label
// and a snapshot of its tracer ring. Spans whose Process field is empty
// inherit the label, so rings recorded before the tracer learned its
// name still attribute correctly.
type ProcessSpans struct {
	Process string
	Spans   []introspect.Span
}

// Collector gathers span rings from the tracers of every process in a
// deployment (daemon, tsdb server, docdb server) and assembles them into
// traces. Safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	tracers []*introspect.Tracer
	labels  []string
	extra   []ProcessSpans
}

// NewCollector builds an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add registers a live tracer; Collect snapshots it each time. label is
// used for spans the tracer did not stamp with a process name.
func (c *Collector) Add(label string, t *introspect.Tracer) {
	if t == nil {
		return
	}
	c.mu.Lock()
	c.tracers = append(c.tracers, t)
	c.labels = append(c.labels, label)
	c.mu.Unlock()
}

// AddSpans registers an already-captured ring (e.g. spans shipped from a
// remote process).
func (c *Collector) AddSpans(ps ProcessSpans) {
	c.mu.Lock()
	c.extra = append(c.extra, ps)
	c.mu.Unlock()
}

// Collect snapshots every registered source into one flat span list,
// process labels filled in.
func (c *Collector) Collect() []introspect.Span {
	c.mu.Lock()
	sources := make([]ProcessSpans, 0, len(c.tracers)+len(c.extra))
	for i, t := range c.tracers {
		label := c.labels[i]
		if p := t.Process(); p != "" {
			label = p
		}
		sources = append(sources, ProcessSpans{Process: label, Spans: t.Spans()})
	}
	sources = append(sources, c.extra...)
	c.mu.Unlock()

	var out []introspect.Span
	for _, src := range sources {
		for _, s := range src.Spans {
			if s.Process == "" {
				s.Process = src.Process
			}
			out = append(out, s)
		}
	}
	return out
}

// Traces assembles everything collected so far, earliest trace first.
func (c *Collector) Traces() []*Trace { return Assemble(c.Collect()) }

// Trace returns the assembled trace with the given id, if collected.
func (c *Collector) Trace(id introspect.TraceID) (*Trace, bool) {
	return AssembleTrace(c.Collect(), id)
}

// Node is one span in an assembled trace tree, children sorted by start
// time.
type Node struct {
	Span     introspect.Span
	Children []*Node
}

// Walk visits the node and its subtree depth-first in start order.
func (n *Node) Walk(fn func(n *Node, depth int)) { n.walk(fn, 0) }

func (n *Node) walk(fn func(n *Node, depth int), depth int) {
	fn(n, depth)
	for _, ch := range n.Children {
		ch.walk(fn, depth+1)
	}
}

// Trace is one assembled distributed trace: the tree(s) of spans sharing
// a trace id. Roots are spans with no parent; Orphans are spans whose
// parent id was not collected (a ring overwrote it, or a process was not
// registered) — kept visible rather than silently dropped.
type Trace struct {
	ID      introspect.TraceID
	Roots   []*Node
	Orphans []*Node
	Spans   int
	Start   int64 // UnixNano of the earliest span start
	End     int64 // UnixNano of the latest span end
}

// DurationSeconds is the trace's wall-clock extent.
func (t *Trace) DurationSeconds() float64 { return float64(t.End-t.Start) / 1e9 }

// Processes returns the distinct process labels in the trace, sorted.
func (t *Trace) Processes() []string {
	seen := map[string]bool{}
	t.Walk(func(n *Node, _ int) { seen[n.Span.Process] = true })
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Walk visits every root and orphan subtree depth-first.
func (t *Trace) Walk(fn func(n *Node, depth int)) {
	for _, r := range t.Roots {
		r.Walk(fn)
	}
	for _, o := range t.Orphans {
		o.Walk(fn)
	}
}

// Find returns the first node (in walk order) whose span has the given
// name.
func (t *Trace) Find(name string) (*Node, bool) {
	var found *Node
	t.Walk(func(n *Node, _ int) {
		if found == nil && n.Span.Name == name {
			found = n
		}
	})
	return found, found != nil
}

// Assemble groups spans by trace id and stitches each group into a
// tree, linking children to parents across process boundaries via the
// span ids the traceparent wire field carried. Traces are returned
// earliest-start first; spans without a trace id (from pre-tracing
// rings) are ignored.
func Assemble(spans []introspect.Span) []*Trace {
	byTrace := map[introspect.TraceID][]introspect.Span{}
	for _, s := range spans {
		if s.Trace.IsZero() {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	var out []*Trace
	for id, group := range byTrace {
		out = append(out, assembleOne(id, group))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID.String() < out[j].ID.String()
	})
	return out
}

// AssembleTrace assembles just the spans of one trace id.
func AssembleTrace(spans []introspect.Span, id introspect.TraceID) (*Trace, bool) {
	var group []introspect.Span
	for _, s := range spans {
		if s.Trace == id {
			group = append(group, s)
		}
	}
	if len(group) == 0 {
		return nil, false
	}
	return assembleOne(id, group), true
}

func assembleOne(id introspect.TraceID, group []introspect.Span) *Trace {
	tr := &Trace{ID: id, Spans: len(group)}
	nodes := map[uint64]*Node{}
	for _, s := range group {
		nodes[s.ID] = &Node{Span: s}
		if tr.Start == 0 || s.Start < tr.Start {
			tr.Start = s.Start
		}
		if s.End > tr.End {
			tr.End = s.End
		}
	}
	for _, n := range nodes {
		switch parent := nodes[n.Span.Parent]; {
		case n.Span.Parent == 0:
			tr.Roots = append(tr.Roots, n)
		case parent != nil:
			parent.Children = append(parent.Children, n)
		default:
			tr.Orphans = append(tr.Orphans, n)
		}
	}
	byStart := func(ns []*Node) func(i, j int) bool {
		return func(i, j int) bool {
			if ns[i].Span.Start != ns[j].Span.Start {
				return ns[i].Span.Start < ns[j].Span.Start
			}
			return ns[i].Span.ID < ns[j].Span.ID
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, byStart(n.Children))
	}
	sort.Slice(tr.Roots, byStart(tr.Roots))
	sort.Slice(tr.Orphans, byStart(tr.Orphans))
	return tr
}
