package traceexport

import (
	"encoding/json"
	"fmt"
	"sort"
)

// chromeEvent is one Chrome trace-event (the Trace Event Format both
// chrome://tracing and Perfetto load). "X" complete events carry a
// start and duration in microseconds; "M" metadata events name the
// synthetic processes.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders an assembled trace as Chrome trace-event JSON.
// Each P-MoVE process becomes a synthetic pid (named by an "M" metadata
// event); spans become "X" complete events whose timestamps are
// normalized to the trace start, so the viewer's nesting mirrors the
// span tree hop by hop.
func ChromeTrace(tr *Trace) ([]byte, error) {
	if tr == nil || tr.Spans == 0 {
		return nil, fmt.Errorf("traceexport: empty trace")
	}
	pids := map[string]int{}
	var procs []string
	for _, p := range tr.Processes() {
		pids[p] = len(pids) + 1
		procs = append(procs, p)
	}
	var events []chromeEvent
	for _, p := range procs {
		name := p
		if name == "" {
			name = "(unlabeled)"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[p], Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	tr.Walk(func(n *Node, _ int) {
		s := n.Span
		args := map[string]any{
			"span":   fmt.Sprintf("%016x", s.ID),
			"parent": fmt.Sprintf("%016x", s.Parent),
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start-tr.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  pids[s.Process],
			Tid:  1,
			Args: args,
		})
	})
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph != events[j].Ph {
			return events[i].Ph == "M"
		}
		if events[i].Pid != events[j].Pid {
			return events[i].Pid < events[j].Pid
		}
		return events[i].Ts < events[j].Ts
	})
	return json.MarshalIndent(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
}
