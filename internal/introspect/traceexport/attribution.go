package traceexport

import (
	"context"
	"fmt"
	"strings"

	"pmove/internal/introspect"
	"pmove/internal/tsdb"
)

// Attribution splits a trace's wire time across the pipeline hops the
// paper's loss analysis cares about: where does a telemetry point's
// latency actually go. The components partition EndToEndSeconds — the
// total time inside transport.<name>.do spans — exactly by construction:
//
//	ClientQueue  time inside do but outside any attempt/backoff
//	             (breaker checks, lock waits, loop overhead)
//	Retry        backoff sleeps plus attempts that failed
//	Network      successful attempt time not covered by server spans
//	             (dial, wire transfer, serialization)
//	ServerParse  server-side decode of the frame
//	ServerInsert server-side storage work (insert/exec)
//	ServerQueue  server-side time outside parse/insert (queueing)
//
// Untraced servers contribute their whole round trip to Network.
type Attribution struct {
	EndToEndSeconds    float64
	ClientQueueSeconds float64
	NetworkSeconds     float64
	RetrySeconds       float64
	ServerParseSeconds float64
	ServerQueueSeconds float64
	ServerInsertSecs   float64
	Hops               int // transport.<name>.do spans attributed
}

// Sum adds the components back together; it differs from
// EndToEndSeconds only when clock anomalies forced clamping.
func (a Attribution) Sum() float64 {
	return a.ClientQueueSeconds + a.NetworkSeconds + a.RetrySeconds +
		a.ServerParseSeconds + a.ServerQueueSeconds + a.ServerInsertSecs
}

// String renders one line per component, for CLI output.
func (a Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "end-to-end wire time %.3fms across %d hops\n", a.EndToEndSeconds*1e3, a.Hops)
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"client queue", a.ClientQueueSeconds},
		{"network", a.NetworkSeconds},
		{"retry/backoff", a.RetrySeconds},
		{"server parse", a.ServerParseSeconds},
		{"server queue", a.ServerQueueSeconds},
		{"server insert", a.ServerInsertSecs},
	} {
		pct := 0.0
		if a.EndToEndSeconds > 0 {
			pct = 100 * row.v / a.EndToEndSeconds
		}
		fmt.Fprintf(&b, "  %-13s %9.3fms  %5.1f%%\n", row.name, row.v*1e3, pct)
	}
	return b.String()
}

func spanSeconds(s introspect.Span) float64 {
	d := s.DurationSeconds()
	if d < 0 {
		return 0
	}
	return d
}

func isServerSpan(name string) bool { return strings.Contains(name, ".server.") }

// Attribute computes per-hop latency attribution over an assembled
// trace. Each transport.<name>.do span is partitioned among its
// attempt/backoff children and, through the traceparent link, the server
// spans nested under each attempt; nested durations are clamped into
// their parents so the components always sum back to the measured
// end-to-end time.
func Attribute(tr *Trace) Attribution {
	var a Attribution
	tr.Walk(func(n *Node, _ int) {
		name := n.Span.Name
		if !strings.HasPrefix(name, "transport.") || !strings.HasSuffix(name, ".do") {
			return
		}
		a.Hops++
		d := spanSeconds(n.Span)
		a.EndToEndSeconds += d
		inner := 0.0
		for _, ch := range n.Children {
			cd := spanSeconds(ch.Span)
			if cd > d-inner {
				cd = d - inner // clamp into the remaining do budget
			}
			if cd <= 0 {
				continue
			}
			switch {
			case strings.HasSuffix(ch.Span.Name, ".backoff"):
				a.RetrySeconds += cd
				inner += cd
			case strings.HasSuffix(ch.Span.Name, ".attempt"):
				inner += cd
				if ch.Span.Err != "" {
					// A failed attempt is pure retry cost: its time bought
					// no progress.
					a.RetrySeconds += cd
					continue
				}
				serverDur := 0.0
				for _, sv := range ch.Children {
					if !isServerSpan(sv.Span.Name) {
						continue
					}
					sd := spanSeconds(sv.Span)
					if sd > cd-serverDur {
						sd = cd - serverDur
					}
					if sd <= 0 {
						continue
					}
					serverDur += sd
					phases := 0.0
					for _, ph := range sv.Children {
						pd := spanSeconds(ph.Span)
						if pd > sd-phases {
							pd = sd - phases
						}
						if pd <= 0 {
							continue
						}
						phases += pd
						switch {
						case strings.HasSuffix(ph.Span.Name, ".parse"):
							a.ServerParseSeconds += pd
						case strings.HasSuffix(ph.Span.Name, ".insert"),
							strings.HasSuffix(ph.Span.Name, ".exec"):
							a.ServerInsertSecs += pd
						default:
							a.ServerQueueSeconds += pd
						}
					}
					// Server time not covered by a phase span is queueing.
					a.ServerQueueSeconds += sd - phases
				}
				a.NetworkSeconds += cd - serverDur
			}
		}
		if rest := d - inner; rest > 0 {
			a.ClientQueueSeconds += rest
		}
	})
	return a
}

// RecordAttribution mirrors an attribution into the registry as
// trace.hop.*.seconds gauges, so the meta dashboard charts where
// telemetry time goes alongside every other pmove.self.* series.
func RecordAttribution(reg *introspect.Registry, a Attribution) {
	reg.Gauge("trace.hop.wire.seconds").Set(a.EndToEndSeconds)
	reg.Gauge("trace.hop.client_queue.seconds").Set(a.ClientQueueSeconds)
	reg.Gauge("trace.hop.network.seconds").Set(a.NetworkSeconds)
	reg.Gauge("trace.hop.retry.seconds").Set(a.RetrySeconds)
	reg.Gauge("trace.hop.server_parse.seconds").Set(a.ServerParseSeconds)
	reg.Gauge("trace.hop.server_queue.seconds").Set(a.ServerQueueSeconds)
	reg.Gauge("trace.hop.server_insert.seconds").Set(a.ServerInsertSecs)
}

// Sink is where exported attribution points land: the embedded tsdb.DB
// does not satisfy it directly (no context form), but the resilient
// tsdb.Client and the telemetry collector do — attribution export rides
// the same cancellable write path as every other self-metric.
type Sink interface {
	WritePointContext(ctx context.Context, p tsdb.Point) error
}

// ExportAttribution writes one point holding every attribution component
// under <prefix>.trace.hop.seconds, tagged "self" like all
// self-telemetry, honoring ctx cancellation through the sink.
func ExportAttribution(ctx context.Context, sink Sink, prefix string, a Attribution, nowNanos int64) error {
	p := tsdb.Point{
		Measurement: tsdb.MeasurementName(prefix + ".trace.hop.seconds"),
		Tags:        map[string]string{"tag": "self"},
		Fields: map[string]float64{
			"wire":          a.EndToEndSeconds,
			"client_queue":  a.ClientQueueSeconds,
			"network":       a.NetworkSeconds,
			"retry":         a.RetrySeconds,
			"server_parse":  a.ServerParseSeconds,
			"server_queue":  a.ServerQueueSeconds,
			"server_insert": a.ServerInsertSecs,
			"hops":          float64(a.Hops),
		},
		Time: nowNanos,
	}
	if err := sink.WritePointContext(ctx, p); err != nil {
		return fmt.Errorf("traceexport: export attribution: %w", err)
	}
	return nil
}
