package traceexport

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pmove/internal/docdb"
	"pmove/internal/introspect"
	"pmove/internal/resilience"
	"pmove/internal/tsdb"
)

func testPolicy() resilience.Policy {
	return resilience.Policy{
		DialTimeout:  time.Second,
		ReadTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		MaxRetries:   2,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Breaker:      resilience.BreakerConfig{Threshold: 50, Cooldown: 10 * time.Millisecond},
		Seed:         11,
	}
}

// tracedTSDB starts a tsdb server with its own process-labeled tracer.
func tracedTSDB(t *testing.T) (*tsdb.Server, *introspect.Introspector, string) {
	t.Helper()
	srv := tsdb.NewServer(tsdb.New())
	in := introspect.New(introspect.WithProcess("tsdb-server"), introspect.WithSampling(1, 21))
	srv.SetTracing(in)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, in, addr
}

// TestAssembleAndAttribute drives real WRITE/QUERY ops through a traced
// client and server, assembles the two rings into one trace, and checks
// the tree shape and that per-hop attribution partitions the measured
// end-to-end wire time (the ≤5% acceptance criterion, exact here).
func TestAssembleAndAttribute(t *testing.T) {
	_, serverIn, addr := tracedTSDB(t)
	clientIn := introspect.New(introspect.WithProcess("daemon"), introspect.WithSampling(1, 31))
	cl, err := tsdb.DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Transport().SetIntrospection(clientIn, "tsdb")

	ctx, root := clientIn.StartSpan(context.Background(), "test.op")
	for i := 0; i < 3; i++ {
		p := tsdb.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"host": "a"},
			Fields:      map[string]float64{"usage": float64(i)},
			Time:        int64(i + 1),
		}
		if err := cl.WriteContext(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.QueryContext(ctx, "SELECT usage FROM cpu"); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	col := NewCollector()
	col.Add("daemon", clientIn.Tracer())
	col.Add("tsdb-server", serverIn.Tracer())
	rootSpan, _ := clientIn.Tracer().Find("test.op")
	tr, ok := col.Trace(rootSpan.Trace)
	if !ok {
		t.Fatal("trace not assembled")
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Span.Name != "test.op" {
		t.Fatalf("roots: %+v", tr.Roots)
	}
	if len(tr.Orphans) != 0 {
		t.Fatalf("unexpected orphans: %d", len(tr.Orphans))
	}
	if got := tr.Processes(); len(got) != 2 || got[0] != "daemon" || got[1] != "tsdb-server" {
		t.Fatalf("processes: %v", got)
	}
	// Each write: do -> attempt -> tsdb.server.write -> {queue,parse,insert}.
	wn, ok := tr.Find("tsdb.server.write")
	if !ok {
		t.Fatal("no server write span in assembled trace")
	}
	if wn.Span.Process != "tsdb-server" {
		t.Fatalf("server span process = %q", wn.Span.Process)
	}
	phases := map[string]bool{}
	for _, ch := range wn.Children {
		phases[ch.Span.Name] = true
	}
	for _, want := range []string{"tsdb.server.queue", "tsdb.server.parse", "tsdb.server.insert"} {
		if !phases[want] {
			t.Errorf("server write missing phase %s (have %v)", want, phases)
		}
	}

	a := Attribute(tr)
	if a.Hops != 4 {
		t.Fatalf("hops = %d, want 4 (3 writes + 1 query)", a.Hops)
	}
	if a.EndToEndSeconds <= 0 {
		t.Fatal("no end-to-end time measured")
	}
	if diff := a.Sum() - a.EndToEndSeconds; diff > 0.05*a.EndToEndSeconds || diff < -0.05*a.EndToEndSeconds {
		t.Fatalf("attribution sum %.9f vs end-to-end %.9f: off by more than 5%%", a.Sum(), a.EndToEndSeconds)
	}
	if a.ServerInsertSecs <= 0 || a.ServerParseSeconds <= 0 {
		t.Errorf("server phases not attributed: %+v", a)
	}
	if a.NetworkSeconds <= 0 {
		t.Errorf("network time not attributed: %+v", a)
	}

	// The registry mirror and the sink export surface the same numbers.
	RecordAttribution(clientIn.Metrics(), a)
	snap := clientIn.Snapshot()
	if v := snap.GaugeValue("trace.hop.wire.seconds"); v != a.EndToEndSeconds {
		t.Errorf("trace.hop.wire.seconds gauge = %v, want %v", v, a.EndToEndSeconds)
	}
	sink := &memorySink{}
	if err := ExportAttribution(context.Background(), sink, "pmove.self", a, 99); err != nil {
		t.Fatal(err)
	}
	if len(sink.points) != 1 || sink.points[0].Measurement != "pmove_self_trace_hop_seconds" {
		t.Fatalf("exported points: %+v", sink.points)
	}
	if sink.points[0].Fields["hops"] != 4 {
		t.Errorf("exported hops = %v", sink.points[0].Fields["hops"])
	}
}

type memorySink struct {
	mu     sync.Mutex
	points []tsdb.Point
}

func (m *memorySink) WritePointContext(_ context.Context, p tsdb.Point) error {
	m.mu.Lock()
	m.points = append(m.points, p)
	m.mu.Unlock()
	return nil
}

// TestChromeTraceExport checks the Chrome trace-event JSON is valid and
// carries every span plus per-process metadata.
func TestChromeTraceExport(t *testing.T) {
	_, serverIn, addr := tracedTSDB(t)
	clientIn := introspect.New(introspect.WithProcess("daemon"))
	cl, err := tsdb.DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Transport().SetIntrospection(clientIn, "tsdb")
	ctx, root := clientIn.StartSpan(context.Background(), "test.op")
	if err := cl.WriteContext(ctx, tsdb.Point{Measurement: "m", Fields: map[string]float64{"v": 1}, Time: 1}); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	col := NewCollector()
	col.Add("daemon", clientIn.Tracer())
	col.Add("tsdb-server", serverIn.Tracer())
	traces := col.Traces()
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	raw, err := ChromeTrace(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	var meta, complete int
	names := map[string]bool{}
	for _, ev := range decoded.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			names[ev["name"].(string)] = true
			if ev["dur"].(float64) < 0 || ev["ts"].(float64) < 0 {
				t.Errorf("negative ts/dur in %v", ev)
			}
		}
	}
	if meta != 2 {
		t.Errorf("process metadata events = %d, want 2", meta)
	}
	if complete != traces[0].Spans {
		t.Errorf("complete events = %d, want %d spans", complete, traces[0].Spans)
	}
	for _, want := range []string{"test.op", "transport.tsdb.do", "tsdb.server.write"} {
		if !names[want] {
			t.Errorf("chrome trace missing span %q", want)
		}
	}

	wf := Waterfall(traces[0])
	for _, want := range []string{"test.op", "tsdb.server.write", "daemon", "tsdb-server"} {
		if !strings.Contains(wf, want) {
			t.Errorf("waterfall missing %q:\n%s", want, wf)
		}
	}
}

// TestTraceThroughFaultProxy is the trace-context round-trip chaos test:
// WRITE frames (with traceparent tags) cross a fault-injecting proxy
// that cuts connections mid-frame, partitions, and heals. Server spans
// must never be mis-parented — every parented server span's parent must
// be a client attempt span of the same trace — and the run must be
// race-detector clean.
func TestTraceThroughFaultProxy(t *testing.T) {
	_, serverIn, addr := tracedTSDB(t)
	// Cut connections after small byte budgets so frames die mid-stream,
	// truncating some traceparent tags in flight.
	proxy := resilience.NewProxy(addr, resilience.Faults{ResetAfterBytes: 150}, 17)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	clientIn := introspect.New(introspect.WithProcess("daemon"), introspect.WithSampling(1, 41))
	cl, err := tsdb.DialPolicy(paddr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Transport().SetIntrospection(clientIn, "tsdb")

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ctx, span := clientIn.StartSpan(context.Background(), "chaos.write")
				err := cl.WriteContext(ctx, tsdb.Point{
					Measurement: "chaos",
					Tags:        map[string]string{"g": fmt.Sprint(g)},
					Fields:      map[string]float64{"v": float64(i)},
					Time:        int64(g*100 + i + 1),
				})
				span.End(err)
				if i == 5 && g == 0 {
					proxy.Partition()
					proxy.DropConns()
					time.Sleep(10 * time.Millisecond)
					proxy.Heal()
				}
			}
		}(g)
	}
	wg.Wait()

	clientSpans := map[uint64]introspect.Span{}
	for _, s := range clientIn.Tracer().Spans() {
		clientSpans[s.ID] = s
	}
	serverSpans := serverIn.Tracer().Spans()
	if len(serverSpans) == 0 {
		t.Fatal("no server spans survived the chaos run")
	}
	checked := 0
	for _, s := range serverSpans {
		if !strings.HasPrefix(s.Name, "tsdb.server.") {
			continue
		}
		if s.Parent == 0 {
			continue // untraced root: a truncated tag fell back correctly
		}
		parent, ok := clientSpans[s.Parent]
		if strings.HasSuffix(s.Name, ".queue") || strings.HasSuffix(s.Name, ".parse") ||
			strings.HasSuffix(s.Name, ".insert") || strings.HasSuffix(s.Name, ".exec") {
			// Phase spans parent under the server's own op span.
			continue
		}
		checked++
		if !ok {
			t.Fatalf("server span %s parented under unknown id %016x", s.Name, s.Parent)
		}
		if parent.Trace != s.Trace {
			t.Fatalf("server span %s trace %s != parent trace %s (mis-parented)",
				s.Name, s.Trace, parent.Trace)
		}
		if !strings.HasSuffix(parent.Name, ".attempt") {
			t.Fatalf("server span %s parented under %q, want a transport attempt", s.Name, parent.Name)
		}
	}
	if checked == 0 {
		t.Fatal("no tagged server op spans made it through the proxy")
	}

	// Assembly over both rings must not blow up and must keep parent
	// links coherent for every trace.
	col := NewCollector()
	col.Add("daemon", clientIn.Tracer())
	col.Add("tsdb-server", serverIn.Tracer())
	for _, tr := range col.Traces() {
		tr.Walk(func(n *Node, _ int) {
			for _, ch := range n.Children {
				if ch.Span.Trace != n.Span.Trace {
					t.Fatalf("assembled child %s in trace %s under parent of trace %s",
						ch.Span.Name, ch.Span.Trace, n.Span.Trace)
				}
			}
		})
	}
}

// TestUntaggedFramesAccepted pins the backward-compatibility contract:
// raw pre-traceparent frames — no tag at all — must be accepted by both
// wire servers even with tracing enabled.
func TestUntaggedFramesAccepted(t *testing.T) {
	_, serverIn, addr := tracedTSDB(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "WRITE legacy,host=a v=1 123\n")
	resp, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(resp) != "OK" {
		t.Fatalf("untagged tsdb WRITE: %q, %v", resp, err)
	}
	fmt.Fprintf(conn, "QUERY SELECT v FROM legacy\n")
	resp, err = r.ReadString('\n')
	if err != nil || strings.HasPrefix(resp, "ERR") {
		t.Fatalf("untagged tsdb QUERY: %q, %v", resp, err)
	}
	// The server opened local root spans for the untagged frames.
	ws, ok := serverIn.Tracer().Find("tsdb.server.write")
	if !ok || ws.Parent != 0 {
		t.Fatalf("untagged write span: %+v ok=%v (want local root)", ws, ok)
	}

	dsrv := docdb.NewServer(docdb.New())
	din := introspect.New(introspect.WithProcess("docdb-server"))
	dsrv.SetTracing(din)
	daddr, err := dsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dsrv.Close()
	dconn, err := net.Dial("tcp", daddr)
	if err != nil {
		t.Fatal(err)
	}
	defer dconn.Close()
	dr := bufio.NewReader(dconn)
	fmt.Fprintf(dconn, `{"op":"insert","collection":"jobs","doc":{"_id":"j1"}}`+"\n")
	line, err := dr.ReadString('\n')
	if err != nil || !strings.Contains(line, `"ok":true`) {
		t.Fatalf("untagged docdb insert: %q, %v", line, err)
	}
	is, ok := din.Tracer().Find("docdb.server.insert")
	if !ok {
		t.Fatal("docdb server recorded no insert span for untagged request")
	}
	if op, ok := din.Tracer().Find("docdb.server.insert"); ok && op.Trace.IsZero() {
		t.Fatalf("server span without trace id: %+v", is)
	}
}

// TestDocdbTraceRoundTrip checks the JSON-frame protocol propagates the
// traceparent: a traced InsertContext must yield server spans in the
// client's trace.
func TestDocdbTraceRoundTrip(t *testing.T) {
	dsrv := docdb.NewServer(docdb.New())
	din := introspect.New(introspect.WithProcess("docdb-server"))
	dsrv.SetTracing(din)
	daddr, err := dsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dsrv.Close()

	clientIn := introspect.New(introspect.WithProcess("daemon"))
	cl, err := docdb.DialPolicy(daddr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Transport().SetIntrospection(clientIn, "docdb")

	ctx, root := clientIn.StartSpan(context.Background(), "test.op")
	if _, err := cl.InsertContext(ctx, "jobs", docdb.Doc{"_id": "j1", "name": "x"}); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	col := NewCollector()
	col.Add("daemon", clientIn.Tracer())
	col.Add("docdb-server", din.Tracer())
	rootSpan, _ := clientIn.Tracer().Find("test.op")
	tr, ok := col.Trace(rootSpan.Trace)
	if !ok {
		t.Fatal("trace not assembled")
	}
	n, ok := tr.Find("docdb.server.insert")
	if !ok {
		t.Fatal("docdb server op span not in the client's trace")
	}
	if n.Span.Process != "docdb-server" {
		t.Errorf("server span process = %q", n.Span.Process)
	}
	a := Attribute(tr)
	if a.Hops != 1 || a.ServerInsertSecs <= 0 {
		t.Errorf("docdb attribution: %+v", a)
	}
}
