package introspect

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// TraceID is a 128-bit trace identifier shared by every span of one
// distributed trace, across process boundaries. The zero value means "no
// trace".
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the id as 32 lowercase hex digits (the traceparent
// wire form).
func (t TraceID) String() string {
	return fmt.Sprintf("%016x%016x", t.Hi, t.Lo)
}

// ParseTraceID parses a 32-hex-digit trace id.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	hi, err1 := strconv.ParseUint(s[:16], 16, 64)
	lo, err2 := strconv.ParseUint(s[16:], 16, 64)
	if err1 != nil || err2 != nil {
		return TraceID{}, false
	}
	id := TraceID{Hi: hi, Lo: lo}
	return id, !id.IsZero()
}

// SpanContext is the propagated trace state: which trace the caller is
// in, which span is the active parent, and whether the head-based
// sampling decision kept the trace. It crosses process boundaries as a
// traceparent field on the wire protocols.
type SpanContext struct {
	Trace   TraceID
	Span    uint64
	Sampled bool
}

// Valid reports whether the context names a real trace and span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && sc.Span != 0 }

// FormatTraceparent renders a span context in the W3C trace-context
// form: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>", flag
// 01 meaning sampled.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%016x-%s", sc.Trace, sc.Span, flags)
}

// ParseTraceparent parses a traceparent value. Malformed or truncated
// values (a frame cut mid-partition) return ok=false so the receiver
// falls back to an untraced root instead of mis-parenting a span.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	trace, ok := ParseTraceID(parts[1])
	if !ok {
		return SpanContext{}, false
	}
	if len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	span, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil || span == 0 {
		return SpanContext{}, false
	}
	if len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	flags, err := strconv.ParseUint(parts[3], 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: span, Sampled: flags&1 == 1}, true
}

// WireField is the optional trace-context token tagged onto
// line-oriented wire frames: "traceparent=<value>". Servers that
// predate it treat the token as part of the payload and reject the
// frame; servers that know it strip the token and parent their spans
// under the sender's. Untagged frames always remain valid.
const WireField = "traceparent="

// CutWireField strips a leading "traceparent=<value> " token from a
// frame body, returning the parsed context, the remaining body, and
// whether a valid token was found. A malformed token is stripped but
// reported not-ok (tagged=false) — the payload still parses, the trace
// link is dropped rather than corrupted.
func CutWireField(body string) (SpanContext, string, bool) {
	if !strings.HasPrefix(body, WireField) {
		return SpanContext{}, body, false
	}
	token, rest, _ := strings.Cut(body, " ")
	sc, ok := ParseTraceparent(token[len(WireField):])
	return sc, rest, ok
}

// TraceparentFromContext renders the traceparent for the span context
// carried by ctx, or "" when ctx carries none — the client-side
// injection helper. Unsampled contexts still propagate (flag 00) so the
// head decision is honored end to end.
func TraceparentFromContext(ctx context.Context) string {
	sc, ok := SpanContextFromContext(ctx)
	if !ok || !sc.Valid() {
		return ""
	}
	return FormatTraceparent(sc)
}
