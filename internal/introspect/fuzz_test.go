package introspect

import "testing"

// FuzzParseTraceparent asserts the trace-context parser's contract over
// arbitrary wire bytes: never panic, never accept an invalid span
// context, and every accepted value survives a Format/Parse round trip
// exactly — the property that keeps cross-process span parenting stable
// no matter what a truncated or corrupted frame carries.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("00-00000000000000000000000000000000-0000000000000000-01")
	f.Add("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01")
	f.Add("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331")
	f.Add("traceparent=00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01 rest")
	f.Add("")
	f.Add("----")
	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := ParseTraceparent(s)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected input %q returned non-zero context %+v", s, sc)
			}
		} else {
			if !sc.Valid() {
				t.Fatalf("accepted input %q yielded invalid context %+v", s, sc)
			}
			wire := FormatTraceparent(sc)
			sc2, ok2 := ParseTraceparent(wire)
			if !ok2 || sc2 != sc {
				t.Fatalf("format/parse not a round trip: %q -> %+v -> %q -> %+v (ok=%v)", s, sc, wire, sc2, ok2)
			}
		}
		// The frame-level cutter shares the parser; it must never panic
		// and a tagged cut must yield a valid context.
		if csc, _, tagged := CutWireField(s); tagged && !csc.Valid() {
			t.Fatalf("CutWireField(%q) reported tagged with invalid context %+v", s, csc)
		}
	})
}
