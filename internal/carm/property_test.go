package carm

import (
	"math"
	"testing"
	"testing/quick"

	"pmove/internal/topo"
)

// Property tests on the roofline function itself.

func testModel() *Model {
	return &Model{
		Host: "p", ISA: topo.ISAAVX512, Threads: 8,
		MemGBps: map[topo.CacheLevel]float64{
			topo.L1: 2000, topo.L2: 1000, topo.L3: 400, topo.DRAM: 100,
		},
		PeakGFLOPS: 800,
	}
}

func TestRoofMonotoneInAIProperty(t *testing.T) {
	m := testModel()
	f := func(a, b uint16) bool {
		ai1 := float64(a%4096)/64 + 1e-6
		ai2 := float64(b%4096)/64 + 1e-6
		if ai1 > ai2 {
			ai1, ai2 = ai2, ai1
		}
		for lvl := range m.MemGBps {
			r1, err1 := m.RoofAt(lvl, ai1)
			r2, err2 := m.RoofAt(lvl, ai2)
			if err1 != nil || err2 != nil {
				return false
			}
			// Roofs never decrease with AI and never exceed the peak.
			if r1 > r2+1e-9 || r2 > m.PeakGFLOPS+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoofOrderingProperty(t *testing.T) {
	// At every AI, inner levels dominate outer levels.
	m := testModel()
	f := func(a uint16) bool {
		ai := float64(a%4096)/64 + 1e-6
		l1, _ := m.RoofAt(topo.L1, ai)
		l2, _ := m.RoofAt(topo.L2, ai)
		l3, _ := m.RoofAt(topo.L3, ai)
		dr, _ := m.RoofAt(topo.DRAM, ai)
		return l1 >= l2 && l2 >= l3 && l3 >= dr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeIsRoofIntersectionProperty(t *testing.T) {
	m := testModel()
	for lvl := range m.MemGBps {
		ridge, err := m.RidgeAI(lvl)
		if err != nil {
			t.Fatal(err)
		}
		at, _ := m.RoofAt(lvl, ridge)
		if math.Abs(at-m.PeakGFLOPS) > 1e-6 {
			t.Errorf("%s: roof at ridge = %f, want the peak %f", lvl, at, m.PeakGFLOPS)
		}
		below, _ := m.RoofAt(lvl, ridge*0.5)
		if math.Abs(below-m.PeakGFLOPS/2) > 1e-6 {
			t.Errorf("%s: below the ridge the roof must be linear in AI", lvl)
		}
	}
}

func TestBoundingLevelConsistentWithRoofs(t *testing.T) {
	m := testModel()
	f := func(a, g uint16) bool {
		ai := float64(a%2048)/64 + 1e-3
		gf := float64(g%1600) / 2
		lvl := m.BoundingLevel(ai, gf)
		roof, err := m.RoofAt(lvl, ai)
		if err != nil {
			return false
		}
		if gf <= roof*1.03+1e-9 {
			return true
		}
		// A point above every roof (measurement artefact) falls through to
		// L1 — the innermost ceiling is still the right label.
		l1roof, _ := m.RoofAt(topo.L1, ai)
		return lvl == topo.L1 && gf > l1roof
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKBRoundTripProperty(t *testing.T) {
	// Any valid model survives the KB round trip exactly.
	f := func(p, l1, dr uint16) bool {
		peak := float64(p%5000) + 1
		bw1 := float64(l1%5000) + 2
		bwd := math.Min(bw1, float64(dr%3000)+1)
		m := &Model{
			Host: "q", ISA: topo.ISAAVX2, Threads: 4,
			MemGBps:    map[topo.CacheLevel]float64{topo.L1: bw1, topo.DRAM: bwd},
			PeakGFLOPS: peak,
		}
		if m.Validate() != nil {
			return true // generated an invalid combination; skip
		}
		got, err := FromBenchmark(m.ToBenchmark("b", 0, 1))
		if err != nil {
			return false
		}
		return got.PeakGFLOPS == peak && got.MemGBps[topo.L1] == bw1 && got.MemGBps[topo.DRAM] == bwd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
