package carm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pmove/internal/pmu"
	"pmove/internal/topo"
)

// Point is one live application point on the CARM plot.
type Point struct {
	TimeNanos int64   `json:"time_ns"`
	AI        float64 `json:"ai"`
	GFLOPS    float64 `json:"gflops"`
	Label     string  `json:"label,omitempty"`
}

// Reading is one PMU snapshot (cumulative counts summed across the
// observed threads) at one timestamp. The live panel differences
// consecutive readings to compute rates.
type Reading struct {
	TimeNanos int64
	// Events maps hardware event name to cumulative count.
	Events map[string]uint64
}

// LivePanel converts a stream of PMU readings into CARM points for a
// model, implementing §IV-B2: GFLOPS from the weighted sum of FP events,
// bytes from load/store counts scaled by the FP-width mix ("inferred from
// the ratios of different FP instructions (scalar, SSE, AVX2, AVX512),
// which are applied to the total amount of store and load events").
type LivePanel struct {
	Model  *Model
	Vendor topo.Vendor

	prev   *Reading
	points []Point
}

// NewLivePanel builds a panel for a model on a vendor's event scheme.
func NewLivePanel(model *Model, vendor topo.Vendor) *LivePanel {
	return &LivePanel{Model: model, Vendor: vendor}
}

// EventsNeeded returns the hardware events the panel must have programmed,
// per vendor — what P-MoVE configures automatically "based on the
// underlying architecture of a system".
func EventsNeeded(vendor topo.Vendor) []string {
	if vendor == topo.VendorAMD {
		return []string{pmu.AMDFlopsAny, pmu.AMDLoads, pmu.AMDStores}
	}
	return []string{
		pmu.IntelScalarDouble, pmu.Intel128PackedDbl, pmu.Intel256PackedDbl,
		pmu.Intel512PackedDbl, pmu.IntelLoads, pmu.IntelStores,
	}
}

// flopsAndBytes derives the FLOP count and estimated byte traffic from
// event deltas.
func (lp *LivePanel) flopsAndBytes(d map[string]float64) (flops, bytes float64) {
	if lp.Vendor == topo.VendorAMD {
		flops = d[pmu.AMDFlopsAny]
		memOps := d[pmu.AMDLoads] + d[pmu.AMDStores]
		// Zen3 reports FLOPs, not instructions; assume the data-path width
		// follows the FLOP rate per memory op, floor 8 bytes.
		bytes = memOps * 8
		return flops, bytes
	}
	scalar := d[pmu.IntelScalarDouble]
	sse := d[pmu.Intel128PackedDbl]
	avx2 := d[pmu.Intel256PackedDbl]
	avx512 := d[pmu.Intel512PackedDbl]
	flops = scalar + 2*sse + 4*avx2 + 8*avx512
	fpTotal := scalar + sse + avx2 + avx512
	memOps := d[pmu.IntelLoads] + d[pmu.IntelStores]
	if fpTotal == 0 {
		return flops, memOps * 8
	}
	// Width mix of FP instructions applied to memory instructions.
	avgWidthBytes := (scalar*8 + sse*16 + avx2*32 + avx512*64) / fpTotal
	bytes = memOps * avgWidthBytes
	return flops, bytes
}

// Feed ingests the next cumulative reading and returns the new point, or
// false for the first reading (no delta yet) and for idle intervals with
// no FP activity.
func (lp *LivePanel) Feed(r Reading, label string) (Point, bool) {
	defer func() { lp.prev = &r }()
	if lp.prev == nil {
		return Point{}, false
	}
	dt := float64(r.TimeNanos-lp.prev.TimeNanos) / 1e9
	if dt <= 0 {
		return Point{}, false
	}
	delta := map[string]float64{}
	for ev, v := range r.Events {
		p := lp.prev.Events[ev]
		if v >= p {
			delta[ev] = float64(v - p)
		}
	}
	flops, bytes := lp.flopsAndBytes(delta)
	if flops <= 0 || bytes <= 0 {
		return Point{}, false
	}
	pt := Point{
		TimeNanos: r.TimeNanos,
		AI:        flops / bytes,
		GFLOPS:    flops / dt / 1e9,
		Label:     label,
	}
	lp.points = append(lp.points, pt)
	return pt, true
}

// Points returns all accumulated points.
func (lp *LivePanel) Points() []Point {
	return append([]Point(nil), lp.points...)
}

// Reset clears the panel state (a new observation window).
func (lp *LivePanel) Reset() {
	lp.prev = nil
	lp.points = nil
}

// Summary aggregates points per label: the median AI and GFLOPS of each
// phase, used by the Fig 8/9 analyses.
type Summary struct {
	Label    string
	N        int
	MedianAI float64
	MedianGF float64
	MaxGF    float64
}

// Summarize groups the panel's points by label.
func (lp *LivePanel) Summarize() []Summary {
	byLabel := map[string][]Point{}
	var order []string
	for _, p := range lp.points {
		if _, ok := byLabel[p.Label]; !ok {
			order = append(order, p.Label)
		}
		byLabel[p.Label] = append(byLabel[p.Label], p)
	}
	var out []Summary
	for _, lbl := range order {
		pts := byLabel[lbl]
		ais := make([]float64, len(pts))
		gfs := make([]float64, len(pts))
		maxGF := 0.0
		for i, p := range pts {
			ais[i], gfs[i] = p.AI, p.GFLOPS
			if p.GFLOPS > maxGF {
				maxGF = p.GFLOPS
			}
		}
		sort.Float64s(ais)
		sort.Float64s(gfs)
		out = append(out, Summary{
			Label: lbl, N: len(pts),
			MedianAI: ais[len(ais)/2], MedianGF: gfs[len(gfs)/2], MaxGF: maxGF,
		})
	}
	return out
}

// RenderASCII draws the CARM (log-log) with roofs and points as text — the
// terminal stand-in for the Grafana live-CARM panel. Width/height are the
// plot interior dimensions in characters.
func RenderASCII(m *Model, points []Point, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	// Axis ranges: AI from 1/64 to 64, GFLOPS from peak/4096 to peak*2.
	aiMin, aiMax := math.Log2(1.0/64), math.Log2(64.0)
	gfMax := math.Log2(m.PeakGFLOPS * 2)
	gfMin := gfMax - 13
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	toXY := func(ai, gf float64) (int, int, bool) {
		if ai <= 0 || gf <= 0 {
			return 0, 0, false
		}
		x := int((math.Log2(ai) - aiMin) / (aiMax - aiMin) * float64(width-1))
		y := int((math.Log2(gf) - gfMin) / (gfMax - gfMin) * float64(height-1))
		if x < 0 || x >= width || y < 0 || y >= height {
			return 0, 0, false
		}
		return x, height - 1 - y, true
	}
	// Roofs.
	marks := map[topo.CacheLevel]byte{topo.L1: '1', topo.L2: '2', topo.L3: '3', topo.DRAM: 'D'}
	for lvl, bw := range m.MemGBps {
		for xi := 0; xi < width*2; xi++ {
			ai := math.Exp2(aiMin + (aiMax-aiMin)*float64(xi)/float64(width*2-1))
			gf := math.Min(m.PeakGFLOPS, ai*bw)
			if x, y, ok := toXY(ai, gf); ok {
				if grid[y][x] == ' ' {
					grid[y][x] = marks[lvl]
				}
			}
		}
	}
	// Points.
	for _, p := range points {
		if x, y, ok := toXY(p.AI, p.GFLOPS); ok {
			grid[y][x] = '*'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "live-CARM %s  isa=%s threads=%d  peak=%.1f GFLOP/s\n", m.Host, m.ISA, m.Threads, m.PeakGFLOPS)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	fmt.Fprintf(&b, " AI %.3g .. %.3g FLOP/byte (log)   roofs: 1=L1 2=L2 3=L3 D=DRAM  *=app\n",
		math.Exp2(aiMin), math.Exp2(aiMax))
	return b.String()
}
