package carm

import (
	"math"
	"strings"
	"testing"

	"pmove/internal/machine"
	"pmove/internal/pmu"
	"pmove/internal/topo"
)

func construct(t *testing.T, preset string, isa topo.ISA, threads int) *Model {
	t.Helper()
	m, err := machine.New(topo.MustPreset(preset), machine.Config{Seed: 2, Noiseless: true})
	if err != nil {
		t.Fatal(err)
	}
	model, err := Construct(m, isa, threads, topo.PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestConstructIntelAndAMD(t *testing.T) {
	// The paper extends CARM beyond Intel-only adCARM to AMD systems.
	intel := construct(t, topo.PresetCSL, topo.ISAAVX512, 8)
	amd := construct(t, topo.PresetZEN3, topo.ISAAVX2, 8)
	for _, m := range []*Model{intel, amd} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		// All four memory levels measured.
		for _, lvl := range []topo.CacheLevel{topo.L1, topo.L2, topo.L3, topo.DRAM} {
			if m.MemGBps[lvl] <= 0 {
				t.Errorf("%s: no %s roof", m.Host, lvl)
			}
		}
	}
	if amd.PeakGFLOPS >= intel.PeakGFLOPS {
		t.Error("AVX-512 CSL should out-FLOP AVX2 Zen3 at 8 threads")
	}
}

func TestRoofOrdering(t *testing.T) {
	m := construct(t, topo.PresetCSL, topo.ISAAVX512, 4)
	if !(m.MemGBps[topo.L1] >= m.MemGBps[topo.L2] &&
		m.MemGBps[topo.L2] >= m.MemGBps[topo.L3] &&
		m.MemGBps[topo.L3] >= m.MemGBps[topo.DRAM]) {
		t.Errorf("roofs not ordered: %v", m.MemGBps)
	}
}

func TestConstructRejectsUnsupportedISA(t *testing.T) {
	m, err := machine.New(topo.MustPreset(topo.PresetZEN3), machine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Construct(m, topo.ISAAVX512, 4, topo.PinBalanced); err == nil {
		t.Error("Zen3 does not support AVX-512; Construct should refuse")
	}
}

func TestRoofAtAndRidge(t *testing.T) {
	m := &Model{
		Host: "x", ISA: topo.ISAAVX512, Threads: 4,
		MemGBps:    map[topo.CacheLevel]float64{topo.L1: 1000, topo.DRAM: 100},
		PeakGFLOPS: 500,
	}
	if v, err := m.RoofAt(topo.DRAM, 1); err != nil || v != 100 {
		t.Errorf("roof at AI 1 = %v %v", v, err)
	}
	if v, _ := m.RoofAt(topo.DRAM, 100); v != 500 {
		t.Errorf("roof should cap at peak, got %v", v)
	}
	ridge, err := m.RidgeAI(topo.DRAM)
	if err != nil || ridge != 5 {
		t.Errorf("ridge = %v %v, want 5", ridge, err)
	}
	if _, err := m.RoofAt(topo.L3, 1); err == nil {
		t.Error("missing roof should error")
	}
}

func TestBoundingLevel(t *testing.T) {
	m := &Model{
		Host: "x", ISA: topo.ISAScalar, Threads: 1,
		MemGBps:    map[topo.CacheLevel]float64{topo.L1: 1000, topo.L2: 400, topo.L3: 150, topo.DRAM: 50},
		PeakGFLOPS: 500,
	}
	// At AI 1: DRAM roof 50, L3 150, L2 400, L1 500(capped).
	if lvl := m.BoundingLevel(1, 40); lvl != topo.DRAM {
		t.Errorf("40 GFLOPS at AI 1 bound by %s, want DRAM", lvl)
	}
	if lvl := m.BoundingLevel(1, 100); lvl != topo.L3 {
		t.Errorf("100 GFLOPS bound by %s, want L3", lvl)
	}
	if lvl := m.BoundingLevel(1, 450); lvl != topo.L1 {
		t.Errorf("450 GFLOPS bound by %s, want L1", lvl)
	}
}

func TestKBRoundTrip(t *testing.T) {
	m := construct(t, topo.PresetCSL, topo.ISAAVX512, 8)
	bench := m.ToBenchmark("bench:1", 100, 200)
	if bench.Name != "carm" || len(bench.Results) != 5 {
		t.Fatalf("benchmark entry: %+v", bench)
	}
	got, err := FromBenchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != m.Host || got.ISA != m.ISA || got.Threads != m.Threads {
		t.Errorf("identity lost: %+v", got)
	}
	if math.Abs(got.PeakGFLOPS-m.PeakGFLOPS) > 1e-9 {
		t.Error("peak lost")
	}
	for lvl, bw := range m.MemGBps {
		if math.Abs(got.MemGBps[lvl]-bw) > 1e-9 {
			t.Errorf("%s bandwidth lost", lvl)
		}
	}
}

func TestFromBenchmarkRejectsWrongKind(t *testing.T) {
	m := construct(t, topo.PresetCSL, topo.ISAAVX512, 4)
	b := m.ToBenchmark("b", 0, 0)
	b.Name = "stream"
	if _, err := FromBenchmark(b); err == nil {
		t.Error("non-carm benchmark accepted")
	}
}

func TestLivePanelComputesAIAndGFLOPS(t *testing.T) {
	model := &Model{
		Host: "t", ISA: topo.ISAAVX512, Threads: 1,
		MemGBps:    map[topo.CacheLevel]float64{topo.L1: 100, topo.DRAM: 10},
		PeakGFLOPS: 100,
	}
	lp := NewLivePanel(model, topo.VendorIntel)
	// First reading primes.
	if _, ok := lp.Feed(Reading{TimeNanos: 0, Events: map[string]uint64{}}, "k"); ok {
		t.Error("first reading should not produce a point")
	}
	// One second later: 1e9 scalar FP, 1e8 loads (all scalar width).
	pt, ok := lp.Feed(Reading{TimeNanos: 1e9, Events: map[string]uint64{
		pmu.IntelScalarDouble: 1e9,
		pmu.IntelLoads:        1e8,
	}}, "k")
	if !ok {
		t.Fatal("no point produced")
	}
	if math.Abs(pt.GFLOPS-1.0) > 1e-9 {
		t.Errorf("GFLOPS = %f, want 1", pt.GFLOPS)
	}
	// AI = 1e9 flops / (1e8 * 8 bytes) = 1.25.
	if math.Abs(pt.AI-1.25) > 1e-9 {
		t.Errorf("AI = %f, want 1.25", pt.AI)
	}
}

func TestLivePanelWidthMix(t *testing.T) {
	model := &Model{Host: "t", ISA: topo.ISAAVX512, Threads: 1,
		MemGBps: map[topo.CacheLevel]float64{topo.DRAM: 10}, PeakGFLOPS: 100}
	lp := NewLivePanel(model, topo.VendorIntel)
	lp.Feed(Reading{TimeNanos: 0, Events: map[string]uint64{}}, "k")
	// Pure AVX-512: memory instructions count 64 bytes each.
	pt, ok := lp.Feed(Reading{TimeNanos: 1e9, Events: map[string]uint64{
		pmu.Intel512PackedDbl: 1e6,
		pmu.IntelLoads:        1e6,
	}}, "k")
	if !ok {
		t.Fatal("no point")
	}
	// flops = 8e6; bytes = 1e6 * 64 => AI = 0.125.
	if math.Abs(pt.AI-0.125) > 1e-9 {
		t.Errorf("AVX-512 AI = %f, want 0.125", pt.AI)
	}
}

func TestLivePanelAMD(t *testing.T) {
	model := &Model{Host: "t", ISA: topo.ISAAVX2, Threads: 1,
		MemGBps: map[topo.CacheLevel]float64{topo.DRAM: 10}, PeakGFLOPS: 100}
	lp := NewLivePanel(model, topo.VendorAMD)
	lp.Feed(Reading{TimeNanos: 0, Events: map[string]uint64{}}, "k")
	pt, ok := lp.Feed(Reading{TimeNanos: 1e9, Events: map[string]uint64{
		pmu.AMDFlopsAny: 8e8, // FLOPs counted directly on Zen3
		pmu.AMDLoads:    1e8,
	}}, "k")
	if !ok {
		t.Fatal("no point")
	}
	if math.Abs(pt.GFLOPS-0.8) > 1e-9 {
		t.Errorf("GFLOPS = %f", pt.GFLOPS)
	}
	if math.Abs(pt.AI-1.0) > 1e-9 {
		t.Errorf("AI = %f, want 8e8/8e8 = 1", pt.AI)
	}
}

func TestLivePanelIdleProducesNoPoints(t *testing.T) {
	model := &Model{Host: "t", ISA: topo.ISAScalar, Threads: 1,
		MemGBps: map[topo.CacheLevel]float64{topo.DRAM: 10}, PeakGFLOPS: 100}
	lp := NewLivePanel(model, topo.VendorIntel)
	lp.Feed(Reading{TimeNanos: 0, Events: map[string]uint64{}}, "idle")
	if _, ok := lp.Feed(Reading{TimeNanos: 1e9, Events: map[string]uint64{}}, "idle"); ok {
		t.Error("idle interval produced a point")
	}
	if len(lp.Points()) != 0 {
		t.Error("points accumulated while idle")
	}
}

func TestSummarize(t *testing.T) {
	model := &Model{Host: "t", ISA: topo.ISAScalar, Threads: 1,
		MemGBps: map[topo.CacheLevel]float64{topo.DRAM: 10}, PeakGFLOPS: 100}
	lp := NewLivePanel(model, topo.VendorIntel)
	lp.Feed(Reading{TimeNanos: 0, Events: map[string]uint64{}}, "a")
	cum := map[string]uint64{pmu.IntelScalarDouble: 0, pmu.IntelLoads: 0}
	feed := func(i int, label string) {
		cum[pmu.IntelScalarDouble] += 1e9
		cum[pmu.IntelLoads] += 1e8
		lp.Feed(Reading{TimeNanos: int64(i) * 1e9, Events: map[string]uint64{
			pmu.IntelScalarDouble: cum[pmu.IntelScalarDouble],
			pmu.IntelLoads:        cum[pmu.IntelLoads],
		}}, label)
	}
	for i := 1; i <= 3; i++ {
		feed(i, "a")
	}
	for i := 4; i <= 5; i++ {
		feed(i, "b")
	}
	sums := lp.Summarize()
	if len(sums) != 2 || sums[0].Label != "a" || sums[1].Label != "b" {
		t.Fatalf("summaries: %+v", sums)
	}
	if sums[0].N != 3 || sums[1].N != 2 {
		t.Errorf("counts: %+v", sums)
	}
	lp.Reset()
	if len(lp.Points()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestEventsNeeded(t *testing.T) {
	intel := EventsNeeded(topo.VendorIntel)
	if len(intel) != 6 {
		t.Errorf("intel events: %v", intel)
	}
	amd := EventsNeeded(topo.VendorAMD)
	if len(amd) != 3 || amd[0] != pmu.AMDFlopsAny {
		t.Errorf("amd events: %v", amd)
	}
}

func TestRenderASCII(t *testing.T) {
	m := construct(t, topo.PresetCSL, topo.ISAAVX512, 4)
	pts := []Point{{AI: 0.125, GFLOPS: m.PeakGFLOPS / 10, Label: "x"}}
	out := RenderASCII(m, pts, 60, 12)
	if !strings.Contains(out, "*") {
		t.Error("application point not rendered")
	}
	for _, mark := range []string{"1", "2", "3", "D"} {
		if !strings.Contains(out, mark) {
			t.Errorf("roof %s not rendered", mark)
		}
	}
	if !strings.Contains(out, "csl") {
		t.Error("header missing")
	}
}

func TestValidateRejectsBrokenModels(t *testing.T) {
	bad := []*Model{
		{Host: "x", MemGBps: map[topo.CacheLevel]float64{topo.L1: 10}},                               // no peak
		{Host: "x", PeakGFLOPS: 10},                                                                  // no roofs
		{Host: "x", PeakGFLOPS: 10, MemGBps: map[topo.CacheLevel]float64{topo.L1: 0}},                // zero bw
		{Host: "x", PeakGFLOPS: 10, MemGBps: map[topo.CacheLevel]float64{topo.L1: 5, topo.DRAM: 50}}, // inverted
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}
