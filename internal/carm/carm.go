// Package carm implements the Cache-Aware Roofline Model of §IV-B: model
// construction from microbenchmarks (per-level sustainable bandwidth and
// peak FP throughput, per ISA and thread count, for Intel *and* AMD
// microarchitectures), KB-backed caching of the measured roofs, and the
// live-CARM panel that converts PMU readings into (arithmetic intensity,
// GFLOPS) application points in real time.
package carm

import (
	"fmt"
	"math"
	"sort"

	"pmove/internal/kb"
	"pmove/internal/kernels"
	"pmove/internal/machine"
	"pmove/internal/topo"
)

// Roof is one measured ceiling of the model.
type Roof struct {
	// Level is the memory level for bandwidth roofs; for the compute roof
	// Level is 0 and GFLOPS is set.
	Level   topo.CacheLevel `json:"level,omitempty"`
	ISA     topo.ISA        `json:"isa"`
	Threads int             `json:"threads"`
	GBps    float64         `json:"gbps,omitempty"`
	GFLOPS  float64         `json:"gflops,omitempty"`
}

// IsCompute reports whether this is the FP-throughput roof.
func (r Roof) IsCompute() bool { return r.GFLOPS > 0 && r.GBps == 0 }

// Model is a constructed CARM for one system / ISA / thread count.
type Model struct {
	Host    string   `json:"host"`
	ISA     topo.ISA `json:"isa"`
	Threads int      `json:"threads"`
	// MemGBps maps each memory level to its sustainable bandwidth.
	MemGBps map[topo.CacheLevel]float64 `json:"mem_gbps"`
	// PeakGFLOPS is the measured FP ceiling.
	PeakGFLOPS float64 `json:"peak_gflops"`
}

// Validate checks model consistency: bandwidths must decrease outward.
func (m *Model) Validate() error {
	if m.PeakGFLOPS <= 0 {
		return fmt.Errorf("carm: model %s/%s has no compute roof", m.Host, m.ISA)
	}
	if len(m.MemGBps) == 0 {
		return fmt.Errorf("carm: model %s/%s has no memory roofs", m.Host, m.ISA)
	}
	prev := math.Inf(1)
	for _, lvl := range []topo.CacheLevel{topo.L1, topo.L2, topo.L3, topo.DRAM} {
		bw, ok := m.MemGBps[lvl]
		if !ok {
			continue
		}
		if bw <= 0 {
			return fmt.Errorf("carm: model %s/%s has non-positive %s bandwidth", m.Host, m.ISA, lvl)
		}
		if bw > prev*1.001 {
			return fmt.Errorf("carm: model %s/%s: %s bandwidth %.1f exceeds inner level %.1f", m.Host, m.ISA, lvl, bw, prev)
		}
		prev = bw
	}
	return nil
}

// RoofAt returns the attainable GFLOPS at arithmetic intensity ai for a
// memory level: min(peak, ai * BW).
func (m *Model) RoofAt(lvl topo.CacheLevel, ai float64) (float64, error) {
	bw, ok := m.MemGBps[lvl]
	if !ok {
		return 0, fmt.Errorf("carm: model has no %s roof", lvl)
	}
	return math.Min(m.PeakGFLOPS, ai*bw), nil
}

// RidgeAI returns the arithmetic intensity where a memory roof meets the
// compute roof (the model's "ridge point" for that level).
func (m *Model) RidgeAI(lvl topo.CacheLevel) (float64, error) {
	bw, ok := m.MemGBps[lvl]
	if !ok || bw <= 0 {
		return 0, fmt.Errorf("carm: model has no %s roof", lvl)
	}
	return m.PeakGFLOPS / bw, nil
}

// BoundingLevel returns the outermost memory level whose roof a point
// (ai, gflops) stays under — i.e. which roof currently bounds the
// application (Fig 9's "approaches the L2 roof" style statements).
func (m *Model) BoundingLevel(ai, gflops float64) topo.CacheLevel {
	levels := []topo.CacheLevel{topo.DRAM, topo.L3, topo.L2, topo.L1}
	for _, lvl := range levels {
		if bw, ok := m.MemGBps[lvl]; ok {
			// A small tolerance absorbs PMU measurement noise on points
			// that ride exactly on a roof.
			if gflops <= math.Min(m.PeakGFLOPS, ai*bw)*1.03 {
				return lvl
			}
		}
	}
	return topo.L1
}

// Construct measures the CARM roofs by running the auto-configured
// microbenchmark suite on the machine with the given thread count. The
// Time Stamp Counter role of §IV-B1 is played by the machine's virtual
// clock: GB/s and GFLOPS derive from cycle-accurate virtual durations.
func Construct(m *machine.Machine, isa topo.ISA, threads int, pin topo.PinStrategy) (*Model, error) {
	sys := m.System()
	if !sys.CPU.HasISA(isa) {
		return nil, fmt.Errorf("carm: %s does not support %s", sys.Hostname, isa)
	}
	pinning, err := topo.Pin(sys, pin, threads)
	if err != nil {
		return nil, err
	}
	suite, err := kernels.CARMSuite(sys, []topo.ISA{isa})
	if err != nil {
		return nil, err
	}
	model := &Model{Host: sys.Hostname, ISA: isa, Threads: threads, MemGBps: map[topo.CacheLevel]float64{}}
	for _, b := range suite {
		exec, err := m.Run(b.Spec, pinning)
		if err != nil {
			return nil, fmt.Errorf("carm: %s: %w", b.Name, err)
		}
		if b.Flops {
			if exec.GFLOPS > model.PeakGFLOPS {
				model.PeakGFLOPS = exec.GFLOPS
			}
		} else {
			if exec.GBps > model.MemGBps[b.Level] {
				model.MemGBps[b.Level] = exec.GBps
			}
		}
	}
	// Monotonise outward: a shared L3 probed with few threads can appear
	// slower than DRAM with aggregate traffic; clamp to preserve the
	// roofline ordering L1 >= L2 >= L3 >= DRAM.
	order := []topo.CacheLevel{topo.L1, topo.L2, topo.L3, topo.DRAM}
	prev := math.Inf(1)
	for _, lvl := range order {
		if bw, ok := model.MemGBps[lvl]; ok {
			if bw > prev {
				model.MemGBps[lvl] = prev
			}
			prev = model.MemGBps[lvl]
		}
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}

// ConstructAll builds models for the representative thread counts of the
// system (paper: "P-MoVE generates a subset of the most representative
// thread counts"), returning them keyed by thread count.
func ConstructAll(m *machine.Machine, isa topo.ISA, pin topo.PinStrategy) (map[int]*Model, error) {
	out := map[int]*Model{}
	for _, n := range kernels.RepresentativeThreadCounts(m.System()) {
		model, err := Construct(m, isa, n, pin)
		if err != nil {
			return nil, err
		}
		out[n] = model
	}
	return out, nil
}

// ToBenchmark serialises the model as a KB BenchmarkInterface entry, so
// the CARM plot can be re-constructed "without the need to re-run all the
// microbenchmarks".
func (m *Model) ToBenchmark(id string, startNs, endNs int64) *kb.Benchmark {
	b := &kb.Benchmark{
		ID: id, Type: "BenchmarkInterface", Host: m.Host, Name: "carm",
		StartNanos: startNs, EndNanos: endNs,
	}
	params := func(extra map[string]string) map[string]string {
		p := map[string]string{
			"isa":     string(m.ISA),
			"threads": fmt.Sprintf("%d", m.Threads),
		}
		for k, v := range extra {
			p[k] = v
		}
		return p
	}
	var levels []topo.CacheLevel
	for lvl := range m.MemGBps {
		levels = append(levels, lvl)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	for _, lvl := range levels {
		b.Results = append(b.Results, kb.BenchmarkResult{
			Metric: "bandwidth", Value: m.MemGBps[lvl], Unit: "GB/s",
			Params: params(map[string]string{"level": lvl.String()}),
		})
	}
	b.Results = append(b.Results, kb.BenchmarkResult{
		Metric: "peak_flops", Value: m.PeakGFLOPS, Unit: "GFLOP/s",
		Params: params(nil),
	})
	return b
}

// FromBenchmark reconstructs a model from a KB entry written by
// ToBenchmark.
func FromBenchmark(b *kb.Benchmark) (*Model, error) {
	if b.Name != "carm" {
		return nil, fmt.Errorf("carm: benchmark entry %s is %q, not carm", b.ID, b.Name)
	}
	m := &Model{Host: b.Host, MemGBps: map[topo.CacheLevel]float64{}}
	for _, r := range b.Results {
		if m.ISA == "" {
			m.ISA = topo.ISA(r.Params["isa"])
			fmt.Sscanf(r.Params["threads"], "%d", &m.Threads)
		}
		switch r.Metric {
		case "bandwidth":
			lvl, err := parseLevel(r.Params["level"])
			if err != nil {
				return nil, err
			}
			m.MemGBps[lvl] = r.Value
		case "peak_flops":
			m.PeakGFLOPS = r.Value
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseLevel(s string) (topo.CacheLevel, error) {
	switch s {
	case "L1":
		return topo.L1, nil
	case "L2":
		return topo.L2, nil
	case "L3":
		return topo.L3, nil
	case "DRAM":
		return topo.DRAM, nil
	}
	return 0, fmt.Errorf("carm: unknown memory level %q", s)
}
