// Package abst implements P-MoVE's Abstraction Layer (§IV-A): a
// platform-agnostic mapping from generic event names to vendor-specific
// PMU event formulas. Configuration files follow the paper's grammar:
//
//	[pmu_name | alias]
//	<generic_event>:<hardware_event_1> [op]
//	[op] : ((+|-|*|/) (<hw_event> | <const>)) [op]
//
// so a generic event expands to an arithmetic expression over hardware
// events and constants, which differs per vendor and microarchitecture
// (Table I). Formulas are parsed once and can be evaluated against any
// reading source (live counters, recorded observations).
package abst

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Generic event names established by P-MoVE, "assumed to be supported by
// the commodity CPUs".
const (
	GenericEnergy       = "RAPL_ENERGY_PKG"
	GenericTotalMemOps  = "TOTAL_MEMORY_OPERATIONS"
	GenericL1DataMiss   = "L1_CACHE_DATA_MISS"
	GenericFPDivRetired = "FP_DIV_RETIRED"
	GenericL3Hit        = "L3_HIT"
	GenericInstructions = "INSTRUCTIONS_RETIRED"
	GenericCycles       = "CPU_CYCLES"
	GenericFlopsDouble  = "FLOPS_DOUBLE"
	GenericScalarDouble = "SCALAR_DOUBLE_INSTRUCTIONS"
	GenericAVX512Double = "AVX512_DOUBLE_INSTRUCTIONS"
)

// TokKind discriminates formula tokens.
type TokKind int

// Token kinds.
const (
	TokEvent TokKind = iota // hardware event name
	TokOp                   // + - * /
	TokConst                // numeric literal
)

// Token is one element of a formula in RPN-free infix form, exactly as
// pmu_utils.get returns it in the paper:
//
//	["MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES"]
type Token struct {
	Kind  TokKind
	Text  string
	Value float64 // for TokConst
}

// Formula is a parsed mapping for one generic event.
type Formula struct {
	Generic string
	Tokens  []Token
}

// Strings renders the formula as the token list of the paper's API.
func (f *Formula) Strings() []string {
	out := make([]string, len(f.Tokens))
	for i, t := range f.Tokens {
		out[i] = t.Text
	}
	return out
}

// Events returns the distinct hardware events the formula reads.
func (f *Formula) Events() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range f.Tokens {
		if t.Kind == TokEvent && !seen[t.Text] {
			seen[t.Text] = true
			out = append(out, t.Text)
		}
	}
	sort.Strings(out)
	return out
}

// Eval computes the formula over a reading function mapping hardware event
// names to values. Operators follow the usual precedence: * and / bind
// tighter than + and -, evaluation is otherwise left to right. This lets a
// single mapping line express weighted sums like
// "FP_ARITH:SCALAR_DOUBLE + FP_ARITH:512B_PACKED_DOUBLE * 8".
func (f *Formula) Eval(read func(event string) (float64, error)) (float64, error) {
	if len(f.Tokens) == 0 {
		return 0, fmt.Errorf("abst: empty formula for %s", f.Generic)
	}
	if len(f.Tokens)%2 == 0 {
		return 0, fmt.Errorf("abst: dangling operator in %s", f.Generic)
	}
	operand := func(t Token) (float64, error) {
		switch t.Kind {
		case TokEvent:
			return read(t.Text)
		case TokConst:
			return t.Value, nil
		}
		return 0, fmt.Errorf("abst: operator %q where operand expected in %s", t.Text, f.Generic)
	}
	// Pass 1: fold * and / runs into terms; collect terms and +/- ops.
	var terms []float64
	var addOps []string
	cur, err := operand(f.Tokens[0])
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(f.Tokens); i += 2 {
		op := f.Tokens[i]
		if op.Kind != TokOp {
			return 0, fmt.Errorf("abst: expected operator at token %d of %s, got %q", i, f.Generic, op.Text)
		}
		rhs, err := operand(f.Tokens[i+1])
		if err != nil {
			return 0, err
		}
		switch op.Text {
		case "*":
			cur *= rhs
		case "/":
			if rhs == 0 {
				return 0, fmt.Errorf("abst: division by zero in %s", f.Generic)
			}
			cur /= rhs
		case "+", "-":
			terms = append(terms, cur)
			addOps = append(addOps, op.Text)
			cur = rhs
		default:
			return 0, fmt.Errorf("abst: unknown operator %q in %s", op.Text, f.Generic)
		}
	}
	terms = append(terms, cur)
	// Pass 2: fold + and -.
	acc := terms[0]
	for i, op := range addOps {
		if op == "+" {
			acc += terms[i+1]
		} else {
			acc -= terms[i+1]
		}
	}
	return acc, nil
}

// Config is the mapping table of one PMU (microarchitecture): generic
// event -> formula.
type Config struct {
	PMU      string
	Aliases  []string
	formulas map[string]*Formula
}

// Formula returns the mapping for a generic event.
func (c *Config) Formula(generic string) (*Formula, bool) {
	f, ok := c.formulas[generic]
	return f, ok
}

// Generics lists the mapped generic events, sorted.
func (c *Config) Generics() []string {
	var out []string
	for g := range c.formulas {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// ParseConfig reads a configuration file in the paper's format. Lines
// starting with '#' are comments. The header line is
// "[pmu_name | alias1 | alias2 ...]".
func ParseConfig(r io.Reader) (*Config, error) {
	sc := bufio.NewScanner(r)
	var cfg *Config
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if cfg != nil {
				return nil, fmt.Errorf("abst: line %d: multiple headers (one PMU per config)", lineNo)
			}
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("abst: line %d: unterminated header", lineNo)
			}
			parts := strings.Split(strings.Trim(line, "[]"), "|")
			for i := range parts {
				parts[i] = strings.TrimSpace(parts[i])
			}
			if parts[0] == "" {
				return nil, fmt.Errorf("abst: line %d: empty pmu name", lineNo)
			}
			cfg = &Config{PMU: parts[0], Aliases: parts[1:], formulas: map[string]*Formula{}}
			continue
		}
		if cfg == nil {
			return nil, fmt.Errorf("abst: line %d: mapping before [pmu] header", lineNo)
		}
		generic, rhs, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("abst: line %d: expected <generic>:<formula>", lineNo)
		}
		generic = strings.TrimSpace(generic)
		if generic == "" {
			return nil, fmt.Errorf("abst: line %d: empty generic event name", lineNo)
		}
		f, err := parseFormula(generic, rhs)
		if err != nil {
			return nil, fmt.Errorf("abst: line %d: %w", lineNo, err)
		}
		if _, dup := cfg.formulas[generic]; dup {
			return nil, fmt.Errorf("abst: line %d: duplicate mapping for %s", lineNo, generic)
		}
		cfg.formulas[generic] = f
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cfg == nil {
		return nil, fmt.Errorf("abst: config has no [pmu] header")
	}
	if len(cfg.formulas) == 0 {
		return nil, fmt.Errorf("abst: config for %s has no mappings", cfg.PMU)
	}
	return cfg, nil
}

// parseFormula tokenizes "<hw_event> [op <hw_event|const>]...". Event
// names may contain ':' (Intel mask syntax), so the right-hand side is
// split on whitespace.
func parseFormula(generic, rhs string) (*Formula, error) {
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty formula for %s", generic)
	}
	f := &Formula{Generic: generic}
	for i, tok := range fields {
		expectOp := i%2 == 1
		isOp := tok == "+" || tok == "-" || tok == "*" || tok == "/"
		if expectOp != isOp {
			if expectOp {
				return nil, fmt.Errorf("expected operator at %q in %s", tok, generic)
			}
			return nil, fmt.Errorf("expected event or constant at %q in %s", tok, generic)
		}
		switch {
		case isOp:
			f.Tokens = append(f.Tokens, Token{Kind: TokOp, Text: tok})
		default:
			if v, err := strconv.ParseFloat(tok, 64); err == nil {
				f.Tokens = append(f.Tokens, Token{Kind: TokConst, Text: tok, Value: v})
			} else {
				f.Tokens = append(f.Tokens, Token{Kind: TokEvent, Text: tok})
			}
		}
	}
	if len(f.Tokens)%2 == 0 {
		return nil, fmt.Errorf("dangling operator in %s", generic)
	}
	return f, nil
}
