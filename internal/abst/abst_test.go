package abst

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"pmove/internal/tsdb"
)

func TestParseConfigPaperGrammar(t *testing.T) {
	src := `# comment
[skl | skx]
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
WEIGHTED: EV_A * 2 + EV_B / 4 - 1
`
	cfg, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PMU != "skl" || len(cfg.Aliases) != 1 || cfg.Aliases[0] != "skx" {
		t.Errorf("header: %q %v", cfg.PMU, cfg.Aliases)
	}
	if g := cfg.Generics(); len(g) != 3 {
		t.Errorf("generics: %v", g)
	}
	f, ok := cfg.Formula("TOTAL_MEMORY_OPERATIONS")
	if !ok {
		t.Fatal("mapping missing")
	}
	want := []string{"MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES"}
	got := f.Strings()
	if len(got) != len(want) {
		t.Fatalf("tokens: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %q want %q", i, got[i], want[i])
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		``,
		`EVENT: X`,             // mapping before header
		"[pmu\nE: X",           // unterminated header
		"[p]\nE X",             // missing colon
		"[p]\nE:",              // empty formula
		"[p]\nE: X +",          // dangling operator
		"[p]\nE: + X",          // leading operator
		"[p]\nE: X Y",          // two operands
		"[p]\nE: X\nE: Y",      // duplicate generic
		"[p]\nE: X\n[q]\nF: Y", // multiple headers
		"[]\nE: X",             // empty pmu name
		"[p]\n: X",             // empty generic
	}
	for _, src := range bad {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad config %q", src)
		}
	}
}

func TestEvalPrecedence(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(
		"[p]\nFLOPS: S + A * 2 + B * 4 - C / 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cfg.Formula("FLOPS")
	vals := map[string]float64{"S": 1, "A": 10, "B": 100, "C": 8}
	got, err := f.Eval(func(ev string) (float64, error) { return vals[ev], nil })
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 10*2 + 100*4 - 8.0/2 // 417
	if got != want {
		t.Errorf("eval = %v, want %v", got, want)
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	cfg, _ := ParseConfig(strings.NewReader("[p]\nR: A / B\n"))
	f, _ := cfg.Formula("R")
	_, err := f.Eval(func(string) (float64, error) { return 0, nil })
	if err == nil {
		t.Fatal("division by zero not reported")
	}
}

func TestEvalPropagatesReadErrors(t *testing.T) {
	cfg, _ := ParseConfig(strings.NewReader("[p]\nR: A + B\n"))
	f, _ := cfg.Formula("R")
	sentinel := errors.New("counter offline")
	_, err := f.Eval(func(ev string) (float64, error) {
		if ev == "B" {
			return 0, sentinel
		}
		return 1, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("read error not propagated: %v", err)
	}
}

func TestFormulaEvents(t *testing.T) {
	cfg, _ := ParseConfig(strings.NewReader("[p]\nR: A + B * 2 + A\n"))
	f, _ := cfg.Formula("R")
	evs := f.Events()
	if len(evs) != 2 || evs[0] != "A" || evs[1] != "B" {
		t.Errorf("events = %v (constants excluded, dedup'd, sorted)", evs)
	}
}

func TestDefaultRegistryTableI(t *testing.T) {
	reg, err := DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example call:
	// pmu_utils.get("skl", "TOTAL_MEMORY_OPERATIONS").
	toks, err := reg.Get("skl", GenericTotalMemOps)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES"}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("get = %v, want %v", toks, want)
		}
	}
	// Zen3 maps the same generic differently (Table I).
	toksAMD, err := reg.Get("zen3", GenericTotalMemOps)
	if err != nil {
		t.Fatal(err)
	}
	if toksAMD[0] != "LS_DISPATCH:STORE_DISPATCH" {
		t.Errorf("zen3 mapping: %v", toksAMD)
	}
	// L3_HIT is AMD-exclusive.
	if reg.Supports("cascade", GenericL3Hit) {
		t.Error("Intel Cascade should not support L3_HIT (Table I: Not Supported)")
	}
	if !reg.Supports("zen3", GenericL3Hit) {
		t.Error("Zen3 should support L3_HIT")
	}
	// Case-insensitive PMU names.
	if _, err := reg.Get("SKX", GenericEnergy); err != nil {
		t.Error("PMU lookup should be case-insensitive")
	}
	// Unknown lookups.
	if _, err := reg.Get("pdp11", GenericEnergy); err == nil {
		t.Error("unknown pmu accepted")
	}
	if _, err := reg.Get("skx", "NO_SUCH_GENERIC"); err == nil {
		t.Error("unknown generic accepted")
	}
}

func TestRegistryHardwareEvents(t *testing.T) {
	reg, _ := DefaultRegistry()
	evs, err := reg.HardwareEvents("cascade", []string{GenericTotalMemOps, GenericInstructions})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Errorf("events = %v", evs)
	}
}

func TestRegistryDuplicateRegistration(t *testing.T) {
	reg := NewRegistry()
	cfg, _ := ParseConfig(strings.NewReader("[p]\nE: X\n"))
	if err := reg.Register(cfg); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(cfg); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestBuiltinConfigsMatchCatalogs(t *testing.T) {
	reg, _ := DefaultRegistry()
	_ = reg
	intelCfg, err := ParseConfig(strings.NewReader(builtinConfigs["intel"]))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAgainstCatalog(intelCfg, "skx"); err != nil {
		t.Errorf("intel config references unknown events: %v", err)
	}
	amdCfg, err := ParseConfig(strings.NewReader(builtinConfigs["amd"]))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAgainstCatalog(amdCfg, "zen3"); err != nil {
		t.Errorf("amd config references unknown events: %v", err)
	}
	// Cross-vendor validation must fail.
	if err := ValidateAgainstCatalog(amdCfg, "skx"); err == nil {
		t.Error("amd config validated against an Intel catalog")
	}
}

func TestFlopsDoubleFormula(t *testing.T) {
	reg, _ := DefaultRegistry()
	f, err := reg.Lookup("skx", GenericFlopsDouble)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]float64{
		"FP_ARITH:SCALAR_DOUBLE":      1000,
		"FP_ARITH:128B_PACKED_DOUBLE": 100,
		"FP_ARITH:256B_PACKED_DOUBLE": 10,
		"FP_ARITH:512B_PACKED_DOUBLE": 1,
	}
	got, err := f.Eval(func(ev string) (float64, error) { return counts[ev], nil })
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 + 2*100.0 + 4*10.0 + 8*1.0
	if got != want {
		t.Errorf("FLOPS_DOUBLE = %v, want %v", got, want)
	}
}

func TestFormulaRoundTripProperty(t *testing.T) {
	// Any parsed formula's Strings() re-parses to the same token list.
	f := func(a, b uint8) bool {
		src := "[p]\nG: EV_A + EV_B * 2\n"
		cfg, err := ParseConfig(strings.NewReader(src))
		if err != nil {
			return false
		}
		fo, _ := cfg.Formula("G")
		re, err := parseFormula("G", strings.Join(fo.Strings(), " "))
		if err != nil {
			return false
		}
		va, vb := float64(a), float64(b)
		read := func(ev string) (float64, error) {
			if ev == "EV_A" {
				return va, nil
			}
			return vb, nil
		}
		x, err1 := fo.Eval(read)
		y, err2 := re.Eval(read)
		return err1 == nil && err2 == nil && x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalOverTSDB(t *testing.T) {
	db := tsdb.New()
	tag := "obs-eval"
	write := func(meas string, cpu0, cpu1 float64, ts int64) {
		if err := db.WritePoint(tsdb.Point{
			Measurement: meas,
			Tags:        map[string]string{"tag": tag},
			Fields:      map[string]float64{"_cpu0": cpu0, "_cpu1": cpu1},
			Time:        ts,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Cumulative counters over two samples for both Table I operands.
	write("perfevent_hwcounters_MEM_INST_RETIRED_ALL_LOADS", 50, 70, 1)
	write("perfevent_hwcounters_MEM_INST_RETIRED_ALL_LOADS", 100, 140, 2)
	write("perfevent_hwcounters_MEM_INST_RETIRED_ALL_STORES", 10, 20, 1)
	write("perfevent_hwcounters_MEM_INST_RETIRED_ALL_STORES", 30, 50, 2)

	reg, err := DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalOverTSDB(db, reg, "cascade", GenericTotalMemOps, tag, []string{"_cpu0", "_cpu1"})
	if err != nil {
		t.Fatal(err)
	}
	// Final loads 100+140=240, final stores 30+50=80 => 320.
	if got != 320 {
		t.Errorf("TOTAL_MEMORY_OPERATIONS = %v, want 320", got)
	}
	// Missing telemetry surfaces as an error, not zero.
	if _, err := EvalOverTSDB(db, reg, "cascade", GenericL1DataMiss, tag, nil); err == nil {
		t.Error("missing measurement should error")
	}
	// Unknown generic.
	if _, err := EvalOverTSDB(db, reg, "cascade", "NOPE", tag, nil); err == nil {
		t.Error("unknown generic accepted")
	}
}
