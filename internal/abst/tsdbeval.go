package abst

import (
	"fmt"

	"pmove/internal/tsdb"
)

// EvalOverTSDB evaluates a generic event's formula against the telemetry
// an observation stored: each referenced hardware event is read back as
// the final cumulative count of its measurement (summed over the given
// instance fields), then the vendor formula combines them — the
// "generation of queries for advanced analysis" the KB enables, expressed
// through the Abstraction Layer.
//
// Example: EvalOverTSDB(db, reg, "cascade", GenericTotalMemOps, tag,
// fields) reads the MEM_INST_RETIRED:ALL_LOADS and ...:ALL_STORES
// measurements under the observation tag and returns their sum.
func EvalOverTSDB(db *tsdb.DB, reg *Registry, pmuName, genericEvent, tag string, fields []string) (float64, error) {
	f, err := reg.Lookup(pmuName, genericEvent)
	if err != nil {
		return 0, err
	}
	return f.Eval(func(hwEvent string) (float64, error) {
		meas := "perfevent_hwcounters_" + sanitize(hwEvent)
		q := &tsdb.Query{
			Fields:      fields,
			Measurement: meas,
			TagFilter:   map[string]string{},
		}
		if len(fields) == 0 {
			q.Fields = []string{"*"}
		}
		if tag != "" {
			q.TagFilter["tag"] = tag
		}
		res, err := db.Execute(q)
		if err != nil {
			return 0, err
		}
		if len(res.Rows) == 0 {
			return 0, fmt.Errorf("abst: no telemetry for %s (measurement %s, tag %q)", hwEvent, meas, tag)
		}
		// Cumulative counters: the maximum per field is the final count;
		// batched zeros and losses only remove information.
		best := map[string]float64{}
		for _, row := range res.Rows {
			for field, v := range row.Values {
				if v > best[field] {
					best[field] = v
				}
			}
		}
		total := 0.0
		for _, v := range best {
			total += v
		}
		return total, nil
	})
}

// sanitize mirrors the measurement naming of the telemetry exporter.
func sanitize(ev string) string {
	out := make([]rune, 0, len(ev))
	for _, r := range ev {
		switch r {
		case ':', '.', '-':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
