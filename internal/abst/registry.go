package abst

import (
	"fmt"
	"sort"
	"strings"

	"pmove/internal/pmu"
)

// Registry holds the registered configuration files and answers
// pmu_utils.get-style lookups: "Upon registering the desired configuration
// files within P-MoVE, the application proceeds to configure the PCP of
// the target system using the registered configuration files when needed."
type Registry struct {
	byPMU map[string]*Config
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byPMU: map[string]*Config{}} }

// Register installs a config under its PMU name and all aliases.
func (r *Registry) Register(cfg *Config) error {
	names := append([]string{cfg.PMU}, cfg.Aliases...)
	for _, n := range names {
		key := strings.ToLower(n)
		if _, dup := r.byPMU[key]; dup {
			return fmt.Errorf("abst: pmu %q already registered", n)
		}
	}
	for _, n := range names {
		r.byPMU[strings.ToLower(n)] = cfg
	}
	return nil
}

// PMUs lists registered PMU names (including aliases), sorted.
func (r *Registry) PMUs() []string {
	var out []string
	for n := range r.byPMU {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get is the paper's pmu_utils.get(HW_PMU_NAME, COMMON_EVENT_NAME): it
// returns the formula token list for a generic event on a PMU, e.g.
//
//	Get("skl", "TOTAL_MEMORY_OPERATIONS") ->
//	  ["MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES"]
func (r *Registry) Get(pmuName, genericEvent string) ([]string, error) {
	f, err := r.Lookup(pmuName, genericEvent)
	if err != nil {
		return nil, err
	}
	return f.Strings(), nil
}

// Lookup returns the parsed formula.
func (r *Registry) Lookup(pmuName, genericEvent string) (*Formula, error) {
	cfg, ok := r.byPMU[strings.ToLower(pmuName)]
	if !ok {
		return nil, fmt.Errorf("abst: no configuration registered for pmu %q", pmuName)
	}
	f, ok := cfg.Formula(genericEvent)
	if !ok {
		return nil, fmt.Errorf("abst: pmu %q has no mapping for generic event %q", pmuName, genericEvent)
	}
	return f, nil
}

// Supports reports whether a generic event is mapped on a PMU.
func (r *Registry) Supports(pmuName, genericEvent string) bool {
	_, err := r.Lookup(pmuName, genericEvent)
	return err == nil
}

// HardwareEvents returns the union of hardware events needed to evaluate
// the given generic events on a PMU — what the daemon programs before an
// observation.
func (r *Registry) HardwareEvents(pmuName string, generics []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, g := range generics {
		f, err := r.Lookup(pmuName, g)
		if err != nil {
			return nil, err
		}
		for _, ev := range f.Events() {
			if !seen[ev] {
				seen[ev] = true
				out = append(out, ev)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// builtinConfigs are the Table I mappings (and the further events P-MoVE's
// CARM needs), expressed in the paper's config-file syntax.
var builtinConfigs = map[string]string{
	// Intel Skylake-X / Cascade Lake / Ice Lake share event names; skl is
	// the alias the paper's example uses.
	"intel": `[skx | skl | icl | cascade]
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
L1_CACHE_DATA_MISS: L1D:REPLACEMENT
FP_DIV_RETIRED: ARITH:DIVIDER_ACTIVE
INSTRUCTIONS_RETIRED: INSTRUCTION_RETIRED
CPU_CYCLES: UNHALTED_CORE_CYCLES
SCALAR_DOUBLE_INSTRUCTIONS: FP_ARITH:SCALAR_DOUBLE
AVX512_DOUBLE_INSTRUCTIONS: FP_ARITH:512B_PACKED_DOUBLE
FLOPS_DOUBLE: FP_ARITH:SCALAR_DOUBLE + FP_ARITH:128B_PACKED_DOUBLE * 2 + FP_ARITH:256B_PACKED_DOUBLE * 4 + FP_ARITH:512B_PACKED_DOUBLE * 8
`,
	// AMD Zen3: same generic events, different formulas; L3_HIT is the
	// Table I example of an event Intel lacks.
	"amd": `[zen3]
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
TOTAL_MEMORY_OPERATIONS: LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH
L1_CACHE_DATA_MISS: L1_DC_MISSES
FP_DIV_RETIRED: DIV_OP_COUNT
L3_HIT: LONGEST_LAT_CACHE:RETIRED - LONGEST_LAT_CACHE:MISS
INSTRUCTIONS_RETIRED: RETIRED_INSTRUCTIONS
CPU_CYCLES: CYCLES_NOT_IN_HALT
FLOPS_DOUBLE: RETIRED_SSE_AVX_FLOPS:ANY
`,
}

// DefaultRegistry returns a registry pre-loaded with the built-in Intel
// and AMD configurations of Table I.
func DefaultRegistry() (*Registry, error) {
	r := NewRegistry()
	for name, text := range builtinConfigs {
		cfg, err := ParseConfig(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("abst: builtin %s: %w", name, err)
		}
		if err := r.Register(cfg); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ValidateAgainstCatalog checks every hardware event referenced by a PMU's
// formulas exists in that microarchitecture's event catalog — run at
// registration time in the daemon so bad configs fail fast.
func ValidateAgainstCatalog(cfg *Config, microarch string) error {
	cat, err := pmu.CatalogFor(microarch)
	if err != nil {
		return err
	}
	for _, g := range cfg.Generics() {
		f, _ := cfg.Formula(g)
		for _, ev := range f.Events() {
			if _, ok := cat.Lookup(ev); !ok {
				return fmt.Errorf("abst: %s maps %s to unknown %s event %q", cfg.PMU, g, microarch, ev)
			}
		}
	}
	return nil
}
