package tsdb

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pmove/internal/storage"
)

// TestShardedStressConservation is the lock-striping stress oracle: 64
// concurrent writers over 8 measurements, each point written exactly
// once, and the merged Stats() plus per-measurement CountValues must
// account for every write. Run under -race this also proves the stripe
// locking is sound.
func TestShardedStressConservation(t *testing.T) {
	const (
		writers      = 64
		measurements = 8
		perWriter    = 50
	)
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := fmt.Sprintf("m%d", w%measurements)
			for i := 0; i < perWriter; i++ {
				// Per-writer disjoint timestamps keep the duplicate check
				// meaningful.
				p := Point{
					Measurement: m,
					Fields:      map[string]float64{"v": float64(i), "w": float64(w)},
					Time:        int64(w*perWriter + i),
				}
				if err := db.WritePoint(p); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	points, values := db.Stats()
	if want := uint64(writers * perWriter); points != want {
		t.Fatalf("Stats points = %d, want %d", points, want)
	}
	if want := uint64(writers * perWriter * 2); values != want {
		t.Fatalf("Stats values = %d, want %d", values, want)
	}
	var stored uint64
	names := db.Measurements()
	if len(names) != measurements {
		t.Fatalf("got %d measurements, want %d", len(names), measurements)
	}
	for _, m := range names {
		n, _ := db.CountValues(m)
		stored += n
	}
	if stored != values {
		t.Fatalf("measurements hold %d values, Stats reports %d", stored, values)
	}
}

// TestShardedStressBatches mixes concurrent batch writers with readers:
// conservation must hold and every series must stay time-ordered.
func TestShardedStressBatches(t *testing.T) {
	const (
		writers   = 16
		batches   = 20
		batchSize = 8
	)
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				ps := make([]Point, batchSize)
				for i := range ps {
					ps[i] = Point{
						Measurement: fmt.Sprintf("m%d", (w+i)%8),
						Fields:      map[string]float64{"v": 1},
						Time:        int64(w*1e6 + b*batchSize + i),
					}
				}
				if err := db.WriteBatchContext(context.Background(), ps); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
				// Interleave reads to exercise the shard RLock paths.
				db.Stats()
				db.CountValues("m0")
			}
		}(w)
	}
	wg.Wait()
	points, _ := db.Stats()
	if want := uint64(writers * batches * batchSize); points != want {
		t.Fatalf("Stats points = %d, want %d", points, want)
	}
	for _, m := range db.Measurements() {
		res, err := db.ExecuteContext(context.Background(), QueryRequest{Query: &Query{Fields: []string{"*"}, Measurement: m}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i].Time < res.Rows[i-1].Time {
				t.Fatalf("%s: rows out of time order at %d", m, i)
			}
		}
	}
}

// TestWriteBatchAtomicRejection: a batch with one invalid point is
// rejected whole — typed *BatchError naming the offending index, zero
// points applied, no state change anywhere.
func TestWriteBatchAtomicRejection(t *testing.T) {
	db := New()
	ps := []Point{
		{Measurement: "good", Fields: map[string]float64{"v": 1}, Time: 1},
		{Measurement: "good", Fields: map[string]float64{"v": 2}, Time: 2},
		{Measurement: "", Fields: map[string]float64{"v": 3}, Time: 3}, // invalid
	}
	err := db.WriteBatchContext(context.Background(), ps)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if be.Index != 2 || be.Applied != 0 {
		t.Fatalf("BatchError{Index: %d, Applied: %d}, want {2, 0}", be.Index, be.Applied)
	}
	if points, _ := db.Stats(); points != 0 {
		t.Fatalf("rejected batch left %d points behind (atomicity violated)", points)
	}
	if n := len(db.Measurements()); n != 0 {
		t.Fatalf("rejected batch created %d measurements", n)
	}
}

// TestWriteBatchEmptyAndCancelled covers the trivial edges: an empty
// batch is a no-op, a cancelled context is refused before any work.
func TestWriteBatchEmptyAndCancelled(t *testing.T) {
	db := New()
	if err := db.WriteBatchContext(context.Background(), nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := db.WriteBatchContext(ctx, []Point{{Measurement: "m", Fields: map[string]float64{"v": 1}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
	if points, _ := db.Stats(); points != 0 {
		t.Fatalf("cancelled batch applied %d points", points)
	}
}

// TestExecuteContextForms: the request-struct query API accepts both a
// statement and a pre-parsed query, and the deprecated wrappers agree.
func TestExecuteContextForms(t *testing.T) {
	db := New()
	for i := 0; i < 4; i++ {
		if err := db.WritePoint(Point{Measurement: "m", Fields: map[string]float64{"v": float64(i)}, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	byStmt, err := db.ExecuteContext(context.Background(), QueryRequest{Statement: `SELECT v FROM m`})
	if err != nil {
		t.Fatal(err)
	}
	byQuery, err := db.ExecuteContext(context.Background(), QueryRequest{Query: &Query{Fields: []string{"v"}, Measurement: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	old, err := db.QueryString(`SELECT v FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	if len(byStmt.Rows) != 4 || len(byQuery.Rows) != 4 || len(old.Rows) != 4 {
		t.Fatalf("rows: stmt=%d query=%d deprecated=%d, want 4 each", len(byStmt.Rows), len(byQuery.Rows), len(old.Rows))
	}
	if _, err := db.ExecuteContext(context.Background(), QueryRequest{Statement: "not a query"}); err == nil {
		t.Fatal("malformed statement accepted")
	}
}

// TestDurableBatchGroupCommit: a batch on a durable DB is ONE WAL
// record; crash + reopen recovers every point of it exactly once.
func TestDurableBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]Point, 10)
	for i := range ps {
		ps[i] = Point{Measurement: fmt.Sprintf("m%d", i%3), Fields: map[string]float64{"v": float64(i)}, Time: int64(i)}
	}
	if err := db.WriteBatchContext(context.Background(), ps); err != nil {
		t.Fatal(err)
	}
	walPath := db.WALPath()
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	// Group commit: the whole batch must be a single framed record.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := storage.DecodeAll(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("batch produced %d WAL records, want 1 (group commit)", len(recs))
	}
	if !storage.IsBatchBody(recs[0].Data) {
		t.Fatal("batch WAL record is not a batch envelope")
	}
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	points, _ := re.Stats()
	if points != uint64(len(ps)) {
		t.Fatalf("recovered %d points, want %d", points, len(ps))
	}
}

// TestDurableBatchTornRecoversWholeOrNone: a crash that tears the
// batch's WAL frame discards the WHOLE batch on recovery — never a
// prefix of it. (Atomicity under crash, the recovery half of the
// group-commit contract.)
func TestDurableBatchTornRecoversWholeOrNone(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// A pre-batch point that must survive.
	if err := db.WritePoint(Point{Measurement: "keep", Fields: map[string]float64{"v": 1}, Time: 1}); err != nil {
		t.Fatal(err)
	}
	ps := make([]Point, 8)
	for i := range ps {
		ps[i] = Point{Measurement: "batch", Fields: map[string]float64{"v": float64(i)}, Time: int64(i)}
	}
	if err := db.WriteBatchContext(context.Background(), ps); err != nil {
		t.Fatal(err)
	}
	walPath := db.WALPath()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the batch record: cut the WAL mid-frame, as a crash mid-append
	// would have.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatalf("reopen over torn batch: %v", err)
	}
	defer re.Close()
	if n, _ := re.CountValues("keep"); n != 1 {
		t.Fatalf("pre-batch point lost (%d values)", n)
	}
	if n, _ := re.CountValues("batch"); n != 0 {
		t.Fatalf("torn batch partially recovered: %d values (want whole-or-none = none)", n)
	}
}

// TestClientWriteBatchRoundTrip: the WRITEB frame end to end through
// the resilient client — points land once, queries see them.
func TestClientWriteBatchRoundTrip(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	c, err := DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ps := make([]Point, 20)
	for i := range ps {
		ps[i] = Point{Measurement: "wire", Fields: map[string]float64{"v": float64(i)}, Time: int64(i)}
	}
	if err := c.WriteBatchContext(context.Background(), ps); err != nil {
		t.Fatal(err)
	}
	if points, _ := db.Stats(); points != uint64(len(ps)) {
		t.Fatalf("server holds %d points, want %d", points, len(ps))
	}
	res, err := c.QueryContext(context.Background(), `SELECT v FROM wire`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ps) {
		t.Fatalf("query sees %d rows, want %d", len(res.Rows), len(ps))
	}
	// Client-side validation: an unencodable point never reaches the wire.
	bad := []Point{{Measurement: "wire", Fields: map[string]float64{"v": 1}}, {Measurement: ""}}
	var be *BatchError
	if err := c.WriteBatchContext(context.Background(), bad); !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("want *BatchError{Index: 1}, got %v", err)
	}
}

// TestWriteBatchDedupOnRetry: re-sending a WRITEB frame with the same
// idempotency token (what a client retry after a lost ack does) is
// acknowledged without re-inserting — batch writes are exactly-once
// under retry.
func TestWriteBatchDedupOnRetry(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	frame := "WRITEB 2 id=test-tok-1\nm v=1 1\nm v=2 2\n"
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := conn.Write([]byte(frame)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if strings.TrimSpace(resp) != "OK 2" {
			t.Fatalf("attempt %d: got %q, want OK 2", attempt, resp)
		}
	}
	if points, _ := db.Stats(); points != 2 {
		t.Fatalf("server holds %d points after duplicate frame, want 2 (dedup)", points)
	}
	// A NEW token with the same body is a different logical batch.
	if _, err := conn.Write([]byte("WRITEB 2 id=test-tok-2\nm v=1 10\nm v=2 20\n")); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(resp) != "OK 2" {
		t.Fatalf("new token: got %q", resp)
	}
	if points, _ := db.Stats(); points != 4 {
		t.Fatalf("server holds %d points, want 4", points)
	}
}

// TestWriteBatchStreamSync: a valid header with a rejected body line
// drains the whole body and leaves the stream in sync (next command
// answers normally); an invalid header is fatal and closes the
// connection, because the server cannot know how many lines follow.
func TestWriteBatchStreamSync(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	// Valid header, one malformed body line: ERR, but the stream stays
	// usable — the next PING on the same connection answers.
	if _, err := conn.Write([]byte("WRITEB 2\nm v=1 1\nnot a valid line\nPING\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("malformed body line: got %q, want ERR", resp)
	}
	resp, err = r.ReadString('\n')
	if err != nil {
		t.Fatalf("stream desynced after rejected batch: %v", err)
	}
	if strings.TrimSpace(resp) != "PONG" {
		t.Fatalf("post-rejection ping: got %q, want PONG", resp)
	}
	if points, _ := db.Stats(); points != 0 {
		t.Fatalf("rejected batch applied %d points", points)
	}

	// Invalid header (unparseable count): ERR, then the server hangs up.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	r2 := bufio.NewReader(conn2)
	if _, err := conn2.Write([]byte("WRITEB nonsense\n")); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err = r2.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad header: got %q, want ERR", resp)
	}
	if _, err := r2.ReadString('\n'); err == nil {
		t.Fatal("connection survived a fatal batch header (desync risk)")
	}

	// Over-limit n is equally fatal: the server refuses to drain it.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	r3 := bufio.NewReader(conn3)
	fmt.Fprintf(conn3, "WRITEB %d\n", MaxBatchPoints+1)
	conn3.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err = r3.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("over-limit header: got %q, want ERR", resp)
	}
	if _, err := r3.ReadString('\n'); err == nil {
		t.Fatal("connection survived an over-limit batch header")
	}
}

// TestBatcher covers the auto-batcher contract: size-triggered flush,
// explicit flush of a partial tail, failed batches handed back via
// OnError, and refusal after Close.
func TestBatcher(t *testing.T) {
	db := New()
	b := NewBatcher(context.Background(), db, BatcherConfig{MaxPoints: 4, FlushInterval: -1})
	for i := 0; i < 10; i++ {
		if err := b.Add(Point{Measurement: "m", Fields: map[string]float64{"v": 1}, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 10 adds with MaxPoints=4: two full batches shipped, 2 pending.
	if points, _ := db.Stats(); points != 8 {
		t.Fatalf("after adds: %d points shipped, want 8", points)
	}
	if p := b.Pending(); p != 2 {
		t.Fatalf("pending = %d, want 2", p)
	}
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if points, _ := db.Stats(); points != 10 {
		t.Fatalf("after flush: %d points, want 10", points)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Point{Measurement: "m", Fields: map[string]float64{"v": 1}}); err == nil {
		t.Fatal("closed batcher accepted a point")
	}

	// Failure path: an invalid point poisons its batch; OnError gets the
	// whole batch back intact (spill-journal compatibility).
	var handed []Point
	fb := NewBatcher(context.Background(), db, BatcherConfig{
		MaxPoints:     2,
		FlushInterval: -1,
		OnError:       func(ps []Point, err error) { handed = append(handed, ps...) },
	})
	fb.Add(Point{Measurement: "ok", Fields: map[string]float64{"v": 1}, Time: 1})
	if err := fb.Add(Point{Measurement: "", Time: 2}); err == nil {
		t.Fatal("batch with invalid point shipped without error")
	}
	if len(handed) != 2 {
		t.Fatalf("OnError handed back %d points, want the whole batch of 2", len(handed))
	}
	fb.Close()
}

// TestBatcherTimerFlush: a partial batch ships on the interval without
// any further Adds.
func TestBatcherTimerFlush(t *testing.T) {
	db := New()
	b := NewBatcher(context.Background(), db, BatcherConfig{MaxPoints: 100, FlushInterval: 10 * time.Millisecond})
	defer b.Close()
	if err := b.Add(Point{Measurement: "m", Fields: map[string]float64{"v": 1}, Time: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if points, _ := db.Stats(); points == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flush never shipped the buffered point")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
