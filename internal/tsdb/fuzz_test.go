package tsdb

import (
	"errors"
	"testing"
)

// pointsEqual compares decoded points. Float comparison uses == (NaN
// never survives Validate, and -0 re-encodes stably).
func pointsEqual(a, b Point) bool {
	if a.Measurement != b.Measurement || a.Time != b.Time ||
		len(a.Tags) != len(b.Tags) || len(a.Fields) != len(b.Fields) {
		return false
	}
	for k, v := range a.Tags {
		if b.Tags[k] != v {
			return false
		}
	}
	for k, v := range a.Fields {
		if bv, ok := b.Fields[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// FuzzDecodeLine asserts the decoder's contract over arbitrary input:
// never panic, and every accepted line re-encodes to a canonical form
// that decodes back to the same point, byte-stably.
func FuzzDecodeLine(f *testing.F) {
	f.Add("cpu,host=a usage=0.5 1000")
	f.Add(`kernel_percpu_cpu_idle,tag=x _cpu0=99.5,_cpu1=98 1722000000000000000`)
	f.Add(`esc\ aped,k\,ey=v\=al f\\x=1e-9 -5`)
	f.Add("m f=1 5")
	f.Add("m f=NaN 5")
	f.Add("m f=+Inf 5")
	f.Add("m,a=b,a=c f=1 5")
	f.Add("m,=x f=1 5")
	f.Add(`trailing\`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		p, err := DecodeLine(line)
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		enc, err := EncodeLine(p)
		if err != nil {
			t.Fatalf("accepted line %q decoded to unencodable point %+v: %v", line, p, err)
		}
		p2, err := DecodeLine(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding %q of %q does not decode: %v", enc, line, err)
		}
		if !pointsEqual(p, p2) {
			t.Fatalf("round trip changed the point:\n first: %+v\nsecond: %+v\n  line: %q\n   enc: %q", p, p2, line, enc)
		}
		enc2, err := EncodeLine(p2)
		if err != nil || enc2 != enc {
			t.Fatalf("canonical form unstable: %q then %q (err %v)", enc, enc2, err)
		}
	})
}

// FuzzEncodeDecodeRoundTrip builds points from fuzzed primitives and
// asserts every point the validator accepts survives an encode/decode
// round trip unchanged — including names full of separators, escapes and
// exotic-but-finite float values.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add("cpu", "host", "a", "usage", 0.5, "idle", 99.5, int64(1000))
	f.Add("m, m", "k=", "v v", `f\`, -0.0, "g", 1e308, int64(-1))
	f.Add("μετρ", "ключ", "значение", "字段", 1.5e-300, "f2", 3.0, int64(0))
	f.Add("m", "", "", "f", 1.0, "f", 2.0, int64(5))
	f.Fuzz(func(t *testing.T, measurement, tagKey, tagVal, fieldKey string, fieldVal float64, extraKey string, extraVal float64, ts int64) {
		p := Point{
			Measurement: measurement,
			Tags:        map[string]string{},
			Fields:      map[string]float64{fieldKey: fieldVal, extraKey: extraVal},
			Time:        ts,
		}
		if tagKey != "" || tagVal != "" {
			p.Tags[tagKey] = tagVal
		}
		if err := p.Validate(); err != nil {
			// Must be one of the typed rejections, never a panic or a
			// silent mangle.
			if !errors.Is(err, ErrNonFiniteField) && !errors.Is(err, ErrEmptyKey) && !errors.Is(err, ErrDuplicateKey) &&
				measurement != "" && len(p.Fields) != 0 {
				t.Fatalf("unexpected rejection class for %+v: %v", p, err)
			}
			return
		}
		enc, err := EncodeLine(p)
		if err != nil {
			t.Fatalf("valid point %+v failed to encode: %v", p, err)
		}
		got, err := DecodeLine(enc)
		if err != nil {
			t.Fatalf("own encoding %q of %+v does not decode: %v", enc, p, err)
		}
		if !pointsEqual(p, got) {
			t.Fatalf("round trip changed the point:\n  in: %+v\n out: %+v\n enc: %q", p, got, enc)
		}
	})
}
