package tsdb

import (
	"fmt"
	"sort"
	"strings"

	"pmove/internal/storage"
)

// Durability for the embedded tsdb: Open binds a DB to a data directory
// managed by internal/storage — every accepted point is appended to the
// write-ahead log (one line-protocol record per point, the same codec
// the wire speaks) before it lands in memory, and Open replays
// snapshot+WAL so a restart reconstructs exactly the acknowledged
// writes. Compact folds the log into an atomic snapshot.
//
// The line protocol is already the canonical, fuzz-hardened encoding of
// a point (EncodeLine∘DecodeLine is the identity on valid points), so
// the WAL record body reuses it instead of inventing a second codec.
// Batch writes group-commit: the whole batch is ONE WAL record (a
// storage batch envelope of line-protocol sub-bodies), so recovery
// replays a batch entirely or — when the crash tore its frame — not at
// all. Single-point records keep plain line bodies, so old WALs replay
// unchanged.

// Open opens (creating if needed) a durable DB at dir. Recovery order:
// the snapshot's points first, then every WAL record newer than the
// snapshot — records the snapshot already covers were filtered out by
// the storage layer, so replay is idempotent. A torn final WAL record
// (crash mid-append) is silently truncated; mid-file corruption errors.
func Open(dir string, pol storage.FsyncPolicy) (*DB, error) {
	st, rec, err := storage.Open(dir, pol)
	if err != nil {
		return nil, err
	}
	db := New()
	replayLine := func(line string) error {
		p, derr := DecodeLine(line)
		if derr != nil {
			return fmt.Errorf("tsdb: recover %s: %w", dir, derr)
		}
		sh := db.shardFor(p.Measurement)
		sh.insertLocked(p)
		return nil
	}
	if len(rec.Snapshot) > 0 {
		for _, line := range strings.Split(string(rec.Snapshot), "\n") {
			if line == "" {
				continue
			}
			if err := replayLine(line); err != nil {
				st.Close()
				return nil, err
			}
		}
	}
	for _, r := range rec.Records {
		if storage.IsBatchBody(r.Data) {
			items, derr := storage.DecodeBatchBody(r.Data)
			if derr != nil {
				st.Close()
				return nil, fmt.Errorf("tsdb: recover %s: %w", dir, derr)
			}
			for _, it := range items {
				if err := replayLine(string(it)); err != nil {
					st.Close()
					return nil, err
				}
			}
			continue
		}
		if err := replayLine(string(r.Data)); err != nil {
			st.Close()
			return nil, err
		}
	}
	db.mu.Lock()
	db.store = st
	db.mu.Unlock()
	return db, nil
}

// Durable reports whether the DB is backed by a data directory.
func (db *DB) Durable() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store != nil
}

// WALPath returns the write-ahead log path ("" for in-memory DBs);
// fault-injection harnesses tear and corrupt it between restarts.
func (db *DB) WALPath() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return ""
	}
	return db.store.WALPath()
}

// Sync forces the WAL to stable storage — the flush-on-close barrier
// and the interval policy's manual checkpoint. No-op in memory.
func (db *DB) Sync() error {
	db.mu.RLock()
	st := db.store
	db.mu.RUnlock()
	if st == nil {
		return nil
	}
	return st.Sync()
}

// snapshotLocked renders the whole store as line protocol, one point
// per line, measurements in sorted order. Callers hold db.mu
// exclusively (shard locks are not needed: the structural lock excludes
// all writers).
func (db *DB) snapshotLocked() ([]byte, error) {
	var names []string
	for i := range db.shards {
		for m := range db.shards[i].measurements {
			names = append(names, m)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, m := range names {
		sh := db.shardFor(m)
		for _, p := range sh.measurements[m].points {
			line, err := EncodeLine(p)
			if err != nil {
				return nil, fmt.Errorf("tsdb: snapshot %s: %w", m, err)
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return []byte(b.String()), nil
}

// Compact folds the current state into an atomic snapshot and resets
// the WAL — bounding recovery time and log growth. Crash-safe at every
// step (see storage.Store.Compact). No-op in memory.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	snap, err := db.snapshotLocked()
	if err != nil {
		return err
	}
	return db.store.Compact(snap)
}

// Close flushes and releases the data directory. The DB stays readable
// (it is just memory) but further writes error. No-op in memory.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	err := db.store.Close()
	db.store = nil
	db.closed = true
	return err
}

// Crash simulates the process dying without a flush: the WAL keeps only
// what the fsync policy had already made stable, and the DB detaches
// from the directory. With fsync=always no acknowledged point is lost;
// weaker policies lose the unsynced suffix — which is exactly what the
// recovery oracles probe. Test/simulation use only.
func (db *DB) Crash() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	err := db.store.Crash()
	db.store = nil
	db.closed = true
	return err
}
