package tsdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"pmove/internal/storage"
)

// Durability for the embedded tsdb: Open binds a DB to a data directory
// managed by internal/storage — every accepted point is appended to the
// write-ahead log (one line-protocol record per point, the same codec
// the wire speaks) before it lands in memory, and Open replays
// snapshot+WAL so a restart reconstructs exactly the acknowledged
// writes. Compact folds the log into an atomic snapshot.
//
// The line protocol is already the canonical, fuzz-hardened encoding of
// a point (EncodeLine∘DecodeLine is the identity on valid points), so
// the WAL record body reuses it instead of inventing a second codec.
// Batch writes group-commit: the whole batch is ONE WAL record (a
// storage batch envelope of line-protocol sub-bodies), so recovery
// replays a batch entirely or — when the crash tore its frame — not at
// all. Single-point records keep plain line bodies, so old WALs replay
// unchanged.
//
// Snapshots are columnar: sealed blocks are written in their compressed
// wire form (the same bytes resident in memory — zero re-encoding) and
// each mutable head is sealed into one block for the file, so snapshot
// size and write time shrink with the storage compression ratio.
// Snapshots produced by the old row engine (plain line protocol) are
// detected by the missing magic and replayed line by line.

// snapshotMagic heads a columnar snapshot. Line-protocol snapshots can
// never collide with it: a line starts with a measurement name and '\7'
// is not valid there.
const snapshotMagic = "\x07PMVCOL1\n"

// Open opens (creating if needed) a durable DB at dir. Recovery order:
// the snapshot's points first, then every WAL record newer than the
// snapshot — records the snapshot already covers were filtered out by
// the storage layer, so replay is idempotent. A torn final WAL record
// (crash mid-append) is silently truncated; mid-file corruption errors.
func Open(dir string, pol storage.FsyncPolicy) (*DB, error) {
	st, rec, err := storage.Open(dir, pol)
	if err != nil {
		return nil, err
	}
	db := New()
	replayLine := func(line string) error {
		p, derr := DecodeLine(line)
		if derr != nil {
			return fmt.Errorf("tsdb: recover %s: %w", dir, derr)
		}
		sh := db.shardFor(p.Measurement)
		sh.insertLocked(p)
		return nil
	}
	if len(rec.Snapshot) > 0 {
		if bytes.HasPrefix(rec.Snapshot, []byte(snapshotMagic)) {
			if err := db.loadSnapshot(rec.Snapshot); err != nil {
				st.Close()
				return nil, fmt.Errorf("tsdb: recover %s: %w", dir, err)
			}
		} else {
			// Legacy row-engine snapshot: line protocol, one point per line.
			for _, line := range strings.Split(string(rec.Snapshot), "\n") {
				if line == "" {
					continue
				}
				if err := replayLine(line); err != nil {
					st.Close()
					return nil, err
				}
			}
		}
	}
	for _, r := range rec.Records {
		if storage.IsBatchBody(r.Data) {
			items, derr := storage.DecodeBatchBody(r.Data)
			if derr != nil {
				st.Close()
				return nil, fmt.Errorf("tsdb: recover %s: %w", dir, derr)
			}
			for _, it := range items {
				if err := replayLine(string(it)); err != nil {
					st.Close()
					return nil, err
				}
			}
			continue
		}
		if err := replayLine(string(r.Data)); err != nil {
			st.Close()
			return nil, err
		}
	}
	db.mu.Lock()
	db.store = st
	db.mu.Unlock()
	return db, nil
}

// Durable reports whether the DB is backed by a data directory.
func (db *DB) Durable() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store != nil
}

// WALPath returns the write-ahead log path ("" for in-memory DBs);
// fault-injection harnesses tear and corrupt it between restarts.
func (db *DB) WALPath() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return ""
	}
	return db.store.WALPath()
}

// Sync forces the WAL to stable storage — the flush-on-close barrier
// and the interval policy's manual checkpoint. No-op in memory.
func (db *DB) Sync() error {
	db.mu.RLock()
	st := db.store
	db.mu.RUnlock()
	if st == nil {
		return nil
	}
	return st.Sync()
}

// Snapshot chunk kinds: a sealed block carried verbatim, or the head
// sealed just for the file (it stays mutable in memory).
const (
	chunkSealed = 1
	chunkHead   = 0
)

// snapshotLocked renders the whole store in columnar snapshot form:
// measurements in sorted order, each measurement's series in creation
// order (so recovery reassigns the same scan tie-break sequence), each
// series as its identity plus its chunks — sealed blocks verbatim, the
// head compressed once. Callers hold db.mu exclusively (shard locks are
// not needed: the structural lock excludes all writers).
func (db *DB) snapshotLocked() ([]byte, error) {
	var names []string
	for i := range db.shards {
		for m := range db.shards[i].measurements {
			names = append(names, m)
		}
	}
	sort.Strings(names)
	out := []byte(snapshotMagic)
	total := 0
	for _, name := range names {
		total += len(db.shardFor(name).measurements[name].series)
	}
	out = binary.AppendUvarint(out, uint64(total))
	var tagKeys []string
	for _, name := range names {
		m := db.shardFor(name).measurements[name]
		for _, s := range m.series {
			out = binary.AppendUvarint(out, uint64(len(m.name)))
			out = append(out, m.name...)
			out = binary.AppendUvarint(out, uint64(len(s.tags)))
			tagKeys = tagKeys[:0]
			for k := range s.tags {
				tagKeys = append(tagKeys, k)
			}
			sort.Strings(tagKeys)
			for _, k := range tagKeys {
				out = binary.AppendUvarint(out, uint64(len(k)))
				out = append(out, k...)
				v := s.tags[k]
				out = binary.AppendUvarint(out, uint64(len(v)))
				out = append(out, v...)
			}
			chunks := len(s.blocks)
			var headBlob []byte
			if len(s.head.times) > 0 {
				hb, err := encodeBlock(s.head.times, s.names, s.head.cols)
				if err != nil {
					return nil, fmt.Errorf("tsdb: snapshot %s: %w", m.name, err)
				}
				headBlob = hb.blob
				chunks++
			}
			out = binary.AppendUvarint(out, uint64(chunks))
			for _, b := range s.blocks {
				out = append(out, chunkSealed)
				out = binary.AppendUvarint(out, uint64(len(b.blob)))
				out = append(out, b.blob...)
			}
			if headBlob != nil {
				out = append(out, chunkHead)
				out = binary.AppendUvarint(out, uint64(len(headBlob)))
				out = append(out, headBlob...)
			}
		}
	}
	return out, nil
}

// loadSnapshot rebuilds the store from a columnar snapshot. Sealed
// chunks are adopted verbatim (their blobs alias the snapshot buffer,
// which is immutable once loaded); the head chunk decompresses back
// into mutable column arrays. Runs before the DB is shared — no locks.
func (db *DB) loadSnapshot(snap []byte) error {
	data := snap[len(snapshotMagic):]
	p := 0
	uvar := func() (int, error) {
		v, n := binary.Uvarint(data[p:])
		if n <= 0 || v > uint64(len(data)) {
			return 0, errBlockCorrupt
		}
		p += n
		return int(v), nil
	}
	str := func() (string, error) {
		l, err := uvar()
		if err != nil || l > len(data)-p {
			return "", errBlockCorrupt
		}
		s := string(data[p : p+l])
		p += l
		return s, nil
	}
	nseries, err := uvar()
	if err != nil {
		return err
	}
	for si := 0; si < nseries; si++ {
		meas, err := str()
		if err != nil {
			return err
		}
		if meas == "" {
			return errBlockCorrupt
		}
		ntags, err := uvar()
		if err != nil {
			return err
		}
		tags := make(map[string]string, ntags)
		for i := 0; i < ntags; i++ {
			k, err := str()
			if err != nil {
				return err
			}
			v, err := str()
			if err != nil {
				return err
			}
			tags[k] = v
		}
		sh := db.shardFor(meas)
		m := sh.measurements[meas]
		if m == nil {
			name := sh.intern.intern(meas)
			m = &measurement{name: name, byKey: map[string]*memSeries{}}
			sh.measurements[name] = m
		}
		s := sh.seriesFor(m, tags)
		nchunks, err := uvar()
		if err != nil {
			return err
		}
		for c := 0; c < nchunks; c++ {
			if p >= len(data) {
				return errBlockCorrupt
			}
			kind := data[p]
			p++
			blen, err := uvar()
			if err != nil || blen > len(data)-p {
				return errBlockCorrupt
			}
			b, err := decodeBlock(data[p : p+blen])
			if err != nil {
				return err
			}
			p += blen
			if kind == chunkSealed {
				if err := sh.adoptBlock(s, b); err != nil {
					return err
				}
			} else {
				if err := sh.adoptHead(s, b); err != nil {
					return err
				}
			}
		}
	}
	if p != len(data) {
		return errBlockCorrupt
	}
	return nil
}

// adoptBlock attaches a recovered sealed block to a series, with the
// same stats accounting a live seal performs.
func (sh *shard) adoptBlock(s *memSeries, b *block) error {
	// Register the block's fields so later head inserts reuse columns.
	for i := range b.fields {
		if _, ok := s.fields[b.fields[i].name]; !ok {
			name := sh.intern.intern(b.fields[i].name)
			s.fields[name] = len(s.names)
			s.names = append(s.names, name)
			s.head.cols = append(s.head.cols, nil)
		}
	}
	s.blocks = append(s.blocks, b)
	st := sh.stats
	st.sealedBytes.Add(int64(len(b.blob)))
	st.sealedRows.Add(int64(b.rows))
	st.sealedValues.Add(int64(b.values))
	st.blocks.Add(1)
	sh.points += uint64(b.rows)
	sh.values += uint64(b.values)
	return nil
}

// adoptHead decompresses a head chunk back into the series' mutable
// column arrays.
func (sh *shard) adoptHead(s *memSeries, b *block) error {
	times, err := b.decodeTimes(nil)
	if err != nil {
		return err
	}
	for i := range b.fields {
		if _, ok := s.fields[b.fields[i].name]; !ok {
			name := sh.intern.intern(b.fields[i].name)
			s.fields[name] = len(s.names)
			s.names = append(s.names, name)
			s.head.cols = append(s.head.cols, nil)
		}
	}
	nan := math.NaN()
	s.head.times = times
	for ci := range s.names {
		col := make([]float64, len(times))
		bi := b.fieldIndex(s.names[ci])
		if bi < 0 {
			for i := range col {
				col[i] = nan
			}
		} else {
			decoded, err := b.decodeField(bi, col)
			if err != nil {
				return err
			}
			col = decoded
		}
		s.head.cols[ci] = col
	}
	st := sh.stats
	st.headRows.Add(int64(len(times)))
	st.headSlots.Add(int64(len(times)) * int64(len(s.names)))
	sh.points += uint64(b.rows)
	sh.values += uint64(b.values)
	return nil
}

// Compact folds the current state into an atomic snapshot and resets
// the WAL — bounding recovery time and log growth. Crash-safe at every
// step (see storage.Store.Compact). No-op in memory.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	snap, err := db.snapshotLocked()
	if err != nil {
		return err
	}
	return db.store.Compact(snap)
}

// Close flushes and releases the data directory. The DB stays readable
// (it is just memory) but further writes error. No-op in memory.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	err := db.store.Close()
	db.store = nil
	db.closed = true
	return err
}

// Crash simulates the process dying without a flush: the WAL keeps only
// what the fsync policy had already made stable, and the DB detaches
// from the directory. With fsync=always no acknowledged point is lost;
// weaker policies lose the unsynced suffix — which is exactly what the
// recovery oracles probe. Test/simulation use only.
func (db *DB) Crash() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	err := db.store.Crash()
	db.store = nil
	db.closed = true
	return err
}
