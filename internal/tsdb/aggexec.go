package tsdb

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Aggregation execution: a parsed aggregate query is planned into one
// scan per field, the matching series of the measurement are split into
// scan units — one per overlapping sealed block plus one per non-empty
// head — and the units are scanned by a bounded worker pool. Each
// worker folds its units into partial per-window aggregates, and the
// coordinator merges partials in unit order so the result is
// deterministic for a fixed dataset regardless of scheduling. Workers
// observe context cancellation between units, never mid-unit, so a
// cancelled query releases the shard read lock promptly without tearing
// any partial.
//
// Sealed blocks give the scan two levels of shortcut: a block wholly
// inside the query's time bounds whose rows share one GROUP BY window
// folds straight from its footer (count/zeros/min/max/sum per field) —
// no decompression at all — and every other block decodes ONCE into a
// per-worker scratch buffer that is reused across units instead of
// materializing []Point.
//
// The scan holds the owning shard's RLock for its whole duration:
// writers shift head columns in place on out-of-order inserts, so
// workers may not retain head slices past the lock. Writers to other
// measurements (other stripes of the measurement map) are unaffected.

// fieldAgg is the partial aggregate of one field within one window.
type fieldAgg struct {
	count   uint64
	sum     float64
	min     float64
	max     float64
	samples []float64 // retained only when a percentile asks for the distribution
}

func (fa *fieldAgg) observe(v float64, keepSamples bool) {
	if fa.count == 0 {
		fa.min, fa.max = v, v
	} else {
		if v < fa.min {
			fa.min = v
		}
		if v > fa.max {
			fa.max = v
		}
	}
	fa.count++
	fa.sum += v
	if keepSamples {
		fa.samples = append(fa.samples, v)
	}
}

// merge folds o into fa. Partials are merged in unit order, so the
// fold order — and with it the floating-point sum — is deterministic.
func (fa *fieldAgg) merge(o *fieldAgg) {
	if o.count == 0 {
		return
	}
	if fa.count == 0 {
		fa.min, fa.max = o.min, o.max
	} else {
		if o.min < fa.min {
			fa.min = o.min
		}
		if o.max > fa.max {
			fa.max = o.max
		}
	}
	fa.count += o.count
	fa.sum += o.sum
	fa.samples = append(fa.samples, o.samples...)
}

// foldFooter merges a sealed block's per-field footer into fa — the
// whole-block fast path that never touches the compressed stream. The
// footer's sum was accumulated in row order at seal time, so the fold
// is the same association a decoded scan would produce.
func (fa *fieldAgg) foldFooter(f *blockField) {
	if fa.count == 0 {
		fa.min, fa.max = f.min, f.max
	} else {
		if f.min < fa.min {
			fa.min = f.min
		}
		if f.max > fa.max {
			fa.max = f.max
		}
	}
	fa.count += f.count
	fa.sum += f.sum
}

// aggPlan is the execution plan of an aggregate query: the distinct
// fields to observe and, per field, whether percentiles force sample
// retention. anySamples disables the footer fast path — percentiles
// need the raw distribution.
type aggPlan struct {
	fields      []string
	keepSamples []bool
	fieldIdx    map[string]int
	anySamples  bool
}

func planAggregates(q *Query) *aggPlan {
	p := &aggPlan{fieldIdx: map[string]int{}}
	for _, a := range q.Aggregates {
		i, ok := p.fieldIdx[a.Field]
		if !ok {
			i = len(p.fields)
			p.fieldIdx[a.Field] = i
			p.fields = append(p.fields, a.Field)
			p.keepSamples = append(p.keepSamples, false)
		}
		if a.Fn == "p" {
			p.keepSamples[i] = true
			p.anySamples = true
		}
	}
	return p
}

// windowStart floors t to the start of its GROUP BY window (Euclidean
// floor, so negative timestamps window consistently).
func windowStart(t, w int64) int64 {
	q := t / w
	if t%w != 0 && t < 0 {
		q--
	}
	return q * w
}

// windowAggs is the per-window state of one scan unit: window start
// → one fieldAgg per planned field.
type windowAggs map[int64][]fieldAgg

// aggUnit is one work item of the parallel scan: a sealed block of a
// matching series, or (b == nil) the series' mutable head.
type aggUnit struct {
	s *memSeries
	b *block
}

// aggScratch is a per-worker decode buffer: one timestamp slice and one
// value slice per planned field, reused across every block the worker
// scans — decode happens once per block, allocation once per worker.
type aggScratch struct {
	times []int64
	cols  [][]float64
}

// blockFooterOnly reports whether a sealed block can fold from its
// footer alone: every row inside the time bounds (0 = unbounded) and
// every row in the same GROUP BY window.
func blockFooterOnly(b *block, q *Query) bool {
	if (q.From != 0 && b.minT < q.From) || (q.To != 0 && b.maxT > q.To) {
		return false
	}
	return q.GroupBy <= 0 || windowStart(b.minT, q.GroupBy) == windowStart(b.maxT, q.GroupBy)
}

// foldColumns folds decoded (or head) columns into per-window partials.
// cols is aligned with plan.fields; a nil column means the unit does
// not carry that field. NaN cells are absent values.
func foldColumns(out windowAggs, times []int64, cols [][]float64, q *Query, plan *aggPlan) {
	lo, hi := timeBounds(times, q.From, q.To)
	var curStates []fieldAgg
	curWin := int64(0)
	for i := lo; i < hi; i++ {
		win := int64(0)
		if q.GroupBy > 0 {
			win = windowStart(times[i], q.GroupBy)
		}
		if curStates == nil || win != curWin {
			curStates = out[win]
			if curStates == nil {
				curStates = make([]fieldAgg, len(plan.fields))
				out[win] = curStates
			}
			curWin = win
		}
		for fi := range cols {
			if cols[fi] == nil {
				continue
			}
			if v := cols[fi][i]; v == v {
				curStates[fi].observe(v, plan.keepSamples[fi])
			}
		}
	}
}

// scanUnit folds one unit into per-window partial aggregates.
func scanUnit(u aggUnit, q *Query, plan *aggPlan, sc *aggScratch) (windowAggs, error) {
	out := windowAggs{}
	if u.b == nil {
		cols := make([][]float64, len(plan.fields))
		for fi, f := range plan.fields {
			if ci, ok := u.s.fields[f]; ok {
				cols[fi] = u.s.head.cols[ci]
			}
		}
		foldColumns(out, u.s.head.times, cols, q, plan)
		return out, nil
	}
	b := u.b
	if !plan.anySamples && blockFooterOnly(b, q) {
		win := int64(0)
		if q.GroupBy > 0 {
			win = windowStart(b.minT, q.GroupBy)
		}
		states := make([]fieldAgg, len(plan.fields))
		found := false
		for fi, f := range plan.fields {
			if bi := b.fieldIndex(f); bi >= 0 {
				states[fi].foldFooter(&b.fields[bi])
				found = true
			}
		}
		if found {
			out[win] = states
		}
		return out, nil
	}
	times, err := b.decodeTimes(sc.times)
	if err != nil {
		return nil, err
	}
	sc.times = times
	if cap(sc.cols) < len(plan.fields) {
		sc.cols = make([][]float64, len(plan.fields))
	}
	cols := sc.cols[:len(plan.fields)]
	for fi, f := range plan.fields {
		bi := b.fieldIndex(f)
		if bi < 0 {
			cols[fi] = nil
			continue
		}
		col, err := b.decodeField(bi, cols[fi])
		if err != nil {
			return nil, err
		}
		cols[fi] = col
	}
	sc.cols = cols
	foldColumns(out, times, cols, q, plan)
	return out, nil
}

// quantile returns the q∈[0,1] quantile of sorted by linear
// interpolation — the same estimator internal/superdb reports, so
// engine percentiles and the legacy client-side fold agree.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// selectKth partially reorders s so s[k] holds its sorted-order value,
// everything left of k is <= it and everything right is >= it —
// Hoare quickselect with median-of-three pivoting, O(n) expected. The
// order statistics it produces are exactly the sorted ones, so the
// quantile estimate is unchanged; only the full O(n log n) sort per
// window is gone.
func selectKth(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return s[k]
}

// quantileSelect computes the same linear-interpolation estimate as
// quantile, but via selection instead of a full sort.
func quantileSelect(s []float64, q float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return selectKth(s, n-1)
	}
	vi := selectKth(s, i)
	// After selectKth, s[i+1:] holds only values >= s[i]; the (i+1)-th
	// order statistic is their minimum.
	vj := s[i+1]
	for _, v := range s[i+2:] {
		if v < vj {
			vj = v
		}
	}
	frac := pos - float64(i)
	return vi*(1-frac) + vj*frac
}

// value renders one aggregate from its merged field state. Valid only
// when fa.count > 0 (except count, which is always defined).
func (a Aggregate) value(fa *fieldAgg) float64 {
	switch a.Fn {
	case "count":
		return float64(fa.count)
	case "sum":
		return fa.sum
	case "min":
		return fa.min
	case "max":
		return fa.max
	case "mean":
		return fa.sum / float64(fa.count)
	case "p":
		s := append([]float64(nil), fa.samples...)
		if len(s) <= 64 {
			sort.Float64s(s)
			return quantile(s, a.Pct/100)
		}
		return quantileSelect(s, a.Pct/100)
	}
	return math.NaN()
}

// aggColumns is the result column list, in query order.
func aggColumns(q *Query) []string {
	cols := make([]string, len(q.Aggregates))
	for i, a := range q.Aggregates {
		cols[i] = a.Column()
	}
	return cols
}

// defaultQueryWorkers bounds the scan pool when the request does not
// pin one: the machine's parallelism, capped at the shard width.
func defaultQueryWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > NumShards {
		w = NumShards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// execAggregate runs an aggregate query. The caller has validated that
// q carries only aggregates.
func (db *DB) execAggregate(ctx context.Context, q *Query, workers int) (*Result, error) {
	if workers <= 0 {
		workers = defaultQueryWorkers()
	}
	plan := planAggregates(q)
	res := &Result{Measurement: q.Measurement, Columns: aggColumns(q)}

	sh := db.shardFor(q.Measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.measurements[q.Measurement]
	if m == nil {
		return res, nil
	}
	// Build the unit list in deterministic order: series in creation
	// order, each series' blocks in seal order, head last.
	var units []aggUnit
	for _, s := range m.series {
		if !s.matchTags(q.TagFilter) {
			continue
		}
		for _, b := range s.blocks {
			if (q.From != 0 && b.maxT < q.From) || (q.To != 0 && b.minT > q.To) {
				continue
			}
			units = append(units, aggUnit{s: s, b: b})
		}
		if minT, maxT, ok := s.head.timeRange(); ok {
			if (q.From != 0 && maxT < q.From) || (q.To != 0 && minT > q.To) {
				continue
			}
			units = append(units, aggUnit{s: s})
		}
	}
	if len(units) == 0 {
		return res, nil
	}
	if workers > len(units) {
		workers = len(units)
	}

	var merged windowAggs
	if workers == 1 {
		// Sequential path: one fold over the units, no pool.
		var sc aggScratch
		for _, u := range units {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("tsdb: query: %w", err)
			}
			part, err := scanUnit(u, q, plan, &sc)
			if err != nil {
				return nil, err
			}
			mergeWindowAggs(&merged, part, plan)
		}
	} else {
		partials := make([]windowAggs, len(units))
		var next int64
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sc aggScratch
				for {
					if ctx.Err() != nil {
						return
					}
					errMu.Lock()
					failed := firstErr != nil
					errMu.Unlock()
					if failed {
						return
					}
					i := int(atomic.AddInt64(&next, 1) - 1)
					if i >= len(units) {
						return
					}
					part, err := scanUnit(units[i], q, plan, &sc)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					partials[i] = part
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tsdb: query: %w", err)
		}
		for _, part := range partials {
			mergeWindowAggs(&merged, part, plan)
		}
	}
	if merged == nil {
		merged = windowAggs{}
	}

	wins := make([]int64, 0, len(merged))
	for w := range merged {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	for _, win := range wins {
		states := merged[win]
		any := false
		for fi := range states {
			if states[fi].count > 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		t := win
		if q.GroupBy <= 0 {
			t = q.From
		}
		row := Row{Time: t, Values: map[string]float64{}}
		for _, a := range q.Aggregates {
			fa := &states[plan.fieldIdx[a.Field]]
			if a.Fn == "count" {
				row.Values[a.Column()] = float64(fa.count)
				continue
			}
			if fa.count == 0 {
				continue
			}
			row.Values[a.Column()] = a.value(fa)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// mergeWindowAggs folds one unit's partials into the accumulated map,
// in call (= unit) order.
func mergeWindowAggs(merged *windowAggs, part windowAggs, plan *aggPlan) {
	if *merged == nil {
		*merged = windowAggs{}
	}
	for win, states := range part {
		dst := (*merged)[win]
		if dst == nil {
			dst = make([]fieldAgg, len(plan.fields))
			(*merged)[win] = dst
		}
		for fi := range states {
			dst[fi].merge(&states[fi])
		}
	}
}
