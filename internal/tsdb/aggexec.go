package tsdb

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Aggregation execution: a parsed aggregate query is planned into one
// scan per field, the matching span of the (time-sorted) series is
// located by binary search, split into contiguous stripes, and the
// stripes are scanned by a bounded worker pool — each worker folds its
// stripes into partial per-window aggregates, and the coordinator
// merges partials in stripe order so the result is deterministic for a
// fixed dataset regardless of scheduling. Workers observe context
// cancellation between stripes, never mid-stripe, so a cancelled query
// releases the shard read lock promptly without tearing any partial.
//
// The scan holds the owning shard's RLock for its whole duration:
// series.add shifts points in place on out-of-order inserts, so
// workers may not retain the slice past the lock. Writers to other
// measurements (other stripes of the measurement map) are unaffected.

// aggStripeSize is the stripe granularity of the parallel scan — small
// enough that cancellation is responsive and stripes load-balance,
// large enough that per-stripe bookkeeping is noise.
const aggStripeSize = 4096

// fieldAgg is the partial aggregate of one field within one window.
type fieldAgg struct {
	count   uint64
	sum     float64
	min     float64
	max     float64
	samples []float64 // retained only when a percentile asks for the distribution
}

func (fa *fieldAgg) observe(v float64, keepSamples bool) {
	if fa.count == 0 {
		fa.min, fa.max = v, v
	} else {
		if v < fa.min {
			fa.min = v
		}
		if v > fa.max {
			fa.max = v
		}
	}
	fa.count++
	fa.sum += v
	if keepSamples {
		fa.samples = append(fa.samples, v)
	}
}

// merge folds o into fa. Partials are merged in stripe order, so the
// fold order — and with it the floating-point sum — is deterministic.
func (fa *fieldAgg) merge(o *fieldAgg) {
	if o.count == 0 {
		return
	}
	if fa.count == 0 {
		fa.min, fa.max = o.min, o.max
	} else {
		if o.min < fa.min {
			fa.min = o.min
		}
		if o.max > fa.max {
			fa.max = o.max
		}
	}
	fa.count += o.count
	fa.sum += o.sum
	fa.samples = append(fa.samples, o.samples...)
}

// aggPlan is the execution plan of an aggregate query: the distinct
// fields to observe and, per field, whether percentiles force sample
// retention.
type aggPlan struct {
	fields      []string
	keepSamples []bool
	fieldIdx    map[string]int
}

func planAggregates(q *Query) *aggPlan {
	p := &aggPlan{fieldIdx: map[string]int{}}
	for _, a := range q.Aggregates {
		i, ok := p.fieldIdx[a.Field]
		if !ok {
			i = len(p.fields)
			p.fieldIdx[a.Field] = i
			p.fields = append(p.fields, a.Field)
			p.keepSamples = append(p.keepSamples, false)
		}
		if a.Fn == "p" {
			p.keepSamples[i] = true
		}
	}
	return p
}

// windowStart floors t to the start of its GROUP BY window (Euclidean
// floor, so negative timestamps window consistently).
func windowStart(t, w int64) int64 {
	q := t / w
	if t%w != 0 && t < 0 {
		q--
	}
	return q * w
}

// windowAggs is the per-window state of one scan stripe: window start
// → one fieldAgg per planned field.
type windowAggs map[int64][]fieldAgg

// scanStripe folds pts[lo:hi] into per-window partial aggregates.
func scanStripe(pts []Point, lo, hi int, q *Query, plan *aggPlan) windowAggs {
	out := windowAggs{}
	for i := lo; i < hi; i++ {
		p := &pts[i]
		if q.From != 0 && p.Time < q.From {
			continue
		}
		if q.To != 0 && p.Time > q.To {
			continue
		}
		match := true
		for k, v := range q.TagFilter {
			if p.Tags[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		win := int64(0)
		if q.GroupBy > 0 {
			win = windowStart(p.Time, q.GroupBy)
		}
		states := out[win]
		if states == nil {
			states = make([]fieldAgg, len(plan.fields))
			out[win] = states
		}
		for fi, f := range plan.fields {
			if v, ok := p.Fields[f]; ok {
				states[fi].observe(v, plan.keepSamples[fi])
			}
		}
	}
	return out
}

// quantile returns the q∈[0,1] quantile of sorted by linear
// interpolation — the same estimator internal/superdb reports, so
// engine percentiles and the legacy client-side fold agree.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// value renders one aggregate from its merged field state. Valid only
// when fa.count > 0 (except count, which is always defined).
func (a Aggregate) value(fa *fieldAgg) float64 {
	switch a.Fn {
	case "count":
		return float64(fa.count)
	case "sum":
		return fa.sum
	case "min":
		return fa.min
	case "max":
		return fa.max
	case "mean":
		return fa.sum / float64(fa.count)
	case "p":
		s := append([]float64(nil), fa.samples...)
		sort.Float64s(s)
		return quantile(s, a.Pct/100)
	}
	return math.NaN()
}

// aggColumns is the result column list, in query order.
func aggColumns(q *Query) []string {
	cols := make([]string, len(q.Aggregates))
	for i, a := range q.Aggregates {
		cols[i] = a.Column()
	}
	return cols
}

// defaultQueryWorkers bounds the scan pool when the request does not
// pin one: the machine's parallelism, capped at the shard width.
func defaultQueryWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > NumShards {
		w = NumShards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// execAggregate runs an aggregate query. The caller has validated that
// q carries only aggregates.
func (db *DB) execAggregate(ctx context.Context, q *Query, workers int) (*Result, error) {
	if workers <= 0 {
		workers = defaultQueryWorkers()
	}
	plan := planAggregates(q)
	res := &Result{Measurement: q.Measurement, Columns: aggColumns(q)}

	sh := db.shardFor(q.Measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.measurements[q.Measurement]
	if s == nil {
		return res, nil
	}
	pts := s.points
	// The series is time-sorted: binary-search the matching span.
	lo, hi := 0, len(pts)
	if q.From != 0 {
		lo = sort.Search(len(pts), func(i int) bool { return pts[i].Time >= q.From })
	}
	if q.To != 0 {
		hi = sort.Search(len(pts), func(i int) bool { return pts[i].Time > q.To })
	}
	if lo >= hi {
		return res, nil
	}

	span := hi - lo
	nstripes := (span + aggStripeSize - 1) / aggStripeSize
	if workers > nstripes {
		workers = nstripes
	}

	var merged windowAggs
	if workers == 1 {
		// Sequential path: one fold over the span, no pool.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tsdb: query: %w", err)
		}
		merged = scanStripe(pts, lo, hi, q, plan)
	} else {
		partials := make([]windowAggs, nstripes)
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(atomic.AddInt64(&next, 1) - 1)
					if i >= nstripes {
						return
					}
					slo := lo + i*aggStripeSize
					shi := slo + aggStripeSize
					if shi > hi {
						shi = hi
					}
					partials[i] = scanStripe(pts, slo, shi, q, plan)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tsdb: query: %w", err)
		}
		merged = windowAggs{}
		for _, part := range partials {
			for win, states := range part {
				dst := merged[win]
				if dst == nil {
					dst = make([]fieldAgg, len(plan.fields))
					merged[win] = dst
				}
				for fi := range states {
					dst[fi].merge(&states[fi])
				}
			}
		}
	}

	wins := make([]int64, 0, len(merged))
	for w := range merged {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	for _, win := range wins {
		states := merged[win]
		any := false
		for fi := range states {
			if states[fi].count > 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		t := win
		if q.GroupBy <= 0 {
			t = q.From
		}
		row := Row{Time: t, Values: map[string]float64{}}
		for _, a := range q.Aggregates {
			fa := &states[plan.fieldIdx[a.Field]]
			if a.Fn == "count" {
				row.Values[a.Column()] = float64(fa.count)
				continue
			}
			if fa.count == 0 {
				continue
			}
			row.Values[a.Column()] = a.value(fa)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
